package trident

import (
	"math"
	"testing"
)

const tinyIR = `
module "tiny"
global @a i64 x 8
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %sq = mul %i, %i
  %p = gep i64, @a, %i
  store %sq, %p
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 8
  condbr %c, loop, out
out:
  %v = load i64, @a
  br sum
sum:
  %j = phi i64 [i64 0, out], [%jinc, sum]
  %acc = phi i64 [%v, out], [%nacc, sum]
  %q = gep i64, @a, %j
  %x = load i64, %q
  %nacc = add %acc, %x
  %jinc = add %j, i64 1
  %jc = icmp slt %jinc, i64 8
  condbr %jc, sum, done
done:
  print %nacc
  ret
}
`

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	// The 11 Table I kernels plus the 3 narrow-output pruning kernels.
	if len(names) != 14 {
		t.Fatalf("got %d benchmarks, want 14", len(names))
	}
	listed := make(map[string]bool, len(names))
	for _, n := range names {
		listed[n] = true
	}
	for _, want := range []string{
		"libquantum", "blackscholes", "sad", "bfs-parboil", "hercules",
		"lulesh", "puremd", "nw", "pathfinder", "hotspot", "bfs-rodinia",
		"rgb2gray", "nibblepack", "boxblur",
	} {
		if !listed[want] {
			t.Errorf("benchmark %q missing from Benchmarks()", want)
		}
	}
}

func TestAnalyzeBenchmark(t *testing.T) {
	rep, err := Analyze("pathfinder", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverallSDC <= 0 || rep.OverallSDC > 1 {
		t.Errorf("overall SDC = %v", rep.OverallSDC)
	}
	if len(rep.Instrs) == 0 || rep.StaticInstrs == 0 || rep.DynInstrs == 0 {
		t.Error("report incomplete")
	}
	// Sorted most SDC-prone first.
	for i := 1; i < len(rep.Instrs); i++ {
		if rep.Instrs[i].SDC > rep.Instrs[i-1].SDC+1e-12 {
			t.Fatal("instruction report not sorted by SDC")
		}
	}
}

func TestAnalyzeIR(t *testing.T) {
	rep, err := AnalyzeIR(tinyIR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Program != "tiny" {
		t.Errorf("program = %q", rep.Program)
	}
	if rep.OverallSDC <= 0 {
		t.Error("overall SDC should be positive for a program with output")
	}
}

func TestAnalyzeModelVariants(t *testing.T) {
	var last *Report
	for _, kind := range []ModelKind{ModelTrident, ModelFSFC, ModelFS} {
		rep, err := AnalyzeIR(tinyIR, Options{Model: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		last = rep
	}
	_ = last
	if _, err := AnalyzeIR(tinyIR, Options{Model: "bogus"}); err == nil {
		t.Error("bogus model should error")
	}
}

func TestCampaignIR(t *testing.T) {
	rep, err := CampaignIR(tinyIR, Options{Samples: 300, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 300 {
		t.Fatalf("trials = %d", rep.Trials)
	}
	total := rep.SDC + rep.Crash + rep.Hang + rep.Benign + rep.Detected
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("outcome rates sum to %v", total)
	}
	if rep.ErrorBar95 <= 0 && rep.SDC > 0 {
		t.Error("missing error bar")
	}
}

func TestAnalyzeTracksCampaign(t *testing.T) {
	rep, err := AnalyzeIR(tinyIR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := CampaignIR(tinyIR, Options{Samples: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(rep.OverallSDC - fi.SDC); diff > 0.2 {
		t.Errorf("model %v vs FI %v: diff %v too large", rep.OverallSDC, fi.SDC, diff)
	}
}

func TestProtect(t *testing.T) {
	rep, err := Protect("pathfinder", 2.0/3, Options{Samples: 400, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SelectedInstrs == 0 {
		t.Error("nothing selected")
	}
	if rep.Overhead <= 0 || rep.Overhead > rep.FullOverhead*1.2 {
		t.Errorf("overhead %v vs full %v", rep.Overhead, rep.FullOverhead)
	}
	if rep.ProtectedSDC >= rep.BaselineSDC {
		t.Errorf("protection did not reduce SDC: %v -> %v", rep.BaselineSDC, rep.ProtectedSDC)
	}
	if rep.DetectionRate == 0 {
		t.Error("no detections")
	}
}

func TestProtectBudgetValidation(t *testing.T) {
	if _, err := Protect("pathfinder", 1.5, Options{}); err == nil {
		t.Error("budget > 1 should error")
	}
	if _, err := Protect("nope", 0.5, Options{}); err == nil {
		t.Error("unknown program should error")
	}
}

func TestAnalyzeUnknownProgram(t *testing.T) {
	if _, err := Analyze("nope", Options{}); err == nil {
		t.Error("unknown program should error")
	}
	if _, err := AnalyzeIR("not ir", Options{}); err == nil {
		t.Error("bad IR should error")
	}
}

func TestExplainTop(t *testing.T) {
	lines, err := ExplainTop("pathfinder", 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d explanations", len(lines))
	}
	for _, l := range lines {
		if l == "" {
			t.Error("empty explanation")
		}
	}
	if _, err := ExplainTop("nope", 3, Options{}); err == nil {
		t.Error("unknown program should error")
	}
}
