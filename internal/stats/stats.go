// Package stats provides the statistical machinery the paper's evaluation
// uses: normal-approximation confidence intervals for FI campaigns, the
// paired two-tailed Student t-test used to compare model predictions with
// FI measurements (§V-B), and summary metrics (mean absolute error).
//
// The t-distribution CDF is computed from the regularized incomplete beta
// function (continued-fraction form), implemented here from scratch since
// the repository uses only the standard library. DESIGN.md §4 lists the
// experiments whose significance tests run through this package.
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// MeanAbsError returns the mean absolute difference between paired
// predictions and measurements — the accuracy metric of §V-B1.
func MeanAbsError(pred, meas []float64) (float64, error) {
	if len(pred) != len(meas) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(pred) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - meas[i])
	}
	return sum / float64(len(pred)), nil
}

// ProportionCI95 returns the half-width of the 95% confidence interval of
// a proportion p measured over n trials — the paper's FI error bars. It
// uses the Wilson score interval rather than the textbook normal
// approximation: the normal half-width 1.96*sqrt(p(1-p)/n) collapses to
// zero when p is exactly 0 or 1, which silently overstates confidence
// for low-SDC programs (observing 0 SDCs in n trials bounds the true
// rate near 3.84/(n+3.84), not 0). The Wilson half-width stays positive
// for every finite n and converges to the normal approximation as n
// grows, so mid-range error bars change only marginally.
//
// The reported interval is centered on the measured p (as the paper's
// plots are), so the half-width is the distance from p to the farther
// Wilson bound.
func ProportionCI95(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	lo, hi := WilsonBounds(p, n)
	return math.Max(p-lo, hi-p)
}

// WilsonBounds returns the lower and upper 95% Wilson score bounds of a
// proportion p measured over n trials. The compositional campaign cache
// recomputes intervals from merged tallies through this function, so a
// composed estimate carries exactly the interval a monolithic campaign
// with the same pooled counts would report.
//
// It is the integral-n special case of WeightedWilsonBounds and inherits
// its [0, 1] clamp: at p ∈ {0, 1} the raw score algebra cancels two
// nearly-equal terms and can land a few ULPs outside the unit interval.
func WilsonBounds(p float64, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 0
	}
	return WeightedWilsonBounds(p, float64(n))
}

// TTestResult is the outcome of a paired two-tailed t-test.
type TTestResult struct {
	// T is the test statistic.
	T float64
	// DF is the degrees of freedom (n-1).
	DF int
	// P is the two-tailed p-value. Under the conventional criterion, the
	// null hypothesis (no difference) is rejected when P < 0.05.
	P float64
}

// ErrDegenerate is returned when the test cannot be computed (fewer than
// two pairs).
var ErrDegenerate = errors.New("stats: fewer than two pairs")

// PairedTTest runs the paired two-tailed Student t-test the paper uses to
// compare predicted and measured SDC probabilities (§V-B). A large
// p-value (> 0.05) means the predictions are statistically
// indistinguishable from the measurements.
//
// When every pairwise difference is identical (zero variance), the test
// degenerates: P is 1 when the common difference is zero and 0 otherwise.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stats: length mismatch")
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, ErrDegenerate
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	meanD := Mean(diffs)
	varD := Variance(diffs)
	df := n - 1
	if varD == 0 {
		if meanD == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(meanD)), DF: df, P: 0}, nil
	}
	t := meanD / math.Sqrt(varD/float64(n))
	return TTestResult{T: t, DF: df, P: TwoTailedP(t, df)}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TwoTailedP returns the two-tailed p-value of a t statistic with df
// degrees of freedom: P(|T| >= |t|).
func TwoTailedP(t float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	x := float64(df) / (float64(df) + t*t)
	// P(|T| >= |t|) = I_x(df/2, 1/2).
	return RegIncompleteBeta(float64(df)/2, 0.5, x)
}

// TCDF returns the CDF of the Student t-distribution with df degrees of
// freedom at t.
func TCDF(t float64, df int) float64 {
	p := TwoTailedP(t, df) / 2
	if t >= 0 {
		return 1 - p
	}
	return p
}

// RegIncompleteBeta computes the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], using the continued-fraction
// expansion (Numerical Recipes' betacf scheme, reimplemented).
func RegIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function via the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIters = 300
		eps      = 3e-14
		fpmin    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIters; m++ {
		fm := float64(m)
		m2 := 2 * fm

		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c

		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
