package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestWilsonBoundsClamped hits the floating-point cancellation corners:
// at p ∈ {0, 1} the center and half-width terms nearly cancel and the
// raw algebra can stray outside [0, 1] by a few ULPs. The bounds must be
// proper probabilities at every boundary combination.
func TestWilsonBoundsClamped(t *testing.T) {
	for _, p := range []float64{0, 1} {
		for _, n := range []int{1, 1e9} {
			lo, hi := WilsonBounds(p, n)
			if lo < 0 || hi > 1 {
				t.Errorf("WilsonBounds(%v, %d) = (%v, %v): outside [0,1]", p, n, lo, hi)
			}
			if lo > hi {
				t.Errorf("WilsonBounds(%v, %d) = (%v, %v): lo > hi", p, n, lo, hi)
			}
			// The interval must stay informative: p=0 keeps a positive
			// upper bound, p=1 a sub-one lower bound.
			if p == 0 && hi <= 0 {
				t.Errorf("WilsonBounds(0, %d): hi = %v, want > 0", n, hi)
			}
			if p == 1 && lo >= 1 {
				t.Errorf("WilsonBounds(1, %d): lo = %v, want < 1", n, lo)
			}
			// At the boundary the estimate itself is inside its interval.
			if p < lo || p > hi {
				t.Errorf("WilsonBounds(%v, %d) = (%v, %v): does not contain p", p, n, lo, hi)
			}
		}
	}
}

func TestWilsonBoundsMidRangeUnchanged(t *testing.T) {
	// The clamp must not perturb an interior interval: reproduce the raw
	// score computation and compare exactly.
	p, n := 0.3, 500
	const z = 1.96
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi := WilsonBounds(p, n)
	if lo != center-half || hi != center+half {
		t.Errorf("mid-range bounds perturbed: got (%v, %v), want (%v, %v)",
			lo, hi, center-half, center+half)
	}
}

// TestWeightedWilsonEqualsUnweighted: with a uniform-weight tally the
// Kish effective size is exactly N and the weighted Wilson interval must
// equal the unweighted one bit-for-bit.
func TestWeightedWilsonEqualsUnweighted(t *testing.T) {
	for _, w := range []float64{1, 2.5, 0.125} {
		var tal WeightedTally
		n, hits := 40, 7
		for i := 0; i < n; i++ {
			tal.Add(w, i < hits)
		}
		if got := tal.KishNeff(); math.Abs(got-float64(n)) > 1e-9 {
			t.Errorf("w=%v: KishNeff = %v, want %d", w, got, n)
		}
		p := float64(hits) / float64(n)
		if got := tal.Proportion(); math.Abs(got-p) > 1e-12 {
			t.Errorf("w=%v: Proportion = %v, want %v", w, got, p)
		}
		wlo, whi := tal.WilsonBounds()
		lo, hi := WilsonBounds(p, n)
		if math.Abs(wlo-lo) > 1e-12 || math.Abs(whi-hi) > 1e-12 {
			t.Errorf("w=%v: weighted bounds (%v, %v) != unweighted (%v, %v)", w, wlo, whi, lo, hi)
		}
	}
}

func TestKishNeffDegeneratesToN(t *testing.T) {
	var tal WeightedTally
	for i := 0; i < 123; i++ {
		tal.Add(1, i%5 == 0)
	}
	if got := tal.KishNeff(); got != 123 {
		t.Errorf("KishNeff under unit weights = %v, want 123", got)
	}
	// Unequal weights strictly lower it.
	tal.Add(10, false)
	if got := tal.KishNeff(); got >= 124 {
		t.Errorf("KishNeff with one heavy weight = %v, want < 124", got)
	}
}

func TestHTEffectiveNUniform(t *testing.T) {
	// Unit weights (q = 1 everywhere): HitVar is 0, so the HT effective
	// size equals the slot count exactly and the HT interval matches the
	// plain Wilson interval.
	var tal WeightedTally
	n, hits := 200, 11
	for i := 0; i < n; i++ {
		tal.Add(1, i < hits)
	}
	if got := tal.HTEffectiveN(float64(n)); math.Abs(got-float64(n)) > 1e-9 {
		t.Errorf("HTEffectiveN = %v, want %d", got, n)
	}
	hlo, hhi := tal.HTWilsonBounds(float64(n))
	lo, hi := WilsonBounds(float64(hits)/float64(n), n)
	if math.Abs(hlo-lo) > 1e-12 || math.Abs(hhi-hi) > 1e-12 {
		t.Errorf("HT bounds (%v, %v) != Wilson (%v, %v)", hlo, hhi, lo, hi)
	}
}

func TestWeightedTallyMerge(t *testing.T) {
	var a, b, all WeightedTally
	obs := []struct {
		w   float64
		hit bool
	}{{1, true}, {4, false}, {2, true}, {1, false}, {8, true}, {1, true}}
	for i, o := range obs {
		if i < 3 {
			a.Add(o.w, o.hit)
		} else {
			b.Add(o.w, o.hit)
		}
		all.Add(o.w, o.hit)
	}
	a.Merge(b)
	if a != all {
		t.Errorf("merged tally %+v != pooled tally %+v", a, all)
	}
}

func TestWeightedTallyRejectsBadWeights(t *testing.T) {
	var tal WeightedTally
	tal.Add(0, true)
	tal.Add(-3, true)
	tal.Add(math.Inf(1), true)
	tal.Add(math.NaN(), true)
	if tal.N != 0 || tal.W != 0 {
		t.Errorf("bad weights were recorded: %+v", tal)
	}
}

// TestInverseProbabilityUnbiased simulates the two-stage design on a
// closed-form toy: a population of N slots with K true successes, each
// slot kept with a probability q that depends on its outcome (the
// adversarial case for biased estimators — success-bearing slots are
// *under*sampled). The Horvitz-Thompson estimate averaged over many
// seeded rounds must converge to K/N, and the Hájek estimate must come
// close (it is only asymptotically unbiased).
func TestInverseProbabilityUnbiased(t *testing.T) {
	const (
		slots  = 400
		truthK = 60
		rounds = 3000
		qHit   = 0.3 // success slots kept at 30%
		qMiss  = 0.8
	)
	truth := float64(truthK) / float64(slots)
	rng := rand.New(rand.NewSource(12345))
	sumHT, sumHajek := 0.0, 0.0
	cover := 0
	for r := 0; r < rounds; r++ {
		var tal WeightedTally
		for i := 0; i < slots; i++ {
			hit := i < truthK
			q := qMiss
			if hit {
				q = qHit
			}
			if rng.Float64() < q {
				tal.Add(1/q, hit)
			}
		}
		sumHT += tal.HTProportion(slots)
		sumHajek += tal.Proportion()
		if lo, hi := tal.HTWilsonBounds(slots); lo <= truth && truth <= hi {
			cover++
		}
	}
	meanHT := sumHT / rounds
	// Monte-Carlo SE of the mean over `rounds` rounds; 5σ tolerance.
	perRoundVar := truth * (1 - truth) / slots
	perRoundVar += (truthK * (1 - qHit) / (qHit)) / float64(slots*slots)
	se := math.Sqrt(perRoundVar / rounds)
	if math.Abs(meanHT-truth) > 5*se {
		t.Errorf("HT estimate biased: mean %v vs truth %v (tol %v)", meanHT, truth, 5*se)
	}
	if math.Abs(sumHajek/rounds-truth) > 0.01 {
		t.Errorf("Hájek estimate far off: mean %v vs truth %v", sumHajek/rounds, truth)
	}
	// The variance-matched Wilson interval should cover the truth at
	// roughly its nominal 95% rate; allow generous slack for the
	// normal approximation at moderate n.
	if rate := float64(cover) / rounds; rate < 0.88 {
		t.Errorf("CI coverage %v, want >= 0.88", rate)
	}
}

func TestHTEffectiveNDegenerateFallsBackToKish(t *testing.T) {
	// All-benign stratified tally: p̂ = 0, estimated variance 0. The
	// effective size must fall back to Kish (capped at the slot count)
	// so the interval stays positive-width.
	var tal WeightedTally
	for i := 0; i < 50; i++ {
		tal.Add(4, false) // q = 0.25
	}
	neff := tal.HTEffectiveN(200)
	if neff <= 0 || neff > 200 {
		t.Errorf("degenerate HTEffectiveN = %v, want in (0, 200]", neff)
	}
	if ci := tal.HTCI95(200); ci <= 0 {
		t.Errorf("degenerate HT CI = %v, want > 0", ci)
	}
}

// TestWeightedWilsonBoundsDegenerateInputs: with no effective sample (or
// an undefined point estimate) the interval must be the defined
// full-width [0, 1] — never NaN and never a zero-width interval that
// would read as certainty.
func TestWeightedWilsonBoundsDegenerateInputs(t *testing.T) {
	for _, neff := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if lo, hi := WeightedWilsonBounds(0.5, neff); lo != 0 || hi != 1 {
			t.Errorf("neff=%v: got (%v, %v), want (0, 1)", neff, lo, hi)
		}
	}
	if lo, hi := WeightedWilsonBounds(math.NaN(), 10); lo != 0 || hi != 1 {
		t.Errorf("NaN p: got (%v, %v), want (0, 1)", lo, hi)
	}
	for _, p := range []float64{0, 0.25, 1, math.NaN()} {
		if ci := WeightedProportionCI95(p, 0); math.IsNaN(ci) || ci < 0.5 || ci > 1 {
			t.Errorf("WeightedProportionCI95(%v, 0) = %v, want full-width in [0.5, 1]", p, ci)
		}
	}
}

// TestKishNeffDegenerateCorners: the weight-zero corners (empty tally,
// NaN or infinite weight sums) must yield a defined n_eff = 0, which the
// interval machinery then maps to a full-width [0, 1] interval.
func TestKishNeffDegenerateCorners(t *testing.T) {
	cases := []struct{ w, w2 float64 }{
		{0, 0},                     // zero-trial tally
		{-1, 1},                    // negative sum (impossible via Add, defensive)
		{math.NaN(), math.NaN()},   // poisoned sums
		{math.Inf(1), math.Inf(1)}, // infinite sums
		{math.Inf(1), 4},           // one infinite moment
	}
	for _, c := range cases {
		if got := KishNeff(c.w, c.w2); got != 0 {
			t.Errorf("KishNeff(%v, %v) = %v, want 0", c.w, c.w2, got)
		}
	}
	var empty WeightedTally
	if neff := empty.KishNeff(); neff != 0 {
		t.Errorf("empty tally KishNeff = %v, want 0", neff)
	}
	if lo, hi := empty.WilsonBounds(); lo != 0 || hi != 1 {
		t.Errorf("empty tally WilsonBounds = (%v, %v), want (0, 1)", lo, hi)
	}
	if ci := empty.CI95(); math.IsNaN(ci) || ci != 1 {
		t.Errorf("empty tally CI95 = %v, want 1", ci)
	}
	if lo, hi := empty.HTWilsonBounds(0); lo != 0 || hi != 1 {
		t.Errorf("empty tally HTWilsonBounds(0) = (%v, %v), want (0, 1)", lo, hi)
	}
}

// FuzzWeightedTally checks the tally's structural invariants over
// arbitrary weight/outcome streams: estimates are proper probabilities,
// Kish n_eff never exceeds the observation count, intervals are ordered
// and clamped, uniform streams reduce exactly to the unweighted path,
// and merging is equivalent to pooling.
func FuzzWeightedTally(f *testing.F) {
	f.Add(uint64(1), uint16(8), false)
	f.Add(uint64(99), uint16(100), true)
	f.Add(uint64(7), uint16(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, uniform bool) {
		rng := rand.New(rand.NewSource(int64(seed)))
		var tal, left, right WeightedTally
		count := int(n%256) + 1
		for i := 0; i < count; i++ {
			w := 1.0
			if !uniform {
				// Weights in (0, 64]: inverse inclusion probabilities
				// plus sub-one weights to hit the HitVar floor.
				w = math.Ldexp(rng.Float64()+1e-9, rng.Intn(7)-1)
			}
			hit := rng.Intn(3) == 0
			tal.Add(w, hit)
			if i%2 == 0 {
				left.Add(w, hit)
			} else {
				right.Add(w, hit)
			}
		}
		if p := tal.Proportion(); p < 0 || p > 1 {
			t.Fatalf("Proportion = %v", p)
		}
		if k := tal.KishNeff(); k < 0 || k > float64(tal.N)+1e-9 {
			t.Fatalf("KishNeff = %v with N = %d", k, tal.N)
		}
		if tal.HitVar < 0 {
			t.Fatalf("HitVar = %v, want >= 0", tal.HitVar)
		}
		denom := float64(count) * 2
		for _, pair := range [][2]float64{
			firstPair(tal.WilsonBounds()),
			firstPair(tal.HTWilsonBounds(denom)),
		} {
			lo, hi := pair[0], pair[1]
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("bounds (%v, %v) invalid", lo, hi)
			}
		}
		if neff := tal.HTEffectiveN(denom); neff < 0 || math.IsNaN(neff) {
			t.Fatalf("HTEffectiveN = %v", neff)
		}
		if uniform {
			if k := tal.KishNeff(); math.Abs(k-float64(tal.N)) > 1e-9 {
				t.Fatalf("uniform KishNeff = %v, want %d", k, tal.N)
			}
			wlo, whi := tal.WilsonBounds()
			lo, hi := WilsonBounds(tal.Proportion(), tal.N)
			if math.Abs(wlo-lo) > 1e-12 || math.Abs(whi-hi) > 1e-12 {
				t.Fatalf("uniform weighted bounds (%v, %v) != unweighted (%v, %v)", wlo, whi, lo, hi)
			}
		}
		left.Merge(right)
		if diff := math.Abs(left.W-tal.W) + math.Abs(left.Hits-tal.Hits) + math.Abs(left.HitVar-tal.HitVar); left.N != tal.N || diff > 1e-9 {
			t.Fatalf("merge mismatch: %+v vs %+v", left, tal)
		}
	})
}

func firstPair(lo, hi float64) [2]float64 { return [2]float64{lo, hi} }
