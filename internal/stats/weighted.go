package stats

import "math"

// This file holds the weighted-tally machinery behind stratified
// (importance-sampled) FI campaigns: trials drawn with unequal inclusion
// probabilities carry inverse-probability weights, estimates become
// Horvitz-Thompson sums, and confidence intervals shrink to an effective
// sample size rather than the raw trial count. ANALYSIS.md ("Stratified
// sampling over live bits") derives the estimator and variance used here.

// WeightedWilsonBounds returns the lower and upper 95% Wilson score
// bounds of a proportion p backed by a real-valued effective sample size
// neff. It generalizes WilsonBounds: for integral neff the two agree
// exactly, so unweighted campaigns are the special case neff == n. Both
// bounds are clamped to [0, 1] — the raw Wilson algebra can stray a few
// ULPs outside the unit interval at p ∈ {0, 1} (floating-point
// cancellation between the center and half-width terms), and downstream
// consumers (JSON schemas, plots, gates) require proper probabilities.
//
// Degenerate inputs — no effective sample (neff ≤ 0, NaN or ±Inf) or an
// undefined point estimate — yield the full-width interval [0, 1]: with
// zero information the honest bound is "anywhere", never a zero-width
// interval that would read as absolute certainty.
func WeightedWilsonBounds(p, neff float64) (lo, hi float64) {
	if !(neff > 0) || math.IsInf(neff, 0) || math.IsNaN(p) {
		return 0, 1
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	const z = 1.96
	z2 := z * z
	denom := 1 + z2/neff
	center := (p + z2/(2*neff)) / denom
	half := z * math.Sqrt(p*(1-p)/neff+z2/(4*neff*neff)) / denom
	lo = center - half
	hi = center + half
	// Cancellation between center and half can leave a bound a few ULPs
	// on the wrong side of the (clamped) point estimate or of the unit
	// interval; snap so that 0 <= lo <= p <= hi <= 1 always holds.
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if lo > p {
		lo = p
	}
	if hi < p {
		hi = p
	}
	return lo, hi
}

// WeightedProportionCI95 is ProportionCI95 for a weighted estimate: the
// half-width of the 95% Wilson interval at effective sample size neff,
// measured from the point estimate p to the farther bound. At degenerate
// inputs the interval is the full unit width (see WeightedWilsonBounds),
// so the half-width is 1 — maximally uninformative, never falsely tight.
func WeightedProportionCI95(p, neff float64) float64 {
	if math.IsNaN(p) {
		return 1
	}
	lo, hi := WeightedWilsonBounds(p, neff)
	if p < lo {
		p = lo
	} else if p > hi {
		p = hi
	}
	return math.Max(p-lo, hi-p)
}

// KishNeff returns Kish's effective sample size (Σw)²/Σw² for a set of
// weights with sum sumW and sum of squares sumW2. Under uniform weights
// it equals the observation count exactly; unequal weights always lower
// it (design effect ≥ 1 by Cauchy-Schwarz). Degenerate inputs — an empty
// tally (both sums zero), NaN or infinite sums — return a defined
// n_eff = 0 rather than propagating NaN into interval math.
func KishNeff(sumW, sumW2 float64) float64 {
	if !(sumW > 0) || !(sumW2 > 0) || math.IsInf(sumW, 0) || math.IsInf(sumW2, 0) {
		return 0
	}
	return sumW * sumW / sumW2
}

// WeightedTally accumulates inverse-probability-weighted Bernoulli
// observations: each trial is recorded with its weight w = 1/q (q the
// inclusion probability that selected it) and its outcome. The zero
// value is an empty tally ready for use.
type WeightedTally struct {
	// N is the number of observations added.
	N int
	// W is Σ w_i and W2 is Σ w_i² over all observations.
	W, W2 float64
	// Hits is Σ w_i over successful observations; HitN counts them.
	Hits float64
	HitN int
	// HitVar is Σ w_i(w_i-1) over successful observations — with
	// w = 1/q this is Σ (1-q)/q², the per-slot Bernoulli-thinning
	// variance that only success-bearing slots contribute to a
	// Horvitz-Thompson total. Observations with w < 1 contribute 0
	// (they cannot arise from thinning and would push the sum
	// negative).
	HitVar float64
}

// Add records one observation with weight w (ignored unless w > 0 and
// finite).
func (t *WeightedTally) Add(w float64, hit bool) {
	if !(w > 0) || math.IsInf(w, 0) {
		return
	}
	t.N++
	t.W += w
	t.W2 += w * w
	if hit {
		t.HitN++
		t.Hits += w
		if w > 1 {
			t.HitVar += w * (w - 1)
		}
	}
}

// AddN records count observations sharing one weight w, hits of them
// successful — the batch form the compositional composition layer uses,
// where a whole function's classified trials carry one activation-share
// weight. Equivalent to count calls to Add.
func (t *WeightedTally) AddN(w float64, count, hits int) {
	if !(w > 0) || math.IsInf(w, 0) || count <= 0 {
		return
	}
	if hits < 0 {
		hits = 0
	} else if hits > count {
		hits = count
	}
	t.N += count
	t.W += w * float64(count)
	t.W2 += w * w * float64(count)
	if hits > 0 {
		t.HitN += hits
		t.Hits += w * float64(hits)
		if w > 1 {
			t.HitVar += w * (w - 1) * float64(hits)
		}
	}
}

// Merge folds other into t, as when combining shard tallies.
func (t *WeightedTally) Merge(other WeightedTally) {
	t.N += other.N
	t.W += other.W
	t.W2 += other.W2
	t.Hits += other.Hits
	t.HitN += other.HitN
	t.HitVar += other.HitVar
}

// Proportion returns the self-normalized (Hájek) estimate Σw·x / Σw, the
// natural point estimate when the weighted total is compared against the
// weighted observation count. It is 0 for an empty tally.
func (t WeightedTally) Proportion() float64 {
	if !(t.W > 0) {
		return 0
	}
	p := t.Hits / t.W
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// KishNeff returns Kish's effective sample size for the tally's weights.
// Under uniform weights it equals N exactly.
func (t WeightedTally) KishNeff() float64 {
	return KishNeff(t.W, t.W2)
}

// WilsonBounds returns the 95% Wilson bounds of Proportion() at the
// Kish effective sample size. With uniform weights this equals the
// unweighted WilsonBounds(p, N) exactly.
func (t WeightedTally) WilsonBounds() (lo, hi float64) {
	return WeightedWilsonBounds(t.Proportion(), t.KishNeff())
}

// CI95 returns the half-width of the tally's Wilson interval, measured
// from the point estimate to the farther bound.
func (t WeightedTally) CI95() float64 {
	return WeightedProportionCI95(t.Proportion(), t.KishNeff())
}

// HTProportion returns the Horvitz-Thompson estimate Σw·x / denom
// against a known population denominator (for stratified campaigns, the
// number of slots drawn before thinning, less the weight of discarded
// observations). Unlike Proportion it is exactly unbiased: E[Σw·x] is
// the true success count over the denominator's population. The result
// is clamped to [0, 1].
func (t WeightedTally) HTProportion(denom float64) float64 {
	if !(denom > 0) {
		return 0
	}
	p := t.Hits / denom
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// HTEffectiveN returns the variance-matched effective sample size of the
// Horvitz-Thompson estimate over denom slots: the n* such that a
// binomial proportion over n* trials has the same variance as the
// two-stage estimate. The variance of p̂ = Σw·x/denom decomposes into
// the stage-one binomial term p(1-p)/denom plus the thinning term
// Σ_hits (1-q)/q² / denom² (HitVar), so
//
//	n* = p̂(1-p̂) / ( p̂(1-p̂)/denom + HitVar/denom² ).
//
// Uniform unit weights have HitVar = 0 and n* = denom exactly. When the
// point estimate is degenerate (p̂ ∈ {0, 1}, zero estimated variance)
// the Kish effective size over the executed observations is returned as
// a conservative fallback, so intervals never collapse to zero width.
func (t WeightedTally) HTEffectiveN(denom float64) float64 {
	if !(denom > 0) {
		return 0
	}
	p := t.HTProportion(denom)
	pq := p * (1 - p)
	if pq <= 0 {
		neff := t.KishNeff()
		if neff > denom {
			neff = denom
		}
		return neff
	}
	v := pq/denom + t.HitVar/(denom*denom)
	return pq / v
}

// HTWilsonBounds returns the 95% Wilson bounds of the Horvitz-Thompson
// estimate over denom slots, at the variance-matched effective sample
// size.
func (t WeightedTally) HTWilsonBounds(denom float64) (lo, hi float64) {
	return WeightedWilsonBounds(t.HTProportion(denom), t.HTEffectiveN(denom))
}

// HTCI95 returns the half-width of the Horvitz-Thompson Wilson interval
// over denom slots.
func (t WeightedTally) HTCI95(denom float64) float64 {
	return WeightedProportionCI95(t.HTProportion(denom), t.HTEffectiveN(denom))
}
