package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance of the set is 32/7.
	if v := Variance(xs); !approx(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestMeanAbsError(t *testing.T) {
	got, err := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil || !approx(got, 1, 1e-12) {
		t.Errorf("MAE = %v, %v", got, err)
	}
	if _, err := MeanAbsError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestProportionCI95(t *testing.T) {
	// At mid-range p and large n the Wilson half-width matches the normal
	// approximation the paper quotes (±1.79% at p=0.5, n=3000).
	ci := ProportionCI95(0.5, 3000)
	if !approx(ci, 0.0179, 0.0005) {
		t.Errorf("CI95(0.5, 3000) = %v, want ~0.0179", ci)
	}
	// At p exactly 0 or 1 the normal approximation collapses to a
	// zero-width bar; Wilson must not. Observing 0 successes in n trials
	// bounds the rate near z^2/(n+z^2) ≈ 3.84/n for large n.
	lo := ProportionCI95(0, 3000)
	if lo <= 0 {
		t.Error("CI at p=0 must be positive (Wilson), got 0")
	}
	if !approx(lo, 3.84/3003.84, 1e-4) {
		t.Errorf("CI95(0, 3000) = %v, want ~%v", lo, 3.84/3003.84)
	}
	if hi := ProportionCI95(1, 3000); !approx(hi, lo, 1e-12) {
		t.Errorf("CI at p=1 (%v) should mirror p=0 (%v)", hi, lo)
	}
	if ProportionCI95(0.5, 0) != 0 {
		t.Error("CI with no trials should be 0")
	}
	// Monotone shrink with n, and symmetry in p.
	if ProportionCI95(0.3, 100) <= ProportionCI95(0.3, 10000) {
		t.Error("CI should shrink as n grows")
	}
	if a, b := ProportionCI95(0.2, 500), ProportionCI95(0.8, 500); !approx(a, b, 1e-12) {
		t.Errorf("CI should be symmetric in p: %v vs %v", a, b)
	}
}

func TestRegIncompleteBetaKnownValues(t *testing.T) {
	tests := []struct {
		a, b, x float64
		want    float64
	}{
		{1, 1, 0.5, 0.5},   // uniform CDF
		{1, 1, 0.25, 0.25}, // uniform CDF
		{2, 2, 0.5, 0.5},   // symmetric beta
		{2, 1, 0.5, 0.25},  // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75},  // 1-(1-x)^2
		{5, 5, 0.5, 0.5},   // symmetry
		{0.5, 0.5, 0.5, 0.5} /* arcsine distribution median */}
	for _, tt := range tests {
		got := RegIncompleteBeta(tt.a, tt.b, tt.x)
		if !approx(got, tt.want, 1e-10) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
	if RegIncompleteBeta(2, 3, 0) != 0 || RegIncompleteBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestRegIncompleteBetaMonotone(t *testing.T) {
	f := func(raw uint16) bool {
		x1 := float64(raw%1000) / 1000
		x2 := x1 + 0.0005
		return RegIncompleteBeta(3, 2, x1) <= RegIncompleteBeta(3, 2, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoTailedPKnownValues(t *testing.T) {
	// Classic t-table values: with df=10, t=2.228 gives p=0.05 two-tailed.
	if p := TwoTailedP(2.228, 10); !approx(p, 0.05, 0.001) {
		t.Errorf("p(2.228, df=10) = %v, want 0.05", p)
	}
	// df=1 (Cauchy): t=1 gives two-tailed p = 0.5.
	if p := TwoTailedP(1, 1); !approx(p, 0.5, 1e-9) {
		t.Errorf("p(1, df=1) = %v, want 0.5", p)
	}
	// t=0 gives p=1.
	if p := TwoTailedP(0, 5); !approx(p, 1, 1e-12) {
		t.Errorf("p(0, df=5) = %v, want 1", p)
	}
	// Symmetry.
	if TwoTailedP(2.5, 7) != TwoTailedP(-2.5, 7) {
		t.Error("two-tailed p must be symmetric in t")
	}
	// Large t gives tiny p.
	if p := TwoTailedP(50, 10); p > 1e-10 {
		t.Errorf("p(50, df=10) = %v, want ~0", p)
	}
}

func TestTCDF(t *testing.T) {
	if c := TCDF(0, 10); !approx(c, 0.5, 1e-12) {
		t.Errorf("TCDF(0) = %v, want 0.5", c)
	}
	if c := TCDF(2.228, 10); !approx(c, 0.975, 0.001) {
		t.Errorf("TCDF(2.228, 10) = %v, want 0.975", c)
	}
	if c := TCDF(-2.228, 10); !approx(c, 0.025, 0.001) {
		t.Errorf("TCDF(-2.228, 10) = %v, want 0.025", c)
	}
}

func TestPairedTTestIdenticalSamples(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical samples: T=%v P=%v, want 0 and 1", res.T, res.P)
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4}
	b := []float64{0.2, 0.3, 0.4, 0.5}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// A constant nonzero shift (up to float rounding): certain rejection.
	if res.P > 1e-9 {
		t.Errorf("constant shift: P=%v, want ~0", res.P)
	}
}

func TestPairedTTestNoisyEquivalent(t *testing.T) {
	// Small, sign-balanced noise: the test must not reject.
	a := []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60}
	b := []float64{0.11, 0.19, 0.31, 0.39, 0.51, 0.59}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Errorf("balanced noise: P=%v, want large", res.P)
	}
	if res.DF != 5 {
		t.Errorf("DF = %d, want 5", res.DF)
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	a := []float64{0.1, 0.12, 0.11, 0.13, 0.12, 0.10, 0.11, 0.12}
	b := []float64{0.31, 0.29, 0.33, 0.30, 0.32, 0.31, 0.30, 0.33}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Errorf("clear difference: P=%v, want tiny", res.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("single pair should be degenerate, got %v", err)
	}
}

func TestPairedTTestMatchesKnownExample(t *testing.T) {
	// Worked example: pre/post scores with mean difference 2.0,
	// differences {2,1,3,2,2}: sd = sqrt(0.5), t = 2/(sqrt(0.5)/sqrt(5))
	// = 6.3246, df = 4, two-tailed p ≈ 0.0032.
	pre := []float64{10, 12, 9, 11, 13}
	post := []float64{12, 13, 12, 13, 15}
	res, err := PairedTTest(post, pre)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.T, 6.3246, 0.001) {
		t.Errorf("T = %v, want 6.3246", res.T)
	}
	if !approx(res.P, 0.0032, 0.0005) {
		t.Errorf("P = %v, want ~0.0032", res.P)
	}
}

func TestPairedTTestAntisymmetry(t *testing.T) {
	f := func(raw [6]uint16) bool {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i, v := range raw {
			a[i] = float64(v%1000) / 1000
			b[i] = float64((v*7+13)%1000) / 1000
		}
		r1, err1 := PairedTTest(a, b)
		r2, err2 := PairedTTest(b, a)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return math.Abs(r1.T+r2.T) < 1e-9 && math.Abs(r1.P-r2.P) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoTailedPMonotoneInT(t *testing.T) {
	f := func(raw uint16) bool {
		t1 := float64(raw%500) / 100
		t2 := t1 + 0.01
		return TwoTailedP(t2, 9) <= TwoTailedP(t1, 9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
