package crosscheck

import (
	"fmt"
	"testing"

	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/irgen"
)

// TestAdaptivePlanUnbiasedExhaustive: a pilot-derived Neyman plan is
// just a static plan, so the stratified unbiasedness oracle must pass
// over it — this is the acceptance sweep for adaptive plan derivation.
func TestAdaptivePlanUnbiasedExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive injection sweep")
	}
	for _, seed := range []uint64{27, 30} {
		seed := seed
		label := fmt.Sprintf("rand-%d", seed)
		t.Run(label, func(t *testing.T) {
			t.Parallel()
			build := func() *ir.Module { return irgen.Generate(irgen.Config{Seed: seed}) }
			plan, err := DerivePilotPlan(build, fault.AdaptiveConfig{}, 7, 150)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("pilot-derived plan invalid: %v", err)
			}
			ms, truth, err := CheckStratifyUnbiased(label, build, StratifyUnbiasedOptions{
				Plan: plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range ms {
				t.Errorf("%s", d)
			}
			t.Logf("%s: plan %v, exhaustive SDC truth %.4f", label, plan, truth)
		})
	}
}

// TestAdaptiveUnbiasedExhaustive: the full adaptive loop — per-seed
// pilots, per-seed plans, folded pilot + main estimates — stays unbiased
// against the exhaustive ground truth, with honest interval coverage and
// strict budget accounting.
func TestAdaptiveUnbiasedExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive injection sweep")
	}
	for _, seed := range []uint64{27, 30} {
		seed := seed
		label := fmt.Sprintf("rand-%d", seed)
		t.Run(label, func(t *testing.T) {
			t.Parallel()
			build := func() *ir.Module { return irgen.Generate(irgen.Config{Seed: seed}) }
			ms, truth, err := CheckAdaptiveUnbiased(label, build, AdaptiveUnbiasedOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range ms {
				t.Errorf("%s", d)
			}
			t.Logf("%s: exhaustive SDC truth %.4f", label, truth)
		})
	}
}
