package crosscheck

import (
	"testing"

	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/progs"
)

// TestCorpusRandom sweeps randomly generated programs through the
// interpreter oracle and the parser round trip. Short mode keeps CI
// fast; the full run covers a wider seed range.
func TestCorpusRandom(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 40
	}
	rep, err := RunCorpus(Config{RandomPrograms: n, Seed: 1000})
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("divergences found:\n%s", rep)
	}
}

// TestCorpusKernels runs every paper kernel through the oracle, the
// round trip, and the model invariants (ranges and sub-model ordering).
// Short mode (the -race CI tier, where a single traced execution of the
// largest kernels costs seconds) keeps the three smallest kernels; the
// full run covers all eleven.
func TestCorpusKernels(t *testing.T) {
	kernels := progs.All()
	if testing.Short() {
		small := map[string]bool{"libquantum": true, "blackscholes": true, "bfs-parboil": true}
		var subset []progs.Program
		for _, p := range kernels {
			if small[p.Name] {
				subset = append(subset, p)
			}
		}
		kernels = subset
	}
	for _, p := range kernels {
		m := p.Build()
		ms, err := CompareModule(p.Name, m)
		if err != nil {
			t.Fatalf("CompareModule %s: %v", p.Name, err)
		}
		for _, d := range ms {
			t.Errorf("%s", d)
		}
		ms, err = RoundTripModule(p.Name, m)
		if err != nil {
			t.Fatalf("RoundTripModule %s: %v", p.Name, err)
		}
		for _, d := range ms {
			t.Errorf("%s", d)
		}
		if testing.Short() {
			continue
		}
		ms, err = CheckModelInvariants(p.Name, m, 7)
		if err != nil {
			t.Fatalf("model invariants %s: %v", p.Name, err)
		}
		for _, d := range ms {
			t.Errorf("%s", d)
		}
	}
}

// TestProtectionInvariants exercises the metamorphic protection checks
// (full SWIFT-style duplication must preserve golden output, never leak
// an SDC, and agree with the injector's own classification) on a
// random-program sample plus a few kernels. The full kernel set under
// many trials is the CLI's job; the unit test keeps a bounded slice.
func TestProtectionInvariants(t *testing.T) {
	rep, err := RunCorpus(Config{RandomPrograms: 12, Seed: 500, Invariants: true, ProtectTrials: 12})
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("violations found:\n%s", rep)
	}
	if testing.Short() {
		return
	}
	for _, p := range progs.All()[:3] {
		ms, err := CheckProtectionInvariants(p.Name, p.Build(), 7, 8, interp.EngineDecoded)
		if err != nil {
			t.Fatalf("protection invariants %s: %v", p.Name, err)
		}
		for _, d := range ms {
			t.Errorf("%s", d)
		}
	}
}

// TestCheckpointResumeBitIdentical interrupts a checkpointed campaign
// mid-flight, resumes it, and requires the stitched transcript to be
// bit-identical to the uninterrupted campaign.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rep, err := RunCorpus(Config{RandomPrograms: 4, Seed: 900, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("violations found:\n%s", rep)
	}
}

// TestRoundTripHexGlobalRegression is the minimized regression for the
// parser divergence the oracle sweep surfaced: hex literals wider than
// the declared element type (e.g. `i8 0xfff`) used to bypass width
// truncation, so the parsed module differed from its printed form. See
// ir.TestParseHexLiteralTruncates for the parser-level pin; this test
// keeps the module on the round-trip path that first exposed it.
func TestRoundTripHexGlobalRegression(t *testing.T) {
	m, err := ir.Parse(`
module "hexreg"
global @g i8 x 2 = [0xfff, 0x1]
func @main() void {
entry:
  %p = gep i8, @g, i64 0
  %v = load i8, %p
  %w = add %v, i8 0xfff
  print %w
  ret
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ms, err := RoundTripModule("hexreg", m)
	if err != nil {
		t.Fatalf("RoundTripModule: %v", err)
	}
	for _, d := range ms {
		t.Errorf("%s", d)
	}
	ms, err = CompareModule("hexreg", m)
	if err != nil {
		t.Fatalf("CompareModule: %v", err)
	}
	for _, d := range ms {
		t.Errorf("%s", d)
	}
}
