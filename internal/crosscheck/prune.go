package crosscheck

import (
	"context"
	"fmt"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
)

// This file is the BEC soundness oracle for static bit-liveness pruning
// (internal/bitlive, DESIGN.md §5i). The pruning contract is absolute:
// a bit the analysis classifies provably-masked must classify Benign
// under *actual* injection, at every dynamic instance, on every engine.
// The oracle inverts the optimization — instead of skipping pruned
// bits, it executes exactly those — so an unsound transfer function
// shows up as a non-Benign outcome here before it can silently bias a
// pruned campaign. Inject/InjectDetail never consult the prune report,
// which is what lets the oracle execute bits campaigns would skip.

// PruneSoundOptions bounds one soundness sweep.
type PruneSoundOptions struct {
	// Engine selects the interpreter engine for the injected runs.
	Engine interp.Engine
	// InstancesPerBit caps how many dynamic instances of each pruned
	// (instruction, bit) pair are injected: the first, the last, and
	// evenly spaced instances in between (all of them when the
	// instruction executes at most this many times). 0 means 4.
	InstancesPerBit int
	// Exhaustive injects every dynamic instance of every pruned bit,
	// ignoring InstancesPerBit. Feasible for small programs only; the
	// FuzzBitliveSound target uses it on irgen modules.
	Exhaustive bool
}

// CheckPruneSound injects every (instruction, bit) pair that the
// bit-liveness analysis claims is provably masked and reports a
// mismatch for any outcome other than Benign. It returns the number of
// injections performed alongside the mismatches.
func CheckPruneSound(name string, m *ir.Module, opts PruneSoundOptions) ([]Mismatch, int, error) {
	per := opts.InstancesPerBit
	if per <= 0 {
		per = 4
	}
	rep := bitlive.Analyze(m)
	inj, err := fault.New(m, fault.Options{
		Seed:             0xB17C0DE,
		Engine:           opts.Engine,
		SnapshotInterval: 2048,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("crosscheck: prune-sound injector: %w", err)
	}
	ctx := context.Background()
	var mismatches []Mismatch
	trials := 0
	for _, in := range inj.Targets() {
		masked := rep.Masked(in)
		if masked == 0 {
			continue
		}
		execs := inj.ExecCount(in)
		instances := spreadInstances(execs, uint64(per), opts.Exhaustive)
		w := in.Type.Bits()
		for bit := 0; bit < w; bit++ {
			if masked>>uint(bit)&1 == 0 {
				continue
			}
			for _, instance := range instances {
				out, err := inj.Inject(ctx, in, instance, bit)
				trials++
				if err != nil {
					return mismatches, trials, fmt.Errorf(
						"crosscheck: prune-sound inject %s bit %d instance %d: %w",
						in.Pos(), bit, instance, err)
				}
				if out != fault.Benign {
					mismatches = append(mismatches, Mismatch{
						Program: name,
						Check: fmt.Sprintf("prune-sound/%s/bit%d@%d",
							in.Pos(), bit, instance),
						Got:  out.String(),
						Want: fault.Benign.String(),
					})
				}
			}
		}
	}
	return mismatches, trials, nil
}

// spreadInstances picks which dynamic instances of one instruction to
// inject: all of them when exhaustive or when there are at most per,
// otherwise per instances evenly spread across [1, execs] including
// both endpoints (first and last executions are where loop-boundary
// liveness bugs hide).
func spreadInstances(execs, per uint64, exhaustive bool) []uint64 {
	if exhaustive || execs <= per {
		out := make([]uint64, execs)
		for i := range out {
			out[i] = uint64(i) + 1
		}
		return out
	}
	out := make([]uint64, 0, per)
	for i := uint64(0); i < per; i++ {
		// 1 + round(i*(execs-1)/(per-1)) spreads endpoints-inclusive.
		inst := 1 + (i*(execs-1)+(per-1)/2)/(per-1)
		if len(out) > 0 && out[len(out)-1] == inst {
			continue
		}
		out = append(out, inst)
	}
	return out
}
