// Package crosscheck is the correctness harness that backs the
// fault-injection ground truth: it drives programs through both the
// production interpreter (internal/interp, an optimized explicit-frame
// machine with snapshot/replay) and the deliberately naive reference
// evaluator (internal/refinterp), asserting bit-identical observables —
// outcome, trap kind and position, program output, dynamic instruction
// and register-write counts, peak memory, and the full ordered
// register-write trace. On top of the differential oracle it checks
// metamorphic invariants of the TRIDENT model stack (probability ranges,
// sub-model ordering, protection-pass guarantees, checkpoint-resume
// bit-identity) over random irgen programs and the 11 paper kernels.
//
// What it proves: that two independently written executors agree on
// every observable for every program exercised, that the optimized
// engine's snapshot and budget machinery does not change classification,
// and that model-level invariants that must hold by construction
// actually hold on real programs. What it does not prove: agreement on
// programs outside the exercised corpus, or that the shared IR-level
// value helpers (bit truncation, sign extension, float codecs) are
// themselves correct — those are common to both interpreters by design
// and pinned by their own unit tests instead. DESIGN.md §5e documents
// the architecture and the bugs the harness has caught; the
// exhaustive-injection pruning oracle here is specified in DESIGN.md
// §5i.
package crosscheck

import (
	"fmt"
	"strings"

	"trident/internal/hashutil"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/refinterp"
)

// Mismatch is one observed divergence between the two interpreters, a
// broken metamorphic invariant, or a parser round-trip failure.
type Mismatch struct {
	// Program identifies the module (kernel name or "rand-<seed>").
	Program string
	// Check names the comparison that failed (e.g. "output",
	// "trace[1234]", "hang-at-budget-1", "model-range/trident").
	Check string
	// Got is the production-side (or post-transformation) observation.
	Got string
	// Want is the reference-side (or pre-transformation) observation.
	Want string
}

// String renders the mismatch for triage reports.
func (d Mismatch) String() string {
	return fmt.Sprintf("%s: %s: got %s, want %s", d.Program, d.Check, d.Got, d.Want)
}

// traceEntry is one register write observed through OnResult.
type traceEntry struct {
	pos  string
	bits uint64
}

// maxTrace bounds the recorded write trace per run; beyond it only the
// running count is compared. Every irgen program and kernel input in the
// corpus fits well below the bound.
const maxTrace = 1 << 22

// refObservation runs the reference evaluator and records the write
// trace.
func refObservation(m *ir.Module, maxDyn uint64) (*refinterp.Result, []traceEntry, error) {
	var trace []traceEntry
	res, err := refinterp.Run(m, refinterp.Options{
		MaxDynInstrs: maxDyn,
		OnResult: func(in *ir.Instr, bits uint64) uint64 {
			if len(trace) < maxTrace {
				trace = append(trace, traceEntry{pos: in.Pos(), bits: bits})
			}
			return bits
		},
	})
	return res, trace, err
}

// enginePrefix namespaces check labels per production engine. The
// legacy engine keeps the historical unprefixed labels; the decoded
// engine's checks read "decoded/…".
func enginePrefix(eng interp.Engine) string {
	if eng == interp.EngineLegacy {
		return ""
	}
	return string(eng) + "/"
}

// CompareModule runs m through the reference evaluator and every
// production engine (legacy and decoded) and returns every divergence —
// a three-way oracle. Each production engine is exercised on its plain
// path with a streaming write-trace comparison, on truncated
// instruction budgets bracketing the reference dynamic count
// (hang-classification parity), and on the snapshot capture/resume
// path, including resuming each engine's snapshots under the other.
func CompareModule(name string, m *ir.Module) ([]Mismatch, error) {
	var out []Mismatch

	refRes, refTrace, err := refObservation(m, 0)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: reference run of %s: %w", name, err)
	}

	var prodRes *interp.Result
	for _, eng := range interp.Engines() {
		prefix := enginePrefix(eng)
		res, ms, err := compareEngineRun(name, prefix, m, eng, refRes, refTrace)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
		if eng == interp.EngineLegacy {
			prodRes = res
		}

		// Hang-classification parity across truncated budgets: the reference
		// run took exactly refRes.DynInstrs dispatches, so a budget of that
		// value must preserve the classification on both sides, and budget-1
		// must hang on both sides. (For a run that already hung, DynInstrs is
		// budget+1 and the bracketing is exercised by the caller's table.)
		if refRes.Outcome != refinterp.OutcomeHang && refRes.DynInstrs > 0 {
			for _, budget := range []uint64{refRes.DynInstrs, refRes.DynInstrs - 1} {
				if budget == 0 {
					continue
				}
				ms, err := compareAtBudget(name, prefix, m, eng, budget)
				if err != nil {
					return nil, err
				}
				out = append(out, ms...)
			}
		}
	}

	// Snapshot capture/resume parity across all four (capture engine,
	// resume engine) combinations.
	ms, err := compareSnapshotResume(name, m, prodRes)
	if err != nil {
		return nil, err
	}
	out = append(out, ms...)

	return out, nil
}

// compareEngineRun executes m on one production engine with a streaming
// write-trace comparison against the reference trace and compares every
// result observable.
func compareEngineRun(name, prefix string, m *ir.Module, eng interp.Engine, refRes *refinterp.Result, refTrace []traceEntry) (*interp.Result, []Mismatch, error) {
	var out []Mismatch
	var (
		cursor        int
		traceMismatch *Mismatch
		extra         int
	)
	prodRes, err := interp.Run(m, interp.Options{
		Engine: eng,
		Hooks: interp.Hooks{
			OnResult: func(_ *interp.Context, in *ir.Instr, bits uint64) uint64 {
				switch {
				case cursor < len(refTrace):
					if traceMismatch == nil {
						e := refTrace[cursor]
						if e.pos != in.Pos() || e.bits != bits {
							traceMismatch = &Mismatch{
								Program: name,
								Check:   fmt.Sprintf("%strace[%d]", prefix, cursor),
								Got:     fmt.Sprintf("%s=%#x", in.Pos(), bits),
								Want:    fmt.Sprintf("%s=%#x", e.pos, e.bits),
							}
						}
					}
					cursor++
				default:
					extra++
				}
				return bits
			},
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("crosscheck: interp (%s) run of %s: %w", eng, name, err)
	}
	if traceMismatch != nil {
		out = append(out, *traceMismatch)
	}
	if cursor < len(refTrace) && uint64(len(refTrace)) < maxTrace {
		out = append(out, Mismatch{Program: name, Check: prefix + "trace-length",
			Got: fmt.Sprint(cursor), Want: fmt.Sprint(len(refTrace))})
	}
	if extra > 0 {
		out = append(out, Mismatch{Program: name, Check: prefix + "trace-length",
			Got: fmt.Sprint(cursor + extra), Want: fmt.Sprint(len(refTrace))})
	}
	out = append(out, compareResults(name, prefix, prodRes, refRes)...)
	return prodRes, out, nil
}

// compareAtBudget runs the reference evaluator and one production
// engine under an explicit instruction budget and requires identical
// classification and counters.
func compareAtBudget(name, prefix string, m *ir.Module, eng interp.Engine, budget uint64) ([]Mismatch, error) {
	ref, err := refinterp.Run(m, refinterp.Options{MaxDynInstrs: budget})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: reference budget run of %s: %w", name, err)
	}
	prod, err := interp.Run(m, interp.Options{Engine: eng, MaxDynInstrs: budget})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: interp (%s) budget run of %s: %w", eng, name, err)
	}
	return compareResults(name, fmt.Sprintf("%sbudget[%d]/", prefix, budget), prod, ref), nil
}

// compareResults compares every observable of the two results. prefix
// namespaces the check labels (e.g. "budget[999]/outcome").
func compareResults(name, prefix string, prod *interp.Result, ref *refinterp.Result) []Mismatch {
	var out []Mismatch
	add := func(check, got, want string) {
		if got != want {
			out = append(out, Mismatch{Program: name, Check: prefix + check, Got: got, Want: want})
		}
	}
	add("outcome", prod.Outcome.String(), ref.Outcome.String())
	add("trap", trapString(prod.Trap), refTrapString(ref.Trap))
	add("output", fmt.Sprintf("%q", prod.Output), fmt.Sprintf("%q", ref.Output))
	add("output-lines", fmt.Sprint(prod.OutputLines), fmt.Sprint(ref.OutputLines))
	add("dyn-instrs", fmt.Sprint(prod.DynInstrs), fmt.Sprint(ref.DynInstrs))
	add("dyn-results", fmt.Sprint(prod.DynResults), fmt.Sprint(ref.DynResults))
	add("peak-mem", fmt.Sprint(prod.PeakMemBytes), fmt.Sprint(ref.PeakMemBytes))
	return out
}

func trapString(t *interp.Trap) string {
	if t == nil {
		return "<none>"
	}
	return fmt.Sprintf("%s@%s addr=%#x", t.Kind, t.Instr.Pos(), t.Addr)
}

func refTrapString(t *refinterp.Trap) string {
	if t == nil {
		return "<none>"
	}
	return fmt.Sprintf("%s@%s addr=%#x", t.Kind, t.Instr.Pos(), t.Addr)
}

// compareSnapshotResume re-runs m with periodic snapshot capture under
// each engine, resumes the last captured snapshot under every engine
// (snapshots are engine-neutral, so all four capture/resume pairings
// must agree), and requires each resumed execution to reproduce the
// uninterrupted result exactly.
func compareSnapshotResume(name string, m *ir.Module, base *interp.Result) ([]Mismatch, error) {
	if base.DynInstrs < 2 {
		return nil, nil
	}
	interval := base.DynInstrs / 3
	if interval == 0 {
		interval = 1
	}
	var out []Mismatch
	for _, capEng := range interp.Engines() {
		capPrefix := enginePrefix(capEng)
		var last *interp.Snapshot
		snapRes, err := interp.Run(m, interp.Options{
			Engine:           capEng,
			SnapshotInterval: interval,
			OnSnapshot:       func(s *interp.Snapshot) { last = s },
		})
		if err != nil {
			return nil, fmt.Errorf("crosscheck: snapshot (%s) run of %s: %w", capEng, name, err)
		}
		if snapRes.Outcome != base.Outcome || snapRes.Output != base.Output ||
			snapRes.DynInstrs != base.DynInstrs || snapRes.DynResults != base.DynResults {
			out = append(out, Mismatch{Program: name, Check: capPrefix + "snapshot-run",
				Got:  resultSummary(snapRes),
				Want: resultSummary(base)})
		}
		if last == nil {
			continue
		}
		for _, resEng := range interp.Engines() {
			resumed, err := interp.Resume(last, interp.Options{Engine: resEng})
			if err != nil {
				return nil, fmt.Errorf("crosscheck: resume (%s->%s) of %s: %w", capEng, resEng, name, err)
			}
			if resumed.Outcome != base.Outcome || resumed.Output != base.Output ||
				resumed.DynInstrs != base.DynInstrs || resumed.DynResults != base.DynResults {
				out = append(out, Mismatch{Program: name,
					Check: fmt.Sprintf("snapshot-resume[%s->%s]", capEng, resEng),
					Got:   resultSummary(resumed),
					Want:  resultSummary(base)})
			}
		}
	}
	return out, nil
}

func resultSummary(r *interp.Result) string {
	return fmt.Sprintf("outcome=%s dyn=%d results=%d lines=%d output-hash=%x",
		r.Outcome, r.DynInstrs, r.DynResults, r.OutputLines, hashutil.Output(r.Output))
}

// RoundTripModule checks the parser/printer loop on m: Print must parse
// back, re-print to the identical text (fixed point), and the reparsed
// module must be semantically identical — same reference-run observables
// and write trace as the original.
func RoundTripModule(name string, m *ir.Module) ([]Mismatch, error) {
	var out []Mismatch
	text1 := ir.Print(m)
	m2, err := ir.Parse(text1)
	if err != nil {
		out = append(out, Mismatch{Program: name, Check: "reparse",
			Got: fmt.Sprintf("error: %v", err), Want: "parse success"})
		return out, nil
	}
	if text2 := ir.Print(m2); text2 != text1 {
		out = append(out, Mismatch{Program: name, Check: "print-fixed-point",
			Got: firstDiffLine(text2, text1), Want: "identical text"})
	}

	origRes, origTrace, err := refObservation(m, 0)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: reference run of %s: %w", name, err)
	}
	reRes, reTrace, err := refObservation(m2, 0)
	if err != nil {
		out = append(out, Mismatch{Program: name, Check: "reparse-run",
			Got: fmt.Sprintf("error: %v", err), Want: "run success"})
		return out, nil
	}
	if origRes.Outcome != reRes.Outcome || origRes.Output != reRes.Output ||
		origRes.DynInstrs != reRes.DynInstrs || origRes.DynResults != reRes.DynResults {
		out = append(out, Mismatch{Program: name, Check: "reparse-semantics",
			Got: fmt.Sprintf("outcome=%s dyn=%d results=%d output=%q",
				reRes.Outcome, reRes.DynInstrs, reRes.DynResults, reRes.Output),
			Want: fmt.Sprintf("outcome=%s dyn=%d results=%d output=%q",
				origRes.Outcome, origRes.DynInstrs, origRes.DynResults, origRes.Output)})
	}
	if len(origTrace) != len(reTrace) {
		out = append(out, Mismatch{Program: name, Check: "reparse-trace-length",
			Got: fmt.Sprint(len(reTrace)), Want: fmt.Sprint(len(origTrace))})
	} else {
		for i := range origTrace {
			if origTrace[i] != reTrace[i] {
				out = append(out, Mismatch{Program: name,
					Check: fmt.Sprintf("reparse-trace[%d]", i),
					Got:   fmt.Sprintf("%s=%#x", reTrace[i].pos, reTrace[i].bits),
					Want:  fmt.Sprintf("%s=%#x", origTrace[i].pos, origTrace[i].bits)})
				break
			}
		}
	}
	return out, nil
}

// firstDiffLine locates the first differing line of two texts for
// compact triage output.
func firstDiffLine(got, want string) string {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(gl), len(wl))
}
