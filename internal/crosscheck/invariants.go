package crosscheck

import (
	"context"
	"fmt"
	"math"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/protect"
)

// eps absorbs floating-point noise in the sub-model ordering checks. The
// orderings hold exactly in real arithmetic (the fc terms are
// non-negative and the fm factors are ≤ 1), so any violation beyond
// rounding is a model bug.
const eps = 1e-9

// CheckModelInvariants profiles m and checks the metamorphic invariants
// of the three model variants:
//
//   - every per-instruction SDC and crash probability lies in [0, 1],
//     for fs-only, fs+fc and full TRIDENT alike, as does the overall
//     (exact and sampled) SDC prediction;
//   - fs-only ≤ fs+fc per instruction and overall: the control-flow
//     sub-model only adds non-negative flipped-branch probability mass;
//   - TRIDENT (fs+fc+fm) ≤ fs+fc per instruction and overall: the
//     memory sub-model replaces the "every corrupted store is an SDC"
//     assumption with a propagation factor that is at most 1.
func CheckModelInvariants(name string, m *ir.Module, seed uint64) ([]Mismatch, error) {
	prof, err := profile.Collect(m, profile.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: profile of %s: %w", name, err)
	}
	fsOnly := core.New(prof, core.FSOnlyConfig())
	fsfc := core.New(prof, core.FSFCConfig())
	trident := core.New(prof, core.TridentConfig())
	models := []struct {
		label string
		m     *core.Model
	}{{"fs", fsOnly}, {"fs+fc", fsfc}, {"trident", trident}}

	var out []Mismatch
	m.Instrs(func(in *ir.Instr) {
		if !in.HasResult() {
			return
		}
		for _, mv := range models {
			p := mv.m.InstrSDC(in)
			if math.IsNaN(p) || p < 0 || p > 1 {
				out = append(out, Mismatch{Program: name,
					Check: "model-range/" + mv.label + "/sdc",
					Got:   fmt.Sprintf("%s p=%v", in.Pos(), p), Want: "p in [0,1]"})
			}
			c := mv.m.InstrCrash(in)
			if math.IsNaN(c) || c < 0 || c > 1 {
				out = append(out, Mismatch{Program: name,
					Check: "model-range/" + mv.label + "/crash",
					Got:   fmt.Sprintf("%s p=%v", in.Pos(), c), Want: "p in [0,1]"})
			}
		}
		pFS := fsOnly.InstrSDC(in)
		pFSFC := fsfc.InstrSDC(in)
		pTri := trident.InstrSDC(in)
		if pFS > pFSFC+eps {
			out = append(out, Mismatch{Program: name, Check: "model-order/fs<=fs+fc",
				Got:  fmt.Sprintf("%s fs=%v", in.Pos(), pFS),
				Want: fmt.Sprintf("<= fs+fc=%v", pFSFC)})
		}
		if pTri > pFSFC+eps {
			out = append(out, Mismatch{Program: name, Check: "model-order/trident<=fs+fc",
				Got:  fmt.Sprintf("%s trident=%v", in.Pos(), pTri),
				Want: fmt.Sprintf("<= fs+fc=%v", pFSFC)})
		}
	})

	var overall [3]float64
	for i, mv := range models {
		exact := mv.m.OverallSDC(0, seed).SDC
		sampled := mv.m.OverallSDC(500, seed).SDC
		for _, p := range []float64{exact, sampled} {
			if math.IsNaN(p) || p < 0 || p > 1 {
				out = append(out, Mismatch{Program: name,
					Check: "model-range/" + mv.label + "/overall",
					Got:   fmt.Sprintf("p=%v", p), Want: "p in [0,1]"})
			}
		}
		overall[i] = exact
	}
	if overall[0] > overall[1]+eps {
		out = append(out, Mismatch{Program: name, Check: "model-order/overall-fs<=fs+fc",
			Got: fmt.Sprint(overall[0]), Want: "<= " + fmt.Sprint(overall[1])})
	}
	if overall[2] > overall[1]+eps {
		out = append(out, Mismatch{Program: name, Check: "model-order/overall-trident<=fs+fc",
			Got: fmt.Sprint(overall[2]), Want: "<= " + fmt.Sprint(overall[1])})
	}
	return out, nil
}

// protectedPairs returns, for a module produced by protect.Apply with
// every eligible instruction selected, the original instructions that
// carry a shadow duplicate (name + ".shadow" exists in the same
// function).
func protectedPairs(m *ir.Module) []*ir.Instr {
	var out []*ir.Instr
	for _, fn := range m.Funcs {
		shadows := map[string]bool{}
		fn.Instrs(func(in *ir.Instr) {
			if in.HasResult() {
				shadows[in.Name] = true
			}
		})
		fn.Instrs(func(in *ir.Instr) {
			if in.HasResult() && shadows[in.Name+".shadow"] {
				out = append(out, in)
			}
		})
	}
	return out
}

// ProtectEligible returns every instruction of m the duplication pass
// accepts: register-writing, not an alloca (duplicating would double the
// allocation) and not a call (side effects).
func ProtectEligible(m *ir.Module) []*ir.Instr {
	var sel []*ir.Instr
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() && in.Op != ir.OpAlloca && in.Op != ir.OpCall {
			sel = append(sel, in)
		}
	})
	return sel
}

// CheckProtectionInvariants applies full SWIFT-style duplication to m
// (every eligible instruction selected) and checks the protection
// metamorphic invariants:
//
//   - the protected module's fault-free output equals the original's;
//   - flipping any bit of any protected register (original or shadow)
//     never produces an SDC — the run either stays benign (output
//     identical), is caught by a check (Detected), or crashes/hangs in
//     the window before the check fires;
//   - a Detected run's partial output is a prefix of the golden output
//     (detection cannot come after corrupted output escaped);
//   - the production fault injector classifies each such trial the same
//     way a direct instrumented interpreter run does.
//
// trials bounds the number of injection trials (spread deterministically
// over the protected registers).
func CheckProtectionInvariants(name string, m *ir.Module, seed uint64, trials int, engine interp.Engine) ([]Mismatch, error) {
	sel := ProtectEligible(m)
	if len(sel) == 0 {
		return nil, nil
	}
	prot, err := protect.Apply(m, sel)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: protect %s: %w", name, err)
	}

	var out []Mismatch
	origGolden, err := interp.Run(m, interp.Options{})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: golden run of %s: %w", name, err)
	}
	golden, err := interp.Run(prot, interp.Options{})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: protected golden run of %s: %w", name, err)
	}
	if golden.Outcome != interp.OutcomeOK || golden.Output != origGolden.Output {
		out = append(out, Mismatch{Program: name, Check: "protect-golden-output",
			Got:  fmt.Sprintf("outcome=%s output=%q", golden.Outcome, golden.Output),
			Want: fmt.Sprintf("outcome=ok output=%q", origGolden.Output)})
		return out, nil
	}

	// The production injector supplies the hang budget and the
	// classification we cross-validate against.
	inj, err := fault.New(prot, fault.Options{Seed: seed, Workers: 1, Engine: engine})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: injector on protected %s: %w", name, err)
	}

	// Count dynamic executions of each protected register.
	execCount := map[*ir.Instr]uint64{}
	if _, err := interp.Run(prot, interp.Options{
		Hooks: interp.Hooks{
			OnResult: func(_ *interp.Context, in *ir.Instr, bits uint64) uint64 {
				execCount[in]++
				return bits
			},
		},
	}); err != nil {
		return nil, fmt.Errorf("crosscheck: counting run of %s: %w", name, err)
	}
	var targets []*ir.Instr
	for _, in := range protectedPairs(prot) {
		if execCount[in] > 0 {
			targets = append(targets, in)
		}
	}
	if len(targets) == 0 {
		return out, nil
	}

	r := seed*0x9E3779B97F4A7C15 + 0xDA3E39CB94B95BDB
	nextRand := func(n uint64) uint64 {
		r ^= r >> 12
		r ^= r << 25
		r ^= r >> 27
		return (r * 0x2545F4914F6CDD1D) % n
	}
	if trials <= 0 {
		trials = 32
	}
	for t := 0; t < trials; t++ {
		target := targets[int(nextRand(uint64(len(targets))))]
		instance := 1 + nextRand(execCount[target])
		bit := 0
		if w := target.Type.Bits(); w > 1 {
			bit = int(nextRand(uint64(w)))
		}
		spec := fmt.Sprintf("%s inst=%d bit=%d", target.Pos(), instance, bit)

		// Direct instrumented run, mirroring the injector's budget.
		var seen uint64
		injected := false
		res, err := interp.Run(prot, interp.Options{
			MaxDynInstrs: inj.GoldenDynInstrs() * 10,
			Hooks: interp.Hooks{
				OnResult: func(_ *interp.Context, in *ir.Instr, bits uint64) uint64 {
					if injected || in != target {
						return bits
					}
					seen++
					if seen != instance {
						return bits
					}
					injected = true
					return bits ^ (1 << uint(bit))
				},
			},
		})
		if err != nil {
			return nil, fmt.Errorf("crosscheck: protected trial run of %s: %w", name, err)
		}
		var manual fault.Outcome
		switch res.Outcome {
		case interp.OutcomeOK:
			if res.Output == golden.Output {
				manual = fault.Benign
			} else {
				manual = fault.SDC
			}
		case interp.OutcomeCrash:
			manual = fault.Crash
		case interp.OutcomeHang:
			manual = fault.Hang
		case interp.OutcomeDetected:
			manual = fault.Detected
		}

		if manual == fault.SDC {
			out = append(out, Mismatch{Program: name, Check: "protect-no-sdc",
				Got:  fmt.Sprintf("%s -> SDC output=%q", spec, res.Output),
				Want: fmt.Sprintf("benign/detected/crash/hang, golden=%q", golden.Output)})
		}
		if res.Outcome == interp.OutcomeDetected && !isPrefix(res.Output, golden.Output) {
			out = append(out, Mismatch{Program: name, Check: "protect-detected-prefix",
				Got:  fmt.Sprintf("%s -> output %q", spec, res.Output),
				Want: fmt.Sprintf("prefix of golden %q", golden.Output)})
		}

		// Cross-validate the production injector's classification.
		fo, err := inj.Inject(context.Background(), target, instance, bit)
		if err != nil {
			return nil, fmt.Errorf("crosscheck: injector trial %s of %s: %w", spec, name, err)
		}
		if fo != manual {
			out = append(out, Mismatch{Program: name, Check: "protect-classify",
				Got:  fmt.Sprintf("%s -> injector=%s", spec, fo),
				Want: fmt.Sprintf("direct-run=%s", manual)})
		}
	}
	return out, nil
}

func isPrefix(p, s string) bool {
	return len(p) <= len(s) && s[:len(p)] == p
}

// CheckCheckpointResume runs a random campaign twice — once
// uninterrupted, once interrupted partway and resumed from its JSONL
// checkpoint — and requires bit-identical trial transcripts. dir is a
// scratch directory for the checkpoint log; interruptAfter is the trial
// count after which the first run cancels itself.
func CheckCheckpointResume(name string, m *ir.Module, seed uint64, n, interruptAfter int, dir string, engine interp.Engine) ([]Mismatch, error) {
	injFull, err := fault.New(m, fault.Options{Seed: seed, Workers: 2, Engine: engine})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: injector on %s: %w", name, err)
	}
	full, err := injFull.CampaignRandom(context.Background(), n)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: uninterrupted campaign on %s: %w", name, err)
	}

	path := dir + "/" + name + ".ckpt.jsonl"
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	injA, err := fault.New(m, fault.Options{Seed: seed, Workers: 2, Engine: engine,
		OnProgress: func(p fault.Progress) {
			if p.Done >= interruptAfter {
				cancel()
			}
		}})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: injector on %s: %w", name, err)
	}
	if _, err := injA.CampaignRandomCheckpoint(cctx, n, path); err != nil && cctx.Err() == nil {
		return nil, fmt.Errorf("crosscheck: interrupted campaign on %s: %w", name, err)
	}

	injB, err := fault.New(m, fault.Options{Seed: seed, Workers: 2, Engine: engine})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: injector on %s: %w", name, err)
	}
	resumed, err := injB.ResumeCampaign(context.Background(), n, path)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: resumed campaign on %s: %w", name, err)
	}

	var out []Mismatch
	if len(resumed.Trials) != len(full.Trials) {
		out = append(out, Mismatch{Program: name, Check: "checkpoint-trial-count",
			Got: fmt.Sprint(len(resumed.Trials)), Want: fmt.Sprint(len(full.Trials))})
		return out, nil
	}
	for i := range full.Trials {
		a, b := full.Trials[i], resumed.Trials[i]
		if a.Instr.Pos() != b.Instr.Pos() || a.Instance != b.Instance || a.Bit != b.Bit ||
			a.Outcome != b.Outcome || a.CrashLatency != b.CrashLatency {
			out = append(out, Mismatch{Program: name,
				Check: fmt.Sprintf("checkpoint-trial[%d]", i),
				Got: fmt.Sprintf("%s inst=%d bit=%d %s lat=%d",
					b.Instr.Pos(), b.Instance, b.Bit, b.Outcome, b.CrashLatency),
				Want: fmt.Sprintf("%s inst=%d bit=%d %s lat=%d",
					a.Instr.Pos(), a.Instance, a.Bit, a.Outcome, a.CrashLatency)})
			break
		}
	}
	return out, nil
}
