package crosscheck

import (
	"context"
	"fmt"
	"math"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/ir"
)

// This file is the statistical oracle for stratified live-bit sampling
// (internal/fault Options.Stratify, ANALYSIS.md "Stratified sampling
// over live bits"). The stratified contract has two halves, and each
// gets its own check:
//
//   - Determinism: a stratified campaign's executed trials are a
//     bit-identical, in-order subset of the trials the unstratified
//     campaign with the same seed runs, and every trial carries exactly
//     the inverse inclusion probability of its recorded stratum
//     (CheckStratifySubset).
//
//   - Unbiasedness: the Horvitz-Thompson weighted SDC estimate has the
//     exhaustively-enumerated population SDC probability as its mean,
//     and the weighted Wilson interval covers that truth at roughly its
//     nominal rate (CheckStratifyUnbiased, which computes the ground
//     truth by injecting every (instruction, instance, bit) of a small
//     module — the stratified analogue of the pruning BEC oracle).

// CheckStratifySubset runs the same campaign plain and stratified under
// plan and verifies the subset/weight contract. The two campaigns build
// separate module instances, so trials are matched by stable identity
// (position, instance, bit) like the pruning differential does.
func CheckStratifySubset(name string, build func() *ir.Module, plan bitlive.Plan, seed uint64, n int) ([]Mismatch, error) {
	plainInj, err := fault.New(build(), fault.Options{Seed: seed, SnapshotInterval: 2048})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: stratify plain injector: %w", err)
	}
	plain, err := plainInj.CampaignRandom(context.Background(), n)
	if err != nil {
		return nil, err
	}
	stratInj, err := fault.New(build(), fault.Options{Seed: seed, SnapshotInterval: 2048, Stratify: &plan})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: stratify injector: %w", err)
	}
	sres, err := stratInj.CampaignStratified(context.Background(), n)
	if err != nil {
		return nil, err
	}

	var ms []Mismatch
	mismatch := func(check, got, want string) {
		ms = append(ms, Mismatch{Program: name, Check: check, Got: got, Want: want})
	}
	if sres.SlotN != n || plain.N() != n {
		mismatch("stratify/slots", fmt.Sprintf("%d drawn of %d plain", sres.SlotN, plain.N()),
			fmt.Sprintf("%d", n))
		return ms, nil
	}
	// Greedy in-order matching: every executed trial must appear in the
	// plain transcript at or after the previous match, with the same
	// spec and the same outcome. Thinning may only delete slots, never
	// reorder, rewrite, or invent them.
	next := 0
	for i, tr := range sres.Trials {
		found := -1
		for j := next; j < len(plain.Trials); j++ {
			pt := plain.Trials[j]
			if pt.Instr.Pos() == tr.Instr.Pos() && pt.Instance == tr.Instance && pt.Bit == tr.Bit {
				found = j
				break
			}
		}
		if found < 0 {
			mismatch(fmt.Sprintf("stratify/subset[%d]", i),
				fmt.Sprintf("%s bit %d @%d not in plain tail", tr.Instr.Pos(), tr.Bit, tr.Instance),
				"in-order subset of the plain transcript")
			return ms, nil
		}
		if out := plain.Trials[found].Outcome; out != tr.Outcome {
			mismatch(fmt.Sprintf("stratify/outcome[%d]", i), tr.Outcome.String(), out.String())
		}
		if want := 1 / plan.Rate(sres.Strata[i]); sres.Weights[i] != want {
			mismatch(fmt.Sprintf("stratify/weight[%d]", i),
				fmt.Sprintf("%v", sres.Weights[i]), fmt.Sprintf("1/rate(%s)=%v", sres.Strata[i], want))
		}
		next = found + 1
	}
	slots := 0
	for _, sc := range sres.SlotCounts {
		slots += sc
	}
	if slots != n {
		mismatch("stratify/slot-counts", fmt.Sprintf("%d", slots), fmt.Sprintf("%d", n))
	}
	return ms, nil
}

// StratifyGroundTruth computes the exact population SDC probability of
// inj's campaign sampling distribution by enumerating it: every dynamic
// instance of every injectable instruction, every result bit, weighted
// exactly as CampaignRandom samples (uniform over activation draws,
// then uniform over the target's result width). Cost is the full
// bit-space, so callers must keep the module small. Returns the truth
// and the number of injections performed.
func StratifyGroundTruth(inj *fault.Injector) (float64, int, error) {
	ctx := context.Background()
	total := float64(inj.ActivationSpace())
	if total == 0 {
		return 0, 0, fmt.Errorf("crosscheck: empty activation space")
	}
	truth := 0.0
	trials := 0
	for _, in := range inj.Targets() {
		w := in.Type.Bits()
		pBit := 1 / (total * float64(w))
		for instance := uint64(1); instance <= inj.ExecCount(in); instance++ {
			for bit := 0; bit < w; bit++ {
				out, err := inj.Inject(ctx, in, instance, bit)
				trials++
				if err != nil {
					return 0, trials, fmt.Errorf("crosscheck: exhaustive inject %s bit %d @%d: %w",
						in.Pos(), bit, instance, err)
				}
				if out == fault.SDC {
					truth += pBit
				}
			}
		}
	}
	return truth, trials, nil
}

// StratifyUnbiasedOptions bounds one unbiasedness sweep.
type StratifyUnbiasedOptions struct {
	// Plan is the stratification under test (the aggressive plans are
	// the interesting ones — heavy thinning is where a weighting bug
	// would bias hardest).
	Plan bitlive.Plan
	// Seeds is how many independent stratified campaigns to run (0: 40).
	Seeds int
	// N is the slot count per campaign (0: 150).
	N int
	// MinCoverage is the minimum acceptable fraction of campaigns whose
	// weighted Wilson interval covers the ground truth (0: 0.85, below
	// the nominal 0.95 to absorb small-sample discreteness).
	MinCoverage float64
}

// CheckStratifyUnbiased compares the mean of many independent stratified
// estimates against the exhaustive ground truth (a z-test at 4 sigma —
// deterministic for fixed seeds, and a weighting bug of any practical
// size fails it by orders of magnitude) and checks weighted-CI coverage.
// It returns the mismatches plus the measured truth for the caller's
// logs.
func CheckStratifyUnbiased(name string, build func() *ir.Module, opts StratifyUnbiasedOptions) ([]Mismatch, float64, error) {
	seeds := opts.Seeds
	if seeds <= 0 {
		seeds = 40
	}
	n := opts.N
	if n <= 0 {
		n = 150
	}
	minCov := opts.MinCoverage
	if minCov <= 0 {
		minCov = 0.85
	}
	truthInj, err := fault.New(build(), fault.Options{Seed: 0xB17C0DE, SnapshotInterval: 2048})
	if err != nil {
		return nil, 0, fmt.Errorf("crosscheck: ground-truth injector: %w", err)
	}
	truth, _, err := StratifyGroundTruth(truthInj)
	if err != nil {
		return nil, 0, err
	}

	estimates := make([]float64, 0, seeds)
	covered := 0
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		plan := opts.Plan
		inj, err := fault.New(build(), fault.Options{Seed: seed, SnapshotInterval: 2048, Stratify: &plan})
		if err != nil {
			return nil, truth, err
		}
		sres, err := inj.CampaignStratified(context.Background(), n)
		if err != nil {
			return nil, truth, err
		}
		est := sres.WeightedSDC()
		estimates = append(estimates, est)
		if math.Abs(est-truth) <= sres.WeightedErrorBar95() {
			covered++
		}
	}
	mean, sd := 0.0, 0.0
	for _, e := range estimates {
		mean += e
	}
	mean /= float64(len(estimates))
	for _, e := range estimates {
		sd += (e - mean) * (e - mean)
	}
	sd = math.Sqrt(sd / float64(len(estimates)-1))

	var ms []Mismatch
	// z-test on the mean: |mean - truth| must stay within 4 standard
	// errors. An unbiased estimator lands here with probability
	// 1 - 6e-5; a missing or doubled weight shifts the mean by whole
	// stratum masses and fails immediately.
	se := sd / math.Sqrt(float64(len(estimates)))
	if se == 0 {
		se = 1e-12
	}
	if z := math.Abs(mean-truth) / se; z > 4 {
		ms = append(ms, Mismatch{
			Program: name,
			Check:   "stratify/unbiased",
			Got:     fmt.Sprintf("mean %v over %d seeds (z=%.1f)", mean, len(estimates), z),
			Want:    fmt.Sprintf("exhaustive truth %v within 4 SE (%v)", truth, se),
		})
	}
	if cov := float64(covered) / float64(len(estimates)); cov < minCov {
		ms = append(ms, Mismatch{
			Program: name,
			Check:   "stratify/ci-coverage",
			Got:     fmt.Sprintf("%d/%d intervals cover the truth (%.0f%%)", covered, len(estimates), cov*100),
			Want:    fmt.Sprintf("at least %.0f%% coverage of a nominal 95%% interval", minCov*100),
		})
	}
	return ms, truth, nil
}
