package crosscheck

import (
	"testing"

	"trident/internal/ir"
	"trident/internal/irgen"
	"trident/internal/progs"
	"trident/internal/refinterp"
)

// FuzzInterpOracle drives the differential oracle from a fuzzed seed:
// every generated program must agree between the production interpreter
// and the reference evaluator on all observables, and survive the
// parser round trip.
func FuzzInterpOracle(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		m := irgen.Generate(irgen.Config{Seed: seed})
		ms, err := CompareModule("fuzz", m)
		if err != nil {
			t.Fatalf("CompareModule: %v", err)
		}
		for _, d := range ms {
			t.Errorf("seed %d: %s", seed, d)
		}
		ms, err = RoundTripModule("fuzz", m)
		if err != nil {
			t.Fatalf("RoundTripModule: %v", err)
		}
		for _, d := range ms {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}

// fuzzRunBudget and fuzzCallDepth bound fuzz-driven executions: fuzzed
// programs may loop forever (hanging on both sides is itself an
// agreement), a loop that allocates every iteration makes the reference
// evaluator's linear-scan memory quadratic, and recursion multiplies
// per-frame allocas — so the budget, the call depth and the static
// footprint all stay small.
const (
	fuzzRunBudget = 20_000
	fuzzCallDepth = 64
)

// moduleTooBigToRun reports whether executing m could allocate
// unreasonable memory — fuzzed sources can declare gigantic globals or
// allocas, and the naive evaluator materializes every byte (times the
// call depth, for allocas in recursive functions).
func moduleTooBigToRun(m *ir.Module) bool {
	const limit = 1 << 16
	total := 0
	for _, g := range m.Globals {
		total += g.SizeBytes()
		if total > limit {
			return true
		}
	}
	for _, fn := range m.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAlloca {
					total += in.Count * in.Elem.Bytes()
					if total > limit {
						return true
					}
				}
			}
		}
	}
	return false
}

// FuzzParserRoundTrip feeds arbitrary text to the parser. Anything that
// parses must print to a fixed point (print → parse → print is
// identical) and keep its semantics across the round trip: the reparsed
// module's reference run must match the original's, including the write
// trace. The seed corpus is the textual form of every paper kernel.
func FuzzParserRoundTrip(f *testing.F) {
	for _, p := range progs.All() {
		f.Add(ir.Print(p.Build()))
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			return // rejected input is fine; we check accepted ones
		}
		text1 := ir.Print(m)
		m2, err := ir.Parse(text1)
		if err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, text1)
		}
		if text2 := ir.Print(m2); text2 != text1 {
			t.Fatalf("print not a fixed point: %s", firstDiffLine(text2, text1))
		}
		if moduleTooBigToRun(m) {
			return
		}
		origRes, origTrace, err := fuzzObservation(m)
		if err != nil {
			return // e.g. no @main — nothing to compare semantically
		}
		reRes, reTrace, err := fuzzObservation(m2)
		if err != nil {
			t.Fatalf("reparsed module fails to run: %v", err)
		}
		if origRes.Outcome != reRes.Outcome || origRes.Output != reRes.Output ||
			origRes.DynInstrs != reRes.DynInstrs || origRes.DynResults != reRes.DynResults {
			t.Fatalf("round trip changed semantics: outcome %s→%s dyn %d→%d output %q→%q",
				origRes.Outcome, reRes.Outcome, origRes.DynInstrs, reRes.DynInstrs,
				origRes.Output, reRes.Output)
		}
		if len(origTrace) != len(reTrace) {
			t.Fatalf("round trip changed trace length: %d→%d", len(origTrace), len(reTrace))
		}
		for i := range origTrace {
			if origTrace[i] != reTrace[i] {
				t.Fatalf("round trip changed trace[%d]: %s=%#x → %s=%#x", i,
					origTrace[i].pos, origTrace[i].bits, reTrace[i].pos, reTrace[i].bits)
			}
		}
	})
}

// fuzzObservation is refObservation under the fuzz budget and depth
// limits.
func fuzzObservation(m *ir.Module) (*refinterp.Result, []traceEntry, error) {
	var trace []traceEntry
	res, err := refinterp.Run(m, refinterp.Options{
		MaxDynInstrs: fuzzRunBudget,
		MaxCallDepth: fuzzCallDepth,
		OnResult: func(in *ir.Instr, bits uint64) uint64 {
			if len(trace) < maxTrace {
				trace = append(trace, traceEntry{pos: in.Pos(), bits: bits})
			}
			return bits
		},
	})
	return res, trace, err
}
