package crosscheck

import (
	"fmt"
	"testing"

	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/refinterp"
)

// hangBoundaryClassify runs m under an explicit instruction budget on
// every execution path the engine has — the legacy interpreter loop
// (SnapshotInterval=0), the decoded engine, the snapshot-capture run, a
// resume from the last captured snapshot, a decoded resume of the same
// snapshot, and the naive reference evaluator — and returns the outcome
// strings keyed by path name. The paths must never disagree, at any
// budget.
func hangBoundaryClassify(t *testing.T, m *ir.Module, budget uint64) map[string]string {
	t.Helper()
	out := make(map[string]string)

	legacyRes, err := interp.Run(m, interp.Options{MaxDynInstrs: budget})
	if err != nil {
		t.Fatalf("legacy run (budget %d): %v", budget, err)
	}
	out["legacy"] = legacyRes.Outcome.String()

	decRes, err := interp.Run(m, interp.Options{Engine: interp.EngineDecoded, MaxDynInstrs: budget})
	if err != nil {
		t.Fatalf("decoded run (budget %d): %v", budget, err)
	}
	out["decoded"] = decRes.Outcome.String()

	var last *interp.Snapshot
	snapRes, err := interp.Run(m, interp.Options{
		MaxDynInstrs:     budget,
		SnapshotInterval: 5,
		OnSnapshot:       func(s *interp.Snapshot) { last = s },
	})
	if err != nil {
		t.Fatalf("snapshot run (budget %d): %v", budget, err)
	}
	out["snapshot"] = snapRes.Outcome.String()

	// No snapshot captured before the budget ⇒ nothing to resume.
	out["resume"] = out["snapshot"]
	out["decoded-resume"] = out["snapshot"]
	if last != nil {
		resRes, err := interp.Resume(last, interp.Options{MaxDynInstrs: budget})
		if err != nil {
			t.Fatalf("resume (budget %d): %v", budget, err)
		}
		out["resume"] = resRes.Outcome.String()
		decResumeRes, err := interp.Resume(last, interp.Options{
			Engine: interp.EngineDecoded, MaxDynInstrs: budget,
		})
		if err != nil {
			t.Fatalf("decoded resume (budget %d): %v", budget, err)
		}
		out["decoded-resume"] = decResumeRes.Outcome.String()
	}

	refRes, err := refinterp.Run(m, refinterp.Options{MaxDynInstrs: budget})
	if err != nil {
		t.Fatalf("reference run (budget %d): %v", budget, err)
	}
	out["refinterp"] = refRes.Outcome.String()
	return out
}

// TestHangBoundary pins the hang-classification boundary: for a program
// whose unbounded run retires exactly D instructions, a budget of D-1
// must classify as Hang, and budgets of D and D+1 must reproduce the
// unbounded classification — identically on the legacy path, the
// snapshot-capture path, the snapshot-resume path, and the reference
// evaluator.
func TestHangBoundary(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // outcome of the unbounded run
	}{
		{
			// Straight-line completion: loop retires a known count, exits.
			name: "completes",
			want: "ok",
			src: `
module "hb-ok"
func @main() void {
entry:
  br head
head:
  %i = phi i64 [i64 0, entry], [%inc, body]
  %c = icmp slt %i, i64 12
  condbr %c, body, done
body:
  %inc = add %i, i64 1
  br head
done:
  print %i
  ret
}
`,
		},
		{
			// Crash at a known dynamic position: the final load is out of
			// bounds. Budget just below the trapping instruction must report
			// Hang, at or above it Crash — the trap must not be masked or
			// double-counted at the boundary.
			name: "traps",
			want: "crash",
			src: `
module "hb-crash"
func @main() void {
entry:
  br head
head:
  %i = phi i64 [i64 0, entry], [%inc, body]
  %c = icmp slt %i, i64 9
  condbr %c, body, done
body:
  %inc = add %i, i64 1
  br head
done:
  %p = alloca i32 x 1
  %q = gep i32, %p, i64 64
  %v = load i32, %q
  ret
}
`,
		},
		{
			// Detector fires at a known dynamic position.
			name: "detects",
			want: "detected",
			src: `
module "hb-detect"
func @main() void {
entry:
  br head
head:
  %i = phi i64 [i64 0, entry], [%inc, body]
  %c = icmp slt %i, i64 9
  condbr %c, body, done
body:
  %inc = add %i, i64 1
  br head
done:
  %z = add %i, i64 1
  check %i, %z
  ret
}
`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := ir.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			free, err := refinterp.Run(m, refinterp.Options{})
			if err != nil {
				t.Fatalf("unbounded reference run: %v", err)
			}
			if got := free.Outcome.String(); got != tc.want {
				t.Fatalf("unbounded outcome = %s, want %s", got, tc.want)
			}
			d := free.DynInstrs

			for _, row := range []struct {
				budget uint64
				want   string
			}{
				{d - 1, "hang"},
				{d, tc.want},
				{d + 1, tc.want},
			} {
				for path, got := range hangBoundaryClassify(t, m, row.budget) {
					if got != row.want {
						t.Errorf("budget %d (D%+d), %s path: outcome %s, want %s",
							row.budget, int64(row.budget)-int64(d), path, got, row.want)
					}
				}
			}
		})
	}
}

// TestHangBoundaryDynCount pins the count itself: a run that hangs at
// budget B must report exactly B+1 retired dispatches (the budget check
// counts the instruction before refusing to execute it) on both
// interpreters.
func TestHangBoundaryDynCount(t *testing.T) {
	m, err := ir.Parse(`
module "hb-count"
func @main() void {
entry:
  br entry
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, budget := range []uint64{1, 5, 100} {
		ref, err := refinterp.Run(m, refinterp.Options{MaxDynInstrs: budget})
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}
		prod, err := interp.Run(m, interp.Options{MaxDynInstrs: budget})
		if err != nil {
			t.Fatalf("interp run: %v", err)
		}
		dec, err := interp.Run(m, interp.Options{Engine: interp.EngineDecoded, MaxDynInstrs: budget})
		if err != nil {
			t.Fatalf("decoded run: %v", err)
		}
		for path, r := range map[string]struct {
			outcome string
			dyn     uint64
		}{
			"refinterp": {ref.Outcome.String(), ref.DynInstrs},
			"interp":    {prod.Outcome.String(), prod.DynInstrs},
			"decoded":   {dec.Outcome.String(), dec.DynInstrs},
		} {
			if r.outcome != "hang" {
				t.Errorf("%s at budget %d: outcome %s, want hang", path, budget, r.outcome)
			}
			if want := budget + 1; r.dyn != want {
				t.Errorf("%s at budget %d: DynInstrs %d, want %s", path, budget, r.dyn,
					fmt.Sprint(want))
			}
		}
	}
}
