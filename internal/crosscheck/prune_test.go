package crosscheck

import (
	"context"
	"testing"

	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/irgen"
	"trident/internal/progs"
)

// TestPruneSoundKernels is the BEC soundness oracle over the full
// kernel suite on both engines: every (instruction, bit) the liveness
// analysis prunes is actually injected (first, last, and a middle
// instance of each) and must classify Benign. A failure here means a
// transfer function in internal/bitlive is unsound and pruned
// campaigns would be silently biased.
func TestPruneSoundKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive injection sweep")
	}
	engines := map[string]interp.Engine{
		"legacy":  interp.EngineLegacy,
		"decoded": interp.EngineDecoded,
	}
	for engName, engine := range engines {
		engName, engine := engName, engine
		t.Run(engName, func(t *testing.T) {
			t.Parallel()
			for _, p := range progs.Extended() {
				p := p
				t.Run(p.Name, func(t *testing.T) {
					t.Parallel()
					ms, trials, err := CheckPruneSound(p.Name, p.Build(), PruneSoundOptions{
						Engine:          engine,
						InstancesPerBit: 3,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, d := range ms {
						t.Errorf("%s", d)
					}
					t.Logf("%s/%s: %d pruned-bit injections, all Benign", engName, p.Name, trials)
				})
			}
		})
	}
}

// TestPrunedCampaignMatchesUnpruned is the exact-reweighting
// differential: the same campaign run with and without PruneBits must
// produce the identical trial transcript — same specs in the same
// order, same outcomes, same counts, rates, and Wilson CIs — with the
// only difference being which Benign trials carry the Pruned flag.
// This is what makes pruned numbers citable as full-activation-space
// numbers rather than estimates over a reduced space.
func TestPrunedCampaignMatchesUnpruned(t *testing.T) {
	for _, name := range []string{"rgb2gray", "nibblepack", "boxblur", "sad"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := progs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			const n = 400
			run := func(pruneBits bool) *fault.CampaignResult {
				inj, err := fault.New(p.Build(), fault.Options{
					Seed:             42,
					PruneBits:        pruneBits,
					SnapshotInterval: 2048,
					Engine:           interp.EngineDecoded,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := inj.CampaignRandom(context.Background(), n)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain, pruned := run(false), run(true)
			if plain.N() != pruned.N() {
				t.Fatalf("trial counts differ: %d vs %d", plain.N(), pruned.N())
			}
			for i := range plain.Trials {
				a, b := plain.Trials[i], pruned.Trials[i]
				// The two campaigns build separate module instances, so specs
				// are compared by stable identity (position), not pointer.
				if a.Instr.Pos() != b.Instr.Pos() || a.Instance != b.Instance || a.Bit != b.Bit {
					t.Fatalf("trial %d sampled different spec: pruning must not touch the sampling stream", i)
				}
				if a.Outcome != b.Outcome {
					t.Errorf("trial %d (%s bit %d): outcome %s unpruned vs %s pruned",
						i, a.Instr.Pos(), a.Bit, a.Outcome, b.Outcome)
				}
				if b.Pruned && b.Outcome != fault.Benign {
					t.Errorf("trial %d pruned but outcome %s", i, b.Outcome)
				}
				if a.Pruned {
					t.Errorf("trial %d carries Pruned flag in an unpruned campaign", i)
				}
			}
			for _, o := range fault.AllOutcomes {
				if plain.Counts[o] != pruned.Counts[o] {
					t.Errorf("count[%s]: %d unpruned vs %d pruned", o, plain.Counts[o], pruned.Counts[o])
				}
			}
			if plain.SDCProb() != pruned.SDCProb() || plain.ErrorBar95() != pruned.ErrorBar95() {
				t.Errorf("rate/CI drift: SDC %v±%v unpruned vs %v±%v pruned",
					plain.SDCProb(), plain.ErrorBar95(), pruned.SDCProb(), pruned.ErrorBar95())
			}
			if pruned.PrunedN() == 0 {
				t.Errorf("campaign pruned no trials on %s; differential is vacuous", name)
			}
			t.Logf("%s: %d/%d trials pruned, identical tallies", name, pruned.PrunedN(), pruned.N())
		})
	}
}

// FuzzBitliveSound feeds random irgen programs to the soundness oracle
// with exhaustive instance coverage: every dynamic instance of every
// pruned bit is injected and must be Benign. Random programs reach
// operand shapes (shift-by-width, compare overflow corners, negative
// sign-extended constants) the kernels never exercise.
func FuzzBitliveSound(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		m := irgen.Generate(irgen.Config{Seed: seed})
		if moduleTooBigToRun(m) {
			return
		}
		// Pre-screen: the oracle needs a terminating, trap-free golden
		// run of tractable length.
		res, err := interp.Run(m, interp.Options{MaxDynInstrs: fuzzRunBudget})
		if err != nil || res.Outcome != interp.OutcomeOK || res.DynResults == 0 {
			return
		}
		ms, _, err := CheckPruneSound("fuzz", m, PruneSoundOptions{Exhaustive: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range ms {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}
