package crosscheck

import (
	"context"
	"fmt"
	"math"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/ir"
)

// This file is the statistical oracle for adaptive (Neyman-allocation)
// campaigns (internal/fault Options.Adaptive, ANALYSIS.md "Adaptive
// (Neyman) allocation"). Two properties need independent evidence:
//
//   - Plan soundness: a plan derived from a pilot phase is just a valid
//     static plan, so CheckStratifyUnbiased must pass over it —
//     DerivePilotPlan exposes the derivation for that sweep.
//
//   - Full-loop unbiasedness: the adaptive estimator folds pilot trials
//     (weight 1/q of the pilot plan — live strata at 1, provably-masked
//     slots at the floor) and plan-thinned main trials (weight 1/q of
//     the derived plan) where the plan itself depends on the pilot
//     outcomes. The Horvitz-Thompson argument still applies — the
//     thinning hash is independent of outcomes, so conditional
//     inclusion probabilities equal the plan's rates — and
//     CheckAdaptiveUnbiased verifies the end-to-end mean against the
//     exhaustive ground truth, plus budget accounting on every campaign
//     it runs.

// DerivePilotPlan runs one adaptive campaign and returns the main-phase
// plan its pilot derived, so callers can sweep the static stratified
// oracle over pilot-derived plans.
func DerivePilotPlan(build func() *ir.Module, cfg fault.AdaptiveConfig, seed uint64, n int) (bitlive.Plan, error) {
	inj, err := fault.New(build(), fault.Options{Seed: seed, SnapshotInterval: 2048, Adaptive: &cfg})
	if err != nil {
		return bitlive.Plan{}, fmt.Errorf("crosscheck: adaptive injector: %w", err)
	}
	ar, err := inj.CampaignAdaptive(context.Background(), n)
	if err != nil {
		return bitlive.Plan{}, err
	}
	return ar.Plan, nil
}

// AdaptiveUnbiasedOptions bounds one adaptive unbiasedness sweep.
type AdaptiveUnbiasedOptions struct {
	// Config is the adaptive configuration under test (zero value: the
	// package defaults).
	Config fault.AdaptiveConfig
	// Seeds is how many independent adaptive campaigns to run (0: 40).
	Seeds int
	// N is the slot budget per campaign (0: 150).
	N int
	// MinCoverage is the minimum acceptable fraction of campaigns whose
	// weighted Wilson interval covers the ground truth (0: 0.85).
	MinCoverage float64
}

// CheckAdaptiveUnbiased compares the mean of many independent adaptive
// estimates — each with its own pilot-derived plan — against the
// exhaustive ground truth (4-sigma z-test) and checks weighted-CI
// coverage, exactly as CheckStratifyUnbiased does for static plans. It
// also enforces the pilot budget contract on every campaign: the pilot
// executes a non-empty subset of the configured prefix (the pilot plan
// thins provably-masked slots) and executed trials never exceed the
// slot budget.
func CheckAdaptiveUnbiased(name string, build func() *ir.Module, opts AdaptiveUnbiasedOptions) ([]Mismatch, float64, error) {
	seeds := opts.Seeds
	if seeds <= 0 {
		seeds = 40
	}
	n := opts.N
	if n <= 0 {
		n = 150
	}
	minCov := opts.MinCoverage
	if minCov <= 0 {
		minCov = 0.85
	}
	truthInj, err := fault.New(build(), fault.Options{Seed: 0xB17C0DE, SnapshotInterval: 2048})
	if err != nil {
		return nil, 0, fmt.Errorf("crosscheck: ground-truth injector: %w", err)
	}
	truth, _, err := StratifyGroundTruth(truthInj)
	if err != nil {
		return nil, 0, err
	}

	var ms []Mismatch
	estimates := make([]float64, 0, seeds)
	covered := 0
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		cfg := opts.Config
		inj, err := fault.New(build(), fault.Options{Seed: seed, SnapshotInterval: 2048, Adaptive: &cfg})
		if err != nil {
			return nil, truth, err
		}
		ar, err := inj.CampaignAdaptive(context.Background(), n)
		if err != nil {
			return nil, truth, err
		}
		if ar.ExecutedN() > n {
			ms = append(ms, Mismatch{
				Program: name,
				Check:   fmt.Sprintf("adaptive/budget[seed=%d]", seed),
				Got:     fmt.Sprintf("%d executed trials", ar.ExecutedN()),
				Want:    fmt.Sprintf("at most the %d-slot budget", n),
			})
		}
		if ar.PilotExecuted <= 0 || ar.PilotExecuted > ar.PilotSlots {
			ms = append(ms, Mismatch{
				Program: name,
				Check:   fmt.Sprintf("adaptive/pilot[seed=%d]", seed),
				Got:     fmt.Sprintf("%d pilot trials", ar.PilotExecuted),
				Want:    fmt.Sprintf("a non-empty subset of the %d-slot pilot prefix", ar.PilotSlots),
			})
		}
		est := ar.WeightedSDC()
		estimates = append(estimates, est)
		if math.Abs(est-truth) <= ar.WeightedErrorBar95() {
			covered++
		}
	}
	mean, sd := 0.0, 0.0
	for _, e := range estimates {
		mean += e
	}
	mean /= float64(len(estimates))
	for _, e := range estimates {
		sd += (e - mean) * (e - mean)
	}
	sd = math.Sqrt(sd / float64(len(estimates)-1))

	se := sd / math.Sqrt(float64(len(estimates)))
	if se == 0 {
		se = 1e-12
	}
	if z := math.Abs(mean-truth) / se; z > 4 {
		ms = append(ms, Mismatch{
			Program: name,
			Check:   "adaptive/unbiased",
			Got:     fmt.Sprintf("mean %v over %d seeds (z=%.1f)", mean, len(estimates), z),
			Want:    fmt.Sprintf("exhaustive truth %v within 4 SE (%v)", truth, se),
		})
	}
	if cov := float64(covered) / float64(len(estimates)); cov < minCov {
		ms = append(ms, Mismatch{
			Program: name,
			Check:   "adaptive/ci-coverage",
			Got:     fmt.Sprintf("%d/%d intervals cover the truth (%.0f%%)", covered, len(estimates), cov*100),
			Want:    fmt.Sprintf("at least %.0f%% coverage of a nominal 95%% interval", minCov*100),
		})
	}
	return ms, truth, nil
}
