package crosscheck

import (
	"fmt"
	"testing"

	"trident/internal/bitlive"
	"trident/internal/ir"
	"trident/internal/irgen"
	"trident/internal/progs"
)

// aggressivePlan thins every stratum somewhere in (0, 1), so every
// weight the estimator carries is non-trivial — the configuration where
// a reweighting bug biases hardest.
func aggressivePlan() bitlive.Plan {
	var p bitlive.Plan
	p.Rates[bitlive.StratumMasked] = 0.05
	p.Rates[bitlive.StratumNoise] = 0.25
	p.Rates[bitlive.StratumSign] = 0.5
	p.Rates[bitlive.StratumBoundary] = 0.75
	p.Rates[bitlive.StratumAddress] = 0.75
	return p
}

// TestStratifySubsetKernels checks the determinism half of the
// stratified contract on real kernels, under both the default plan and
// an aggressive all-strata thinning: executed trials are an in-order
// subset of the plain transcript with identical outcomes, and every
// trial carries exactly the inverse inclusion probability of its
// stratum.
func TestStratifySubsetKernels(t *testing.T) {
	plans := map[string]bitlive.Plan{
		"default":    bitlive.DefaultPlan(),
		"aggressive": aggressivePlan(),
	}
	for planName, plan := range plans {
		planName, plan := planName, plan
		t.Run(planName, func(t *testing.T) {
			t.Parallel()
			for _, name := range []string{"rgb2gray", "nibblepack", "boxblur", "sad"} {
				name := name
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					p, err := progs.ByName(name)
					if err != nil {
						t.Fatal(err)
					}
					ms, err := CheckStratifySubset(name, p.Build, plan, 42, 300)
					if err != nil {
						t.Fatal(err)
					}
					for _, d := range ms {
						t.Errorf("%s", d)
					}
				})
			}
		})
	}
}

// TestStratifyUnbiasedExhaustive is the statistical half: on small
// irgen programs whose full bit-space is cheap to enumerate, the mean
// of many independent Horvitz-Thompson estimates must match the
// exhaustively injected ground truth (4-sigma z-test), and the weighted
// Wilson intervals must cover that truth at roughly their nominal rate.
// The probed seeds have mid-range SDC probabilities, so both SDC and
// non-SDC strata carry real mass through the weighting.
func TestStratifyUnbiasedExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive injection sweep")
	}
	for _, seed := range []uint64{27, 30} {
		seed := seed
		label := fmt.Sprintf("rand-%d", seed)
		t.Run(label, func(t *testing.T) {
			t.Parallel()
			build := func() *ir.Module { return irgen.Generate(irgen.Config{Seed: seed}) }
			ms, truth, err := CheckStratifyUnbiased(label, build, StratifyUnbiasedOptions{
				Plan: aggressivePlan(),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range ms {
				t.Errorf("%s", d)
			}
			t.Logf("%s: exhaustive SDC truth %.4f", label, truth)
		})
	}
}
