package crosscheck

import (
	"fmt"
	"sort"
	"strings"

	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/irgen"
	"trident/internal/progs"
)

// Config bounds a corpus sweep.
type Config struct {
	// RandomPrograms is the number of irgen programs to generate (their
	// seeds are Seed, Seed+1, ...).
	RandomPrograms int
	// Seed is the first random-program seed and the base seed for the
	// model and campaign invariants.
	Seed uint64
	// Kernels includes the 11 paper benchmark kernels in the sweep.
	Kernels bool
	// Invariants enables the metamorphic model/protection checks (they
	// profile and model every program, which costs more than the
	// interpreter oracle alone).
	Invariants bool
	// ProtectTrials is the number of injection trials per program in the
	// protection invariant (0 = default 32).
	ProtectTrials int
	// CheckpointDir, when non-empty, enables the checkpoint-resume
	// bit-identity check using this scratch directory.
	CheckpointDir string
	// Engine selects the interpreter engine for the campaign-level checks
	// (protection invariants, checkpoint resume). The per-module oracle
	// always sweeps every engine regardless; this only chooses which
	// engine drives the fault-injection campaigns on top. Zero = legacy.
	Engine interp.Engine
	// Progress, when non-nil, receives one line per checked program.
	Progress func(string)
}

// Report aggregates a corpus sweep.
type Report struct {
	// Programs is the number of modules checked.
	Programs int
	// Checks is the number of per-program check groups executed.
	Checks int
	// Mismatches collects every divergence and invariant violation.
	Mismatches []Mismatch
}

// Clean reports whether the sweep found nothing.
func (r *Report) Clean() bool { return len(r.Mismatches) == 0 }

// String renders a triage summary: mismatches grouped by check kind,
// then the full list.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "crosscheck: %d programs, %d check groups, %d mismatches\n",
		r.Programs, r.Checks, len(r.Mismatches))
	if len(r.Mismatches) == 0 {
		return sb.String()
	}
	byCheck := map[string]int{}
	for _, d := range r.Mismatches {
		key := d.Check
		if i := strings.IndexByte(key, '['); i >= 0 {
			key = key[:i]
		}
		byCheck[key]++
	}
	keys := make([]string, 0, len(byCheck))
	for k := range byCheck {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sb.WriteString("by check:\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-32s %d\n", k, byCheck[k])
	}
	sb.WriteString("details:\n")
	for _, d := range r.Mismatches {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}

// corpusEntry is one module plus its display name.
type corpusEntry struct {
	name string
	mod  *ir.Module
}

// buildCorpus materializes the sweep's modules.
func buildCorpus(cfg Config) []corpusEntry {
	var entries []corpusEntry
	for i := 0; i < cfg.RandomPrograms; i++ {
		seed := cfg.Seed + uint64(i)
		entries = append(entries, corpusEntry{
			name: fmt.Sprintf("rand-%d", seed),
			mod:  irgen.Generate(irgen.Config{Seed: seed}),
		})
	}
	if cfg.Kernels {
		for _, p := range progs.All() {
			entries = append(entries, corpusEntry{name: p.Name, mod: p.Build()})
		}
	}
	return entries
}

// RunCorpus sweeps the configured corpus through the interpreter oracle,
// the parser round trip and (optionally) the metamorphic invariants,
// returning the aggregated report. The first error from the harness
// itself (as opposed to a divergence, which is reported) aborts the
// sweep.
func RunCorpus(cfg Config) (*Report, error) {
	rep := &Report{}
	for _, e := range buildCorpus(cfg) {
		if cfg.Progress != nil {
			cfg.Progress(e.name)
		}
		rep.Programs++

		ms, err := CompareModule(e.name, e.mod)
		if err != nil {
			return nil, err
		}
		rep.Checks++
		rep.Mismatches = append(rep.Mismatches, ms...)

		ms, err = RoundTripModule(e.name, e.mod)
		if err != nil {
			return nil, err
		}
		rep.Checks++
		rep.Mismatches = append(rep.Mismatches, ms...)

		if cfg.Invariants {
			ms, err = CheckModelInvariants(e.name, e.mod, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rep.Checks++
			rep.Mismatches = append(rep.Mismatches, ms...)

			ms, err = CheckProtectionInvariants(e.name, e.mod, cfg.Seed, cfg.ProtectTrials, cfg.Engine)
			if err != nil {
				return nil, err
			}
			rep.Checks++
			rep.Mismatches = append(rep.Mismatches, ms...)
		}

		if cfg.CheckpointDir != "" {
			ms, err = CheckCheckpointResume(e.name, e.mod, cfg.Seed, 40, 10, cfg.CheckpointDir, cfg.Engine)
			if err != nil {
				return nil, err
			}
			rep.Checks++
			rep.Mismatches = append(rep.Mismatches, ms...)
		}
	}
	return rep, nil
}
