package core

import (
	"math"
	"testing"

	"trident/internal/ir"
	"trident/internal/profile"
)

// profiledModel parses src, profiles one execution and builds a model.
func profiledModel(t testing.TB, src string, cfg Config) *Model {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return New(prof, cfg)
}

func instrByName(t testing.TB, m *ir.Module, name string) *ir.Instr {
	t.Helper()
	var found *ir.Instr
	m.Instrs(func(in *ir.Instr) {
		if in.Name == name {
			found = in
		}
	})
	if found == nil {
		t.Fatalf("register %%%s not found", name)
	}
	return found
}

func instrByOp(t testing.TB, m *ir.Module, block string, op ir.Opcode) *ir.Instr {
	t.Helper()
	for _, in := range m.Func("main").Block(block).Instrs {
		if in.Op == op {
			return in
		}
	}
	t.Fatalf("no %s in %s", op, block)
	return nil
}

// TestCmpSignBitPropagation reproduces the paper's Figure 2b: for
// "cmp sgt %v, 0" with a positive profiled value, only the sign bit flips
// the branch, so the propagation probability is 1/32 ≈ 0.03.
func TestCmpSignBitPropagation(t *testing.T) {
	model := profiledModel(t, `
module "fig2b"
global @g i32 x 1 = [4]
func @main() void {
entry:
  %v0 = load i32, @g
  %v = add %v0, i32 1
  %c = icmp sgt %v, i32 0
  condbr %c, t, f
t:
  br f
f:
  ret
}
`, TridentConfig())
	cmp := instrByName(t, model.prof.Module, "c")
	// Profiled sample: lhs = 5, rhs = 0. Flipping only the sign bit of 5
	// changes sgt(5, 0).
	p := model.empiricalFlipProb(cmp, 0)
	if math.Abs(p-1.0/32) > 1e-9 {
		t.Errorf("cmp flip probability = %v, want 1/32 (paper Fig. 2b)", p)
	}

	// The full chain from %v: propagation 1 (add) then 1/32 at the cmp,
	// reaching the branch.
	e := model.walkFrom(instrByName(t, model.prof.Module, "v"), walkUniform)
	br := model.prof.Module.Func("main").Block("entry").Terminator()
	if math.Abs(e.branches[br]-1.0/32) > 1e-9 {
		t.Errorf("branch flip prob = %v, want 1/32", e.branches[br])
	}
	if e.output != 0 || len(e.stores) != 0 {
		t.Error("chain should end only at the branch")
	}
}

func TestWalkDirectOutput(t *testing.T) {
	model := profiledModel(t, `
module "direct"
func @main() void {
entry:
  %a = add i64 1, i64 2
  %b = mul %a, i64 3
  print %b
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "a"), walkUniform)
	if math.Abs(e.output-1) > 1e-9 {
		t.Errorf("output prob = %v, want 1", e.output)
	}
}

func TestWalkLogicalMasking(t *testing.T) {
	// %m = and %x, 0xFF: only 8 of 64 bits of %x survive.
	model := profiledModel(t, `
module "mask"
func @main() void {
entry:
  %x = add i64 12345, i64 0
  %m = and %x, i64 255
  print %m
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "x"), walkUniform)
	if math.Abs(e.output-8.0/64) > 1e-9 {
		t.Errorf("output prob = %v, want 0.125 (and-masking)", e.output)
	}
	// xor never masks.
	model2 := profiledModel(t, `
module "mask2"
func @main() void {
entry:
  %x = add i64 12345, i64 0
  %m = xor %x, i64 255
  print %m
  ret
}
`, TridentConfig())
	e2 := model2.walkFrom(instrByName(t, model2.prof.Module, "x"), walkUniform)
	if math.Abs(e2.output-1) > 1e-9 {
		t.Errorf("xor output prob = %v, want 1", e2.output)
	}
}

func TestWalkTruncMasking(t *testing.T) {
	model := profiledModel(t, `
module "trunc"
func @main() void {
entry:
  %x = add i64 7, i64 0
  %tr = trunc %x to i16
  print %tr
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "x"), walkUniform)
	if math.Abs(e.output-16.0/64) > 1e-9 {
		t.Errorf("output prob = %v, want 0.25 (trunc)", e.output)
	}
}

func TestWalkShiftMasking(t *testing.T) {
	// lshr by 56 leaves 8 live bit positions out of 64.
	model := profiledModel(t, `
module "shift"
func @main() void {
entry:
  %x = add i64 -1, i64 0
  %s = lshr %x, i64 56
  print %s
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "x"), walkUniform)
	if math.Abs(e.output-8.0/64) > 1e-9 {
		t.Errorf("output prob = %v, want 0.125 (lshr 56)", e.output)
	}
}

func TestWalkEndsAtStore(t *testing.T) {
	model := profiledModel(t, `
module "tostore"
global @g i64 x 1
func @main() void {
entry:
  %x = add i64 5, i64 0
  store %x, @g
  %v = load i64, @g
  print %v
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "x"), walkUniform)
	store := instrByOp(t, model.prof.Module, "entry", ir.OpStore)
	if math.Abs(e.stores[store].total()-1) > 1e-9 {
		t.Errorf("store corruption prob = %v, want 1", e.stores[store].total())
	}
	if e.output != 0 {
		t.Errorf("direct output = %v, want 0 (print feeds from memory)", e.output)
	}
}

func TestWalkAddressCorruptionCrash(t *testing.T) {
	model := profiledModel(t, `
module "addr"
global @g i64 x 8 = [1, 2, 3, 4, 5, 6, 7, 8]
func @main() void {
entry:
  %i = add i64 3, i64 0
  %p = gep i64, @g, %i
  %v = load i64, %p
  print %v
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "i"), walkUniform)
	if e.crash < 0.5 {
		t.Errorf("crash prob = %v, want high (most address bits trap)", e.crash)
	}
	// The surviving share propagates through the load to output.
	wantOut := 1 - e.crash
	if math.Abs(e.output-wantOut) > 1e-9 {
		t.Errorf("output prob = %v, want %v (1 - crash)", e.output, wantOut)
	}
}

func TestWalkStoreAddressCrashOnly(t *testing.T) {
	model := profiledModel(t, `
module "staddr"
global @g i64 x 8
func @main() void {
entry:
  %i = add i64 3, i64 0
  %p = gep i64, @g, %i
  store i64 42, %p
  %q = gep i64, @g, i64 3
  %v = load i64, %q
  print %v
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "i"), walkUniform)
	if e.crash < 0.5 {
		t.Errorf("crash prob = %v, want high", e.crash)
	}
	// A corrupted store address never counts as a corrupted stored value.
	store := instrByOp(t, model.prof.Module, "entry", ir.OpStore)
	if e.stores[store].total() != 0 {
		t.Errorf("store value corruption = %v, want 0 for address corruption", e.stores[store].total())
	}
}

func TestWalkFanOutCapsAtOne(t *testing.T) {
	model := profiledModel(t, `
module "fan"
func @main() void {
entry:
  %x = add i64 1, i64 0
  %a = add %x, i64 1
  %b = add %x, i64 2
  %c = add %a, %b
  print %c
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "x"), walkUniform)
	if e.output > 1 {
		t.Errorf("output prob = %v, must be capped at 1", e.output)
	}
}

func TestWalkThroughPhiCycle(t *testing.T) {
	// An accumulator: the corruption persists through the loop-carried phi
	// and reaches the final print with probability 1.
	model := profiledModel(t, `
module "acc"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %acc = phi i64 [i64 0, entry], [%sum, loop]
  %sum = add %acc, %i
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 8
  condbr %c, loop, done
done:
  print %sum
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "sum"), walkUniform)
	if math.Abs(e.output-1) > 1e-6 {
		t.Errorf("accumulator output prob = %v, want 1", e.output)
	}
}

func TestWalkInterprocedural(t *testing.T) {
	model := profiledModel(t, `
module "inter"
func @double(%x i64) i64 {
entry:
  %r = add %x, %x
  ret %r
}
func @main() void {
entry:
  %a = add i64 21, i64 0
  %d = call @double(%a)
  print %d
  ret
}
`, TridentConfig())
	// Corruption in %a flows through the call into %r and back to print.
	e := model.walkFrom(instrByName(t, model.prof.Module, "a"), walkUniform)
	if math.Abs(e.output-1) > 1e-9 {
		t.Errorf("interprocedural output prob = %v, want 1", e.output)
	}
	// Corruption in the callee's %r flows back to the caller's print.
	e2 := model.walkFrom(instrByName(t, model.prof.Module, "r"), walkUniform)
	if math.Abs(e2.output-1) > 1e-9 {
		t.Errorf("return-path output prob = %v, want 1", e2.output)
	}
}

func TestWalkConditionalConsumerWeighting(t *testing.T) {
	// The print executes in 4 of 16 iterations; corruption of a value
	// computed every iteration reaches output with probability ~0.25
	// (the NULL-node weighting of §IV-E).
	model := profiledModel(t, `
module "cond"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, join]
  %v = mul %i, i64 5
  %m = and %i, i64 3
  %c = icmp eq %m, i64 0
  condbr %c, emit, join
emit:
  print %v
  br join
join:
  %inc = add %i, i64 1
  %lc = icmp slt %inc, i64 16
  condbr %lc, loop, done
done:
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "v"), walkUniform)
	if math.Abs(e.output-0.25) > 1e-9 {
		t.Errorf("output prob = %v, want 0.25 (print executes 1/4 of the time)", e.output)
	}
}

func TestWalkNeverExecutedInstr(t *testing.T) {
	model := profiledModel(t, `
module "dead"
global @g i64 x 1 = [0]
func @main() void {
entry:
  %v = load i64, @g
  %c = icmp sgt %v, i64 10
  condbr %c, cold, done
cold:
  %x = add %v, i64 1
  print %x
  br done
done:
  ret
}
`, TridentConfig())
	e := model.walkFrom(instrByName(t, model.prof.Module, "x"), walkUniform)
	if e.output != 0 || len(e.branches) != 0 {
		t.Error("never-executed instruction should have empty ends")
	}
}

func TestWalkCaching(t *testing.T) {
	model := profiledModel(t, `
module "cache"
func @main() void {
entry:
  %a = add i64 1, i64 1
  print %a
  ret
}
`, TridentConfig())
	a := instrByName(t, model.prof.Module, "a")
	if model.walkFrom(a, walkUniform) != model.walkFrom(a, walkUniform) {
		t.Error("walks should be cached")
	}
}

func TestFPOutputMask(t *testing.T) {
	// Paper: Float with %g precision 2 -> 48.66%.
	got := fpOutputMask(ir.F32, ir.FormatG2)
	if math.Abs(got-0.4866) > 0.001 {
		t.Errorf("f32 g2 mask = %v, want ~0.4866 (paper §IV-E)", got)
	}
	if fpOutputMask(ir.F32, ir.FormatDefault) != 1 {
		t.Error("default format must not mask")
	}
	if fpOutputMask(ir.I32, ir.FormatG2) != 1 {
		t.Error("integers must not be FP-masked")
	}
	f64mask := fpOutputMask(ir.F64, ir.FormatG2)
	if f64mask <= 0 || f64mask >= 1 {
		t.Errorf("f64 g2 mask = %v, want in (0, 1)", f64mask)
	}
}
