package core

import (
	"trident/internal/analysis"
	"trident/internal/ir"
)

// StoreCorruption is one entry of the fc result list: if the branch is
// flipped, Store's dynamic execution is corrupted (wrongly executed or
// wrongly skipped) with probability Prob — the <Ic, pc> pairs of
// Algorithm 1.
type StoreCorruption struct {
	Store *ir.Instr
	Prob  float64
}

// RegCorruption is a register-level effect of a flipped branch: the
// live-out value of Def (a loop-carried or join phi) is corrupted with
// probability Prob. The paper's fc tracks only stores; this extension
// covers programs whose divergence-corrupted state reaches the output
// through registers (e.g. a loop accumulator printed after the loop),
// which otherwise would be invisible to the model.
type RegCorruption struct {
	Def  *ir.Instr
	Prob float64
}

// fcEffects bundles everything a flipped branch corrupts.
type fcEffects struct {
	stores []StoreCorruption
	regs   []RegCorruption
}

// fc is the control-flow sub-model (paper §IV-D): given a corrupted
// conditional branch, it determines which stores become corrupted and
// with what probability. See fcEffectsOf for the register extension.
func (m *Model) fc(br *ir.Instr) []StoreCorruption {
	return m.fcEffectsOf(br).stores
}

// fcEffectsOf computes the full effect set of a flipped branch.
//
// The branch is classified as loop-terminating (LT) or not (NLT) from the
// natural-loop structure:
//
//   - NLT (Eq. 1): Pc = Pe/Pd. Propagating one unit of probability mass
//     down each successor edge separately (back edges removed) gives, for
//     a store reached with mass mT from the true edge and mF from the
//     false edge, Pc = |mT − mF|: the probability the store's execution
//     differs between the two directions. Stores reachable from exactly
//     one side get exactly the paper's Pe/Pd; stores past the join get 0.
//     Join phis whose arms are reached differently from the two sides
//     select the wrong arm when the branch flips (register effect).
//
//   - LT (Eq. 2): Pc = Pb·Pe, with Pb the probability of the
//     loop-continuing direction and Pe the in-iteration execution
//     probability of each store in the loop body, measured from the
//     continuing successor. The exit-direction term is dropped, as in the
//     paper (loop branches are heavily biased). A flipped LT branch also
//     shifts the iteration boundary, so the loop's header phis carry
//     corrupted live-out values (register effect).
func (m *Model) fcEffectsOf(br *ir.Instr) *fcEffects {
	if cached, ok := m.fcCache[br]; ok {
		return cached
	}
	eff := &fcEffects{}
	m.fcCache[br] = eff

	if br.Op != ir.OpCondBr {
		return eff
	}
	blk := br.Block
	fn := blk.Fn
	cfg := m.cfgOf(fn)
	if !cfg.Reachable(blk) {
		return eff
	}

	lt, contIdx := cfg.IsLoopTerminating(blk)
	if lt {
		loop := cfg.LoopOf(blk)
		pb := m.prof.EdgeProb(blk, contIdx)
		mass := analysis.ReachProbabilities(cfg, br.Targets[contIdx], m.prof.EdgeProb)
		fn.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpStore || !loop.Contains(in.Block) {
				return
			}
			if pc := pb * mass[in.Block]; pc > 0 {
				eff.stores = append(eff.stores, StoreCorruption{Store: in, Prob: pc})
			}
		})
		// The flipped iteration boundary corrupts loop-carried state.
		for _, in := range loop.Header.Instrs {
			if in.Op == ir.OpPhi {
				eff.regs = append(eff.regs, RegCorruption{Def: in, Prob: 1})
			}
		}
		return eff
	}

	massT := analysis.ReachProbabilities(cfg, br.Targets[0], m.prof.EdgeProb)
	massF := analysis.ReachProbabilities(cfg, br.Targets[1], m.prof.EdgeProb)
	diffAt := func(b *ir.Block) float64 {
		d := massT[b] - massF[b]
		if d < 0 {
			return -d
		}
		return d
	}
	fn.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpStore:
			if d := diffAt(in.Block); d > 1e-12 {
				eff.stores = append(eff.stores, StoreCorruption{Store: in, Prob: d})
			}
		case ir.OpPhi:
			// A join phi selects the wrong arm when the branch redirects
			// control: affected when the phi itself executes on both
			// sides but an incoming edge's frequency differs.
			if massT[in.Block] < 1e-12 || massF[in.Block] < 1e-12 {
				return
			}
			maxArm := 0.0
			for _, ab := range in.PhiBlocks {
				if d := diffAt(ab); d > maxArm {
					maxArm = d
				}
			}
			if maxArm > 1e-12 {
				eff.regs = append(eff.regs, RegCorruption{Def: in, Prob: maxArm})
			}
		}
	})
	return eff
}
