package core
