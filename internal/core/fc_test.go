package core

import (
	"math"
	"testing"

	"trident/internal/ir"
	"trident/internal/profile"
)

// modelFor builds a model over a hand-made profile: the given branch
// counts substitute for a profiled run, so fc can be validated against the
// paper's worked examples with their exact probabilities.
func modelFor(m *ir.Module, branchCounts map[string][2]uint64, cfg Config) *Model {
	prof := &profile.Profile{
		Module:           m,
		ExecCount:        make(map[*ir.Instr]uint64),
		BranchTaken:      make(map[*ir.Instr][2]uint64),
		Samples:          make(map[*ir.Instr][]profile.OperandSample),
		CrashSensitivity: make(map[*ir.Instr]float64),
		MemGraph:         make(map[*ir.Instr][]*profile.MemEdge),
	}
	m.Instrs(func(in *ir.Instr) {
		prof.ExecCount[in] = 1
	})
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if counts, ok := branchCounts[b.Name]; ok {
				prof.BranchTaken[b.Terminator()] = counts
			}
		}
	}
	return New(prof, cfg)
}

// buildFig3a reproduces the paper's Figure 3a (NLT example):
//
//	bb0 --T(0.2)--> bb2, --F(0.8)--> bb1
//	bb1 --T(0.1)--> bb2, --F(0.9)--> bb3
//	bb3 --T(0.7)--> bb4(store), --F(0.3)--> bb5
//	all paths join in bb10.
//
// Expected: fc(bb0 branch) gives the store Pc = 0.8*0.9*0.7/0.8 = 0.63.
func buildFig3a(t testing.TB) (*ir.Module, *ir.Instr, *ir.Instr) {
	t.Helper()
	m := ir.NewModule("fig3a")
	m.AddGlobal("g", ir.I32, 1, nil)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	bb0 := b.NewBlock("bb0")
	bb1 := b.NewBlock("bb1")
	bb2 := b.NewBlock("bb2")
	bb3 := b.NewBlock("bb3")
	bb4 := b.NewBlock("bb4")
	bb5 := b.NewBlock("bb5")
	bb10 := b.NewBlock("bb10")

	g := m.Global("g")
	b.SetBlock(bb0)
	v := b.Load(ir.I32, g)
	c0 := b.ICmp(ir.PredSGT, v, ir.ConstInt(ir.I32, 0))
	br0 := b.CondBr(c0, bb2, bb1)

	b.SetBlock(bb1)
	c1 := b.ICmp(ir.PredSGT, v, ir.ConstInt(ir.I32, 1))
	b.CondBr(c1, bb2, bb3)

	b.SetBlock(bb3)
	c3 := b.ICmp(ir.PredSGT, v, ir.ConstInt(ir.I32, 2))
	b.CondBr(c3, bb4, bb5)

	b.SetBlock(bb4)
	store := b.Store(ir.ConstInt(ir.I32, 1), g)
	b.Br(bb10)

	b.SetBlock(bb2)
	b.Br(bb10)
	b.SetBlock(bb5)
	b.Br(bb10)
	b.SetBlock(bb10)
	b.Ret(nil)

	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, br0, store
}

func TestFCNonLoopTerminatingPaperExample(t *testing.T) {
	m, br0, store := buildFig3a(t)
	model := modelFor(m, map[string][2]uint64{
		"bb0": {20, 80}, // T 0.2, F 0.8
		"bb1": {10, 90}, // T 0.1, F 0.9
		"bb3": {70, 30}, // T 0.7, F 0.3
	}, TridentConfig())

	result := model.fc(br0)
	if len(result) != 1 {
		t.Fatalf("fc returned %d stores, want 1", len(result))
	}
	if result[0].Store != store {
		t.Error("fc identified the wrong store")
	}
	if math.Abs(result[0].Prob-0.63) > 1e-9 {
		t.Errorf("Pc = %v, want 0.63 (paper Fig. 3a)", result[0].Prob)
	}
}

func TestFCStoreImmediatelyDominatedGetsOne(t *testing.T) {
	// Figure 2a shape: branch directly guards the store; Pc must be 1.
	m, err := ir.Parse(`
module "fig2"
global @g i32 x 1
func @main() void {
entry:
  %v = load i32, @g
  %c = icmp sgt %v, i32 0
  condbr %c, t, f
t:
  store i32 1, @g
  br f
f:
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	model := modelFor(m, map[string][2]uint64{"entry": {50, 50}}, TridentConfig())
	br := m.Func("main").Block("entry").Terminator()
	result := model.fc(br)
	if len(result) != 1 || math.Abs(result[0].Prob-1) > 1e-9 {
		t.Fatalf("fc = %+v, want single store with Pc = 1", result)
	}
}

// buildFig3b reproduces the paper's Figure 3b (LT example):
//
//	bb0 (loop header) --T(0.99)--> bb1, --F(0.01)--> bb5 (exit)
//	bb1 --T(0.1)--> bb0 (back edge), --F(0.9)--> bb2
//	bb2 --T(0.7)--> bb4(store), --F(0.3)--> bb3
//	bb3 and bb4 branch back to bb0.
//
// Expected: fc(bb0 branch) gives the store Pc = 0.99*0.9*0.7 ≈ 0.62.
func buildFig3b(t testing.TB) (*ir.Module, *ir.Instr, *ir.Instr) {
	t.Helper()
	m := ir.NewModule("fig3b")
	m.AddGlobal("g", ir.I32, 1, nil)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	bb0 := b.NewBlock("bb0")
	bb1 := b.NewBlock("bb1")
	bb2 := b.NewBlock("bb2")
	bb3 := b.NewBlock("bb3")
	bb4 := b.NewBlock("bb4")
	bb5 := b.NewBlock("bb5")
	g := m.Global("g")

	b.SetBlock(bb0)
	v := b.Load(ir.I32, g)
	c0 := b.ICmp(ir.PredSGT, v, ir.ConstInt(ir.I32, 0))
	br0 := b.CondBr(c0, bb1, bb5)

	b.SetBlock(bb1)
	c1 := b.ICmp(ir.PredSGT, v, ir.ConstInt(ir.I32, 1))
	b.CondBr(c1, bb0, bb2)

	b.SetBlock(bb2)
	c2 := b.ICmp(ir.PredSGT, v, ir.ConstInt(ir.I32, 2))
	b.CondBr(c2, bb4, bb3)

	b.SetBlock(bb3)
	b.Br(bb0)

	b.SetBlock(bb4)
	store := b.Store(ir.ConstInt(ir.I32, 1), g)
	b.Br(bb0)

	b.SetBlock(bb5)
	b.Ret(nil)

	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, br0, store
}

func TestFCLoopTerminatingPaperExample(t *testing.T) {
	m, br0, store := buildFig3b(t)
	model := modelFor(m, map[string][2]uint64{
		"bb0": {99, 1},  // T 0.99 continue, F 0.01 exit
		"bb1": {10, 90}, // T 0.1 back edge, F 0.9 onward
		"bb2": {70, 30}, // T 0.7 store, F 0.3
	}, TridentConfig())

	result := model.fc(br0)
	if len(result) != 1 {
		t.Fatalf("fc returned %d stores, want 1", len(result))
	}
	if result[0].Store != store {
		t.Error("fc identified the wrong store")
	}
	want := 0.99 * 0.9 * 0.7
	if math.Abs(result[0].Prob-want) > 1e-9 {
		t.Errorf("Pc = %v, want %v (paper Fig. 3b)", result[0].Prob, want)
	}
}

func TestFCIgnoresStoresPastTheJoin(t *testing.T) {
	m, err := ir.Parse(`
module "join"
global @g i32 x 1
func @main() void {
entry:
  %v = load i32, @g
  %c = icmp sgt %v, i32 0
  condbr %c, t, f
t:
  br join
f:
  br join
join:
  store i32 1, @g
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	model := modelFor(m, map[string][2]uint64{"entry": {50, 50}}, TridentConfig())
	br := m.Func("main").Block("entry").Terminator()
	if result := model.fc(br); len(result) != 0 {
		t.Errorf("fc = %+v, want empty (store executes on both paths)", result)
	}
}

func TestFCNonCondBrReturnsNil(t *testing.T) {
	m, br0, _ := buildFig3a(t)
	model := modelFor(m, nil, TridentConfig())
	ret := m.Func("main").Block("bb10").Terminator()
	if got := model.fc(ret); got != nil {
		t.Errorf("fc(ret) = %v, want nil", got)
	}
	// Unprofiled branches fall back to 0.5 splits without crashing.
	if got := model.fc(br0); len(got) != 1 {
		t.Errorf("fc with default probs returned %d stores", len(got))
	}
}

func TestFCCaching(t *testing.T) {
	m, br0, _ := buildFig3a(t)
	model := modelFor(m, map[string][2]uint64{
		"bb0": {20, 80}, "bb1": {10, 90}, "bb3": {70, 30},
	}, TridentConfig())
	a := model.fc(br0)
	b := model.fc(br0)
	if &a[0] != &b[0] {
		t.Error("fc results should be cached")
	}
}
