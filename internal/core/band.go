package core

import (
	"trident/internal/interp"
	"trident/internal/ir"
)

// The walker tracks corruption in magnitude bands: the bit position of the
// highest corrupted bit of a value, bucketed. Band membership decides two
// things that scalar per-op masking models (including the paper's, per its
// §VII-A floating-point discussion) get wrong:
//
//   - chained operations mask the *same* bottom bits, so multiplying
//     independent per-op masking probabilities over-masks long float
//     chains; with banded tracking, rounding only erodes the bottom band
//     while mid-band corruption rides through untouched;
//   - corruption absorbed into low mantissa bits (adding a small corrupted
//     term into a large accumulator) can never show through
//     reduced-precision ("%g") output, which only top-band corruption
//     passes.
const nBands = 2

// bandTop is the output-visible band: sign, exponent, and the mantissa
// bits that survive two-significant-digit printing.
const bandTop = nBands - 1

// classReplaced is the third corruption class: the value is not a
// bit-flipped variant of the correct one but a wholly different (often
// zero) value — the result of control-flow divergence skipping or
// re-executing a producer. Replaced values behave differently from flips:
// a zero left by a skipped store *wins* a min comparison that an upward
// bit flip would lose.
const classReplaced = nBands

// nClasses counts corruption classes: the magnitude bands plus replaced.
const nClasses = nBands + 1

// bandPair carries per-class probabilities (or expected counts).
type bandPair [nClasses]float64

// total returns the summed mass.
func (p bandPair) total() float64 {
	t := 0.0
	for _, v := range p {
		t += v
	}
	return t
}

// bandBoundaries returns the start bit of each band for type t, ascending.
// Band i covers bits [bounds[i], bounds[i+1]); the last band extends to the
// top bit. For floats the top band is the sign, the exponent and ~7
// mantissa bits (two significant decimal digits); the bottom band is the
// rounding-erodable tail.
func bandBoundaries(t ir.Type) [nBands]int {
	switch t {
	case ir.F32:
		return [nBands]int{0, 16}
	case ir.F64:
		return [nBands]int{0, 45}
	default:
		return [nBands]int{0, t.Bits() / 2}
	}
}

// bandOfBit classifies bit position b of a value of type t.
func bandOfBit(t ir.Type, b int) int {
	bounds := bandBoundaries(t)
	for band := nBands - 1; band > 0; band-- {
		if b >= bounds[band] {
			return band
		}
	}
	return 0
}

// bandSplit returns the per-band fraction of bit positions of type t: the
// initial distribution of a uniformly random single-bit flip.
func bandSplit(t ir.Type) bandPair {
	w := t.Bits()
	var p bandPair
	if w == 0 {
		return p
	}
	for b := 0; b < w; b++ {
		p[bandOfBit(t, b)]++
	}
	for i := range p {
		p[i] /= float64(w)
	}
	return p
}

// transition is the per-edge band behaviour: P[from][to] is the
// probability that a corruption in class `from` of the operand propagates
// into class `to` of the result. Row sums below 1 are masking; the crash
// column is tracked separately.
type transition [nClasses]bandPair

// diagonal returns a band-preserving transition scaled by prop.
func diagonal(prop float64) transition {
	var tr transition
	for i := range tr {
		tr[i][i] = prop
	}
	return tr
}

// toReplaced returns a transition sending everything to the replaced
// class with probability prop (control-driven corruption swaps whole
// values).
func toReplaced(prop float64) transition {
	var tr transition
	for i := range tr {
		tr[i][classReplaced] = prop
	}
	return tr
}

// propTotal returns, per input band, the total propagation probability.
func (tr transition) propTotal(from int) float64 { return tr[from].total() }

// transitionFor derives the banded tuple of instruction `in` with operand
// opIdx corrupted; the scalar crash probability rides alongside.
func (m *Model) transitionFor(in *ir.Instr, opIdx int) (transition, float64) {
	switch in.Op {
	case ir.OpStore:
		if opIdx == 1 {
			return transition{}, m.prof.CrashProb(in)
		}
		return diagonal(1), 0
	case ir.OpLoad:
		c := m.prof.CrashProb(in)
		// A surviving wrong-address read returns an unrelated value:
		// large-magnitude corruption.
		return toReplaced(1 - c), c
	case ir.OpICmp, ir.OpFCmp,
		ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem, ir.OpMul,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpIntrinsic:
		return m.empiricalTransition(in, opIdx), 0
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpFPTrunc, ir.OpFPExt, ir.OpBitcast:
		return positionalTransition(in.Operands[0].ValueType(), in.Type), 0
	case ir.OpFPToSI, ir.OpSIToFP:
		// Value-preserving conversions: magnitude class survives.
		return diagonal(1), 0
	case ir.OpSelect:
		if cmp, armMap, ok := minMaxIdiom(in); ok {
			// Compare-select min/max idiom: the corrupted value appears as
			// both a compare operand and an arm, so the pair is modeled
			// jointly — a corruption that loses the comparison is fully
			// masked (e.g. an upward bit flip entering a min). The cond
			// edge carries nothing (opIdx 0); the arm edges carry the
			// joint empirical transition.
			if opIdx == 0 {
				return transition{}, 0
			}
			return m.selectTransition(cmp, armMap, opIdx), 0
		}
		if opIdx == 0 {
			// A redirected select swaps whole values.
			return toReplaced(1), 0
		}
		return diagonal(0.5), 0
	default:
		// add/sub, gep, phi, call/ret plumbing: band-preserving.
		return diagonal(1), 0
	}
}

// positionalTransition models width-changing bit-preserving casts: source
// bit k maps to destination bit k when k is below the destination width
// and is discarded otherwise.
func positionalTransition(src, dst ir.Type) transition {
	sw, dw := src.Bits(), dst.Bits()
	var tr transition
	var counts [nClasses]int
	for b := 0; b < sw; b++ {
		from := bandOfBit(src, b)
		counts[from]++
		if b >= dw {
			continue // truncated away
		}
		tr[from][bandOfBit(dst, b)]++
	}
	for band := 0; band < nBands; band++ {
		if counts[band] > 0 {
			for j := range tr[band] {
				tr[band][j] /= float64(counts[band])
			}
		}
	}
	// Replaced values survive width changes as replaced values.
	tr[classReplaced][classReplaced] = 1
	return tr
}

// empiricalTransition measures the band transition matrix by re-executing
// the instruction on profiled operand samples with each bit of the
// corrupted operand flipped and classifying where the result difference
// lands.
func (m *Model) empiricalTransition(in *ir.Instr, opIdx int) transition {
	if m.cfg.DisableValueProfile {
		return diagonal(1)
	}
	samples := m.prof.Samples[in]
	if len(samples) == 0 {
		return diagonal(1)
	}
	if opIdx >= len(in.Operands) {
		return diagonal(1)
	}
	opType := in.Operands[opIdx].ValueType()
	w := opType.Bits()
	if w == 0 {
		return diagonal(1)
	}
	resType := in.Type
	cmpLike := in.Op.IsCmp()

	var tr transition
	var counts [nClasses]int
	for _, s := range samples {
		base := execOp(in, in.Operands[0].ValueType(), s.LHS, s.RHS)
		for b := 0; b < w; b++ {
			lhs, rhs := s.LHS, s.RHS
			if opIdx == 0 {
				lhs ^= 1 << uint(b)
			} else {
				rhs ^= 1 << uint(b)
			}
			from := bandOfBit(opType, b)
			counts[from]++
			out := execOp(in, in.Operands[0].ValueType(), lhs, rhs)
			diff := out ^ base
			if diff == 0 {
				continue // masked
			}
			if cmpLike {
				// A flipped comparison redirects control: the downstream
				// corruption is whole-value.
				tr[from][classReplaced]++
				continue
			}
			tr[from][bandOfBit(resType, highestBit(diff))]++
		}
		// Replaced row: the operand holds a wholly different value; zero
		// (a skipped initialization) and a large wrong value are the
		// representative cases.
		for _, repl := range []uint64{0, replacementPattern(opType)} {
			lhs, rhs := s.LHS, s.RHS
			if opIdx == 0 {
				lhs = repl
			} else {
				rhs = repl
			}
			counts[classReplaced]++
			if execOp(in, in.Operands[0].ValueType(), lhs, rhs) != base {
				tr[classReplaced][classReplaced]++
			}
		}
	}
	normalizeTransition(&tr, counts)
	return tr
}

// replacementPattern is the large-wrong-value representative for the
// replaced corruption class.
func replacementPattern(t ir.Type) uint64 {
	if t.IsFloat() {
		return ir.FloatToBits(t, 1e9)
	}
	return ir.TruncateToWidth(1<<uint(t.Bits()-2), t.Bits())
}

// selectTransition is the banded version of the compare-select min/max
// idiom: flips per band of the mirrored compare operand, classified by
// where the selected value's difference lands.
func (m *Model) selectTransition(cmp *ir.Instr, armMap [2]int, armIdx int) transition {
	if m.cfg.DisableValueProfile {
		return diagonal(0.5)
	}
	samples := m.prof.Samples[cmp]
	if len(samples) == 0 {
		return diagonal(0.5)
	}
	t := cmp.Operands[0].ValueType()
	w := t.Bits()
	corruptedOp := armMap[armIdx-1]

	pick := func(a, b uint64) uint64 {
		c := interp.EvalCmp(cmp.Pred, t, a, b)
		chosenArm := 2
		if c != 0 {
			chosenArm = 1
		}
		if armMap[chosenArm-1] == 0 {
			return a
		}
		return b
	}

	var tr transition
	var counts [nClasses]int
	for _, s := range samples {
		base := pick(s.LHS, s.RHS)
		for b := 0; b < w; b++ {
			a, bb := s.LHS, s.RHS
			if corruptedOp == 0 {
				a ^= 1 << uint(b)
			} else {
				bb ^= 1 << uint(b)
			}
			from := bandOfBit(t, b)
			counts[from]++
			diff := pick(a, bb) ^ base
			if diff == 0 {
				continue
			}
			tr[from][bandOfBit(t, highestBit(diff))]++
		}
		// Replaced operand: zero typically wins a min and loses a max.
		for _, repl := range []uint64{0, replacementPattern(t)} {
			a, bb := s.LHS, s.RHS
			if corruptedOp == 0 {
				a = repl
			} else {
				bb = repl
			}
			counts[classReplaced]++
			if pick(a, bb) != base {
				tr[classReplaced][classReplaced]++
			}
		}
	}
	normalizeTransition(&tr, counts)
	return tr
}

func normalizeTransition(tr *transition, counts [nClasses]int) {
	for band := 0; band < nClasses; band++ {
		if counts[band] > 0 {
			for j := range tr[band] {
				tr[band][j] /= float64(counts[band])
			}
		}
	}
}

// highestBit returns the index of the most significant set bit (x != 0).
func highestBit(x uint64) int {
	b := 0
	for x > 1 {
		x >>= 1
		b++
	}
	return b
}
