package core

import (
	"trident/internal/ir"
)

// edge is one interprocedural def-use edge: the result of `from` feeds
// operand opIdx of `to`. Call-argument edges are folded through formal
// parameters (the argument's def connects directly to the parameter's
// users), and return edges connect a ret operand's def to every call site
// of the function with opIdx -1 (identity propagation).
type edge struct {
	from  *ir.Instr
	to    *ir.Instr
	opIdx int
	// phiIncoming is, for edges into a phi, the index of the phi arm this
	// edge feeds; -1 otherwise. The consumption weight of a phi arm is the
	// profiled traversal frequency of its CFG edge.
	phiIncoming int
}

// identityEdge marks an edge whose transition is always band-preserving
// full propagation.
const identityEdge = -1

// buildEdges constructs the module-wide def-use edge list, folding
// parameters and returns so the walker is context-insensitive but
// interprocedural.
func buildEdges(m *ir.Module) map[*ir.Instr][]edge {
	out := make(map[*ir.Instr][]edge)
	add := func(from, to *ir.Instr, opIdx, phiIncoming int) {
		out[from] = append(out[from], edge{from: from, to: to, opIdx: opIdx, phiIncoming: phiIncoming})
	}

	// callSites maps a function to the call instructions targeting it.
	callSites := make(map[*ir.Func][]*ir.Instr)
	m.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall {
			callSites[in.Callee] = append(callSites[in.Callee], in)
		}
	})

	// paramUsers maps each formal parameter to its (instr, opIdx) users.
	type use struct {
		in    *ir.Instr
		opIdx int
	}
	paramUsers := make(map[*ir.Param][]use)
	m.Instrs(func(in *ir.Instr) {
		for k, op := range in.Operands {
			if p, ok := op.(*ir.Param); ok {
				paramUsers[p] = append(paramUsers[p], use{in, k})
			}
		}
	})

	m.Instrs(func(in *ir.Instr) {
		for k, op := range in.Operands {
			def, ok := op.(*ir.Instr)
			if !ok {
				continue
			}
			switch in.Op {
			case ir.OpCall:
				// A corrupted argument flows to the callee parameter's
				// users rather than to the call's own result.
				for _, u := range paramUsers[in.Callee.Params[k]] {
					phiArm := -1
					if u.in.Op == ir.OpPhi {
						phiArm = u.opIdx
					}
					add(def, u.in, u.opIdx, phiArm)
				}
			case ir.OpRet:
				// A corrupted return value flows to every call site's
				// result.
				for _, site := range callSites[in.Block.Fn] {
					add(def, site, identityEdge, -1)
				}
			case ir.OpPhi:
				add(def, in, k, k)
			default:
				add(def, in, k, -1)
			}
		}
	})
	return out
}

// ends aggregates where the corruption from one start instruction can go
// (the terminals of the paper's static data-dependent instruction
// sequences).
type ends struct {
	// output is the probability of reaching program output visibly:
	// reduced-precision prints only pass high-band corruption.
	output float64
	// stores maps store instructions to the banded probability that their
	// stored value is corrupted.
	stores map[*ir.Instr]bandPair
	// branches maps conditional branches to the probability their
	// direction is flipped.
	branches map[*ir.Instr]float64
	// crash is the estimated probability of a trap along the way.
	crash float64
}

// walkMode selects the initial band distribution of a walk: walkUniform
// starts from a uniformly random flipped bit of the start instruction's
// result (Algorithm 1's entry); a non-negative mode pins the corruption to
// that band (used by fm, which must know the band of a stored corruption).
type walkMode int

// walkUniform is the uniform-random-bit walk mode.
const walkUniform walkMode = -1

// walkBand returns the walk mode pinned to one band.
func walkBand(band int) walkMode { return walkMode(band) }

// walkKey caches walks per (start, mode).
type walkKey struct {
	in   *ir.Instr
	mode walkMode
}

// consumptionWeight is the expected number of times `to` consumes one
// corrupted result of `from`, per execution of `from`:
//
//   - for phi arms, the profiled traversal frequency of the incoming CFG
//     edge relative to the def's executions — this makes loop-carried
//     corruption persist with the back-edge probability, so accumulators
//     converge to full propagation via the geometric series;
//   - for everything else, the execution-frequency ratio
//     ExecCount(to)/ExecCount(from). SSA dominance makes non-phi users
//     forward-reachable from their defs, so the ratio is the profiled
//     generalization of the paper's path-probability weighting (the
//     NULL-node masking of §IV-E): a consumer guarded by a 60%-taken
//     branch yields 0.6.
func (m *Model) consumptionWeight(ed edge) float64 {
	fromCount := m.prof.ExecCount[ed.from]
	if fromCount == 0 {
		return 0
	}
	if ed.phiIncoming >= 0 && ed.to.Op == ir.OpPhi {
		from := ed.to.PhiBlocks[ed.phiIncoming]
		return m.edgeTraversals(from, ed.to.Block) / float64(fromCount)
	}
	return float64(m.prof.ExecCount[ed.to]) / float64(fromCount)
}

// edgeTraversals returns the profiled number of times control flowed along
// the CFG edge from→to.
func (m *Model) edgeTraversals(from, to *ir.Block) float64 {
	term := from.Terminator()
	if term == nil {
		return 0
	}
	switch term.Op {
	case ir.OpBr:
		if term.Targets[0] == to {
			return float64(m.prof.ExecCount[term])
		}
	case ir.OpCondBr:
		bt := m.prof.BranchTaken[term]
		total := 0.0
		for i, tgt := range term.Targets {
			if tgt == to {
				total += float64(bt[i])
			}
		}
		return total
	}
	return 0
}

// edgeTransition returns the cached banded transition and crash share of
// an edge.
func (m *Model) edgeTransition(ed edge) (transition, float64) {
	if ed.opIdx == identityEdge {
		return diagonal(1), 0
	}
	key := tupleKey{ed.to, ed.opIdx}
	if entry, ok := m.transCache[key]; ok {
		return entry.tr, entry.crash
	}
	tr, crash := m.transitionFor(ed.to, ed.opIdx)
	m.transCache[key] = transEntry{tr: tr, crash: crash}
	return tr, crash
}

// walkFrom runs the fs sub-model from `start`, whose result register is
// assumed corrupted per `mode`, and returns the terminal probabilities.
func (m *Model) walkFrom(start *ir.Instr, mode walkMode) *ends {
	key := walkKey{start, mode}
	if cached, ok := m.walkCache[key]; ok {
		return cached
	}
	e := &ends{
		stores:   make(map[*ir.Instr]bandPair),
		branches: make(map[*ir.Instr]float64),
	}
	m.walkCache[key] = e

	if m.prof.ExecCount[start] == 0 {
		return e // never activated
	}

	var seed bandPair
	if mode == walkUniform {
		seed = bandSplit(start.Type)
	} else {
		seed[int(mode)] = 1
	}

	// Phase 1: unguarded fixpoint. Phase 2 (when the corruption can flip
	// a branch that guards a loop back edge) re-runs the fixpoint with
	// that back edge's persistence scaled down: a corrupted induction
	// value is bound-checked before it is reused, so bit flips that would
	// have left the loop's index range mostly exit the loop instead of
	// surviving into the next iteration's address computation.
	reach, once := m.fixpoint(start, seed, nil)
	guardFlip := m.guardFlips(once)
	if len(guardFlip) > 0 {
		reach, once = m.fixpoint(start, seed, guardFlip)
	}

	// Extraction: classify every out-edge of a reached node. The terminal
	// contribution is the expected corrupted consumptions, capped at 1 to
	// become a probability.
	addCrash := func(p float64) {
		e.crash += p
		if e.crash > 1 {
			e.crash = 1
		}
	}
	capped := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}

	for node, r := range reach {
		if r.total() <= 0 {
			continue
		}
		for _, ed := range m.edges[node] {
			to := ed.to
			w := m.consumptionWeight(ed) * m.guardScale(ed, guardFlip)
			if w == 0 {
				continue
			}
			w1 := w
			if w1 > 1 {
				w1 = 1
			}
			tr, crashProb := m.edgeTransition(ed)
			switch {
			case to.Op == ir.OpStore && ed.opIdx == 0:
				sp := e.stores[to]
				for from := 0; from < nClasses; from++ {
					for band := 0; band < nClasses; band++ {
						sp[band] = capped(sp[band] + r[from]*w*tr[from][band])
					}
				}
				e.stores[to] = sp
			case to.Op == ir.OpStore && ed.opIdx == 1:
				addCrash(capped(once[node].total()) * w1 * crashProb)
			case to.Op == ir.OpLoad:
				// The load's surviving share continued through the
				// fixpoint; its crash share is accounted here with
				// at-least-once semantics (correlated retries).
				addCrash(capped(once[node].total()) * w1 * crashProb)
			case to.Op == ir.OpCondBr:
				flip := 0.0
				for from := 0; from < nClasses; from++ {
					flip += r[from] * w * tr.propTotal(from)
				}
				e.branches[to] = capped(e.branches[to] + flip)
			case to.Op == ir.OpPrint && m.isOutput(to):
				contribution := 0.0
				g2 := to.Format == ir.FormatG2 && to.Operands[0].ValueType().IsFloat()
				for from := 0; from < nClasses; from++ {
					for band := 0; band < nClasses; band++ {
						if g2 && band != bandTop && band != classReplaced {
							continue // below the printed precision
						}
						contribution += r[from] * w * tr[from][band]
					}
				}
				e.output = capped(e.output + contribution)
			}
		}
	}
	return e
}

// fixpoint computes the banded reach quantities from start, both least
// fixed points over the def-use graph:
//
// reach — expected corrupted executions per band (total bounded by
// ExecCount): value corruption compounds through loop-carried phis, so an
// accumulator whose exit value always prints converges to full
// propagation.
//
// once — probability that at least one execution is corrupted, per band
// (edge weights capped at 1, bands capped at 1): used for crash
// probabilities, because a single flipped bit retries the *same* wrong
// address every iteration — the trials are perfectly correlated, and the
// first access decides.
//
// guardFlip, when non-nil, maps loop-guarding conditional branches to the
// probability the corruption flips them; phi arms crossing a back edge
// guarded by such a branch have their consumption scaled by the
// complement (the corruption survives into the next iteration only when
// the guard still passes).
func (m *Model) fixpoint(start *ir.Instr, seed bandPair, guardFlip map[*ir.Instr]float64) (reach, once map[*ir.Instr]bandPair) {
	const eps = 1e-9
	reach = map[*ir.Instr]bandPair{start: seed}
	once = map[*ir.Instr]bandPair{start: seed}
	inSum := map[*ir.Instr]bandPair{start: seed}
	onceSum := map[*ir.Instr]bandPair{start: seed}
	contrib := make(map[edge]bandPair)
	onceContrib := make(map[edge]bandPair)

	worklist := []*ir.Instr{start}
	for len(worklist) > 0 {
		node := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		r := reach[node]
		o := once[node]
		for _, ed := range m.edges[node] {
			if isTerminal(ed.to) {
				continue // sinks; handled during extraction from reach
			}
			tr, _ := m.edgeTransition(ed)
			w := m.consumptionWeight(ed) * m.guardScale(ed, guardFlip)
			if w <= 0 {
				continue
			}
			w1 := w
			if w1 > 1 {
				w1 = 1
			}

			var newContrib, newOnce bandPair
			for from := 0; from < nClasses; from++ {
				for band := 0; band < nClasses; band++ {
					newContrib[band] += r[from] * w * tr[from][band]
					newOnce[band] += o[from] * w1 * tr[from][band]
				}
			}

			changed := false

			if old := contrib[ed]; grew(newContrib, old, eps) {
				sum := inSum[ed.to]
				for band := 0; band < nClasses; band++ {
					if newContrib[band] > old[band] {
						sum[band] += newContrib[band] - old[band]
						old[band] = newContrib[band]
					}
				}
				contrib[ed] = old
				inSum[ed.to] = sum
				target := sum
				if bound := float64(m.prof.ExecCount[ed.to]); target.total() > bound {
					f := bound / target.total()
					for band := range target {
						target[band] *= f
					}
				}
				if grew(target, reach[ed.to], eps) {
					reach[ed.to] = target
					changed = true
				}
			}

			if oldOnce := onceContrib[ed]; grew(newOnce, oldOnce, eps) {
				sum := onceSum[ed.to]
				for band := 0; band < nClasses; band++ {
					if newOnce[band] > oldOnce[band] {
						sum[band] += newOnce[band] - oldOnce[band]
						oldOnce[band] = newOnce[band]
					}
				}
				onceContrib[ed] = oldOnce
				onceSum[ed.to] = sum
				target := sum
				// "At least once" is a probability of a single event: cap
				// the total, preserving the band mix.
				if t := target.total(); t > 1 {
					for band := range target {
						target[band] /= t
					}
				}
				if grew(target, once[ed.to], eps) {
					once[ed.to] = target
					changed = true
				}
			}

			if changed {
				worklist = append(worklist, ed.to)
			}
		}
	}
	return reach, once
}

// guardScale returns the survival factor of an edge under the phase-2
// guard refinement: corruption that flips a bound check is consumed by the
// divergence (handled through fc), not by the uses behind the check. Two
// cases compose:
//
//   - a phi arm crossing a back edge whose latch ends in a flip-influenced
//     conditional branch survives into the next iteration only when the
//     branch still passes;
//   - a use strictly dominated by a flip-influenced branch that executes
//     between the def and the use (header-checked loops: the def is the
//     header phi or earlier, the check ends the header, the use sits in
//     the body) sees the corruption only when the check still passes.
func (m *Model) guardScale(ed edge, guardFlip map[*ir.Instr]float64) float64 {
	if len(guardFlip) == 0 {
		return 1
	}
	s := 1.0
	if g := m.backEdgeGuard(ed); g != nil {
		s *= 1 - guardFlip[g]
	}
	fromBlk, toBlk := ed.from.Block, ed.to.Block
	if fromBlk.Fn != toBlk.Fn {
		return s
	}
	cfg := m.cfgOf(toBlk.Fn)
	for g, flip := range guardFlip {
		gBlk := g.Block
		if gBlk.Fn != toBlk.Fn || gBlk == toBlk {
			continue
		}
		if !cfg.Dominates(gBlk, toBlk) {
			continue
		}
		if fromBlk != gBlk && !cfg.Dominates(fromBlk, gBlk) {
			continue
		}
		s *= 1 - flip
	}
	return s
}

// backEdgeGuard returns, for a phi-arm edge whose incoming CFG edge is a
// loop back edge terminated by a conditional branch, that branch; nil
// otherwise.
func (m *Model) backEdgeGuard(ed edge) *ir.Instr {
	if ed.phiIncoming < 0 || ed.to.Op != ir.OpPhi {
		return nil
	}
	from := ed.to.PhiBlocks[ed.phiIncoming]
	cfg := m.cfgOf(ed.to.Block.Fn)
	if !cfg.IsBackEdge(from, ed.to.Block) {
		return nil
	}
	term := from.Terminator()
	if term == nil || term.Op != ir.OpCondBr {
		return nil
	}
	return term
}

// guardFlips estimates, from the phase-1 at-least-once map, the
// probability that the corruption flips each back-edge-guarding branch
// (at-least-once semantics: the same flipped bit either trips the bound
// check on its first evaluation or never). Only guards actually influenced
// by the corruption are returned.
func (m *Model) guardFlips(once map[*ir.Instr]bandPair) map[*ir.Instr]float64 {
	var flips map[*ir.Instr]float64
	for node, o := range once {
		if o.total() <= 0 {
			continue
		}
		for _, ed := range m.edges[node] {
			if ed.to.Op != ir.OpCondBr {
				continue
			}
			blk := ed.to.Block
			cfg := m.cfgOf(blk.Fn)
			// Only loop-terminating branches act as guards: both
			// latch-style (a target is the back edge) and header-style
			// (one target exits the loop) checks qualify.
			if lt, _ := cfg.IsLoopTerminating(blk); !lt {
				continue
			}
			w := m.consumptionWeight(ed)
			if w > 1 {
				w = 1
			}
			tr, _ := m.edgeTransition(ed)
			p := 0.0
			for from := 0; from < nClasses; from++ {
				p += o[from] * w * tr.propTotal(from)
			}
			if p > 1 {
				p = 1
			}
			if p <= 1e-9 {
				continue
			}
			if flips == nil {
				flips = make(map[*ir.Instr]float64)
			}
			if p > flips[ed.to] {
				flips[ed.to] = p
			}
		}
	}
	return flips
}

// isTerminal reports whether corruption stops flowing through registers at
// this instruction: it either has no result or is handled by another
// sub-model.
func isTerminal(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCondBr, ir.OpPrint, ir.OpCheck, ir.OpBr, ir.OpRet:
		return true
	default:
		return false
	}
}

// grew reports whether any band of a exceeds the same band of b by eps.
func grew(a, b bandPair, eps float64) bool {
	for i := range a {
		if a[i] > b[i]+eps {
			return true
		}
	}
	return false
}
