package core

import (
	"math"
	"testing"

	"trident/internal/ir"
)

// fig4Fixed reproduces the paper's Figure 4: a first loop stores an array,
// a second loop loads each element and prints it only when a
// data-dependent condition holds (60% of iterations). The paper derives
// fm(store) = 0.6.
const fig4Fixed = `
module "fig4"
global @arr i64 x 10
func @main() void {
entry:
  br wloop
wloop:
  %i = phi i64 [i64 0, entry], [%inc, wloop]
  %p = gep i64, @arr, %i
  store %i, %p
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 10
  condbr %c, wloop, rentry
rentry:
  br rloop
rloop:
  %j = phi i64 [i64 0, rentry], [%jinc, rjoin]
  %q = gep i64, @arr, %j
  %x = load i64, %q
  %m = srem %x, i64 10
  %cc = icmp slt %m, i64 6
  condbr %cc, emit, rjoin
emit:
  print %x
  br rjoin
rjoin:
  %jinc = add %j, i64 1
  %jc = icmp slt %jinc, i64 10
  condbr %jc, rloop, done
done:
  ret
}
`

func TestFMPaperFig4(t *testing.T) {
	model := profiledModel(t, fig4Fixed, TridentConfig())
	store := instrByOp(t, model.prof.Module, "wloop", ir.OpStore)
	got := model.memOut(store, bandTop)
	// Elements 0..9: printed when (x mod 10) < 6, i.e. 6 of 10. The load
	// feeds print directly; the emit branch guards it.
	if math.Abs(got-0.6) > 0.05 {
		t.Errorf("fm(store) = %v, want ~0.6 (paper Fig. 4)", got)
	}
}

func TestFMStoreNeverRead(t *testing.T) {
	model := profiledModel(t, `
module "deadstore"
global @a i64 x 2
func @main() void {
entry:
  %p = gep i64, @a, i64 0
  store i64 5, %p
  %q = gep i64, @a, i64 1
  %v = load i64, %q
  print %v
  ret
}
`, TridentConfig())
	store := instrByOp(t, model.prof.Module, "entry", ir.OpStore)
	if got := model.memOut(store, bandTop); got != 0 {
		t.Errorf("fm(unread store) = %v, want 0", got)
	}
}

func TestFMChainedStores(t *testing.T) {
	// store a -> load -> store b -> load -> print: fm(first store) = 1.
	model := profiledModel(t, `
module "chain"
global @a i64 x 1
global @b i64 x 1
func @main() void {
entry:
  store i64 9, @a
  %v = load i64, @a
  %w = add %v, i64 1
  store %w, @b
  %u = load i64, @b
  print %u
  ret
}
`, TridentConfig())
	var stores []*ir.Instr
	model.prof.Module.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	})
	if len(stores) != 2 {
		t.Fatal("want 2 stores")
	}
	for i, s := range stores {
		if got := model.memOut(s, bandTop); math.Abs(got-1) > 1e-9 {
			t.Errorf("fm(store %d) = %v, want 1", i, got)
		}
	}
}

func TestFMCyclicDependence(t *testing.T) {
	// A memory accumulator: load, add, store back, every iteration; the
	// final value prints. Corruption persists: fm(store) should be 1.
	model := profiledModel(t, `
module "memacc"
global @acc i64 x 1
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %v = load i64, @acc
  %nv = add %v, %i
  store %nv, @acc
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 16
  condbr %c, loop, done
done:
  %f = load i64, @acc
  print %f
  ret
}
`, TridentConfig())
	store := instrByOp(t, model.prof.Module, "loop", ir.OpStore)
	got := model.memOut(store, bandTop)
	if math.Abs(got-1) > 0.01 {
		t.Errorf("fm(accumulator store) = %v, want ~1", got)
	}
	if model.FMIterations() < 2 {
		t.Errorf("cyclic system should need >1 sweep, got %d", model.FMIterations())
	}
}

func TestFMPartialOverwrite(t *testing.T) {
	// The second loop overwrites half the elements before the read loop,
	// so only half the first loop's stores survive to be read.
	model := profiledModel(t, `
module "overwrite"
global @a i64 x 8
func @main() void {
entry:
  br w1
w1:
  %i = phi i64 [i64 0, entry], [%inc, w1]
  %p = gep i64, @a, %i
  store %i, %p
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 8
  condbr %c, w1, w2entry
w2entry:
  br w2
w2:
  %j = phi i64 [i64 0, w2entry], [%jinc, w2]
  %q = gep i64, @a, %j
  store i64 0, %q
  %jinc = add %j, i64 2
  %jc = icmp slt %jinc, i64 8
  condbr %jc, w2, rentry
rentry:
  br r
r:
  %k = phi i64 [i64 0, rentry], [%kinc, r]
  %s = gep i64, @a, %k
  %v = load i64, %s
  print %v
  %kinc = add %k, i64 1
  %kc = icmp slt %kinc, i64 8
  condbr %kc, r, done
done:
  ret
}
`, TridentConfig())
	store1 := instrByOp(t, model.prof.Module, "w1", ir.OpStore)
	got := model.memOut(store1, bandTop)
	// 4 of 8 first-loop stores are overwritten before the read.
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("fm(overwritten store) = %v, want ~0.5", got)
	}
}
