// Package core implements TRIDENT (paper §IV): the three-level error
// propagation model composed of fs (static-instruction level), fc
// (control-flow level) and fm (memory level), plus the two simpler
// variants the paper evaluates (fs alone, fs+fc). Given a profile of one
// fault-free execution, the model predicts the SDC probability of every
// instruction and of the whole program without fault injection.
// DESIGN.md §3 specifies each sub-model and the refinements beyond the
// paper.
package core

import (
	"trident/internal/interp"
	"trident/internal/ir"
)

// tupleKey caches derived per-edge behaviour per (instruction, corrupted
// operand).
type tupleKey struct {
	in    *ir.Instr
	opIdx int
}

// transEntry is a cached banded transition plus its crash share.
type transEntry struct {
	tr    transition
	crash float64
}

// empiricalFlipProb measures, over the profiled operand samples of `in`,
// the probability that flipping one uniformly random bit of operand opIdx
// changes the instruction's result — the scalar (band-blind) version of
// the empirical tuples, kept as a reference implementation of the paper's
// §IV-C tuple derivation (e.g. "cmp sgt $1, 0" on positive values yields
// 1/32). Unprofiled instructions conservatively propagate.
func (m *Model) empiricalFlipProb(in *ir.Instr, opIdx int) float64 {
	if m.cfg.DisableValueProfile {
		return 1
	}
	samples := m.prof.Samples[in]
	if len(samples) == 0 {
		return 1
	}
	t := in.Operands[0].ValueType()
	w := in.Operands[opIdx].ValueType().Bits()
	if w == 0 {
		return 1
	}
	changed, total := 0, 0
	for _, s := range samples {
		base := execOp(in, t, s.LHS, s.RHS)
		for b := 0; b < w; b++ {
			lhs, rhs := s.LHS, s.RHS
			if opIdx == 0 {
				lhs ^= 1 << uint(b)
			} else {
				rhs ^= 1 << uint(b)
			}
			if execOp(in, t, lhs, rhs) != base {
				changed++
			}
			total++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(changed) / float64(total)
}

// minMaxIdiom recognizes select(icmp(a, b), x, y) where {x, y} == {a, b}:
// the compare-select min/max pattern. armMap[k] is the compare operand
// index mirrored by select arm k+1. The pair is modeled jointly: a
// corruption that loses the comparison is fully masked (e.g. an upward
// bit flip entering a min).
func minMaxIdiom(sel *ir.Instr) (cmp *ir.Instr, armMap [2]int, ok bool) {
	if sel.Op != ir.OpSelect {
		return nil, armMap, false
	}
	cmp, isInstr := sel.Operands[0].(*ir.Instr)
	if !isInstr || !cmp.Op.IsCmp() {
		return nil, armMap, false
	}
	a, b := cmp.Operands[0], cmp.Operands[1]
	x, y := sel.Operands[1], sel.Operands[2]
	switch {
	case x == a && y == b:
		return cmp, [2]int{0, 1}, true
	case x == b && y == a:
		return cmp, [2]int{1, 0}, true
	default:
		return nil, armMap, false
	}
}

// execOp re-executes a two-operand instruction or intrinsic on raw bit
// patterns, treating a trapping division as a distinguishable outcome.
func execOp(in *ir.Instr, t ir.Type, lhs, rhs uint64) uint64 {
	switch {
	case in.Op.IsCmp():
		return interp.EvalCmp(in.Pred, t, lhs, rhs)
	case in.Op == ir.OpIntrinsic:
		args := []float64{ir.FloatFromBits(t, lhs)}
		if len(in.Operands) > 1 {
			args = append(args, ir.FloatFromBits(in.Operands[1].ValueType(), rhs))
		}
		return ir.FloatToBits(in.Type, interp.EvalIntrinsic(in.Intr, args))
	default:
		bits, ok := interp.EvalBinary(in.Op, t, lhs, rhs)
		if !ok {
			return ^uint64(0) // trap marker distinct from common results
		}
		return ir.TruncateToWidth(bits, in.Type.Bits())
	}
}

// fpOutputMask is the paper's closed-form masking multiplier for a
// corrupted float printed with reduced precision (§IV-E "Floating
// Point"): only mantissa corruption can hide in the digits dropped by the
// output format; for Float with %g precision 2 the paper derives 48.66%.
//
// The banded walker supersedes this formula (a uniformly random flip of an
// f32 starts ~50% in the high band, and only high-band corruption passes a
// reduced-precision print — the same quantity, derived structurally), but
// the closed form is kept as the reference the model is validated against.
func fpOutputMask(t ir.Type, format ir.OutputFormat) float64 {
	if format != ir.FormatG2 || !t.IsFloat() {
		return 1
	}
	var mantissa, fullDigits float64
	w := float64(t.Bits())
	if t == ir.F32 {
		mantissa, fullDigits = 23, 7
	} else {
		mantissa, fullDigits = 52, 15
	}
	const keptDigits = 2
	return ((w - mantissa) + mantissa*(keptDigits/fullDigits)) / w
}

// sampleRNG provides deterministic pseudo-random sampling for the
// overall-SDC estimator.
type sampleRNG struct{ s uint64 }

func newSampleRNG(seed uint64) *sampleRNG {
	if seed == 0 {
		seed = 0xA3EC647659359ACD
	}
	return &sampleRNG{s: seed}
}

func (r *sampleRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *sampleRNG) intn(n uint64) uint64 { return r.next() % n }
