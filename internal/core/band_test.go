package core

import (
	"math"
	"testing"

	"trident/internal/ir"
)

func TestBandSplitSumsToOne(t *testing.T) {
	for _, ty := range []ir.Type{ir.I1, ir.I8, ir.I16, ir.I32, ir.I64, ir.F32, ir.F64, ir.Ptr} {
		p := bandSplit(ty)
		if math.Abs(p.total()-1) > 1e-12 {
			t.Errorf("%s: split sums to %v", ty, p.total())
		}
		if p[classReplaced] != 0 {
			t.Errorf("%s: random bit flips must not seed the replaced class", ty)
		}
	}
}

func TestBandOfBitFloatBoundaries(t *testing.T) {
	// f32 top band starts at bit 16 (sign + exponent + 7 mantissa bits).
	if bandOfBit(ir.F32, 15) != 0 || bandOfBit(ir.F32, 16) != bandTop {
		t.Error("f32 band boundary wrong")
	}
	// f64 top band starts at bit 45.
	if bandOfBit(ir.F64, 44) != 0 || bandOfBit(ir.F64, 45) != bandTop {
		t.Error("f64 band boundary wrong")
	}
	// The f32 split gives the top band half the bits, matching the
	// paper's 48.66% "%g" masking closed form.
	p := bandSplit(ir.F32)
	if math.Abs(p[bandTop]-0.5) > 1e-12 {
		t.Errorf("f32 top-band share = %v, want 0.5", p[bandTop])
	}
}

func TestDiagonalAndToReplaced(t *testing.T) {
	d := diagonal(0.5)
	for i := 0; i < nClasses; i++ {
		for j := 0; j < nClasses; j++ {
			want := 0.0
			if i == j {
				want = 0.5
			}
			if d[i][j] != want {
				t.Errorf("diagonal[%d][%d] = %v", i, j, d[i][j])
			}
		}
	}
	r := toReplaced(0.8)
	for i := 0; i < nClasses; i++ {
		if r[i][classReplaced] != 0.8 || r.propTotal(i) != 0.8 {
			t.Errorf("toReplaced row %d wrong: %v", i, r[i])
		}
	}
}

func TestPositionalTransitionTrunc(t *testing.T) {
	// i64 -> i16: source low band (bits 0..31) maps its surviving bits
	// (0..15) onto the destination's bands; the source high band (32..63)
	// is discarded entirely.
	tr := positionalTransition(ir.I64, ir.I16)
	if tr.propTotal(bandTop) != 0 {
		t.Errorf("source high band should be fully truncated: %v", tr[bandTop])
	}
	// 16 of 32 low-band source bits survive.
	if math.Abs(tr.propTotal(0)-0.5) > 1e-12 {
		t.Errorf("low band survival = %v, want 0.5", tr.propTotal(0))
	}
	// Replaced values survive the cast as replaced values.
	if tr[classReplaced][classReplaced] != 1 {
		t.Error("replaced class must survive casts")
	}
}

func TestPositionalTransitionExtension(t *testing.T) {
	// Widening keeps every source bit; band membership is reinterpreted
	// in the destination type.
	tr := positionalTransition(ir.I16, ir.I64)
	if math.Abs(tr.propTotal(0)-1) > 1e-12 || math.Abs(tr.propTotal(bandTop)-1) > 1e-12 {
		t.Errorf("widening should preserve all bits: %v", tr)
	}
	// All i16 bits (0..15) are in the i64 low band (<32).
	if tr[bandTop][bandTop] != 0 {
		t.Error("i16 high bits land in the i64 low band")
	}
}

func TestHighestBit(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {0x80, 7}, {1 << 63, 63}, {0xFFFFFFFFFFFFFFFF, 63},
	}
	for _, c := range cases {
		if got := highestBit(c.x); got != c.want {
			t.Errorf("highestBit(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestEmpiricalTransitionMaskedAnd(t *testing.T) {
	// and %x, 0xFF00: flips of x's bits outside 8..15 are masked; the
	// replaced rows still propagate (0 vs golden differs).
	model := profiledModel(t, `
module "band"
func @main() void {
entry:
  %x = add i64 4660, i64 0
  %m = and %x, i64 65280
  print %m
  ret
}
`, TridentConfig())
	and := instrByName(t, model.prof.Module, "m")
	tr := model.empiricalTransition(and, 0)
	// Low band of i64 = bits 0..31; only bits 8..15 survive: 8/32.
	if math.Abs(tr.propTotal(0)-0.25) > 1e-9 {
		t.Errorf("low-band propagation = %v, want 0.25", tr.propTotal(0))
	}
	if tr.propTotal(bandTop) != 0 {
		t.Errorf("high-band propagation = %v, want 0 (all masked)", tr.propTotal(bandTop))
	}
	// x = 4660 has bits under the mask, so replacing x with 0 changes the
	// result: the replaced class propagates.
	if tr[classReplaced][classReplaced] == 0 {
		t.Error("replaced operand should change the masked result")
	}
}

func TestTransitionForStoreAddressCrash(t *testing.T) {
	model := profiledModel(t, `
module "sa"
global @g i64 x 8
func @main() void {
entry:
  %i = add i64 1, i64 0
  %p = gep i64, @g, %i
  store i64 5, %p
  %v = load i64, @g
  print %v
  ret
}
`, TridentConfig())
	var store *ir.Instr
	model.prof.Module.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			store = in
		}
	})
	tr, crash := model.transitionFor(store, 1)
	if crash <= 0 {
		t.Error("store address corruption should carry crash probability")
	}
	for i := 0; i < nClasses; i++ {
		if tr.propTotal(i) != 0 {
			t.Error("store address corruption must not propagate as a value")
		}
	}
	trVal, crashVal := model.transitionFor(store, 0)
	if crashVal != 0 || trVal[0][0] != 1 {
		t.Error("store value corruption should propagate band-preserving")
	}
}
