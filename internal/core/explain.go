package core

import (
	"fmt"
	"sort"
	"strings"

	"trident/internal/ir"
)

// StoreContribution is one memory-level path of an explanation.
type StoreContribution struct {
	// Store is the corrupted store instruction.
	Store *ir.Instr
	// CorruptProb is the probability the stored value is corrupted
	// (summed over corruption classes).
	CorruptProb float64
	// MemToOutput is the memory sub-model's class-weighted probability
	// that the corruption reaches output.
	MemToOutput float64
	// Contribution is the path's share of the SDC probability.
	Contribution float64
}

// BranchContribution is one control-flow path of an explanation.
type BranchContribution struct {
	// Branch is the flipped conditional branch.
	Branch *ir.Instr
	// FlipProb is the probability the corruption flips it.
	FlipProb float64
	// Stores and Regs count the divergence effects behind the branch.
	Stores, Regs int
	// EffectProb is the capped probability the divergence corrupts output.
	EffectProb float64
	// Contribution is the path's share of the SDC probability.
	Contribution float64
}

// Explanation decomposes one instruction's predicted SDC probability into
// its propagation paths — the model's answer to "why is this instruction
// dangerous?", which is what a developer hardening a program acts on.
type Explanation struct {
	// Instr is the explained instruction.
	Instr *ir.Instr
	// Direct is the probability of reaching output through registers only.
	Direct float64
	// Stores are the memory-level paths, largest contribution first.
	Stores []StoreContribution
	// Branches are the control-flow paths, largest contribution first.
	Branches []BranchContribution
	// Crash is the competing crash probability.
	Crash float64
	// SDC is the final (capped) prediction, equal to InstrSDC.
	SDC float64
}

// Explain decomposes the SDC prediction of `in`.
func (m *Model) Explain(in *ir.Instr) *Explanation {
	ex := &Explanation{Instr: in, SDC: m.InstrSDC(in)}
	if !in.HasResult() || m.prof.ExecCount[in] == 0 {
		return ex
	}
	e := m.walkFrom(in, walkUniform)
	ex.Direct = e.output
	ex.Crash = e.crash

	for s, ps := range e.stores {
		sc := StoreContribution{Store: s, CorruptProb: ps.total()}
		if m.cfg.EnableFM {
			for band := 0; band < nClasses; band++ {
				sc.Contribution += ps[band] * m.memOut(s, band)
			}
			if sc.CorruptProb > 0 {
				sc.MemToOutput = sc.Contribution / sc.CorruptProb
			}
		} else {
			sc.Contribution = sc.CorruptProb
			sc.MemToOutput = 1
		}
		ex.Stores = append(ex.Stores, sc)
	}
	sort.Slice(ex.Stores, func(i, j int) bool {
		return ex.Stores[i].Contribution > ex.Stores[j].Contribution
	})

	if m.cfg.EnableFC {
		for br, pb := range e.branches {
			eff := m.fcEffectsOf(br)
			bc := BranchContribution{
				Branch:   br,
				FlipProb: pb,
				Stores:   len(eff.stores),
				Regs:     len(eff.regs),
			}
			for _, sc := range eff.stores {
				if m.cfg.EnableFM {
					bc.EffectProb += sc.Prob * m.memOut(sc.Store, classReplaced)
				} else {
					bc.EffectProb += sc.Prob
				}
			}
			for _, rc := range eff.regs {
				bc.EffectProb += rc.Prob * m.regSDC(rc.Def)
			}
			if bc.EffectProb > 1 {
				bc.EffectProb = 1
			}
			bc.Contribution = pb * bc.EffectProb
			ex.Branches = append(ex.Branches, bc)
		}
		sort.Slice(ex.Branches, func(i, j int) bool {
			return ex.Branches[i].Contribution > ex.Branches[j].Contribution
		})
	}
	return ex
}

// String renders the explanation for terminal display.
func (ex *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s at %s: SDC %.2f%%, crash %.2f%%\n",
		ir.FormatInstr(ex.Instr), ex.Instr.Pos(), ex.SDC*100, ex.Crash*100)
	if ex.Direct > 0 {
		fmt.Fprintf(&sb, "  direct to output:                         %6.2f%%\n", ex.Direct*100)
	}
	for _, sc := range ex.Stores {
		fmt.Fprintf(&sb, "  via %-24s corrupt %5.1f%% x mem %5.1f%% = %6.2f%%\n",
			sc.Store.Pos(), sc.CorruptProb*100, sc.MemToOutput*100, sc.Contribution*100)
	}
	for _, bc := range ex.Branches {
		fmt.Fprintf(&sb, "  via flipped %-16s flip %5.1f%% x effect %5.1f%% = %6.2f%% (%d stores, %d regs)\n",
			bc.Branch.Pos(), bc.FlipProb*100, bc.EffectProb*100, bc.Contribution*100,
			bc.Stores, bc.Regs)
	}
	return sb.String()
}
