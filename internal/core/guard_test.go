package core

import (
	"testing"
)

// readAccum: a read loop accumulating into a register that prints after
// the loop — no stores anywhere near the divergence.
const readAccum = `
module "readaccum"
global @a i64 x 16 = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]
func @main() void {
entry:
  br loop
loop:
  %j = phi i64 [i64 0, entry], [%jinc, loop]
  %acc = phi i64 [i64 0, entry], [%nacc, loop]
  %q = gep i64, @a, %j
  %v = load i64, %q
  %nacc = add %acc, %v
  %jinc = add %j, i64 1
  %rc = icmp slt %jinc, i64 16
  condbr %rc, loop, done
done:
  print %nacc
  ret
}
`

// TestBranchFlipCorruptsRegisterAccumulator checks the fc register
// extension: flipping the loop bound branch corrupts the printed
// accumulator even though no store is involved (the paper's store-only fc
// would predict zero).
func TestBranchFlipCorruptsRegisterAccumulator(t *testing.T) {
	model := profiledModel(t, readAccum, TridentConfig())
	rc := instrByName(t, model.prof.Module, "rc")
	if p := model.InstrSDC(rc); p < 0.8 {
		t.Errorf("InstrSDC(loop bound cmp) = %v, want high (accumulator corrupted)", p)
	}
	// The register effects are visible in fcEffectsOf.
	br := model.prof.Module.Func("main").Block("loop").Terminator()
	eff := model.fcEffectsOf(br)
	if len(eff.regs) == 0 {
		t.Fatal("LT branch should corrupt loop-carried phis")
	}
	if len(eff.stores) != 0 {
		t.Error("read loop has no stores to corrupt")
	}
}

// TestGuardedInductionCrash checks the guarded back-edge refinement: a
// corrupted loop increment is bound-checked before it feeds the next
// iteration's address, so the predicted crash probability must stay small
// and the SDC probability high.
func TestGuardedInductionCrash(t *testing.T) {
	model := profiledModel(t, readAccum, TridentConfig())
	jinc := instrByName(t, model.prof.Module, "jinc")
	crash := model.InstrCrash(jinc)
	sdc := model.InstrSDC(jinc)
	if crash > 0.3 {
		t.Errorf("InstrCrash(jinc) = %v, want small (bound check guards reuse)", crash)
	}
	if sdc < 0.6 {
		t.Errorf("InstrSDC(jinc) = %v, want high (early exit truncates the sum)", sdc)
	}
	// The phi itself is consumed by the address *before* the bound check,
	// so its crash probability stays high.
	j := instrByName(t, model.prof.Module, "j")
	if c := model.InstrCrash(j); c < 0.3 {
		t.Errorf("InstrCrash(j) = %v, want substantial (used by gep pre-check)", c)
	}
}

// TestNLTJoinPhiRegisterEffect checks that a flipped diamond branch
// corrupts the join phi.
func TestNLTJoinPhiRegisterEffect(t *testing.T) {
	model := profiledModel(t, `
module "joinphi"
global @a i64 x 8 = [1, 2, 3, 4, 5, 6, 7, 8]
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, join]
  %q = gep i64, @a, %i
  %v = load i64, %q
  %c = icmp slt %v, i64 5
  condbr %c, small, big
small:
  %sv = mul %v, i64 10
  br join
big:
  %bv = add %v, i64 100
  br join
join:
  %sel = phi i64 [%sv, small], [%bv, big]
  print %sel
  %inc = add %i, i64 1
  %lc = icmp slt %inc, i64 8
  condbr %lc, loop, done
done:
  ret
}
`, TridentConfig())
	br := model.prof.Module.Func("main").Block("loop").Terminator()
	eff := model.fcEffectsOf(br)
	found := false
	for _, rc := range eff.regs {
		if rc.Def.Name == "sel" {
			found = true
			if rc.Prob < 0.5 {
				t.Errorf("join phi corruption prob = %v, want high", rc.Prob)
			}
		}
	}
	if !found {
		t.Error("flipped diamond branch should corrupt the join phi")
	}
	// End to end: the comparison's SDC probability is high because the
	// wrong arm prints.
	c := instrByName(t, model.prof.Module, "c")
	if p := model.InstrSDC(c); p < 0.5 {
		t.Errorf("InstrSDC(diamond cmp) = %v, want high", p)
	}
}
