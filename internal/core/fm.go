package core

import (
	"trident/internal/ir"
)

// fm is the memory sub-model (paper §IV-E): the probability that a
// corrupted value written by a given static store eventually reaches the
// program's output, conditioned on the magnitude band of the stored
// corruption (low-band corruption can hide below reduced-precision
// output; high-band corruption cannot).
//
// The profiler already collapsed dynamic store→load dependencies into
// static edges (the paper's symmetric-loop pruning); here those edges are
// followed, recursively invoking fs from each reading load and fc at each
// branch the corruption flips. Store→load→store chains form cycles, so
// the equation system
//
//	out_b(S) = min(1, Σ_L w(S,L) · [ fs_b(L).output
//	                               + Σ_{S',b'} fs_b(L).stores[S'][b']·out_b'(S')
//	                               + branch terms ])
//
// is solved as a least fixed point by monotone iteration from zero; this
// subsumes the paper's memoization and terminates because the map is
// monotone and bounded by 1.
func (m *Model) memOut(store *ir.Instr, band int) float64 {
	m.solveMemory()
	return m.fmOut[fmKey{store, band}]
}

// fmKey indexes the fm unknowns: one per (store, corruption band).
type fmKey struct {
	store *ir.Instr
	band  int
}

// fmTerm is one linear term of a store's fm equation.
type fmTerm struct {
	coeff float64
	key   fmKey
}

// fmEquation is out(k) = min(1, constant + Σ coeff·out(term.key)).
type fmEquation struct {
	constant float64
	terms    []fmTerm
}

// regTerms returns the constant (direct output share) and the fm-linear
// store terms of corruption starting at def's result. Control-divergence
// corruption is whole-value, so the walk starts in the replaced class.
// Branch recursion is excluded: register effects of flipped branches are
// one level deep, which keeps Algorithm 1 finite and avoids double
// counting.
func (m *Model) regTerms(def *ir.Instr) (float64, []fmTerm) {
	e := m.walkFrom(def, walkBand(classReplaced))
	terms := make([]fmTerm, 0, len(e.stores))
	for s, p := range e.stores {
		for band := 0; band < nClasses; band++ {
			if p[band] > 0 {
				terms = append(terms, fmTerm{coeff: p[band], key: fmKey{s, band}})
			}
		}
	}
	return e.output, terms
}

// regSDC is the SDC probability of a corrupted register live-out (a
// RegCorruption def), resolving store terms through fm when enabled.
func (m *Model) regSDC(def *ir.Instr) float64 {
	c, terms := m.regTerms(def)
	if m.cfg.EnableFM {
		m.solveMemory()
		for _, t := range terms {
			c += t.coeff * m.fmOut[t.key]
		}
	} else {
		for _, t := range terms {
			c += t.coeff
		}
	}
	if c > 1 {
		c = 1
	}
	return c
}

// solveMemory builds and solves the fm equation system once per model.
func (m *Model) solveMemory() {
	if m.fmOut != nil {
		return
	}
	m.fmOut = make(map[fmKey]float64)

	eqs := make(map[fmKey]*fmEquation)
	for store, edges := range m.prof.MemGraph {
		for band := 0; band < nClasses; band++ {
			eq := &fmEquation{}
			for _, e := range edges {
				w := m.prof.StoreReadProb(e)
				if w == 0 {
					continue
				}
				// Pruning ablation: replicate the edge once per dynamic
				// dependency with proportionally split weight. The fixed
				// point is unchanged; the work is what the unpruned
				// dynamic dependence graph would cost.
				replicas := 1
				if m.cfg.ExpandMemEdges && e.DynDeps > 1 {
					replicas = int(e.DynDeps)
				}
				wr := w / float64(replicas)
				for r := 0; r < replicas; r++ {
					m.addEdgeTerms(eq, e.Load, band, wr)
				}
			}
			eqs[fmKey{store, band}] = eq
		}
	}
	m.runFixedPoint(eqs)
}

// addEdgeTerms appends one dependence edge's contribution to a store's
// equation: the fs walk from the reading load (seeded with the stored
// corruption's band), with fc effects expanded.
func (m *Model) addEdgeTerms(eq *fmEquation, load *ir.Instr, band int, w float64) {
	loadEnds := m.walkFrom(load, walkBand(band))
	eq.constant += w * loadEnds.output
	for s, p := range loadEnds.stores {
		for b := 0; b < nClasses; b++ {
			if p[b] > 0 {
				eq.terms = append(eq.terms, fmTerm{coeff: w * p[b], key: fmKey{s, b}})
			}
		}
	}
	if !m.cfg.EnableFC {
		return
	}
	for br, p := range loadEnds.branches {
		eff := m.fcEffectsOf(br)
		for _, sc := range eff.stores {
			// Divergence-corrupted stores are high band.
			eq.terms = append(eq.terms,
				fmTerm{coeff: w * p * sc.Prob, key: fmKey{sc.Store, classReplaced}})
		}
		for _, rc := range eff.regs {
			c, terms := m.regTerms(rc.Def)
			eq.constant += w * p * rc.Prob * c
			for _, t := range terms {
				eq.terms = append(eq.terms,
					fmTerm{coeff: w * p * rc.Prob * t.coeff, key: t.key})
			}
		}
	}
}

// runFixedPoint iterates the equation system to its least fixed point by
// monotone (Jacobi) sweeps from zero.
func (m *Model) runFixedPoint(eqs map[fmKey]*fmEquation) {
	maxIters := m.cfg.FMMaxIters
	if maxIters <= 0 {
		maxIters = 200
	}
	const eps = 1e-10
	iters := 0
	for ; iters < maxIters; iters++ {
		maxDelta := 0.0
		for key, eq := range eqs {
			v := eq.constant
			for _, t := range eq.terms {
				v += t.coeff * m.fmOut[t.key]
			}
			if v > 1 {
				v = 1
			}
			if d := v - m.fmOut[key]; d > maxDelta {
				maxDelta = d
			}
			m.fmOut[key] = v
		}
		if maxDelta < eps {
			break
		}
	}
	m.fmIterations = iters + 1
}
