package core

import (
	"math"
	"strings"
	"testing"

	"trident/internal/ir"
)

func TestExplainDecomposesMixedProgram(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	// %hm feeds a store directly and a branch; the explanation must show
	// both path kinds and the contributions must be consistent with the
	// headline number.
	hm := instrByName(t, model.prof.Module, "hm")
	ex := model.Explain(hm)
	if ex.SDC != model.InstrSDC(hm) {
		t.Errorf("explanation SDC %v != InstrSDC %v", ex.SDC, model.InstrSDC(hm))
	}
	if len(ex.Stores) == 0 {
		t.Error("expected a memory-level path for %hm")
	}
	if len(ex.Branches) == 0 {
		t.Error("expected a control-flow path for %hm (feeds the store guard)")
	}
	sum := ex.Direct
	for _, sc := range ex.Stores {
		sum += sc.Contribution
	}
	for _, bc := range ex.Branches {
		sum += bc.Contribution
	}
	// The headline is the capped, crash-competed version of the sum.
	capped := math.Min(sum, 1)
	if avail := 1 - ex.Crash; capped > avail {
		capped = avail
	}
	if capped < 0 {
		capped = 0
	}
	if math.Abs(capped-ex.SDC) > 1e-9 {
		t.Errorf("path contributions (%v capped to %v) do not match SDC %v",
			sum, capped, ex.SDC)
	}
}

func TestExplainDirectOutput(t *testing.T) {
	model := profiledModel(t, `
module "direct"
func @main() void {
entry:
  %a = add i64 1, i64 2
  print %a
  ret
}
`, TridentConfig())
	ex := model.Explain(instrByName(t, model.prof.Module, "a"))
	if math.Abs(ex.Direct-1) > 1e-9 || len(ex.Stores) != 0 || len(ex.Branches) != 0 {
		t.Errorf("direct-only explanation wrong: %+v", ex)
	}
}

func TestExplainNonResultInstr(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	var store *ir.Instr
	model.prof.Module.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			store = in
		}
	})
	ex := model.Explain(store)
	if ex.SDC != 0 || len(ex.Stores) != 0 {
		t.Error("non-register instruction should have an empty explanation")
	}
}

func TestExplainStringRendering(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	hm := instrByName(t, model.prof.Module, "hm")
	s := model.Explain(hm).String()
	for _, want := range []string{"SDC", "via"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// Stores sorted by contribution.
	ex := model.Explain(hm)
	for i := 1; i < len(ex.Stores); i++ {
		if ex.Stores[i].Contribution > ex.Stores[i-1].Contribution+1e-12 {
			t.Error("store paths not sorted")
		}
	}
}
