package core

import (
	"context"
	"math"
	"testing"

	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/profile"
)

// mixed exercises all three levels: data chains, a data-dependent branch
// guarding a store, and memory dependence between two loops.
const mixed = `
module "mixed"
global @buf i64 x 32
func @main() void {
entry:
  br fill
fill:
  %i = phi i64 [i64 0, entry], [%inc, fjoin]
  %h = mul %i, i64 37
  %hm = srem %h, i64 100
  %c = icmp slt %hm, i64 50
  condbr %c, fstore, fjoin
fstore:
  %p = gep i64, @buf, %i
  store %hm, %p
  br fjoin
fjoin:
  %inc = add %i, i64 1
  %fc = icmp slt %inc, i64 32
  condbr %fc, fill, rentry
rentry:
  br read
read:
  %j = phi i64 [i64 0, rentry], [%jinc, read]
  %acc = phi i64 [i64 0, rentry], [%nacc, read]
  %q = gep i64, @buf, %j
  %v = load i64, %q
  %nacc = add %acc, %v
  %jinc = add %j, i64 1
  %rc = icmp slt %jinc, i64 32
  condbr %rc, read, done
done:
  print %nacc
  ret
}
`

func TestInstrSDCInRange(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	model.prof.Module.Instrs(func(in *ir.Instr) {
		p := model.InstrSDC(in)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("InstrSDC(%s) = %v out of range", in.Pos(), p)
		}
	})
}

func TestNonResultInstructionsHaveZeroSDC(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	model.prof.Module.Instrs(func(in *ir.Instr) {
		if !in.HasResult() && model.InstrSDC(in) != 0 {
			t.Errorf("InstrSDC(%s) != 0 for non-register instruction", in.Pos())
		}
	})
}

func TestModelVariantOrdering(t *testing.T) {
	// The simpler models over-predict on memory-heavy programs: assuming
	// a corrupted store is an SDC ignores fm masking, so
	// trident <= fs+fc, and fs (which drops branch terms but keeps store
	// terms) also over-predicts relative to trident.
	m, err := ir.Parse(mixed)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trident := New(prof, TridentConfig()).OverallSDC(0, 0).SDC
	fsfc := New(prof, FSFCConfig()).OverallSDC(0, 0).SDC
	fsOnly := New(prof, FSOnlyConfig()).OverallSDC(0, 0).SDC

	if trident > fsfc+1e-9 {
		t.Errorf("trident (%v) should not exceed fs+fc (%v)", trident, fsfc)
	}
	if fsOnly > fsfc+1e-9 {
		t.Errorf("fs (%v) should not exceed fs+fc (%v): fs drops branch terms", fsOnly, fsfc)
	}
	if trident <= 0 || fsfc <= 0 || fsOnly <= 0 {
		t.Errorf("all variants should predict nonzero SDC: %v %v %v", trident, fsfc, fsOnly)
	}
}

func TestOverallSDCSampledMatchesExact(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	exact := model.OverallSDC(0, 0)
	sampled := model.OverallSDC(3000, 99)
	if exact.Sampled != 0 || sampled.Sampled != 3000 {
		t.Error("Sampled field wrong")
	}
	if math.Abs(exact.SDC-sampled.SDC) > 0.05 {
		t.Errorf("sampled %v vs exact %v differ too much", sampled.SDC, exact.SDC)
	}
}

func TestOverallSDCDeterministic(t *testing.T) {
	a := profiledModel(t, mixed, TridentConfig()).OverallSDC(500, 7)
	b := profiledModel(t, mixed, TridentConfig()).OverallSDC(500, 7)
	if a.SDC != b.SDC {
		t.Errorf("sampled predictions differ: %v vs %v", a.SDC, b.SDC)
	}
}

// TestModelTracksFaultInjection is the headline validation: the TRIDENT
// prediction must land close to the FI measurement on a program that
// exercises all three sub-models (the paper reports a 4.75% mean absolute
// error across its benchmarks).
func TestModelTracksFaultInjection(t *testing.T) {
	m, err := ir.Parse(mixed)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	predicted := New(prof, TridentConfig()).OverallSDC(0, 0).SDC

	inj, err := fault.New(m, fault.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := inj.CampaignRandom(context.Background(), 1500)
	if err != nil {
		t.Fatal(err)
	}
	measured := campaign.SDCProb()

	if diff := math.Abs(predicted - measured); diff > 0.15 {
		t.Errorf("TRIDENT %v vs FI %v: |diff| = %v too large", predicted, measured, diff)
	}
}

func TestPerInstrSDCMap(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	var targets []*ir.Instr
	model.prof.Module.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			targets = append(targets, in)
		}
	})
	got := model.PerInstrSDC(targets)
	if len(got) != len(targets) {
		t.Fatalf("map size %d, want %d", len(got), len(targets))
	}
}

func TestInstrCrashEstimate(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	gep := instrByOp(t, model.prof.Module, "fstore", ir.OpGep)
	if c := model.InstrCrash(gep); c < 0.3 {
		t.Errorf("crash estimate for address producer = %v, want substantial", c)
	}
	// A value that feeds only arithmetic and output should rarely crash.
	nacc := instrByName(t, model.prof.Module, "nacc")
	if c := model.InstrCrash(nacc); c > 0.2 {
		t.Errorf("crash estimate for pure data value = %v, want small", c)
	}
}

func TestModelString(t *testing.T) {
	m, err := ir.Parse(mixed)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if New(prof, TridentConfig()).String() != "trident(fs+fc+fm)" {
		t.Error("trident name wrong")
	}
	if New(prof, FSFCConfig()).String() != "fs+fc" {
		t.Error("fs+fc name wrong")
	}
	if New(prof, FSOnlyConfig()).String() != "fs" {
		t.Error("fs name wrong")
	}
}

func TestOutputFilter(t *testing.T) {
	// With every print excluded from the output set, nothing is an SDC.
	m, err := ir.Parse(mixed)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TridentConfig()
	cfg.OutputFilter = func(*ir.Instr) bool { return false }
	model := New(prof, cfg)
	if got := model.OverallSDC(0, 0).SDC; got != 0 {
		t.Errorf("overall SDC = %v with no output instructions, want 0", got)
	}
}

func TestInstrSDCCached(t *testing.T) {
	model := profiledModel(t, mixed, TridentConfig())
	in := instrByName(t, model.prof.Module, "nacc")
	a := model.InstrSDC(in)
	b := model.InstrSDC(in)
	if a != b {
		t.Error("cached InstrSDC differs")
	}
}
