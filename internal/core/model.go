package core

import (
	"trident/internal/analysis"
	"trident/internal/ir"
	"trident/internal/profile"
)

// Config selects the model variant and its knobs.
type Config struct {
	// EnableFC enables the control-flow sub-model. Disabling it (together
	// with EnableFM) yields the paper's fs-only comparison model.
	EnableFC bool
	// EnableFM enables the memory sub-model. Disabling it yields the
	// paper's fs+fc comparison model (a corrupted store is assumed to be
	// an SDC).
	EnableFM bool
	// OutputFilter restricts which Print instructions count as program
	// output (paper §IV-A input 3). Nil means all prints count.
	OutputFilter func(*ir.Instr) bool

	// DisableValueProfile makes fs use pure mechanism heuristics instead
	// of profiled operand values (ablation: §IV-C derives masking tuples
	// "based on the mechanism of the instruction and/or the profiled
	// values").
	DisableValueProfile bool
	// ExpandMemEdges makes fm operate on the unpruned dynamic dependence
	// multigraph: every static edge is replicated per dynamic dependency
	// with proportionally split weight. Results are identical; cost is
	// not — this is the ablation for the §IV-E pruning.
	ExpandMemEdges bool
	// FMMaxIters caps the memory sub-model's fixed-point sweeps
	// (0 = default 200). Low caps truncate cyclic store→load→store
	// propagation (ablation).
	FMMaxIters int
}

// TridentConfig is the full three-level model.
func TridentConfig() Config { return Config{EnableFC: true, EnableFM: true} }

// FSFCConfig is the fs+fc simplified model used for comparison in §V-B.
func FSFCConfig() Config { return Config{EnableFC: true, EnableFM: false} }

// FSOnlyConfig is the fs-only simplified model used for comparison.
func FSOnlyConfig() Config { return Config{EnableFC: false, EnableFM: false} }

// Model predicts SDC probabilities from a profile, without fault
// injection. Create with New; a Model is not safe for concurrent use.
type Model struct {
	prof *profile.Profile
	cfg  Config

	edges      map[*ir.Instr][]edge
	cfgs       map[*ir.Func]*analysis.CFG
	walkCache  map[walkKey]*ends
	fcCache    map[*ir.Instr]*fcEffects
	fmOut      map[fmKey]float64
	sdcCache   map[*ir.Instr]float64
	transCache map[tupleKey]transEntry

	fmIterations int
}

// New builds a model over a collected profile.
func New(prof *profile.Profile, cfg Config) *Model {
	return &Model{
		prof:       prof,
		cfg:        cfg,
		edges:      buildEdges(prof.Module),
		cfgs:       make(map[*ir.Func]*analysis.CFG),
		walkCache:  make(map[walkKey]*ends),
		fcCache:    make(map[*ir.Instr]*fcEffects),
		sdcCache:   make(map[*ir.Instr]float64),
		transCache: make(map[tupleKey]transEntry),
	}
}

// Profile returns the underlying profile.
func (m *Model) Profile() *profile.Profile { return m.prof }

func (m *Model) cfgOf(fn *ir.Func) *analysis.CFG {
	c, ok := m.cfgs[fn]
	if !ok {
		c = analysis.Analyze(fn)
		m.cfgs[fn] = c
	}
	return c
}

// isOutput reports whether a Print counts as program output.
func (m *Model) isOutput(in *ir.Instr) bool {
	if m.cfg.OutputFilter == nil {
		return true
	}
	return m.cfg.OutputFilter(in)
}

// InstrSDC predicts the SDC probability of a fault activated in the
// destination register of `in` — Algorithm 1 of the paper. Instructions
// that never execute (or produce no register) have probability 0.
func (m *Model) InstrSDC(in *ir.Instr) float64 {
	if p, ok := m.sdcCache[in]; ok {
		return p
	}
	p := m.instrSDC(in)
	m.sdcCache[in] = p
	return p
}

func (m *Model) instrSDC(in *ir.Instr) float64 {
	if !in.HasResult() || m.prof.ExecCount[in] == 0 {
		return 0
	}
	e := m.walkFrom(in, walkUniform)

	// Direct propagation to output.
	p := e.output

	// Chains ending at stores (Algorithm 1 line 9).
	for s, ps := range e.stores {
		if m.cfg.EnableFM {
			for band := 0; band < nClasses; band++ {
				p += ps[band] * m.memOut(s, band)
			}
		} else {
			// Without fm, a corrupted store is assumed to be an SDC.
			p += ps.total()
		}
	}

	// Chains ending at flipped branches (Algorithm 1 lines 3-7). One
	// flipped branch is a single divergence event: its store and register
	// effects overlap heavily, so the per-branch effect probability is
	// capped at 1 before weighting by the flip probability.
	if m.cfg.EnableFC {
		for br, pb := range e.branches {
			eff := m.fcEffectsOf(br)
			effectP := 0.0
			for _, sc := range eff.stores {
				if m.cfg.EnableFM {
					// Divergence-corrupted stores carry whole wrong
					// values: high band.
					effectP += sc.Prob * m.memOut(sc.Store, classReplaced)
				} else {
					effectP += sc.Prob
				}
			}
			for _, rc := range eff.regs {
				effectP += rc.Prob * m.regSDC(rc.Def)
			}
			if effectP > 1 {
				effectP = 1
			}
			p += pb * effectP
		}
	}

	// Maximum propagation probability is 1 (Algorithm 1 line 6), and
	// crash probability competes with SDC: a fault cannot both crash and
	// silently corrupt.
	if p > 1 {
		p = 1
	}
	if avail := 1 - e.crash; p > avail {
		p = avail
	}
	if p < 0 {
		p = 0
	}
	return p
}

// TerminalMass exposes the fs terminal aggregates of one instruction; the
// PVF/ePVF baselines are defined in terms of these.
type TerminalMass struct {
	// Output is the probability of reaching program output.
	Output float64
	// Stores is the summed probability of corrupting stored values.
	Stores float64
	// Branches is the summed probability of flipping branches.
	Branches float64
	// Crash is the estimated trap probability.
	Crash float64
}

// TerminalMass returns the fs terminal aggregates for `in`.
func (m *Model) TerminalMass(in *ir.Instr) TerminalMass {
	if !in.HasResult() || m.prof.ExecCount[in] == 0 {
		return TerminalMass{}
	}
	e := m.walkFrom(in, walkUniform)
	tm := TerminalMass{Output: e.output, Crash: e.crash}
	for _, p := range e.stores {
		tm.Stores += p.total()
	}
	for _, p := range e.branches {
		tm.Branches += p
	}
	return tm
}

// InstrCrash estimates the crash probability of a fault activated at `in`
// (used by the ePVF baseline).
func (m *Model) InstrCrash(in *ir.Instr) float64 {
	if !in.HasResult() || m.prof.ExecCount[in] == 0 {
		return 0
	}
	return m.walkFrom(in, walkUniform).crash
}

// Overall is the program-level prediction.
type Overall struct {
	// SDC is the predicted overall SDC probability: the expected InstrSDC
	// over the fault-activation distribution (dynamic register writes).
	SDC float64
	// Sampled is the number of sampled dynamic instructions (0 = exact).
	Sampled int
}

// OverallSDC predicts the program's overall SDC probability. With
// samples <= 0 the exact execution-count-weighted expectation over all
// instructions is returned; otherwise `samples` dynamic instruction
// instances are drawn (deterministically from seed), mirroring the
// paper's 3000-sample methodology (§IV-A, §V-B1).
func (m *Model) OverallSDC(samples int, seed uint64) Overall {
	type wi struct {
		in    *ir.Instr
		count uint64
	}
	var (
		targets []wi
		total   uint64
	)
	m.prof.Module.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			if c := m.prof.ExecCount[in]; c > 0 {
				targets = append(targets, wi{in, c})
				total += c
			}
		}
	})
	if total == 0 {
		return Overall{}
	}

	if samples <= 0 {
		sum := 0.0
		for _, t := range targets {
			sum += float64(t.count) / float64(total) * m.InstrSDC(t.in)
		}
		return Overall{SDC: sum}
	}

	cum := make([]uint64, len(targets))
	running := uint64(0)
	for i, t := range targets {
		running += t.count
		cum[i] = running
	}
	r := newSampleRNG(seed)
	sum := 0.0
	for i := 0; i < samples; i++ {
		k := 1 + r.intn(total)
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		sum += m.InstrSDC(targets[lo].in)
	}
	return Overall{SDC: sum / float64(samples), Sampled: samples}
}

// PerInstrSDC returns predicted SDC probabilities for the given targets.
func (m *Model) PerInstrSDC(targets []*ir.Instr) map[*ir.Instr]float64 {
	out := make(map[*ir.Instr]float64, len(targets))
	for _, in := range targets {
		out[in] = m.InstrSDC(in)
	}
	return out
}

// FMIterations reports how many fixed-point sweeps the memory sub-model
// needed (diagnostic; exercised by the ablation benchmarks).
func (m *Model) FMIterations() int {
	m.solveMemory()
	return m.fmIterations
}

// String describes the configured variant.
func (m *Model) String() string {
	switch {
	case m.cfg.EnableFC && m.cfg.EnableFM:
		return "trident(fs+fc+fm)"
	case m.cfg.EnableFC:
		return "fs+fc"
	default:
		return "fs"
	}
}
