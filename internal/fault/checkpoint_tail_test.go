package fault

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trident/internal/progs"
)

// captureWarnings swaps the package warning sink for the test's
// duration, returning a function that yields everything logged so far.
func captureWarnings(t *testing.T) func() []string {
	t.Helper()
	var got []string
	old := warnf
	warnf = func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() { warnf = old })
	return func() []string { return got }
}

// TestCheckpointTornTailEveryOffset is the crash-mid-append regression
// suite: a checkpoint truncated at every byte offset of its final
// record must still resume, recovering every intact record and skipping
// the torn tail with a logged warning — never failing the whole resume.
func TestCheckpointTornTailEveryOffset(t *testing.T) {
	m := mustProg(t, "pathfinder").Build()
	inj, err := New(m, Options{Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	const n = 12
	want, err := inj.CampaignRandomCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record: the log ends with "...\nLAST\n".
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1
	if lastStart <= 0 {
		t.Fatalf("checkpoint has no records:\n%s", data)
	}
	meta := inj.metaRandom(n)

	for cut := lastStart; cut <= len(data); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			warned := captureWarnings(t)
			torn := filepath.Join(dir, fmt.Sprintf("torn-%d.jsonl", cut))
			if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			ck, err := openCheckpoint(torn, meta, true)
			if err != nil {
				t.Fatalf("resume failed on truncation at byte %d: %v", cut, err)
			}
			defer ck.Close()
			// A cut at the record boundary leaves a clean log, and a cut
			// that removes only the trailing newline still leaves a fully
			// parseable final record; anything in between tears it.
			wholeFile := cut >= len(data)-1
			cleanCut := cut == lastStart || wholeFile
			wantRecs := len(want.Trials)
			if !wholeFile {
				wantRecs-- // the torn/removed final record is gone
			}
			// Duplicate sampled specs can collapse records; compare
			// against the cache of the untruncated log instead of n.
			full, err := openCheckpoint(path, meta, true)
			if err != nil {
				t.Fatal(err)
			}
			defer full.Close()
			if wholeFile {
				wantRecs = len(full.cache)
			} else if len(full.cache) < wantRecs {
				wantRecs = len(full.cache) - 1
			}
			if got := len(ck.cache); got < wantRecs {
				t.Errorf("cut at %d: recovered %d records, want at least %d", cut, got, wantRecs)
			}
			warns := warned()
			if cleanCut && len(ck.Warnings()) != 0 {
				t.Errorf("cut at %d: unexpected warning on clean log: %q", cut, ck.Warnings())
			}
			if !cleanCut {
				if len(ck.Warnings()) == 0 {
					t.Errorf("cut at %d: torn tail skipped without a warning", cut)
				}
				found := false
				for _, w := range warns {
					if strings.Contains(w, "torn tail") {
						found = true
					}
				}
				if !found {
					t.Errorf("cut at %d: no torn-tail warning logged (got %q)", cut, warns)
				}
			}
		})
	}
}

// TestCheckpointTornTailResume proves the end-to-end contract: resuming
// from a torn log re-executes exactly the lost trial(s) and reproduces
// the uninterrupted campaign bit for bit.
func TestCheckpointTornTailResume(t *testing.T) {
	m := mustProg(t, "pathfinder").Build()
	inj, err := New(m, Options{Seed: 23, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	const n = 15
	want, err := inj.CampaignRandomCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half.
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1
	cut := lastStart + (len(data)-lastStart)/2
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	captureWarnings(t)
	got, err := inj.ResumeCampaign(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("resumed %d trials, want %d", len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Errorf("trial %d diverged after torn-tail resume: got %+v want %+v",
				i, got.Trials[i], want.Trials[i])
		}
	}
}

// TestCheckpointMidFileCorruptionRejected pins the other side of the
// contract: a corrupt line *followed by intact records* is not crash
// debris and must fail the load instead of silently dropping data.
func TestCheckpointMidFileCorruptionRejected(t *testing.T) {
	m := mustProg(t, "pathfinder").Build()
	inj, err := New(m, Options{Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	if _, err := inj.CampaignRandomCheckpoint(context.Background(), 8, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("log too short: %d lines", len(lines))
	}
	// Garble a record in the middle of the log.
	mid := len(lines) / 2
	lines[mid] = []byte("{\"fn\": not json\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	captureWarnings(t)
	if _, err := openCheckpoint(path, inj.metaRandom(8), true); err == nil {
		t.Fatal("mid-file corruption followed by intact records was silently accepted")
	}
}

// mustProg fetches a built-in benchmark or fails the test.
func mustProg(t *testing.T, name string) progs.Program {
	t.Helper()
	p, err := progs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
