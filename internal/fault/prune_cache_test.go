package fault

import (
	"context"
	"testing"

	"trident/internal/cache"
	"trident/internal/progs"
)

// TestCompositionalPruneKeySeparation fences the cache-key interaction of
// bit-liveness pruning (DESIGN.md §5i): pruned and unpruned campaigns
// must never share cache entries, because a pruned profile's Pruned
// flags are meaningless to an unpruned reader and — more importantly — a
// bitlive rule change must invalidate pruned entries without touching
// unpruned ones. The FuncKey.Prune field carries the per-function mask
// hash; this test proves the separation both ways and that the pruned
// cache path still reproduces the unpruned tallies exactly.
func TestCompositionalPruneKeySeparation(t *testing.T) {
	p, err := progs.ByName("rgb2gray")
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	run := func(pruneBits bool) *CompositionalResult {
		inj, err := New(p.Build(), Options{Seed: 42, PruneBits: pruneBits})
		if err != nil {
			t.Fatal(err)
		}
		res, err := inj.CampaignCompositional(context.Background(), n, store)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Populate with an unpruned campaign.
	plain := run(false)
	if plain.Hits != 0 {
		t.Fatalf("fresh store produced %d hits", plain.Hits)
	}

	// The same campaign with pruning on must miss everywhere: the Prune
	// key field separates the namespaces.
	pruned1 := run(true)
	if pruned1.Hits != 0 {
		t.Errorf("pruned campaign hit %d unpruned cache entries", pruned1.Hits)
	}

	// Pruned-to-pruned replays fully, and unpruned entries survive.
	pruned2 := run(true)
	if pruned2.Hits != len(pruned2.Funcs) || pruned2.Misses != 0 {
		t.Errorf("pruned replay: hits=%d misses=%d over %d funcs",
			pruned2.Hits, pruned2.Misses, len(pruned2.Funcs))
	}
	plain2 := run(false)
	if plain2.Hits != len(plain2.Funcs) {
		t.Errorf("unpruned replay after pruned runs: hits=%d over %d funcs",
			plain2.Hits, len(plain2.Funcs))
	}

	// Exact reweighting holds through the cache path: composed tallies,
	// rates, and intervals agree across all four runs.
	for _, res := range []*CompositionalResult{pruned1, pruned2, plain2} {
		for o, c := range plain.Composed.Counts {
			if res.Composed.Counts[o] != c {
				t.Errorf("count[%s]: %d vs unpruned %d", o, res.Composed.Counts[o], c)
			}
		}
		if res.Composed.SDC != plain.Composed.SDC ||
			res.Composed.SDCLo != plain.Composed.SDCLo ||
			res.Composed.SDCHi != plain.Composed.SDCHi {
			t.Errorf("composed SDC drift: %v [%v,%v] vs unpruned %v [%v,%v]",
				res.Composed.SDC, res.Composed.SDCLo, res.Composed.SDCHi,
				plain.Composed.SDC, plain.Composed.SDCLo, plain.Composed.SDCHi)
		}
	}

	// The pruned replay's merged transcript matches the pruned live run
	// trial for trial.
	m1, err := pruned1.Merged()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pruned2.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if m1.N() != m2.N() {
		t.Fatalf("merged N: %d live vs %d replay", m1.N(), m2.N())
	}
	for i := range m1.Trials {
		a, b := m1.Trials[i], m2.Trials[i]
		if a.Instr.Pos() != b.Instr.Pos() || a.Instance != b.Instance ||
			a.Bit != b.Bit || a.Outcome != b.Outcome {
			t.Fatalf("trial %d differs between pruned live and pruned replay", i)
		}
	}
}
