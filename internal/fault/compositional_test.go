package fault

import (
	"context"
	"fmt"
	"testing"

	"trident/internal/cache"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/progs"
)

func TestApportion(t *testing.T) {
	cases := []struct {
		n       int
		weights []uint64
		want    []int
	}{
		{100, []uint64{600, 400}, []int{60, 40}},
		{10, []uint64{1, 1, 1}, []int{4, 3, 3}},
		{0, []uint64{5, 5}, []int{0, 0}},
		{5, []uint64{0, 10}, []int{0, 5}},
		{3, []uint64{1000000, 1}, []int{3, 0}},
		{7, nil, nil},
	}
	for _, c := range cases {
		got := apportion(c.n, c.weights)
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("apportion(%d, %v) = %v, want %v", c.n, c.weights, got, c.want)
				break
			}
		}
		if len(c.weights) > 0 && nonZero(c.weights) && sum != c.n {
			t.Errorf("apportion(%d, %v) sums to %d", c.n, c.weights, sum)
		}
	}
}

func nonZero(ws []uint64) bool {
	for _, w := range ws {
		if w > 0 {
			return true
		}
	}
	return false
}

// TestApportionDeterministicTies: equal weights resolve leftovers to the
// earliest indices, every time.
func TestApportionDeterministicTies(t *testing.T) {
	w := []uint64{7, 7, 7, 7}
	first := apportion(10, w)
	for i := 0; i < 20; i++ {
		got := apportion(10, w)
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("apportion unstable: %v then %v", first, got)
			}
		}
	}
	want := []int{3, 3, 2, 2}
	for j := range want {
		if first[j] != want[j] {
			t.Fatalf("apportion(10, %v) = %v, want %v", w, first, want)
		}
	}
}

func TestFuncSeedDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for _, name := range []string{"main", "cndf", "mainn", ""} {
		for _, hash := range []uint64{0, 1, 0xdeadbeef} {
			s := funcSeed(42, name, hash)
			id := fmt.Sprintf("%s#%x", name, hash)
			if prev, ok := seen[s]; ok {
				t.Errorf("funcSeed collision: %q and %q", prev, id)
			}
			seen[s] = id
		}
	}
	if funcSeed(1, "main", 7) == funcSeed(2, "main", 7) {
		t.Error("funcSeed ignores the campaign seed")
	}
}

// TestSectionsCoverActivationSpace: the per-function partition must tile
// the injector's global activation space exactly, and the weights must
// agree with the profile package's independent accounting.
func TestSectionsCoverActivationSpace(t *testing.T) {
	for _, p := range progs.All() {
		m := p.Build()
		inj, err := New(m, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		secs := inj.sections()
		var total uint64
		for _, sec := range secs {
			total += sec.weight
		}
		if total != inj.ActivationSpace() {
			t.Errorf("%s: sections tile %d activations, injector has %d",
				p.Name, total, inj.ActivationSpace())
		}
		prof, err := profile.Collect(m, profile.Options{})
		if err != nil {
			t.Fatalf("%s: profile: %v", p.Name, err)
		}
		weights := prof.FuncWeights()
		for _, sec := range secs {
			if weights[sec.fn.Name] != sec.weight {
				t.Errorf("%s/@%s: section weight %d, profile weight %d",
					p.Name, sec.fn.Name, sec.weight, weights[sec.fn.Name])
			}
		}
	}
}

// TestCompositionalNoStore: with a nil store every section runs live and
// the composed tallies pool to exactly the per-section counts.
func TestCompositionalNoStore(t *testing.T) {
	p, err := progs.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(p.Build(), Options{Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inj.CampaignCompositional(context.Background(), 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Misses != len(res.Funcs) {
		t.Errorf("nil store: hits=%d misses=%d over %d funcs", res.Hits, res.Misses, len(res.Funcs))
	}
	if res.N() != 40 {
		t.Errorf("N() = %d, want 40", res.N())
	}
	if len(res.Funcs) < 2 {
		t.Fatalf("blackscholes composed over %d functions, want ≥ 2", len(res.Funcs))
	}
	merged, err := res.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != 40 {
		t.Errorf("merged N = %d, want 40", merged.N())
	}
	pooled := 0
	for _, o := range AllOutcomes {
		pooled += merged.Counts[o]
	}
	if pooled != 40 {
		t.Errorf("merged counts pool to %d, want 40", pooled)
	}
	for _, o := range AllOutcomes {
		if got := res.Composed.Counts[o.String()]; got != merged.Counts[o] {
			t.Errorf("composed count[%s]=%d, merged %d", o, got, merged.Counts[o])
		}
	}
}

// TestCompositionalCancellation: cancelling mid-campaign returns the
// completed sections plus the context error, and never caches a partial
// section.
func TestCompositionalCancellation(t *testing.T) {
	p, err := progs.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inj, err := New(p.Build(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inj.CampaignCompositional(ctx, 40, store)
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if res.N() != 0 {
		t.Errorf("pre-cancelled campaign ran %d trials", res.N())
	}
	// Nothing may have been cached: a fresh all-miss run must execute.
	inj2, err := New(p.Build(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := inj2.CampaignCompositional(context.Background(), 40, store)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hits != 0 {
		t.Errorf("partial campaign left %d cache hits", res2.Hits)
	}
}

// TestCompositionalNeverCachesErroredSections: sections with Errored
// trials must not be stored, so poisoned runs cannot contaminate later
// campaigns.
func TestCompositionalNeverCachesErroredSections(t *testing.T) {
	p, err := progs.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	injBad, err := New(p.Build(), Options{
		Seed: 42,
		TrialHook: func(in *ir.Instr, instance uint64, bit int, attempt int) error {
			if bit%5 == 1 {
				panic("chaos: simulated engine fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resBad, err := injBad.CampaignCompositional(context.Background(), 30, store)
	if err != nil {
		t.Fatal(err)
	}
	if resBad.Composed.Counts[Errored.String()] == 0 {
		t.Fatal("chaos hook produced no errored trials; test is vacuous")
	}
	// A clean re-run must miss (nothing was cached) and produce a clean
	// profile.
	injOK, err := New(p.Build(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	resOK, err := injOK.CampaignCompositional(context.Background(), 30, store)
	if err != nil {
		t.Fatal(err)
	}
	if resOK.Hits != 0 {
		t.Errorf("errored sections were cached: %d hits", resOK.Hits)
	}
	if resOK.Composed.Counts[Errored.String()] != 0 {
		t.Errorf("clean re-run reports %d errored trials", resOK.Composed.Counts[Errored.String()])
	}
}
