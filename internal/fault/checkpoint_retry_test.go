package fault

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"trident/internal/ir"
)

// failingHook fails every attempt of trials whose bit satisfies the
// predicate, with a transient engine error so the retry machinery
// engages (and exhausts) before the trial is classified Errored.
func failingHook(pred func(bit int) bool) func(*ir.Instr, uint64, int, int) error {
	return func(_ *ir.Instr, _ uint64, bit int, attempt int) error {
		if pred(bit) {
			return &EngineError{
				Err:       fmt.Errorf("simulated transient failure (attempt %d)", attempt),
				Transient: true,
			}
		}
		return nil
	}
}

// TestResumeReattemptsErroredTrials is the regression test for the
// resume-after-retry accounting bug: a trial that exhausted its retries
// and was checkpointed as Errored must be re-attempted — not replayed —
// when the campaign resumes, and must never appear twice in the result.
// With the failure gone by session 2, the resumed campaign must be
// byte-identical to a campaign that never failed at all. Runs on both
// the legacy and the snapshot execution paths.
func TestResumeReattemptsErroredTrials(t *testing.T) {
	const n = 100
	for _, interval := range []uint64{0, 64} {
		interval := interval
		t.Run(fmt.Sprintf("interval=%d", interval), func(t *testing.T) {
			base := Options{Seed: 23, Workers: 4, MaxRetries: 2, SnapshotInterval: interval}

			// The undisturbed reference: no engine failures ever.
			clean, err := newInjectorOpts(t, vulnerable, base).
				CampaignRandom(context.Background(), n)
			if err != nil {
				t.Fatal(err)
			}

			// Session 1: a deterministic subset of trials fails every
			// attempt and is checkpointed as Errored.
			path := filepath.Join(t.TempDir(), "trials.jsonl")
			opts1 := base
			opts1.TrialHook = failingHook(func(bit int) bool { return bit%7 == 2 })
			session1, err := newInjectorOpts(t, vulnerable, opts1).
				CampaignRandomCheckpoint(context.Background(), n, path)
			if err != nil {
				t.Fatal(err)
			}
			if session1.Counts[Errored] == 0 {
				t.Fatal("session 1 produced no errored trials; the regression is not exercised")
			}
			if got, want := len(session1.Errs), session1.Counts[Errored]; got != want {
				t.Fatalf("session 1: len(Errs) = %d, Counts[Errored] = %d", got, want)
			}
			for _, te := range session1.Errs {
				if te.Attempts != 1+base.MaxRetries {
					t.Errorf("errored trial %d used %d attempts, want %d",
						te.Index, te.Attempts, 1+base.MaxRetries)
				}
			}

			// Session 2: the transient condition is gone. Resume must
			// re-attempt exactly the errored trials and heal them.
			resumed, err := newInjectorOpts(t, vulnerable, base).
				ResumeCampaign(context.Background(), n, path)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Counts[Errored] != 0 || len(resumed.Errs) != 0 {
				t.Fatalf("resume kept %d errored trials (%d Errs); want all healed",
					resumed.Counts[Errored], len(resumed.Errs))
			}
			if got, want := transcript(resumed), transcript(clean); got != want {
				t.Errorf("healed campaign differs from never-failed campaign:\n got: %q\nwant: %q",
					got, want)
			}
		})
	}
}

// TestResumePersistentFailureCountsOnce resumes with the failure still
// present: re-attempted trials fail again, and each must be counted
// exactly once — len(Errs) == Counts[Errored], with strictly increasing
// unique trial indices and no inflation across sessions.
func TestResumePersistentFailureCountsOnce(t *testing.T) {
	const n = 100
	base := Options{Seed: 23, Workers: 4, MaxRetries: 1}
	hook := failingHook(func(bit int) bool { return bit%7 == 2 })

	path := filepath.Join(t.TempDir(), "trials.jsonl")
	opts := base
	opts.TrialHook = hook
	session1, err := newInjectorOpts(t, vulnerable, opts).
		CampaignRandomCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if session1.Counts[Errored] == 0 {
		t.Fatal("no errored trials in session 1")
	}

	session2, err := newInjectorOpts(t, vulnerable, opts).
		ResumeCampaign(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := session2.Counts[Errored], session1.Counts[Errored]; got != want {
		t.Errorf("errored count changed across sessions: %d -> %d", want, got)
	}
	if got, want := len(session2.Errs), session2.Counts[Errored]; got != want {
		t.Errorf("len(Errs) = %d, Counts[Errored] = %d; trials double-counted", got, want)
	}
	seen := map[int]bool{}
	for _, te := range session2.Errs {
		if seen[te.Index] {
			t.Errorf("trial index %d appears twice in Errs", te.Index)
		}
		seen[te.Index] = true
	}
	if got, want := transcript(session2), transcript(session1); got != want {
		t.Errorf("persistent-failure resume is not idempotent:\n got: %q\nwant: %q", got, want)
	}
}
