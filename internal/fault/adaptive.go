// This file implements adaptive (Neyman-allocation) stratified campaigns
// — the plan-choosing loop on top of the stratified estimator stack
// (stratify.go; ANALYSIS.md, "Adaptive (Neyman) allocation"). A campaign
// budget of n slots is split into a pilot prefix and a thinned main
// phase:
//
//	slots [0, pn)  — the pilot: thinned under the static default shape
//	                 (live strata at rate 1, the provably-masked stratum
//	                 at the rate floor — its zero-SDC verdict is the
//	                 liveness oracle's and needs no pilot trials), with
//	                 per-stratum SDC tallies accumulating;
//	slots [pn, n)  — the main phase: thinned by the plan NeymanPlan
//	                 derives from the pilot tallies, using the same
//	                 random-access slot hash stratified campaigns use.
//
// Pilot trials are not warm-up waste: they carry weight 1/q of the
// pilot plan (live trials at 1, floor-thinned masked trials at 1/floor)
// and fold into the final Horvitz-Thompson estimate alongside the
// reweighted main-phase trials, so every executed trial contributes and
// executed(pilot) + executed(main) <= n by construction.
//
// Determinism contract: the derived plan is a pure function of the pilot
// outcomes, which are themselves a pure function of (module, seed, n,
// pilot configuration) — no plan is ever persisted. Checkpoint resume
// (mid-pilot or mid-main), sharding and replay-only reconstruction all
// re-derive it from the same records and land on byte-identical results.

package fault

import (
	"context"
	"fmt"
	"math"

	"trident/internal/bitlive"
	"trident/internal/hashutil"
	"trident/internal/ir"
)

// DefaultPilotFraction is the share of the slot budget an adaptive
// campaign spends on the uniform pilot when AdaptiveConfig leaves it
// zero. A fifth of the budget gives every stratum enough pilot trials to
// expose percent-level SDC rates at paper-scale budgets while leaving
// most of the budget for the optimized main phase.
const DefaultPilotFraction = 0.2

// AdaptiveConfig tunes a two-phase adaptive campaign. The zero value
// selects the defaults.
type AdaptiveConfig struct {
	// PilotFraction is the share of the slot budget spent on the uniform
	// pilot, in (0, 1); 0 selects DefaultPilotFraction. The pilot prefix
	// is round(n·PilotFraction) slots, at least 1.
	PilotFraction float64
	// RateFloor is the lowest inclusion rate the derived plan may assign,
	// in (0, 1]; 0 selects bitlive.DefaultRateFloor.
	RateFloor float64
}

// withDefaults resolves zero fields to the package defaults.
func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.PilotFraction == 0 {
		c.PilotFraction = DefaultPilotFraction
	}
	if c.RateFloor == 0 {
		c.RateFloor = bitlive.DefaultRateFloor
	}
	return c
}

// Validate checks the configuration (after default resolution).
func (c AdaptiveConfig) Validate() error {
	d := c.withDefaults()
	if !(d.PilotFraction > 0) || d.PilotFraction >= 1 || math.IsNaN(d.PilotFraction) {
		return fmt.Errorf("fault: adaptive pilot fraction %v outside (0, 1)", d.PilotFraction)
	}
	if !(d.RateFloor > 0) || d.RateFloor > 1 || math.IsNaN(d.RateFloor) {
		return fmt.Errorf("fault: adaptive rate floor %v outside (0, 1]", d.RateFloor)
	}
	return nil
}

// pilotLen returns the pilot prefix length of an n-slot budget: at least
// one slot, never more than the whole budget.
func pilotLen(n int, frac float64) int {
	if n <= 0 {
		return 0
	}
	pn := int(float64(n)*frac + 0.5)
	if pn < 1 {
		pn = 1
	}
	if pn > n {
		pn = n
	}
	return pn
}

// requireAdaptive validates the adaptive-campaign configuration.
func (inj *Injector) requireAdaptive() error {
	if inj.opts.Adaptive == nil {
		return fmt.Errorf("fault: adaptive campaign requires Options.Adaptive")
	}
	return nil
}

// AdaptiveHash returns the content address of the adaptive configuration
// in effect — influence table, pilot fraction and rate floor — or ""
// when Options.Adaptive is nil. The derived main-phase plan is a pure
// function of these plus the (header-checked) module, seed and n, so the
// hash fences checkpoints and caches without persisting the plan itself.
func (inj *Injector) AdaptiveHash() string {
	if inj.opts.Adaptive == nil {
		return ""
	}
	c := inj.opts.Adaptive.withDefaults()
	return hashutil.Hex(hashutil.String(fmt.Sprintf("adaptive|%x|%x|%x",
		inj.influence.ModuleHash(inj.module),
		math.Float64bits(c.PilotFraction), math.Float64bits(c.RateFloor))))
}

// AdaptiveHashFor computes the adaptive content address of m under cfg
// without building an injector (no golden run), for admission-time cache
// keys. It agrees with Injector.AdaptiveHash for the same module and
// configuration.
func AdaptiveHashFor(m *ir.Module, cfg AdaptiveConfig) string {
	c := cfg.withDefaults()
	inf := bitlive.ClassifyInfluence(m, bitlive.Analyze(m))
	return hashutil.Hex(hashutil.String(fmt.Sprintf("adaptive|%x|%x|%x",
		inf.ModuleHash(m),
		math.Float64bits(c.PilotFraction), math.Float64bits(c.RateFloor))))
}

// classifySpecs maps each spec to its influence stratum.
func (inj *Injector) classifySpecs(specs []trialSpec) []bitlive.Stratum {
	strata := make([]bitlive.Stratum, len(specs))
	for i, spec := range specs {
		strata[i] = inj.stratumOf(spec)
	}
	return strata
}

// pilotEvidence tallies per-stratum pilot outcomes: drawn pilot slots
// (drawn — before pilot thinning, so the shares estimate the stream's
// stratum shares), executed classified trials and their SDC counts,
// with stratum bit counts from st. keptStrata aligns with trials — the
// thinned subset that executed. Errored trials carry no
// program-behavior signal and are excluded, exactly as the weighted
// estimators exclude them.
func pilotEvidence(st bitlive.StratumStats, drawn, keptStrata []bitlive.Stratum, trials []Injection) [bitlive.NumStrata]bitlive.StratumPilot {
	var out [bitlive.NumStrata]bitlive.StratumPilot
	for s := 0; s < bitlive.NumStrata; s++ {
		out[s].Bits = st.Bits[s]
	}
	for _, s := range drawn {
		out[int(s)].Slots++
	}
	for i, tr := range trials {
		if tr.Outcome == Errored {
			continue
		}
		s := int(keptStrata[i])
		out[s].Trials++
		if tr.Outcome == SDC {
			out[s].SDC++
		}
	}
	return out
}

// thinSlots thins slots [lo, hi) of the drawn stream under plan with the
// random-access inclusion hash keyed by absolute slot index — the same
// scheme stratifiedSpecs uses, so shard boundaries and resume never
// shift the executed subset.
func thinSlots(seed uint64, plan bitlive.Plan, specs []trialSpec, strata []bitlive.Stratum, lo, hi int) (kept []trialSpec, keptStrata []bitlive.Stratum) {
	for i := lo; i < hi; i++ {
		q := plan.Rate(strata[i])
		if q >= 1 || slotU(seed, i) < q {
			kept = append(kept, specs[i])
			keptStrata = append(keptStrata, strata[i])
		}
	}
	return kept, keptStrata
}

// AdaptiveResult is a two-phase adaptive campaign's outcome: the
// combined pilot + main transcript with its Horvitz-Thompson weighting
// (pilot trials at 1/q of the pilot plan, main-phase trials at 1/q of
// the derived plan), plus the pilot bookkeeping behind the plan.
type AdaptiveResult struct {
	// StratifiedResult holds the combined executed trials over all SlotN
	// slots; Plan is the derived main-phase plan (the pilot plan when
	// the campaign was cancelled before the pilot completed).
	*StratifiedResult
	// PilotSlots is the pilot prefix length pn; PilotExecuted is how many
	// of those slots actually executed — below PilotSlots even on a
	// completed pilot, since the pilot thins provably-masked slots at
	// the rate floor, and 0 when the plan was seeded from cached
	// profiles and the pilot skipped entirely.
	PilotSlots    int
	PilotExecuted int
	// Pilot is the per-stratum evidence NeymanPlan derived the plan from
	// (zero when the pilot did not complete).
	Pilot [bitlive.NumStrata]bitlive.StratumPilot
	// Seeded reports that the plan came from cached per-function profiles
	// rather than a pilot phase.
	Seeded bool
}

// PilotFraction returns the pilot's share of the executed trials — the
// overhead the adaptive machinery spent buying its plan (0 when the plan
// was seeded from cache).
func (ar *AdaptiveResult) PilotFraction() float64 {
	if e := ar.ExecutedN(); e > 0 {
		return float64(ar.PilotExecuted) / float64(e)
	}
	return 0
}

// assembleAdaptive stitches the pilot and main transcripts into one
// weighted result: pilot trials at 1/q of pplan (the pilot plan), main
// trials at 1/q of plan. A cancelled campaign passes the completed
// prefix of either phase; weights align with whatever ran.
func assembleAdaptive(plan, pplan bitlive.Plan, n, pn int, slotCounts [bitlive.NumStrata]int,
	pilotRes *CampaignResult, pilotStrata []bitlive.Stratum,
	mainRes *CampaignResult, mainStrata []bitlive.Stratum,
	pilot [bitlive.NumStrata]bitlive.StratumPilot) *AdaptiveResult {
	comb := &CampaignResult{}
	comb.Trials = append(append([]Injection{}, pilotRes.Trials...), mainRes.Trials...)
	comb.Errs = append(comb.Errs, pilotRes.Errs...)
	for _, te := range mainRes.Errs {
		te.Index += len(pilotRes.Trials)
		comb.Errs = append(comb.Errs, te)
	}
	comb.tally()
	sr := &StratifiedResult{
		CampaignResult: comb,
		SlotN:          n,
		Plan:           plan,
		SlotCounts:     slotCounts,
	}
	sr.Strata = append(append([]bitlive.Stratum{}, pilotStrata[:len(pilotRes.Trials)]...),
		mainStrata[:len(mainRes.Trials)]...)
	sr.Weights = make([]float64, len(comb.Trials))
	for i, s := range sr.Strata {
		if i < len(pilotRes.Trials) {
			sr.Weights[i] = 1 / pplan.Rate(s)
		} else {
			sr.Weights[i] = 1 / plan.Rate(s)
		}
	}
	return &AdaptiveResult{
		StratifiedResult: sr,
		PilotSlots:       pn,
		PilotExecuted:    len(pilotRes.Trials),
		Pilot:            pilot,
	}
}

// pilotPlan is the plan the pilot prefix runs under: the static default
// shape with the configured floor as the masked rate. The pilot's job
// is estimating live-stratum variance, and the provably-masked
// stratum's zero-SDC rate is the liveness oracle's verdict rather than
// anything a pilot could measure — so its pilot slots execute only at
// the floor cross-check rate the derived plan would assign them anyway,
// instead of burning pilot budget at rate 1.
func pilotPlan(cfg AdaptiveConfig) bitlive.Plan {
	return bitlive.MaskedRatePlan(cfg.RateFloor)
}

// CampaignAdaptive performs a two-phase adaptive campaign over n slots:
// a static-shape pilot over the first pilotLen slots (live strata at
// rate 1, provably-masked slots at the floor), Neyman-rate derivation
// from the pilot's per-stratum tallies, then the main phase over the
// remaining slots thinned under the derived plan. Pilot trials count
// against n and fold into the weighted estimate, so
// ExecutedN <= n always. Cancelling ctx returns the completed prefix
// along with ctx.Err(), exactly like CampaignStratified.
func (inj *Injector) CampaignAdaptive(ctx context.Context, n int) (*AdaptiveResult, error) {
	if err := inj.requireAdaptive(); err != nil {
		return nil, err
	}
	return inj.campaignAdaptive(ctx, n, nil)
}

// campaignAdaptive is the shared two-phase engine behind CampaignAdaptive
// and its checkpointed variant.
func (inj *Injector) campaignAdaptive(ctx context.Context, n int, ck *Checkpoint) (*AdaptiveResult, error) {
	cfg := inj.opts.Adaptive.withDefaults()
	specs := inj.sampleRandom(n)
	strata := inj.classifySpecs(specs)
	var slotCounts [bitlive.NumStrata]int
	for _, s := range strata {
		slotCounts[int(s)]++
	}
	pn := pilotLen(n, cfg.PilotFraction)
	pplan := pilotPlan(cfg)

	empty := &CampaignResult{Counts: map[Outcome]int{}}
	pilotKept, pilotKeptStrata := thinSlots(inj.opts.Seed, pplan, specs, strata, 0, pn)
	pilotRes, runErr := inj.runTrials(ctx, pilotKept, ck)
	if pilotRes == nil {
		return nil, runErr
	}
	if runErr != nil || len(pilotRes.Trials) < len(pilotKept) {
		// Cancelled mid-pilot: no plan exists yet. Return the executed
		// prefix under the pilot plan so partial results stay usable.
		ar := assembleAdaptive(pplan, pplan, n, pn, slotCounts,
			pilotRes, pilotKeptStrata, empty, nil, [bitlive.NumStrata]bitlive.StratumPilot{})
		return ar, runErr
	}
	evidence := pilotEvidence(inj.influence.ModuleStats(inj.module), strata[:pn], pilotKeptStrata, pilotRes.Trials)
	plan, err := bitlive.NeymanPlan(evidence, cfg.RateFloor)
	if err != nil {
		return nil, err
	}
	kept, keptStrata := thinSlots(inj.opts.Seed, plan, specs, strata, pn, n)
	mainRes, runErr := inj.runTrials(ctx, kept, ck)
	if mainRes == nil {
		return nil, runErr
	}
	ar := assembleAdaptive(plan, pplan, n, pn, slotCounts, pilotRes, pilotKeptStrata, mainRes, keptStrata, evidence)
	return ar, runErr
}

// metaAdaptive describes an adaptive run for checkpoint validation: its
// own kind (a log holding a pilot prefix plus a thinned main phase can
// never masquerade as a plain or statically-stratified log) plus the
// adaptive configuration hash in the Stratify slot.
func (inj *Injector) metaAdaptive(n int) checkpointMeta {
	meta := inj.metaRandom(n)
	meta.Kind = "adaptive"
	meta.Stratify = inj.AdaptiveHash()
	return meta
}

// CampaignAdaptiveCheckpoint is CampaignAdaptive persisted to (and
// resumed from) a JSONL log at path. Both phases append to the same log;
// resume replays whatever prefix completed — mid-pilot or mid-main — and
// re-derives the plan from the replayed pilot outcomes, reproducing the
// uninterrupted result byte for byte.
func (inj *Injector) CampaignAdaptiveCheckpoint(ctx context.Context, n int, path string) (*AdaptiveResult, error) {
	if err := inj.requireAdaptive(); err != nil {
		return nil, err
	}
	ck, err := openCheckpoint(path, inj.metaAdaptive(n), false)
	if err != nil {
		return nil, err
	}
	res, runErr := inj.campaignAdaptive(ctx, n, ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return res, runErr
}

// checkShard validates a (shard, shards) pair.
func checkShard(shard, shards int) error {
	if shards <= 0 {
		return fmt.Errorf("fault: shard count must be positive, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return fmt.Errorf("fault: shard %d out of range [0, %d)", shard, shards)
	}
	return nil
}

// CampaignAdaptivePilotShardCheckpoint runs one shard's slice of the
// pilot phase: the slots of ShardRange(n, shard, shards) that fall in
// the pilot prefix, thinned under the pilot plan (live strata at rate
// 1, provably-masked slots at the floor), checkpointed at path. A shard
// whose range lies entirely in the main phase runs nothing and returns
// an empty result. Once every shard's pilot slice is complete, merge
// the logs and run the main wave with
// CampaignAdaptiveMainShardCheckpoint.
func (inj *Injector) CampaignAdaptivePilotShardCheckpoint(ctx context.Context, n, shard, shards int, path string) (*CampaignResult, error) {
	if err := inj.requireAdaptive(); err != nil {
		return nil, err
	}
	if err := checkShard(shard, shards); err != nil {
		return nil, err
	}
	cfg := inj.opts.Adaptive.withDefaults()
	pn := pilotLen(n, cfg.PilotFraction)
	lo, hi := ShardRange(n, shard, shards)
	if hi > pn {
		hi = pn
	}
	var slice []trialSpec
	if lo < hi {
		specs := inj.sampleRandom(hi)
		slice, _ = thinSlots(inj.opts.Seed, pilotPlan(cfg), specs, inj.classifySpecs(specs), lo, hi)
	}
	ck, err := openCheckpoint(path, inj.metaAdaptive(n), false)
	if err != nil {
		return nil, err
	}
	res, runErr := inj.runTrials(ctx, slice, ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return res, runErr
}

// AdaptivePlanFromCheckpoint re-derives the main-phase plan (and the
// pilot evidence behind it) by replaying the pilot prefix from the log
// at path — typically the merge of every shard's pilot log. No trial
// executes; every pilot-kept record (the prefix slots the pilot plan's
// thinning keeps) must be present, since a plan derived from partial
// evidence would differ from the one the complete pilot yields.
func (inj *Injector) AdaptivePlanFromCheckpoint(n int, path string) (bitlive.Plan, [bitlive.NumStrata]bitlive.StratumPilot, error) {
	var none [bitlive.NumStrata]bitlive.StratumPilot
	if err := inj.requireAdaptive(); err != nil {
		return bitlive.Plan{}, none, err
	}
	_, recs, err := loadLogFor(path, inj.metaAdaptive(n))
	if err != nil {
		return bitlive.Plan{}, none, err
	}
	cfg := inj.opts.Adaptive.withDefaults()
	pn := pilotLen(n, cfg.PilotFraction)
	specs := inj.sampleRandom(pn)
	strata := inj.classifySpecs(specs)
	kept, keptStrata := thinSlots(inj.opts.Seed, pilotPlan(cfg), specs, strata, 0, pn)
	trials := make([]Injection, 0, len(kept))
	missing := 0
	for _, spec := range kept {
		rec, ok := recs[spec.key()]
		if !ok {
			missing++
			continue
		}
		tr, _ := rec.injection(spec)
		trials = append(trials, tr)
	}
	if missing > 0 {
		return bitlive.Plan{}, none, fmt.Errorf(
			"fault: adaptive plan derivation: %s is missing %d of %d pilot records", path, missing, len(kept))
	}
	evidence := pilotEvidence(inj.influence.ModuleStats(inj.module), strata, keptStrata, trials)
	plan, err := bitlive.NeymanPlan(evidence, cfg.RateFloor)
	if err != nil {
		return bitlive.Plan{}, none, err
	}
	return plan, evidence, nil
}

// CampaignAdaptiveMainShardCheckpoint runs one shard's slice of the main
// phase: the plan is re-derived from the completed pilot records at
// pilotPath (deterministically — every shard lands on the identical
// plan), then the shard's main-phase slots are thinned under it and the
// kept specs execute, checkpointed at path. The union of all shards'
// pilot and main logs replays to the unsharded adaptive campaign bit for
// bit (AdaptiveFromCheckpoint).
func (inj *Injector) CampaignAdaptiveMainShardCheckpoint(ctx context.Context, n, shard, shards int, pilotPath, path string) (*CampaignResult, error) {
	if err := inj.requireAdaptive(); err != nil {
		return nil, err
	}
	if err := checkShard(shard, shards); err != nil {
		return nil, err
	}
	plan, _, err := inj.AdaptivePlanFromCheckpoint(n, pilotPath)
	if err != nil {
		return nil, err
	}
	cfg := inj.opts.Adaptive.withDefaults()
	pn := pilotLen(n, cfg.PilotFraction)
	specs := inj.sampleRandom(n)
	strata := inj.classifySpecs(specs)
	lo, hi := ShardRange(n, shard, shards)
	if lo < pn {
		lo = pn
	}
	var kept []trialSpec
	if lo < hi {
		kept, _ = thinSlots(inj.opts.Seed, plan, specs, strata, lo, hi)
	}
	ck, err := openCheckpoint(path, inj.metaAdaptive(n), false)
	if err != nil {
		return nil, err
	}
	res, runErr := inj.runTrials(ctx, kept, ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return res, runErr
}

// AdaptiveFromCheckpoint reconstructs an adaptive campaign result purely
// from the checkpoint log at path (typically the merge of pilot and main
// shard logs) — no trial executes. A complete pilot prefix re-derives
// the plan and replays the main phase, counting missing main-phase
// records like StratifiedFromCheckpoint. An incomplete pilot leaves the
// plan underivable, so the result mirrors a mid-pilot cancellation: the
// recorded pilot trials under the pilot plan, with the absent
// pilot-kept slots counted missing — main-phase slots carry no
// inclusion status yet, so they are not.
func (inj *Injector) AdaptiveFromCheckpoint(n int, path string) (*AdaptiveResult, int, error) {
	if err := inj.requireAdaptive(); err != nil {
		return nil, 0, err
	}
	_, recs, err := loadLogFor(path, inj.metaAdaptive(n))
	if err != nil {
		return nil, 0, err
	}
	cfg := inj.opts.Adaptive.withDefaults()
	specs := inj.sampleRandom(n)
	strata := inj.classifySpecs(specs)
	var slotCounts [bitlive.NumStrata]int
	for _, s := range strata {
		slotCounts[int(s)]++
	}
	pn := pilotLen(n, cfg.PilotFraction)
	pplan := pilotPlan(cfg)

	// Replay the pilot-kept slots (the prefix thinned under the pilot
	// plan), keeping strata aligned with the replayed subset (records
	// may be missing anywhere in the prefix, not just at its tail).
	pilotKept, pilotKeptStrata := thinSlots(inj.opts.Seed, pplan, specs, strata, 0, pn)
	pilotRes := &CampaignResult{}
	var pilotStrata []bitlive.Stratum
	pilotMissing := 0
	for i, spec := range pilotKept {
		rec, ok := recs[spec.key()]
		if !ok {
			pilotMissing++
			continue
		}
		tr, terr := rec.injection(spec)
		if terr != nil {
			terr.Index = len(pilotRes.Trials)
			pilotRes.Errs = append(pilotRes.Errs, *terr)
		}
		pilotRes.Trials = append(pilotRes.Trials, tr)
		pilotStrata = append(pilotStrata, pilotKeptStrata[i])
	}
	pilotRes.tally()
	if pilotMissing > 0 {
		empty := &CampaignResult{Counts: map[Outcome]int{}}
		ar := assembleAdaptive(pplan, pplan, n, pn, slotCounts,
			pilotRes, pilotStrata, empty, nil, [bitlive.NumStrata]bitlive.StratumPilot{})
		return ar, pilotMissing, nil
	}
	evidence := pilotEvidence(inj.influence.ModuleStats(inj.module), strata[:pn], pilotStrata, pilotRes.Trials)
	plan, err := bitlive.NeymanPlan(evidence, cfg.RateFloor)
	if err != nil {
		return nil, 0, err
	}
	kept, keptStrata := thinSlots(inj.opts.Seed, plan, specs, strata, pn, n)
	// Replay the kept main-phase specs in slot order, dropping (and
	// counting) records the log is missing; strata stay aligned with the
	// replayed subset.
	mainRes := &CampaignResult{}
	var gotStrata []bitlive.Stratum
	missing := 0
	for i, spec := range kept {
		rec, ok := recs[spec.key()]
		if !ok {
			missing++
			continue
		}
		tr, terr := rec.injection(spec)
		if terr != nil {
			terr.Index = len(mainRes.Trials)
			mainRes.Errs = append(mainRes.Errs, *terr)
		}
		mainRes.Trials = append(mainRes.Trials, tr)
		gotStrata = append(gotStrata, keptStrata[i])
	}
	mainRes.tally()
	ar := assembleAdaptive(plan, pplan, n, pn, slotCounts, pilotRes, pilotStrata, mainRes, gotStrata, evidence)
	return ar, missing, nil
}
