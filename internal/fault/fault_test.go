package fault

import (
	"context"
	"testing"

	"trident/internal/ir"
)

// vulnerable computes a value that flows straight to output: most faults
// in it are SDCs.
const vulnerable = `
module "vulnerable"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %acc = phi i64 [i64 0, entry], [%sum, loop]
  %sq = mul %i, %i
  %sum = add %acc, %sq
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 32
  condbr %c, loop, done
done:
  print %sum
  ret
}
`

// masked computes values that are mostly masked before output.
const masked = `
module "masked"
func @main() void {
entry:
  %x = add i64 12345, i64 0
  %m = and %x, i64 1
  print %m
  ret
}
`

func newInjector(t testing.TB, src string, seed uint64) *Injector {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inj, err := New(m, Options{Seed: seed})
	if err != nil {
		t.Fatalf("new injector: %v", err)
	}
	return inj
}

func TestGoldenRunCaptured(t *testing.T) {
	inj := newInjector(t, vulnerable, 1)
	// sum of squares 0..31 = 10416.
	if inj.GoldenOutput() != "10416\n" {
		t.Errorf("golden output = %q", inj.GoldenOutput())
	}
	if inj.ActivationSpace() == 0 || inj.GoldenDynInstrs() == 0 {
		t.Error("activation space or dyn count empty")
	}
	if len(inj.Targets()) == 0 {
		t.Error("no targets")
	}
	for _, target := range inj.Targets() {
		if !target.HasResult() {
			t.Errorf("non register-writing target %s", target.Pos())
		}
		if inj.ExecCount(target) == 0 {
			t.Errorf("target %s has zero count", target.Pos())
		}
	}
}

func TestInjectHighBitOfPrintedValueIsSDC(t *testing.T) {
	inj := newInjector(t, vulnerable, 1)
	// Find %sum in block loop (the accumulator feeding print).
	var sum *ir.Instr
	for _, in := range inj.module.Func("main").Block("loop").Instrs {
		if in.Name == "sum" {
			sum = in
		}
	}
	if sum == nil {
		t.Fatal("sum register not found")
	}
	// Corrupt the last dynamic instance (instance 32) at a high bit: the
	// corrupted value is printed directly.
	out, err := inj.Inject(context.Background(), sum, 32, 40)
	if err != nil {
		t.Fatal(err)
	}
	if out != SDC {
		t.Errorf("outcome = %v, want sdc", out)
	}
}

func TestInjectMaskedBitIsBenign(t *testing.T) {
	inj := newInjector(t, masked, 1)
	var x *ir.Instr
	for _, in := range inj.module.Func("main").Block("entry").Instrs {
		if in.Name == "x" {
			x = in
		}
	}
	// Bit 5 of %x is discarded by the and with 1.
	out, err := inj.Inject(context.Background(), x, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out != Benign {
		t.Errorf("outcome = %v, want benign", out)
	}
	// Bit 0 changes the printed value.
	out, err = inj.Inject(context.Background(), x, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != SDC {
		t.Errorf("outcome = %v, want sdc", out)
	}
}

func TestInjectAddressBitCrashes(t *testing.T) {
	inj := newInjector(t, `
module "addr"
global @a i64 x 4 = [7]
func @main() void {
entry:
  %p = gep i64, @a, i64 0
  %v = load i64, %p
  print %v
  ret
}
`, 1)
	var gep *ir.Instr
	for _, in := range inj.module.Func("main").Block("entry").Instrs {
		if in.Op == ir.OpGep {
			gep = in
		}
	}
	// Flipping a high address bit lands far outside every segment.
	out, err := inj.Inject(context.Background(), gep, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if out != Crash {
		t.Errorf("outcome = %v, want crash", out)
	}
}

func TestInjectLoopBoundCanHang(t *testing.T) {
	inj := newInjector(t, `
module "hangable"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 4
  condbr %c, loop, done
done:
  print %inc
  ret
}
`, 1)
	// Corrupt a high bit of %inc on the last iteration: i jumps far below
	// the bound... choose bit 62 so the loop runs a very long time (or
	// wraps); either hang or SDC is possible, but never benign.
	var inc *ir.Instr
	for _, in := range inj.module.Func("main").Block("loop").Instrs {
		if in.Name == "inc" {
			inc = in
		}
	}
	out, err := inj.Inject(context.Background(), inc, 2, 62)
	if err != nil {
		t.Fatal(err)
	}
	if out == Benign {
		t.Errorf("outcome = %v, want non-benign", out)
	}
}

func TestCheckDetection(t *testing.T) {
	inj := newInjector(t, `
module "protected"
func @main() void {
entry:
  %a = add i64 20, i64 22
  %shadow = add i64 20, i64 22
  check %a, %shadow
  print %a
  ret
}
`, 1)
	var a *ir.Instr
	for _, in := range inj.module.Func("main").Block("entry").Instrs {
		if in.Name == "a" {
			a = in
		}
	}
	out, err := inj.Inject(context.Background(), a, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if out != Detected {
		t.Errorf("outcome = %v, want detected", out)
	}
}

func TestCampaignRandomDeterministic(t *testing.T) {
	a, err := newInjector(t, vulnerable, 42).CampaignRandom(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newInjector(t, vulnerable, 42).CampaignRandom(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 50 || b.N() != 50 {
		t.Fatalf("trial counts %d, %d", a.N(), b.N())
	}
	sameTrial := func(x, y Injection) bool {
		return x.Instr.ID == y.Instr.ID && x.Instance == y.Instance &&
			x.Bit == y.Bit && x.Outcome == y.Outcome
	}
	for i := range a.Trials {
		if !sameTrial(a.Trials[i], b.Trials[i]) {
			t.Fatalf("trial %d differs between same-seed campaigns", i)
		}
	}
	// Different seeds should (almost surely) sample differently.
	c, err := newInjector(t, vulnerable, 43).CampaignRandom(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Trials {
		if sameTrial(a.Trials[i], c.Trials[i]) {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical campaigns")
	}
}

func TestCampaignAccounting(t *testing.T) {
	res, err := newInjector(t, vulnerable, 7).CampaignRandom(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 200 {
		t.Errorf("outcome counts sum to %d, want 200", total)
	}
	sum := res.Rate(Benign) + res.Rate(SDC) + res.Rate(Crash) + res.Rate(Hang) + res.Rate(Detected)
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("rates sum to %v", sum)
	}
	if res.SDCProb() < 0 || res.SDCProb() > 1 {
		t.Errorf("SDC prob = %v", res.SDCProb())
	}
	if res.ErrorBar95() < 0 || res.ErrorBar95() > 0.5 {
		t.Errorf("error bar = %v", res.ErrorBar95())
	}
}

func TestCampaignPerInstr(t *testing.T) {
	inj := newInjector(t, vulnerable, 7)
	var sum *ir.Instr
	for _, in := range inj.module.Func("main").Block("loop").Instrs {
		if in.Name == "sum" {
			sum = in
		}
	}
	res, err := inj.CampaignPerInstr(context.Background(), sum, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 60 {
		t.Fatalf("N = %d", res.N())
	}
	// The accumulator feeds output: a majority of bit flips are SDCs
	// (early-instance faults always survive into the final sum).
	if res.SDCProb() < 0.5 {
		t.Errorf("per-instruction SDC prob = %v, want > 0.5", res.SDCProb())
	}
	for _, tr := range res.Trials {
		if tr.Instr != sum {
			t.Error("trial hit wrong instruction")
		}
		if tr.Instance == 0 || tr.Instance > 32 {
			t.Errorf("instance %d out of range", tr.Instance)
		}
	}
}

func TestCampaignPerInstrRejectsNonTarget(t *testing.T) {
	inj := newInjector(t, vulnerable, 7)
	var print *ir.Instr
	inj.module.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpPrint {
			print = in
		}
	})
	if _, err := inj.CampaignPerInstr(context.Background(), print, 5); err == nil {
		t.Error("print should not be injectable (no destination register)")
	}
}

func TestPerInstrSDCMap(t *testing.T) {
	inj := newInjector(t, masked, 3)
	targets := inj.Targets()
	m, err := inj.PerInstrSDC(context.Background(), targets, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(targets) {
		t.Fatalf("map size %d, want %d", len(m), len(targets))
	}
	// %m (the and result) feeds print directly; its low bit always matters.
	// %x is mostly masked. So SDC(%x) < SDC(%m).
	var x, and *ir.Instr
	for _, in := range targets {
		switch in.Name {
		case "x":
			x = in
		case "m":
			and = in
		}
	}
	if m[x] >= m[and] {
		t.Errorf("masked instruction %v should have lower SDC than direct %v", m[x], m[and])
	}
}

func TestInjectErrors(t *testing.T) {
	inj := newInjector(t, masked, 3)
	var x *ir.Instr
	inj.module.Instrs(func(in *ir.Instr) {
		if in.Name == "x" {
			x = in
		}
	})
	if _, err := inj.Inject(context.Background(), x, 0, 0); err == nil {
		t.Error("instance 0 should error")
	}
	if _, err := inj.Inject(context.Background(), x, 99, 0); err == nil {
		t.Error("never-reached instance should error")
	}
}

func TestNewRejectsCrashingGolden(t *testing.T) {
	m, err := ir.Parse(`
module "bad"
global @a i32 x 1
func @main() void {
entry:
  %p = gep i32, @a, i32 5
  %v = load i32, %p
  print %v
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Options{}); err == nil {
		t.Error("New should reject a crashing golden run")
	}
}

func TestCrashLatencyMeasured(t *testing.T) {
	// The corrupted index is used by a gep two instructions later, so a
	// crash follows the injection within a handful of instructions.
	inj := newInjector(t, `
module "lat"
global @a i64 x 4 = [1, 2, 3, 4]
func @main() void {
entry:
  %i = add i64 2, i64 0
  %p = gep i64, @a, %i
  %v = load i64, %p
  print %v
  ret
}
`, 1)
	var i *ir.Instr
	inj.module.Instrs(func(in *ir.Instr) {
		if in.Name == "i" {
			i = in
		}
	})
	d, err := inj.InjectDetail(context.Background(), i, 1, 55)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != Crash {
		t.Fatalf("outcome = %v, want crash", d.Outcome)
	}
	if d.CrashLatency == 0 || d.CrashLatency > 5 {
		t.Errorf("crash latency = %d, want small nonzero", d.CrashLatency)
	}
}

func TestMeanCrashLatency(t *testing.T) {
	res, err := newInjector(t, vulnerable, 3).CampaignRandom(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[Crash] > 0 && res.MeanCrashLatency() <= 0 {
		t.Error("campaign with crashes should report positive mean latency")
	}
	empty := &CampaignResult{}
	if empty.MeanCrashLatency() != 0 {
		t.Error("empty campaign latency should be 0")
	}
}
