package fault

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"trident/internal/bitlive"
	"trident/internal/progs"
)

func stratInjector(t *testing.T, name string, opts Options) *Injector {
	t.Helper()
	p, err := progs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(p.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func uniformPlan() *bitlive.Plan {
	var p bitlive.Plan
	for s := 0; s < bitlive.NumStrata; s++ {
		p.Rates[s] = 1
	}
	return &p
}

// TestStratifiedSubsetBitIdentity pins the determinism contract: a
// stratified campaign's executed trials are exactly the thinned subset
// of the unstratified campaign's slots — same specs, same outcomes,
// decided by the random-access inclusion hash, never by visit order.
func TestStratifiedSubsetBitIdentity(t *testing.T) {
	const n = 300
	plan := bitlive.DefaultPlan()
	plain := stratInjector(t, "rgb2gray", Options{Seed: 99})
	strat := stratInjector(t, "rgb2gray", Options{Seed: 99, Stratify: &plan})

	plainRes, err := plain.CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := strat.CampaignStratified(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if sr.SlotN != n {
		t.Fatalf("SlotN = %d, want %d", sr.SlotN, n)
	}
	if sr.ExecutedN() >= n {
		t.Fatalf("stratified campaign executed %d of %d slots: nothing thinned", sr.ExecutedN(), n)
	}
	// Recompute the expected subset over the stratified injector's own
	// spec stream (both injectors build their own module instance, so
	// trials compare by position, not pointer).
	specs := strat.sampleRandom(n)
	want := make([]int, 0, n)
	for i := range specs {
		q := plan.Rate(strat.stratumOf(specs[i]))
		if q >= 1 || slotU(99, i) < q {
			want = append(want, i)
		}
	}
	if len(want) != sr.ExecutedN() {
		t.Fatalf("executed %d trials, expected subset has %d", sr.ExecutedN(), len(want))
	}
	for j, slot := range want {
		got, exp := sr.Trials[j], plainRes.Trials[slot]
		if got.Instr.Pos() != exp.Instr.Pos() || got.Instance != exp.Instance || got.Bit != exp.Bit {
			t.Fatalf("trial %d: spec (%v,%d,%d) != slot %d's (%v,%d,%d)",
				j, got.Instr.Pos(), got.Instance, got.Bit, slot, exp.Instr.Pos(), exp.Instance, exp.Bit)
		}
		if got.Outcome != exp.Outcome {
			t.Errorf("trial %d (slot %d): outcome %v != unstratified %v", j, slot, got.Outcome, exp.Outcome)
		}
		if w := sr.Weights[j]; w != 1/plan.Rate(sr.Strata[j]) {
			t.Errorf("trial %d: weight %v inconsistent with stratum %v", j, w, sr.Strata[j])
		}
	}
	// Slot counts cover the full draw.
	total := 0
	for _, c := range sr.SlotCounts {
		total += c
	}
	if total != n {
		t.Errorf("SlotCounts sum %d, want %d", total, n)
	}
}

// TestStratifiedUniformPlanEqualsRandom: an all-ones plan thins nothing
// and must reproduce CampaignRandom exactly, weighted stats included —
// the unstratified campaign is the uniform special case.
func TestStratifiedUniformPlanEqualsRandom(t *testing.T) {
	const n = 200
	plain := stratInjector(t, "nibblepack", Options{Seed: 7})
	strat := stratInjector(t, "nibblepack", Options{Seed: 7, Stratify: uniformPlan()})

	plainRes, err := plain.CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := strat.CampaignStratified(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ExecutedN() != n {
		t.Fatalf("uniform plan executed %d of %d", sr.ExecutedN(), n)
	}
	for i := range plainRes.Trials {
		a, b := sr.Trials[i], plainRes.Trials[i]
		if a.Instr.Pos() != b.Instr.Pos() || a.Instance != b.Instance || a.Bit != b.Bit || a.Outcome != b.Outcome {
			t.Fatalf("trial %d differs: %+v vs %+v", i, a, b)
		}
	}
	if got, want := sr.WeightedSDC(), plainRes.SDCProb(); math.Abs(got-want) > 1e-12 {
		t.Errorf("WeightedSDC %v != SDCProb %v", got, want)
	}
	if got, want := sr.EffectiveN(), float64(plainRes.ClassifiedN()); math.Abs(got-want) > 1e-6 {
		t.Errorf("EffectiveN %v != ClassifiedN %v", got, want)
	}
	if got, want := sr.WeightedErrorBar95(), plainRes.ErrorBar95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("WeightedErrorBar95 %v != ErrorBar95 %v", got, want)
	}
}

// TestStratifiedCheckpointRoundTrip: a stratified checkpoint resumes to
// an identical result, and StratifiedFromCheckpoint reconstructs the
// weighted campaign without executing.
func TestStratifiedCheckpointRoundTrip(t *testing.T) {
	const n = 150
	plan := bitlive.DefaultPlan()
	path := filepath.Join(t.TempDir(), "strat.ckpt")
	opts := Options{Seed: 5, Stratify: &plan}

	first := stratInjector(t, "boxblur", opts)
	sr1, err := first.CampaignStratifiedCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}

	second := stratInjector(t, "boxblur", opts)
	sr2, err := second.CampaignStratifiedCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr2.Trials) != len(sr1.Trials) {
		t.Fatalf("resumed %d trials, want %d", len(sr2.Trials), len(sr1.Trials))
	}
	for i := range sr1.Trials {
		a, b := sr1.Trials[i], sr2.Trials[i]
		if a.Instr.Pos() != b.Instr.Pos() || a.Instance != b.Instance || a.Bit != b.Bit || a.Outcome != b.Outcome {
			t.Fatalf("trial %d drifted across resume", i)
		}
	}

	sr3, missing, err := second.StratifiedFromCheckpoint(n, path)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("reconstruction missing %d trials", missing)
	}
	if got, want := sr3.WeightedSDC(), sr1.WeightedSDC(); got != want {
		t.Errorf("reconstructed WeightedSDC %v != %v", got, want)
	}
	if got, want := sr3.WeightedErrorBar95(), sr1.WeightedErrorBar95(); got != want {
		t.Errorf("reconstructed WeightedErrorBar95 %v != %v", got, want)
	}
}

// TestStratifiedShardMerge: sharded stratified campaigns merge into the
// unsharded result bit for bit, weighted statistics included.
func TestStratifiedShardMerge(t *testing.T) {
	const (
		n      = 180
		shards = 3
	)
	plan := bitlive.DefaultPlan()
	opts := Options{Seed: 21, Stratify: &plan}
	whole := stratInjector(t, "rgb2gray", opts)
	want, err := whole.CampaignStratified(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var srcs []string
	execTotal := 0
	for s := 0; s < shards; s++ {
		inj := stratInjector(t, "rgb2gray", opts)
		path := filepath.Join(dir, "shard"+string(rune('0'+s))+".ckpt")
		res, err := inj.CampaignStratifiedShardCheckpoint(context.Background(), n, s, shards, path)
		if err != nil {
			t.Fatal(err)
		}
		execTotal += res.N()
		srcs = append(srcs, path)
	}
	if execTotal != want.ExecutedN() {
		t.Fatalf("shards executed %d trials, unsharded %d", execTotal, want.ExecutedN())
	}
	merged := filepath.Join(dir, "merged.ckpt")
	if _, err := MergeCheckpoints(merged, srcs...); err != nil {
		t.Fatal(err)
	}
	got, missing, err := whole.StratifiedFromCheckpoint(n, merged)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("merged log missing %d trials", missing)
	}
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("merged %d trials, want %d", len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if got.Trials[i].Outcome != want.Trials[i].Outcome {
			t.Fatalf("trial %d outcome drifted across shard merge", i)
		}
	}
	if got.WeightedSDC() != want.WeightedSDC() || got.WeightedErrorBar95() != want.WeightedErrorBar95() {
		t.Errorf("weighted stats drifted: %v±%v vs %v±%v",
			got.WeightedSDC(), got.WeightedErrorBar95(), want.WeightedSDC(), want.WeightedErrorBar95())
	}
}

// TestCheckpointPruneMismatchRefused is the satellite regression for the
// silent prune/unpruned resume mixing: the header now records the
// pruning configuration and a mismatched resume must fail loudly, in
// both directions. (Before the header carried Prune, both resumes below
// silently succeeded and mixed semantics in one transcript.)
func TestCheckpointPruneMismatchRefused(t *testing.T) {
	const n = 40
	path := filepath.Join(t.TempDir(), "prune.ckpt")
	pruned := stratInjector(t, "rgb2gray", Options{Seed: 3, PruneBits: true})
	if _, err := pruned.CampaignRandomCheckpoint(context.Background(), n, path); err != nil {
		t.Fatal(err)
	}

	plain := stratInjector(t, "rgb2gray", Options{Seed: 3})
	_, err := plain.ResumeCampaign(context.Background(), n, path)
	if err == nil || !strings.Contains(err.Error(), "pruning") {
		t.Fatalf("unpruned resume of pruned checkpoint: err = %v, want pruning mismatch", err)
	}

	// Reverse direction: a plain log must refuse a pruned resume.
	path2 := filepath.Join(t.TempDir(), "plain.ckpt")
	if _, err := plain.CampaignRandomCheckpoint(context.Background(), n, path2); err != nil {
		t.Fatal(err)
	}
	_, err = pruned.ResumeCampaign(context.Background(), n, path2)
	if err == nil || !strings.Contains(err.Error(), "pruning") {
		t.Fatalf("pruned resume of unpruned checkpoint: err = %v, want pruning mismatch", err)
	}

	// Matched resumes still work.
	if _, err := pruned.ResumeCampaign(context.Background(), n, path); err != nil {
		t.Fatalf("matched pruned resume failed: %v", err)
	}
	if _, err := plain.ResumeCampaign(context.Background(), n, path2); err != nil {
		t.Fatalf("matched plain resume failed: %v", err)
	}
}

// TestCheckpointStratifyMismatchRefused: a stratified log written under
// one plan refuses resume under another (the thinned subset differs),
// and a stratified log never resumes as a plain random campaign.
func TestCheckpointStratifyMismatchRefused(t *testing.T) {
	const n = 60
	path := filepath.Join(t.TempDir(), "strat.ckpt")
	plan := bitlive.DefaultPlan()
	a := stratInjector(t, "nibblepack", Options{Seed: 9, Stratify: &plan})
	if _, err := a.CampaignStratifiedCheckpoint(context.Background(), n, path); err != nil {
		t.Fatal(err)
	}

	other := bitlive.DefaultPlan()
	other.Rates[bitlive.StratumNoise] = 0.5
	b := stratInjector(t, "nibblepack", Options{Seed: 9, Stratify: &other})
	_, err := b.CampaignStratifiedCheckpoint(context.Background(), n, path)
	if err == nil || !strings.Contains(err.Error(), "stratification") {
		t.Fatalf("cross-plan resume: err = %v, want stratification mismatch", err)
	}

	plain := stratInjector(t, "nibblepack", Options{Seed: 9})
	_, err = plain.ResumeCampaign(context.Background(), n, path)
	if err == nil {
		t.Fatal("plain resume of stratified checkpoint succeeded")
	}
}
