package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trident/internal/ir"
)

// newInjectorOpts is newInjector with full Options control.
func newInjectorOpts(t testing.TB, src string, opts Options) *Injector {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inj, err := New(m, opts)
	if err != nil {
		t.Fatalf("new injector: %v", err)
	}
	return inj
}

// transcript renders a campaign result into a worker-order-independent,
// injector-instance-independent byte string: one line per trial plus the
// error roster. Two campaigns are "byte-identical" iff transcripts match.
func transcript(res *CampaignResult) string {
	var b strings.Builder
	for i, tr := range res.Trials {
		fmt.Fprintf(&b, "%d %s:%d inst=%d bit=%d %s lat=%d\n",
			i, tr.Instr.Block.Fn.Name, tr.Instr.ID, tr.Instance, tr.Bit, tr.Outcome, tr.CrashLatency)
	}
	for _, te := range res.Errs {
		fmt.Fprintf(&b, "err %d attempts=%d %v\n", te.Index, te.Attempts, te.Err)
	}
	return b.String()
}

func TestCampaignWorkerInvariance(t *testing.T) {
	// The same (module, seed, n) campaign must be byte-identical whether it
	// runs serially or on a wide worker pool — including which trials error
	// (the hook panics on a deterministic subset of specs).
	hook := func(target *ir.Instr, instance uint64, bit int, attempt int) error {
		if bit%11 == 3 {
			panic("chaos: simulated engine fault")
		}
		return nil
	}
	var want string
	for _, workers := range []int{1, 4, 16} {
		inj := newInjectorOpts(t, vulnerable, Options{Seed: 99, Workers: workers, TrialHook: hook})
		res, err := inj.CampaignRandom(context.Background(), 120)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.N() != 120 {
			t.Fatalf("workers=%d: N = %d, want 120", workers, res.N())
		}
		got := transcript(res)
		if workers == 1 {
			want = got
			if res.Counts[Errored] == 0 {
				t.Fatal("chaos hook never fired; test is vacuous")
			}
			continue
		}
		if got != want {
			t.Errorf("workers=%d campaign differs from workers=1:\n got: %q\nwant: %q", workers, got, want)
		}
	}
}

func TestCampaignPanicIsolationPartialResults(t *testing.T) {
	// A campaign whose trials include engine panics completes, classifies
	// the panicked trials Errored, and keeps everything else.
	inj := newInjectorOpts(t, vulnerable, Options{
		Seed:    7,
		Workers: 4,
		TrialHook: func(target *ir.Instr, instance uint64, bit int, attempt int) error {
			if bit%5 == 0 {
				panic(fmt.Sprintf("boom bit=%d", bit))
			}
			return nil
		},
	})
	res, err := inj.CampaignRandom(context.Background(), 100)
	if err != nil {
		t.Fatalf("campaign aborted: %v", err)
	}
	if res.N() != 100 {
		t.Fatalf("N = %d, want 100", res.N())
	}
	if res.Counts[Errored] == 0 {
		t.Fatal("no Errored trials; hook never fired")
	}
	if len(res.Errs) != res.Counts[Errored] {
		t.Errorf("len(Errs) = %d, Counts[Errored] = %d", len(res.Errs), res.Counts[Errored])
	}
	if got := res.ClassifiedN(); got != 100-res.Counts[Errored] {
		t.Errorf("ClassifiedN = %d, want %d", got, 100-res.Counts[Errored])
	}
	// Program-outcome rates are normalized over classified trials only.
	sum := 0.0
	for _, o := range []Outcome{Benign, SDC, Crash, Hang, Detected} {
		sum += res.Rate(o)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("classified rates sum to %v, want 1.0", sum)
	}
	for i := 1; i < len(res.Errs); i++ {
		if res.Errs[i-1].Index >= res.Errs[i].Index {
			t.Fatalf("Errs not sorted by trial index: %d then %d", res.Errs[i-1].Index, res.Errs[i].Index)
		}
	}
	for _, te := range res.Errs {
		if res.Trials[te.Index].Outcome != Errored {
			t.Errorf("trial %d has error but outcome %v", te.Index, res.Trials[te.Index].Outcome)
		}
		var ee *EngineError
		if !errors.As(te.Err, &ee) || ee.Recovered == nil {
			t.Errorf("trial %d error is not a recovered-panic EngineError: %v", te.Index, te.Err)
		}
		// Panics are deterministic engine failures: no retry budget spent.
		if te.Attempts != 1 {
			t.Errorf("trial %d attempts = %d, want 1 (fail-fast on non-transient)", te.Index, te.Attempts)
		}
	}
}

func TestCampaignRetryTransient(t *testing.T) {
	// Transient failures on early attempts succeed on retry and leave the
	// campaign byte-identical to an undisturbed one.
	flaky := func(target *ir.Instr, instance uint64, bit int, attempt int) error {
		if attempt == 1 && bit%3 == 0 {
			return &EngineError{Err: errors.New("simulated transient"), Transient: true}
		}
		return nil
	}
	inj := newInjectorOpts(t, vulnerable, Options{Seed: 5, Workers: 4, MaxRetries: 2, TrialHook: flaky})
	res, err := inj.CampaignRandom(context.Background(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[Errored] != 0 {
		t.Fatalf("%d trials errored despite retry budget: %v", res.Counts[Errored], res.Errs)
	}
	clean := newInjectorOpts(t, vulnerable, Options{Seed: 5, Workers: 4})
	want, err := clean.CampaignRandom(context.Background(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if transcript(res) != transcript(want) {
		t.Error("retried campaign differs from undisturbed campaign")
	}
}

func TestCampaignRetryExhaustion(t *testing.T) {
	// A spec that fails transiently on every attempt consumes the full
	// budget (1 + MaxRetries) and is then classified Errored.
	const retries = 2
	var calls atomic.Int64
	inj := newInjectorOpts(t, vulnerable, Options{
		Seed: 5, Workers: 2, MaxRetries: retries,
		TrialHook: func(target *ir.Instr, instance uint64, bit int, attempt int) error {
			if bit == 13 {
				calls.Add(1)
				return &EngineError{Err: errors.New("always transient"), Transient: true}
			}
			return nil
		},
	})
	res, err := inj.CampaignRandom(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[Errored] == 0 {
		t.Fatal("no trial hit bit 13; test is vacuous")
	}
	for _, te := range res.Errs {
		if te.Attempts != 1+retries {
			t.Errorf("trial %d attempts = %d, want %d", te.Index, te.Attempts, 1+retries)
		}
		if !isTransient(te.Err) {
			t.Errorf("trial %d final error lost its transient marker: %v", te.Index, te.Err)
		}
	}
	if want := int64(res.Counts[Errored] * (1 + retries)); calls.Load() != want {
		t.Errorf("hook fired %d times for errored specs, want %d", calls.Load(), want)
	}
}

// slowLoop runs ~1.2M dynamic instructions: long enough that a
// millisecond-scale trial watchdog reliably expires mid-run.
const slowLoop = `
module "slow"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %acc = phi i64 [i64 0, entry], [%sum, loop]
  %sum = add %acc, %i
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 200000
  condbr %c, loop, done
done:
  print %sum
  ret
}
`

func TestTrialWatchdogIsTransient(t *testing.T) {
	// A trial that cannot finish inside TrialTimeout fails with a transient
	// EngineError (retryable), while campaign-level cancellation of the
	// parent context propagates as the plain context error instead.
	inj := newInjectorOpts(t, slowLoop, Options{Seed: 3, TrialTimeout: time.Millisecond})
	var sum *ir.Instr
	for _, in := range inj.module.Func("main").Block("loop").Instrs {
		if in.Name == "sum" {
			sum = in
		}
	}
	if sum == nil {
		t.Fatal("sum register not found")
	}
	// Reaching dynamic instance 150000 takes ~0.9M interpreted
	// instructions — far more than a millisecond of wall clock.
	_, err := inj.InjectDetail(context.Background(), sum, 150000, 3)
	var ee *EngineError
	if !errors.As(err, &ee) || !ee.Transient {
		t.Fatalf("watchdog expiry err = %v, want transient *EngineError", err)
	}
	if !isTransient(err) {
		t.Error("isTransient rejects a watchdog expiry")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = inj.InjectDetail(cancelled, sum, 150000, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-parent err = %v, want context.Canceled", err)
	}
	if isTransient(err) {
		t.Error("parent cancellation misclassified as a transient engine failure")
	}
}

func TestCampaignCancellationCompletedPrefix(t *testing.T) {
	// Cancelling mid-campaign returns context.Canceled plus exactly the
	// contiguous completed prefix — byte-identical to the same prefix of an
	// uninterrupted run.
	full, err := newInjectorOpts(t, vulnerable, Options{Seed: 21, Workers: 4}).
		CampaignRandom(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	fullLines := strings.Split(transcript(full), "\n")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	inj := newInjectorOpts(t, vulnerable, Options{
		Seed: 21, Workers: 4,
		TrialHook: func(target *ir.Instr, instance uint64, bit int, attempt int) error {
			if fired.Add(1) == 40 {
				cancel()
			}
			return nil
		},
	})
	res, err := inj.CampaignRandom(ctx, 200)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled campaign returned no partial result")
	}
	if res.N() == 0 || res.N() >= 200 {
		t.Fatalf("completed prefix has %d trials, want 0 < n < 200", res.N())
	}
	for i, tr := range res.Trials {
		if tr.Outcome == 0 {
			t.Fatalf("trial %d in returned prefix is unclassified", i)
		}
	}
	for i, line := range strings.Split(transcript(res), "\n") {
		if line == "" {
			continue
		}
		if line != fullLines[i] {
			t.Fatalf("prefix trial %d differs from uninterrupted run:\n got %q\nwant %q", i, line, fullLines[i])
		}
	}
	if got := len(res.Trials); res.Counts[Benign]+res.Counts[SDC]+res.Counts[Crash]+
		res.Counts[Hang]+res.Counts[Detected]+res.Counts[Errored] != got {
		t.Errorf("tallies do not cover the %d returned trials: %v", got, res.Counts)
	}
}

func TestCheckpointResumeBitForBit(t *testing.T) {
	// Kill a checkpointed campaign partway, corrupt the log tail the way a
	// kill mid-write would, then resume: the final result must reproduce
	// the uninterrupted campaign bit for bit.
	const n = 150
	path := filepath.Join(t.TempDir(), "trials.jsonl")

	full, err := newInjectorOpts(t, vulnerable, Options{Seed: 11, Workers: 4}).
		CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	interrupted := newInjectorOpts(t, vulnerable, Options{
		Seed: 11, Workers: 4,
		TrialHook: func(target *ir.Instr, instance uint64, bit int, attempt int) error {
			if fired.Add(1) == 50 {
				cancel()
			}
			return nil
		},
	})
	partial, err := interrupted.CampaignRandomCheckpoint(ctx, n, path)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial.N() == 0 || partial.N() >= n {
		t.Fatalf("interrupted campaign completed %d trials, want 0 < n < %d", partial.N(), n)
	}

	// Simulate a kill mid-append: a truncated half-written JSON line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fn":"main","instr":4,"insta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed, err := newInjectorOpts(t, vulnerable, Options{Seed: 11, Workers: 4}).
		ResumeCampaign(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := transcript(resumed), transcript(full); got != want {
		t.Errorf("resumed campaign differs from uninterrupted run:\n got: %q\nwant: %q", got, want)
	}
}

func TestCheckpointReplayShortCircuitsExecution(t *testing.T) {
	// Once a campaign is fully checkpointed, resuming it must replay from
	// the log without re-executing anything: an injector whose every trial
	// attempt panics still reproduces the clean result.
	const n = 60
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	clean := newInjectorOpts(t, vulnerable, Options{Seed: 13, Workers: 4})
	want, err := clean.CampaignRandomCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := newInjectorOpts(t, vulnerable, Options{
		Seed: 13, Workers: 4,
		TrialHook: func(target *ir.Instr, instance uint64, bit int, attempt int) error {
			panic("trial executed despite full checkpoint")
		},
	})
	got, err := poisoned.ResumeCampaign(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts[Errored] != 0 {
		t.Fatalf("%d trials re-executed (and panicked) on resume", got.Counts[Errored])
	}
	if transcript(got) != transcript(want) {
		t.Error("replayed campaign differs from original")
	}
}

func TestCheckpointRejectsForeignCampaign(t *testing.T) {
	// A log written for one (module, seed) must not silently corrupt a
	// different campaign's results.
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	if _, err := newInjectorOpts(t, vulnerable, Options{Seed: 1}).
		CampaignRandomCheckpoint(context.Background(), 20, path); err != nil {
		t.Fatal(err)
	}
	_, err := newInjectorOpts(t, vulnerable, Options{Seed: 2}).
		CampaignRandomCheckpoint(context.Background(), 20, path)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("seed mismatch err = %v, want 'different campaign'", err)
	}
}

func TestResumeRequiresExistingCheckpoint(t *testing.T) {
	inj := newInjectorOpts(t, vulnerable, Options{Seed: 1})
	_, err := inj.ResumeCampaign(context.Background(), 20, filepath.Join(t.TempDir(), "missing.jsonl"))
	if err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Errorf("err = %v, want 'no checkpoint'", err)
	}
}

func TestIntnUniformSmall(t *testing.T) {
	// Rejection sampling removes modulo bias; for a small non-power-of-two
	// n the buckets must be near-uniform, and intn must stay in range.
	r := newRNG(42)
	const n, draws = 6, 60000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		v := r.intn(n)
		if v >= n {
			t.Fatalf("intn(%d) = %d out of range", n, v)
		}
		buckets[v]++
	}
	want := draws / n
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestIntnZeroPanicsTyped(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("intn(0) did not panic")
		}
		if _, ok := r.(*EngineError); !ok {
			t.Fatalf("intn(0) panicked with %T, want *EngineError", r)
		}
	}()
	newRNG(1).intn(0)
}
