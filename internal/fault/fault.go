// Package fault is the repository's LLFI equivalent: it injects transient
// hardware faults — single bit flips in the destination register of one
// dynamic instruction per run (paper §II-A, §V-A2) — and classifies the
// outcome against a golden run as Benign, SDC, Crash, Hang, or Detected.
//
// Faults are only injected into executed register-writing instructions, so
// every injected fault is activated, matching the paper's definition of
// SDC probability as conditional on activation.
//
// DESIGN.md §5–§5c cover the fault model, campaign lifecycle and the
// snapshot-replay engine; §5h the compositional cache; §5i the
// bit-liveness pruning behind Options.PruneBits.
package fault

import (
	"context"
	"errors"
	"fmt"
	mbits "math/bits"
	"sort"
	"sync"
	"time"

	"trident/internal/bitlive"
	"trident/internal/decoded"
	"trident/internal/hashutil"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/telemetry"
)

// Outcome classifies one fault-injection run.
type Outcome uint8

// Injection outcomes.
const (
	// Benign: the program output matched the golden run.
	Benign Outcome = iota + 1
	// SDC: the program completed with different output.
	SDC
	// Crash: a hardware-exception-like trap terminated the run.
	Crash
	// Hang: the run exceeded its instruction budget.
	Hang
	// Detected: a duplication check caught the corruption.
	Detected
	// Errored: the trial could not be classified because the engine itself
	// failed (panic, internal error, or watchdog expiry) after exhausting
	// its retry budget. Errored trials carry no program-behavior signal;
	// campaigns report them separately so partial results stay usable.
	Errored
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Benign:
		return "benign"
	case SDC:
		return "sdc"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Detected:
		return "detected"
	case Errored:
		return "errored"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// AllOutcomes lists every trial classification in reporting order.
var AllOutcomes = []Outcome{Benign, SDC, Crash, Hang, Detected, Errored}

// OutcomeFromName inverts Outcome.String — the decoding direction of
// the checkpoint and campaign-server wire formats.
func OutcomeFromName(s string) (Outcome, bool) { return outcomeFromName(s) }

// outcomeFromName inverts Outcome.String for checkpoint decoding.
func outcomeFromName(s string) (Outcome, bool) {
	for _, o := range AllOutcomes {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// Injection describes one fault-injection trial.
type Injection struct {
	// Instr is the static instruction whose destination register was
	// corrupted.
	Instr *ir.Instr
	// Instance is the 1-based dynamic occurrence of Instr that was hit.
	Instance uint64
	// Bit is the flipped bit position within the result type's width.
	Bit int
	// Outcome classifies the run.
	Outcome Outcome
	// Pruned marks a trial that was classified Benign without execution
	// because the static bit-liveness analysis (internal/bitlive) proved
	// the flipped bit masked. Pruned trials keep their slot in the
	// sampling stream, so pruned campaigns remain trial-for-trial
	// comparable with unpruned ones; the exhaustive oracle in
	// internal/crosscheck verifies the claim by executing such bits.
	Pruned bool
	// CrashLatency is the number of dynamic instructions executed between
	// the injection and the trap, for Crash outcomes (0 otherwise) — the
	// quantity behind long-latency-crash characterizations.
	CrashLatency uint64
}

// Options configure an injector.
type Options struct {
	// Seed drives the deterministic PRNG used for sampling targets.
	Seed uint64
	// HangFactor multiplies the golden dynamic instruction count to set
	// the hang budget (0 = default 10).
	HangFactor uint64
	// Workers is the number of concurrent injection runs in campaigns
	// (0 = 4). Each run is independent; memory states are never shared.
	Workers int
	// TrialTimeout is a per-trial wall-clock watchdog layered on top of
	// the instruction budget (0 = none). A trial that exceeds it fails
	// with a transient EngineError: it is retried up to MaxRetries times
	// and then classified Errored.
	TrialTimeout time.Duration
	// MaxRetries bounds re-executions of a trial that fails with a
	// transient EngineError. Retries re-run the exact same
	// (instruction, instance, bit) spec — never a re-sampled one — so
	// flaky trials cannot skew outcome rates.
	MaxRetries int
	// SnapshotInterval enables snapshot-replay trials: the injector
	// captures golden-run state snapshots roughly every SnapshotInterval
	// dynamic instructions, and each trial resumes from the nearest
	// snapshot at or before its injection point instead of re-interpreting
	// the whole pre-fault prefix from instruction 0. The interpreter is
	// deterministic, so trial outcomes are bit-identical to the legacy
	// full-execution path (enforced by the differential test suite).
	// Zero keeps the legacy path.
	SnapshotInterval uint64
	// TrialHook, when non-nil, runs before every trial attempt with the
	// trial spec and 1-based attempt number. A non-nil return (or a panic)
	// fails the attempt. It exists to inject faults into the fault
	// injector itself: campaign-robustness tests and chaos drills use it
	// to simulate engine panics and transient failures deterministically.
	TrialHook func(target *ir.Instr, instance uint64, bit int, attempt int) error
	// Metrics, when non-nil, receives campaign telemetry — per-trial
	// outcome counters, retry tallies, worker utilization, the golden-run
	// vs replay time split — and is threaded into the interpreter for its
	// run and snapshot metrics. After a campaign completes, the outcome
	// counters reconcile exactly with CampaignResult.Counts (a cancelled
	// campaign may additionally have counted trials that finished past the
	// contiguous prefix it returned). Nil disables all recording. See
	// OBSERVABILITY.md for the metric reference.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives lifecycle records: spans for the
	// golden run, the snapshot-capture pass and each campaign, and one
	// event per errored trial. Nil disables tracing.
	Trace *telemetry.Trace
	// PruneBits enables static bit-liveness pruning (internal/bitlive,
	// DESIGN.md §5i): campaigns classify trials whose flipped bit is
	// provably masked as Benign without executing them. Sampling is
	// unchanged — pruned trials occupy the same slots in the same
	// deterministic stream — so outcome tallies, rates, and Wilson CIs
	// cover the full activation space and are bit-identical in
	// expectation to unpruned runs (exactly identical under the
	// soundness guarantee, which the crosscheck oracle enforces).
	// Inject/InjectDetail never prune, so single trials — and the
	// oracle — always execute.
	PruneBits bool
	// Stratify, when non-nil, enables stratified campaigns
	// (CampaignStratified and friends): the injector classifies every
	// injectable bit into an influence stratum
	// (bitlive.ClassifyInfluence) and thins the sampled slots by the
	// plan's per-stratum rates with inverse-probability reweighting.
	// Estimates stay exactly unbiased for any valid plan (rates in
	// (0, 1]); only the variance changes. The plan does not affect
	// CampaignRandom or Inject/InjectDetail. See ANALYSIS.md,
	// "Stratified sampling over live bits".
	Stratify *bitlive.Plan
	// Adaptive, when non-nil, enables adaptive two-phase campaigns
	// (CampaignAdaptive and friends): a static-shape pilot phase (live
	// strata at rate 1, provably-masked slots at the rate floor)
	// estimates per-stratum SDC variance, NeymanPlan derives the
	// main-phase inclusion rates, and the pilot trials fold into the
	// final weighted estimate at the pilot plan's 1/q. Mutually exclusive with Stratify — an
	// adaptive campaign derives its own plan. The zero-value config
	// fields select the package defaults. See ANALYSIS.md, "Adaptive
	// (Neyman) allocation".
	Adaptive *AdaptiveConfig
	// Engine selects the interpreter execution engine for the golden run,
	// the snapshot-capture pass and every trial. The zero value is the
	// legacy engine. With interp.EngineDecoded the injector lowers the
	// module once (interp.CompileDecoded) and shares the immutable
	// program across all workers and trials. Outcomes are bit-identical
	// across engines — enforced by the differential test suite.
	Engine interp.Engine
	// OnProgress, when non-nil, is invoked synchronously after every
	// completed trial of a campaign (including trials replayed from a
	// checkpoint) with monotonically non-decreasing Done and outcome
	// counts. It runs under the campaign's result lock: keep it cheap
	// (the cmd binaries feed a throttled progress meter) and do not call
	// back into the injector from it.
	OnProgress func(Progress)
}

const (
	defaultHangFactor = 10
	defaultWorkers    = 4
	// maxSnapshots caps golden snapshots per injector so a long golden run
	// with a small SnapshotInterval cannot hold an unbounded number of
	// memory copies; the effective interval is raised to stay under it.
	maxSnapshots = 1024
)

// Injector runs fault-injection trials against one module and input.
type Injector struct {
	module *ir.Module
	opts   Options

	goldenOutput string
	goldenDyn    uint64
	hangBudget   uint64

	// moduleHash is the content address of the module's canonical printed
	// text, computed once here and stamped into checkpoint headers and
	// cache keys so stale artifacts are rejected by content, not by name.
	moduleHash uint64

	// execCount maps each register-writing static instruction to its
	// dynamic count in the golden run; it defines the activation space.
	execCount map[*ir.Instr]uint64
	// targets enumerates register-writing instructions with nonzero
	// counts, with cumulative counts for weighted sampling.
	targets []*ir.Instr
	cum     []uint64
	total   uint64

	// snaps are the golden-run snapshots for snapshot-replay trials, in
	// execution order (empty when SnapshotInterval is 0).
	snaps []goldenSnap

	// prog is the module lowered for the decoded engine, compiled once in
	// New and shared (it is immutable) by every run the injector issues.
	// Nil on the legacy engine.
	prog *decoded.Program

	// prune is the static bit-liveness report used to skip provably-
	// masked trials; nil unless Options.PruneBits is set.
	prune *bitlive.Report

	// influence is the per-bit stratum classification driving stratified
	// campaigns; nil unless Options.Stratify is set.
	influence *bitlive.Influence

	// met is the pre-resolved metric set (nil when Options.Metrics is
	// nil), so trial workers record through atomics only.
	met *campaignMetrics
}

// goldenSnap pairs one golden-run state snapshot with the per-instruction
// dynamic execution counts at its capture point, which is what maps a
// trial's (instruction, instance) fault point to the snapshots preceding
// it.
type goldenSnap struct {
	state *interp.Snapshot
	// counts[in] is how many dynamic executions of in completed strictly
	// before the snapshot point; non-decreasing across snapshots.
	counts map[*ir.Instr]uint64
}

// New creates an injector, performing the golden run.
func New(m *ir.Module, opts Options) (*Injector, error) {
	if opts.HangFactor == 0 {
		opts.HangFactor = defaultHangFactor
	}
	if opts.Workers <= 0 {
		opts.Workers = defaultWorkers
	}
	inj := &Injector{module: m, opts: opts, execCount: make(map[*ir.Instr]uint64)}
	inj.moduleHash = hashutil.Module(m)
	inj.met = newCampaignMetrics(opts.Metrics)
	if opts.PruneBits {
		inj.prune = bitlive.Analyze(m)
	}
	if opts.Stratify != nil && opts.Adaptive != nil {
		return nil, fmt.Errorf("fault: Options.Stratify and Options.Adaptive are mutually exclusive: adaptive campaigns derive their own plan")
	}
	if opts.Adaptive != nil {
		if err := opts.Adaptive.Validate(); err != nil {
			return nil, err
		}
	}
	if opts.Stratify != nil || opts.Adaptive != nil {
		if opts.Stratify != nil {
			if err := opts.Stratify.Validate(); err != nil {
				return nil, err
			}
		}
		// The classifier needs the liveness report for its Masked
		// stratum; reuse the pruning report when both are on, otherwise
		// analyze without enabling pruning.
		rep := inj.prune
		if rep == nil {
			rep = bitlive.Analyze(m)
		}
		inj.influence = bitlive.ClassifyInfluence(m, rep)
	}
	if opts.Engine == interp.EngineDecoded {
		inj.prog = interp.CompileDecoded(m, opts.Metrics)
	}

	span := opts.Trace.Start("golden-run", telemetry.Attrs{"module": m.Name})
	goldenStart := time.Now()
	res, err := interp.Run(m, interp.Options{
		Engine:  opts.Engine,
		Decoded: inj.prog,
		Metrics: opts.Metrics,
		Hooks: interp.Hooks{
			OnResult: func(_ *interp.Context, in *ir.Instr, bits uint64) uint64 {
				inj.execCount[in]++
				return bits
			},
		},
	})
	if mt := inj.met; mt != nil {
		mt.goldenUS.Since(goldenStart)
	}
	if err != nil {
		return nil, fmt.Errorf("fault: golden run: %w", err)
	}
	span.EndWith(telemetry.Attrs{"dyn_instrs": res.DynInstrs})
	if res.Outcome != interp.OutcomeOK {
		return nil, fmt.Errorf("fault: golden run ended in %s", res.Outcome)
	}
	inj.goldenOutput = res.Output
	inj.goldenDyn = res.DynInstrs
	inj.hangBudget = res.DynInstrs * opts.HangFactor
	if inj.hangBudget < 100_000 {
		inj.hangBudget = 100_000
	}

	m.Instrs(func(in *ir.Instr) {
		if c := inj.execCount[in]; c > 0 && in.HasResult() {
			inj.targets = append(inj.targets, in)
			inj.total += c
			inj.cum = append(inj.cum, inj.total)
		}
	})
	if inj.total == 0 {
		return nil, fmt.Errorf("fault: program executes no register-writing instructions")
	}
	if opts.SnapshotInterval > 0 {
		if err := inj.captureSnapshots(); err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// captureSnapshots re-runs the golden execution once more with periodic
// state snapshotting enabled, recording alongside every snapshot the
// per-instruction dynamic counts at its capture point. The pass verifies
// it reproduced the golden run exactly, so a nondeterminism bug in the
// engine surfaces here instead of silently corrupting trial outcomes.
func (inj *Injector) captureSnapshots() error {
	interval := inj.opts.SnapshotInterval
	if min := inj.goldenDyn / maxSnapshots; interval < min {
		interval = min
	}
	span := inj.opts.Trace.Start("snapshot-capture", telemetry.Attrs{
		"module": inj.module.Name, "interval": interval,
	})
	setupStart := time.Now()
	counts := make(map[*ir.Instr]uint64, len(inj.targets))
	res, err := interp.Run(inj.module, interp.Options{
		Engine:           inj.opts.Engine,
		Decoded:          inj.prog,
		Metrics:          inj.opts.Metrics,
		SnapshotInterval: interval,
		OnSnapshot: func(s *interp.Snapshot) {
			c := make(map[*ir.Instr]uint64, len(counts))
			for in, n := range counts {
				c[in] = n
			}
			inj.snaps = append(inj.snaps, goldenSnap{state: s, counts: c})
		},
		Hooks: interp.Hooks{
			OnResult: func(_ *interp.Context, in *ir.Instr, bits uint64) uint64 {
				counts[in]++
				return bits
			},
		},
	})
	if mt := inj.met; mt != nil {
		mt.setupUS.Since(setupStart)
	}
	if err != nil {
		return fmt.Errorf("fault: snapshot capture run: %w", err)
	}
	span.EndWith(telemetry.Attrs{"snapshots": len(inj.snaps)})
	if res.Output != inj.goldenOutput || res.DynInstrs != inj.goldenDyn {
		return fmt.Errorf("fault: snapshot capture run diverged from golden run "+
			"(%d dynamic instructions, want %d)", res.DynInstrs, inj.goldenDyn)
	}
	return nil
}

// Snapshots returns the number of golden-run snapshots held for
// snapshot-replay trials (0 on the legacy path).
func (inj *Injector) Snapshots() int { return len(inj.snaps) }

// snapshotBefore returns the index of the latest golden snapshot captured
// strictly before the instance-th dynamic execution of target, or -1 when
// the injection point precedes every snapshot (the trial then runs from
// instruction 0, exactly like the legacy path). Per-instruction counts
// are non-decreasing across snapshots, so binary search applies. This is
// the grouping of trial specs by fault point: every spec whose injection
// index falls in the same inter-snapshot interval resumes from the same
// snapshot.
func (inj *Injector) snapshotBefore(target *ir.Instr, instance uint64) int {
	return sort.Search(len(inj.snaps), func(i int) bool {
		return inj.snaps[i].counts[target] >= instance
	}) - 1
}

// GoldenOutput returns the fault-free program output.
func (inj *Injector) GoldenOutput() string { return inj.goldenOutput }

// ModuleHash returns the content address of the module under injection:
// hashutil.Module of its canonical printed text.
func (inj *Injector) ModuleHash() uint64 { return inj.moduleHash }

// GoldenDynInstrs returns the fault-free dynamic instruction count.
func (inj *Injector) GoldenDynInstrs() uint64 { return inj.goldenDyn }

// ActivationSpace returns the number of dynamic register writes — the
// population faults are sampled from.
func (inj *Injector) ActivationSpace() uint64 { return inj.total }

// ExecCount returns the golden dynamic count of a static instruction.
func (inj *Injector) ExecCount(in *ir.Instr) uint64 { return inj.execCount[in] }

// Targets returns the injectable static instructions (executed,
// register-writing), in program order.
func (inj *Injector) Targets() []*ir.Instr {
	out := make([]*ir.Instr, len(inj.targets))
	copy(out, inj.targets)
	return out
}

// Inject runs one trial: the bit-th bit of the result of the instance-th
// dynamic execution of target is flipped. ctx cancels the run; nil means
// context.Background.
func (inj *Injector) Inject(ctx context.Context, target *ir.Instr, instance uint64, bit int) (Outcome, error) {
	d, err := inj.InjectDetail(ctx, target, instance, bit)
	return d.Outcome, err
}

// Detail carries the full observation of one injection trial.
type Detail struct {
	// Outcome classifies the run.
	Outcome Outcome
	// CrashLatency is the number of dynamic instructions executed between
	// the injection and the trap, for Crash outcomes.
	CrashLatency uint64
	// OutputHash is the 64-bit FNV-1a hash of the trial's complete program
	// output (including any prefix replayed from a snapshot). The
	// differential test suite compares it across the snapshot and legacy
	// execution paths.
	OutputHash uint64
}

// InjectDetail is Inject with crash-latency measurement: how many dynamic
// instructions execute between the bit flip and the trap. Short latencies
// mean crashes are easy to contain; long-latency crashes behave like SDCs
// for checkpointing purposes (Li et al.'s characterization in the paper's
// related work).
func (inj *Injector) InjectDetail(ctx context.Context, target *ir.Instr, instance uint64, bit int) (Detail, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if instance == 0 {
		return Detail{}, fmt.Errorf("fault: instance is 1-based")
	}
	// The per-trial watchdog bounds wall-clock time on top of the
	// instruction budget; its expiry (as opposed to campaign-level
	// cancellation of the parent context) is a transient engine failure.
	parent := ctx
	if inj.opts.TrialTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, inj.opts.TrialTimeout)
		defer cancel()
	}
	ts := acquireTrialState()
	defer releaseTrialState(ts)
	ts.reset(target, instance, bit)
	iopts := interp.Options{
		Context:      ctx,
		MaxDynInstrs: inj.hangBudget,
		Metrics:      inj.opts.Metrics,
		Engine:       inj.opts.Engine,
		Decoded:      inj.prog,
		Hooks:        interp.Hooks{OnResult: ts.hook},
	}
	// Snapshot replay: the pre-fault prefix of the trial is identical to
	// the golden run, so resume from the latest golden snapshot preceding
	// the injection point and count occurrences from the snapshot's tally
	// onward. With no usable snapshot the trial runs from instruction 0.
	var res *interp.Result
	var err error
	if si := inj.snapshotBefore(target, instance); si >= 0 {
		gs := inj.snaps[si]
		ts.seen = gs.counts[target]
		if mt := inj.met; mt != nil {
			mt.replaySnap.Inc()
			mt.savedInstrs.Add(gs.state.DynInstrs())
		}
		res, err = interp.Resume(gs.state, iopts)
	} else {
		if mt := inj.met; mt != nil {
			mt.replayCold.Inc()
		}
		res, err = interp.Run(inj.module, iopts)
	}
	if err != nil {
		switch {
		case parent.Err() != nil:
			// Campaign-level cancellation: propagate as-is so the caller
			// can distinguish "stop everything" from a failed trial.
			return Detail{}, parent.Err()
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			return Detail{}, &EngineError{
				Err:       fmt.Errorf("trial watchdog (%v) expired: %w", inj.opts.TrialTimeout, err),
				Transient: true,
			}
		default:
			var ie *interp.InternalError
			if errors.As(err, &ie) {
				return Detail{}, &EngineError{Err: ie, Recovered: ie.Recovered}
			}
			return Detail{}, fmt.Errorf("fault: injected run: %w", err)
		}
	}
	if !ts.injected {
		return Detail{}, fmt.Errorf("fault: instance %d of %s never executed", instance, target.Pos())
	}
	d := Detail{Outcome: inj.classify(res), OutputHash: hashOutput(res.Output)}
	if d.Outcome == Crash && res.DynInstrs >= ts.injectedAt {
		d.CrashLatency = res.DynInstrs - ts.injectedAt
	}
	return d, nil
}

// trialState is the reusable per-trial injection context. The OnResult
// hook closure is built once per pooled instance and captures the state
// struct, so a campaign of N trials reuses a handful of closures
// instead of allocating one (plus its captured variables) per trial.
// reset rearms every field; a stale target or counter surviving into
// the next trial is a bug the hygiene tests check for.
type trialState struct {
	target     *ir.Instr
	instance   uint64
	mask       uint64
	seen       uint64
	injectedAt uint64
	injected   bool
	hook       func(ctx *interp.Context, in *ir.Instr, bits uint64) uint64
}

// reset rearms the state for one (target, instance, bit) trial spec.
func (ts *trialState) reset(target *ir.Instr, instance uint64, bit int) {
	ts.target = target
	ts.instance = instance
	ts.mask = 1 << uint(bit)
	ts.seen = 0
	ts.injectedAt = 0
	ts.injected = false
}

// trialStatePool recycles trial states (and their hook closures) across
// trials and workers.
var trialStatePool = sync.Pool{New: func() any {
	ts := &trialState{}
	ts.hook = func(ctx *interp.Context, in *ir.Instr, bits uint64) uint64 {
		if ts.injected || in != ts.target {
			return bits
		}
		ts.seen++
		if ts.seen != ts.instance {
			return bits
		}
		ts.injected = true
		ts.injectedAt = ctx.DynCount
		return bits ^ ts.mask
	}
	return ts
}}

func acquireTrialState() *trialState { return trialStatePool.Get().(*trialState) }

// releaseTrialState returns ts to the pool, dropping the target
// reference so pooled states do not retain modules.
func releaseTrialState(ts *trialState) {
	ts.target = nil
	trialStatePool.Put(ts)
}

// hashOutput is the 64-bit FNV-1a hash of a program's output, shared
// with the cross-check oracle and the campaign cache through hashutil so
// output fingerprints are interchangeable across subsystems.
func hashOutput(s string) uint64 { return hashutil.Output(s) }

func (inj *Injector) classify(res *interp.Result) Outcome {
	switch res.Outcome {
	case interp.OutcomeCrash:
		return Crash
	case interp.OutcomeHang:
		return Hang
	case interp.OutcomeDetected:
		return Detected
	default:
		if res.Output == inj.goldenOutput {
			return Benign
		}
		return SDC
	}
}

// pick maps a uniform draw in [1, total] to (instruction, instance) by
// binary search over the cumulative counts.
func (inj *Injector) pick(k uint64) (*ir.Instr, uint64) {
	lo, hi := 0, len(inj.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if inj.cum[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	in := inj.targets[lo]
	prev := uint64(0)
	if lo > 0 {
		prev = inj.cum[lo-1]
	}
	return in, k - prev
}

// randomBit picks a bit position within the instruction's result width.
func randomBit(r *rng, in *ir.Instr) int {
	w := in.Type.Bits()
	if w <= 1 {
		return 0
	}
	return int(r.intn(uint64(w)))
}

// PruneReport returns the static bit-liveness report, or nil when
// Options.PruneBits is off.
func (inj *Injector) PruneReport() *bitlive.Report { return inj.prune }

// isPruned reports whether a campaign trial spec lands on a provably-
// masked bit and can be classified Benign without execution.
func (inj *Injector) isPruned(spec trialSpec) bool {
	return inj.prune != nil && inj.prune.MaskedBit(spec.instr, spec.bit)
}

// PrunedFraction returns the expected share of uniform activation-space
// trials that bit-liveness pruning skips: the golden-execution-weighted
// mean of masked-bits/width over all injectable targets. The CI-equal
// trial saving of a pruned campaign is 1/(1-PrunedFraction) — this is
// the `bits_pruned_pct` column in BENCH_fi.json. Returns 0 when
// pruning is off.
func (inj *Injector) PrunedFraction() float64 {
	if inj.prune == nil || inj.total == 0 {
		return 0
	}
	var weighted float64
	for _, in := range inj.targets {
		w := in.Type.Bits()
		if w == 0 {
			continue
		}
		masked := mbits.OnesCount64(inj.prune.Masked(in))
		weighted += float64(inj.execCount[in]) * float64(masked) / float64(w)
	}
	return weighted / float64(inj.total)
}
