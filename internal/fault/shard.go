// This file implements sharded campaigns and checkpoint stitching —
// the fault-layer half of the campaign server (internal/server).
//
// Sharding is transparent by construction: a campaign's trial list is
// a pure function of (module, seed, n), sampled sequentially from the
// campaign seed, and a shard simply owns a contiguous index range of
// that list. Shard identity never feeds the sampler, so the union of
// the shards' trials is bit-identical to the unsharded campaign — the
// property the shard differential suite and internal/server's
// acceptance tests pin down. Each shard checkpoints independently;
// MergeCheckpoints stitches the shard logs back into one log, and
// CampaignFromCheckpoint reconstructs the campaign result from it
// without executing anything.

package fault

import (
	"context"
	"fmt"
	"os"
)

// ShardRange returns the contiguous trial-index range [lo, hi) owned by
// shard (0-based) of shards. The ranges partition [0, n) exactly, with
// sizes differing by at most one.
func ShardRange(n, shard, shards int) (lo, hi int) {
	return n * shard / shards, n * (shard + 1) / shards
}

// CampaignShardCheckpoint runs one shard of an n-trial CampaignRandom:
// only the trials in ShardRange(n, shard, shards) execute, checkpointed
// to the JSONL log at path (created, or resumed if present — a shard
// worker retried after a crash replays its completed trials and
// re-executes only the remainder). Trial sampling uses the campaign
// seed exactly as the unsharded campaign does, so merging every shard's
// log reproduces the unsharded run bit for bit.
//
// The returned result covers only this shard's trials, in sampling
// order; TrialError.Index values are relative to the shard's slice.
func (inj *Injector) CampaignShardCheckpoint(ctx context.Context, n, shard, shards int, path string) (*CampaignResult, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("fault: shard count must be positive, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("fault: shard %d out of range [0, %d)", shard, shards)
	}
	specs := inj.sampleRandom(n)
	lo, hi := ShardRange(n, shard, shards)
	ck, err := openCheckpoint(path, inj.metaRandom(n), false)
	if err != nil {
		return nil, err
	}
	res, runErr := inj.runTrials(ctx, specs[lo:hi], ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return res, runErr
}

// MergeCheckpoints stitches shard checkpoint logs into a single log at
// dst, returning the number of merged records. Every source must carry
// an identical header (same module, kind, seed, activation space) or
// the merge fails — stitching logs from different campaigns would
// fabricate a result no run ever produced. Torn tails in sources are
// skipped with a warning, like any checkpoint load. When the same trial
// key appears in several sources (shards can overlap after operator
// error, and a campaign can sample the same spec twice), a classified
// record wins over an Errored one; classified duplicates agree by
// determinism. The merged log is a valid checkpoint: ResumeCampaign
// executes any missing trials from it, and CampaignFromCheckpoint
// reconstructs the result from it without executing at all.
func MergeCheckpoints(dst string, srcs ...string) (int, error) {
	if len(srcs) == 0 {
		return 0, fmt.Errorf("fault: merge: no source checkpoints")
	}
	var meta checkpointMeta
	merged := make(map[TrialKey]trialRecord)
	for i, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return 0, fmt.Errorf("fault: merge: %w", err)
		}
		m, recs, warns, err := readLog(src, data)
		if err != nil {
			return 0, err
		}
		for _, w := range warns {
			warnf("%s", w)
		}
		if i == 0 {
			meta = m
		} else if err := m.matches(src, meta); err != nil {
			return 0, err
		}
		for k, rec := range recs {
			if old, ok := merged[k]; ok {
				if o, _ := outcomeFromName(old.Outcome); o != Errored {
					continue
				}
			}
			merged[k] = rec
		}
	}
	if err := writeLog(dst, meta, merged); err != nil {
		return 0, err
	}
	return len(merged), nil
}

// CampaignFromCheckpoint reconstructs a campaign result purely by
// replaying the checkpoint log at path — no trial executes. It returns
// the result over the trials present in the log, in sampling order, and
// the number of sampled trials the log is missing. A complete log
// (missing == 0) reproduces CampaignRandom's result bit for bit; an
// incomplete one — a degraded job whose shard exhausted its retry
// budget, a cancelled run — yields the usable partial result, with
// Errored records kept as Errored trials (unlike ResumeCampaign, which
// re-executes them). This is how internal/server turns merged shard
// logs into a job's final result without paying for a redundant pass
// over the trial list.
func (inj *Injector) CampaignFromCheckpoint(n int, path string) (*CampaignResult, int, error) {
	_, recs, err := loadLogFor(path, inj.metaRandom(n))
	if err != nil {
		return nil, 0, err
	}
	res := &CampaignResult{}
	missing := 0
	for _, spec := range inj.sampleRandom(n) {
		rec, ok := recs[spec.key()]
		if !ok {
			missing++
			continue
		}
		tr, terr := rec.injection(spec)
		if terr != nil {
			terr.Index = len(res.Trials)
			res.Errs = append(res.Errs, *terr)
		}
		res.Trials = append(res.Trials, tr)
	}
	res.tally()
	return res, missing, nil
}
