package fault

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"trident/internal/cache"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/progs"
)

// The compositional differential suite fences the campaign cache the way
// PRs 2/5/6 fenced snapshots, the decoded engine, and sharding: for every
// kernel and both engines, a campaign replayed from cache — or composed
// from a mix of cached and re-run sections after an edit — must be
// bit-identical to a from-scratch campaign: same per-trial transcripts,
// same tallies, same composed rates and intervals.

// compTranscript renders a compositional result into a byte string
// independent of cache state: one line per trial across sections. Cached
// and live runs of the same campaign must render identically.
func compTranscript(res *CompositionalResult) string {
	var b strings.Builder
	for i := range res.Funcs {
		fc := &res.Funcs[i]
		fmt.Fprintf(&b, "@%s w=%d n=%d\n", fc.Name, fc.Weight, fc.N)
		for j, rec := range fc.Records {
			fmt.Fprintf(&b, "  %d %d inst=%d bit=%d %s lat=%d\n",
				j, rec.Instr, rec.Instance, rec.Bit, rec.Outcome, rec.Latency)
		}
	}
	fmt.Fprintf(&b, "sdc=%v lo=%v hi=%v trials=%d classified=%d\n",
		res.Composed.SDC, res.Composed.SDCLo, res.Composed.SDCHi,
		res.Composed.Trials, res.Composed.Classified)
	return b.String()
}

// countingHook returns a TrialHook that tallies executed injections per
// function, to prove cached sections execute zero trials.
func countingHook() (Options, func() map[string]int) {
	var mu sync.Mutex
	counts := make(map[string]int)
	opts := Options{TrialHook: func(in *ir.Instr, instance uint64, bit int, attempt int) error {
		mu.Lock()
		counts[in.Block.Fn.Name]++
		mu.Unlock()
		return nil
	}}
	return opts, func() map[string]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[string]int, len(counts))
		for k, v := range counts {
			out[k] = v
		}
		return out
	}
}

// renameRegs renames every result register of one function — a
// semantics-preserving edit (the interpreter never reads names) that
// still changes the function's canonical printed body, and therefore its
// content hash. This is the validation edit of the incremental story:
// golden behavior is unchanged, so every *other* function's cache entry
// stays valid.
func renameRegs(t *testing.T, m *ir.Module, fnName string) {
	t.Helper()
	fn := m.Func(fnName)
	if fn == nil {
		t.Fatalf("module has no function @%s", fnName)
	}
	renamed := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				in.Name += "rn"
				renamed++
			}
		}
	}
	if renamed == 0 {
		t.Fatalf("@%s has no result registers to rename", fnName)
	}
}

// editTarget picks the function the incremental tests edit: a non-main
// function when the kernel has one (so other sections can stay cached),
// otherwise main.
func editTarget(m *ir.Module) string {
	for _, f := range m.Funcs {
		if f.Name != "main" {
			return f.Name
		}
	}
	return "main"
}

func compositionalN(t *testing.T) int {
	if testing.Short() {
		return 24
	}
	return 48
}

// TestCompositionalCacheReplayAllPrograms: populate the cache, re-run the
// identical campaign, and require (a) every section hits, (b) zero trials
// execute, (c) the replayed result is bit-identical to the original.
func TestCompositionalCacheReplayAllPrograms(t *testing.T) {
	n := compositionalN(t)
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, eng := range interp.Engines() {
				store, err := cache.Open(t.TempDir(), cache.Options{})
				if err != nil {
					t.Fatal(err)
				}
				inj1, err := New(p.Build(), Options{Seed: 42, Workers: 4, Engine: eng})
				if err != nil {
					t.Fatalf("%s: %v", eng, err)
				}
				res1, err := inj1.CampaignCompositional(context.Background(), n, store)
				if err != nil {
					t.Fatalf("%s: populate: %v", eng, err)
				}
				if res1.Hits != 0 || res1.Misses != len(res1.Funcs) {
					t.Errorf("%s: fresh store: hits=%d misses=%d", eng, res1.Hits, res1.Misses)
				}

				hookOpts, executed := countingHook()
				hookOpts.Seed, hookOpts.Workers, hookOpts.Engine = 42, 4, eng
				inj2, err := New(p.Build(), hookOpts)
				if err != nil {
					t.Fatalf("%s: %v", eng, err)
				}
				res2, err := inj2.CampaignCompositional(context.Background(), n, store)
				if err != nil {
					t.Fatalf("%s: replay: %v", eng, err)
				}
				if res2.Hits != len(res2.Funcs) || res2.Misses != 0 {
					t.Errorf("%s: replay: hits=%d misses=%d over %d funcs",
						eng, res2.Hits, res2.Misses, len(res2.Funcs))
				}
				if ex := executed(); len(ex) != 0 {
					t.Errorf("%s: replay executed trials: %v", eng, ex)
				}
				if t1, t2 := compTranscript(res1), compTranscript(res2); t1 != t2 {
					t.Errorf("%s: replay transcript diverges\nlive:\n%s\ncached:\n%s", eng, t1, t2)
				}
				// The merged flat results must agree too.
				m1, err := res1.Merged()
				if err != nil {
					t.Fatal(err)
				}
				m2, err := res2.Merged()
				if err != nil {
					t.Fatal(err)
				}
				if transcript(m1) != transcript(m2) {
					t.Errorf("%s: merged transcripts diverge", eng)
				}
			}
		})
	}
}

// TestCompositionalIncrementalEditAllPrograms is the acceptance drill:
// edit one function (register rename — behavior-preserving, hash-
// changing), re-run incrementally, and require that (a) only the edited
// function re-injects, (b) the composed result is bit-identical to a
// from-scratch campaign on the edited module. Runs on every kernel and
// both engines.
func TestCompositionalIncrementalEditAllPrograms(t *testing.T) {
	n := compositionalN(t)
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, eng := range interp.Engines() {
				store, err := cache.Open(t.TempDir(), cache.Options{})
				if err != nil {
					t.Fatal(err)
				}
				// Populate from the pristine module.
				inj1, err := New(p.Build(), Options{Seed: 42, Workers: 4, Engine: eng})
				if err != nil {
					t.Fatalf("%s: %v", eng, err)
				}
				if _, err := inj1.CampaignCompositional(context.Background(), n, store); err != nil {
					t.Fatalf("%s: populate: %v", eng, err)
				}

				// Edit one function and re-run incrementally.
				edited := p.Build()
				target := editTarget(edited)
				renameRegs(t, edited, target)
				hookOpts, executed := countingHook()
				hookOpts.Seed, hookOpts.Workers, hookOpts.Engine = 42, 4, eng
				inj2, err := New(edited, hookOpts)
				if err != nil {
					t.Fatalf("%s: edited injector: %v", eng, err)
				}
				if inj2.GoldenOutput() != inj1.GoldenOutput() || inj2.GoldenDynInstrs() != inj1.GoldenDynInstrs() {
					t.Fatalf("%s: register rename changed golden behavior; edit is not semantics-preserving", eng)
				}
				incr, err := inj2.CampaignCompositional(context.Background(), n, store)
				if err != nil {
					t.Fatalf("%s: incremental: %v", eng, err)
				}
				if incr.Misses != 1 || incr.Hits != len(incr.Funcs)-1 {
					t.Errorf("%s: incremental after editing @%s: hits=%d misses=%d over %d funcs",
						eng, target, incr.Hits, incr.Misses, len(incr.Funcs))
				}
				for fn, cnt := range executed() {
					if fn != target {
						t.Errorf("%s: incremental executed %d trials in un-edited @%s", eng, cnt, fn)
					}
				}
				for i := range incr.Funcs {
					fc := &incr.Funcs[i]
					if (fc.Name == target) == fc.Cached {
						t.Errorf("%s: @%s cached=%v, edited function is @%s",
							eng, fc.Name, fc.Cached, target)
					}
				}

				// From-scratch on the edited module must match bit for bit.
				editedScratch := p.Build()
				renameRegs(t, editedScratch, target)
				inj3, err := New(editedScratch, Options{Seed: 42, Workers: 4, Engine: eng})
				if err != nil {
					t.Fatalf("%s: scratch injector: %v", eng, err)
				}
				scratch, err := inj3.CampaignCompositional(context.Background(), n, nil)
				if err != nil {
					t.Fatalf("%s: scratch: %v", eng, err)
				}
				if ti, ts := compTranscript(incr), compTranscript(scratch); ti != ts {
					t.Errorf("%s: incremental vs from-scratch transcripts diverge\nincremental:\n%s\nscratch:\n%s",
						eng, ti, ts)
				}
			}
		})
	}
}

// TestCompositionalCrossEngineSharing: engine parity (PR 5) makes
// profiles engine-independent, so a cache populated by the legacy engine
// must fully serve a decoded-engine campaign, bit for bit, without
// executing a trial.
func TestCompositionalCrossEngineSharing(t *testing.T) {
	n := compositionalN(t)
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			store, err := cache.Open(t.TempDir(), cache.Options{})
			if err != nil {
				t.Fatal(err)
			}
			injL, err := New(p.Build(), Options{Seed: 7, Workers: 4, Engine: interp.EngineLegacy})
			if err != nil {
				t.Fatal(err)
			}
			resL, err := injL.CampaignCompositional(context.Background(), n, store)
			if err != nil {
				t.Fatal(err)
			}
			hookOpts, executed := countingHook()
			hookOpts.Seed, hookOpts.Workers, hookOpts.Engine = 7, 4, interp.EngineDecoded
			injD, err := New(p.Build(), hookOpts)
			if err != nil {
				t.Fatal(err)
			}
			resD, err := injD.CampaignCompositional(context.Background(), n, store)
			if err != nil {
				t.Fatal(err)
			}
			if resD.Hits != len(resD.Funcs) {
				t.Errorf("decoded engine hit %d/%d sections of a legacy-populated cache",
					resD.Hits, len(resD.Funcs))
			}
			if ex := executed(); len(ex) != 0 {
				t.Errorf("decoded replay executed trials: %v", ex)
			}
			if tL, tD := compTranscript(resL), compTranscript(resD); tL != tD {
				t.Errorf("cross-engine transcripts diverge\nlegacy:\n%s\ndecoded:\n%s", tL, tD)
			}
		})
	}
}

// mutateConstant flips the low bit of the first integer constant operand
// of an arithmetic instruction in the module — a behavior-*changing*
// edit candidate. Returns false if no candidate exists.
func mutateConstant(m *ir.Module) bool {
	done := false
	m.Instrs(func(in *ir.Instr) {
		if done || !in.Op.IsBinary() {
			return
		}
		for i, op := range in.Operands {
			if c, ok := op.(*ir.Const); ok && c.Type.IsInt() {
				in.Operands[i] = &ir.Const{Type: c.Type, Bits: c.Bits ^ 1}
				done = true
				return
			}
		}
	})
	return done
}

// TestCompositionalBehaviorChangeMissesEverything: an edit that changes
// golden behavior invalidates the golden-run stamp in every key, so the
// whole cache misses and the campaign degrades to a full re-run — the
// soundness half of the caching contract.
func TestCompositionalBehaviorChangeMissesEverything(t *testing.T) {
	for _, name := range []string{"libquantum", "blackscholes", "pathfinder"} {
		p, err := progs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		store, err := cache.Open(t.TempDir(), cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inj1, err := New(p.Build(), Options{Seed: 42, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inj1.CampaignCompositional(context.Background(), 24, store); err != nil {
			t.Fatal(err)
		}

		mutated := p.Build()
		if !mutateConstant(mutated) {
			t.Fatalf("%s: no integer constant to mutate", name)
		}
		inj2, err := New(mutated, Options{Seed: 42, Workers: 4})
		if err != nil {
			// The mutation broke the golden run entirely; that is an even
			// stronger behavior change, but there is no campaign to test.
			t.Logf("%s: mutated golden run failed (%v); skipping", name, err)
			continue
		}
		if inj2.GoldenOutput() == inj1.GoldenOutput() && inj2.GoldenDynInstrs() == inj1.GoldenDynInstrs() {
			t.Fatalf("%s: constant mutation left golden behavior unchanged; test is vacuous", name)
		}
		res, err := inj2.CampaignCompositional(context.Background(), 24, store)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hits != 0 {
			t.Errorf("%s: behavior-changing edit still hit %d cached sections", name, res.Hits)
		}
	}
}
