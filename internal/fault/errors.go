package fault

import (
	"errors"
	"fmt"

	"trident/internal/ir"
)

// EngineError classifies a trial failure that originated in the execution
// engine (or its harness) rather than in the simulated program: recovered
// panics, interpreter-internal errors, and per-trial watchdog expiries.
// Trials that fail with an EngineError are classified with the Errored
// outcome instead of aborting the campaign, so partial results are always
// preserved (graceful degradation).
type EngineError struct {
	// Err is the underlying failure.
	Err error
	// Transient marks failures worth retrying with the same trial spec
	// (e.g. a wall-clock watchdog firing under load). Deterministic engine
	// bugs are not transient: re-running them wastes the retry budget.
	Transient bool
	// Recovered is the recovered panic value when the trial panicked
	// (nil otherwise).
	Recovered any
}

// Error implements error.
func (e *EngineError) Error() string {
	if e.Recovered != nil {
		return fmt.Sprintf("fault: engine panic: %v", e.Recovered)
	}
	return fmt.Sprintf("fault: engine error: %v", e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *EngineError) Unwrap() error { return e.Err }

// isTransient reports whether a trial error advertises itself as
// retryable. Only transient EngineErrors consume retry attempts; anything
// else (spec validation errors, deterministic engine bugs) fails fast.
func isTransient(err error) bool {
	var ee *EngineError
	return errors.As(err, &ee) && ee.Transient
}

// TrialError records one trial that exhausted its attempts without
// producing a classification. The spec identity is preserved so errored
// trials remain attributable and re-runnable.
type TrialError struct {
	// Index is the trial's position in the campaign's sampling order.
	Index int
	// Instr is the targeted static instruction.
	Instr *ir.Instr
	// Instance is the targeted 1-based dynamic occurrence.
	Instance uint64
	// Bit is the targeted bit position.
	Bit int
	// Attempts is the number of executions performed (1 + retries).
	Attempts int
	// Err is the last failure observed.
	Err error
}

// Error implements error.
func (e *TrialError) Error() string {
	return fmt.Sprintf("fault: trial %d (%s instance %d bit %d) failed after %d attempt(s): %v",
		e.Index, e.Instr.Pos(), e.Instance, e.Bit, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }
