package fault

import (
	"context"
	"testing"

	"trident/internal/ir"
)

func TestBitProfileMaskedLowBits(t *testing.T) {
	// %x is masked by "and 0xFF00": only bits 8..15 matter.
	inj := newInjector(t, `
module "bits"
func @main() void {
entry:
  %x = add i64 4660, i64 0
  %m = and %x, i64 65280
  print %m
  ret
}
`, 1)
	var x *ir.Instr
	inj.module.Instrs(func(in *ir.Instr) {
		if in.Name == "x" {
			x = in
		}
	})
	profile, err := inj.BitProfile(context.Background(), x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != 64 {
		t.Fatalf("profile covers %d bits, want 64", len(profile))
	}
	for _, b := range profile {
		want := Benign
		if b.Bit >= 8 && b.Bit < 16 {
			want = SDC
		}
		if got := b.Rate(want); got != 1 {
			t.Errorf("bit %d: rate(%v) = %v, want 1", b.Bit, want, got)
		}
		if b.Trials != 2 {
			t.Errorf("bit %d: %d trials", b.Bit, b.Trials)
		}
	}
	// 8 of 64 bits are SDC-prone.
	if got := BitSensitivity(profile, 0.5); got != 8.0/64 {
		t.Errorf("BitSensitivity = %v, want 0.125", got)
	}
}

func TestBitProfileRejectsNonTarget(t *testing.T) {
	inj := newInjector(t, masked, 1)
	var print *ir.Instr
	inj.module.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpPrint {
			print = in
		}
	})
	if _, err := inj.BitProfile(context.Background(), print, 1); err == nil {
		t.Error("print should not be bit-profilable")
	}
}

func TestBitSensitivityEmpty(t *testing.T) {
	if BitSensitivity(nil, 0.5) != 0 {
		t.Error("empty profile sensitivity should be 0")
	}
}
