package fault

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"trident/internal/bitlive"
	"trident/internal/cache"
)

func adaptInjector(t *testing.T, name string, opts Options) *Injector {
	t.Helper()
	return stratInjector(t, name, opts)
}

func sameTrial(a, b Injection) bool {
	return a.Instr.Pos() == b.Instr.Pos() && a.Instance == b.Instance &&
		a.Bit == b.Bit && a.Outcome == b.Outcome
}

// TestAdaptiveBudgetContract pins the pilot accounting: across kernels
// and budgets, executed(pilot) + executed(main) never exceeds the slot
// budget, the pilot is exactly the pilot plan's kept subset of the
// configured prefix, and the weights are 1/q of the pilot plan for
// pilot trials and 1/q of the derived plan for main-phase trials.
func TestAdaptiveBudgetContract(t *testing.T) {
	for _, kernel := range []string{"rgb2gray", "nibblepack"} {
		for _, n := range []int{80, 250} {
			t.Run(fmt.Sprintf("%s/n=%d", kernel, n), func(t *testing.T) {
				cfg := AdaptiveConfig{}
				inj := adaptInjector(t, kernel, Options{Seed: 11, Adaptive: &cfg})
				ar, err := inj.CampaignAdaptive(context.Background(), n)
				if err != nil {
					t.Fatal(err)
				}
				pn := pilotLen(n, DefaultPilotFraction)
				pplan := pilotPlan(cfg.withDefaults())
				specs := inj.sampleRandom(n)
				pilotKept, _ := thinSlots(inj.opts.Seed, pplan, specs, inj.classifySpecs(specs), 0, pn)
				if ar.PilotSlots != pn || ar.PilotExecuted != len(pilotKept) {
					t.Fatalf("pilot ran %d of %d prefix slots, want the %d pilot-plan-kept",
						ar.PilotExecuted, ar.PilotSlots, len(pilotKept))
				}
				if ar.SlotN != n {
					t.Fatalf("SlotN = %d, want %d", ar.SlotN, n)
				}
				if ar.ExecutedN() > n {
					t.Fatalf("executed %d trials of a %d-slot budget", ar.ExecutedN(), n)
				}
				if main := ar.ExecutedN() - ar.PilotExecuted; main < 0 || ar.PilotExecuted+main > n {
					t.Fatalf("pilot %d + main %d exceeds budget %d", ar.PilotExecuted, main, n)
				}
				for i, w := range ar.Weights {
					if i < ar.PilotExecuted {
						if want := 1 / pplan.Rate(ar.Strata[i]); w != want {
							t.Fatalf("pilot trial %d has weight %v, want %v", i, w, want)
						}
					} else if want := 1 / ar.Plan.Rate(ar.Strata[i]); w != want {
						t.Fatalf("main trial %d has weight %v, want %v", i, w, want)
					}
				}
				if err := ar.Plan.Validate(); err != nil {
					t.Fatalf("derived plan invalid: %v", err)
				}
				// Pilot tallies must account for every classified pilot trial.
				pilotTrials := 0
				for _, p := range ar.Pilot {
					pilotTrials += p.Trials
				}
				errored := 0
				for i := 0; i < ar.PilotExecuted; i++ {
					if ar.Trials[i].Outcome == Errored {
						errored++
					}
				}
				if pilotTrials != ar.PilotExecuted-errored {
					t.Fatalf("pilot evidence tallies %d trials, executed %d classified", pilotTrials, ar.PilotExecuted-errored)
				}
			})
		}
	}
}

// TestAdaptiveSubsetBitIdentity: the adaptive campaign's trials are the
// pilot-plan-kept prefix slots plus the plan-thinned subset of the
// remaining slots, outcome-identical to the plain campaign slot for
// slot.
func TestAdaptiveSubsetBitIdentity(t *testing.T) {
	const n, seed = 260, 42
	plain := adaptInjector(t, "rgb2gray", Options{Seed: seed})
	plainRes, err := plain.CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AdaptiveConfig{}
	adapt := adaptInjector(t, "rgb2gray", Options{Seed: seed, Adaptive: &cfg})
	ar, err := adapt.CampaignAdaptive(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	pn := pilotLen(n, DefaultPilotFraction)
	pplan := pilotPlan(cfg.withDefaults())
	specs := adapt.sampleRandom(n)
	strata := adapt.classifySpecs(specs)
	want := make([]int, 0, n)
	for i := 0; i < pn; i++ {
		q := pplan.Rate(strata[i])
		if q >= 1 || slotU(seed, i) < q {
			want = append(want, i)
		}
	}
	for i := pn; i < n; i++ {
		q := ar.Plan.Rate(strata[i])
		if q >= 1 || slotU(seed, i) < q {
			want = append(want, i)
		}
	}
	if len(want) != ar.ExecutedN() {
		t.Fatalf("executed %d trials, expected subset has %d", ar.ExecutedN(), len(want))
	}
	for j, slot := range want {
		if !sameTrial(ar.Trials[j], plainRes.Trials[slot]) {
			t.Fatalf("trial %d != plain slot %d: %+v vs %+v", j, slot, ar.Trials[j], plainRes.Trials[slot])
		}
	}
}

// TestAdaptiveUnbiasedOnUniformEvidence: when the campaign cannot thin
// (every stratum carries SDC evidence at similar rates, or nothing does)
// the estimate must stay in agreement with the plain campaign; here we
// only require the weighted estimate to stay a proper probability and
// the interval to be positive — the rigorous unbiasedness sweep lives in
// the crosscheck oracle.
func TestAdaptiveEstimateSanity(t *testing.T) {
	const n = 200
	cfg := AdaptiveConfig{}
	inj := adaptInjector(t, "boxblur", Options{Seed: 17, Adaptive: &cfg})
	ar, err := inj.CampaignAdaptive(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	sdc := ar.WeightedSDC()
	if sdc < 0 || sdc > 1 || math.IsNaN(sdc) {
		t.Fatalf("weighted SDC = %v", sdc)
	}
	if bar := ar.WeightedErrorBar95(); !(bar > 0) || bar > 1 {
		t.Fatalf("weighted error bar = %v", bar)
	}
	if f := ar.PilotFraction(); f <= 0 || f > 1 {
		t.Fatalf("pilot fraction = %v", f)
	}
}

// TestAdaptiveCheckpointResume: campaigns interrupted mid-pilot and
// mid-main both resume from their log to a transcript identical to the
// uninterrupted run — the plan is re-derived from the replayed pilot, so
// nothing about the adaptive machinery depends on staying alive.
func TestAdaptiveCheckpointResume(t *testing.T) {
	const n, seed = 150, 5
	cfg := AdaptiveConfig{}
	opts := Options{Seed: seed, Adaptive: &cfg}

	whole := adaptInjector(t, "boxblur", opts)
	want, err := whole.CampaignAdaptive(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	pn := pilotLen(n, DefaultPilotFraction)

	for _, tc := range []struct {
		name     string
		cancelAt int
	}{
		{"mid-pilot", pn / 2},
		{"mid-main", pn + 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "adapt.ckpt")
			func() {
				inj := adaptInjector(t, "boxblur", opts)
				inj.opts.Workers = 1
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				seen := 0
				inj.opts.OnProgress = func(Progress) {
					seen++
					if seen == tc.cancelAt {
						cancel()
					}
				}
				if _, err := inj.CampaignAdaptiveCheckpoint(ctx, n, path); err == nil {
					t.Fatal("cancelled campaign returned no error")
				}
			}()
			resumed := adaptInjector(t, "boxblur", opts)
			got, err := resumed.CampaignAdaptiveCheckpoint(context.Background(), n, path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Trials) != len(want.Trials) {
				t.Fatalf("resumed %d trials, want %d", len(got.Trials), len(want.Trials))
			}
			for i := range want.Trials {
				if !sameTrial(got.Trials[i], want.Trials[i]) {
					t.Fatalf("trial %d drifted across resume", i)
				}
			}
			if got.Plan != want.Plan {
				t.Fatalf("plan drifted across resume: %v vs %v", got.Plan, want.Plan)
			}
			if got.WeightedSDC() != want.WeightedSDC() || got.WeightedErrorBar95() != want.WeightedErrorBar95() {
				t.Errorf("weighted stats drifted across resume")
			}

			// Replay-only reconstruction agrees too.
			rec, missing, err := resumed.AdaptiveFromCheckpoint(n, path)
			if err != nil {
				t.Fatal(err)
			}
			if missing != 0 {
				t.Fatalf("reconstruction missing %d records", missing)
			}
			if rec.WeightedSDC() != want.WeightedSDC() {
				t.Errorf("reconstructed WeightedSDC %v != %v", rec.WeightedSDC(), want.WeightedSDC())
			}
		})
	}
}

// TestAdaptiveShardMerge: the two-wave sharded protocol — pilot shards,
// merge, plan re-derivation, main shards, merge — reconstructs the
// unsharded adaptive campaign bit for bit.
func TestAdaptiveShardMerge(t *testing.T) {
	const (
		n      = 160
		seed   = 23
		shards = 3
	)
	cfg := AdaptiveConfig{}
	opts := Options{Seed: seed, Adaptive: &cfg}
	whole := adaptInjector(t, "rgb2gray", opts)
	want, err := whole.CampaignAdaptive(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var pilotPaths []string
	pilotExec := 0
	for s := 0; s < shards; s++ {
		inj := adaptInjector(t, "rgb2gray", opts)
		path := filepath.Join(dir, fmt.Sprintf("pilot-%d.ckpt", s))
		res, err := inj.CampaignAdaptivePilotShardCheckpoint(context.Background(), n, s, shards, path)
		if err != nil {
			t.Fatal(err)
		}
		pilotExec += res.N()
		pilotPaths = append(pilotPaths, path)
	}
	if pilotExec != want.PilotExecuted {
		t.Fatalf("pilot shards executed %d trials, unsharded pilot %d", pilotExec, want.PilotExecuted)
	}
	pilotMerged := filepath.Join(dir, "pilot-merged.ckpt")
	if _, err := MergeCheckpoints(pilotMerged, pilotPaths...); err != nil {
		t.Fatal(err)
	}

	// Every shard derives the identical plan from the merged pilot.
	plan, _, err := whole.AdaptivePlanFromCheckpoint(n, pilotMerged)
	if err != nil {
		t.Fatal(err)
	}
	if plan != want.Plan {
		t.Fatalf("re-derived plan %v != campaign plan %v", plan, want.Plan)
	}

	paths := append([]string{}, pilotPaths...)
	mainExec := 0
	for s := 0; s < shards; s++ {
		inj := adaptInjector(t, "rgb2gray", opts)
		path := filepath.Join(dir, fmt.Sprintf("main-%d.ckpt", s))
		res, err := inj.CampaignAdaptiveMainShardCheckpoint(context.Background(), n, s, shards, pilotMerged, path)
		if err != nil {
			t.Fatal(err)
		}
		mainExec += res.N()
		paths = append(paths, path)
	}
	if got := pilotExec + mainExec; got != want.ExecutedN() {
		t.Fatalf("shards executed %d trials total, unsharded %d", got, want.ExecutedN())
	}

	merged := filepath.Join(dir, "merged.ckpt")
	if _, err := MergeCheckpoints(merged, paths...); err != nil {
		t.Fatal(err)
	}
	got, missing, err := whole.AdaptiveFromCheckpoint(n, merged)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("merged log missing %d records", missing)
	}
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("merged %d trials, want %d", len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if !sameTrial(got.Trials[i], want.Trials[i]) {
			t.Fatalf("trial %d drifted across shard merge", i)
		}
	}
	if got.WeightedSDC() != want.WeightedSDC() || got.WeightedErrorBar95() != want.WeightedErrorBar95() {
		t.Errorf("weighted stats drifted across shard merge")
	}
}

// TestAdaptiveCheckpointFencing: adaptive logs refuse resumes under a
// different kind or a different adaptive configuration, and plain or
// stratified campaigns refuse adaptive logs.
func TestAdaptiveCheckpointFencing(t *testing.T) {
	const n, seed = 60, 9
	path := filepath.Join(t.TempDir(), "adapt.ckpt")
	cfg := AdaptiveConfig{}
	a := adaptInjector(t, "nibblepack", Options{Seed: seed, Adaptive: &cfg})
	if _, err := a.CampaignAdaptiveCheckpoint(context.Background(), n, path); err != nil {
		t.Fatal(err)
	}

	// Different pilot fraction → different stream split → refused.
	other := AdaptiveConfig{PilotFraction: 0.4}
	b := adaptInjector(t, "nibblepack", Options{Seed: seed, Adaptive: &other})
	if _, err := b.CampaignAdaptiveCheckpoint(context.Background(), n, path); err == nil ||
		!strings.Contains(err.Error(), "stratification") {
		t.Fatalf("cross-config resume: want stratification mismatch, got %v", err)
	}

	// Plain resume of an adaptive log refused (kind mismatch).
	plain := adaptInjector(t, "nibblepack", Options{Seed: seed})
	if _, err := plain.ResumeCampaign(context.Background(), n, path); err == nil {
		t.Fatal("plain resume of adaptive checkpoint succeeded")
	}

	// Stratified resume of an adaptive log refused.
	plan := bitlive.DefaultPlan()
	strat := adaptInjector(t, "nibblepack", Options{Seed: seed, Stratify: &plan})
	if _, err := strat.CampaignStratifiedCheckpoint(context.Background(), n, path); err == nil {
		t.Fatal("stratified resume of adaptive checkpoint succeeded")
	}

	// Matched resume still replays cleanly.
	c := adaptInjector(t, "nibblepack", Options{Seed: seed, Adaptive: &cfg})
	if _, err := c.CampaignAdaptiveCheckpoint(context.Background(), n, path); err != nil {
		t.Fatalf("matched adaptive resume failed: %v", err)
	}
}

// TestAdaptiveFromCheckpointRequiresPilot: a log whose pilot prefix is
// incomplete cannot yield a plan — derivation refuses it outright, and
// replay-only reconstruction degrades to the pilot-plan salvage (every
// recorded trial at 1/q of the pilot plan, absent pilot-kept slots
// counted missing) instead of fabricating a plan from partial evidence.
func TestAdaptiveFromCheckpointRequiresPilot(t *testing.T) {
	const n, seed, shards = 90, 31, 3
	cfg := AdaptiveConfig{}
	dir := t.TempDir()
	// Only shard 1's pilot slice: the prefix has holes.
	inj := adaptInjector(t, "rgb2gray", Options{Seed: seed, Adaptive: &cfg})
	path := filepath.Join(dir, "pilot-1.ckpt")
	shardRes, err := inj.CampaignAdaptivePilotShardCheckpoint(context.Background(), n, 1, shards, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inj.AdaptivePlanFromCheckpoint(n, path); err == nil ||
		!strings.Contains(err.Error(), "pilot") {
		t.Fatalf("incomplete pilot plan derivation: want pilot error, got %v", err)
	}
	ar, missing, err := inj.AdaptiveFromCheckpoint(n, path)
	if err != nil {
		t.Fatalf("incomplete pilot replay: want pilot-plan salvage, got error %v", err)
	}
	pn := ar.PilotSlots
	pplan := pilotPlan(cfg.withDefaults())
	specs := inj.sampleRandom(n)
	pilotKept, _ := thinSlots(inj.opts.Seed, pplan, specs, inj.classifySpecs(specs), 0, pn)
	if got := len(shardRes.Trials); ar.PilotExecuted != got || len(ar.Trials) != got {
		t.Fatalf("salvage replayed %d trials (pilot %d), shard recorded %d",
			len(ar.Trials), ar.PilotExecuted, got)
	}
	if missing != len(pilotKept)-len(shardRes.Trials) {
		t.Fatalf("missing = %d, want the %d absent pilot-kept slots",
			missing, len(pilotKept)-len(shardRes.Trials))
	}
	if ar.Plan != pplan {
		t.Fatalf("salvage plan = %v, want the pilot plan %v", ar.Plan, pplan)
	}
	for i, w := range ar.Weights {
		if want := 1 / pplan.Rate(ar.Strata[i]); w != want {
			t.Fatalf("salvage weight[%d] = %v, want %v", i, w, want)
		}
	}
}

// TestAdaptiveOptionsValidation: Stratify and Adaptive are mutually
// exclusive, and broken configurations are refused at New.
func TestAdaptiveOptionsValidation(t *testing.T) {
	p := mustProg(t, "rgb2gray")
	plan := bitlive.DefaultPlan()
	if _, err := New(p.Build(), Options{Stratify: &plan, Adaptive: &AdaptiveConfig{}}); err == nil {
		t.Fatal("Stratify+Adaptive accepted")
	}
	if _, err := New(p.Build(), Options{Adaptive: &AdaptiveConfig{PilotFraction: 1.5}}); err == nil {
		t.Fatal("pilot fraction 1.5 accepted")
	}
	if _, err := New(p.Build(), Options{Adaptive: &AdaptiveConfig{RateFloor: -1}}); err == nil {
		t.Fatal("rate floor -1 accepted")
	}
	inj, err := New(p.Build(), Options{Adaptive: &AdaptiveConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.CampaignStratified(context.Background(), 10); err == nil {
		t.Fatal("CampaignStratified ran without a plan")
	}
	plainInj, err := New(p.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plainInj.CampaignAdaptive(context.Background(), 10); err == nil {
		t.Fatal("CampaignAdaptive ran without Options.Adaptive")
	}
}

// TestAdaptiveCompositionalSeedsFromPlainProfiles is the cache-seeding
// contract: after a plain compositional campaign populates the store, an
// adaptive compositional campaign derives every section's plan from the
// cached profiles and executes zero pilot trials — and repeated warm
// runs reproduce the identical composed estimate and transcript.
func TestAdaptiveCompositionalSeedsFromPlainProfiles(t *testing.T) {
	const n, seed = 240, 77
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := adaptInjector(t, "rgb2gray", Options{Seed: seed})
	if _, err := plain.CampaignCompositional(context.Background(), n, store); err != nil {
		t.Fatal(err)
	}

	cfg := AdaptiveConfig{}
	cold := adaptInjector(t, "rgb2gray", Options{Seed: seed, Adaptive: &cfg})
	coldRes, err := cold.CampaignAdaptiveCompositional(context.Background(), n, store)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.PilotExecuted != 0 {
		t.Fatalf("seeded campaign executed %d pilot trials, want 0", coldRes.PilotExecuted)
	}
	if coldRes.SeededFuncs != len(coldRes.Funcs) {
		t.Fatalf("%d of %d sections seeded", coldRes.SeededFuncs, len(coldRes.Funcs))
	}
	for i := range coldRes.Funcs {
		fc := &coldRes.Funcs[i]
		if !fc.Seeded || !fc.Cached || fc.PilotN != 0 {
			t.Fatalf("section @%s: Seeded=%v Cached=%v PilotN=%d", fc.Name, fc.Seeded, fc.Cached, fc.PilotN)
		}
		if fc.N > 0 && len(fc.Records) >= fc.N {
			t.Fatalf("section @%s executed %d of %d slots: nothing thinned", fc.Name, len(fc.Records), fc.N)
		}
	}

	warm := adaptInjector(t, "rgb2gray", Options{Seed: seed, Adaptive: &cfg})
	warmRes, err := warm.CampaignAdaptiveCompositional(context.Background(), n, store)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.PilotExecuted != 0 {
		t.Fatalf("warm campaign executed %d pilot trials", warmRes.PilotExecuted)
	}
	if warmRes.Composed.SDC != coldRes.Composed.SDC ||
		warmRes.Composed.SDCLo != coldRes.Composed.SDCLo ||
		warmRes.Composed.SDCHi != coldRes.Composed.SDCHi ||
		warmRes.Composed.EffN != coldRes.Composed.EffN {
		t.Fatalf("warm composed estimate drifted: %+v vs %+v", warmRes.Composed, coldRes.Composed)
	}
	if len(warmRes.Funcs) != len(coldRes.Funcs) {
		t.Fatalf("warm run has %d sections, cold %d", len(warmRes.Funcs), len(coldRes.Funcs))
	}
	for i := range coldRes.Funcs {
		a, b := &coldRes.Funcs[i], &warmRes.Funcs[i]
		if a.Plan != b.Plan || len(a.Records) != len(b.Records) {
			t.Fatalf("section @%s drifted warm vs cold", a.Name)
		}
		for j := range a.Records {
			if a.Records[j] != b.Records[j] {
				t.Fatalf("section @%s record %d drifted", a.Name, j)
			}
		}
	}
}

// TestAdaptiveCompositionalColdThenCached: with an empty store the
// campaign runs per-section pilots live and caches adaptive profiles; a
// second run replays them with zero execution and identical results.
func TestAdaptiveCompositionalColdThenCached(t *testing.T) {
	const n, seed = 200, 13
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := AdaptiveConfig{}
	first := adaptInjector(t, "nibblepack", Options{Seed: seed, Adaptive: &cfg})
	res1, err := first.CampaignAdaptiveCompositional(context.Background(), n, store)
	if err != nil {
		t.Fatal(err)
	}
	if res1.PilotExecuted == 0 {
		t.Fatal("cold adaptive campaign executed no pilot trials")
	}
	if res1.Misses != len(res1.Funcs) {
		t.Fatalf("cold run hit the cache: %d hits", res1.Hits)
	}

	second := adaptInjector(t, "nibblepack", Options{Seed: seed, Adaptive: &cfg})
	res2, err := second.CampaignAdaptiveCompositional(context.Background(), n, store)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PilotExecuted != 0 {
		t.Fatalf("cached run executed %d pilot trials", res2.PilotExecuted)
	}
	if res2.Hits != len(res2.Funcs) {
		t.Fatalf("cached run: %d hits of %d sections", res2.Hits, len(res2.Funcs))
	}
	if res2.Composed.SDC != res1.Composed.SDC || res2.Composed.EffN != res1.Composed.EffN {
		t.Fatalf("cached composed estimate drifted: %+v vs %+v", res2.Composed, res1.Composed)
	}
	if res1.N() != res2.N() {
		t.Fatalf("trial counts drifted: %d vs %d", res1.N(), res2.N())
	}
}

// TestAdaptiveCompositionalBudget: executed trials never exceed the
// apportioned slot budget, per section and in total.
func TestAdaptiveCompositionalBudget(t *testing.T) {
	const n, seed = 180, 3
	cfg := AdaptiveConfig{}
	inj := adaptInjector(t, "boxblur", Options{Seed: seed, Adaptive: &cfg})
	res, err := inj.CampaignAdaptiveCompositional(context.Background(), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range res.Funcs {
		fc := &res.Funcs[i]
		if len(fc.Records) > fc.N {
			t.Fatalf("section @%s executed %d of %d slots", fc.Name, len(fc.Records), fc.N)
		}
		total += len(fc.Records)
	}
	if total > n {
		t.Fatalf("campaign executed %d trials of a %d budget", total, n)
	}
	if res.N() != total {
		t.Fatalf("N() = %d, sections sum to %d", res.N(), total)
	}
}
