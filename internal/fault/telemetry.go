// Campaign telemetry: the fault layer's metric set and the campaign
// progress-callback API. All recording happens at trial granularity —
// a fault-injection trial is thousands of interpreted instructions, so
// the few atomic updates per trial are far below measurement noise
// (cmd/fibench -max-overhead enforces ≤3% end-to-end). Metric names are
// documented in OBSERVABILITY.md.

package fault

import (
	"fmt"
	"strings"
	"time"

	"trident/internal/telemetry"
)

// Progress is a point-in-time view of a running campaign, delivered to
// Options.OnProgress after every completed trial (including trials
// replayed from a checkpoint). Done and the outcome counts are
// monotonically non-decreasing across calls — callbacks are invoked
// under the campaign's result lock, in completion order — so a renderer
// can trust each snapshot to supersede the previous one. Trials
// abandoned by cancellation never report.
type Progress struct {
	// Done is the number of trials classified so far.
	Done int
	// Total is the number of trials the campaign will attempt.
	Total int
	// Counts tallies classifications so far, indexed by Outcome
	// (index 0 is unused; Benign..Errored are live).
	Counts [int(Errored) + 1]int
	// Elapsed is the wall-clock time since the campaign started.
	Elapsed time.Duration
}

// Rate returns the observed fraction of done trials with the given
// outcome, normalized like CampaignResult.Rate: program outcomes over
// classified trials, Errored over all done trials.
func (p Progress) Rate(o Outcome) float64 {
	if p.Done == 0 {
		return 0
	}
	if o == Errored {
		return float64(p.Counts[Errored]) / float64(p.Done)
	}
	classified := p.Done - p.Counts[Errored]
	if classified == 0 {
		return 0
	}
	return float64(p.Counts[o]) / float64(classified)
}

// TrialsPerSec returns the observed completion rate.
func (p Progress) TrialsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Done) / p.Elapsed.Seconds()
}

// String renders the one-line form the cmd binaries print live:
//
//	fi 1234/3000 41% | benign 52.1% sdc 18.0% crash 29.9% | 5321 trials/s | eta 20s
//
// Outcomes that have not occurred are omitted; errored trials are shown
// as a count, not a rate, because they carry no program-behavior
// signal.
func (p Progress) String() string {
	var b strings.Builder
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(p.Done) / float64(p.Total)
	}
	fmt.Fprintf(&b, "fi %d/%d %.0f%%", p.Done, p.Total, pct)
	sep := " | "
	for _, o := range AllOutcomes {
		if o == Errored || p.Counts[o] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s%s %.1f%%", sep, o, 100*p.Rate(o))
		sep = " "
	}
	if n := p.Counts[Errored]; n > 0 {
		fmt.Fprintf(&b, "%serr %d", sep, n)
	}
	fmt.Fprintf(&b, " | %.0f trials/s | %s",
		p.TrialsPerSec(), telemetry.FormatETA(p.Done, p.Total, p.Elapsed))
	return b.String()
}

// campaignMetrics is the fault layer's pre-resolved metric set, built
// once per injector so trial workers touch only atomics, never the
// registry's name map. A nil *campaignMetrics (metrics disabled) makes
// every call site a single branch.
type campaignMetrics struct {
	goldenUS   *telemetry.Histogram // golden (fault-free) run duration
	setupUS    *telemetry.Histogram // snapshot-capture pass duration
	campaignUS *telemetry.Histogram // whole-campaign durations
	trialUS    *telemetry.Histogram // per-trial wall time (incl. retries)

	campaigns *telemetry.Counter // campaigns run
	total     *telemetry.Counter // trials classified (executed + replayed)
	executed  *telemetry.Counter // trials actually run by this process
	replayed  *telemetry.Counter // trials satisfied from a checkpoint log
	attempts  *telemetry.Counter // trial attempts (first tries + retries)
	retries   *telemetry.Counter // attempts beyond each trial's first
	pruned    *telemetry.Counter // trials skipped by static bit-liveness pruning

	replaySnap  *telemetry.Counter // trials resumed from a golden snapshot
	replayCold  *telemetry.Counter // trials interpreted from instruction 0
	savedInstrs *telemetry.Counter // dynamic instructions skipped via snapshot resume

	busyUS   *telemetry.Counter // summed wall-time spent executing trials
	inflight *telemetry.Gauge   // trials currently executing

	outcome [int(Errored) + 1]*telemetry.Counter
}

// newCampaignMetrics resolves the fault metric set in reg, or returns
// nil when telemetry is disabled.
func newCampaignMetrics(reg *telemetry.Registry) *campaignMetrics {
	if reg == nil {
		return nil
	}
	m := &campaignMetrics{
		goldenUS:    reg.Histogram("fi.golden_us"),
		setupUS:     reg.Histogram("fi.snapshot_setup_us"),
		campaignUS:  reg.Histogram("fi.campaign_us"),
		trialUS:     reg.Histogram("fi.trial_us"),
		campaigns:   reg.Counter("fi.campaigns"),
		total:       reg.Counter("fi.trials.total"),
		executed:    reg.Counter("fi.trials.executed"),
		replayed:    reg.Counter("fi.trials.replayed"),
		attempts:    reg.Counter("fi.trials.attempts"),
		retries:     reg.Counter("fi.trials.retries"),
		pruned:      reg.Counter("fi.trials.pruned"),
		replaySnap:  reg.Counter("fi.replay.snapshot"),
		replayCold:  reg.Counter("fi.replay.cold"),
		savedInstrs: reg.Counter("fi.replay.saved_instrs"),
		busyUS:      reg.Counter("fi.workers.busy_us"),
		inflight:    reg.Gauge("fi.workers.inflight"),
	}
	for _, o := range AllOutcomes {
		m.outcome[o] = reg.Counter("fi.outcome." + o.String())
	}
	return m
}

// countTrial records one classified trial. replayed marks trials
// satisfied from a checkpoint log rather than executed.
func (m *campaignMetrics) countTrial(o Outcome, replayed bool) {
	if m == nil {
		return
	}
	m.total.Inc()
	if replayed {
		m.replayed.Inc()
	} else {
		m.executed.Inc()
	}
	m.outcome[o].Inc()
}
