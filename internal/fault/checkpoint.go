// This file implements checkpoint/resume for fault-injection campaigns.
// A campaign is a pure function of (module, seed, n): the sampled trial
// list is re-derived deterministically, so the log only needs to persist
// completed trial outcomes keyed by their durable identity. An
// interrupted campaign replays cached trials from the log and executes
// just the remainder, reproducing the uninterrupted result bit for bit.

package fault

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"trident/internal/hashutil"
)

// warnf logs non-fatal checkpoint anomalies — torn tails skipped on
// resume, stale errored records superseded during a merge. The default
// writes one line to stderr; tests swap it to capture output. It is
// never called on the trial hot path.
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// TrialKey durably identifies one trial of a campaign across process
// restarts: instruction IDs are function-local, so the function name is
// part of the key. The campaign seed lives in the checkpoint header.
type TrialKey struct {
	Func     string
	Instr    int
	Instance uint64
	Bit      int
}

// checkpointMeta is the first line of a checkpoint log. Resume validates
// it so a log is never replayed against a different campaign.
type checkpointMeta struct {
	Version int    `json:"version"`
	Module  string `json:"module"`
	Kind    string `json:"kind"`
	Seed    uint64 `json:"seed"`
	// Space is the activation space of the golden run — a cheap integrity
	// check that the module and input are the ones the log was built for.
	Space uint64 `json:"space"`
	N     int    `json:"n"`
	// ModuleHash is the content address of the module's canonical printed
	// text (hashutil.Hex form). Older logs omit it; the check applies only
	// when both sides carry a hash, so version stays 1.
	ModuleHash string `json:"module_hash,omitempty"`
	// Prune records the bit-liveness configuration the campaign ran
	// under: "none" when pruning was off, the report's module hash
	// (hashutil.Hex) when -prune-bits was on. Resuming a pruned log
	// unpruned (or vice versa) would mix replayed pruned classifications
	// into an unpruned transcript — semantically different records in
	// one log — so a mismatch refuses the resume. Older logs omit the
	// field; the check applies only when both sides carry a value, so
	// version stays 1.
	Prune string `json:"prune,omitempty"`
	// Stratify likewise records the stratification in effect: "none", or
	// the influence + plan hash (Injector.StratifyHash). A log thinned
	// under one plan replays a different executed subset than another
	// plan expects, so mismatched resumes are refused the same way.
	Stratify string `json:"stratify,omitempty"`
}

const checkpointVersion = 1

// matches validates a log's header against the campaign about to use
// it, so a log is never replayed against a different campaign.
func (m checkpointMeta) matches(path string, want checkpointMeta) error {
	if m.Version != want.Version || m.Module != want.Module ||
		m.Kind != want.Kind || m.Seed != want.Seed || m.Space != want.Space {
		return fmt.Errorf("fault: checkpoint %s was written by a different campaign "+
			"(%s campaign, module %q seed %d space %d; want %s campaign, "+
			"module %q seed %d space %d)",
			path, m.Kind, m.Module, m.Seed, m.Space,
			want.Kind, want.Module, want.Seed, want.Space)
	}
	if m.ModuleHash != "" && want.ModuleHash != "" && m.ModuleHash != want.ModuleHash {
		return fmt.Errorf("fault: checkpoint %s was written for different module text "+
			"(module hash %s, want %s)", path, m.ModuleHash, want.ModuleHash)
	}
	if m.Prune != "" && want.Prune != "" && m.Prune != want.Prune {
		return fmt.Errorf("fault: checkpoint %s was written under different bit-liveness "+
			"pruning (prune %s, want %s): resume with the matching -prune-bits setting",
			path, m.Prune, want.Prune)
	}
	if m.Stratify != "" && want.Stratify != "" && m.Stratify != want.Stratify {
		return fmt.Errorf("fault: checkpoint %s was written under a different "+
			"stratification plan (stratify %s, want %s): resume with the matching "+
			"-stratify setting", path, m.Stratify, want.Stratify)
	}
	return nil
}

// trialRecord is one completed trial, one JSON object per line.
type trialRecord struct {
	Func     string `json:"fn"`
	Instr    int    `json:"instr"`
	Instance uint64 `json:"instance"`
	Bit      int    `json:"bit"`
	Outcome  string `json:"outcome"`
	Latency  uint64 `json:"latency,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`
}

func (r trialRecord) key() TrialKey {
	return TrialKey{Func: r.Func, Instr: r.Instr, Instance: r.Instance, Bit: r.Bit}
}

// injection rebuilds the in-memory trial (and, for Errored records, its
// TrialError, with Index left for the caller to fill) from a log record
// matched to its spec.
func (r trialRecord) injection(spec trialSpec) (Injection, *TrialError) {
	outcome, _ := outcomeFromName(r.Outcome)
	tr := Injection{
		Instr:        spec.instr,
		Instance:     spec.instance,
		Bit:          spec.bit,
		Outcome:      outcome,
		CrashLatency: r.Latency,
	}
	if outcome != Errored {
		return tr, nil
	}
	return tr, &TrialError{
		Instr:    spec.instr,
		Instance: spec.instance,
		Bit:      spec.bit,
		Attempts: r.Attempts,
		Err:      errors.New(r.Err),
	}
}

// readCheckpointFile reads a checkpoint log's raw bytes with the
// package's error wrapping.
func readCheckpointFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: checkpoint: %w", err)
	}
	return data, nil
}

// Checkpoint is an append-only JSONL log of completed campaign trials.
// It is safe for concurrent use by campaign workers.
type Checkpoint struct {
	path string

	mu       sync.Mutex
	f        *os.File
	cache    map[TrialKey]trialRecord
	replayed int
	writeErr error
	warnings []string
}

// openCheckpoint creates the log at path, or loads and compacts an
// existing one. requireExisting distinguishes explicit resume (the log
// must be there) from create-or-resume.
func openCheckpoint(path string, meta checkpointMeta, requireExisting bool) (*Checkpoint, error) {
	ck := &Checkpoint{path: path, cache: make(map[TrialKey]trialRecord)}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist) || (err == nil && len(data) == 0):
		if requireExisting {
			return nil, fmt.Errorf("fault: resume: no checkpoint at %s", path)
		}
		return ck, ck.create(meta)
	case err != nil:
		return nil, fmt.Errorf("fault: checkpoint: %w", err)
	}
	if err := ck.load(data, meta); err != nil {
		return nil, err
	}
	// Compact: rewrite the log with only the header and intact records in
	// deterministic (key-sorted) shard order. This drops any truncated
	// final line left by a kill mid-write, so appends land on valid JSONL.
	if err := ck.compact(meta); err != nil {
		return nil, err
	}
	return ck, nil
}

// create writes a fresh log containing only the header.
func (ck *Checkpoint) create(meta checkpointMeta) error {
	f, err := os.OpenFile(ck.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	line, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	ck.f = f
	return nil
}

// load parses an existing log, validating the header against want and
// tolerating (with a logged warning) a torn tail left by a crash
// mid-append.
func (ck *Checkpoint) load(data []byte, want checkpointMeta) error {
	meta, recs, warns, err := readLog(ck.path, data)
	if err != nil {
		return err
	}
	if err := meta.matches(ck.path, want); err != nil {
		return err
	}
	ck.cache = recs
	ck.warnings = append(ck.warnings, warns...)
	for _, w := range warns {
		warnf("%s", w)
	}
	return nil
}

// readLog parses one checkpoint log into its header and record map.
//
// Robustness contract: a process killed mid-append (kill -9, power
// loss) leaves at most a truncated or garbled final line. Such a torn
// tail is skipped with a warning — losing one in-flight trial is
// harmless, it simply re-executes on resume — but a corrupt line that
// is *followed* by intact records is not crash debris and fails the
// load, because silently dropping it would under-report completed
// trials without any crash to explain it.
func readLog(path string, data []byte) (checkpointMeta, map[TrialKey]trialRecord, []string, error) {
	var meta checkpointMeta
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return meta, nil, nil, fmt.Errorf("fault: checkpoint %s: missing header", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return meta, nil, nil, fmt.Errorf("fault: checkpoint %s: bad header: %w", path, err)
	}
	recs := make(map[TrialKey]trialRecord)
	line := 1
	tornLine, tornBytes := 0, 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		var rec trialRecord
		bad := json.Unmarshal(raw, &rec) != nil
		if !bad {
			if _, ok := outcomeFromName(rec.Outcome); !ok {
				bad = true
			}
		}
		if bad {
			if tornLine == 0 {
				tornLine = line
			}
			tornBytes += len(raw)
			continue
		}
		if tornLine != 0 {
			return meta, nil, nil, fmt.Errorf(
				"fault: checkpoint %s: corrupt record at line %d followed by intact records (not a torn tail)",
				path, tornLine)
		}
		recs[rec.key()] = rec
	}
	var warns []string
	if tornLine != 0 {
		warns = append(warns, fmt.Sprintf(
			"fault: checkpoint %s: skipped torn tail at line %d (%d byte(s)) left by a crash mid-append; the affected trial(s) will re-execute",
			path, tornLine, tornBytes))
	}
	if err := sc.Err(); err != nil {
		// An overlong line the scanner refused to buffer is tail garbage
		// of a kind no writer of ours produces; treat it like a torn tail
		// rather than failing the whole resume.
		warns = append(warns, fmt.Sprintf(
			"fault: checkpoint %s: skipped unreadable tail after line %d (%v)", path, line, err))
	}
	return meta, recs, warns, nil
}

// Warnings returns the non-fatal anomalies observed while loading the
// log (torn tails skipped), in occurrence order.
func (ck *Checkpoint) Warnings() []string {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return append([]string(nil), ck.warnings...)
}

// sortRecords orders records by trial key — the deterministic on-disk
// order used by compaction and merge, independent of worker
// interleaving.
func sortRecords(recs []trialRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		return a.Bit < b.Bit
	})
}

// writeLog atomically writes a complete log — header plus records in
// key-sorted order — at path via a temp file and rename, so a crash
// mid-write never destroys an existing log.
func writeLog(path string, meta checkpointMeta, cache map[TrialKey]trialRecord) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		f.Close()
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	recs := make([]trialRecord, 0, len(cache))
	for _, rec := range cache {
		recs = append(recs, rec)
	}
	sortRecords(recs)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("fault: checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	return nil
}

// compact atomically rewrites the log as header + cached records in
// key-sorted order, then reopens it for appending.
func (ck *Checkpoint) compact(meta checkpointMeta) error {
	if err := writeLog(ck.path, meta, ck.cache); err != nil {
		return err
	}
	out, err := os.OpenFile(ck.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	ck.f = out
	return nil
}

// replay returns the cached result for spec, if the log has one. The
// cache is read under the lock: the launcher replays specs while workers
// are still recording fresh completions.
//
// Errored records are deliberately NOT replayed: an Errored outcome means
// the engine failed (after exhausting in-session retries), not that the
// program under test was observed. Re-attempting it on resume gives
// transient failures (timeouts, resource pressure) a fresh chance without
// ever counting the trial twice — the fresh result overwrites the stale
// record in both the cache and the log, so CampaignResult.Errs carries at
// most one entry per trial no matter how many sessions retried it.
func (ck *Checkpoint) replay(spec trialSpec) (Injection, *TrialError, bool) {
	ck.mu.Lock()
	rec, ok := ck.cache[spec.key()]
	if ok {
		if o, _ := outcomeFromName(rec.Outcome); o == Errored {
			ok = false
		} else {
			ck.replayed++
		}
	}
	ck.mu.Unlock()
	if !ok {
		return Injection{}, nil, false
	}
	outcome, _ := outcomeFromName(rec.Outcome)
	return Injection{
		Instr:        spec.instr,
		Instance:     spec.instance,
		Bit:          spec.bit,
		Outcome:      outcome,
		CrashLatency: rec.Latency,
	}, nil, true
}

// record appends one completed trial. Write failures do not abort the
// campaign (the in-memory result is still valid); the first one is
// surfaced by Close.
func (ck *Checkpoint) record(spec trialSpec, tr Injection, terr *TrialError) {
	key := spec.key()
	rec := trialRecord{
		Func:     key.Func,
		Instr:    key.Instr,
		Instance: key.Instance,
		Bit:      key.Bit,
		Outcome:  tr.Outcome.String(),
		Latency:  tr.CrashLatency,
	}
	if terr != nil {
		rec.Attempts = terr.Attempts
		rec.Err = terr.Err.Error()
	}
	line, err := json.Marshal(rec)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if err != nil {
		if ck.writeErr == nil {
			ck.writeErr = err
		}
		return
	}
	ck.cache[key] = rec
	if _, err := ck.f.Write(append(line, '\n')); err != nil && ck.writeErr == nil {
		ck.writeErr = err
	}
}

// Replayed returns the number of trials served from the log instead of
// re-executed.
func (ck *Checkpoint) Replayed() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.replayed
}

// Close flushes and closes the log, returning the first write failure.
func (ck *Checkpoint) Close() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	var err error
	if ck.f != nil {
		err = ck.f.Close()
		ck.f = nil
	}
	if ck.writeErr != nil {
		return fmt.Errorf("fault: checkpoint write: %w", ck.writeErr)
	}
	if err != nil {
		return fmt.Errorf("fault: checkpoint close: %w", err)
	}
	return nil
}

// metaRandom describes a CampaignRandom run for checkpoint validation.
// Prune and Stratify always carry an explicit value ("none" when off),
// so two fresh logs that differ in either setting can never validate
// against each other; only pre-existing logs from older versions (empty
// fields) are grandfathered in.
func (inj *Injector) metaRandom(n int) checkpointMeta {
	meta := checkpointMeta{
		Version:    checkpointVersion,
		Module:     inj.module.Name,
		Kind:       "random",
		Seed:       inj.opts.Seed,
		Space:      inj.total,
		N:          n,
		ModuleHash: hashutil.Hex(inj.moduleHash),
		Prune:      "none",
		Stratify:   "none",
	}
	if h := inj.pruneHash(); h != "" {
		meta.Prune = h
	}
	// Stratify stays "none" here: a plain random campaign's trial list
	// and records do not depend on Options.Stratify. metaStratified
	// overrides it (and Kind) for stratified runs.
	return meta
}

// CampaignRandomCheckpoint is CampaignRandom persisted to a JSONL log at
// path: every completed trial is appended as it finishes, and an existing
// log is resumed — cached trials replay instantly, only the remainder
// executes. Cancelling ctx still flushes completed trials to the log, so
// a killed campaign loses at most its in-flight trials.
func (inj *Injector) CampaignRandomCheckpoint(ctx context.Context, n int, path string) (*CampaignResult, error) {
	return inj.checkpointedRandom(ctx, n, path, false)
}

// ResumeCampaign continues an interrupted CampaignRandomCheckpoint run
// from its log. Unlike CampaignRandomCheckpoint it refuses to start from
// scratch: a missing log is an error, guarding against typoed paths
// silently re-running a multi-hour campaign.
func (inj *Injector) ResumeCampaign(ctx context.Context, n int, path string) (*CampaignResult, error) {
	return inj.checkpointedRandom(ctx, n, path, true)
}

func (inj *Injector) checkpointedRandom(ctx context.Context, n int, path string, requireExisting bool) (*CampaignResult, error) {
	ck, err := openCheckpoint(path, inj.metaRandom(n), requireExisting)
	if err != nil {
		return nil, err
	}
	res, runErr := inj.runTrials(ctx, inj.sampleRandom(n), ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return res, runErr
}
