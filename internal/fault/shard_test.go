package fault

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"trident/internal/interp"
)

// TestShardRangePartition pins the shard arithmetic: the ranges
// partition [0, n) exactly, contiguously, with sizes differing by at
// most one — for every (n, shards) shape the server can produce.
func TestShardRangePartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 3001} {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			next, min, max := 0, n, 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(n, s, shards)
				if lo != next {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d has negative size [%d,%d)", n, shards, s, lo, hi)
				}
				size := hi - lo
				if size < min {
					min = size
				}
				if size > max {
					max = size
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: partition ends at %d", n, shards, next)
			}
			if n >= shards && max-min > 1 {
				t.Fatalf("n=%d shards=%d: shard sizes differ by %d", n, shards, max-min)
			}
		}
	}
}

// TestShardSeedIndependence is the shard-transparency differential: for
// the same (program, fault model, seed), sharded campaigns merged back
// together must produce per-trial Detail records identical to the
// unsharded run, for every shard count in {1, 2, 3, 7} — shard identity
// must never leak into sampling. Each shard runs under its own Injector
// (a fresh golden run), exactly as independent shard worker processes
// do, so the test also covers cross-injector determinism.
func TestShardSeedIndependence(t *testing.T) {
	const n, seed = 70, 1234
	for _, name := range []string{"pathfinder", "nw"} {
		for _, engine := range []interp.Engine{interp.EngineLegacy, interp.EngineDecoded} {
			t.Run(fmt.Sprintf("%s/%s", name, engine), func(t *testing.T) {
				build := mustProg(t, name).Build
				direct, err := New(build(), Options{Seed: seed, Workers: 3, Engine: engine})
				if err != nil {
					t.Fatal(err)
				}
				want, err := direct.CampaignRandom(context.Background(), n)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 3, 7} {
					dir := t.TempDir()
					var paths []string
					for s := 0; s < shards; s++ {
						inj, err := New(build(), Options{Seed: seed, Workers: 2, Engine: engine})
						if err != nil {
							t.Fatal(err)
						}
						path := filepath.Join(dir, fmt.Sprintf("shard-%02d.jsonl", s))
						paths = append(paths, path)
						res, err := inj.CampaignShardCheckpoint(context.Background(), n, s, shards, path)
						if err != nil {
							t.Fatal(err)
						}
						lo, hi := ShardRange(n, s, shards)
						if res.N() != hi-lo {
							t.Fatalf("shard %d/%d ran %d trials, want %d", s, shards, res.N(), hi-lo)
						}
					}
					merged := filepath.Join(dir, "merged.jsonl")
					if _, err := MergeCheckpoints(merged, paths...); err != nil {
						t.Fatal(err)
					}
					got, missing, err := direct.CampaignFromCheckpoint(n, merged)
					if err != nil {
						t.Fatal(err)
					}
					if missing != 0 {
						t.Fatalf("%d shards: merged log missing %d trials", shards, missing)
					}
					if got.N() != want.N() {
						t.Fatalf("%d shards: merged %d trials, want %d", shards, got.N(), want.N())
					}
					for i := range want.Trials {
						if got.Trials[i] != want.Trials[i] {
							t.Errorf("%d shards: trial %d diverged: got %+v want %+v",
								shards, i, got.Trials[i], want.Trials[i])
						}
					}
					for o, c := range want.Counts {
						if got.Counts[o] != c {
							t.Errorf("%d shards: outcome %s count %d, want %d", shards, o, got.Counts[o], c)
						}
					}
				}
			})
		}
	}
}

// TestMergeCheckpointsRejectsForeignLogs: stitching logs from different
// campaigns must fail instead of fabricating a result.
func TestMergeCheckpointsRejectsForeignLogs(t *testing.T) {
	build := mustProg(t, "pathfinder").Build
	dir := t.TempDir()
	a, err := New(build(), Options{Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(build(), Options{Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pa := filepath.Join(dir, "a.jsonl")
	pb := filepath.Join(dir, "b.jsonl")
	if _, err := a.CampaignShardCheckpoint(context.Background(), 10, 0, 2, pa); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CampaignShardCheckpoint(context.Background(), 10, 1, 2, pb); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(filepath.Join(dir, "m.jsonl"), pa, pb); err == nil {
		t.Fatal("merge across different seeds succeeded")
	}
}

// TestShardResumeAfterInterrupt: a shard cancelled mid-run resumes from
// its own checkpoint and the final merge is still bit-identical to the
// unsharded campaign — the crash-retry path of the shard supervisor.
func TestShardResumeAfterInterrupt(t *testing.T) {
	const n, seed, shards = 60, 99, 3
	build := mustProg(t, "pathfinder").Build
	direct, err := New(build(), Options{Seed: seed, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for s := 0; s < shards; s++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%02d.jsonl", s))
		paths = append(paths, path)
		// First attempt: cancel after a few completions (worker crash).
		func() {
			inj, err := New(build(), Options{Seed: seed, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			seen := 0
			inj.opts.OnProgress = func(p Progress) {
				seen++
				if seen == 5 {
					cancel()
				}
			}
			defer cancel()
			if _, err := inj.CampaignShardCheckpoint(ctx, n, s, shards, path); err == nil && seen >= 5 {
				t.Fatal("cancelled shard returned no error")
			}
		}()
		// Retry: a fresh injector (fresh worker) finishes from the log.
		inj, err := New(build(), Options{Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inj.CampaignShardCheckpoint(context.Background(), n, s, shards, path); err != nil {
			t.Fatal(err)
		}
	}
	merged := filepath.Join(dir, "merged.jsonl")
	if _, err := MergeCheckpoints(merged, paths...); err != nil {
		t.Fatal(err)
	}
	got, missing, err := direct.CampaignFromCheckpoint(n, merged)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("merged log missing %d trials", missing)
	}
	for i := range want.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Errorf("trial %d diverged after interrupt+resume: got %+v want %+v",
				i, got.Trials[i], want.Trials[i])
		}
	}
}
