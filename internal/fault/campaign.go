package fault

import (
	"fmt"
	"math"
	"sync"

	"trident/internal/ir"
)

// rng is the deterministic xorshift64* generator used for target sampling.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a pseudo-random value in [0, n).
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// CampaignResult aggregates a set of injection trials.
type CampaignResult struct {
	// Trials are the individual injections, in sampling order.
	Trials []Injection
	// Counts indexes outcome tallies by Outcome.
	Counts map[Outcome]int
}

// N returns the number of trials.
func (c *CampaignResult) N() int { return len(c.Trials) }

// Rate returns the fraction of trials with the given outcome.
func (c *CampaignResult) Rate(o Outcome) float64 {
	if len(c.Trials) == 0 {
		return 0
	}
	return float64(c.Counts[o]) / float64(len(c.Trials))
}

// SDCProb returns the measured SDC probability (SDC / activated faults).
func (c *CampaignResult) SDCProb() float64 { return c.Rate(SDC) }

// MeanCrashLatency returns the mean dynamic-instruction distance between
// injection and trap over the campaign's crash outcomes (0 if none).
func (c *CampaignResult) MeanCrashLatency() float64 {
	var sum, n float64
	for _, tr := range c.Trials {
		if tr.Outcome == Crash {
			sum += float64(tr.CrashLatency)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// ErrorBar95 returns the half-width of the 95% confidence interval on the
// SDC probability under the normal approximation — the error bars the
// paper reports (±0.07% to ±1.76% at 3000 samples).
func (c *CampaignResult) ErrorBar95() float64 {
	n := float64(len(c.Trials))
	if n == 0 {
		return 0
	}
	p := c.SDCProb()
	return 1.96 * math.Sqrt(p*(1-p)/n)
}

// trialSpec is a pre-sampled injection target; sampling happens
// sequentially for determinism, execution happens in parallel.
type trialSpec struct {
	instr    *ir.Instr
	instance uint64
	bit      int
}

// runTrials executes the specs with the configured worker pool.
func (inj *Injector) runTrials(specs []trialSpec) (*CampaignResult, error) {
	res := &CampaignResult{
		Trials: make([]Injection, len(specs)),
		Counts: make(map[Outcome]int),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, inj.opts.Workers)
	for i, spec := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, spec trialSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			detail, err := inj.InjectDetail(spec.instr, spec.instance, spec.bit)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			res.Trials[i] = Injection{
				Instr:        spec.instr,
				Instance:     spec.instance,
				Bit:          spec.bit,
				Outcome:      detail.Outcome,
				CrashLatency: detail.CrashLatency,
			}
		}(i, spec)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for _, tr := range res.Trials {
		res.Counts[tr.Outcome]++
	}
	return res, nil
}

// CampaignRandom performs n statistical injections sampled uniformly over
// the activation space (dynamic register writes), the paper's overall-SDC
// measurement (§V-B1).
func (inj *Injector) CampaignRandom(n int) (*CampaignResult, error) {
	r := newRNG(inj.opts.Seed)
	specs := make([]trialSpec, n)
	for i := range specs {
		in, instance := inj.pick(1 + r.intn(inj.total))
		specs[i] = trialSpec{instr: in, instance: instance, bit: randomBit(r, in)}
	}
	return inj.runTrials(specs)
}

// CampaignPerInstr performs n injections into random dynamic instances of
// one static instruction, the paper's per-instruction measurement (§V-B2,
// 100 faults per instruction).
func (inj *Injector) CampaignPerInstr(target *ir.Instr, n int) (*CampaignResult, error) {
	execs := inj.execCount[target]
	if execs == 0 || !target.HasResult() {
		return nil, fmt.Errorf("fault: %s is not an injectable target", target.Pos())
	}
	r := newRNG(inj.opts.Seed ^ uint64(target.ID)*0x9E3779B97F4A7C15)
	specs := make([]trialSpec, n)
	for i := range specs {
		specs[i] = trialSpec{
			instr:    target,
			instance: 1 + r.intn(execs),
			bit:      randomBit(r, target),
		}
	}
	return inj.runTrials(specs)
}

// PerInstrSDC measures per-instruction SDC probabilities for the given
// targets with n trials each, returning a map target → SDC probability.
func (inj *Injector) PerInstrSDC(targets []*ir.Instr, n int) (map[*ir.Instr]float64, error) {
	out := make(map[*ir.Instr]float64, len(targets))
	for _, in := range targets {
		res, err := inj.CampaignPerInstr(in, n)
		if err != nil {
			return nil, err
		}
		out[in] = res.SDCProb()
	}
	return out, nil
}
