package fault

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"trident/internal/ir"
	"trident/internal/stats"
	"trident/internal/telemetry"
)

// rng is the deterministic xorshift64* generator used for target sampling.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a uniform pseudo-random value in [0, n). Raw `next() % n`
// is biased for n that do not divide 2^64, so draws landing in the
// truncated final bucket [0, 2^64 mod n) are rejected and redrawn; the
// expected number of redraws is below one for every n.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		panic(&EngineError{Err: fmt.Errorf("fault: intn(0)")})
	}
	if n&(n-1) == 0 {
		return r.next() & (n - 1)
	}
	min := -n % n // 2^64 mod n
	for {
		if v := r.next(); v >= min {
			return v % n
		}
	}
}

// CampaignResult aggregates a set of injection trials. Campaigns degrade
// gracefully: trials whose engine failed are classified Errored and kept
// (with their errors in Errs), and a cancelled campaign returns the
// completed prefix of its trials instead of nothing.
type CampaignResult struct {
	// Trials are the individual injections, in sampling order.
	Trials []Injection
	// Counts indexes outcome tallies by Outcome, including Errored.
	Counts map[Outcome]int
	// Errs describes every Errored trial, ordered by trial index.
	Errs []TrialError
}

// N returns the number of trials.
func (c *CampaignResult) N() int { return len(c.Trials) }

// PrunedN returns the number of trials classified Benign by static
// bit-liveness pruning instead of execution (0 unless the injector ran
// with Options.PruneBits). Pruned trials are full members of the
// campaign: they are included in N, ClassifiedN, Counts[Benign], and
// every rate and CI.
func (c *CampaignResult) PrunedN() int {
	n := 0
	for _, tr := range c.Trials {
		if tr.Pruned {
			n++
		}
	}
	return n
}

// ClassifiedN returns the number of trials that produced a program-level
// classification (everything except Errored).
func (c *CampaignResult) ClassifiedN() int { return len(c.Trials) - c.Counts[Errored] }

// Rate returns the fraction of trials with the given outcome. Program
// outcomes are normalized over classified trials only, so engine failures
// do not dilute the measured rates; Rate(Errored) is normalized over all
// trials.
func (c *CampaignResult) Rate(o Outcome) float64 {
	if len(c.Trials) == 0 {
		return 0
	}
	if o == Errored {
		return float64(c.Counts[o]) / float64(len(c.Trials))
	}
	n := c.ClassifiedN()
	if n == 0 {
		return 0
	}
	return float64(c.Counts[o]) / float64(n)
}

// SDCProb returns the measured SDC probability (SDC / activated faults).
func (c *CampaignResult) SDCProb() float64 { return c.Rate(SDC) }

// MeanCrashLatency returns the mean dynamic-instruction distance between
// injection and trap over the campaign's crash outcomes (0 if none).
func (c *CampaignResult) MeanCrashLatency() float64 {
	var sum, n float64
	for _, tr := range c.Trials {
		if tr.Outcome == Crash {
			sum += float64(tr.CrashLatency)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// ErrorBar95 returns the half-width of the 95% confidence interval on the
// SDC probability — the error bars the paper reports (±0.07% to ±1.76%
// at 3000 samples). It delegates to stats.ProportionCI95, which uses the
// Wilson score interval: unlike the normal approximation, campaigns that
// measure 0 (or n) SDCs out of n trials still get a positive error bar
// instead of a spurious claim of certainty.
func (c *CampaignResult) ErrorBar95() float64 {
	return stats.ProportionCI95(c.SDCProb(), c.ClassifiedN())
}

// tally recomputes Counts from Trials.
func (c *CampaignResult) tally() {
	c.Counts = make(map[Outcome]int)
	for _, tr := range c.Trials {
		c.Counts[tr.Outcome]++
	}
}

// trialSpec is a pre-sampled injection target; sampling happens
// sequentially for determinism, execution happens in parallel.
type trialSpec struct {
	instr    *ir.Instr
	instance uint64
	bit      int
}

// key returns the spec's durable identity for checkpointing. Instruction
// IDs are function-local, so the function name is part of the key; the
// campaign seed lives in the checkpoint header.
func (s trialSpec) key() TrialKey {
	return TrialKey{Func: s.instr.Block.Fn.Name, Instr: s.instr.ID, Instance: s.instance, Bit: s.bit}
}

// runTrial executes one spec with panic isolation and bounded retry. The
// second return is non-nil when the trial exhausted its attempts and was
// classified Errored; cancelled reports that the campaign context fired
// mid-trial, leaving the trial unclassified.
func (inj *Injector) runTrial(ctx context.Context, spec trialSpec) (tr Injection, terr *TrialError, cancelled bool) {
	if mt := inj.met; mt != nil {
		mt.inflight.Add(1)
		start := time.Now()
		defer func() {
			mt.inflight.Add(-1)
			elapsed := time.Since(start)
			mt.trialUS.ObserveDuration(elapsed)
			mt.busyUS.Add(uint64(elapsed.Microseconds()))
		}()
	}
	tr = Injection{Instr: spec.instr, Instance: spec.instance, Bit: spec.bit}
	// Bit-liveness pruning: a provably-masked bit cannot change any
	// observable, so the trial's outcome is Benign by construction and
	// execution is skipped. The spec keeps its slot in the sampling
	// stream, which is what makes the reweighting exact: tallies and CIs
	// still range over the full activation space.
	if inj.isPruned(spec) {
		tr.Outcome = Benign
		tr.Pruned = true
		if mt := inj.met; mt != nil {
			mt.pruned.Inc()
		}
		return tr, nil, false
	}
	attempts := 1 + inj.opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if mt := inj.met; mt != nil {
			mt.attempts.Inc()
			if attempt > 1 {
				mt.retries.Inc()
			}
		}
		detail, err := inj.attemptTrial(ctx, spec, attempt)
		if err == nil {
			tr.Outcome = detail.Outcome
			tr.CrashLatency = detail.CrashLatency
			return tr, nil, false
		}
		if ctx.Err() != nil {
			return Injection{}, nil, true
		}
		lastErr = err
		if !isTransient(err) {
			// Deterministic failures (engine bugs, invalid specs) cannot
			// succeed on retry; fail fast with attempt count = attempt.
			attempts = attempt
			break
		}
	}
	tr.Outcome = Errored
	return tr, &TrialError{
		Instr:    spec.instr,
		Instance: spec.instance,
		Bit:      spec.bit,
		Attempts: attempts,
		Err:      lastErr,
	}, false
}

// attemptTrial performs one attempt of one trial behind a panic barrier:
// a panic anywhere in the trial (engine, hooks, classification) becomes a
// typed *EngineError instead of killing the campaign process.
func (inj *Injector) attemptTrial(ctx context.Context, spec trialSpec, attempt int) (d Detail, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &EngineError{
				Err:       fmt.Errorf("fault: trial panicked: %v", r),
				Recovered: r,
			}
		}
	}()
	if h := inj.opts.TrialHook; h != nil {
		if herr := h(spec.instr, spec.instance, spec.bit, attempt); herr != nil {
			return Detail{}, herr
		}
	}
	return inj.InjectDetail(ctx, spec.instr, spec.instance, spec.bit)
}

// runTrials executes the specs with the configured worker pool.
//
// Robustness contract:
//   - Failed trials never abort the campaign: they are classified Errored
//     and detailed in the result's Errs slice.
//   - Cancelling ctx stops launching new trials and returns the completed
//     prefix of the campaign together with ctx.Err(); results are
//     byte-identical to the same prefix of an uninterrupted run.
//   - When ck is non-nil, completed trials are replayed from the log
//     instead of re-executed, and fresh completions are appended to it.
func (inj *Injector) runTrials(ctx context.Context, specs []trialSpec, ck *Checkpoint) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &CampaignResult{Trials: make([]Injection, len(specs))}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []TrialError
	)
	start := time.Now()
	span := inj.opts.Trace.Start("campaign", telemetry.Attrs{
		"module": inj.module.Name, "n": len(specs),
	})
	if mt := inj.met; mt != nil {
		mt.campaigns.Inc()
		defer mt.campaignUS.Since(start)
	}
	// progress aggregates completions under mu, so OnProgress observes
	// monotonically non-decreasing counts in completion order.
	progress := Progress{Total: len(specs)}
	// observe records one classified trial (executed or replayed from the
	// checkpoint). Callers must hold mu.
	observe := func(tr Injection, terr *TrialError, replayed bool) {
		inj.met.countTrial(tr.Outcome, replayed)
		if terr != nil {
			inj.opts.Trace.Event("trial.errored", telemetry.Attrs{
				"index": terr.Index, "instr": terr.Instr.Pos(),
				"instance": terr.Instance, "bit": terr.Bit,
				"attempts": terr.Attempts, "err": terr.Err.Error(),
			})
		}
		if f := inj.opts.OnProgress; f != nil {
			progress.Done++
			progress.Counts[tr.Outcome]++
			progress.Elapsed = time.Since(start)
			f(progress)
		}
	}
	sem := make(chan struct{}, inj.opts.Workers)
	launched := 0
launch:
	for i, spec := range specs {
		if ck != nil {
			if tr, terr, ok := ck.replay(spec); ok {
				// The Pruned flag is not persisted in checkpoint records;
				// recompute it so resumed campaigns report the same pruned
				// tally as uninterrupted ones. (Cross-prune replay cannot
				// happen: the checkpoint header records the pruning
				// configuration and openCheckpoint refuses a mismatch.)
				tr.Pruned = tr.Outcome == Benign && inj.isPruned(spec)
				res.Trials[i] = tr
				mu.Lock()
				if terr != nil {
					terr.Index = i
					errs = append(errs, *terr)
				}
				observe(tr, terr, true)
				mu.Unlock()
				launched = i + 1
				continue
			}
		}
		select {
		case <-ctx.Done():
			break launch
		case sem <- struct{}{}:
		}
		launched = i + 1
		wg.Add(1)
		go func(i int, spec trialSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			tr, terr, cancelled := inj.runTrial(ctx, spec)
			if cancelled {
				return
			}
			mu.Lock()
			res.Trials[i] = tr
			if terr != nil {
				terr.Index = i
				errs = append(errs, *terr)
			}
			observe(tr, terr, false)
			mu.Unlock()
			if ck != nil {
				ck.record(spec, tr, terr)
			}
		}(i, spec)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Keep exactly the contiguous completed prefix: trials past the
		// cancellation point (or cancelled mid-flight) are unclassified
		// zero values and must not leak into the result.
		n := launched
		for i := 0; i < n; i++ {
			if res.Trials[i].Outcome == 0 {
				n = i
				break
			}
		}
		res.Trials = res.Trials[:n]
		kept := errs[:0]
		for _, te := range errs {
			if te.Index < n {
				kept = append(kept, te)
			}
		}
		errs = kept
		res.Errs = sortTrialErrs(errs)
		res.tally()
		span.EndWith(telemetry.Attrs{"done": res.N(), "errored": len(res.Errs), "cancelled": true})
		return res, err
	}
	res.Errs = sortTrialErrs(errs)
	res.tally()
	span.EndWith(telemetry.Attrs{"done": res.N(), "errored": len(res.Errs)})
	return res, nil
}

// sortTrialErrs orders errors by trial index so error reports are
// deterministic regardless of worker interleaving.
func sortTrialErrs(errs []TrialError) []TrialError {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Index < errs[j].Index })
	return errs
}

// sampleRandom draws n uniform specs over the activation space. Sampling
// is sequential and depends only on the seed, so campaigns (and their
// checkpoints) are reproducible across worker counts and restarts.
func (inj *Injector) sampleRandom(n int) []trialSpec {
	r := newRNG(inj.opts.Seed)
	specs := make([]trialSpec, n)
	for i := range specs {
		in, instance := inj.pick(1 + r.intn(inj.total))
		specs[i] = trialSpec{instr: in, instance: instance, bit: randomBit(r, in)}
	}
	return specs
}

// CampaignRandom performs n statistical injections sampled uniformly over
// the activation space (dynamic register writes), the paper's overall-SDC
// measurement (§V-B1). Cancelling ctx returns the completed prefix of the
// campaign along with ctx.Err().
func (inj *Injector) CampaignRandom(ctx context.Context, n int) (*CampaignResult, error) {
	return inj.runTrials(ctx, inj.sampleRandom(n), nil)
}

// perInstrSeed derives an independent RNG stream for one static target.
// Instruction IDs are function-local, so the function name must be part
// of the mix: the earlier `Seed ^ ID*const` scheme aliased targets with
// equal IDs in different functions onto identical instance/bit
// sequences, and a target with ID 0 onto the campaign-level stream
// itself. FNV-1a over the function name followed by splitmix64-style
// finalization of the ID and seed keeps every target's stream distinct.
func perInstrSeed(seed uint64, target *ir.Instr) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	name := target.Block.Fn.Name
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	h ^= uint64(target.ID)
	h *= fnvPrime
	h ^= seed
	// splitmix64 finalizer: avalanche so that near-identical inputs
	// (adjacent IDs, same seed) give unrelated streams.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// CampaignPerInstr performs n injections into random dynamic instances of
// one static instruction, the paper's per-instruction measurement (§V-B2,
// 100 faults per instruction).
func (inj *Injector) CampaignPerInstr(ctx context.Context, target *ir.Instr, n int) (*CampaignResult, error) {
	execs := inj.execCount[target]
	if execs == 0 || !target.HasResult() {
		return nil, fmt.Errorf("fault: %s is not an injectable target", target.Pos())
	}
	r := newRNG(perInstrSeed(inj.opts.Seed, target))
	specs := make([]trialSpec, n)
	for i := range specs {
		specs[i] = trialSpec{
			instr:    target,
			instance: 1 + r.intn(execs),
			bit:      randomBit(r, target),
		}
	}
	return inj.runTrials(ctx, specs, nil)
}

// PerInstrSDC measures per-instruction SDC probabilities for the given
// targets with n trials each, returning a map target → SDC probability.
func (inj *Injector) PerInstrSDC(ctx context.Context, targets []*ir.Instr, n int) (map[*ir.Instr]float64, error) {
	out := make(map[*ir.Instr]float64, len(targets))
	for _, in := range targets {
		res, err := inj.CampaignPerInstr(ctx, in, n)
		if err != nil {
			return nil, err
		}
		out[in] = res.SDCProb()
	}
	return out, nil
}
