package fault

import (
	"context"
	"fmt"

	"trident/internal/ir"
)

// BitOutcome aggregates injection outcomes for one bit position.
type BitOutcome struct {
	// Bit is the flipped bit position.
	Bit int
	// Counts tallies outcomes across the trials at this position.
	Counts map[Outcome]int
	// Trials is the number of injections performed at this position.
	Trials int
}

// Rate returns the fraction of this bit's trials with the given outcome.
func (b *BitOutcome) Rate(o Outcome) float64 {
	if b.Trials == 0 {
		return 0
	}
	return float64(b.Counts[o]) / float64(b.Trials)
}

// BitProfile measures how the injection outcome depends on the flipped
// bit position of one instruction's destination register — the
// bit-sensitivity view behind the paper's single-bit-flip fault model
// discussion (§V-A2, citing Sangchoolie et al.). For each bit position of
// the result type, perBit injections hit uniformly random dynamic
// instances.
func (inj *Injector) BitProfile(ctx context.Context, target *ir.Instr, perBit int) ([]BitOutcome, error) {
	execs := inj.execCount[target]
	if execs == 0 || !target.HasResult() {
		return nil, fmt.Errorf("fault: %s is not an injectable target", target.Pos())
	}
	width := target.Type.Bits()
	r := newRNG(inj.opts.Seed ^ 0xB17B17B17)

	out := make([]BitOutcome, width)
	var specs []trialSpec
	for bit := 0; bit < width; bit++ {
		out[bit] = BitOutcome{Bit: bit, Counts: make(map[Outcome]int)}
		for k := 0; k < perBit; k++ {
			specs = append(specs, trialSpec{
				instr:    target,
				instance: 1 + r.intn(execs),
				bit:      bit,
			})
		}
	}
	res, err := inj.runTrials(ctx, specs, nil)
	if err != nil {
		return nil, err
	}
	for _, tr := range res.Trials {
		b := &out[tr.Bit]
		b.Counts[tr.Outcome]++
		b.Trials++
	}
	return out, nil
}

// BitSensitivity summarizes a bit profile as the fraction of bit
// positions whose SDC rate exceeds the threshold — a quick measure of how
// concentrated an instruction's vulnerability is.
func BitSensitivity(profile []BitOutcome, threshold float64) float64 {
	if len(profile) == 0 {
		return 0
	}
	n := 0
	for _, b := range profile {
		if b.Rate(SDC) > threshold {
			n++
		}
	}
	return float64(n) / float64(len(profile))
}
