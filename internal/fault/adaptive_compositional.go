// This file implements adaptive compositional campaigns: the
// per-function incremental machinery of compositional.go crossed with
// the two-phase Neyman allocation of adaptive.go. Each function section
// derives its own main-phase plan, from the cheapest evidence available:
//
//  1. a cached *plain* profile for the identical section (same seed,
//     budget, body hash, golden stamp) already holds every outcome the
//     pilot would measure — the plan is seeded from its per-stratum
//     tallies and the pilot is skipped entirely (zero executed trials:
//     the thinned transcript replays from the profile);
//  2. a cached *adaptive* profile replays the section's pilot + thinned
//     main transcript directly, re-deriving the plan from the recorded
//     pilot outcomes;
//  3. otherwise the section runs live: static-shape pilot prefix (live
//     strata at rate 1, provably-masked slots at the floor), NeymanPlan,
//     thinned main phase — and the clean transcript is stored for the
//     next campaign.
//
// Seeded and pilot-based sections weight identically: every executed
// trial at 1/q of the plan its phase ran under (pilot trials under the
// pilot plan, main trials under the derived plan), composed
// program-wide by cache.ComposeWeighted. The estimate stays unbiased in
// every path —
// the thinning hash is independent of outcomes, so inclusion
// probabilities given the plan are exactly the plan's rates even when
// the plan was derived from the very outcomes being thinned (ANALYSIS.md,
// "Adaptive (Neyman) allocation").

package fault

import (
	"context"
	"fmt"
	"math"
	"time"

	"trident/internal/bitlive"
	"trident/internal/cache"
	"trident/internal/hashutil"
	"trident/internal/telemetry"
)

// adaptiveFuncKey is funcKey for a section sampled under the adaptive
// two-phase design: the stratify slot carries the function's influence
// classification plus the pilot configuration, so adaptive entries can
// never collide with plain or statically-stratified ones.
func (inj *Injector) adaptiveFuncKey(sec *funcSection, n int) cache.FuncKey {
	key := inj.funcKey(sec, n)
	c := inj.opts.Adaptive.withDefaults()
	key.Stratify = hashutil.Hex(hashutil.String(fmt.Sprintf("adaptive|%x|%x|%x",
		inj.influence.FuncHash(sec.fn),
		math.Float64bits(c.PilotFraction), math.Float64bits(c.RateFloor))))
	return key
}

// seededFuncKey is funcKey for a section whose plan was seeded from a
// cached plain profile: keyed by the influence classification and the
// derived plan itself (the seeding evidence is pinned by the rest of the
// key, so the plan is reproducible from the same plain entry).
func (inj *Injector) seededFuncKey(sec *funcSection, n int, plan bitlive.Plan) cache.FuncKey {
	key := inj.funcKey(sec, n)
	key.Stratify = hashutil.Hex(hashutil.String(fmt.Sprintf("seeded|%x|%x",
		inj.influence.FuncHash(sec.fn), plan.Hash())))
	return key
}

// recMatches reports whether a cached record describes exactly the trial
// a spec would run.
func recMatches(rec cache.TrialRec, spec trialSpec) bool {
	return rec.Instr == spec.instr.ID && rec.Instance == spec.instance && rec.Bit == spec.bit
}

// recordEvidence tallies per-stratum evidence from a full section
// transcript (strata aligned with the records by slot order). The bool
// reports whether every record decoded and matched its spec.
func recordEvidence(st bitlive.StratumStats, specs []trialSpec, strata []bitlive.Stratum, recs []cache.TrialRec) ([bitlive.NumStrata]bitlive.StratumPilot, bool) {
	var out [bitlive.NumStrata]bitlive.StratumPilot
	for s := 0; s < bitlive.NumStrata; s++ {
		out[s].Bits = st.Bits[s]
	}
	for _, s := range strata {
		out[int(s)].Slots++
	}
	if len(recs) != len(specs) {
		return out, false
	}
	for i, rec := range recs {
		if !recMatches(rec, specs[i]) {
			return out, false
		}
		o, ok := outcomeFromName(rec.Outcome)
		if !ok {
			return out, false
		}
		if o == Errored {
			continue
		}
		s := int(strata[i])
		out[s].Trials++
		if o == SDC {
			out[s].SDC++
		}
	}
	return out, true
}

// trialRecs converts executed trials to their cache-record form.
func trialRecs(trials []Injection) []cache.TrialRec {
	recs := make([]cache.TrialRec, len(trials))
	for i, tr := range trials {
		recs[i] = cache.TrialRec{
			Instr:    tr.Instr.ID,
			Instance: tr.Instance,
			Bit:      tr.Bit,
			Outcome:  tr.Outcome.String(),
			Latency:  tr.CrashLatency,
		}
	}
	return recs
}

// replayAdaptiveSection reconstructs a section's pilot + thinned-main
// transcript from a cached adaptive profile, re-deriving the plan from
// the recorded pilot outcomes and verifying every record against the
// spec it claims to be. pilotN reports the pilot trials the transcript
// holds (the pilot-plan-kept subset of the prefix). Any mismatch
// reports false and the section runs live instead.
func (inj *Injector) replayAdaptiveSection(specs []trialSpec, strata []bitlive.Stratum, st bitlive.StratumStats, pn int, floor float64, fseed uint64, prof cache.FuncProfile) (recs []cache.TrialRec, weights []float64, counts map[Outcome]int, plan bitlive.Plan, pilotN int, ok bool) {
	fail := func() ([]cache.TrialRec, []float64, map[Outcome]int, bitlive.Plan, int, bool) {
		return nil, nil, nil, bitlive.Plan{}, 0, false
	}
	pplan := bitlive.MaskedRatePlan(floor)
	var pilotTrials []Injection
	var keptPilotStrata []bitlive.Stratum
	idx := 0
	for slot := 0; slot < pn; slot++ {
		q := pplan.Rate(strata[slot])
		if !(q >= 1 || slotU(fseed, slot) < q) {
			continue
		}
		if idx >= len(prof.Trials) {
			return fail()
		}
		rec := prof.Trials[idx]
		if !recMatches(rec, specs[slot]) {
			return fail()
		}
		o, decoded := outcomeFromName(rec.Outcome)
		if !decoded || o == Errored {
			return fail()
		}
		pilotTrials = append(pilotTrials, Injection{Outcome: o})
		keptPilotStrata = append(keptPilotStrata, strata[slot])
		idx++
	}
	evidence := pilotEvidence(st, strata[:pn], keptPilotStrata, pilotTrials)
	plan, err := bitlive.NeymanPlan(evidence, floor)
	if err != nil {
		return fail()
	}
	pilotN = idx
	counts = make(map[Outcome]int)
	recs = prof.Trials[:pilotN:pilotN]
	weights = make([]float64, pilotN, len(prof.Trials))
	for i := range weights {
		weights[i] = 1 / pplan.Rate(keptPilotStrata[i])
		o, _ := outcomeFromName(prof.Trials[i].Outcome)
		counts[o]++
	}
	for slot := pn; slot < len(specs); slot++ {
		q := plan.Rate(strata[slot])
		if !(q >= 1 || slotU(fseed, slot) < q) {
			continue
		}
		if idx >= len(prof.Trials) {
			return fail()
		}
		rec := prof.Trials[idx]
		if !recMatches(rec, specs[slot]) {
			return fail()
		}
		o, decoded := outcomeFromName(rec.Outcome)
		if !decoded || o == Errored {
			return fail()
		}
		recs = append(recs, rec)
		weights = append(weights, 1/q)
		counts[o]++
		idx++
	}
	if idx != len(prof.Trials) {
		return fail()
	}
	return recs, weights, counts, plan, pilotN, true
}

// weightedFuncTally folds one section's executed transcript into its
// composition contribution. slots is the section's drawn slot budget;
// partial (a cancelled section) falls back to the executed prefix's
// weight mass — the drawn slots that prefix stands for — as the
// denominator, since the untested remainder of the budget carries no
// estimate.
func weightedFuncTally(fc *FuncCampaign, weights []float64, slots int, partial bool) cache.WeightedFuncTally {
	t := cache.WeightedFuncTally{
		Func:   fc.Name,
		Weight: fc.Weight,
		Counts: outcomeCounts(fc.Counts),
		Sums:   make(map[string]float64),
	}
	erroredW := 0.0
	errName := Errored.String()
	for i, rec := range fc.Records {
		w := weights[i]
		if rec.Outcome == errName {
			erroredW += w
			continue
		}
		t.Sums[rec.Outcome] += w
		t.SDC.Add(w, rec.Outcome == cache.SDCName)
	}
	denom := float64(slots)
	if partial {
		denom = 0
		for _, w := range weights {
			denom += w
		}
	}
	if t.Slots = denom - erroredW; t.Slots < 0 {
		t.Slots = 0
	}
	return t
}

// AdaptiveCompositionalResult is a compositional campaign whose sections
// were sampled under per-function adaptive plans.
type AdaptiveCompositionalResult struct {
	*CompositionalResult
	// PilotExecuted is the total pilot trials executed across all
	// sections this run (0 when every section seeded or replayed).
	PilotExecuted int
	// SeededFuncs counts sections whose plan was seeded from a cached
	// plain profile — their pilots were skipped entirely.
	SeededFuncs int
}

// CampaignAdaptiveCompositional performs n adaptive injections
// apportioned across functions by activation count, with each section's
// Neyman plan derived from the cheapest sufficient evidence: a cached
// plain profile (plan seeded, pilot skipped, transcript replayed), a
// cached adaptive profile (transcript replayed), or a live pilot + main
// run that is then cached. Requires Options.Adaptive; store may be nil
// (every section runs live).
//
// Cancelling ctx returns the sections completed so far plus ctx.Err();
// partially-executed sections are never cached.
func (inj *Injector) CampaignAdaptiveCompositional(ctx context.Context, n int, store *cache.Store) (*AdaptiveCompositionalResult, error) {
	if err := inj.requireAdaptive(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := inj.opts.Adaptive.withDefaults()
	secs := inj.sections()
	weights := make([]uint64, len(secs))
	for i, sec := range secs {
		weights[i] = sec.weight
	}
	shares := apportion(n, weights)

	res := &AdaptiveCompositionalResult{
		CompositionalResult: &CompositionalResult{byFunc: make(map[string]*funcSection, len(secs))},
	}
	for _, sec := range secs {
		res.byFunc[sec.fn.Name] = sec
	}
	span := inj.opts.Trace.Start("campaign.adaptive_compositional", telemetry.Attrs{
		"module": inj.module.Name, "n": n, "funcs": len(secs),
	})

	var tallies []cache.WeightedFuncTally
	var runErr error
	for i, sec := range secs {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		nf := shares[i]
		fc := FuncCampaign{
			Name:     sec.fn.Name,
			BodyHash: sec.hash,
			Weight:   sec.weight,
			N:        nf,
		}
		specs := inj.sampleSection(sec, nf)
		strata := inj.classifySpecs(specs)
		st := inj.influence.FuncStats(sec.fn)
		fseed := funcSeed(inj.opts.Seed, sec.fn.Name, sec.hash)
		pn := pilotLen(nf, cfg.PilotFraction)

		var trialWeights []float64
		partial := false
		handled := false

		// 1. Seed the plan from a cached plain profile: the full section
		// transcript is already measured, so derive the rates from its
		// per-stratum tallies and replay the thinned subset — no pilot.
		if store != nil && nf > 0 {
			plainKey := inj.funcKey(sec, nf)
			var plain cache.FuncProfile
			if store.Get(plainKey, &plain) && validProfile(plainKey, &plain) {
				if evidence, sound := recordEvidence(st, specs, strata, plain.Trials); sound {
					plan, err := bitlive.NeymanPlan(evidence, cfg.RateFloor)
					if err != nil {
						return nil, err
					}
					counts := make(map[Outcome]int)
					var recs []cache.TrialRec
					var w []float64
					for slot := range specs {
						q := plan.Rate(strata[slot])
						if q >= 1 || slotU(fseed, slot) < q {
							recs = append(recs, plain.Trials[slot])
							w = append(w, 1/q)
							o, _ := outcomeFromName(plain.Trials[slot].Outcome)
							counts[o]++
						}
					}
					fc.Cached, fc.Seeded = true, true
					fc.Plan = plan.String()
					fc.Records, fc.Counts = recs, counts
					trialWeights = w
					res.Hits++
					res.SeededFuncs++
					skey := inj.seededFuncKey(sec, nf, plan)
					var have cache.FuncProfile
					if !store.Get(skey, &have) {
						if perr := store.Put(skey, cache.FuncProfile{
							Counts: outcomeCounts(counts), Trials: recs,
						}); perr != nil {
							warnf("cache: storing seeded profile for @%s: %v", fc.Name, perr)
						}
					}
					handled = true
				}
			}
		}

		// 2. Replay a cached adaptive transcript.
		if !handled && store != nil && nf > 0 {
			akey := inj.adaptiveFuncKey(sec, nf)
			var prof cache.FuncProfile
			if store.Get(akey, &prof) {
				recs, w, counts, plan, pilotN, ok := inj.replayAdaptiveSection(specs, strata, st, pn, cfg.RateFloor, fseed, prof)
				if ok {
					fc.Cached = true
					fc.PilotN = pilotN
					fc.Plan = plan.String()
					fc.Records, fc.Counts = recs, counts
					trialWeights = w
					res.Hits++
					handled = true
				} else {
					warnf("cache: adaptive profile for @%s does not replay (treating as miss)", fc.Name)
				}
			}
		}

		// 3. Run the section live: static-shape pilot, derived plan,
		// thinned main phase.
		if !handled {
			res.Misses++
			pplan := pilotPlan(cfg)
			pilotKept, pilotKeptStrata := thinSlots(fseed, pplan, specs, strata, 0, pn)
			pilotRes, err := inj.runTrials(ctx, pilotKept, nil)
			fc.PilotN = len(pilotRes.Trials)
			res.PilotExecuted += fc.PilotN
			if err != nil || len(pilotRes.Trials) < len(pilotKept) {
				// Cancelled mid-pilot: keep the executed prefix under the
				// pilot plan's weights.
				fc.Records = trialRecs(pilotRes.Trials)
				fc.Counts = pilotRes.Counts
				fc.Errs = pilotRes.Errs
				trialWeights = make([]float64, len(fc.Records))
				for j := range trialWeights {
					trialWeights[j] = 1 / pplan.Rate(pilotKeptStrata[j])
				}
				partial = true
				runErr = err
				if runErr == nil {
					runErr = ctx.Err()
				}
			} else {
				evidence := pilotEvidence(st, strata[:pn], pilotKeptStrata, pilotRes.Trials)
				plan, perr := bitlive.NeymanPlan(evidence, cfg.RateFloor)
				if perr != nil {
					return nil, perr
				}
				fc.Plan = plan.String()
				kept, keptStrata := thinSlots(fseed, plan, specs, strata, pn, nf)
				mainRes, merr := inj.runTrials(ctx, kept, nil)
				fc.Records = append(trialRecs(pilotRes.Trials), trialRecs(mainRes.Trials)...)
				fc.Counts = make(map[Outcome]int)
				for o, c := range pilotRes.Counts {
					fc.Counts[o] += c
				}
				for o, c := range mainRes.Counts {
					fc.Counts[o] += c
				}
				fc.Errs = append(fc.Errs, pilotRes.Errs...)
				for _, te := range mainRes.Errs {
					te.Index += len(pilotRes.Trials)
					fc.Errs = append(fc.Errs, te)
				}
				trialWeights = make([]float64, len(fc.Records))
				for j := range trialWeights {
					if j < len(pilotRes.Trials) {
						trialWeights[j] = 1 / pplan.Rate(pilotKeptStrata[j])
					} else {
						trialWeights[j] = 1 / plan.Rate(keptStrata[j-len(pilotRes.Trials)])
					}
				}
				if merr != nil {
					partial = len(mainRes.Trials) < len(kept)
					runErr = merr
				} else if store != nil && fc.Counts[Errored] == 0 {
					akey := inj.adaptiveFuncKey(sec, nf)
					if perr := store.Put(akey, cache.FuncProfile{
						Counts: outcomeCounts(fc.Counts), Trials: fc.Records,
					}); perr != nil {
						warnf("cache: storing adaptive profile for @%s: %v", fc.Name, perr)
					}
				}
			}
		}

		res.Funcs = append(res.Funcs, fc)
		tallies = append(tallies, weightedFuncTally(&fc, trialWeights, nf, partial))
		if runErr != nil {
			break
		}
	}

	composeStart := time.Now()
	res.Composed = cache.ComposeWeighted(tallies)
	if reg := inj.opts.Metrics; reg != nil {
		reg.Histogram("cache.compose_us").Since(composeStart)
	}
	span.EndWith(telemetry.Attrs{
		"hits": res.Hits, "misses": res.Misses, "seeded": res.SeededFuncs,
		"pilot": res.PilotExecuted, "sdc": res.Composed.SDC, "trials": res.N(),
	})
	return res, runErr
}
