// This file implements stratified (importance-sampled) campaigns over
// the live-bit space — the dynamic half of the BEC idea (ANALYSIS.md,
// "Stratified sampling over live bits"; DESIGN.md §5i for the pruning
// half). The bit-influence classifier (bitlive.ClassifyInfluence)
// assigns every injectable bit a stratum; a Plan assigns each stratum an
// inclusion probability. A stratified campaign draws the SAME n slots
// the unstratified campaign would (same seed, same sequential stream),
// then thins each slot by its stratum's rate with a deterministic
// per-slot hash: the executed trials are a bit-identical subset of the
// unstratified campaign's trials. Each executed trial carries the
// inverse-probability weight 1/q of its stratum, and estimates become
// Horvitz-Thompson sums over the drawn slots — exactly unbiased for any
// plan, with the variance bookkeeping done by stats.WeightedTally.
//
// Determinism contract: slot inclusion is a pure function of
// (seed, slot index, stratum rate) via a random-access hash, NOT a
// sequential stream — so sharding, checkpoint resume and replay see
// exactly the same subset without fast-forwarding any generator.

package fault

import (
	"context"
	"fmt"

	"trident/internal/bitlive"
	"trident/internal/hashutil"
	"trident/internal/ir"
	"trident/internal/stats"
)

// stratSalt decorrelates the slot-inclusion hash from every other use
// of the campaign seed (the sampling stream, per-instruction streams).
const stratSalt = 0x9E3779B97F4A7C15

// slotU maps (seed, slot) to a uniform float in [0, 1) with a
// splitmix64-style finalizer. Random access per slot keeps inclusion
// independent of visit order.
func slotU(seed uint64, slot int) float64 {
	h := seed ^ (stratSalt * (uint64(slot) + 1))
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) * (1.0 / (1 << 53))
}

// stratumOf classifies one spec's target bit. Callers must have
// configured Options.Stratify (which builds the influence table).
func (inj *Injector) stratumOf(spec trialSpec) bitlive.Stratum {
	return inj.influence.Stratum(spec.instr, spec.bit)
}

// StratifyHash returns the content address of the stratification in
// effect — the influence table's module hash folded with the plan hash
// (hashutil.Hex form) — or "" when Options.Stratify is nil. Checkpoint
// headers, cache keys and the server's result cache include it so
// estimates weighted under one plan are never mixed with another.
func (inj *Injector) StratifyHash() string {
	if inj.opts.Stratify == nil {
		return ""
	}
	h := hashutil.String(fmt.Sprintf("%x|%x",
		inj.influence.ModuleHash(inj.module), inj.opts.Stratify.Hash()))
	return hashutil.Hex(h)
}

// StratifyHashFor computes the stratification content address of m
// under plan without building an injector (no golden run): the server's
// result cache keys jobs with it at admission time. It agrees with
// Injector.StratifyHash for the same module and plan.
func StratifyHashFor(m *ir.Module, plan bitlive.Plan) string {
	inf := bitlive.ClassifyInfluence(m, bitlive.Analyze(m))
	return hashutil.Hex(hashutil.String(fmt.Sprintf("%x|%x", inf.ModuleHash(m), plan.Hash())))
}

// pruneHash returns the content address of the bit-liveness report a
// pruned campaign runs under ("" when Options.PruneBits is off).
func (inj *Injector) pruneHash() string {
	if inj.prune == nil {
		return ""
	}
	return hashutil.Hex(inj.prune.ModuleHash(inj.module))
}

// StratifiedResult is a stratified campaign's outcome: the executed
// trials (a deterministic subset of the slots an unstratified campaign
// with the same seed would run) plus the weighting needed to estimate
// over the full slot population.
type StratifiedResult struct {
	// CampaignResult holds the executed trials only; its unweighted
	// rates describe the executed subset, not the population — use the
	// Weighted variants for campaign-level estimates.
	*CampaignResult
	// SlotN is the number of slots drawn before thinning (the n the
	// campaign was asked for).
	SlotN int
	// Plan is the stratification plan the campaign ran under.
	Plan bitlive.Plan
	// Weights and Strata align with Trials: Weights[i] is the inverse
	// inclusion probability 1/q of trial i's stratum.
	Weights []float64
	Strata  []bitlive.Stratum
	// SlotCounts counts the drawn slots per stratum, before thinning.
	SlotCounts [bitlive.NumStrata]int
}

// ExecutedN returns the number of trials that occupied execution slots
// after thinning (including pruned ones, which are free).
func (sr *StratifiedResult) ExecutedN() int { return len(sr.Trials) }

// Tally builds the weighted tally of one program outcome over the
// classified executed trials.
func (sr *StratifiedResult) Tally(o Outcome) stats.WeightedTally {
	var t stats.WeightedTally
	for i, tr := range sr.Trials {
		if tr.Outcome == Errored {
			continue
		}
		t.Add(sr.Weights[i], tr.Outcome == o)
	}
	return t
}

// classifiedSlots returns the Horvitz-Thompson denominator: the drawn
// slot count less the weighted share of Errored trials, mirroring how
// unstratified rates normalize over ClassifiedN.
func (sr *StratifiedResult) classifiedSlots() float64 {
	d := float64(sr.SlotN)
	for i, tr := range sr.Trials {
		if tr.Outcome == Errored {
			d -= sr.Weights[i]
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// WeightedRate returns the Horvitz-Thompson estimate of a program
// outcome's rate over the full slot population. Rate(Errored) has no
// weighted meaning (engine failures are a property of the run, not the
// population); it returns the executed-subset rate.
func (sr *StratifiedResult) WeightedRate(o Outcome) float64 {
	if o == Errored {
		return sr.Rate(Errored)
	}
	return sr.Tally(o).HTProportion(sr.classifiedSlots())
}

// WeightedSDC returns the Horvitz-Thompson SDC probability estimate.
func (sr *StratifiedResult) WeightedSDC() float64 { return sr.WeightedRate(SDC) }

// EffectiveN returns the variance-matched effective sample size of the
// SDC estimate (stats.WeightedTally.HTEffectiveN): the trial count a
// uniform campaign would need to match the stratified estimate's
// variance. Under an all-ones plan it equals the classified slot count.
func (sr *StratifiedResult) EffectiveN() float64 {
	return sr.Tally(SDC).HTEffectiveN(sr.classifiedSlots())
}

// WeightedErrorBar95 returns the half-width of the 95% Wilson interval
// of the weighted SDC estimate at the variance-matched effective sample
// size — the stratified analogue of ErrorBar95.
func (sr *StratifiedResult) WeightedErrorBar95() float64 {
	t := sr.Tally(SDC)
	denom := sr.classifiedSlots()
	return stats.WeightedProportionCI95(t.HTProportion(denom), t.HTEffectiveN(denom))
}

// StratumSummary reports one stratum's share of a stratified campaign.
type StratumSummary struct {
	Stratum bitlive.Stratum
	// Rate is the plan's inclusion probability.
	Rate float64
	// Slots is how many drawn slots fell in the stratum; Executed how
	// many survived thinning.
	Slots, Executed int
}

// Summary returns the per-stratum breakdown in priority order (noise
// first), covering every stratum the plan names.
func (sr *StratifiedResult) Summary() []StratumSummary {
	var exec [bitlive.NumStrata]int
	for _, s := range sr.Strata {
		exec[s]++
	}
	out := make([]StratumSummary, 0, bitlive.NumStrata)
	for _, s := range bitlive.Strata() {
		out = append(out, StratumSummary{
			Stratum:  s,
			Rate:     sr.Plan.Rate(s),
			Slots:    sr.SlotCounts[int(s)],
			Executed: exec[int(s)],
		})
	}
	return out
}

// stratifiedSpecs draws the campaign's n slots and thins them by the
// plan: the returned specs are the executed subset, with per-spec
// strata and the per-stratum slot counts of the full draw.
func (inj *Injector) stratifiedSpecs(n int) (kept []trialSpec, strata []bitlive.Stratum, slotCounts [bitlive.NumStrata]int) {
	specs := inj.sampleRandom(n)
	plan := *inj.opts.Stratify
	for i, spec := range specs {
		s := inj.stratumOf(spec)
		slotCounts[int(s)]++
		q := plan.Rate(s)
		if q >= 1 || slotU(inj.opts.Seed, i) < q {
			kept = append(kept, spec)
			strata = append(strata, s)
		}
	}
	return kept, strata, slotCounts
}

// finishStratified wraps the executed trials into a StratifiedResult,
// recomputing weights from the plan. A cancelled campaign returns a
// prefix of the kept specs; weights align with whatever prefix ran.
func (inj *Injector) finishStratified(res *CampaignResult, strata []bitlive.Stratum, slotCounts [bitlive.NumStrata]int, n int) *StratifiedResult {
	plan := *inj.opts.Stratify
	sr := &StratifiedResult{
		CampaignResult: res,
		SlotN:          n,
		Plan:           plan,
		SlotCounts:     slotCounts,
	}
	sr.Strata = strata[:len(res.Trials)]
	sr.Weights = make([]float64, len(res.Trials))
	for i, s := range sr.Strata {
		sr.Weights[i] = 1 / plan.Rate(s)
	}
	return sr
}

// requireStratify validates the stratified-campaign configuration.
func (inj *Injector) requireStratify() error {
	if inj.opts.Stratify == nil {
		return fmt.Errorf("fault: stratified campaign requires Options.Stratify")
	}
	return nil
}

// CampaignStratified performs a stratified campaign over n slots: the
// same n uniform draws CampaignRandom(n) would make, thinned per
// stratum by Options.Stratify, with Horvitz-Thompson reweighting in the
// result. Cancelling ctx returns the completed prefix along with
// ctx.Err(), exactly like CampaignRandom.
func (inj *Injector) CampaignStratified(ctx context.Context, n int) (*StratifiedResult, error) {
	if err := inj.requireStratify(); err != nil {
		return nil, err
	}
	kept, strata, slotCounts := inj.stratifiedSpecs(n)
	res, err := inj.runTrials(ctx, kept, nil)
	if res == nil {
		return nil, err
	}
	return inj.finishStratified(res, strata, slotCounts, n), err
}

// metaStratified describes a stratified run for checkpoint validation:
// same identity as the unstratified campaign plus the stratification
// hash, under its own kind so a stratified log (which holds only the
// thinned subset) can never masquerade as a complete random log.
func (inj *Injector) metaStratified(n int) checkpointMeta {
	meta := inj.metaRandom(n)
	meta.Kind = "stratified"
	meta.Stratify = inj.StratifyHash()
	return meta
}

// CampaignStratifiedCheckpoint is CampaignStratified persisted to (and
// resumed from) a JSONL log at path, with the same contract as
// CampaignRandomCheckpoint.
func (inj *Injector) CampaignStratifiedCheckpoint(ctx context.Context, n int, path string) (*StratifiedResult, error) {
	if err := inj.requireStratify(); err != nil {
		return nil, err
	}
	ck, err := openCheckpoint(path, inj.metaStratified(n), false)
	if err != nil {
		return nil, err
	}
	kept, strata, slotCounts := inj.stratifiedSpecs(n)
	res, runErr := inj.runTrials(ctx, kept, ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if res == nil {
		return nil, runErr
	}
	return inj.finishStratified(res, strata, slotCounts, n), runErr
}

// CampaignStratifiedShardCheckpoint runs one shard of an n-slot
// stratified campaign: the executed subset is computed over the full
// slot range (inclusion is a random-access hash, so shard identity
// never shifts it) and the shard runs the kept specs whose slot falls
// in ShardRange(n, shard, shards), checkpointed at path. The returned
// result covers only this shard's executed trials; merge the shard logs
// and reconstruct with StratifiedFromCheckpoint for the weighted
// campaign result.
func (inj *Injector) CampaignStratifiedShardCheckpoint(ctx context.Context, n, shard, shards int, path string) (*CampaignResult, error) {
	if err := inj.requireStratify(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		return nil, fmt.Errorf("fault: shard count must be positive, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("fault: shard %d out of range [0, %d)", shard, shards)
	}
	specs := inj.sampleRandom(n)
	plan := *inj.opts.Stratify
	lo, hi := ShardRange(n, shard, shards)
	var kept []trialSpec
	for i := lo; i < hi; i++ {
		spec := specs[i]
		q := plan.Rate(inj.stratumOf(spec))
		if q >= 1 || slotU(inj.opts.Seed, i) < q {
			kept = append(kept, spec)
		}
	}
	ck, err := openCheckpoint(path, inj.metaStratified(n), false)
	if err != nil {
		return nil, err
	}
	res, runErr := inj.runTrials(ctx, kept, ck)
	if cerr := ck.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return res, runErr
}

// StratifiedFromCheckpoint reconstructs a stratified campaign result
// purely from the checkpoint log at path (typically the merge of shard
// logs) — no trial executes. It returns the result over the executed
// specs present in the log plus the number of expected specs the log is
// missing, mirroring CampaignFromCheckpoint. Weights are recomputed
// from the plan, never persisted: the header's stratification hash
// guarantees the log was thinned under the same plan.
func (inj *Injector) StratifiedFromCheckpoint(n int, path string) (*StratifiedResult, int, error) {
	if err := inj.requireStratify(); err != nil {
		return nil, 0, err
	}
	_, recs, err := loadLogFor(path, inj.metaStratified(n))
	if err != nil {
		return nil, 0, err
	}
	kept, strata, slotCounts := inj.stratifiedSpecs(n)
	res := &CampaignResult{}
	var gotStrata []bitlive.Stratum
	missing := 0
	for i, spec := range kept {
		rec, ok := recs[spec.key()]
		if !ok {
			missing++
			continue
		}
		tr, terr := rec.injection(spec)
		if terr != nil {
			terr.Index = len(res.Trials)
			res.Errs = append(res.Errs, *terr)
		}
		res.Trials = append(res.Trials, tr)
		gotStrata = append(gotStrata, strata[i])
	}
	res.tally()
	return inj.finishStratified(res, gotStrata, slotCounts, n), missing, nil
}

// loadLogFor reads and validates a checkpoint log against want,
// surfacing torn-tail warnings like every other loader.
func loadLogFor(path string, want checkpointMeta) (checkpointMeta, map[TrialKey]trialRecord, error) {
	data, err := readCheckpointFile(path)
	if err != nil {
		return checkpointMeta{}, nil, err
	}
	meta, recs, warns, err := readLog(path, data)
	if err != nil {
		return checkpointMeta{}, nil, err
	}
	for _, w := range warns {
		warnf("%s", w)
	}
	if err := meta.matches(path, want); err != nil {
		return checkpointMeta{}, nil, err
	}
	return meta, recs, nil
}
