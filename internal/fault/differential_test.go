package fault

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"trident/internal/ir"
	"trident/internal/progs"
)

// The differential suite proves the central claim of the snapshot-replay
// engine: for every benchmark program and multiple seeds, a campaign run
// through golden-state snapshots is bit-identical to the legacy
// run-from-instruction-zero campaign — same per-trial outcomes, crash
// latencies, output hashes, rates, and error sets.

// diffInjectors builds a legacy injector and a snapshot injector over the
// same module and options, and checks the snapshot one actually has
// snapshots (a vacuous pass would just run the legacy path twice). Both
// injectors share one module instance so trial specs (instruction
// pointers) are interchangeable between them.
func diffInjectors(t *testing.T, p progs.Program, opts Options) (legacy, snap *Injector) {
	t.Helper()
	m := p.Build()
	legacyOpts := opts
	legacyOpts.SnapshotInterval = 0
	var err error
	legacy, err = New(m, legacyOpts)
	if err != nil {
		t.Fatalf("legacy injector: %v", err)
	}
	snapOpts := opts
	if snapOpts.SnapshotInterval == 0 {
		// Aim for several snapshots across the run so trials actually
		// resume from a mix of restore points.
		snapOpts.SnapshotInterval = legacy.GoldenDynInstrs()/7 + 1
	}
	snap, err = New(m, snapOpts)
	if err != nil {
		t.Fatalf("snapshot injector: %v", err)
	}
	if snap.Snapshots() == 0 {
		t.Fatalf("snapshot injector captured no snapshots (golden %d instrs, interval %d)",
			snap.GoldenDynInstrs(), snapOpts.SnapshotInterval)
	}
	return legacy, snap
}

// TestDifferentialCampaignsAllPrograms runs a random campaign per
// (program, seed) on both paths and requires byte-identical transcripts
// and tallies.
func TestDifferentialCampaignsAllPrograms(t *testing.T) {
	seeds := []uint64{1, 42, 20180625}
	n := 60
	if testing.Short() {
		seeds = seeds[:1]
		n = 25
	}
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				legacy, snap := diffInjectors(t, p, Options{Seed: seed, Workers: 4})
				lres, err := legacy.CampaignRandom(context.Background(), n)
				if err != nil {
					t.Fatalf("seed %d: legacy campaign: %v", seed, err)
				}
				sres, err := snap.CampaignRandom(context.Background(), n)
				if err != nil {
					t.Fatalf("seed %d: snapshot campaign: %v", seed, err)
				}
				if lt, st := transcript(lres), transcript(sres); lt != st {
					t.Errorf("seed %d: campaign transcripts diverge\nlegacy:\n%s\nsnapshot:\n%s",
						seed, lt, st)
				}
				for _, o := range []Outcome{Benign, SDC, Crash, Hang, Detected, Errored} {
					if lc, sc := lres.Counts[o], sres.Counts[o]; lc != sc {
						t.Errorf("seed %d: %v count diverges: legacy %d, snapshot %d",
							seed, o, lc, sc)
					}
					if lr, sr := lres.Rate(o), sres.Rate(o); lr != sr {
						t.Errorf("seed %d: %v rate diverges: legacy %v, snapshot %v",
							seed, o, lr, sr)
					}
				}
			}
		})
	}
}

// TestDifferentialPerTrialDetails compares individual trials at the
// InjectDetail level: outcome, crash latency, and the full-output hash
// must match between the snapshot path and the legacy path for every
// sampled fault point.
func TestDifferentialPerTrialDetails(t *testing.T) {
	seeds := []uint64{7, 1009}
	perProg := 40
	if testing.Short() {
		seeds = seeds[:1]
		perProg = 15
	}
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				legacy, snap := diffInjectors(t, p, Options{Seed: seed})
				// Both injectors share the seed, so they sample the same
				// specs; use the legacy injector's stream as the reference.
				specs := legacy.sampleRandom(perProg)
				for _, spec := range specs {
					ld, err := legacy.InjectDetail(context.Background(), spec.instr, spec.instance, spec.bit)
					if err != nil {
						t.Fatalf("seed %d: legacy trial %s/%d/%d: %v",
							seed, spec.instr.Pos(), spec.instance, spec.bit, err)
					}
					sd, err := snap.InjectDetail(context.Background(), spec.instr, spec.instance, spec.bit)
					if err != nil {
						t.Fatalf("seed %d: snapshot trial %s/%d/%d: %v",
							seed, spec.instr.Pos(), spec.instance, spec.bit, err)
					}
					if ld != sd {
						t.Errorf("seed %d: trial %s inst=%d bit=%d diverges: legacy %+v, snapshot %+v",
							seed, spec.instr.Pos(), spec.instance, spec.bit, ld, sd)
					}
				}
			}
		})
	}
}

// TestDifferentialSnapshotIntervalSweep fixes one program and sweeps the
// snapshot interval from very dense to sparser-than-the-run: every
// interval must reproduce the legacy campaign exactly, including the
// degenerate case where no trial finds a usable snapshot.
func TestDifferentialSnapshotIntervalSweep(t *testing.T) {
	p := progs.All()[0]
	legacy, err := New(p.Build(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacy.CampaignRandom(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	golden := legacy.GoldenDynInstrs()
	for _, interval := range []uint64{1, 13, golden / 100, golden / 3, golden, golden * 4} {
		if interval == 0 {
			continue
		}
		snap, err := New(p.Build(), Options{Seed: 5, SnapshotInterval: interval})
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		res, err := snap.CampaignRandom(context.Background(), 40)
		if err != nil {
			t.Fatalf("interval %d: campaign: %v", interval, err)
		}
		if transcript(res) != transcript(want) {
			t.Errorf("interval %d (%d snapshots): transcript diverges from legacy",
				interval, snap.Snapshots())
		}
	}
}

// TestDifferentialCheckpointedCampaign interrupts a snapshot-path
// campaign that is writing a checkpoint log, resumes it (still on the
// snapshot path), and requires the final result to match an undisturbed
// legacy campaign — the two persistence mechanisms (trial checkpoints and
// state snapshots) must compose without changing a single trial.
func TestDifferentialCheckpointedCampaign(t *testing.T) {
	p := progs.All()[1]
	const n = 40
	legacy, err := New(p.Build(), Options{Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacy.CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trials.jsonl")
	interval := legacy.GoldenDynInstrs()/5 + 1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	interrupted, err := New(p.Build(), Options{
		Seed: 11, Workers: 4, SnapshotInterval: interval,
		TrialHook: func(_ *ir.Instr, _ uint64, _ int, _ int) error {
			if fired.Add(1) == 3*n/4 {
				cancel()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := interrupted.CampaignRandomCheckpoint(ctx, n, path)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The returned prefix may even be empty if the earliest trials were
	// still in flight at cancellation; the checkpoint log is what carries
	// completed work across sessions.
	if partial.N() >= n {
		t.Fatalf("interrupted campaign completed all %d trials", partial.N())
	}

	resumer, err := New(p.Build(), Options{Seed: 11, Workers: 4, SnapshotInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := resumer.ResumeCampaign(context.Background(), n, path)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantT := transcript(resumed), transcript(want); got != wantT {
		t.Errorf("resumed snapshot campaign differs from legacy run:\n got: %q\nwant: %q", got, wantT)
	}
}
