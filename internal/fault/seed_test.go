package fault

import (
	"context"
	"testing"

	"trident/internal/ir"
)

// seedTestModule builds a module in which two different functions contain
// targets with the SAME function-local instruction ID that both execute
// several times — the aliasing case for per-instruction seed mixing.
func seedTestModule(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse(`
module "seedmix"
func @aux(%x i64) i64 {
entry:
  %a = mul %x, i64 3
  %b = add %a, i64 1
  ret %b
}
func @main() void {
entry:
  br head
head:
  %i = phi i64 [i64 0, entry], [%inc, body]
  %acc = phi i64 [i64 0, entry], [%acc2, body]
  %c = icmp slt %i, i64 16
  condbr %c, body, done
body:
  %v = call @aux(%i)
  %acc2 = add %acc, %v
  %inc = add %i, i64 1
  br head
done:
  print %acc
  ret
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// sameIDTargets returns one executed target from each of two functions
// such that both targets share the same function-local ID.
func sameIDTargets(t *testing.T, inj *Injector) (a, b *ir.Instr) {
	t.Helper()
	byFn := map[string]map[int]*ir.Instr{}
	for _, in := range inj.Targets() {
		fn := in.Block.Fn.Name
		if byFn[fn] == nil {
			byFn[fn] = map[int]*ir.Instr{}
		}
		byFn[fn][in.ID] = in
	}
	for id, inA := range byFn["aux"] {
		if inB, ok := byFn["main"][id]; ok {
			return inA, inB
		}
	}
	t.Fatal("no pair of executed targets with equal IDs across functions")
	return nil, nil
}

// TestPerInstrSeedDistinctStreams is the regression test for the
// per-instruction seed-mixing fix: two distinct targets with the same
// function-local ID (in different functions) under the same campaign
// seed must draw distinct instance/bit trial sequences, and a target
// with ID 0 must not share the campaign-level sampling stream.
func TestPerInstrSeedDistinctStreams(t *testing.T) {
	m := seedTestModule(t)
	inj, err := New(m, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	inA, inB := sameIDTargets(t, inj)

	const n = 64
	resA, err := inj.CampaignPerInstr(context.Background(), inA, n)
	if err != nil {
		t.Fatalf("campaign A: %v", err)
	}
	resB, err := inj.CampaignPerInstr(context.Background(), inB, n)
	if err != nil {
		t.Fatalf("campaign B: %v", err)
	}
	same := true
	for i := range resA.Trials {
		if resA.Trials[i].Bit != resB.Trials[i].Bit ||
			resA.Trials[i].Instance != resB.Trials[i].Instance {
			same = false
			break
		}
	}
	if same {
		t.Errorf("targets %s and %s (both ID %d) drew identical trial streams under seed 42",
			inA.Pos(), inB.Pos(), inA.ID)
	}

	// Determinism is preserved: re-running the same target reproduces the
	// exact same stream.
	resA2, err := inj.CampaignPerInstr(context.Background(), inA, n)
	if err != nil {
		t.Fatalf("campaign A rerun: %v", err)
	}
	for i := range resA.Trials {
		if resA.Trials[i] != resA2.Trials[i] {
			t.Fatalf("per-instr campaign not deterministic at trial %d", i)
		}
	}
}

// TestPerInstrSeedSeparatesFromCampaignStream pins the second aliasing
// mode the audit found: under the old `Seed ^ ID*const` mixing, a target
// with ID 0 seeded its RNG with exactly the campaign seed, entangling
// its stream with CampaignRandom's sampling stream.
func TestPerInstrSeedSeparatesFromCampaignStream(t *testing.T) {
	m := seedTestModule(t)
	inj, err := New(m, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, in := range inj.Targets() {
		if got := perInstrSeed(inj.opts.Seed, in); got == inj.opts.Seed {
			t.Errorf("perInstrSeed(%d, %s) equals the campaign seed", inj.opts.Seed, in.Pos())
		}
	}
	// And every executed target gets its own stream seed.
	seen := map[uint64]*ir.Instr{}
	for _, in := range inj.Targets() {
		s := perInstrSeed(inj.opts.Seed, in)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %s and %s", prev.Pos(), in.Pos())
		}
		seen[s] = in
	}
}

// TestRandomBitWidths audits randomBit: i1 results must always flip bit
// 0 (the only bit the type has), and no type may ever draw a bit at or
// beyond its width.
func TestRandomBitWidths(t *testing.T) {
	mk := func(typ ir.Type) *ir.Instr {
		return &ir.Instr{Op: ir.OpAdd, Type: typ}
	}
	r := newRNG(7)
	for i := 0; i < 200; i++ {
		if b := randomBit(r, mk(ir.I1)); b != 0 {
			t.Fatalf("randomBit(i1) = %d, want 0", b)
		}
	}
	for _, typ := range []ir.Type{ir.I8, ir.I16, ir.I32, ir.I64, ir.F32, ir.F64, ir.Ptr} {
		w := typ.Bits()
		seen := map[int]bool{}
		for i := 0; i < 64*w; i++ {
			b := randomBit(r, mk(typ))
			if b < 0 || b >= w {
				t.Fatalf("randomBit(%s) = %d, outside [0,%d)", typ, b, w)
			}
			seen[b] = true
		}
		if len(seen) < w/2 {
			t.Errorf("randomBit(%s) covered only %d/%d positions", typ, len(seen), w)
		}
	}
}
