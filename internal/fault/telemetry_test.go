package fault

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"trident/internal/ir"
	"trident/internal/telemetry"
)

// TestMetricsReconcileWithCampaignResult is the -metrics-out contract:
// after a campaign completes, the registry's outcome counters reconcile
// exactly with CampaignResult — trials = benign+sdc+crash+hang+detected
// +errored — and the bookkeeping counters are consistent with each
// other.
func TestMetricsReconcileWithCampaignResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := newInjectorOpts(t, vulnerable, Options{
		Seed:             3,
		Workers:          4,
		SnapshotInterval: 64,
		Metrics:          reg,
		TrialHook: func(target *ir.Instr, instance uint64, bit int, attempt int) error {
			if bit%13 == 5 {
				panic("chaos: simulated engine fault")
			}
			return nil
		},
	})
	const n = 200
	res, err := inj.CampaignRandom(context.Background(), n)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	snap := reg.Snapshot()

	if got := snap.Counters["fi.trials.total"]; got != n {
		t.Errorf("fi.trials.total = %d, want %d", got, n)
	}
	var outcomeSum uint64
	for _, o := range AllOutcomes {
		name := "fi.outcome." + o.String()
		got := snap.Counters[name]
		outcomeSum += got
		if int(got) != res.Counts[o] {
			t.Errorf("%s = %d, want CampaignResult count %d", name, got, res.Counts[o])
		}
	}
	if int(outcomeSum) != res.N() {
		t.Errorf("outcome counters sum to %d, want %d trials", outcomeSum, res.N())
	}
	if res.Counts[Errored] == 0 {
		t.Fatal("no Errored trials; reconciliation across all six outcomes is vacuous")
	}

	// Bookkeeping consistency: every trial executed (none replayed);
	// every trial that reached the engine — i.e. every classified one,
	// since Errored trials here panic in the hook before injection —
	// ran from either a snapshot or a cold start; attempts ≥ trials.
	if got := snap.Counters["fi.trials.executed"]; got != n {
		t.Errorf("fi.trials.executed = %d, want %d", got, n)
	}
	if got := snap.Counters["fi.trials.replayed"]; got != 0 {
		t.Errorf("fi.trials.replayed = %d, want 0", got)
	}
	classified := uint64(res.N() - res.Counts[Errored])
	if snapTrials, cold := snap.Counters["fi.replay.snapshot"], snap.Counters["fi.replay.cold"]; snapTrials+cold != classified {
		t.Errorf("replay split %d+%d != %d classified trials", snapTrials, cold, classified)
	} else if snapTrials == 0 {
		t.Error("no trial resumed from a snapshot despite SnapshotInterval=64")
	}
	if got := snap.Counters["fi.trials.attempts"]; got < n {
		t.Errorf("fi.trials.attempts = %d, want ≥ %d", got, n)
	}
	if got := snap.Counters["fi.campaigns"]; got != 1 {
		t.Errorf("fi.campaigns = %d, want 1", got)
	}
	if got := snap.Gauges["fi.workers.inflight"]; got != 0 {
		t.Errorf("fi.workers.inflight = %d after campaign end, want 0", got)
	}
	if h := snap.Histograms["fi.trial_us"]; h.Count != n {
		t.Errorf("fi.trial_us count = %d, want %d", h.Count, n)
	}
	if h := snap.Histograms["fi.golden_us"]; h.Count != 1 {
		t.Errorf("fi.golden_us count = %d, want 1", h.Count)
	}
	// The interpreter layer reports through the same registry.
	if got := snap.Counters["interp.snapshot.resumes"]; got != snap.Counters["fi.replay.snapshot"] {
		t.Errorf("interp.snapshot.resumes = %d, want fi.replay.snapshot = %d",
			got, snap.Counters["fi.replay.snapshot"])
	}
	if snap.Counters["interp.instrs"] == 0 {
		t.Error("interp.instrs = 0")
	}
}

// TestMetricsReconcileAcrossCheckpointResume: replayed trials count into
// the outcome totals (so metrics reconcile with the resumed campaign's
// CampaignResult) and are distinguished from executed ones.
func TestMetricsReconcileAcrossCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	const n = 80

	first := newInjectorOpts(t, vulnerable, Options{Seed: 5, Workers: 4})
	fres, err := first.CampaignRandomCheckpoint(context.Background(), n, path)
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}

	reg := telemetry.NewRegistry()
	second := newInjectorOpts(t, vulnerable, Options{Seed: 5, Workers: 4, Metrics: reg})
	sres, err := second.ResumeCampaign(context.Background(), n, path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if transcript(fres) != transcript(sres) {
		t.Fatal("resumed campaign differs from original")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["fi.trials.total"]; got != n {
		t.Errorf("fi.trials.total = %d, want %d", got, n)
	}
	if got := snap.Counters["fi.trials.replayed"]; got != n {
		t.Errorf("fi.trials.replayed = %d, want %d (all trials cached)", got, n)
	}
	if got := snap.Counters["fi.trials.executed"]; got != 0 {
		t.Errorf("fi.trials.executed = %d, want 0", got)
	}
	for _, o := range AllOutcomes {
		if got := snap.Counters["fi.outcome."+o.String()]; int(got) != sres.Counts[o] {
			t.Errorf("fi.outcome.%s = %d, want %d", o, got, sres.Counts[o])
		}
	}
}

// TestProgressMonotonicUnderCancellation: the OnProgress stream must
// report monotonically non-decreasing Done and outcome counts with
// coherent snapshots even when the campaign is cancelled mid-flight,
// and the completed-prefix result can never exceed what progress
// reported.
func TestProgressMonotonicUnderCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu       sync.Mutex
		lastDone int
		lastSum  int
		calls    int
		faults   []string
	)
	record := func(format string, args ...any) {
		faults = append(faults, fmt.Sprintf(format, args...))
	}
	inj := newInjectorOpts(t, vulnerable, Options{
		Seed:    11,
		Workers: 8,
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if p.Done != lastDone+1 {
				record("Done jumped %d -> %d", lastDone, p.Done)
			}
			sum := 0
			for _, c := range p.Counts {
				sum += c
			}
			if sum != p.Done {
				record("Counts sum %d != Done %d", sum, p.Done)
			}
			if sum < lastSum {
				record("Counts sum decreased %d -> %d", lastSum, sum)
			}
			if p.Total != 500 {
				record("Total = %d, want 500", p.Total)
			}
			lastDone, lastSum = p.Done, sum
			if p.Done == 40 {
				cancel() // cancel mid-campaign, from inside the callback
			}
		},
	})
	res, err := inj.CampaignRandom(ctx, 500)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, f := range faults {
		t.Error(f)
	}
	if calls < 40 {
		t.Errorf("progress called %d times, want ≥ 40", calls)
	}
	// The returned contiguous prefix can only contain trials that
	// reported progress.
	if res.N() > lastDone {
		t.Errorf("result N = %d exceeds last progress Done = %d", res.N(), lastDone)
	}
}

// TestProgressCompleteCampaign: an uncancelled campaign's final
// progress snapshot matches the result exactly.
func TestProgressCompleteCampaign(t *testing.T) {
	var (
		mu   sync.Mutex
		last Progress
	)
	inj := newInjectorOpts(t, vulnerable, Options{
		Seed:    2,
		Workers: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			last = p
			mu.Unlock()
		},
	})
	res, err := inj.CampaignRandom(context.Background(), 150)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last.Done != 150 || last.Total != 150 {
		t.Errorf("final progress %d/%d, want 150/150", last.Done, last.Total)
	}
	for _, o := range AllOutcomes {
		if last.Counts[o] != res.Counts[o] {
			t.Errorf("final progress count[%s] = %d, want %d", o, last.Counts[o], res.Counts[o])
		}
	}
	if last.Elapsed <= 0 {
		t.Error("final progress Elapsed not positive")
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{Done: 150, Total: 300, Elapsed: 2 * time.Second}
	p.Counts[Benign] = 70
	p.Counts[SDC] = 40
	p.Counts[Crash] = 30
	p.Counts[Errored] = 10
	s := p.String()
	for _, want := range []string{
		"fi 150/300 50%", "benign 50.0%", "sdc 28.6%", "crash 21.4%",
		"err 10", "75 trials/s", "eta 2s",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Progress.String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "hang") || strings.Contains(s, "detected") {
		t.Errorf("Progress.String() = %q shows outcomes with zero count", s)
	}
}
