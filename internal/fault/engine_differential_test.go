package fault

import (
	"context"
	"testing"

	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/progs"
)

// The decoded-engine differential suite extends the snapshot-replay
// proof to the second execution engine: a campaign run on the decoded
// engine — with or without snapshot replay — must be bit-identical to
// the legacy engine's, trial for trial.

// TestDifferentialDecodedEngine runs one random campaign per program on
// the legacy path and on three decoded configurations (cold, snapshot
// replay, pooled workers) and requires byte-identical transcripts.
func TestDifferentialDecodedEngine(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 25
	}
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m := p.Build()
			legacy, err := New(m, Options{Seed: 42, Workers: 4})
			if err != nil {
				t.Fatalf("legacy injector: %v", err)
			}
			want, err := legacy.CampaignRandom(context.Background(), n)
			if err != nil {
				t.Fatalf("legacy campaign: %v", err)
			}
			configs := map[string]Options{
				"cold":     {Seed: 42, Workers: 4, Engine: interp.EngineDecoded},
				"snapshot": {Seed: 42, Workers: 4, Engine: interp.EngineDecoded, SnapshotInterval: legacy.GoldenDynInstrs()/7 + 1},
				"serial":   {Seed: 42, Workers: 1, Engine: interp.EngineDecoded},
			}
			for name, opts := range configs {
				dec, err := New(m, opts)
				if err != nil {
					t.Fatalf("%s injector: %v", name, err)
				}
				res, err := dec.CampaignRandom(context.Background(), n)
				if err != nil {
					t.Fatalf("%s campaign: %v", name, err)
				}
				if got, w := transcript(res), transcript(want); got != w {
					t.Errorf("%s campaign transcript diverges from legacy\nlegacy:\n%s\ndecoded:\n%s",
						name, w, got)
				}
			}
		})
	}
}

// TestDifferentialDecodedPerTrial compares individual InjectDetail
// observations — outcome, crash latency, output hash — between engines
// for the same sampled fault points.
func TestDifferentialDecodedPerTrial(t *testing.T) {
	perProg := 30
	if testing.Short() {
		perProg = 10
	}
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m := p.Build()
			legacy, err := New(m, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			dec, err := New(m, Options{Seed: 7, Engine: interp.EngineDecoded})
			if err != nil {
				t.Fatal(err)
			}
			if legacy.GoldenOutput() != dec.GoldenOutput() ||
				legacy.GoldenDynInstrs() != dec.GoldenDynInstrs() ||
				legacy.ActivationSpace() != dec.ActivationSpace() {
				t.Fatalf("golden observations diverge: legacy (%d instrs, %d space), decoded (%d instrs, %d space)",
					legacy.GoldenDynInstrs(), legacy.ActivationSpace(),
					dec.GoldenDynInstrs(), dec.ActivationSpace())
			}
			for _, spec := range legacy.sampleRandom(perProg) {
				ld, err := legacy.InjectDetail(context.Background(), spec.instr, spec.instance, spec.bit)
				if err != nil {
					t.Fatalf("legacy trial %s/%d/%d: %v", spec.instr.Pos(), spec.instance, spec.bit, err)
				}
				dd, err := dec.InjectDetail(context.Background(), spec.instr, spec.instance, spec.bit)
				if err != nil {
					t.Fatalf("decoded trial %s/%d/%d: %v", spec.instr.Pos(), spec.instance, spec.bit, err)
				}
				if ld != dd {
					t.Errorf("trial %s inst=%d bit=%d diverges: legacy %+v, decoded %+v",
						spec.instr.Pos(), spec.instance, spec.bit, ld, dd)
				}
			}
		})
	}
}

// TestTrialStateReset is the pooled-state hygiene check: a trial state
// dirtied by a previous trial must come out of reset indistinguishable
// from a fresh one. A stale counter or injection flag leaking into the
// next trial fails here.
func TestTrialStateReset(t *testing.T) {
	ts := acquireTrialState()
	defer releaseTrialState(ts)

	stale := &ir.Instr{Op: ir.OpAdd, Type: ir.I32}
	ts.target = stale
	ts.instance = 99
	ts.mask = 0xFF00
	ts.seen = 1234
	ts.injectedAt = 777
	ts.injected = true

	next := &ir.Instr{Op: ir.OpMul, Type: ir.I64}
	ts.reset(next, 3, 5)

	if ts.target != next {
		t.Errorf("target = %v, want the new trial's target", ts.target)
	}
	if ts.instance != 3 {
		t.Errorf("instance = %d, want 3", ts.instance)
	}
	if ts.mask != 1<<5 {
		t.Errorf("mask = %#x, want %#x", ts.mask, uint64(1<<5))
	}
	if ts.seen != 0 {
		t.Errorf("stale seen = %d survived reset", ts.seen)
	}
	if ts.injectedAt != 0 {
		t.Errorf("stale injectedAt = %d survived reset", ts.injectedAt)
	}
	if ts.injected {
		t.Errorf("stale injected flag survived reset")
	}

	// The pooled hook closure must act on the post-reset state.
	got := ts.hook(&interp.Context{}, stale, 0b1)
	if got != 0b1 || ts.seen != 0 {
		t.Errorf("hook matched the stale target after reset (bits=%#b seen=%d)", got, ts.seen)
	}
	for i := uint64(1); i <= 3; i++ {
		got = ts.hook(&interp.Context{DynCount: 10 + i}, next, 0)
	}
	if !ts.injected || got != 1<<5 || ts.injectedAt != 13 {
		t.Errorf("hook did not fire on instance 3 of the new target (injected=%v bits=%#x at=%d)",
			ts.injected, got, ts.injectedAt)
	}

	// Release must drop the target reference.
	releaseTrialState(ts)
	if ts.target != nil {
		t.Errorf("releaseTrialState retained target %v", ts.target)
	}
	ts = acquireTrialState() // rebalance the deferred release
}

// TestTrialStateSequentialReuse re-runs the same trial spec repeatedly
// on one goroutine — forcing pool round-trips through the same state —
// and requires identical observations every time.
func TestTrialStateSequentialReuse(t *testing.T) {
	p := progs.All()[0]
	inj, err := New(p.Build(), Options{Seed: 3, Engine: interp.EngineDecoded})
	if err != nil {
		t.Fatal(err)
	}
	specs := inj.sampleRandom(5)
	var first []Detail
	for round := 0; round < 3; round++ {
		for i, spec := range specs {
			d, err := inj.InjectDetail(context.Background(), spec.instr, spec.instance, spec.bit)
			if err != nil {
				t.Fatalf("round %d trial %d: %v", round, i, err)
			}
			if round == 0 {
				first = append(first, d)
			} else if d != first[i] {
				t.Errorf("round %d trial %d diverges: %+v vs %+v", round, i, d, first[i])
			}
		}
	}
}
