// This file implements compositional campaigns: the whole-program
// injection space is partitioned by function, each function gets an
// independent deterministic sampling stream and a proportional share of
// the trial budget, and each function's outcome profile is stored in a
// content-addressed cache (internal/cache). Re-running after an edit
// re-injects only the functions whose canonical body hash — or whose
// golden-run behavior stamp — changed; everything else is replayed from
// cache, bit for bit (FastFlip-style, PAPERS.md).
//
// Soundness note. A fault injected in function f propagates through the
// *whole* program, so a cached profile for f is only valid while the
// rest of the program still behaves identically. Body hashes alone
// cannot see that, which is why the cache key carries a golden-run
// stamp (output hash, dynamic instruction count, per-function activation
// count): a behavior-changing edit anywhere changes the stamp, every
// lookup misses, and the campaign degrades to a full re-run — correct,
// just not incremental. Behavior-preserving edits (register renames,
// refactors that keep the dynamic trace) keep the stamp and enjoy
// per-function incrementality. The compositional differential suite
// enforces both halves of this contract.

package fault

import (
	"context"
	"fmt"
	"time"

	"trident/internal/cache"
	"trident/internal/hashutil"
	"trident/internal/ir"
	"trident/internal/telemetry"
)

// ModelVersion names the fault model and its version in cache keys. Bump
// it whenever injection semantics change (sampling, classification, bit
// selection), so old profiles stop matching without any migration.
const ModelVersion = "bitflip/v1"

// funcSection is one function's slice of the activation space.
type funcSection struct {
	fn      *ir.Func
	hash    uint64 // content address of the canonical printed body
	targets []*ir.Instr
	cum     []uint64
	weight  uint64
	byID    map[int]*ir.Instr
}

// sections partitions the injector's targets by function, in module
// order, keeping only functions with a nonzero activation count.
func (inj *Injector) sections() []*funcSection {
	var secs []*funcSection
	for _, fn := range inj.module.Funcs {
		sec := &funcSection{fn: fn, hash: hashutil.Function(fn), byID: make(map[int]*ir.Instr)}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				sec.byID[in.ID] = in
				if n := inj.execCount[in]; n > 0 && in.HasResult() {
					sec.weight += n
					sec.targets = append(sec.targets, in)
					sec.cum = append(sec.cum, sec.weight)
				}
			}
		}
		if sec.weight > 0 {
			secs = append(secs, sec)
		}
	}
	return secs
}

// funcSeed derives the independent sampling stream for one function's
// section from the campaign seed, the function name, and the body hash.
// Including the hash means an edited function draws a fresh stream (its
// cached profile is unusable anyway), while unrelated functions keep
// theirs — which is what makes incremental and from-scratch campaigns
// produce identical trials for unchanged functions.
func funcSeed(seed uint64, name string, bodyHash uint64) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	h ^= bodyHash
	h *= fnvPrime
	h ^= seed
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// apportion splits n trials across weights by largest remainder
// (Hamilton's method): exact proportionality where it divides evenly,
// deterministic earliest-index tie-breaking where it does not, and the
// shares always sum to n.
func apportion(n int, weights []uint64) []int {
	shares := make([]int, len(weights))
	if n <= 0 || len(weights) == 0 {
		return shares
	}
	var total uint64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return shares
	}
	type rem struct {
		idx  int
		frac uint64
	}
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		num := uint64(n) * w
		shares[i] = int(num / total)
		rems[i] = rem{idx: i, frac: num % total}
		assigned += shares[i]
	}
	// Hand the leftover trials to the largest fractional remainders;
	// stable selection by (remainder desc, index asc).
	for assigned < n {
		best := -1
		for i := range rems {
			if rems[i].frac == 0 && best != -1 {
				continue
			}
			if best == -1 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		shares[rems[best].idx]++
		rems[best].frac = 0
		assigned++
	}
	return shares
}

// sampleSection draws n specs uniformly over one function's activation
// subspace from its own stream, mirroring sampleRandom's scheme.
func (inj *Injector) sampleSection(sec *funcSection, n int) []trialSpec {
	r := newRNG(funcSeed(inj.opts.Seed, sec.fn.Name, sec.hash))
	specs := make([]trialSpec, n)
	for i := range specs {
		k := 1 + r.intn(sec.weight)
		lo, hi := 0, len(sec.cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if sec.cum[mid] < k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		in := sec.targets[lo]
		prev := uint64(0)
		if lo > 0 {
			prev = sec.cum[lo-1]
		}
		specs[i] = trialSpec{instr: in, instance: k - prev, bit: randomBit(r, in)}
	}
	return specs
}

// funcKey builds the content address of one function's campaign section.
func (inj *Injector) funcKey(sec *funcSection, n int) cache.FuncKey {
	prune := ""
	if inj.prune != nil {
		prune = hashutil.Hex(inj.prune.FuncHash(sec.fn))
	}
	stratify := ""
	if inj.opts.Stratify != nil {
		stratify = hashutil.Hex(hashutil.String(fmt.Sprintf("%x|%x",
			inj.influence.FuncHash(sec.fn), inj.opts.Stratify.Hash())))
	}
	return cache.FuncKey{
		Kind:       cache.FuncProfileKind,
		Func:       sec.fn.Name,
		BodyHash:   hashutil.Hex(sec.hash),
		Model:      ModelVersion,
		HangFactor: inj.opts.HangFactor,
		Seed:       inj.opts.Seed,
		N:          n,
		Prune:      prune,
		Stratify:   stratify,
		Stamp: cache.Stamp{
			GoldenOutput: hashutil.Hex(hashutil.Output(inj.goldenOutput)),
			GoldenDyn:    inj.goldenDyn,
			Activations:  sec.weight,
		},
	}
}

// FuncCampaign is one function's section of a compositional campaign:
// its share of the trial budget and the per-trial transcript, either
// executed this run (Cached false) or replayed from the profile cache.
type FuncCampaign struct {
	Name     string
	BodyHash uint64
	Weight   uint64
	N        int
	Cached   bool
	Counts   map[Outcome]int
	Records  []cache.TrialRec
	// Errs details Errored trials of a live section (always empty for
	// cached sections — profiles with errored trials are never stored).
	Errs []TrialError
	// Adaptive-campaign bookkeeping, zero for plain sections: Plan is the
	// derived main-phase plan (String form), PilotN counts executed pilot
	// trials, and Seeded marks a plan derived from a cached plain profile
	// instead of a pilot phase.
	Plan   string
	PilotN int
	Seeded bool
}

// CompositionalResult is a whole-program campaign stitched from
// per-function sections.
type CompositionalResult struct {
	// Funcs lists the sections in module function order.
	Funcs []FuncCampaign
	// Hits and Misses count cache outcomes over the sections.
	Hits, Misses int
	// Composed is the whole-program estimate recomposed from the
	// sections' tallies, weighted by activation counts.
	Composed cache.Composed

	byFunc map[string]*funcSection
}

// SDCProb returns the composed SDC probability.
func (r *CompositionalResult) SDCProb() float64 { return r.Composed.SDC }

// ErrorBar95 returns the half-width of the composed 95% interval.
func (r *CompositionalResult) ErrorBar95() float64 { return r.Composed.ErrorBar95() }

// N returns the total trial count across sections.
func (r *CompositionalResult) N() int {
	n := 0
	for i := range r.Funcs {
		n += len(r.Funcs[i].Records)
	}
	return n
}

// Merged reconstructs a flat CampaignResult from the sections, resolving
// each record's function-local instruction ID against the module. The
// result is ordered by section, then sampling order — the same order a
// from-scratch compositional campaign executes, so two runs can be
// compared trial for trial.
func (r *CompositionalResult) Merged() (*CampaignResult, error) {
	res := &CampaignResult{}
	for i := range r.Funcs {
		fc := &r.Funcs[i]
		sec := r.byFunc[fc.Name]
		if sec == nil {
			return nil, fmt.Errorf("fault: compositional result has unknown function %q", fc.Name)
		}
		for _, rec := range fc.Records {
			in := sec.byID[rec.Instr]
			if in == nil {
				return nil, fmt.Errorf("fault: @%s has no instruction with ID %d", fc.Name, rec.Instr)
			}
			o, ok := outcomeFromName(rec.Outcome)
			if !ok {
				return nil, fmt.Errorf("fault: unknown outcome %q in @%s record", rec.Outcome, fc.Name)
			}
			res.Trials = append(res.Trials, Injection{
				Instr:        in,
				Instance:     rec.Instance,
				Bit:          rec.Bit,
				Outcome:      o,
				CrashLatency: rec.Latency,
			})
		}
		res.Errs = append(res.Errs, fc.Errs...)
	}
	res.tally()
	return res, nil
}

// outcomeCounts converts a section's Outcome tally to the cache's
// string-keyed form.
func outcomeCounts(counts map[Outcome]int) map[string]int {
	out := make(map[string]int, len(counts))
	for o, n := range counts {
		out[o.String()] = n
	}
	return out
}

// validProfile sanity-checks a cached profile against its key before
// trusting it: right trial count, decodable outcomes, no errored trials.
// Anything off is reported and treated as a miss.
func validProfile(key cache.FuncKey, p *cache.FuncProfile) bool {
	if len(p.Trials) != key.N {
		warnf("cache: profile for @%s has %d trials, key says %d (treating as miss)",
			key.Func, len(p.Trials), key.N)
		return false
	}
	total := 0
	for name, n := range p.Counts {
		if _, ok := outcomeFromName(name); !ok {
			warnf("cache: profile for @%s counts unknown outcome %q (treating as miss)", key.Func, name)
			return false
		}
		total += n
	}
	if total != key.N || p.Counts[Errored.String()] != 0 {
		warnf("cache: profile for @%s tallies %d trials (%d errored), key says %d clean (treating as miss)",
			key.Func, total, p.Counts[Errored.String()], key.N)
		return false
	}
	for _, rec := range p.Trials {
		if _, ok := outcomeFromName(rec.Outcome); !ok {
			warnf("cache: profile for @%s has trial with unknown outcome %q (treating as miss)",
				key.Func, rec.Outcome)
			return false
		}
	}
	return true
}

// CampaignCompositional performs n statistical injections apportioned
// across functions proportionally to their activation counts, consulting
// store (may be nil: run everything) for cached per-function profiles.
// Sections whose key hits replay from cache without executing a single
// trial; sections that miss run live and, when clean (complete, no
// Errored trials), are stored for the next campaign.
//
// Cancelling ctx returns the sections completed so far plus ctx.Err();
// partially-executed sections are never cached.
func (inj *Injector) CampaignCompositional(ctx context.Context, n int, store *cache.Store) (*CompositionalResult, error) {
	if inj.opts.Stratify != nil {
		// Per-function stratified sections would need weighted profiles
		// and a weighted composition path; until that lands, refusing is
		// more honest than silently running the plan-less campaign. The
		// cache key already reserves the stratify field (funcKey), so
		// stratified entries can never collide with plain ones.
		return nil, fmt.Errorf("fault: stratified compositional campaigns are not supported; drop Options.Stratify or run CampaignStratified")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	secs := inj.sections()
	weights := make([]uint64, len(secs))
	for i, sec := range secs {
		weights[i] = sec.weight
	}
	shares := apportion(n, weights)

	res := &CompositionalResult{byFunc: make(map[string]*funcSection, len(secs))}
	for _, sec := range secs {
		res.byFunc[sec.fn.Name] = sec
	}
	span := inj.opts.Trace.Start("campaign.compositional", telemetry.Attrs{
		"module": inj.module.Name, "n": n, "funcs": len(secs),
	})

	var tallies []cache.FuncTally
	var runErr error
	for i, sec := range secs {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		fc := FuncCampaign{
			Name:     sec.fn.Name,
			BodyHash: sec.hash,
			Weight:   sec.weight,
			N:        shares[i],
		}
		key := inj.funcKey(sec, fc.N)
		var profile cache.FuncProfile
		if store != nil && store.Get(key, &profile) && validProfile(key, &profile) {
			fc.Cached = true
			fc.Records = profile.Trials
			fc.Counts = make(map[Outcome]int, len(profile.Counts))
			for name, cnt := range profile.Counts {
				o, _ := outcomeFromName(name)
				fc.Counts[o] = cnt
			}
			res.Hits++
		} else {
			res.Misses++
			specs := inj.sampleSection(sec, fc.N)
			secRes, err := inj.runTrials(ctx, specs, nil)
			fc.Counts = secRes.Counts
			fc.Errs = secRes.Errs
			fc.Records = make([]cache.TrialRec, len(secRes.Trials))
			for j, tr := range secRes.Trials {
				fc.Records[j] = cache.TrialRec{
					Instr:    tr.Instr.ID,
					Instance: tr.Instance,
					Bit:      tr.Bit,
					Outcome:  tr.Outcome.String(),
					Latency:  tr.CrashLatency,
				}
			}
			if err != nil {
				// Keep the completed prefix of this section, skip the rest.
				res.Funcs = append(res.Funcs, fc)
				tallies = append(tallies, cache.FuncTally{
					Func: fc.Name, Weight: fc.Weight, Counts: outcomeCounts(fc.Counts),
				})
				runErr = err
				break
			}
			if store != nil && len(secRes.Trials) == fc.N && secRes.Counts[Errored] == 0 {
				if perr := store.Put(key, cache.FuncProfile{
					Counts: outcomeCounts(fc.Counts),
					Trials: fc.Records,
				}); perr != nil {
					warnf("cache: storing profile for @%s: %v", fc.Name, perr)
				}
			}
		}
		res.Funcs = append(res.Funcs, fc)
		tallies = append(tallies, cache.FuncTally{
			Func: fc.Name, Weight: fc.Weight, Counts: outcomeCounts(fc.Counts),
		})
	}

	composeStart := time.Now()
	res.Composed = cache.Compose(tallies)
	if reg := inj.opts.Metrics; reg != nil {
		reg.Histogram("cache.compose_us").Since(composeStart)
	}
	span.EndWith(telemetry.Attrs{
		"hits": res.Hits, "misses": res.Misses,
		"sdc": res.Composed.SDC, "trials": res.N(),
	})
	return res, runErr
}
