package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func parseTraceLines(t *testing.T, out string) []traceRecord {
	t.Helper()
	var recs []traceRecord
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestTraceEventsAndSpans(t *testing.T) {
	var buf syncBuffer
	tr := NewTrace(&buf)

	tr.Event("trial.errored", Attrs{"index": 3, "attempts": 2})
	sp := tr.Start("campaign", Attrs{"program": "nw", "n": 100})
	time.Sleep(time.Millisecond)
	sp.EndWith(Attrs{"done": 100})
	if err := tr.Err(); err != nil {
		t.Fatalf("trace error: %v", err)
	}

	recs := parseTraceLines(t, buf.String())
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	ev := recs[0]
	if ev.Ev != "event" || ev.Name != "trial.errored" || ev.Attrs["index"] != float64(3) {
		t.Errorf("event record = %+v", ev)
	}
	if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
		t.Errorf("event ts %q: %v", ev.TS, err)
	}
	span := recs[1]
	if span.Ev != "span" || span.Name != "campaign" || span.DurUS < 1000 {
		t.Errorf("span record = %+v", span)
	}
	// EndWith merges without clobbering start attrs.
	if span.Attrs["program"] != "nw" || span.Attrs["done"] != float64(100) {
		t.Errorf("span attrs = %v", span.Attrs)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Event("x", nil)
	sp := tr.Start("y", nil)
	sp.End()
	if err := tr.Err(); err != nil {
		t.Errorf("nil trace Err = %v", err)
	}
}

func TestTraceUnstartedSpanEmitsNothing(t *testing.T) {
	var buf syncBuffer
	tr := NewTrace(&buf)
	_ = tr.Start("abandoned", nil) // never ended
	if buf.String() != "" {
		t.Errorf("abandoned span wrote %q", buf.String())
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errWriteRefused }

var errWriteRefused = &writeRefusedError{}

type writeRefusedError struct{}

func (*writeRefusedError) Error() string { return "write refused" }

// TestTraceWriteErrorIsSticky: after the sink fails, records drop
// silently and Err reports the first failure — tracing never takes a
// campaign down.
func TestTraceWriteErrorIsSticky(t *testing.T) {
	tr := NewTrace(failingWriter{})
	tr.Event("a", nil)
	if tr.Err() == nil {
		t.Fatal("Err() nil after failed write")
	}
	tr.Event("b", nil) // must not panic
}
