package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the HTTP listener started by ServeDebug. It serves
//
//	/debug/vars    — expvar JSON, including the published registry
//	/debug/pprof/  — the standard pprof index (profile, heap, trace, …)
//
// so long campaigns can be profiled and watched without stopping them.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug publishes reg under the expvar name "trident" and serves
// expvar + pprof on addr (e.g. "localhost:6060"; ":0" picks a free
// port — read it back from Addr). The server runs until Close.
//
// The handlers are mounted on a private mux, not http.DefaultServeMux,
// so importing this package never changes the default mux's routes.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg != nil {
		reg.PublishExpvar("trident")
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "trident debug server\n\n/debug/vars\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() {
		// Serve returns ErrServerClosed on Close; other errors mean the
		// debug side-car died, which must not take the campaign with it.
		_ = ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Addr returns the listener's address (useful with ":0"). Safe on a
// nil receiver, like the rest of the package.
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully: the listener closes immediately
// (no new scrapes), and in-flight requests — a pprof profile mid-write,
// a /debug/vars scrape — get up to timeout to finish before the
// remaining connections are cut. Unlike Close it never truncates a
// response mid-body unless the deadline expires, and either way the
// listener is released, never leaked. Safe on a nil receiver (no-op).
func (s *DebugServer) Shutdown(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Handlers outlived the deadline: fall back to a hard close so
		// the listener and connections are released regardless.
		s.srv.Close()
		return err
	}
	return nil
}

// Close shuts the server down immediately, cutting in-flight requests.
// Safe on a nil receiver (no-op).
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
