package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketing pins the bucket layout: bucket i holds values
// with bit length i, so its inclusive upper bound is 2^i - 1.
func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		wantLe int64
	}{
		{0, 0}, // bucket 0
		{1, 1}, // [1,1]
		{2, 3}, // [2,3]
		{3, 3},
		{4, 7},       // [4,7]
		{1023, 1023}, // [512,1023]
		{1024, 2047}, // [1024,2047]
		{1 << 30, (1 << 31) - 1},
	}
	for _, tc := range cases {
		h := newHistogram()
		h.Observe(tc.v)
		s := h.Snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%d): %d buckets, want 1", tc.v, len(s.Buckets))
		}
		if s.Buckets[0].Le != tc.wantLe || s.Buckets[0].N != 1 {
			t.Errorf("Observe(%d): bucket {le:%d n:%d}, want {le:%d n:1}",
				tc.v, s.Buckets[0].Le, s.Buckets[0].N, tc.wantLe)
		}
	}
}

func TestHistogramBucketUpperSaturates(t *testing.T) {
	if got := bucketUpper(histBuckets - 1); got != math.MaxInt64 {
		t.Errorf("final bucket upper = %d, want MaxInt64", got)
	}
	h := newHistogram()
	h.Observe(math.MaxInt64) // must clamp into the final bucket, not index out of range
	s := h.Snapshot()
	if s.Max != math.MaxInt64 || s.Buckets[len(s.Buckets)-1].Le != math.MaxInt64 {
		t.Errorf("MaxInt64 observation snapshot = %+v", s)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{5, 10, 15} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 30 || s.Min != 5 || s.Max != 15 || s.Mean != 10 {
		t.Errorf("snapshot = %+v", s)
	}
	// Buckets must partition the observations: 5→[4,7], 10 and 15→[8,15].
	var total uint64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := newHistogram()
	h.Observe(-100)
	s := h.Snapshot()
	if s.Min != 0 || s.Sum != 0 || s.Buckets[0].Le != 0 {
		t.Errorf("negative observation snapshot = %+v", s)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := newHistogram().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram()
	h.ObserveDuration(1500 * time.Microsecond)
	if s := h.Snapshot(); s.Sum != 1500 {
		t.Errorf("duration sum = %d µs, want 1500", s.Sum)
	}
}

// TestHistogramConcurrent locks in loss-free concurrent observation of
// count, sum and buckets; run under -race by make check.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const goroutines, perG = 8, 5_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(int64(i*perG + j))
			}
		}(i)
	}
	wg.Wait()
	s := h.Snapshot()
	n := int64(goroutines * perG)
	if s.Count != uint64(n) {
		t.Errorf("count = %d, want %d", s.Count, n)
	}
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 0 || s.Max != n-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", s.Min, s.Max, n-1)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
}
