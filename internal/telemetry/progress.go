package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// ProgressMeter renders a single in-place status line (carriage-return
// rewrite, no newline) to a terminal-ish writer, throttled so callers
// can feed it from per-trial callbacks without formatting cost or
// output flooding: between refreshes Update returns without invoking
// the render callback.
//
// All methods are safe for concurrent use and on a nil *ProgressMeter
// (they do nothing).
type ProgressMeter struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	last  time.Time
	width int
	wrote bool
}

// NewProgressMeter returns a meter writing to w at most once per every
// (≤ 0 selects the 100ms default).
func NewProgressMeter(w io.Writer, every time.Duration) *ProgressMeter {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &ProgressMeter{w: w, every: every}
}

// Update renders and writes the line if the refresh interval has
// elapsed since the last write; otherwise it is a cheap no-op. render
// runs (under the meter's lock) only when the line will actually be
// written.
func (m *ProgressMeter) Update(render func() string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.last) < m.every {
		return
	}
	m.write(render())
	m.last = time.Now()
}

// Final forces one last render of the line (regardless of throttling)
// and terminates it with a newline, leaving the terminal ready for
// normal output. A meter that never wrote anything stays silent.
func (m *ProgressMeter) Final(render func() string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.write(render())
	m.finish()
}

// Done terminates the in-place line with a newline if any line was
// written, without re-rendering.
func (m *ProgressMeter) Done() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finish()
}

// write emits "\r<line>", padding with spaces to erase any longer
// previous line. Must hold mu.
func (m *ProgressMeter) write(line string) {
	pad := ""
	if n := m.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(m.w, "\r%s%s", line, pad)
	m.width = len(line)
	m.wrote = true
}

// finish writes the terminating newline. Must hold mu.
func (m *ProgressMeter) finish() {
	if m.wrote {
		fmt.Fprintln(m.w)
		m.wrote = false
		m.width = 0
	}
}

// FormatETA renders a remaining-time estimate ("eta 1m40s") from work
// completed so far; "eta --" until the first unit completes. Estimates
// assume a constant completion rate.
func FormatETA(done, total int, elapsed time.Duration) string {
	if done <= 0 || total <= 0 || done > total {
		return "eta --"
	}
	remain := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
	return "eta " + remain.Round(time.Second).String()
}
