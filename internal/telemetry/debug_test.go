package telemetry

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestDebugServerShutdownGraceful: Shutdown must let an in-flight
// request complete, then release the listener so the port is reusable.
func TestDebugServerShutdownGraceful(t *testing.T) {
	// nil registry: expvar publication is TestServeDebug's concern (the
	// expvar name is claimed process-wide by the first registry).
	ds, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) == 0 {
		t.Fatalf("reading /debug/vars: %v (%d bytes)", err, len(body))
	}

	if err := ds.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener must be released: binding the same address succeeds.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listener leaked after Shutdown: %v", err)
	}
	ln.Close()
	// And new requests must fail.
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("request succeeded after Shutdown")
	}
}

// TestDebugServerShutdownDeadline: a handler outliving the deadline is
// cut off, but the listener is still released — never leaked.
func TestDebugServerShutdownDeadline(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()
	// Hold a connection open with a slow pprof trace (seconds=5).
	started := make(chan struct{})
	go func() {
		close(started)
		resp, err := http.Get("http://" + addr + "/debug/pprof/trace?seconds=5")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	time.Sleep(100 * time.Millisecond)
	if err := ds.Shutdown(200 * time.Millisecond); err == nil {
		t.Log("shutdown completed inside deadline (slow handler finished early)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listener leaked after deadline shutdown: %v", err)
	}
	ln.Close()
}

// TestDebugServerNilSafe: a nil *DebugServer is inert, matching the
// package's nil-receiver convention.
func TestDebugServerNilSafe(t *testing.T) {
	var ds *DebugServer
	if got := ds.Addr(); got != "" {
		t.Errorf("nil Addr() = %q", got)
	}
	if err := ds.Shutdown(time.Second); err != nil {
		t.Errorf("nil Shutdown() = %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Errorf("nil Close() = %v", err)
	}
}
