package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential histogram buckets. Bucket i
// holds values whose bit length is i, i.e. the range [2^(i-1), 2^i).
// With microsecond observations, 40 buckets span sub-microsecond to
// ~6.4 days, which covers everything from a single trial to a
// multi-day campaign.
const histBuckets = 40

// Histogram is a lock-free histogram over non-negative int64 values
// with exponential (power-of-two) buckets, plus exact count, sum, min
// and max. Use one value unit per histogram and encode it in the metric
// name ("fi.trial_us" observes microseconds).
//
// Observe is wait-free apart from min/max compare-and-swap loops and
// performs no allocation, so it is safe to call from every campaign
// worker. Construct histograms through Registry.Histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a value to its bucket: the value's bit length,
// clamped to the last bucket. Zero lands in bucket 0.
func bucketIndex(v int64) int {
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i ("le" in
// the snapshot): 2^i - 1, saturating at MaxInt64 for the final bucket.
func bucketUpper(i int) int64 {
	if i >= 63 || i == histBuckets-1 {
		return math.MaxInt64
	}
	return (int64(1) << uint(i)) - 1
}

// Observe records one value. Negative values are clamped to zero (they
// only arise from clock anomalies when timing with a non-monotonic
// source).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in microseconds — the convention
// for every *_us histogram.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Since records the time elapsed from start, in microseconds.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramBucket is one non-empty bucket of a histogram snapshot: N
// observations with value ≤ Le (and greater than the previous bucket's
// Le).
type HistogramBucket struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is a point-in-time distribution summary. Only
// non-empty buckets are exported.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    float64           `json:"mean"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram. With observations racing the
// capture the per-field values may lag each other by a few
// observations; they are exact once recording has stopped.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: bucketUpper(i), N: n})
		}
	}
	return s
}
