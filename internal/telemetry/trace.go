package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attrs carries the structured payload of a trace record. Values must
// be JSON-marshalable; keep them small (identifiers and numbers, not
// dumps).
type Attrs map[string]any

// Trace is a JSONL event sink: every Event and completed Span is one
// JSON object on its own line, in completion order. The format is
// append-only and line-oriented so a live campaign's trace can be
// followed with tail -f and post-processed with jq.
//
// Record shape:
//
//	{"ts":"2026-08-06T10:00:00.000000Z","ev":"event","name":"trial.errored","attrs":{...}}
//	{"ts":"...","ev":"span","name":"campaign","dur_us":8123456,"attrs":{...}}
//
// A span's ts is its start time and dur_us its wall-clock duration;
// records appear when spans end, so a parent span follows its children
// in the file.
//
// All methods are safe for concurrent use, and safe on a nil *Trace
// (they do nothing) — nil is the conventional "tracing disabled" value,
// mirroring nil *Registry.
type Trace struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTrace returns a trace writing JSONL records to w.
func NewTrace(w io.Writer) *Trace { return &Trace{w: w} }

// traceRecord is the JSONL wire form of one event or span.
type traceRecord struct {
	TS    string `json:"ts"`
	Ev    string `json:"ev"`
	Name  string `json:"name"`
	DurUS int64  `json:"dur_us,omitempty"`
	Attrs Attrs  `json:"attrs,omitempty"`
}

func (t *Trace) write(rec traceRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.err = err
		return
	}
	data = append(data, '\n')
	if _, err := t.w.Write(data); err != nil {
		t.err = err
	}
}

// Event emits one instantaneous record. attrs may be nil.
func (t *Trace) Event(name string, attrs Attrs) {
	if t == nil {
		return
	}
	t.write(traceRecord{
		TS:    time.Now().UTC().Format(time.RFC3339Nano),
		Ev:    "event",
		Name:  name,
		Attrs: attrs,
	})
}

// Err returns the first write or marshal error, after which the trace
// drops records silently (observability must never fail the campaign).
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is an in-progress timed operation started by Trace.Start. End
// (or EndWith) emits its record; a span that is never ended emits
// nothing.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	attrs Attrs
}

// Start begins a span. attrs may be nil; more can be attached at
// EndWith. On a nil *Trace it returns nil, and ending a nil *Span is a
// no-op, so call sites need no conditionals.
func (t *Trace) Start(name string, attrs Attrs) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now(), attrs: attrs}
}

// End emits the span's record with its wall-clock duration.
func (s *Span) End() { s.EndWith(nil) }

// EndWith emits the span's record, merging extra into the span's
// start-time attrs (extra wins on key collisions).
func (s *Span) EndWith(extra Attrs) {
	if s == nil {
		return
	}
	attrs := s.attrs
	if len(extra) > 0 {
		attrs = make(Attrs, len(s.attrs)+len(extra))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		for k, v := range extra {
			attrs[k] = v
		}
	}
	dur := time.Since(s.start).Microseconds()
	if dur < 1 {
		// Sub-microsecond spans still mark their existence; dur_us is
		// omitempty and a zero would read as a dropped field.
		dur = 1
	}
	s.t.write(traceRecord{
		TS:    s.start.UTC().Format(time.RFC3339Nano),
		Ev:    "span",
		Name:  s.name,
		DurUS: dur,
		Attrs: attrs,
	})
}
