package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent locks in loss-free concurrent increments; run
// under -race by make check.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("test.hits")
			for j := 0; j < perG; j++ {
				c.Inc()
			}
			reg.Counter("test.batch").Add(3)
		}()
	}
	wg.Wait()
	if got := reg.Counter("test.hits").Load(); got != goroutines*perG {
		t.Errorf("hits = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Counter("test.batch").Load(); got != goroutines*3 {
		t.Errorf("batch = %d, want %d", got, goroutines*3)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test.inflight")
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Errorf("gauge = %d, want -7", got)
	}
}

func TestRegistryGetOrCreateReturnsSameMetric(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("Counter did not return the same instance")
	}
	if reg.Gauge("a") != reg.Gauge("a") {
		t.Error("Gauge did not return the same instance")
	}
	if reg.Histogram("a") != reg.Histogram("a") {
		t.Error("Histogram did not return the same instance")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c.one").Add(42)
	reg.Gauge("g.one").Set(-3)
	reg.Histogram("h.one").Observe(100)
	reg.Histogram("h.one").Observe(3000)

	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if snap.Counters["c.one"] != 42 {
		t.Errorf("counter c.one = %d, want 42", snap.Counters["c.one"])
	}
	if snap.Gauges["g.one"] != -3 {
		t.Errorf("gauge g.one = %d, want -3", snap.Gauges["g.one"])
	}
	h := snap.Histograms["h.one"]
	if h.Count != 2 || h.Sum != 3100 || h.Min != 100 || h.Max != 3000 {
		t.Errorf("histogram = %+v", h)
	}
	want := []string{"c.one", "g.one", "h.one"}
	got := reg.Names()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug.test.counter").Add(7)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}

	if vars := get("/debug/vars"); !strings.Contains(vars, "debug.test.counter") {
		t.Errorf("/debug/vars does not expose the registry: %.200s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected: %.200s", idx)
	}
}

func TestProgressMeterThrottlesAndFinishes(t *testing.T) {
	var buf syncBuffer
	m := NewProgressMeter(&buf, time.Hour) // only the first Update passes the throttle
	renders := 0
	render := func() string { renders++; return fmt.Sprintf("line %d", renders) }
	m.Update(render)
	m.Update(render)
	m.Update(render)
	if renders != 1 {
		t.Errorf("render ran %d times, want 1 (throttled)", renders)
	}
	m.Final(func() string { return "done" })
	out := buf.String()
	if !strings.Contains(out, "\rline 1") || !strings.Contains(out, "\rdone") {
		t.Errorf("meter output = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Final did not terminate the line: %q", out)
	}
	// "done" is shorter than "line 1": the rewrite must blank the tail.
	if !strings.Contains(out, "\rdone  ") {
		t.Errorf("shorter line not padded to erase the previous one: %q", out)
	}
}

func TestProgressMeterNilAndSilent(t *testing.T) {
	var m *ProgressMeter
	m.Update(func() string { t.Error("nil meter rendered"); return "" })
	m.Done() // must not panic

	var buf syncBuffer
	m2 := NewProgressMeter(&buf, 0)
	m2.Done() // never wrote → stays silent
	if buf.String() != "" {
		t.Errorf("silent meter wrote %q", buf.String())
	}
}

func TestFormatETA(t *testing.T) {
	if got := FormatETA(0, 100, time.Second); got != "eta --" {
		t.Errorf("ETA with no progress = %q", got)
	}
	if got := FormatETA(50, 100, 30*time.Second); got != "eta 30s" {
		t.Errorf("ETA at half = %q, want eta 30s", got)
	}
	if got := FormatETA(100, 100, time.Minute); got != "eta 0s" {
		t.Errorf("ETA when done = %q, want eta 0s", got)
	}
}

// syncBuffer is a mutex-guarded strings.Builder, since meters may be
// fed concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
