// Package telemetry is the repository's dependency-free observability
// layer: atomic counters and gauges, bucketed latency histograms, a
// JSONL event/span trace sink, a throttled terminal progress meter, and
// an optional HTTP debug server exposing expvar and pprof.
//
// The long-running, failure-prone part of the reproduction is the
// fault-injection campaign engine (thousands of interpreter runs per
// benchmark); telemetry makes those campaigns auditable while they run
// instead of opaque until they finish. The instrumented layers are
// internal/interp (runs, dynamic instructions, snapshot capture/restore
// counts and latencies, trap/hang outcomes), internal/fault (per-trial
// outcome tallies, retries, worker utilization, golden-run vs replay
// split) and internal/experiments (per-benchmark campaign spans); the
// cmd binaries export the data as a live stderr progress line, a
// -metrics-out JSON snapshot, a -trace-out JSONL event log, and a
// -debug-addr HTTP listener. OBSERVABILITY.md documents every metric
// name, its units, and how to read a metrics.json.
//
// Design constraints, in order: (1) zero overhead when disabled — every
// instrumented layer treats a nil *Registry / *Trace as "off" and all
// instrumentation sits at run and trial boundaries, never on the
// interpreter's per-instruction dispatch path; (2) safe under
// concurrency — counters, gauges and histograms are lock-free atomics,
// usable from every campaign worker; (3) standard library only.
//
// Metric names are dotted lowercase paths ("fi.outcome.sdc"); values
// carrying a unit end in an underscore-unit suffix ("_us" =
// microseconds, "_bytes").
package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically non-decreasing atomic counter. The zero
// value is ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight trials). The
// zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Lookups are get-or-create
// and safe for concurrent use; instrumented code typically resolves its
// metrics once per run or campaign, not per operation. A nil *Registry
// is the conventional "telemetry disabled" value — instrumented layers
// must check for nil before resolving metrics (Registry methods
// themselves require a non-nil receiver).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	publishOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the cmd binaries instrument and
// export. Library code never uses it implicitly: internal packages only
// record into the registry handed to them via their Options/Config.
var Default = NewRegistry()

// Counter returns the counter with the given name, creating it at zero
// on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it at zero on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it
// empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics, shaped for
// JSON export (-metrics-out) and expvar. Maps are complete copies; the
// snapshot does not change when the registry does.
type Snapshot struct {
	// TakenAt is the capture time.
	TakenAt time.Time `json:"taken_at"`
	// Counters maps counter name to count.
	Counters map[string]uint64 `json:"counters"`
	// Gauges maps gauge name to instantaneous value.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps histogram name to its distribution summary.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values. Metrics recorded
// concurrently with the capture may or may not be included; totals are
// exact once the instrumented work has completed.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry's snapshot as indented JSON — the
// -metrics-out format.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Names returns every registered metric name, sorted — a debugging and
// doc-generation aid.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// publishedVars guards against double expvar.Publish (which panics)
// when several registries — or repeated calls — claim the same name.
var publishedVars sync.Map

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (served at /debug/vars by ServeDebug). Repeated calls,
// even across registries, are safe: the first registry to claim a name
// wins and later calls are no-ops.
func (r *Registry) PublishExpvar(name string) {
	r.publishOnce.Do(func() {
		if _, claimed := publishedVars.LoadOrStore(name, r); claimed {
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
