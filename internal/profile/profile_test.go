package profile

import (
	"math"
	"testing"

	"trident/internal/ir"
)

// twoLoops is the paper's running example shape (Fig. 4): a first loop
// stores an array, a second loop loads it and conditionally prints.
const twoLoops = `
module "twoloops"
global @arr i32 x 16
func @main() void {
entry:
  br wloop
wloop:
  %i = phi i32 [i32 0, entry], [%inc, wloop]
  %v = mul %i, i32 3
  %p = gep i32, @arr, %i
  store %v, %p
  %inc = add %i, i32 1
  %c = icmp slt %inc, i32 16
  condbr %c, wloop, rentry
rentry:
  br rloop
rloop:
  %j = phi i32 [i32 0, rentry], [%jinc, rjoin]
  %q = gep i32, @arr, %j
  %x = load i32, %q
  %big = icmp sgt %x, i32 20
  condbr %big, emit, rjoin
emit:
  print %x
  br rjoin
rjoin:
  %jinc = add %j, i32 1
  %jc = icmp slt %jinc, i32 16
  condbr %jc, rloop, done
done:
  ret
}
`

func collect(t testing.TB, src string) *Profile {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Collect(m, Options{})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return p
}

func findInstr(t testing.TB, p *Profile, fn, block string, op ir.Opcode) *ir.Instr {
	t.Helper()
	var found *ir.Instr
	for _, in := range p.Module.Func(fn).Block(block).Instrs {
		if in.Op == op {
			found = in
			break
		}
	}
	if found == nil {
		t.Fatalf("no %s in %s:%s", op, fn, block)
	}
	return found
}

func TestExecCounts(t *testing.T) {
	p := collect(t, twoLoops)
	store := findInstr(t, p, "main", "wloop", ir.OpStore)
	load := findInstr(t, p, "main", "rloop", ir.OpLoad)
	if p.ExecCount[store] != 16 {
		t.Errorf("store count = %d, want 16", p.ExecCount[store])
	}
	if p.ExecCount[load] != 16 {
		t.Errorf("load count = %d, want 16", p.ExecCount[load])
	}
	print := findInstr(t, p, "main", "emit", ir.OpPrint)
	// x = 3j > 20 for j in 7..15 -> 9 prints.
	if p.ExecCount[print] != 9 {
		t.Errorf("print count = %d, want 9", p.ExecCount[print])
	}
}

func TestBranchProbabilities(t *testing.T) {
	p := collect(t, twoLoops)
	wbr := p.Module.Func("main").Block("wloop").Terminator()
	pt, ok := p.BranchProb(wbr)
	if !ok {
		t.Fatal("write-loop branch not profiled")
	}
	// 16 executions, 15 take the back edge (true).
	if math.Abs(pt-15.0/16) > 1e-12 {
		t.Errorf("wloop branch prob = %v, want 15/16", pt)
	}

	bigBr := p.Module.Func("main").Block("rloop").Terminator()
	pt, ok = p.BranchProb(bigBr)
	if !ok {
		t.Fatal("emit branch not profiled")
	}
	if math.Abs(pt-9.0/16) > 1e-12 {
		t.Errorf("emit branch prob = %v, want 9/16", pt)
	}
}

func TestEdgeProb(t *testing.T) {
	p := collect(t, twoLoops)
	rloop := p.Module.Func("main").Block("rloop")
	pTrue := p.EdgeProb(rloop, 0)
	pFalse := p.EdgeProb(rloop, 1)
	if math.Abs(pTrue+pFalse-1) > 1e-12 {
		t.Errorf("edge probs do not sum to 1: %v + %v", pTrue, pFalse)
	}
	// Unconditional block reports 1.
	entry := p.Module.Func("main").Block("entry")
	if p.EdgeProb(entry, 0) != 1 {
		t.Error("unconditional edge prob should be 1")
	}
}

func TestMemGraphAggregation(t *testing.T) {
	p := collect(t, twoLoops)
	store := findInstr(t, p, "main", "wloop", ir.OpStore)
	load := findInstr(t, p, "main", "rloop", ir.OpLoad)

	edges := p.MemGraph[store]
	if len(edges) != 1 {
		t.Fatalf("store has %d edges, want 1 (aggregated)", len(edges))
	}
	e := edges[0]
	if e.Load != load {
		t.Error("edge load mismatch")
	}
	if e.DynDeps != 16 {
		t.Errorf("edge DynDeps = %d, want 16", e.DynDeps)
	}
	if e.DistinctStores != 16 {
		t.Errorf("edge DistinctStores = %d, want 16", e.DistinctStores)
	}
	if got := p.StoreReadProb(e); got != 1 {
		t.Errorf("StoreReadProb = %v, want 1 (every store read once)", got)
	}
	if p.DynMemDeps != 16 {
		t.Errorf("DynMemDeps = %d, want 16", p.DynMemDeps)
	}
	// 16 dynamic deps folded into 1 static edge: pruning 15/16.
	if math.Abs(p.PruningRatio()-15.0/16) > 1e-12 {
		t.Errorf("pruning ratio = %v, want 15/16", p.PruningRatio())
	}
	if p.NumStaticMemEdges() != 1 {
		t.Errorf("static edges = %d", p.NumStaticMemEdges())
	}
}

func TestCrashSensitivity(t *testing.T) {
	p := collect(t, twoLoops)
	load := findInstr(t, p, "main", "rloop", ir.OpLoad)
	s := p.CrashProb(load)
	// Most of the 64 address bits point far outside the small footprint.
	if s < 0.5 || s > 1 {
		t.Errorf("crash sensitivity = %v, want in [0.5, 1]", s)
	}
	// The footprint fallback is also high for a small program.
	if f := p.FootprintCrashProb(); f < 0.5 || f > 1 {
		t.Errorf("footprint crash prob = %v", f)
	}
}

func TestSamplesCollected(t *testing.T) {
	p := collect(t, twoLoops)
	cmp := findInstr(t, p, "main", "rloop", ir.OpICmp)
	samples := p.Samples[cmp]
	if len(samples) == 0 {
		t.Fatal("no operand samples for comparison")
	}
	if len(samples) > defaultValueSamples {
		t.Errorf("sample reservoir overflowed: %d", len(samples))
	}
	// RHS of "%x > 20" is always the constant 20.
	for _, s := range samples {
		if s.RHS != 20 {
			t.Errorf("sample RHS = %d, want 20", s.RHS)
		}
	}
}

func TestReservoirBounded(t *testing.T) {
	m, err := ir.Parse(`
module "many"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 10000
  condbr %c, loop, done
done:
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Collect(m, Options{ValueSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	cmp := findInstr(t, p, "main", "loop", ir.OpICmp)
	if len(p.Samples[cmp]) != 8 {
		t.Errorf("reservoir size = %d, want 8", len(p.Samples[cmp]))
	}
	if p.ExecCount[cmp] != 10000 {
		t.Errorf("cmp count = %d", p.ExecCount[cmp])
	}
}

func TestProfileDeterminism(t *testing.T) {
	p1 := collect(t, twoLoops)
	p2 := collect(t, twoLoops)
	if p1.TotalDynResults != p2.TotalDynResults {
		t.Error("dynamic result counts differ between runs")
	}
	if p1.PruningRatio() != p2.PruningRatio() {
		t.Error("pruning ratios differ between runs")
	}
	s1 := findInstr(t, p1, "main", "rloop", ir.OpICmp)
	s2 := findInstr(t, p2, "main", "rloop", ir.OpICmp)
	a, b := p1.Samples[s1], p2.Samples[s2]
	if len(a) != len(b) {
		t.Fatal("sample counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("samples differ between identical runs")
		}
	}
}

func TestCollectRejectsCrashingProgram(t *testing.T) {
	m, err := ir.Parse(`
module "crash"
global @a i32 x 1
func @main() void {
entry:
  %p = gep i32, @a, i32 99
  %v = load i32, %p
  print %v
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(m, Options{}); err == nil {
		t.Error("Collect should reject a crashing golden run")
	}
}

func TestGoldenCaptured(t *testing.T) {
	p := collect(t, twoLoops)
	if p.Golden == nil || p.Golden.OutputLines != 9 {
		t.Errorf("golden output lines = %+v", p.Golden)
	}
	if p.TotalDynResults == 0 || p.PeakMemBytes == 0 {
		t.Error("profile missing totals")
	}
}
