// Package profile implements the profiling phase of TRIDENT (paper §IV-A):
// a single instrumented execution of the program that gathers per-
// instruction dynamic counts, branch probabilities, operand-value samples
// (for deriving fs masking tuples), address-corruption crash sensitivity,
// and the pruned static memory-dependence graph used by fm. DESIGN.md §3
// specifies the sub-models each profile ingredient feeds.
package profile

import (
	"fmt"

	"trident/internal/interp"
	"trident/internal/ir"
)

// Options configure profiling.
type Options struct {
	// MaxDynInstrs bounds the profiled execution (0 = interpreter default).
	MaxDynInstrs uint64
	// ValueSamples is the reservoir size per instruction for operand and
	// address sampling (0 = default 64).
	ValueSamples int
	// Seed drives the deterministic reservoir sampler.
	Seed uint64
}

const defaultValueSamples = 64

// OperandSample is one observed pair of operand bit patterns.
type OperandSample struct {
	LHS, RHS uint64
}

// MemEdge is one static memory-dependence edge: dynamic instances of Store
// were read by dynamic instances of Load.
type MemEdge struct {
	Store *ir.Instr
	Load  *ir.Instr
	// DynDeps is the number of dynamic load executions that read a value
	// written by Store.
	DynDeps uint64
	// DistinctStores approximates the number of distinct dynamic store
	// instances of Store that Load read at least once.
	DistinctStores uint64
}

// Profile is the result of the profiling phase.
type Profile struct {
	// Module is the profiled module.
	Module *ir.Module
	// Golden is the fault-free execution result (output, counts).
	Golden *interp.Result

	// ExecCount maps each static instruction to its dynamic execution
	// count. Branches, stores and prints are included.
	ExecCount map[*ir.Instr]uint64
	// BranchTaken maps each conditional branch to [trueCount, falseCount].
	BranchTaken map[*ir.Instr][2]uint64
	// Samples holds reservoir-sampled operand values for instructions
	// whose fs tuple depends on operand values (comparisons, logic ops,
	// shifts, divisions).
	Samples map[*ir.Instr][]OperandSample
	// CrashSensitivity maps each load/store to the profiled probability
	// that flipping one uniformly random bit of its address traps, given
	// the live memory map at access time (paper §IV-C).
	CrashSensitivity map[*ir.Instr]float64

	// MemGraph maps each static store to its outgoing dependence edges.
	// Aggregating dynamic dependencies into static edges is the paper's
	// symmetric-loop pruning (§IV-E).
	MemGraph map[*ir.Instr][]*MemEdge
	// DynMemDeps is the total number of dynamic store→load dependencies
	// observed before pruning.
	DynMemDeps uint64

	// TotalDynResults is the number of dynamic register-writing
	// executions — the fault-activation sample space.
	TotalDynResults uint64
	// PeakMemBytes is the peak allocated memory (the /proc profile).
	PeakMemBytes uint64
}

// rng is a small deterministic xorshift64* generator for reservoir
// sampling; profiling must be reproducible run to run.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a pseudo-random int in [0, n).
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// collector accumulates profile state during execution.
type collector struct {
	prof     *Profile
	rnd      *rng
	capacity int

	sampleSeen map[*ir.Instr]uint64 // observations per sampled instruction
	crashSeen  map[*ir.Instr]uint64 // address observations per mem instruction
	crashDone  map[*ir.Instr]uint64 // observations actually measured
	crashSum   map[*ir.Instr]float64

	// lastWriter maps the first byte address of a stored element to the
	// writing static store and its dynamic sequence number. Loads are
	// matched by their first byte address; the IR programs in this
	// repository access elements at matching granularity.
	lastWriter map[uint64]writerRecord
	storeSeq   map[*ir.Instr]uint64 // per-store dynamic sequence
	edgeIndex  map[*ir.Instr]map[*ir.Instr]*MemEdge
	lastRead   map[*ir.Instr]map[*ir.Instr]uint64 // load -> store -> last seq read
}

type writerRecord struct {
	store *ir.Instr
	seq   uint64
}

// Collect profiles one execution of m and returns the profile. The
// execution must complete without crashing or hanging: the profile is the
// fault-free baseline.
func Collect(m *ir.Module, opts Options) (*Profile, error) {
	capacity := opts.ValueSamples
	if capacity <= 0 {
		capacity = defaultValueSamples
	}
	prof := &Profile{
		Module:           m,
		ExecCount:        make(map[*ir.Instr]uint64),
		BranchTaken:      make(map[*ir.Instr][2]uint64),
		Samples:          make(map[*ir.Instr][]OperandSample),
		CrashSensitivity: make(map[*ir.Instr]float64),
		MemGraph:         make(map[*ir.Instr][]*MemEdge),
	}
	col := &collector{
		prof:       prof,
		rnd:        newRNG(opts.Seed),
		capacity:   capacity,
		sampleSeen: make(map[*ir.Instr]uint64),
		crashSeen:  make(map[*ir.Instr]uint64),
		crashDone:  make(map[*ir.Instr]uint64),
		crashSum:   make(map[*ir.Instr]float64),
		lastWriter: make(map[uint64]writerRecord),
		storeSeq:   make(map[*ir.Instr]uint64),
		edgeIndex:  make(map[*ir.Instr]map[*ir.Instr]*MemEdge),
		lastRead:   make(map[*ir.Instr]map[*ir.Instr]uint64),
	}

	res, err := interp.Run(m, interp.Options{
		MaxDynInstrs: opts.MaxDynInstrs,
		Hooks: interp.Hooks{
			OnResult: col.onResult,
			OnBinary: col.onBinary,
			OnBranch: col.onBranch,
			OnLoad:   col.onLoad,
			OnStore:  col.onStore,
			OnPrint:  col.onPrint,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if res.Outcome != interp.OutcomeOK {
		return nil, fmt.Errorf("profile: fault-free run ended in %s", res.Outcome)
	}

	prof.Golden = res
	prof.TotalDynResults = res.DynResults
	prof.PeakMemBytes = res.PeakMemBytes
	for in, sum := range col.crashSum {
		prof.CrashSensitivity[in] = sum / float64(col.crashDone[in])
	}
	return prof, nil
}

// wantsSamples reports whether the fs tuple of the opcode depends on
// profiled operand values.
func wantsSamples(in *ir.Instr) bool {
	switch {
	case in.Op.IsCmp():
		return true
	case in.Op == ir.OpAnd, in.Op == ir.OpOr, in.Op == ir.OpXor,
		in.Op == ir.OpShl, in.Op == ir.OpLShr, in.Op == ir.OpAShr,
		in.Op == ir.OpSDiv, in.Op == ir.OpUDiv,
		in.Op == ir.OpSRem, in.Op == ir.OpURem, in.Op == ir.OpMul:
		return true
	case in.Op == ir.OpFAdd, in.Op == ir.OpFSub,
		in.Op == ir.OpFMul, in.Op == ir.OpFDiv:
		// Floating-point operations mask low mantissa bits through
		// absorption (adding magnitudes of different scale) and rounding;
		// the empirical tuples capture this, which the paper lists as an
		// unmodeled inaccuracy source (§VII-A).
		return true
	case in.Op == ir.OpIntrinsic:
		// Clamps (fmin/fmax) mask losing operands; sqrt/exp/log compress
		// mantissa differences.
		return true
	default:
		return false
	}
}

func (c *collector) onResult(_ *interp.Context, in *ir.Instr, bits uint64) uint64 {
	c.prof.ExecCount[in]++
	return bits
}

// onBinary reservoir-samples operand values for instructions whose fs
// tuple depends on them.
func (c *collector) onBinary(_ *interp.Context, in *ir.Instr, lhs, rhs uint64) {
	if !wantsSamples(in) {
		return
	}
	c.sampleSeen[in]++
	n := c.sampleSeen[in]
	samples := c.prof.Samples[in]
	switch {
	case len(samples) < c.capacity:
		c.prof.Samples[in] = append(samples, OperandSample{LHS: lhs, RHS: rhs})
	default:
		// Classic reservoir replacement keeps a uniform sample of the
		// stream, so value phases later in execution are represented.
		if k := c.rnd.intn(n); k < uint64(c.capacity) {
			samples[k] = OperandSample{LHS: lhs, RHS: rhs}
		}
	}
}

func (c *collector) onBranch(_ *interp.Context, in *ir.Instr, taken int) {
	c.prof.ExecCount[in]++
	if in.Op == ir.OpCondBr {
		bt := c.prof.BranchTaken[in]
		bt[taken]++
		c.prof.BranchTaken[in] = bt
	}
}

func (c *collector) onPrint(_ *interp.Context, in *ir.Instr, _ string) {
	c.prof.ExecCount[in]++
}

func (c *collector) onLoad(ctx *interp.Context, in *ir.Instr, addr, _ uint64) {
	c.observeAddress(ctx, in, addr)
	w, ok := c.lastWriter[addr]
	if !ok {
		return
	}
	c.prof.DynMemDeps++
	byStore := c.edgeIndex[w.store]
	if byStore == nil {
		byStore = make(map[*ir.Instr]*MemEdge)
		c.edgeIndex[w.store] = byStore
	}
	e := byStore[in]
	if e == nil {
		e = &MemEdge{Store: w.store, Load: in}
		byStore[in] = e
		c.prof.MemGraph[w.store] = append(c.prof.MemGraph[w.store], e)
	}
	e.DynDeps++
	lr := c.lastRead[in]
	if lr == nil {
		lr = make(map[*ir.Instr]uint64)
		c.lastRead[in] = lr
	}
	if last, seen := lr[w.store]; !seen || last != w.seq {
		e.DistinctStores++
		lr[w.store] = w.seq
	}
}

func (c *collector) onStore(ctx *interp.Context, in *ir.Instr, addr, _ uint64) {
	c.prof.ExecCount[in]++
	c.observeAddress(ctx, in, addr)
	c.storeSeq[in]++
	c.lastWriter[addr] = writerRecord{store: in, seq: c.storeSeq[in]}
}

// observeAddress reservoir-samples address-corruption crash sensitivity:
// the fraction of single-bit flips of addr that leave every live segment,
// evaluated against the memory map at access time.
func (c *collector) observeAddress(ctx *interp.Context, in *ir.Instr, addr uint64) {
	c.crashSeen[in]++
	n := c.crashSeen[in]
	if n > uint64(c.capacity) {
		// Reservoir: keep each observation with probability capacity/n by
		// replacing the running average contribution; for a streaming mean
		// it is simpler and adequate to subsample 1-in-k after warmup.
		if c.rnd.intn(n) >= uint64(c.capacity) {
			return
		}
	}
	c.crashDone[in]++
	size := uint64(in.Elem.Bytes())
	invalid := 0
	for bit := 0; bit < 64; bit++ {
		if !ctx.Mem.Valid(addr^(1<<uint(bit)), size) {
			invalid++
		}
	}
	c.crashSum[in] += float64(invalid) / 64
}

// FuncWeights returns each function's activation count: the sum of
// dynamic register-write counts (result-producing executions only, the
// fault package's activation space) over the function's instructions.
// These are the weights the compositional campaign cache uses to stitch
// per-function profiles into whole-program rates.
func (p *Profile) FuncWeights() map[string]uint64 {
	w := make(map[string]uint64)
	for in, n := range p.ExecCount {
		if in.HasResult() {
			w[in.Block.Fn.Name] += n
		}
	}
	return w
}

// BranchProb returns the profiled probability that the conditional branch
// takes its true edge; ok is false when the branch never executed.
func (p *Profile) BranchProb(br *ir.Instr) (pTrue float64, ok bool) {
	bt, found := p.BranchTaken[br]
	total := bt[0] + bt[1]
	if !found || total == 0 {
		return 0, false
	}
	return float64(bt[0]) / float64(total), true
}

// EdgeProb is an analysis.EdgeProbFunc backed by the branch profile.
// Unprofiled branches split evenly.
func (p *Profile) EdgeProb(b *ir.Block, succIdx int) float64 {
	t := b.Terminator()
	if t == nil || t.Op != ir.OpCondBr {
		return 1
	}
	pTrue, ok := p.BranchProb(t)
	if !ok {
		return 0.5
	}
	if succIdx == 0 {
		return pTrue
	}
	return 1 - pTrue
}

// CrashProb returns the profiled probability that a single random bit flip
// in the address feeding the given load/store causes a trap. Unprofiled
// instructions report the footprint-based estimate.
func (p *Profile) CrashProb(in *ir.Instr) float64 {
	if s, ok := p.CrashSensitivity[in]; ok {
		return s
	}
	return p.FootprintCrashProb()
}

// FootprintCrashProb estimates address-corruption crash probability from
// the peak memory footprint alone: flipping address bit k keeps the access
// near valid memory only when k is below log2(footprint). This mirrors the
// paper's /proc-based approximation and serves instructions that never
// executed during profiling.
func (p *Profile) FootprintCrashProb() float64 {
	if p.PeakMemBytes == 0 {
		return 1
	}
	bits := 0
	for v := p.PeakMemBytes; v > 1; v >>= 1 {
		bits++
	}
	safe := float64(bits)
	if safe > 64 {
		safe = 64
	}
	return (64 - safe) / 64
}

// StoreReadProb returns, for a static store S and one of its dependence
// edges to load L, the probability that a given dynamic instance of S is
// read by L: distinct read instances over dynamic executions of S.
func (p *Profile) StoreReadProb(e *MemEdge) float64 {
	execs := p.ExecCount[e.Store]
	if execs == 0 {
		return 0
	}
	pr := float64(e.DistinctStores) / float64(execs)
	if pr > 1 {
		pr = 1
	}
	return pr
}

// PruningRatio returns the fraction of dynamic memory dependencies removed
// by static aggregation — the paper reports an average of 61.87% (§V-C).
func (p *Profile) PruningRatio() float64 {
	if p.DynMemDeps == 0 {
		return 0
	}
	staticEdges := uint64(0)
	for _, edges := range p.MemGraph {
		staticEdges += uint64(len(edges))
	}
	return 1 - float64(staticEdges)/float64(p.DynMemDeps)
}

// NumStaticMemEdges returns the number of static dependence edges.
func (p *Profile) NumStaticMemEdges() int {
	n := 0
	for _, edges := range p.MemGraph {
		n += len(edges)
	}
	return n
}
