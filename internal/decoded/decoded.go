// Package decoded lowers IR modules ahead of time into flat,
// cache-friendly instruction streams for the interpreter's decoded
// execution engine (interp.EngineDecoded).
//
// The production interpreter's legacy loop re-decodes every instruction
// on every dynamic execution: each operand costs an interface
// type-switch, every global operand costs a map lookup, phi prologues
// re-scan incoming lists against the predecessor block, and dispatch
// runs a nested opcode switch. A fault-injection campaign executes the
// same static instructions millions of times, so that per-dispatch
// decode work dominates trial time. Compile performs the decode once
// per module instead:
//
//   - Operands become (kind, index | inline constant) slots — resolving
//     one at runtime is a four-way switch over a small struct, with
//     register/parameter/global indices pre-extracted. Globals use
//     dense module slots (ir.Global.Slot), not pointer-keyed maps.
//   - Every instruction carries a Step classification so the hot loop
//     dispatches through a single flat switch, with opcode-specific
//     constants (alloca sizes, gep element strides, operand widths,
//     comparison predicates) precomputed.
//   - Phi clusters are pre-grouped per (block, predecessor) edge into
//     straight move lists: block entry evaluates the edge's sources
//     into frame-resident scratch and commits them in order, with no
//     incoming-list scan.
//   - Branch targets are pre-resolved to decoded block indices, and
//     each branch carries the edge index to apply in its target.
//
// Compile is total: it never fails and never panics. Constructs the
// engine cannot execute (which ir.Verify rejects, but execution must
// tolerate) are lowered to runtime-error markers — StepInvalid
// instructions, Edge.Bad phis, invalid-operand slots — that reproduce
// the legacy engine's behavior when (and only when) they are actually
// reached.
//
// A Program is immutable after Compile and safe for concurrent use by
// any number of executions; it holds no run state. Campaign engines
// compile once per module and share the Program across all trials.
// DESIGN.md §5f covers the engine contract; ANALYSIS.md §3 places this
// lowering within the static-analysis surface.
package decoded

import "trident/internal/ir"

// Kind classifies an operand slot.
type Kind uint8

// Operand slot kinds.
const (
	// KindConst is an inline constant; the bit pattern is in Operand.Bits.
	KindConst Kind = iota
	// KindReg reads the frame register Operand.Idx (an instruction ID).
	KindReg
	// KindParam reads frame parameter Operand.Idx.
	KindParam
	// KindGlobal reads the base address of the global in module slot
	// Operand.Idx.
	KindGlobal
	// KindInvalid marks a value kind the engine does not know. Evaluating
	// it reproduces the legacy engine's internal error; Operand.Idx
	// indexes Program.BadVals for the offending value.
	KindInvalid
)

// Operand is one pre-resolved operand slot.
type Operand struct {
	// Kind selects how the slot is evaluated.
	Kind Kind
	// Type is the operand's scalar value type.
	Type ir.Type
	// Idx is the register ID, parameter index, global slot, or BadVals
	// index, by Kind.
	Idx int32
	// Bits is the inline constant for KindConst.
	Bits uint64
}

// Step classifies an instruction for the engine's flat dispatch switch.
// It is a superset of the opcode: distinct opcodes that execute
// identically (all binary ops, all casts) share a step, and malformed
// instructions get StepInvalid.
type Step uint8

// Dispatch steps.
const (
	// StepInvalid fails at execution time with the legacy engine's
	// "cannot execute" error. Mid-block phis, unknown opcodes, and
	// instructions with malformed operand lists lower to it.
	StepInvalid Step = iota
	StepBinary
	StepCmp
	StepCast
	StepSelect
	StepIntrinsic
	StepAlloca
	StepLoad
	StepStore
	StepGep
	StepCall
	StepRet
	StepBr
	StepCondBr
	StepPrint
	StepCheck
)

// Instr is one pre-decoded instruction. Fields beyond Step, Ref and the
// operand slots are opcode-specific and only meaningful for the steps
// that read them.
type Instr struct {
	// Step drives the engine's dispatch switch.
	Step Step
	// Op is the original opcode (binary/cmp/cast evaluation, diagnostics).
	Op ir.Opcode
	// Pred is the comparison predicate (StepCmp).
	Pred ir.Predicate
	// Intr is the intrinsic kind (StepIntrinsic).
	Intr ir.Intrinsic
	// NArgs is the operand arity where it matters at runtime: 1 for a
	// value-carrying ret, the argument count for intrinsics.
	NArgs int
	// Type is the result type.
	Type ir.Type
	// OpndType is the first operand's value type: the evaluation type of
	// binary/cmp instructions, the source type of casts, the print
	// operand's type.
	OpndType ir.Type
	// Elem is the element type for load/store (memory access width).
	Elem ir.Type
	// Format is the output format (StepPrint).
	Format ir.OutputFormat
	// Width is the result width in bits, precomputed from Type.
	Width int
	// Dst is the destination register (instruction ID), or -1 when the
	// instruction defines no register.
	Dst int32
	// A, B, C are the fixed operand slots (lhs/rhs/select-false, by step).
	A, B, C Operand
	// Args are call arguments, and intrinsic arguments when an
	// (ill-formed) intrinsic has more than two.
	Args []Operand
	// AllocSize is the alloca footprint in bytes, precomputed.
	AllocSize uint64
	// ElemBytes is the gep element stride in bytes.
	ElemBytes int64
	// IdxWidth is the gep index operand's width in bits.
	IdxWidth int
	// Callee is the called function (StepCall); nil reproduces the legacy
	// engine's panic-into-InternalError for a call without a callee.
	Callee *Func
	// T0, T1 are decoded block indices of the branch targets (T1 is the
	// false edge of a condbr).
	T0, T1 int32
	// E0, E1 are the indices into the target block's Edges to apply on
	// entry, or -1 when the target has no phi prologue.
	E0, E1 int32
	// Ref is the source instruction: hook identity, trap positions and
	// diagnostics all use it, so fault-injection target pointers compare
	// equal across engines.
	Ref *ir.Instr
}

// Move is one phi assignment of an edge's prologue: evaluate Src in the
// predecessor's register state, truncate to Width, and commit to Dst.
type Move struct {
	// Dst is the phi's register (instruction ID).
	Dst int32
	// Width is the phi result width in bits.
	Width int
	// Src is the incoming value for this edge.
	Src Operand
	// Ref is the source phi instruction, for the OnResult hook.
	Ref *ir.Instr
}

// Edge is the pre-grouped phi prologue for one (block, predecessor)
// pair. Entering the block through this edge runs Moves as a
// simultaneous assignment.
type Edge struct {
	// Moves are the phi assignments, in phi order.
	Moves []Move
	// Bad, when non-nil, is the first phi with no incoming value for this
	// edge's predecessor: entering through the edge fails with the legacy
	// engine's "phi has no incoming" error before any phi executes.
	Bad *ir.Instr
	// BadPrev is the predecessor name for Bad's error message ("<entry>"
	// for the function-entry pseudo-edge).
	BadPrev string
}

// Block is one pre-decoded basic block.
type Block struct {
	// Ref is the source block.
	Ref *ir.Block
	// NPhi is the number of leading phis (the prologue length).
	NPhi int
	// Code is the non-phi instruction tail (source instructions NPhi..).
	Code []Instr
	// Edges are the phi prologues, one per discovered predecessor;
	// branch instructions carry indices into them.
	Edges []Edge
	// EntryEdge is the index of the function-entry pseudo-edge
	// (predecessor nil), or -1. It is only built for entry blocks with a
	// phi prologue, where it reproduces the legacy engine's "<entry>"
	// error.
	EntryEdge int32
}

// Func is one pre-decoded function.
type Func struct {
	// Ref is the source function.
	Ref *ir.Func
	// NumRegs is the register file size (static instruction count).
	NumRegs int
	// NumParams is the parameter count.
	NumParams int
	// MaxPhi is the largest phi prologue in the function — the
	// frame-resident scratch size block entry needs.
	MaxPhi int
	// Blocks are the decoded blocks, parallel to Ref.Blocks.
	Blocks []Block
	// ByBlock maps source blocks to their index in Blocks (snapshot
	// resume interop).
	ByBlock map[*ir.Block]int32
}

// Program is a fully lowered module.
type Program struct {
	// Module is the source module.
	Module *ir.Module
	// Funcs are the decoded functions: the module's functions in order,
	// followed by any out-of-module functions discovered through call
	// instructions.
	Funcs []*Func
	// ByFunc maps source functions to their decoded form.
	ByFunc map[*ir.Func]*Func
	// NumGlobals is the module's global count — the dense global base
	// table size the engine allocates.
	NumGlobals int
	// BadVals holds operand values of unknown kind, indexed by the
	// KindInvalid slots that reference them.
	BadVals []ir.Value
}

// Compile lowers m. It never fails: malformed constructs become runtime
// error markers with behavior matching the legacy engine's.
func Compile(m *ir.Module) *Program {
	p := &Program{
		Module:     m,
		ByFunc:     make(map[*ir.Func]*Func, len(m.Funcs)),
		NumGlobals: len(m.Globals),
	}
	for _, f := range m.Funcs {
		p.lowerFunc(f)
	}
	return p
}

// lowerFunc lowers f, memoizing so mutually recursive calls and
// out-of-module callees resolve to a single decoded form.
func (p *Program) lowerFunc(f *ir.Func) *Func {
	if df, ok := p.ByFunc[f]; ok {
		return df
	}
	df := &Func{
		Ref:       f,
		NumRegs:   f.NumInstrs(),
		NumParams: len(f.Params),
		Blocks:    make([]Block, len(f.Blocks)),
		ByBlock:   make(map[*ir.Block]int32, len(f.Blocks)),
	}
	// Register before lowering the body so recursive calls terminate.
	p.ByFunc[f] = df
	p.Funcs = append(p.Funcs, df)

	for i, b := range f.Blocks {
		df.ByBlock[b] = int32(i)
	}

	// First pass: phi prologue shapes and entry pseudo-edges, so branch
	// lowering below can resolve edges into any target, including blocks
	// that appear later in the function.
	for i, b := range f.Blocks {
		nPhi := 0
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			nPhi++
		}
		blk := &df.Blocks[i]
		blk.Ref = b
		blk.NPhi = nPhi
		blk.EntryEdge = -1
		if nPhi > df.MaxPhi {
			df.MaxPhi = nPhi
		}
		if nPhi > 0 && i == 0 {
			blk.Edges = append(blk.Edges, p.buildEdge(b, nPhi, nil, "<entry>"))
			blk.EntryEdge = 0
		}
	}

	// Second pass: lower the non-phi code, creating (target, pred) edges
	// on demand as branches are discovered.
	type edgeKey struct {
		target *ir.Block
		pred   *ir.Block
	}
	edgeIdx := make(map[edgeKey]int32)
	resolveEdge := func(target, pred *ir.Block) int32 {
		ti, ok := df.ByBlock[target]
		if !ok {
			return -1
		}
		blk := &df.Blocks[ti]
		if blk.NPhi == 0 {
			return -1
		}
		key := edgeKey{target, pred}
		if e, ok := edgeIdx[key]; ok {
			return e
		}
		e := int32(len(blk.Edges))
		blk.Edges = append(blk.Edges, p.buildEdge(target, blk.NPhi, pred, pred.Name))
		edgeIdx[key] = e
		return e
	}

	for i, b := range f.Blocks {
		blk := &df.Blocks[i]
		tail := b.Instrs[blk.NPhi:]
		blk.Code = make([]Instr, len(tail))
		for j, in := range tail {
			blk.Code[j] = p.lowerInstr(in, df, b, resolveEdge)
		}
	}
	return df
}

// buildEdge assembles the phi prologue of b for predecessor prev (nil
// for the function-entry pseudo-edge). It mirrors the legacy engine's
// enterBlock: phis resolve their incoming in order, taking the first
// matching incoming block, and the first phi with none marks the edge
// bad.
func (p *Program) buildEdge(b *ir.Block, nPhi int, prev *ir.Block, prevName string) Edge {
	var e Edge
	for i := 0; i < nPhi; i++ {
		ph := b.Instrs[i]
		found := false
		for j, pb := range ph.PhiBlocks {
			if pb == prev && j < len(ph.Operands) {
				e.Moves = append(e.Moves, Move{
					Dst:   int32(ph.ID),
					Width: ph.Type.Bits(),
					Src:   p.lowerOperand(ph.Operands[j]),
					Ref:   ph,
				})
				found = true
				break
			}
		}
		if !found {
			e.Moves = nil
			e.Bad = ph
			e.BadPrev = prevName
			return e
		}
	}
	return e
}

// lowerOperand resolves a value into an operand slot.
func (p *Program) lowerOperand(v ir.Value) Operand {
	switch x := v.(type) {
	case *ir.Const:
		return Operand{Kind: KindConst, Type: x.Type, Bits: x.Bits}
	case *ir.Instr:
		return Operand{Kind: KindReg, Type: x.Type, Idx: int32(x.ID)}
	case *ir.Param:
		return Operand{Kind: KindParam, Type: x.Type, Idx: int32(x.Index)}
	case *ir.Global:
		return Operand{Kind: KindGlobal, Type: ir.Ptr, Idx: int32(x.Slot)}
	default:
		p.BadVals = append(p.BadVals, v)
		return Operand{Kind: KindInvalid, Idx: int32(len(p.BadVals) - 1)}
	}
}

// lowerInstr lowers one non-phi instruction. Malformed operand lists
// lower to StepInvalid rather than failing the compile.
func (p *Program) lowerInstr(in *ir.Instr, df *Func, b *ir.Block, resolveEdge func(target, pred *ir.Block) int32) Instr {
	d := Instr{Op: in.Op, Type: in.Type, Ref: in, Dst: -1, Callee: nil, T0: -1, T1: -1, E0: -1, E1: -1}
	if in.HasResult() {
		d.Dst = int32(in.ID)
		d.Width = in.Type.Bits()
	}
	operands := func(n int) bool { return len(in.Operands) >= n }

	switch {
	case in.Op == ir.OpBr:
		if len(in.Targets) < 1 {
			return d
		}
		d.Step = StepBr
		d.T0 = df.blockIndex(in.Targets[0])
		d.E0 = resolveEdge(in.Targets[0], b)
	case in.Op == ir.OpCondBr:
		if !operands(1) || len(in.Targets) < 2 {
			return d
		}
		d.Step = StepCondBr
		d.A = p.lowerOperand(in.Operands[0])
		d.T0 = df.blockIndex(in.Targets[0])
		d.E0 = resolveEdge(in.Targets[0], b)
		d.T1 = df.blockIndex(in.Targets[1])
		d.E1 = resolveEdge(in.Targets[1], b)
	case in.Op == ir.OpRet:
		d.Step = StepRet
		if len(in.Operands) == 1 {
			d.NArgs = 1
			d.A = p.lowerOperand(in.Operands[0])
		}
	case in.Op == ir.OpCall:
		d.Step = StepCall
		d.Args = make([]Operand, len(in.Operands))
		for i, a := range in.Operands {
			d.Args[i] = p.lowerOperand(a)
		}
		if in.Callee != nil {
			d.Callee = p.lowerFunc(in.Callee)
		}
	case in.Op == ir.OpStore:
		if !operands(2) {
			return d
		}
		d.Step = StepStore
		d.A = p.lowerOperand(in.Operands[0])
		d.B = p.lowerOperand(in.Operands[1])
		d.Elem = in.Elem
	case in.Op == ir.OpCheck:
		if !operands(2) {
			return d
		}
		d.Step = StepCheck
		d.A = p.lowerOperand(in.Operands[0])
		d.B = p.lowerOperand(in.Operands[1])
	case in.Op == ir.OpPrint:
		if !operands(1) {
			return d
		}
		d.Step = StepPrint
		d.A = p.lowerOperand(in.Operands[0])
		d.OpndType = in.Operands[0].ValueType()
		d.Format = in.Format
	case in.Op == ir.OpAlloca:
		d.Step = StepAlloca
		d.AllocSize = uint64(in.Count * in.Elem.Bytes())
	case in.Op == ir.OpLoad:
		if !operands(1) {
			return d
		}
		d.Step = StepLoad
		d.A = p.lowerOperand(in.Operands[0])
		d.Elem = in.Elem
	case in.Op == ir.OpGep:
		if !operands(2) {
			return d
		}
		d.Step = StepGep
		d.A = p.lowerOperand(in.Operands[0])
		d.B = p.lowerOperand(in.Operands[1])
		d.ElemBytes = int64(in.Elem.Bytes())
		d.IdxWidth = in.Operands[1].ValueType().Bits()
	case in.Op == ir.OpSelect:
		if !operands(3) {
			return d
		}
		d.Step = StepSelect
		d.A = p.lowerOperand(in.Operands[0])
		d.B = p.lowerOperand(in.Operands[1])
		d.C = p.lowerOperand(in.Operands[2])
	case in.Op == ir.OpIntrinsic:
		d.Step = StepIntrinsic
		d.Intr = in.Intr
		d.NArgs = len(in.Operands)
		switch {
		case d.NArgs <= 2:
			if d.NArgs >= 1 {
				d.A = p.lowerOperand(in.Operands[0])
			}
			if d.NArgs == 2 {
				d.B = p.lowerOperand(in.Operands[1])
			}
		default:
			// Over-arity intrinsics (which Verify rejects) keep the full
			// argument list so the engine can reproduce the legacy
			// evaluation order exactly.
			d.Args = make([]Operand, len(in.Operands))
			for i, a := range in.Operands {
				d.Args[i] = p.lowerOperand(a)
			}
		}
	case in.Op.IsBinary():
		if !operands(2) {
			return d
		}
		d.Step = StepBinary
		d.A = p.lowerOperand(in.Operands[0])
		d.B = p.lowerOperand(in.Operands[1])
		d.OpndType = in.Operands[0].ValueType()
	case in.Op.IsCmp():
		if !operands(2) {
			return d
		}
		d.Step = StepCmp
		d.Pred = in.Pred
		d.A = p.lowerOperand(in.Operands[0])
		d.B = p.lowerOperand(in.Operands[1])
		d.OpndType = in.Operands[0].ValueType()
	case in.Op.IsCast():
		if !operands(1) {
			return d
		}
		d.Step = StepCast
		d.A = p.lowerOperand(in.Operands[0])
		d.OpndType = in.Operands[0].ValueType()
	default:
		// StepInvalid: mid-block phis, OpInvalid, unknown opcodes.
	}
	return d
}

// blockIndex resolves a branch target to its decoded block index, or -1
// for a target outside the function (malformed IR; the engine converts
// the resulting index fault into an internal error, as the legacy
// engine's pointer chase would have misbehaved too).
func (df *Func) blockIndex(b *ir.Block) int32 {
	if i, ok := df.ByBlock[b]; ok {
		return i
	}
	return -1
}
