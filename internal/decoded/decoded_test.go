package decoded

import (
	"testing"

	"trident/internal/ir"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// TestCompileStructure pins the shape of the lowered form on a small
// program with a phi loop, a global, and memory traffic: block and edge
// construction, operand resolution, and the precomputed per-step fields
// the engine relies on.
func TestCompileStructure(t *testing.T) {
	m := mustParse(t, `
module "shape"
global @g i64 x 2 = [5, 6]
func @main() void {
entry:
  br head
head:
  %i = phi i64 [i64 0, entry], [%inc, body]
  %c = icmp slt %i, i64 2
  condbr %c, body, done
body:
  %inc = add %i, i64 1
  br head
done:
  %p = gep i64, @g, %i
  %v = load i64, %p
  print %v
  ret
}`)
	prog := Compile(m)
	if prog.Module != m {
		t.Fatalf("Program.Module = %p, want the source module", prog.Module)
	}
	if prog.NumGlobals != 1 {
		t.Errorf("NumGlobals = %d, want 1", prog.NumGlobals)
	}
	fn := m.Func("main")
	df := prog.ByFunc[fn]
	if df == nil {
		t.Fatal("ByFunc missing main")
	}
	if len(df.Blocks) != len(fn.Blocks) {
		t.Fatalf("decoded %d blocks, source has %d", len(df.Blocks), len(fn.Blocks))
	}
	if df.NumRegs != fn.NumInstrs() {
		t.Errorf("NumRegs = %d, want %d", df.NumRegs, fn.NumInstrs())
	}
	if df.MaxPhi != 1 {
		t.Errorf("MaxPhi = %d, want 1", df.MaxPhi)
	}

	// ByBlock must be a faithful index of Blocks.
	for b, idx := range df.ByBlock {
		if df.Blocks[idx].Ref != b {
			t.Errorf("ByBlock[%s] = %d, but Blocks[%d].Ref = %s",
				b.Name, idx, idx, df.Blocks[idx].Ref.Name)
		}
	}

	head := &df.Blocks[df.ByBlock[fn.Blocks[1]]]
	if head.NPhi != 1 {
		t.Fatalf("head.NPhi = %d, want 1", head.NPhi)
	}
	if want := len(fn.Blocks[1].Instrs) - 1; len(head.Code) != want {
		t.Errorf("head has %d decoded instrs, want %d (phis excluded)", len(head.Code), want)
	}
	if len(head.Edges) != 2 {
		t.Fatalf("head has %d edges, want 2 (entry and body predecessors)", len(head.Edges))
	}
	if head.EntryEdge != -1 {
		t.Errorf("head.EntryEdge = %d, want -1 (not the function entry)", head.EntryEdge)
	}

	// The entry block's br must target head and carry a valid phi edge.
	entry := &df.Blocks[0]
	br := &entry.Code[len(entry.Code)-1]
	if br.Step != StepBr {
		t.Fatalf("entry terminator step = %d, want StepBr", br.Step)
	}
	if int(br.T0) != int(df.ByBlock[fn.Blocks[1]]) {
		t.Errorf("br.T0 = %d, want head's block index", br.T0)
	}
	if br.E0 < 0 || int(br.E0) >= len(head.Edges) {
		t.Fatalf("br.E0 = %d, want a valid edge index into head", br.E0)
	}
	// The entry→head edge feeds the phi the constant 0.
	mv := head.Edges[br.E0].Moves[0]
	if mv.Src.Kind != KindConst || mv.Src.Bits != 0 {
		t.Errorf("entry edge move src = {kind %d bits %d}, want const 0", mv.Src.Kind, mv.Src.Bits)
	}
	if mv.Width != 64 {
		t.Errorf("phi move width = %d, want 64", mv.Width)
	}

	// The body→head edge feeds it %inc, a register.
	body := &df.Blocks[df.ByBlock[fn.Blocks[2]]]
	bbr := &body.Code[len(body.Code)-1]
	mv = head.Edges[bbr.E0].Moves[0]
	if mv.Src.Kind != KindReg {
		t.Errorf("body edge move src kind = %d, want KindReg", mv.Src.Kind)
	}

	// condbr: both targets phi-free, so both edge slots are -1.
	cbr := &head.Code[len(head.Code)-1]
	if cbr.Step != StepCondBr {
		t.Fatalf("head terminator step = %d, want StepCondBr", cbr.Step)
	}
	if cbr.E0 != -1 || cbr.E1 != -1 {
		t.Errorf("condbr edges = (%d, %d), want (-1, -1) for phi-free targets", cbr.E0, cbr.E1)
	}

	// gep: stride, index width, and the global base operand.
	done := &df.Blocks[df.ByBlock[fn.Blocks[3]]]
	gep := &done.Code[0]
	if gep.Step != StepGep {
		t.Fatalf("done.Code[0] step = %d, want StepGep", gep.Step)
	}
	if gep.ElemBytes != 8 {
		t.Errorf("gep.ElemBytes = %d, want 8", gep.ElemBytes)
	}
	if gep.IdxWidth != 64 {
		t.Errorf("gep.IdxWidth = %d, want 64", gep.IdxWidth)
	}
	if gep.A.Kind != KindGlobal || gep.A.Idx != 0 {
		t.Errorf("gep base = {kind %d idx %d}, want global slot 0", gep.A.Kind, gep.A.Idx)
	}

	load := &done.Code[1]
	if load.Step != StepLoad || load.Elem != ir.I64 {
		t.Errorf("load = {step %d elem %v}, want StepLoad of i64", load.Step, load.Elem)
	}
	if load.Dst < 0 {
		t.Errorf("load.Dst = %d, want a register", load.Dst)
	}
	ret := &done.Code[len(done.Code)-1]
	if ret.Step != StepRet || ret.Dst != -1 {
		t.Errorf("ret = {step %d dst %d}, want StepRet with no destination", ret.Step, ret.Dst)
	}

	// Every decoded instruction keeps its source pointer: fault-injection
	// targets compare by *ir.Instr identity across engines.
	for bi := range df.Blocks {
		b := &df.Blocks[bi]
		for ci := range b.Code {
			if b.Code[ci].Ref == nil {
				t.Fatalf("block %s code[%d] has nil Ref", b.Ref.Name, ci)
			}
			if b.Code[ci].Ref != b.Ref.Instrs[b.NPhi+ci] {
				t.Fatalf("block %s code[%d].Ref does not match source instr", b.Ref.Name, ci)
			}
		}
	}
}

// TestCompileMemoizesCallees pins that lowering resolves every call to a
// single decoded function: recursion must not diverge, and two calls to
// the same callee must share its decoded form.
func TestCompileMemoizesCallees(t *testing.T) {
	m := mustParse(t, `
module "memo"
func @fib(%n i64) i64 {
entry:
  %c = icmp slt %n, i64 2
  condbr %c, base, rec
base:
  ret %n
rec:
  %a = sub %n, i64 1
  %b = sub %n, i64 2
  %fa = call @fib(%a)
  %fb = call @fib(%b)
  %s = add %fa, %fb
  ret %s
}
func @main() void {
entry:
  %r = call @fib(i64 6)
  %r2 = call @fib(i64 4)
  print %r
  print %r2
  ret
}`)
	prog := Compile(m)
	dfib := prog.ByFunc[m.Func("fib")]
	if dfib == nil {
		t.Fatal("ByFunc missing fib")
	}

	callees := map[*Func]int{}
	for _, df := range prog.Funcs {
		for bi := range df.Blocks {
			for ci := range df.Blocks[bi].Code {
				in := &df.Blocks[bi].Code[ci]
				if in.Step == StepCall {
					callees[in.Callee]++
				}
			}
		}
	}
	if len(callees) != 1 {
		t.Fatalf("calls resolve to %d decoded functions, want 1", len(callees))
	}
	if callees[dfib] != 4 {
		t.Errorf("fib has %d call sites bound to its decoded form, want 4", callees[dfib])
	}
	// The program must contain each function's decoded form exactly once.
	if len(prog.Funcs) != 2 {
		t.Errorf("Funcs has %d entries, want 2", len(prog.Funcs))
	}
}

// TestCompileErrorMarkers pins the lowering of constructs Verify rejects
// but execution must tolerate with the legacy engine's runtime errors:
// mid-block phis become StepInvalid, entry-block phis get the "<entry>"
// pseudo-edge, and a call without a callee keeps Callee nil.
func TestCompileErrorMarkers(t *testing.T) {
	// Mid-block phi → StepInvalid.
	m := &ir.Module{Name: "mid-phi"}
	fn := m.NewFunc("main", ir.Void)
	b := fn.NewBlock("entry")
	b.Instrs = append(b.Instrs,
		&ir.Instr{Op: ir.OpAdd, Type: ir.I32, Block: b,
			Operands: []ir.Value{ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)}},
		&ir.Instr{Op: ir.OpPhi, Type: ir.I32, Block: b},
		&ir.Instr{Op: ir.OpRet, Block: b})
	fn.Renumber()
	prog := Compile(m)
	code := prog.ByFunc[fn].Blocks[0].Code
	if code[1].Step != StepInvalid {
		t.Errorf("mid-block phi step = %d, want StepInvalid", code[1].Step)
	}

	// Entry-block phi → entry pseudo-edge with the "<entry>" marker.
	m2 := &ir.Module{Name: "entry-phi"}
	fn2 := m2.NewFunc("main", ir.Void)
	b2 := fn2.NewBlock("entry")
	phi := &ir.Instr{Op: ir.OpPhi, Type: ir.I32, Block: b2}
	b2.Instrs = append(b2.Instrs, phi, &ir.Instr{Op: ir.OpRet, Block: b2})
	fn2.Renumber()
	prog2 := Compile(m2)
	entry := prog2.ByFunc[fn2].Blocks[0]
	if entry.NPhi != 1 {
		t.Fatalf("entry.NPhi = %d, want 1", entry.NPhi)
	}
	if entry.EntryEdge < 0 {
		t.Fatal("entry block with phi has no entry pseudo-edge")
	}
	e := entry.Edges[entry.EntryEdge]
	if e.Bad != phi {
		t.Errorf("entry edge Bad = %v, want the phi", e.Bad)
	}
	if e.BadPrev != "<entry>" {
		t.Errorf("entry edge BadPrev = %q, want %q", e.BadPrev, "<entry>")
	}

	// Call without a callee → nil Callee marker.
	m3 := &ir.Module{Name: "no-callee"}
	fn3 := m3.NewFunc("main", ir.Void)
	b3 := fn3.NewBlock("entry")
	b3.Instrs = append(b3.Instrs,
		&ir.Instr{Op: ir.OpCall, Type: ir.Void, Block: b3},
		&ir.Instr{Op: ir.OpRet, Block: b3})
	fn3.Renumber()
	prog3 := Compile(m3)
	call := prog3.ByFunc[fn3].Blocks[0].Code[0]
	if call.Step != StepCall || call.Callee != nil {
		t.Errorf("callee-less call = {step %d callee %v}, want StepCall with nil Callee",
			call.Step, call.Callee)
	}
}
