// Package hashutil is the repository's single home for content hashing.
// Every subsystem that fingerprints program text, program output, or
// module structure — the cross-check oracle, campaign checkpoints, the
// compositional campaign cache, the server's result cache — uses these
// helpers, so two subsystems can never disagree about what "the hash of
// this function" means.
//
// All hashes are 64-bit FNV-1a. Function and module hashes are defined
// over the *canonical printed form* (internal/ir's printer, whose output
// is a parse/print fixed point): two modules hash equal exactly when
// they print identically, which makes the hashes content addresses —
// stable across process restarts, reorderable in maps, and invariant
// under print→parse round trips (pinned by the cache-key stability suite
// and the FuzzCacheKeyCanonical fuzz target). DESIGN.md §5h lists every
// cache key built from these helpers.
package hashutil

import (
	"fmt"

	"trident/internal/ir"
)

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// String returns the 64-bit FNV-1a hash of s.
func String(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Bytes returns the 64-bit FNV-1a hash of b.
func Bytes(b []byte) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// Output returns the hash of a program's output text. It is String under
// a name that says what is being hashed: fault.Detail.OutputHash, the
// cross-check result summaries and the cache's golden-run stamps all use
// it, so their output fingerprints are interchangeable.
func Output(s string) uint64 { return String(s) }

// Function returns the content address of one function: the hash of its
// canonical printed body (header, blocks and instructions exactly as
// ir.PrintFunc renders them). Renaming a register, reordering operands
// or editing an instruction changes the hash; editing a *different*
// function never does — the locality the compositional campaign cache
// is keyed on. The function's own name is part of the printed header, so
// renaming a function changes its own hash and (through printed call
// sites) the hash of its callers, but never that of unrelated functions.
func Function(f *ir.Func) uint64 { return String(ir.PrintFunc(f)) }

// Module returns the content address of a whole module: the hash of its
// canonical printed text. Used to key whole-campaign artifacts (the
// server's result cache, checkpoint validation) where any edit anywhere
// must invalidate.
func Module(m *ir.Module) uint64 { return String(ir.Print(m)) }

// Hex renders a hash as the fixed-width lowercase hex string used in
// cache keys and on-disk file names.
func Hex(h uint64) string { return fmt.Sprintf("%016x", h) }
