package hashutil

import (
	"hash/fnv"
	"testing"

	"trident/internal/ir"
	"trident/internal/progs"
)

// TestStringMatchesStdlibFNV pins the hash to the reference FNV-1a the
// standard library implements: the constants here must never drift,
// because on-disk cache entries and checkpoints embed these hashes.
func TestStringMatchesStdlibFNV(t *testing.T) {
	for _, s := range []string{"", "a", "trident", "module \"x\"\n", "\x00\xff"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := String(s), h.Sum64(); got != want {
			t.Errorf("String(%q) = %#x, want %#x", s, got, want)
		}
		if got, want := Bytes([]byte(s)), h.Sum64(); got != want {
			t.Errorf("Bytes(%q) = %#x, want %#x", s, got, want)
		}
		if Output(s) != String(s) {
			t.Errorf("Output(%q) != String(%q)", s, s)
		}
	}
}

func TestHex(t *testing.T) {
	if got := Hex(0); got != "0000000000000000" {
		t.Errorf("Hex(0) = %q", got)
	}
	if got := Hex(0xdeadbeef); got != "00000000deadbeef" {
		t.Errorf("Hex(0xdeadbeef) = %q", got)
	}
}

// TestModuleAndFunctionHashesAreCanonical checks the content-address
// property on every kernel: the module hash is the hash of the printed
// text, function hashes are hashes of printed functions, and hashing the
// same module twice (or its functions in any order) is stable.
func TestModuleAndFunctionHashesAreCanonical(t *testing.T) {
	for _, p := range progs.All() {
		m := p.Build()
		if got, want := Module(m), String(ir.Print(m)); got != want {
			t.Errorf("%s: Module = %#x, want hash of printed text %#x", p.Name, got, want)
		}
		for _, f := range m.Funcs {
			if got, want := Function(f), String(ir.PrintFunc(f)); got != want {
				t.Errorf("%s/@%s: Function = %#x, want %#x", p.Name, f.Name, got, want)
			}
			if Function(f) != Function(f) {
				t.Errorf("%s/@%s: Function hash unstable", p.Name, f.Name)
			}
		}
	}
}

// TestFunctionHashDistinguishesFunctions is a sanity check that distinct
// function bodies get distinct hashes on a real multi-function kernel.
func TestFunctionHashDistinguishesFunctions(t *testing.T) {
	p, err := progs.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	m := p.Build()
	if len(m.Funcs) < 2 {
		t.Fatalf("blackscholes has %d functions, want ≥ 2", len(m.Funcs))
	}
	seen := make(map[uint64]string)
	for _, f := range m.Funcs {
		h := Function(f)
		if prev, ok := seen[h]; ok {
			t.Errorf("functions @%s and @%s share hash %#x", prev, f.Name, h)
		}
		seen[h] = f.Name
	}
}
