package irgen

import (
	"context"
	"testing"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/protect"
)

const propertySeeds = 40

func TestGeneratedProgramsVerifyAndTerminate(t *testing.T) {
	for seed := uint64(1); seed <= propertySeeds; seed++ {
		m := Generate(Config{Seed: seed})
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		res, err := interp.Run(m, interp.Options{MaxDynInstrs: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Outcome != interp.OutcomeOK {
			t.Fatalf("seed %d: outcome %s (%v)", seed, res.Outcome, res.Trap)
		}
		if res.OutputLines == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		a := ir.Print(Generate(Config{Seed: seed}))
		b := ir.Print(Generate(Config{Seed: seed}))
		if a != b {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
	if ir.Print(Generate(Config{Seed: 1})) == ir.Print(Generate(Config{Seed: 2})) {
		t.Error("different seeds generated identical programs")
	}
}

// TestRoundTripProperty: print/parse of every generated program preserves
// behaviour.
func TestRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= propertySeeds; seed++ {
		m := Generate(Config{Seed: seed})
		r1, err := interp.Run(m, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := ir.Parse(ir.Print(m))
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		r2, err := interp.Run(m2, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Output != r2.Output || r1.DynInstrs != r2.DynInstrs {
			t.Fatalf("seed %d: round trip changed behaviour", seed)
		}
	}
}

// TestModelBoundsProperty: on every generated program the model yields
// probabilities in [0,1] for every instruction and the overall estimate.
func TestModelBoundsProperty(t *testing.T) {
	for seed := uint64(1); seed <= propertySeeds; seed++ {
		m := Generate(Config{Seed: seed})
		prof, err := profile.Collect(m, profile.Options{})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		for _, cfg := range []core.Config{
			core.TridentConfig(), core.FSFCConfig(), core.FSOnlyConfig(),
		} {
			model := core.New(prof, cfg)
			overall := model.OverallSDC(0, 1).SDC
			if overall < 0 || overall > 1 {
				t.Fatalf("seed %d: overall %v out of bounds", seed, overall)
			}
			m.Instrs(func(in *ir.Instr) {
				p := model.InstrSDC(in)
				c := model.InstrCrash(in)
				if p < 0 || p > 1 || c < 0 || c > 1 || p+c > 1+1e-9 {
					t.Errorf("seed %d: %s sdc=%v crash=%v", seed, in.Pos(), p, c)
				}
			})
		}
	}
}

// TestInjectionClassifiesProperty: every injection outcome on generated
// programs is one of the five classes and campaigns account for every
// trial.
func TestInjectionClassifiesProperty(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		m := Generate(Config{Seed: seed})
		inj, err := fault.New(m, fault.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := inj.CampaignRandom(context.Background(), 40)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total := 0
		for _, n := range res.Counts {
			total += n
		}
		if total != res.N() {
			t.Fatalf("seed %d: %d classified of %d", seed, total, res.N())
		}
	}
}

// TestModelVariantOrderingProperty: fs+fc never predicts less than
// TRIDENT (removing fm can only raise the store terms).
func TestModelVariantOrderingProperty(t *testing.T) {
	for seed := uint64(1); seed <= propertySeeds; seed++ {
		m := Generate(Config{Seed: seed})
		prof, err := profile.Collect(m, profile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		trident := core.New(prof, core.TridentConfig()).OverallSDC(0, 1).SDC
		fsfc := core.New(prof, core.FSFCConfig()).OverallSDC(0, 1).SDC
		if trident > fsfc+1e-6 {
			t.Errorf("seed %d: trident %v > fs+fc %v", seed, trident, fsfc)
		}
	}
}

func TestGeneratedProgramsAreProfilable(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		m := Generate(Config{Seed: seed})
		prof, err := profile.Collect(m, profile.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prof.TotalDynResults == 0 {
			t.Fatalf("seed %d: empty profile", seed)
		}
	}
}

// TestProtectionProperty: on random programs, full duplication preserves
// behaviour, costs overhead, and detects injected faults.
func TestProtectionProperty(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		m := Generate(Config{Seed: seed})
		prof, err := profile.Collect(m, profile.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		model := core.New(prof, core.TridentConfig())
		sdc := make(map[*ir.Instr]float64)
		m.Instrs(func(in *ir.Instr) {
			if in.HasResult() {
				sdc[in] = model.InstrSDC(in)
			}
		})
		cands := protect.Candidates(prof, sdc)
		if len(cands) == 0 {
			continue
		}
		plan := protect.SelectKnapsack(cands, protect.FullCost(cands))
		protected, err := protect.Apply(m, plan.Selected)
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		overhead, err := protect.MeasureOverhead(m, protected)
		if err != nil {
			t.Fatalf("seed %d: overhead: %v", seed, err)
		}
		if overhead <= 0 {
			t.Errorf("seed %d: full duplication overhead %v", seed, overhead)
		}
		inj, err := fault.New(protected, fault.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := inj.CampaignRandom(context.Background(), 40)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Counts[fault.Detected] == 0 {
			t.Errorf("seed %d: fully duplicated program detected nothing", seed)
		}
	}
}
