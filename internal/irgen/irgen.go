// Package irgen generates random, well-formed, terminating IR programs
// for property-based testing: every generated module passes the verifier,
// runs to completion under the interpreter, produces output, and is
// deterministic — which lets tests assert invariants of the interpreter,
// the profiler, the TRIDENT model and the protection pass over a much
// larger program space than the hand-written corpus. DESIGN.md §5e
// describes the cross-check oracle this corpus feeds.
package irgen

import (
	"fmt"

	"trident/internal/ir"
)

// Config bounds the generated program shape.
type Config struct {
	// Seed selects the program; equal seeds generate equal programs.
	Seed uint64
	// MaxLoops bounds the number of sequential counted loops (default 3).
	MaxLoops int
	// MaxExprDepth bounds expression nesting per statement (default 4).
	MaxExprDepth int
	// MaxGlobals bounds the number of global arrays (default 3).
	MaxGlobals int
}

func (c Config) withDefaults() Config {
	if c.MaxLoops == 0 {
		c.MaxLoops = 3
	}
	if c.MaxExprDepth == 0 {
		c.MaxExprDepth = 4
	}
	if c.MaxGlobals == 0 {
		c.MaxGlobals = 3
	}
	return c
}

// rng is a deterministic xorshift generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) chance(percent int) bool { return r.intn(100) < percent }

// generator carries the in-progress program state.
type generator struct {
	cfg     Config
	rnd     *rng
	m       *ir.Module
	b       *ir.Builder
	globals []*ir.Global
	// intVals are in-scope i64 values usable as operands.
	intVals []ir.Value
	// floatVals are in-scope f64 values.
	floatVals []ir.Value
}

// Generate builds a random verified module. The generated program is a
// sequence of counted loops that fill, transform and reduce global
// arrays, with nested conditionals, compare-select idioms, float math and
// at least one print — the same structural vocabulary as the benchmark
// suite, arranged randomly.
func Generate(cfg Config) *ir.Module {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg: cfg,
		rnd: &rng{s: cfg.Seed*0x9E3779B97F4A7C15 + 0x1234567},
		m:   ir.NewModule(fmt.Sprintf("rand-%d", cfg.Seed)),
	}
	g.rnd.next()
	g.rnd.next()

	nGlobals := 1 + g.rnd.intn(cfg.MaxGlobals)
	for i := 0; i < nGlobals; i++ {
		elem := ir.I64
		if g.rnd.chance(40) {
			elem = ir.F64
		}
		size := 4 + g.rnd.intn(13)
		init := make([]uint64, size)
		for k := range init {
			if elem == ir.F64 {
				init[k] = ir.FloatToBits(ir.F64, float64(g.rnd.intn(2000))/100-10)
			} else {
				init[k] = uint64(g.rnd.intn(100))
			}
		}
		g.globals = append(g.globals,
			g.m.AddGlobal(fmt.Sprintf("g%d", i), elem, size, init))
	}

	f := g.m.NewFunc("main", ir.Void)
	g.b = ir.NewBuilder(f)
	g.b.SetBlock(g.b.NewBlock("entry"))
	g.intVals = []ir.Value{ir.ConstInt(ir.I64, int64(1+g.rnd.intn(9)))}
	g.floatVals = []ir.Value{ir.ConstFloat(ir.F64, float64(g.rnd.intn(100))/10)}

	nLoops := 1 + g.rnd.intn(cfg.MaxLoops)
	for i := 0; i < nLoops; i++ {
		g.emitLoop(i)
	}
	g.emitOutput()
	g.b.Ret(nil)

	for _, fn := range g.m.Funcs {
		fn.Renumber()
	}
	if err := ir.Verify(g.m); err != nil {
		panic(fmt.Sprintf("irgen: generated invalid module (seed %d): %v", cfg.Seed, err))
	}
	return g.m
}

// pickGlobal returns a random global and a safely clamped index value for
// it derived from idx.
func (g *generator) pickGlobal(idx ir.Value) (*ir.Global, ir.Value) {
	gl := g.globals[g.rnd.intn(len(g.globals))]
	// idx mod size keeps every access in bounds regardless of loop bound.
	wrapped := g.b.SRem(idx, ir.ConstInt(ir.I64, int64(gl.Count)))
	return gl, wrapped
}

// emitLoop generates one counted loop whose body stores into a random
// global and optionally reduces into an accumulator that is printed.
func (g *generator) emitLoop(id int) {
	b := g.b
	bound := int64(4 + g.rnd.intn(20))
	pre := b.Block()
	head := b.NewBlock(fmt.Sprintf("l%d.head", id))
	body := b.NewBlock(fmt.Sprintf("l%d.body", id))
	exit := b.NewBlock(fmt.Sprintf("l%d.exit", id))

	withAcc := g.rnd.chance(60)

	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	var acc *ir.Instr
	if withAcc {
		acc = b.Phi(ir.I64)
	}
	cond := b.ICmp(ir.PredSLT, i, ir.ConstInt(ir.I64, bound))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	g.intVals = append(g.intVals, i)

	// A couple of statements.
	nStmts := 1 + g.rnd.intn(3)
	var accNext ir.Value
	if withAcc {
		accNext = acc
	}
	for s := 0; s < nStmts; s++ {
		switch g.rnd.intn(4) {
		case 0: // store an int expression
			gl, idx := g.pickGlobal(i)
			if gl.Elem == ir.F64 {
				v := g.floatExpr(g.cfg.MaxExprDepth)
				b.Store(v, b.Gep(ir.F64, gl, idx))
			} else {
				v := g.intExpr(g.cfg.MaxExprDepth)
				b.Store(v, b.Gep(ir.I64, gl, idx))
			}
		case 1: // load and remember
			gl, idx := g.pickGlobal(i)
			v := b.Load(gl.Elem, b.Gep(gl.Elem, gl, idx))
			if gl.Elem == ir.F64 {
				g.floatVals = append(g.floatVals, v)
			} else {
				g.intVals = append(g.intVals, v)
			}
		case 2: // conditional store (control-flow divergence material)
			gl, idx := g.pickGlobal(i)
			c := b.ICmp(g.randIntPred(), g.intOperand(), g.intOperand())
			thenBlk := b.NewBlock(fmt.Sprintf("l%d.s%d.then", id, s))
			join := b.NewBlock(fmt.Sprintf("l%d.s%d.join", id, s))
			b.CondBr(c, thenBlk, join)
			b.SetBlock(thenBlk)
			if gl.Elem == ir.F64 {
				b.Store(g.floatExpr(2), b.Gep(ir.F64, gl, idx))
			} else {
				b.Store(g.intExpr(2), b.Gep(ir.I64, gl, idx))
			}
			b.Br(join)
			b.SetBlock(join)
		case 3: // accumulate
			if withAcc {
				accNext = b.Add(accNext, g.intExpr(2))
			} else {
				gl, idx := g.pickGlobal(i)
				v := b.Load(gl.Elem, b.Gep(gl.Elem, gl, idx))
				if gl.Elem == ir.I64 {
					g.intVals = append(g.intVals, v)
				} else {
					g.floatVals = append(g.floatVals, v)
				}
			}
		}
	}

	latch := b.Block()
	inc := b.Add(i, ir.ConstInt(ir.I64, 1))
	b.Br(head)
	b.AddIncoming(i, ir.ConstInt(ir.I64, 0), pre)
	b.AddIncoming(i, inc, latch)
	if withAcc {
		b.AddIncoming(acc, ir.ConstInt(ir.I64, 0), pre)
		b.AddIncoming(acc, accNext, latch)
	}

	b.SetBlock(exit)
	// The induction variable leaves scope; drop body-scoped values but
	// keep the accumulator.
	g.intVals = g.intVals[:1]
	g.floatVals = g.floatVals[:1]
	if withAcc {
		b.Print(acc)
		g.intVals = append(g.intVals, acc)
	}
}

// emitOutput prints a few global cells so every program has observable
// output even when no loop carried an accumulator.
func (g *generator) emitOutput() {
	b := g.b
	for _, gl := range g.globals {
		idx := ir.ConstInt(ir.I64, int64(g.rnd.intn(gl.Count)))
		v := b.Load(gl.Elem, b.Gep(gl.Elem, gl, idx))
		if gl.Elem == ir.F64 && g.rnd.chance(30) {
			b.PrintFmt(v, ir.FormatG2)
		} else {
			b.Print(v)
		}
	}
}

func (g *generator) randIntPred() ir.Predicate {
	preds := []ir.Predicate{ir.PredEQ, ir.PredNE, ir.PredSLT, ir.PredSLE, ir.PredSGT, ir.PredSGE}
	return preds[g.rnd.intn(len(preds))]
}

func (g *generator) intOperand() ir.Value {
	if g.rnd.chance(40) {
		return ir.ConstInt(ir.I64, int64(g.rnd.intn(50)))
	}
	return g.intVals[g.rnd.intn(len(g.intVals))]
}

func (g *generator) floatOperand() ir.Value {
	if g.rnd.chance(40) || len(g.floatVals) == 0 {
		return ir.ConstFloat(ir.F64, float64(g.rnd.intn(400))/40+0.5)
	}
	return g.floatVals[g.rnd.intn(len(g.floatVals))]
}

// intExpr emits a random integer expression of bounded depth. Divisions
// and remainders use strictly positive right operands so generated
// programs never fault on their own.
func (g *generator) intExpr(depth int) ir.Value {
	b := g.b
	if depth == 0 || g.rnd.chance(25) {
		return g.intOperand()
	}
	lhs := g.intExpr(depth - 1)
	switch g.rnd.intn(8) {
	case 0:
		return b.Add(lhs, g.intExpr(depth-1))
	case 1:
		return b.Sub(lhs, g.intExpr(depth-1))
	case 2:
		return b.Mul(lhs, g.intOperand())
	case 3:
		return b.And(lhs, g.intOperand())
	case 4:
		return b.Xor(lhs, g.intOperand())
	case 5:
		return b.SRem(lhs, ir.ConstInt(ir.I64, int64(3+g.rnd.intn(61))))
	case 6: // compare-select min/max idiom
		rhs := g.intExpr(depth - 1)
		c := b.ICmp(ir.PredSLT, lhs, rhs)
		return b.Select(c, lhs, rhs)
	default:
		return b.Shl(lhs, ir.ConstInt(ir.I64, int64(g.rnd.intn(8))))
	}
}

// floatExpr emits a random float expression of bounded depth.
func (g *generator) floatExpr(depth int) ir.Value {
	b := g.b
	if depth == 0 || g.rnd.chance(30) {
		return g.floatOperand()
	}
	lhs := g.floatExpr(depth - 1)
	switch g.rnd.intn(5) {
	case 0:
		return b.FAdd(lhs, g.floatExpr(depth-1))
	case 1:
		return b.FSub(lhs, g.floatOperand())
	case 2:
		return b.FMul(lhs, ir.ConstFloat(ir.F64, float64(1+g.rnd.intn(20))/10))
	case 3:
		return b.Intrinsic(ir.IntrinsicFabs, lhs)
	default:
		return b.Intrinsic(ir.IntrinsicFmin, lhs, ir.ConstFloat(ir.F64, 100))
	}
}
