package experiments

import (
	"time"

	"trident/internal/core"
)

// Fig6aPoint is one point of Figure 6a: wall-clock cost to estimate the
// overall SDC probability at a given sample count, for the model and for
// FI.
type Fig6aPoint struct {
	Samples int
	// ModelSeconds includes the (shared, fixed) profiling phase plus the
	// sampled prediction.
	ModelSeconds float64
	// FISeconds is projected from the measured mean per-trial time, as
	// the paper projects from one trial averaged over 30 runs.
	FISeconds float64
}

// Fig6a regenerates Figure 6a over the configured programs: cost versus
// sample count, averaged across programs. The paper's shape: FI grows
// linearly with samples; the model pays a fixed profiling cost and almost
// nothing per additional sample.
func Fig6a(cfg Config, sampleCounts []int) ([]Fig6aPoint, error) {
	cfg = cfg.withDefaults()
	if len(sampleCounts) == 0 {
		sampleCounts = []int{500, 1000, 2000, 3000, 5000, 7000}
	}
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}

	// Per-trial FI time, averaged over 30 trials per program.
	perTrial, err := meanTrialSeconds(cfg, data, 30)
	if err != nil {
		return nil, err
	}
	// Fixed model cost: the profiling phase (re-measured here).
	profiling := measureProfiling(data)

	points := make([]Fig6aPoint, 0, len(sampleCounts))
	for _, n := range sampleCounts {
		start := time.Now()
		for _, pd := range data {
			fresh := freshModel(pd)
			fresh.OverallSDC(n, cfg.Seed)
		}
		modelSecs := profiling + time.Since(start).Seconds()
		points = append(points, Fig6aPoint{
			Samples:      n,
			ModelSeconds: modelSecs,
			FISeconds:    perTrial * float64(n) * float64(len(data)),
		})
	}
	return points, nil
}

// Fig6bPoint is one point of Figure 6b: cost to estimate per-instruction
// SDC probabilities for a given number of static instructions.
type Fig6bPoint struct {
	Instrs       int
	ModelSeconds float64
	// FISeconds maps per-instruction trial counts (100/500/1000) to
	// projected cost.
	FISeconds map[int]float64
}

// Fig6b regenerates Figure 6b: per-instruction prediction cost versus the
// number of static instructions analyzed, against FI-100/500/1000.
func Fig6b(cfg Config, instrCounts []int) ([]Fig6bPoint, error) {
	cfg = cfg.withDefaults()
	if len(instrCounts) == 0 {
		instrCounts = []int{50, 100, 200, 400, 700, 1000}
	}
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}

	// Pool targets across programs round-robin so large counts span the
	// whole suite, with their owning model.
	type target struct {
		pd  *ProgramData
		idx int
	}
	var pool []target
	maxLen := 0
	for _, pd := range data {
		if n := len(pd.Injector.Targets()); n > maxLen {
			maxLen = n
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, pd := range data {
			if i < len(pd.Injector.Targets()) {
				pool = append(pool, target{pd, i})
			}
		}
	}

	perTrial, err := meanTrialSeconds(cfg, data, 30)
	if err != nil {
		return nil, err
	}
	profiling := measureProfiling(data)

	points := make([]Fig6bPoint, 0, len(instrCounts))
	for _, n := range instrCounts {
		if n > len(pool) {
			n = len(pool)
		}
		fresh := make(map[*ProgramData]*core.Model)
		start := time.Now()
		for _, tg := range pool[:n] {
			fm, ok := fresh[tg.pd]
			if !ok {
				fm = freshModel(tg.pd)
				fresh[tg.pd] = fm
			}
			fm.InstrSDC(tg.pd.Injector.Targets()[tg.idx])
		}
		modelSecs := profiling + time.Since(start).Seconds()
		points = append(points, Fig6bPoint{
			Instrs:       n,
			ModelSeconds: modelSecs,
			FISeconds: map[int]float64{
				100:  perTrial * float64(n) * 100,
				500:  perTrial * float64(n) * 500,
				1000: perTrial * float64(n) * 1000,
			},
		})
	}
	return points, nil
}

// meanTrialSeconds measures the mean wall-clock cost of one FI trial
// across the programs.
func meanTrialSeconds(cfg Config, data []*ProgramData, trials int) (float64, error) {
	total := 0.0
	n := 0
	for _, pd := range data {
		start := time.Now()
		// No checkpointing here: Fig. 6 measures FI wall-clock cost, and
		// replaying cached trials would falsify the timing.
		res, err := pd.Injector.CampaignRandom(cfg.ctx(), trials)
		if err != nil {
			return 0, err
		}
		total += time.Since(start).Seconds()
		n += res.N()
	}
	if n == 0 {
		return 0, nil
	}
	return total / float64(n), nil
}

// measureProfiling measures the fixed profiling cost across programs by
// re-collecting each profile once.
func measureProfiling(data []*ProgramData) float64 {
	start := time.Now()
	for _, pd := range data {
		reprofile(pd)
	}
	return time.Since(start).Seconds()
}
