package experiments

import (
	"math"
	"time"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/protect"
	"trident/internal/stats"
)

// AblationValueProfileResult compares fs with and without the operand
// value profile (DESIGN.md ablation: tuples from "mechanism and/or
// profiled values", §IV-C).
type AblationValueProfileResult struct {
	// MAEWith and MAEWithout are mean absolute errors of the overall SDC
	// prediction versus FI across programs.
	MAEWith, MAEWithout float64
}

// AblationValueProfile measures how much the empirical operand-value
// tuples contribute to accuracy.
func AblationValueProfile(cfg Config) (*AblationValueProfileResult, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	var fi, with, without []float64
	for _, pd := range data {
		campaign, err := cfg.campaignRandom(pd.Injector, "ablation-vp-"+pd.Program.Name, cfg.Samples)
		if err != nil {
			return nil, err
		}
		fi = append(fi, campaign.SDCProb())
		with = append(with, pd.Trident.OverallSDC(0, 0).SDC)

		noProfCfg := core.TridentConfig()
		noProfCfg.DisableValueProfile = true
		noProf := core.New(pd.Profile, noProfCfg)
		without = append(without, noProf.OverallSDC(0, 0).SDC)
	}
	res := &AblationValueProfileResult{}
	res.MAEWith, _ = stats.MeanAbsError(with, fi)
	res.MAEWithout, _ = stats.MeanAbsError(without, fi)
	return res, nil
}

// AblationPruningResult compares the memory sub-model's cost on the pruned
// static graph versus the expanded dynamic multigraph (same fixed point).
type AblationPruningResult struct {
	PrunedSeconds   float64
	ExpandedSeconds float64
	// MaxDivergence is the largest |fm difference| across stores — it
	// must be ~0 (pruning is exact, only cheaper).
	MaxDivergence float64
	// DynDeps and StaticEdges across programs.
	DynDeps     uint64
	StaticEdges int
}

// AblationPruning measures what the §IV-E pruning saves.
func AblationPruning(cfg Config) (*AblationPruningResult, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	res := &AblationPruningResult{}
	for _, pd := range data {
		res.DynDeps += pd.Profile.DynMemDeps
		res.StaticEdges += pd.Profile.NumStaticMemEdges()

		pruned := core.New(pd.Profile, core.TridentConfig())
		start := time.Now()
		prunedVal := pruned.OverallSDC(0, 0).SDC
		res.PrunedSeconds += time.Since(start).Seconds()

		expandedCfg := core.TridentConfig()
		expandedCfg.ExpandMemEdges = true
		expanded := core.New(pd.Profile, expandedCfg)
		start = time.Now()
		expandedVal := expanded.OverallSDC(0, 0).SDC
		res.ExpandedSeconds += time.Since(start).Seconds()

		if d := math.Abs(prunedVal - expandedVal); d > res.MaxDivergence {
			res.MaxDivergence = d
		}
	}
	return res, nil
}

// AblationFixpointPoint is the overall prediction under a sweep cap.
type AblationFixpointPoint struct {
	MaxIters int
	// MeanSDC is the across-program mean overall prediction.
	MeanSDC float64
}

// AblationFixpoint shows how many fm sweeps cyclic memory dependence
// needs: capping at one sweep truncates store→load→store feedback.
func AblationFixpoint(cfg Config, caps []int) ([]AblationFixpointPoint, error) {
	cfg = cfg.withDefaults()
	if len(caps) == 0 {
		caps = []int{1, 2, 4, 8, 200}
	}
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	points := make([]AblationFixpointPoint, 0, len(caps))
	for _, capIters := range caps {
		sum := 0.0
		for _, pd := range data {
			c := core.TridentConfig()
			c.FMMaxIters = capIters
			sum += core.New(pd.Profile, c).OverallSDC(0, 0).SDC
		}
		points = append(points, AblationFixpointPoint{
			MaxIters: capIters,
			MeanSDC:  sum / float64(len(data)),
		})
	}
	return points, nil
}

// AblationKnapsackResult compares knapsack selection against naive
// top-k-by-SDC selection at the same budget.
type AblationKnapsackResult struct {
	// MeanSDCKnapsack and MeanSDCTopK are FI-measured protected SDC
	// probabilities averaged across programs at the 1/3 bound.
	MeanSDCKnapsack, MeanSDCTopK float64
}

// AblationKnapsack evaluates the selection policy ablation end to end.
func AblationKnapsack(cfg Config) (*AblationKnapsackResult, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	res := &AblationKnapsackResult{}
	for _, pd := range data {
		sdc := sdcMapFor(pd, pd.Trident)
		cands := protect.Candidates(pd.Profile, sdc)
		budget := protect.FullCost(cands) / 3
		for _, policy := range []struct {
			name string
			plan *protect.Plan
			dst  *float64
		}{
			{"knapsack", protect.SelectKnapsack(cands, budget), &res.MeanSDCKnapsack},
			{"topk", protect.SelectTopK(cands, budget), &res.MeanSDCTopK},
		} {
			protected, err := protect.Apply(pd.Module, policy.plan.Selected)
			if err != nil {
				return nil, err
			}
			inj, err := fault.New(protected, cfg.faultOptions(cfg.Seed))
			if err != nil {
				return nil, err
			}
			campaign, err := cfg.campaignRandom(inj,
				"ablation-sel-"+policy.name+"-"+pd.Program.Name, cfg.Samples)
			if err != nil {
				return nil, err
			}
			*policy.dst += campaign.SDCProb() / float64(len(data))
		}
	}
	return res, nil
}
