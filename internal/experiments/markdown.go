package experiments

import (
	"fmt"
	"io"

	"trident/internal/bitlive"
)

// Markdown rendering: the same experiment results as the text renderers,
// as GitHub-flavored tables — used by `cmd/experiments -format md` to
// regenerate the results section of EXPERIMENTS.md mechanically.

// MarkdownTable1 renders Table I as markdown.
func MarkdownTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "### Table I: benchmark characteristics")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | Suite/Author | Area | Static | Dynamic | Output lines | Mem (B) |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %s | %d | %d | %d | %d |\n",
			r.Name, r.Suite, r.Area, r.StaticInstr, r.DynInstr, r.OutputLines, r.MemBytes)
	}
	fmt.Fprintln(w)
}

// MarkdownFig5 renders Figure 5 as markdown.
func MarkdownFig5(w io.Writer, res *Fig5Result) {
	fmt.Fprintln(w, "### Figure 5: overall SDC probabilities (FI vs models)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | FI | ±95% | TRIDENT | fs+fc | fs |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			r.Name, pct(r.FI), pct(r.FIErr), pct(r.Trident), pct(r.FSFC), pct(r.FS))
	}
	fmt.Fprintf(w, "| **mean** | %s | | %s | %s | %s |\n",
		pct(res.MeanFI), pct(res.MeanTrident), pct(res.MeanFSFC), pct(res.MeanFS))
	fmt.Fprintln(w)
	fmt.Fprintf(w, "MAE vs FI: TRIDENT %s, fs+fc %s, fs %s; paired t-test TRIDENT vs FI: p = %.3f.\n",
		pct(res.MAETrident), pct(res.MAEFSFC), pct(res.MAEFS), res.PValueTrident)
	fmt.Fprintln(w)
}

// MarkdownTable2 renders Table II as markdown.
func MarkdownTable2(w io.Writer, res *Table2Result) {
	fmt.Fprintln(w, "### Table II: per-instruction paired t-test p-values (p < 0.05 = rejected)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | Instrs | TRIDENT | fs+fc | fs |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "| %s | %d | %.3f | %.3f | %.3f |\n",
			r.Name, r.Instrs, r.PTrident, r.PFSFC, r.PFS)
	}
	n := len(res.Rows)
	fmt.Fprintf(w, "\nRejections: TRIDENT %d/%d, fs+fc %d/%d, fs %d/%d.\n\n",
		res.RejectedTrident, n, res.RejectedFSFC, n, res.RejectedFS, n)
}

// MarkdownFig6 renders both scalability figures as markdown.
func MarkdownFig6(w io.Writer, a []Fig6aPoint, b []Fig6bPoint) {
	fmt.Fprintln(w, "### Figure 6a: cost of the overall SDC estimate")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Samples | TRIDENT (s) | FI (s) |")
	fmt.Fprintln(w, "|---:|---:|---:|")
	for _, p := range a {
		fmt.Fprintf(w, "| %d | %.2f | %.2f |\n", p.Samples, p.ModelSeconds, p.FISeconds)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "### Figure 6b: cost of per-instruction estimates")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Instrs | TRIDENT (s) | FI-100 (s) | FI-500 (s) | FI-1000 (s) |")
	fmt.Fprintln(w, "|---:|---:|---:|---:|---:|")
	for _, p := range b {
		fmt.Fprintf(w, "| %d | %.2f | %.2f | %.2f | %.2f |\n",
			p.Instrs, p.ModelSeconds, p.FISeconds[100], p.FISeconds[500], p.FISeconds[1000])
	}
	fmt.Fprintln(w)
}

// MarkdownFig7 renders Figure 7 as markdown.
func MarkdownFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "### Figure 7: per-benchmark per-instruction analysis time")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | Instrs | TRIDENT (s) | FI-100 (s) | Pruning | Dyn deps | Static edges |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d | %.4f | %.2f | %.2f%% | %d | %d |\n",
			r.Name, r.Instrs, r.ModelSeconds, r.FISeconds100,
			r.PruningRatio*100, r.DynDeps, r.StaticEdges)
	}
	fmt.Fprintln(w)
}

// MarkdownFig8 renders Figure 8 as markdown.
func MarkdownFig8(w io.Writer, res *Fig8Result) {
	fmt.Fprintln(w, "### Figure 8: SDC probability after selective duplication")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | Baseline | TRI 1/3 | fs+fc 1/3 | fs 1/3 | TRI 2/3 | fs+fc 2/3 | fs 2/3 | Full ovh |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|")
	for _, r := range res.Rows {
		one := r.ByBound["1/3"]
		two := r.ByBound["2/3"]
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s | %s | %.1f%% |\n",
			r.Name, pct(r.BaselineSDC),
			pct(one["trident"].SDC), pct(one["fs+fc"].SDC), pct(one["fs"].SDC),
			pct(two["trident"].SDC), pct(two["fs+fc"].SDC), pct(two["fs"].SDC),
			r.FullOverhead*100)
	}
	fmt.Fprintln(w)
	for _, bound := range []string{"1/3", "2/3"} {
		fmt.Fprintf(w, "Mean SDC reduction at %s: TRIDENT %.0f%%, fs+fc %.0f%%, fs %.0f%%.\n",
			bound,
			res.MeanReduction[bound]["trident"]*100,
			res.MeanReduction[bound]["fs+fc"]*100,
			res.MeanReduction[bound]["fs"]*100)
	}
	fmt.Fprintln(w)
}

// MarkdownFig9 renders Figure 9 as markdown.
func MarkdownFig9(w io.Writer, res *Fig9Result) {
	fmt.Fprintln(w, "### Figure 9: TRIDENT vs ePVF vs PVF")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | FI | TRIDENT | ePVF | PVF |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			r.Name, pct(r.FI), pct(r.Trident), pct(r.EPVF), pct(r.PVF))
	}
	fmt.Fprintf(w, "| **mean** | %s | %s | %s | %s |\n",
		pct(res.MeanFI), pct(res.MeanTrident), pct(res.MeanEPVF), pct(res.MeanPVF))
	fmt.Fprintln(w)
	fmt.Fprintf(w, "MAE vs FI: TRIDENT %s, ePVF %s, PVF %s.\n\n",
		pct(res.MAETrident), pct(res.MAEEPVF), pct(res.MAEPVF))
}

// MarkdownInputs renders the input-sensitivity table as markdown.
func MarkdownInputs(w io.Writer, rows []InputRow) {
	fmt.Fprintln(w, "### Input sensitivity (paper §IX future work)")
	fmt.Fprintln(w)
	fmt.Fprint(w, "| Benchmark |")
	if len(rows) > 0 {
		for _, pt := range rows[0].Points {
			fmt.Fprintf(w, " FI v%d | TRI v%d |", pt.Variant, pt.Variant)
		}
	}
	fmt.Fprintln(w, " FI spread | TRI spread | tracks |")
	fmt.Fprint(w, "|---|")
	if len(rows) > 0 {
		for range rows[0].Points {
			fmt.Fprint(w, "---:|---:|")
		}
	}
	fmt.Fprintln(w, "---:|---:|---|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s |", r.Name)
		for _, pt := range r.Points {
			fmt.Fprintf(w, " %s | %s |", pct(pt.FI), pct(pt.Trident))
		}
		fmt.Fprintf(w, " %s | %s | %v |\n", pct(r.SpreadFI), pct(r.SpreadModel), r.Tracks)
	}
	fmt.Fprintln(w)
}

// MarkdownPruning renders the bit-liveness pruning table as markdown.
func MarkdownPruning(w io.Writer, rows []PruningRow) {
	fmt.Fprintln(w, "### Bit-liveness pruning (DESIGN.md §5i)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | static masked | weighted masked | pruned/total | CI speedup | unpruned (s) | pruned (s) |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %s | %d/%d | %.2fx | %.3f | %.3f |\n",
			r.Name, pct(r.StaticFrac), pct(r.ActFrac),
			r.PrunedTrials, r.Trials, r.SpeedupAtCI, r.UnprunedSeconds, r.PrunedSeconds)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Pruned campaigns reproduce unpruned tallies bit for bit; the CI speedup"+
		" column is the executed-trial multiplier at equal Wilson interval width, 1/(1−weighted).")
	fmt.Fprintln(w)
}

// MarkdownStratify renders the stratified-sampling table as markdown.
func MarkdownStratify(w io.Writer, rows []StratifyRow) {
	fmt.Fprintln(w, "### Stratified live-bit sampling (ANALYSIS.md)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | executed/slots | plain SDC | weighted SDC | ±plain@exec | ±strat | eff n | CI shrink |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d/%d | %s | %s | %s | %s | %.0f | %.3fx |\n",
			r.Name, r.Executed, r.Slots, pct(r.PlainSDC), pct(r.WeightedSDC),
			pct(r.EqualExecErr), pct(r.WeightedErr), r.EffN, r.CIShrink)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Stratified campaigns thin each influence stratum at its plan rate and reweight"+
		" by inverse inclusion probability, so the weighted SDC estimate is unbiased for the"+
		" plain campaign's population; CI shrink compares the weighted Wilson half-width"+
		" against the plain Wilson half-width at the same executed-trial budget.")
	fmt.Fprintln(w)
	markdownStrataBreakdown(w, "Per-stratum execution under the static plan", stratifyStrata(rows))
}

// MarkdownAdaptive renders the adaptive-stratification table as markdown.
func MarkdownAdaptive(w io.Writer, rows []AdaptiveRow) {
	fmt.Fprintln(w, "### Adaptive (Neyman) allocation (ANALYSIS.md)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Benchmark | executed/slots | pilot | pilot % | plain SDC | weighted SDC | ±plain@exec | ±adapt | eff n | adapt shrink | static shrink |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d/%d | %d | %.1f%% | %s | %s | %s | %s | %.0f | %.3fx | %.3fx |\n",
			r.Name, r.Executed, r.Slots, r.PilotExecuted, r.PilotFraction*100,
			pct(r.PlainSDC), pct(r.WeightedSDC), pct(r.EqualExecErr), pct(r.WeightedErr),
			r.EffN, r.AdaptShrink, r.StaticShrink)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The adaptive campaign spends a static-shape pilot prefix estimating per-stratum"+
		" SDC variance, derives Neyman inclusion rates from the pilot tallies, runs the rest"+
		" of the budget under the derived plan, and folds the pilot trials into the final"+
		" Horvitz-Thompson estimate; the shrink columns compare each mode's weighted Wilson"+
		" half-width against the plain half-width at the same executed-trial budget.")
	fmt.Fprintln(w)
	markdownStrataBreakdown(w, "Per-stratum execution under the derived plan", adaptiveStrata(rows))
}

// markdownStrataBreakdown writes the per-stratum grid as a markdown
// table: one row per benchmark, one column per stratum in fixed
// priority order (bitlive.Strata), dash cells for strata the campaign
// drew no slots in — the fixed shape keeps regenerated docs diffable.
func markdownStrataBreakdown(w io.Writer, caption string, rows []strataBreakdownRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s (executed/slots @rate; \"-\" = no drawn slots):\n", caption)
	fmt.Fprintln(w)
	fmt.Fprint(w, "| Benchmark |")
	for _, s := range bitlive.Strata() {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range bitlive.Strata() {
		fmt.Fprint(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "| %s |", r.name)
		for _, ss := range r.strata {
			fmt.Fprintf(w, " %s |", strataCell(ss))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
