package experiments

import (
	"trident/internal/stats"
)

// Fig5Row is one benchmark's overall SDC probability under FI and the
// three models (Figure 5).
type Fig5Row struct {
	Name string
	// FI is the measured SDC probability; FIErr its 95% error bar.
	FI, FIErr float64
	// Trident, FSFC, FS are the model predictions at the same sample
	// count.
	Trident, FSFC, FS float64
}

// Fig5Result is the Figure 5 dataset plus the §V-B1 summary statistics.
type Fig5Result struct {
	Rows []Fig5Row
	// Mean* are the across-benchmark averages the paper quotes
	// (13.59 / 14.83 / 23.76 / 33.85).
	MeanFI, MeanTrident, MeanFSFC, MeanFS float64
	// MAE* are the mean absolute errors versus FI (paper: 4.75 for
	// TRIDENT; the simpler models are 3-4x worse).
	MAETrident, MAEFSFC, MAEFS float64
	// PValueTrident is the paired t-test p-value of TRIDENT vs FI across
	// benchmarks (paper: 0.764; > 0.05 means indistinguishable).
	PValueTrident float64
}

// Fig5 regenerates Figure 5: overall SDC probabilities measured by FI and
// predicted by TRIDENT, fs+fc and fs.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	var fiVals, triVals, fsfcVals, fsVals []float64
	for _, pd := range data {
		campaign, err := cfg.campaignRandom(pd.Injector, "fig5-"+pd.Program.Name, cfg.Samples)
		if err != nil {
			return nil, err
		}
		row := Fig5Row{
			Name:    pd.Program.Name,
			FI:      campaign.SDCProb(),
			FIErr:   campaign.ErrorBar95(),
			Trident: pd.Trident.OverallSDC(cfg.Samples, cfg.Seed).SDC,
			FSFC:    pd.FSFC.OverallSDC(cfg.Samples, cfg.Seed).SDC,
			FS:      pd.FSOnly.OverallSDC(cfg.Samples, cfg.Seed).SDC,
		}
		res.Rows = append(res.Rows, row)
		fiVals = append(fiVals, row.FI)
		triVals = append(triVals, row.Trident)
		fsfcVals = append(fsfcVals, row.FSFC)
		fsVals = append(fsVals, row.FS)
	}

	res.MeanFI = stats.Mean(fiVals)
	res.MeanTrident = stats.Mean(triVals)
	res.MeanFSFC = stats.Mean(fsfcVals)
	res.MeanFS = stats.Mean(fsVals)
	res.MAETrident, _ = stats.MeanAbsError(triVals, fiVals)
	res.MAEFSFC, _ = stats.MeanAbsError(fsfcVals, fiVals)
	res.MAEFS, _ = stats.MeanAbsError(fsVals, fiVals)
	if tt, err := stats.PairedTTest(triVals, fiVals); err == nil {
		res.PValueTrident = tt.P
	}
	return res, nil
}
