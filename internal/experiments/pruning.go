package experiments

// This file measures the bit-liveness pruning pass (internal/bitlive,
// DESIGN.md §5i) as an experiment: for every workload — the 11 paper
// kernels plus the narrow-output kernels the pass targets — it reports
// the static and activation-weighted masked fractions, runs the same
// campaign with and without pruning, and verifies on the fly that the
// two transcripts tally identically (the exact-reweighting contract).
// Because pruned trials classify without executing, a pruned campaign
// reaches the same Wilson CI width with 1/(1-f) fewer executed trials,
// where f is the activation-weighted masked fraction; the table reports
// that executed-trial saving alongside measured wall-clock.

import (
	"fmt"
	"time"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/progs"
)

// PruningRow is one workload's pruning measurement.
type PruningRow struct {
	Name string
	// StaticFrac is the masked share of all static result bits.
	StaticFrac float64
	// ActFrac is the activation-weighted masked fraction — the share of
	// the campaign's sampling space that never executes under pruning.
	ActFrac float64
	// PrunedTrials / Trials is the measured split of the campaign.
	PrunedTrials int
	Trials       int
	// SpeedupAtCI is the executed-trial multiplier at equal CI width:
	// 1/(1-ActFrac). A fully-masked workload (ActFrac == 1, nothing
	// executes) reports the 0 sentinel: the ratio is undefined there,
	// and its literal value +Inf is not a number JSON can carry.
	SpeedupAtCI float64
	// UnprunedSeconds and PrunedSeconds are measured campaign wall times.
	UnprunedSeconds float64
	PrunedSeconds   float64
}

// Pruning measures the pruning pass over the extended workload set (the
// paper kernels keep their honestly-low fractions; the narrow-output
// kernels are where the pass pays). Unless cfg.Programs restricts the
// set, all registered workloads are measured.
func Pruning(cfg Config) ([]PruningRow, error) {
	cfg = cfg.withDefaults()
	names := cfg.Programs
	if len(names) == len(progs.All()) {
		// Default program set: widen to the extended registry, which is
		// the pruning pass's intended coverage.
		names = nil
		for _, p := range progs.Extended() {
			names = append(names, p.Name)
		}
	}
	rows := make([]PruningRow, 0, len(names))
	for _, name := range names {
		p, err := progs.ByName(name)
		if err != nil {
			return nil, err
		}
		row, err := pruneOne(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("pruning/%s: %w", name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func pruneOne(cfg Config, p progs.Program) (*PruningRow, error) {
	run := func(pruneBits bool) (*fault.Injector, *fault.CampaignResult, float64, error) {
		m := p.Build()
		opts := cfg.faultOptions(cfg.Seed)
		opts.PruneBits = pruneBits
		inj, err := fault.New(m, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		start := time.Now()
		res, err := inj.CampaignRandom(cfg.ctx(), cfg.Samples)
		return inj, res, time.Since(start).Seconds(), err
	}
	_, plain, plainSec, err := run(false)
	if err != nil {
		return nil, err
	}
	injPruned, pruned, prunedSec, err := run(true)
	if err != nil {
		return nil, err
	}
	// Exact-reweighting gate: a drifting tally means the table would be
	// reporting a biased estimator, so fail loudly instead.
	for _, o := range fault.AllOutcomes {
		if plain.Counts[o] != pruned.Counts[o] {
			return nil, fmt.Errorf("pruned campaign drifted: count[%s] %d vs %d",
				o, pruned.Counts[o], plain.Counts[o])
		}
	}
	m := p.Build()
	static := bitlive.Analyze(m).ModuleStats(m).Fraction()
	f := injPruned.PrunedFraction()
	return &PruningRow{
		Name:            p.Name,
		StaticFrac:      static,
		ActFrac:         f,
		PrunedTrials:    pruned.PrunedN(),
		Trials:          pruned.N(),
		SpeedupAtCI:     ciSpeedup(f),
		UnprunedSeconds: plainSec,
		PrunedSeconds:   prunedSec,
	}, nil
}

// ciSpeedup returns the equal-CI executed-trial multiplier 1/(1-f) for a
// pruned (or thinned) fraction f, guarding the fully-masked edge: at
// f == 1 the ratio is +Inf, which encoding/json refuses to marshal, so
// the row reports 0 as the "undefined — nothing executes" sentinel.
func ciSpeedup(f float64) float64 {
	if f >= 1 {
		return 0
	}
	return 1 / (1 - f)
}
