package experiments

import (
	"encoding/json"
	"math"
	"testing"

	"trident/internal/ir"
	"trident/internal/progs"
)

// fullyMaskedProgram builds a workload whose entire activation space is
// provably dead: the only result-bearing instruction is an add whose
// value is never used, so bit-liveness masks all 64 of its bits and
// PrunedFraction() == 1. This is the edge that used to drive
// SpeedupAtCI to +Inf and make encoding/json reject the row.
func fullyMaskedProgram() progs.Program {
	return progs.Program{
		Name: "fullymasked",
		Build: func() *ir.Module {
			m := ir.NewModule("fullymasked")
			f := m.NewFunc("main", ir.Void)
			b := ir.NewBuilder(f)
			b.SetBlock(b.NewBlock("entry"))
			b.Add(ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2))
			b.Ret(nil)
			f.Renumber()
			if err := ir.Verify(m); err != nil {
				panic(err)
			}
			return m
		},
	}
}

func TestPruningFullyMaskedRowMarshals(t *testing.T) {
	cfg := Config{Samples: 40, Seed: 3, Programs: []string{"fullymasked"}}
	row, err := pruneOne(cfg, fullyMaskedProgram())
	if err != nil {
		t.Fatal(err)
	}
	if row.ActFrac != 1 {
		t.Fatalf("ActFrac = %v, want 1 (workload is fully masked)", row.ActFrac)
	}
	if row.SpeedupAtCI != 0 {
		t.Fatalf("SpeedupAtCI = %v, want the 0 sentinel at ActFrac == 1", row.SpeedupAtCI)
	}
	if row.PrunedTrials != row.Trials {
		t.Fatalf("pruned %d of %d trials, want all of them", row.PrunedTrials, row.Trials)
	}
	// The regression proper: before the guard this was 1/(1-1) = +Inf,
	// and Marshal failed with "unsupported value: +Inf".
	if _, err := json.Marshal(row); err != nil {
		t.Fatalf("row must marshal to JSON: %v", err)
	}
}

func TestCISpeedup(t *testing.T) {
	cases := []struct{ f, want float64 }{
		{0, 1},
		{0.5, 2},
		{0.9, 10},
		{1, 0},
		{1.0000001, 0},
	}
	for _, c := range cases {
		got := ciSpeedup(c.f)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("ciSpeedup(%v) = %v, must be finite", c.f, got)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("ciSpeedup(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}
