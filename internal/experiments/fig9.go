package experiments

import (
	"trident/internal/baseline"
	"trident/internal/stats"
)

// Fig9Row is one benchmark's overall SDC under FI, TRIDENT, ePVF and PVF
// (Figure 9).
type Fig9Row struct {
	Name                   string
	FI, Trident, EPVF, PVF float64
}

// Fig9Result adds the §VII-C summary statistics (paper means: FI 13.59,
// TRIDENT 14.83, ePVF 52.55, PVF 90.62; MAEs 4.75 / 36.78 / 75.19).
type Fig9Result struct {
	Rows                                   []Fig9Row
	MeanFI, MeanTrident, MeanEPVF, MeanPVF float64
	MAETrident, MAEEPVF, MAEPVF            float64
}

// Fig9 regenerates Figure 9: the PVF/ePVF comparison. ePVF receives
// FI-measured crash rates as its crash model, as the paper's conservative
// reproduction does.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	var fi, tri, ep, pv []float64
	for _, pd := range data {
		campaign, err := cfg.campaignRandom(pd.Injector, "fig9-"+pd.Program.Name, cfg.Samples)
		if err != nil {
			return nil, err
		}
		pvf := baseline.NewPVF(pd.Profile)
		epvf := baseline.NewEPVF(pd.Profile)
		oracle, err := measuredCrashOracle(cfg, pd, cfg.PerInstr/2)
		if err != nil {
			return nil, err
		}
		epvf.CrashOracle = oracle

		row := Fig9Row{
			Name:    pd.Program.Name,
			FI:      campaign.SDCProb(),
			Trident: pd.Trident.OverallSDC(cfg.Samples, cfg.Seed).SDC,
			EPVF:    epvf.OverallSDC(),
			PVF:     pvf.OverallSDC(),
		}
		res.Rows = append(res.Rows, row)
		fi = append(fi, row.FI)
		tri = append(tri, row.Trident)
		ep = append(ep, row.EPVF)
		pv = append(pv, row.PVF)
	}
	res.MeanFI = stats.Mean(fi)
	res.MeanTrident = stats.Mean(tri)
	res.MeanEPVF = stats.Mean(ep)
	res.MeanPVF = stats.Mean(pv)
	res.MAETrident, _ = stats.MeanAbsError(tri, fi)
	res.MAEEPVF, _ = stats.MeanAbsError(ep, fi)
	res.MAEPVF, _ = stats.MeanAbsError(pv, fi)
	return res, nil
}
