package experiments

import (
	"trident/internal/stats"
)

// Table2Row is one benchmark's per-instruction paired t-test p-values for
// the three models (Table II). A p-value above 0.05 means the model's
// per-instruction predictions are statistically indistinguishable from the
// FI measurements.
type Table2Row struct {
	Name string
	// PTrident, PFSFC, PFS are the paired t-test p-values.
	PTrident, PFSFC, PFS float64
	// Instrs is the number of static instructions tested.
	Instrs int
}

// Table2Result aggregates the rejections the paper counts (TRIDENT: 3/11
// rejected; fs+fc: 9/11; fs: 7/11).
type Table2Result struct {
	Rows []Table2Row
	// Rejected* counts benchmarks with p < 0.05 per model.
	RejectedTrident, RejectedFSFC, RejectedFS int
}

// Table2 regenerates Table II: for every executed register-writing
// instruction, measure its SDC probability with PerInstr injections and
// compare the three models' per-instruction predictions via the paired
// t-test.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for _, pd := range data {
		targets := pd.Injector.Targets()
		measured, err := pd.Injector.PerInstrSDC(cfg.ctx(), targets, cfg.PerInstr)
		if err != nil {
			return nil, err
		}
		var fi, tri, fsfc, fs []float64
		for _, in := range targets {
			fi = append(fi, measured[in])
			tri = append(tri, pd.Trident.InstrSDC(in))
			fsfc = append(fsfc, pd.FSFC.InstrSDC(in))
			fs = append(fs, pd.FSOnly.InstrSDC(in))
		}
		row := Table2Row{Name: pd.Program.Name, Instrs: len(targets)}
		row.PTrident = pValue(tri, fi)
		row.PFSFC = pValue(fsfc, fi)
		row.PFS = pValue(fs, fi)
		res.Rows = append(res.Rows, row)
		if row.PTrident < 0.05 {
			res.RejectedTrident++
		}
		if row.PFSFC < 0.05 {
			res.RejectedFSFC++
		}
		if row.PFS < 0.05 {
			res.RejectedFS++
		}
	}
	return res, nil
}

func pValue(pred, meas []float64) float64 {
	tt, err := stats.PairedTTest(pred, meas)
	if err != nil {
		return 1
	}
	return tt.P
}
