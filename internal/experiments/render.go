package experiments

import (
	"fmt"
	"io"
	"strings"

	"trident/internal/bitlive"
	"trident/internal/fault"
)

// pct formats a probability as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// RenderTable1 writes the Table I reproduction.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I: Characteristics of Benchmarks")
	fmt.Fprintf(w, "%-14s %-22s %-34s %8s %10s %7s %8s\n",
		"Benchmark", "Suite/Author", "Area", "Static", "Dynamic", "Output", "MemB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-22s %-34s %8d %10d %7d %8d\n",
			r.Name, r.Suite, r.Area, r.StaticInstr, r.DynInstr, r.OutputLines, r.MemBytes)
	}
}

// RenderFig5 writes the Figure 5 reproduction.
func RenderFig5(w io.Writer, res *Fig5Result) {
	fmt.Fprintln(w, "Figure 5: Overall SDC probabilities (FI vs models)")
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %10s\n",
		"Benchmark", "FI", "±95%", "TRIDENT", "fs+fc", "fs")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %10s\n",
			r.Name, pct(r.FI), pct(r.FIErr), pct(r.Trident), pct(r.FSFC), pct(r.FS))
	}
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %10s\n", "MEAN",
		pct(res.MeanFI), "", pct(res.MeanTrident), pct(res.MeanFSFC), pct(res.MeanFS))
	fmt.Fprintf(w, "MAE vs FI: TRIDENT %s, fs+fc %s, fs %s\n",
		pct(res.MAETrident), pct(res.MAEFSFC), pct(res.MAEFS))
	fmt.Fprintf(w, "paired t-test TRIDENT vs FI across benchmarks: p = %.3f (p > 0.05 means indistinguishable)\n",
		res.PValueTrident)
}

// RenderTable2 writes the Table II reproduction.
func RenderTable2(w io.Writer, res *Table2Result) {
	fmt.Fprintln(w, "Table II: p-values of per-instruction paired t-tests (p < 0.05 = rejected)")
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s\n", "Benchmark", "Instrs", "TRIDENT", "fs+fc", "fs")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-14s %8d %10.3f %10.3f %10.3f\n",
			r.Name, r.Instrs, r.PTrident, r.PFSFC, r.PFS)
	}
	n := len(res.Rows)
	fmt.Fprintf(w, "No. of rejections: TRIDENT %d/%d, fs+fc %d/%d, fs %d/%d\n",
		res.RejectedTrident, n, res.RejectedFSFC, n, res.RejectedFS, n)
}

// RenderFig6a writes the Figure 6a reproduction.
func RenderFig6a(w io.Writer, points []Fig6aPoint) {
	fmt.Fprintln(w, "Figure 6a: computation to predict the overall SDC probability")
	fmt.Fprintf(w, "%10s %16s %16s %10s\n", "Samples", "TRIDENT (s)", "FI (s)", "Speedup")
	for _, p := range points {
		speedup := 0.0
		if p.ModelSeconds > 0 {
			speedup = p.FISeconds / p.ModelSeconds
		}
		fmt.Fprintf(w, "%10d %16.3f %16.3f %9.1fx\n",
			p.Samples, p.ModelSeconds, p.FISeconds, speedup)
	}
}

// RenderFig6b writes the Figure 6b reproduction.
func RenderFig6b(w io.Writer, points []Fig6bPoint) {
	fmt.Fprintln(w, "Figure 6b: computation to predict per-instruction SDC probabilities")
	fmt.Fprintf(w, "%10s %14s %12s %12s %12s\n",
		"Instrs", "TRIDENT (s)", "FI-100 (s)", "FI-500 (s)", "FI-1000 (s)")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %14.3f %12.2f %12.2f %12.2f\n",
			p.Instrs, p.ModelSeconds, p.FISeconds[100], p.FISeconds[500], p.FISeconds[1000])
	}
}

// RenderFig7 writes the Figure 7 reproduction.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: per-benchmark time to derive all per-instruction SDC probabilities")
	fmt.Fprintf(w, "%-14s %8s %14s %12s %10s %10s %8s\n",
		"Benchmark", "Instrs", "TRIDENT (s)", "FI-100 (s)", "Pruning", "DynDeps", "Static")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %14.4f %12.2f %9.2f%% %10d %8d\n",
			r.Name, r.Instrs, r.ModelSeconds, r.FISeconds100,
			r.PruningRatio*100, r.DynDeps, r.StaticEdges)
	}
}

// RenderFig8 writes the Figure 8 reproduction.
func RenderFig8(w io.Writer, res *Fig8Result) {
	fmt.Fprintln(w, "Figure 8: SDC probability after selective duplication (FI-evaluated)")
	fmt.Fprintf(w, "%-14s %9s | %9s %9s %9s | %9s %9s %9s | %9s\n",
		"Benchmark", "Baseline",
		"TRI 1/3", "fsfc 1/3", "fs 1/3",
		"TRI 2/3", "fsfc 2/3", "fs 2/3", "FullOvh")
	for _, r := range res.Rows {
		oneThird := r.ByBound["1/3"]
		twoThirds := r.ByBound["2/3"]
		fmt.Fprintf(w, "%-14s %9s | %9s %9s %9s | %9s %9s %9s | %8.2f%%\n",
			r.Name, pct(r.BaselineSDC),
			pct(oneThird["trident"].SDC), pct(oneThird["fs+fc"].SDC), pct(oneThird["fs"].SDC),
			pct(twoThirds["trident"].SDC), pct(twoThirds["fs+fc"].SDC), pct(twoThirds["fs"].SDC),
			r.FullOverhead*100)
	}
	fmt.Fprintf(w, "mean full-duplication overhead: %.2f%%\n", res.MeanFullOverhead*100)
	for _, bound := range []string{"1/3", "2/3"} {
		fmt.Fprintf(w, "mean SDC reduction at %s bound: TRIDENT %.0f%%, fs+fc %.0f%%, fs %.0f%%\n",
			bound,
			res.MeanReduction[bound]["trident"]*100,
			res.MeanReduction[bound]["fs+fc"]*100,
			res.MeanReduction[bound]["fs"]*100)
	}
}

// RenderFig9 writes the Figure 9 reproduction.
func RenderFig9(w io.Writer, res *Fig9Result) {
	fmt.Fprintln(w, "Figure 9: overall SDC probabilities (FI vs TRIDENT vs ePVF vs PVF)")
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "Benchmark", "FI", "TRIDENT", "ePVF", "PVF")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n",
			r.Name, pct(r.FI), pct(r.Trident), pct(r.EPVF), pct(r.PVF))
	}
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "MEAN",
		pct(res.MeanFI), pct(res.MeanTrident), pct(res.MeanEPVF), pct(res.MeanPVF))
	fmt.Fprintf(w, "MAE vs FI: TRIDENT %s, ePVF %s, PVF %s\n",
		pct(res.MAETrident), pct(res.MAEEPVF), pct(res.MAEPVF))
}

// RenderPruning writes the bit-liveness pruning table.
func RenderPruning(w io.Writer, rows []PruningRow) {
	fmt.Fprintln(w, "Bit-liveness pruning (DESIGN.md §5i): identical results, fewer executed trials")
	fmt.Fprintf(w, "%-14s %10s %10s %14s %12s %12s %12s\n",
		"Benchmark", "static", "weighted", "pruned/total", "CI speedup", "unpruned(s)", "pruned(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10s %10s %8d/%-5d %11.2fx %12.3f %12.3f\n",
			r.Name, pct(r.StaticFrac), pct(r.ActFrac),
			r.PrunedTrials, r.Trials, r.SpeedupAtCI, r.UnprunedSeconds, r.PrunedSeconds)
	}
	fmt.Fprintln(w, "static: masked share of static result bits; weighted: activation-weighted share")
	fmt.Fprintln(w, "CI speedup: executed-trial multiplier at equal Wilson CI width, 1/(1-weighted)")
}

// RenderStratify writes the stratified-sampling table.
func RenderStratify(w io.Writer, rows []StratifyRow) {
	fmt.Fprintln(w, "Stratified live-bit sampling (ANALYSIS.md): unbiased weighted estimates, tighter CIs per executed trial")
	fmt.Fprintf(w, "%-14s %14s %10s %10s %10s %10s %8s %10s %8s\n",
		"Benchmark", "exec/slots", "plain SDC", "wSDC", "±plain@ex", "±strat", "eff n", "CI shrink", "±plain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d/%-5d %10s %10s %10s %10s %8.0f %9.3fx %8s\n",
			r.Name, r.Executed, r.Slots, pct(r.PlainSDC), pct(r.WeightedSDC),
			pct(r.EqualExecErr), pct(r.WeightedErr), r.EffN, r.CIShrink, pct(r.PlainErr))
	}
	fmt.Fprintln(w, "wSDC: Horvitz-Thompson SDC estimate over the drawn slots; ±strat: weighted Wilson half-width")
	fmt.Fprintln(w, "±plain@ex: Wilson half-width a uniform campaign gets for the same executed budget; shrink = ±plain@ex / ±strat")
	renderStrataBreakdown(w, "per-stratum execution under the static plan", stratifyStrata(rows))
}

// RenderAdaptive writes the adaptive-stratification table.
func RenderAdaptive(w io.Writer, rows []AdaptiveRow) {
	fmt.Fprintln(w, "Adaptive Neyman allocation (ANALYSIS.md): pilot-derived plans vs the static default plan")
	fmt.Fprintf(w, "%-14s %14s %7s %7s %10s %10s %10s %10s %8s %9s %9s\n",
		"Benchmark", "exec/slots", "pilot", "pilot%", "plain SDC", "wSDC", "±plain@ex", "±adapt", "eff n", "adapt", "static")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d/%-5d %7d %6.1f%% %10s %10s %10s %10s %8.0f %8.3fx %8.3fx\n",
			r.Name, r.Executed, r.Slots, r.PilotExecuted, r.PilotFraction*100,
			pct(r.PlainSDC), pct(r.WeightedSDC), pct(r.EqualExecErr), pct(r.WeightedErr),
			r.EffN, r.AdaptShrink, r.StaticShrink)
	}
	fmt.Fprintln(w, "adapt/static: equal-executed-budget CI shrink (±plain@ex / weighted half-width) under the")
	fmt.Fprintln(w, "pilot-derived Neyman plan vs the static default plan; pilot trials count against the budget")
	renderStrataBreakdown(w, "per-stratum execution under the derived plan", adaptiveStrata(rows))
}

// strataBreakdownRow pairs a benchmark with its per-stratum summaries
// for the shared breakdown renderers.
type strataBreakdownRow struct {
	name   string
	strata []fault.StratumSummary
}

func stratifyStrata(rows []StratifyRow) []strataBreakdownRow {
	out := make([]strataBreakdownRow, len(rows))
	for i, r := range rows {
		out[i] = strataBreakdownRow{r.Name, r.Strata}
	}
	return out
}

func adaptiveStrata(rows []AdaptiveRow) []strataBreakdownRow {
	out := make([]strataBreakdownRow, len(rows))
	for i, r := range rows {
		out[i] = strataBreakdownRow{r.Name, r.Strata}
	}
	return out
}

// strataCell formats one stratum's execution as "exec/slots @rate", or
// a bare dash when the campaign drew no slots there — the dash keeps
// every row the same shape so tables diff cleanly across runs.
func strataCell(ss fault.StratumSummary) string {
	if ss.Slots == 0 && ss.Executed == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d @%.2f", ss.Executed, ss.Slots, ss.Rate)
}

// renderStrataBreakdown writes the per-stratum grid: one row per
// benchmark, one column per stratum in fixed priority order.
func renderStrataBreakdown(w io.Writer, caption string, rows []strataBreakdownRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s ('-' = no drawn slots):\n", caption)
	fmt.Fprintf(w, "%-14s", "Benchmark")
	for _, s := range bitlive.Strata() {
		fmt.Fprintf(w, " %16s", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.name)
		for _, ss := range r.strata {
			fmt.Fprintf(w, " %16s", strataCell(ss))
		}
		fmt.Fprintln(w)
	}
}

// RenderSeparator writes a section break.
func RenderSeparator(w io.Writer) {
	fmt.Fprintln(w, strings.Repeat("-", 100))
}
