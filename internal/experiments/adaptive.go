package experiments

// This file measures adaptive Neyman-allocation stratification
// (internal/fault CampaignAdaptive, ANALYSIS.md "Adaptive (Neyman)
// allocation") as an experiment: for every workload it runs the same
// campaign plain, stratified under the static default plan, and
// adaptively — static-shape pilot (provably-masked slots thinned at
// the floor), Neyman rates from the pilot's per-stratum tallies, main
// phase under the derived plan, pilot trials folded into the final
// estimate. Both stratified modes are compared
// at equal *executed* trials against the plain Wilson interval, so the
// AdaptShrink vs StaticShrink columns answer the question the adaptive
// machinery exists for: does spending a pilot on variance estimation
// buy a tighter interval than the one static plan we ship?

import (
	"fmt"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/progs"
	"trident/internal/stats"
)

// AdaptiveRow is one workload's adaptive-stratification measurement.
type AdaptiveRow struct {
	Name string
	// Slots is the number of drawn sampling slots; Executed is how many
	// survived pilot + derived-plan thinning (pilot trials included).
	Slots, Executed int
	// PilotExecuted is the executed pilot-prefix trials that bought the
	// plan, and PilotFraction their share of the executed budget.
	PilotExecuted int
	PilotFraction float64
	// PlainSDC is the unstratified campaign's estimate over all Slots
	// trials (the population ground truth the weighted estimator targets).
	PlainSDC float64
	// WeightedSDC is the adaptive campaign's Horvitz-Thompson estimate,
	// WeightedErr its weighted Wilson 95% half-width at effective sample
	// size EffN.
	WeightedSDC, WeightedErr float64
	EffN                     float64
	// EqualExecErr is the Wilson half-width a uniform campaign would
	// report for the adaptive run's executed budget; AdaptShrink =
	// EqualExecErr / WeightedErr. StaticShrink is the same ratio for a
	// campaign under the static default plan — the baseline the adaptive
	// plan must beat to justify its pilot.
	EqualExecErr float64
	AdaptShrink  float64
	StaticShrink float64
	// Plan is the derived main-phase plan, and Strata its per-stratum
	// slot/execution breakdown in fixed stratum-priority order.
	Plan   string
	Strata []fault.StratumSummary
}

// Adaptive measures pilot-derived Neyman plans over the extended
// workload set (like Stratify: the narrow-output kernels are where the
// strata differ enough for allocation to matter). Unless cfg.Programs
// restricts the set, all registered workloads are measured.
func Adaptive(cfg Config) ([]AdaptiveRow, error) {
	cfg = cfg.withDefaults()
	names := cfg.Programs
	if len(names) == len(progs.All()) {
		names = nil
		for _, p := range progs.Extended() {
			names = append(names, p.Name)
		}
	}
	rows := make([]AdaptiveRow, 0, len(names))
	for _, name := range names {
		p, err := progs.ByName(name)
		if err != nil {
			return nil, err
		}
		row, err := adaptiveOne(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("adaptive/%s: %w", name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func adaptiveOne(cfg Config, p progs.Program) (*AdaptiveRow, error) {
	plainInj, err := fault.New(p.Build(), cfg.faultOptions(cfg.Seed))
	if err != nil {
		return nil, err
	}
	plain, err := plainInj.CampaignRandom(cfg.ctx(), cfg.Samples)
	if err != nil {
		return nil, err
	}

	plan := bitlive.DefaultPlan()
	statOpts := cfg.faultOptions(cfg.Seed)
	statOpts.Stratify = &plan
	statInj, err := fault.New(p.Build(), statOpts)
	if err != nil {
		return nil, err
	}
	static, err := statInj.CampaignStratified(cfg.ctx(), cfg.Samples)
	if err != nil {
		return nil, err
	}

	adOpts := cfg.faultOptions(cfg.Seed)
	adOpts.Adaptive = &fault.AdaptiveConfig{}
	adInj, err := fault.New(p.Build(), adOpts)
	if err != nil {
		return nil, err
	}
	ares, err := adInj.CampaignAdaptive(cfg.ctx(), cfg.Samples)
	if err != nil {
		return nil, err
	}

	row := &AdaptiveRow{
		Name:          p.Name,
		Slots:         ares.SlotN,
		Executed:      ares.ExecutedN(),
		PilotExecuted: ares.PilotExecuted,
		PilotFraction: ares.PilotFraction(),
		PlainSDC:      plain.SDCProb(),
		WeightedSDC:   ares.WeightedSDC(),
		WeightedErr:   ares.WeightedErrorBar95(),
		EffN:          ares.EffectiveN(),
		EqualExecErr:  stats.ProportionCI95(plain.SDCProb(), ares.ExecutedN()),
		Plan:          ares.Plan.String(),
		Strata:        ares.Summary(),
	}
	if row.WeightedErr > 0 {
		row.AdaptShrink = row.EqualExecErr / row.WeightedErr
	}
	if staticErr := static.WeightedErrorBar95(); staticErr > 0 {
		row.StaticShrink = stats.ProportionCI95(plain.SDCProb(), static.ExecutedN()) / staticErr
	}
	return row, nil
}
