package experiments

import (
	"fmt"
	"strings"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/protect"
)

// Fig8Cell is one protected configuration's outcome.
type Fig8Cell struct {
	// SDC is the FI-measured SDC probability after protection.
	SDC float64
	// Overhead is the measured dynamic-instruction overhead.
	Overhead float64
	// Selected is the number of duplicated static instructions.
	Selected int
	// Detected is the FI-measured detection rate.
	Detected float64
}

// Fig8Row is one benchmark's protection results (Figure 8): baseline SDC
// plus, for each overhead bound, the protected SDC under each model's
// guidance.
type Fig8Row struct {
	Name string
	// BaselineSDC is the unprotected FI-measured SDC probability.
	BaselineSDC float64
	// FullOverhead is the measured overhead of duplicating everything
	// (paper average: 36.18%).
	FullOverhead float64
	// ByBound maps bound label ("1/3", "2/3") to per-model cells keyed
	// "trident", "fs+fc", "fs".
	ByBound map[string]map[string]Fig8Cell
}

// Fig8Result aggregates the §VI reductions the paper quotes (TRIDENT: 64%
// and 90% SDC reduction at the 1/3 and 2/3 bounds).
type Fig8Result struct {
	Rows []Fig8Row
	// MeanReduction maps bound label to model name to the mean fractional
	// SDC reduction versus baseline.
	MeanReduction map[string]map[string]float64
	// MeanFullOverhead is the across-benchmark full-duplication overhead.
	MeanFullOverhead float64
}

// fig8Bounds are the paper's two protection levels: 1/3 and 2/3 of the
// full-duplication cost.
var fig8Bounds = []struct {
	label string
	num   uint64
	den   uint64
}{
	{"1/3", 1, 3},
	{"2/3", 2, 3},
}

// Fig8 regenerates Figure 8: selective duplication guided by each model at
// the two overhead bounds, evaluated by fault injection (FI is used only
// for evaluation, as in the paper).
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{MeanReduction: map[string]map[string]float64{}}
	sums := map[string]map[string]float64{}
	for _, b := range fig8Bounds {
		res.MeanReduction[b.label] = map[string]float64{}
		sums[b.label] = map[string]float64{}
	}
	fullOverheadSum := 0.0

	for _, pd := range data {
		base, err := cfg.campaignRandom(pd.Injector, "fig8-base-"+pd.Program.Name, cfg.Samples)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{
			Name:        pd.Program.Name,
			BaselineSDC: base.SDCProb(),
			ByBound:     map[string]map[string]Fig8Cell{},
		}

		models := map[string]*core.Model{
			"trident": pd.Trident,
			"fs+fc":   pd.FSFC,
			"fs":      pd.FSOnly,
		}

		// Full duplication sets the overhead baseline.
		fullSDC := sdcMapFor(pd, pd.Trident)
		allCands := protect.Candidates(pd.Profile, fullSDC)
		fullCost := protect.FullCost(allCands)
		fullMod, err := protect.Apply(pd.Module, protect.SelectKnapsack(allCands, fullCost).Selected)
		if err != nil {
			return nil, fmt.Errorf("%s: full duplication: %w", pd.Program.Name, err)
		}
		row.FullOverhead, err = protect.MeasureOverhead(pd.Module, fullMod)
		if err != nil {
			return nil, err
		}
		fullOverheadSum += row.FullOverhead

		for _, bound := range fig8Bounds {
			budget := fullCost * bound.num / bound.den
			cells := map[string]Fig8Cell{}
			for mname, model := range models {
				cands := protect.Candidates(pd.Profile, sdcMapFor(pd, model))
				plan := protect.SelectKnapsack(cands, budget)
				protected, err := protect.Apply(pd.Module, plan.Selected)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", pd.Program.Name, bound.label, mname, err)
				}
				overhead, err := protect.MeasureOverhead(pd.Module, protected)
				if err != nil {
					return nil, err
				}
				inj, err := fault.New(protected, cfg.faultOptions(cfg.Seed))
				if err != nil {
					return nil, err
				}
				boundTag := strings.ReplaceAll(bound.label, "/", "of")
				campaign, err := cfg.campaignRandom(inj,
					"fig8-"+pd.Program.Name+"-"+boundTag+"-"+mname, cfg.Samples)
				if err != nil {
					return nil, err
				}
				cells[mname] = Fig8Cell{
					SDC:      campaign.SDCProb(),
					Overhead: overhead,
					Selected: len(plan.Selected),
					Detected: campaign.Rate(fault.Detected),
				}
				if row.BaselineSDC > 0 {
					reduction := 1 - cells[mname].SDC/row.BaselineSDC
					sums[bound.label][mname] += reduction
				}
			}
			row.ByBound[bound.label] = cells
		}
		res.Rows = append(res.Rows, row)
	}

	n := float64(len(res.Rows))
	for _, bound := range fig8Bounds {
		for mname, s := range sums[bound.label] {
			res.MeanReduction[bound.label][mname] = s / n
		}
	}
	res.MeanFullOverhead = fullOverheadSum / n
	return res, nil
}

// sdcMapFor materializes per-instruction predictions for a model.
func sdcMapFor(pd *ProgramData, model *core.Model) map[*ir.Instr]float64 {
	out := make(map[*ir.Instr]float64)
	pd.Module.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			out[in] = model.InstrSDC(in)
		}
	})
	return out
}
