package experiments

// This file measures stratified live-bit sampling (internal/bitlive
// influence strata + internal/fault Options.Stratify, ANALYSIS.md
// "Stratified sampling over live bits") as an experiment: for every
// workload it runs the same campaign plain and stratified under the
// default plan and compares the two estimates at equal *executed*
// trials — the resource a campaign actually spends. The stratified run
// draws the same deterministic slot stream, thins each stratum at its
// plan rate and reweights by inverse inclusion probability, so its
// weighted SDC estimate is unbiased for the plain campaign's
// population; the payoff column is the CI shrink ratio, the factor by
// which the weighted Wilson interval beats the plain Wilson interval a
// uniform campaign would report for the same executed budget.

import (
	"fmt"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/progs"
	"trident/internal/stats"
)

// StratifyRow is one workload's stratification measurement.
type StratifyRow struct {
	Name string
	// Slots is the number of drawn sampling slots (the plain campaign's
	// trial count); Executed is how many survived stratum thinning.
	Slots, Executed int
	// PlainSDC and PlainErr are the unstratified campaign's SDC estimate
	// and Wilson 95% half-width over all Slots trials.
	PlainSDC, PlainErr float64
	// WeightedSDC is the stratified campaign's Horvitz-Thompson SDC
	// estimate, and WeightedErr its weighted Wilson 95% half-width at the
	// variance-matched effective sample size EffN.
	WeightedSDC, WeightedErr float64
	EffN                     float64
	// EqualExecErr is the Wilson 95% half-width a *uniform* campaign
	// would report if it spent the same executed-trial budget (the plain
	// rate at n = Executed). CIShrink = EqualExecErr / WeightedErr; above
	// 1, stratification buys a tighter interval per executed trial.
	EqualExecErr float64
	CIShrink     float64
	// Strata is the campaign's per-stratum slot/execution breakdown in
	// fixed stratum-priority order (bitlive.Strata), so rendered tables
	// diff cleanly across runs; strata with no drawn slots stay in the
	// slice and render as dash rows.
	Strata []fault.StratumSummary
}

// Stratify measures the default stratification plan over the extended
// workload set (like Pruning: the narrow-output kernels are where the
// masked stratum — and hence the thinning — is large). Unless
// cfg.Programs restricts the set, all registered workloads are measured.
func Stratify(cfg Config) ([]StratifyRow, error) {
	cfg = cfg.withDefaults()
	names := cfg.Programs
	if len(names) == len(progs.All()) {
		names = nil
		for _, p := range progs.Extended() {
			names = append(names, p.Name)
		}
	}
	rows := make([]StratifyRow, 0, len(names))
	for _, name := range names {
		p, err := progs.ByName(name)
		if err != nil {
			return nil, err
		}
		row, err := stratifyOne(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("stratify/%s: %w", name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func stratifyOne(cfg Config, p progs.Program) (*StratifyRow, error) {
	plainInj, err := fault.New(p.Build(), cfg.faultOptions(cfg.Seed))
	if err != nil {
		return nil, err
	}
	plain, err := plainInj.CampaignRandom(cfg.ctx(), cfg.Samples)
	if err != nil {
		return nil, err
	}
	plan := bitlive.DefaultPlan()
	opts := cfg.faultOptions(cfg.Seed)
	opts.Stratify = &plan
	stratInj, err := fault.New(p.Build(), opts)
	if err != nil {
		return nil, err
	}
	sres, err := stratInj.CampaignStratified(cfg.ctx(), cfg.Samples)
	if err != nil {
		return nil, err
	}
	row := &StratifyRow{
		Name:         p.Name,
		Slots:        sres.SlotN,
		Executed:     sres.ExecutedN(),
		PlainSDC:     plain.SDCProb(),
		PlainErr:     plain.ErrorBar95(),
		WeightedSDC:  sres.WeightedSDC(),
		WeightedErr:  sres.WeightedErrorBar95(),
		EffN:         sres.EffectiveN(),
		EqualExecErr: stats.ProportionCI95(plain.SDCProb(), sres.ExecutedN()),
		Strata:       sres.Summary(),
	}
	if row.WeightedErr > 0 {
		row.CIShrink = row.EqualExecErr / row.WeightedErr
	}
	return row, nil
}
