// Package experiments regenerates every table and figure of the paper's
// evaluation (§V–§VII): benchmark characteristics (Table I), overall and
// per-instruction accuracy against fault injection (Fig. 5, Table II),
// scalability (Fig. 6a/6b, Fig. 7), selective-protection effectiveness
// (Fig. 8), and the PVF/ePVF comparison (Fig. 9).
//
// Each experiment returns structured rows; the cmd/experiments binary and
// the repository benchmarks render them. Per-program state (profile,
// injector, models) is cached so experiment suites do not redo work.
// DESIGN.md §4 maps every table and figure to its driver here; the
// pruning experiment is specified in DESIGN.md §5i.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"trident/internal/cache"
	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/progs"
	"trident/internal/telemetry"
)

// Config tunes experiment fidelity. The zero value is replaced by paper
// defaults via withDefaults.
type Config struct {
	// Samples is the FI sample count for overall SDC probabilities
	// (paper: 3000).
	Samples int
	// PerInstr is the FI sample count per static instruction (paper: 100).
	PerInstr int
	// Seed drives all deterministic sampling.
	Seed uint64
	// Programs restricts the benchmark set; empty means all 11.
	Programs []string
	// Workers is the FI campaign parallelism (0 = injector default).
	Workers int
	// Context, when non-nil, cancels in-flight fault-injection campaigns;
	// the experiment run then fails with the context's error instead of
	// running to completion.
	Context context.Context
	// CheckpointDir, when set, persists every statistical campaign as a
	// JSONL log in that directory so an interrupted experiment run resumes
	// with its completed trials replayed from disk.
	CheckpointDir string
	// CacheDir, when set, runs statistical campaigns compositionally
	// against a content-addressed per-function profile cache rooted
	// there: re-running after an edit re-injects only functions whose
	// body hash (or golden-run stamp) changed. Takes precedence over
	// CheckpointDir for statistical campaigns. Note the compositional
	// sampler apportions trials per function, so rates are not expected
	// to be bit-identical to CampaignRandom's global sampler — they are
	// statistically equivalent, and bit-stable run to run.
	CacheDir string
	// SnapshotInterval tunes the injectors' snapshot-replay engine: golden
	// state snapshots are captured roughly this many dynamic instructions
	// apart and trials resume from the nearest one before their injection
	// point. Zero selects the default (2048); negative disables snapshots
	// and runs every trial from instruction zero (the legacy path, kept
	// for differential testing). Campaign results are bit-identical either
	// way.
	SnapshotInterval int
	// Metrics, when non-nil, receives campaign and interpreter telemetry
	// from every injector the experiments build (see OBSERVABILITY.md).
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives a span per program load and per
	// statistical campaign, labeled with the benchmark and experiment.
	Trace *telemetry.Trace
	// Progress, when non-nil, observes every running campaign's trial
	// completions (fault.Options.OnProgress semantics); cmd/experiments
	// feeds it into a live stderr progress line.
	Progress func(fault.Progress)
	// Engine selects the interpreter engine that executes the golden run
	// and every injection trial (fault.Options.Engine semantics). The
	// zero value is the legacy engine; results are bit-identical across
	// engines.
	Engine interp.Engine
}

// faultOptions builds injector options for the given sampling seed,
// resolving the snapshot-interval convention above and threading the
// config's observability sinks into the campaign engine.
func (c Config) faultOptions(seed uint64) fault.Options {
	opts := fault.Options{
		Seed:       seed,
		Workers:    c.Workers,
		Metrics:    c.Metrics,
		Trace:      c.Trace,
		OnProgress: c.Progress,
		Engine:     c.Engine,
	}
	if c.SnapshotInterval > 0 {
		opts.SnapshotInterval = uint64(c.SnapshotInterval)
	}
	return opts
}

// ctx resolves the configured cancellation context.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// campaignRandom runs inj's statistical campaign under the config's
// lifecycle policy: the shared cancellation context and, when
// CheckpointDir is set, a per-label checkpoint log enabling resume. label
// must uniquely identify the campaign within the experiment suite.
func (c Config) campaignRandom(inj *fault.Injector, label string, n int) (*fault.CampaignResult, error) {
	span := c.Trace.Start("experiment-campaign", telemetry.Attrs{"label": label, "n": n})
	var res *fault.CampaignResult
	var err error
	if c.CacheDir != "" {
		res, err = c.campaignCached(inj, n)
	} else if c.CheckpointDir == "" {
		res, err = inj.CampaignRandom(c.ctx(), n)
	} else {
		path := filepath.Join(c.CheckpointDir,
			fmt.Sprintf("%s-seed%d-n%d.jsonl", label, c.Seed, n))
		res, err = inj.CampaignRandomCheckpoint(c.ctx(), n, path)
	}
	if res != nil {
		span.EndWith(telemetry.Attrs{"done": res.N(), "sdc": res.Counts[fault.SDC]})
	} else {
		span.EndWith(telemetry.Attrs{"err": fmt.Sprint(err)})
	}
	return res, err
}

// campaignCached runs inj's statistical campaign through the
// compositional per-function profile cache rooted at CacheDir and
// flattens the result back to a CampaignResult so every experiment
// renders identically. Cache hits skip injection entirely; misses run
// live and populate the cache for the next experiment run.
func (c Config) campaignCached(inj *fault.Injector, n int) (*fault.CampaignResult, error) {
	store, err := cache.Open(c.CacheDir, cache.Options{Metrics: c.Metrics, Trace: c.Trace})
	if err != nil {
		return nil, err
	}
	comp, err := inj.CampaignCompositional(c.ctx(), n, store)
	if err != nil {
		return nil, err
	}
	return comp.Merged()
}

func (c Config) withDefaults() Config {
	if c.Samples == 0 {
		c.Samples = 3000
	}
	if c.PerInstr == 0 {
		c.PerInstr = 100
	}
	if c.Seed == 0 {
		c.Seed = 2018 // DSN'18
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 2048
	}
	if len(c.Programs) == 0 {
		for _, p := range progs.All() {
			c.Programs = append(c.Programs, p.Name)
		}
	}
	return c
}

// ProgramData is the cached per-program state shared by experiments.
type ProgramData struct {
	Program  progs.Program
	Module   *ir.Module
	Profile  *profile.Profile
	Injector *fault.Injector

	Trident *core.Model
	FSFC    *core.Model
	FSOnly  *core.Model
}

// loader caches ProgramData by (name, seed).
type loader struct {
	mu    sync.Mutex
	cache map[string]*ProgramData
}

var sharedLoader = &loader{cache: make(map[string]*ProgramData)}

// Load builds (or returns cached) per-program state.
func Load(name string, cfg Config) (*ProgramData, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("%s/%d/%d/%d", name, cfg.Seed, cfg.Workers, cfg.SnapshotInterval)
	sharedLoader.mu.Lock()
	defer sharedLoader.mu.Unlock()
	if pd, ok := sharedLoader.cache[key]; ok {
		return pd, nil
	}

	prog, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	span := cfg.Trace.Start("load", telemetry.Attrs{"program": name})
	m := prog.Build()
	prof, err := profile.Collect(m, profile.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	inj, err := fault.New(m, cfg.faultOptions(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	span.End()
	pd := &ProgramData{
		Program:  prog,
		Module:   m,
		Profile:  prof,
		Injector: inj,
		Trident:  core.New(prof, core.TridentConfig()),
		FSFC:     core.New(prof, core.FSFCConfig()),
		FSOnly:   core.New(prof, core.FSOnlyConfig()),
	}
	sharedLoader.cache[key] = pd
	return pd, nil
}

// loadAll loads the configured program set.
func loadAll(cfg Config) ([]*ProgramData, error) {
	cfg = cfg.withDefaults()
	out := make([]*ProgramData, 0, len(cfg.Programs))
	for _, name := range cfg.Programs {
		pd, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pd)
	}
	return out, nil
}

// Table1Row is one benchmark-characteristics row (Table I).
type Table1Row struct {
	Name        string
	Suite       string
	Area        string
	Input       string
	StaticInstr int
	DynInstr    uint64
	OutputLines int
	MemBytes    uint64
}

// Table1 regenerates Table I with the synthetic workloads' measured
// characteristics appended.
func Table1(cfg Config) ([]Table1Row, error) {
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(data))
	for _, pd := range data {
		rows = append(rows, Table1Row{
			Name:        pd.Program.Name,
			Suite:       pd.Program.Suite,
			Area:        pd.Program.Area,
			Input:       pd.Program.Input,
			StaticInstr: pd.Module.NumInstrs(),
			DynInstr:    pd.Profile.Golden.DynInstrs,
			OutputLines: pd.Profile.Golden.OutputLines,
			MemBytes:    pd.Profile.PeakMemBytes,
		})
	}
	return rows, nil
}

// goldenCheck re-runs a program and confirms the golden output is
// reproduced; used as a sanity gate by the CLI.
func goldenCheck(pd *ProgramData) error {
	res, err := interp.Run(pd.Module, interp.Options{})
	if err != nil {
		return err
	}
	if res.Outcome != interp.OutcomeOK || res.Output != pd.Injector.GoldenOutput() {
		return fmt.Errorf("%s: golden output not reproduced", pd.Program.Name)
	}
	return nil
}

// measuredCrashOracle builds an FI-measured per-instruction crash-rate
// oracle for the ePVF baseline, as the paper did (§VII-C gives ePVF its
// measured crashes, overestimating its accuracy).
func measuredCrashOracle(cfg Config, pd *ProgramData, perInstr int) (func(*ir.Instr) float64, error) {
	rates := make(map[*ir.Instr]float64)
	for _, target := range pd.Injector.Targets() {
		res, err := pd.Injector.CampaignPerInstr(cfg.ctx(), target, perInstr)
		if err != nil {
			return nil, err
		}
		rates[target] = res.Rate(fault.Crash)
	}
	return func(in *ir.Instr) float64 { return rates[in] }, nil
}

// freshModel builds an uncached TRIDENT model over pd's profile so timing
// measurements do not benefit from caches warmed by earlier experiments.
func freshModel(pd *ProgramData) *core.Model {
	return core.New(pd.Profile, core.TridentConfig())
}

// reprofile re-collects pd's profile, for measuring the fixed profiling
// cost of the model pipeline.
func reprofile(pd *ProgramData) {
	_, _ = profile.Collect(pd.Module, profile.Options{})
}
