package experiments

import (
	"fmt"
	"io"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/profile"
	"trident/internal/progs"
)

// InputPoint is one (program, input variant) measurement.
type InputPoint struct {
	Variant int
	// FI and Trident are the measured and predicted SDC probabilities for
	// this input.
	FI, Trident float64
}

// InputRow is one benchmark's input sensitivity.
type InputRow struct {
	Name   string
	Points []InputPoint
	// SpreadFI and SpreadModel are max-min across variants: how much the
	// SDC probability moves with the input (Di Leo et al.'s observation,
	// the paper's §IX future work).
	SpreadFI, SpreadModel float64
	// Tracks reports whether the model profiled on variant 0 ranks the
	// variants in the same order as FI does (coarse transferability).
	Tracks bool
}

// InputSensitivity measures, for each configured benchmark, the overall
// SDC probability under several synthetic input variants — by FI and by
// the model re-profiled per input. The paper leaves multi-input modeling
// to future work; this experiment quantifies how much the single-input
// assumption costs on this suite.
func InputSensitivity(cfg Config, variants int) ([]InputRow, error) {
	cfg = cfg.withDefaults()
	if variants <= 0 {
		variants = 3
	}
	rows := make([]InputRow, 0, len(cfg.Programs))
	for _, name := range cfg.Programs {
		prog, err := progs.ByName(name)
		if err != nil {
			return nil, err
		}
		if prog.BuildInput == nil {
			continue
		}
		row := InputRow{Name: name}
		var fiMin, fiMax, mMin, mMax float64
		for v := 0; v < variants; v++ {
			m := prog.BuildInput(v)
			inj, err := fault.New(m, cfg.faultOptions(cfg.Seed+uint64(v)))
			if err != nil {
				return nil, fmt.Errorf("%s variant %d: %w", name, v, err)
			}
			campaign, err := cfg.campaignRandom(inj,
				fmt.Sprintf("inputs-%s-v%d", name, v), cfg.Samples)
			if err != nil {
				return nil, err
			}
			prof, err := profile.Collect(m, profile.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			model := core.New(prof, core.TridentConfig())
			pt := InputPoint{
				Variant: v,
				FI:      campaign.SDCProb(),
				Trident: model.OverallSDC(0, cfg.Seed).SDC,
			}
			row.Points = append(row.Points, pt)
			if v == 0 {
				fiMin, fiMax, mMin, mMax = pt.FI, pt.FI, pt.Trident, pt.Trident
			} else {
				fiMin, fiMax = min(fiMin, pt.FI), max(fiMax, pt.FI)
				mMin, mMax = min(mMin, pt.Trident), max(mMax, pt.Trident)
			}
		}
		row.SpreadFI = fiMax - fiMin
		row.SpreadModel = mMax - mMin
		row.Tracks = sameOrder(row.Points)
		rows = append(rows, row)
	}
	return rows, nil
}

// sameOrder reports whether FI and the model rank the variants identically.
func sameOrder(points []InputPoint) bool {
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			fiLess := points[i].FI < points[j].FI
			mLess := points[i].Trident < points[j].Trident
			if fiLess != mLess {
				return false
			}
		}
	}
	return true
}

// RenderInputs writes the input-sensitivity table.
func RenderInputs(w io.Writer, rows []InputRow) {
	fmt.Fprintln(w, "Input sensitivity (paper §IX future work): overall SDC per input variant")
	fmt.Fprintf(w, "%-14s", "Benchmark")
	if len(rows) > 0 {
		for _, pt := range rows[0].Points {
			fmt.Fprintf(w, "  FI[v%d] TRI[v%d]", pt.Variant, pt.Variant)
		}
	}
	fmt.Fprintf(w, " %9s %9s %7s\n", "FI-spread", "TRI-sprd", "tracks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, pt := range r.Points {
			fmt.Fprintf(w, " %6.1f%% %7.1f%%", pt.FI*100, pt.Trident*100)
		}
		fmt.Fprintf(w, " %8.1f%% %8.1f%% %7v\n", r.SpreadFI*100, r.SpreadModel*100, r.Tracks)
	}
}
