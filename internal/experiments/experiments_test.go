package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps test-time experiment runs small; accuracy claims are
// validated by the full runs recorded in EXPERIMENTS.md.
var quickCfg = Config{
	Samples:  200,
	PerInstr: 20,
	Seed:     7,
	Programs: []string{"pathfinder", "hercules", "libquantum"},
}

func TestTable1(t *testing.T) {
	rows, err := Table1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.StaticInstr == 0 || r.DynInstr == 0 || r.OutputLines == 0 {
			t.Errorf("%s: empty characteristics %+v", r.Name, r)
		}
	}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	if !strings.Contains(sb.String(), "pathfinder") {
		t.Error("render missing benchmark")
	}
}

func TestFig5Quick(t *testing.T) {
	res, err := Fig5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		for name, v := range map[string]float64{
			"fi": r.FI, "trident": r.Trident, "fsfc": r.FSFC, "fs": r.FS,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s/%s = %v out of range", r.Name, name, v)
			}
		}
	}
	// The headline shape: TRIDENT closer to FI than the simpler models on
	// average.
	if res.MAETrident > res.MAEFSFC && res.MAETrident > res.MAEFS {
		t.Errorf("TRIDENT MAE %v worse than both simpler models (%v, %v)",
			res.MAETrident, res.MAEFSFC, res.MAEFS)
	}
	var sb strings.Builder
	RenderFig5(&sb, res)
	if !strings.Contains(sb.String(), "MAE vs FI") {
		t.Error("render incomplete")
	}
}

func TestTable2Quick(t *testing.T) {
	res, err := Table2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, p := range []float64{r.PTrident, r.PFSFC, r.PFS} {
			if p < 0 || p > 1 {
				t.Errorf("%s: p-value %v out of range", r.Name, p)
			}
		}
	}
	var sb strings.Builder
	RenderTable2(&sb, res)
	if !strings.Contains(sb.String(), "rejections") {
		t.Error("render incomplete")
	}
}

func TestFig6Quick(t *testing.T) {
	a, err := Fig6a(quickCfg, []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || a[0].FISeconds >= a[1].FISeconds {
		t.Errorf("FI cost must grow with samples: %+v", a)
	}
	b, err := Fig6b(quickCfg, []int{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("got %d points", len(b))
	}
	if b[1].FISeconds[1000] <= b[1].FISeconds[100] {
		t.Error("FI-1000 must cost more than FI-100")
	}
	var sb strings.Builder
	RenderFig6a(&sb, a)
	RenderFig6b(&sb, b)
	if !strings.Contains(sb.String(), "Figure 6b") {
		t.Error("render incomplete")
	}
}

func TestFig7Quick(t *testing.T) {
	rows, err := Fig7(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PruningRatio < 0 || r.PruningRatio > 1 {
			t.Errorf("%s pruning ratio %v", r.Name, r.PruningRatio)
		}
		if r.FISeconds100 <= r.ModelSeconds {
			t.Errorf("%s: FI-100 (%v s) should cost more than the model (%v s)",
				r.Name, r.FISeconds100, r.ModelSeconds)
		}
	}
	var sb strings.Builder
	RenderFig7(&sb, rows)
	if !strings.Contains(sb.String(), "Pruning") {
		t.Error("render incomplete")
	}
}

func TestFig8Quick(t *testing.T) {
	cfg := quickCfg
	cfg.Programs = []string{"pathfinder"}
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	r := res.Rows[0]
	if r.FullOverhead <= 0 {
		t.Error("full duplication should have positive overhead")
	}
	for _, bound := range []string{"1/3", "2/3"} {
		cells, ok := r.ByBound[bound]
		if !ok {
			t.Fatalf("missing bound %s", bound)
		}
		for mname, c := range cells {
			if c.Selected == 0 {
				t.Errorf("%s at %s selected nothing", mname, bound)
			}
			// Paper: the knapsack respects the bound; measured overhead
			// stays in the vicinity of the requested share.
			if c.Overhead > r.FullOverhead*1.2 {
				t.Errorf("%s at %s overhead %v exceeds full %v",
					mname, bound, c.Overhead, r.FullOverhead)
			}
		}
	}
	// Protection at 2/3 must beat baseline under TRIDENT guidance.
	if sdc := r.ByBound["2/3"]["trident"].SDC; sdc > r.BaselineSDC {
		t.Errorf("2/3 TRIDENT protection made SDC worse: %v > %v", sdc, r.BaselineSDC)
	}
	var sb strings.Builder
	RenderFig8(&sb, res)
	if !strings.Contains(sb.String(), "mean SDC reduction") {
		t.Error("render incomplete")
	}
}

func TestFig9Quick(t *testing.T) {
	res, err := Fig9(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// Paper ordering: PVF >> ePVF >= TRIDENT ≈ FI on average.
	if res.MeanPVF < res.MeanEPVF {
		t.Errorf("PVF (%v) should be above ePVF (%v)", res.MeanPVF, res.MeanEPVF)
	}
	if res.MAETrident > res.MAEPVF {
		t.Errorf("TRIDENT MAE (%v) should beat PVF (%v)", res.MAETrident, res.MAEPVF)
	}
	var sb strings.Builder
	RenderFig9(&sb, res)
	if !strings.Contains(sb.String(), "PVF") {
		t.Error("render incomplete")
	}
}

func TestAblationsQuick(t *testing.T) {
	cfg := quickCfg
	cfg.Programs = []string{"pathfinder", "bfs-rodinia"}

	vp, err := AblationValueProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vp.MAEWith < 0 || vp.MAEWithout < 0 {
		t.Error("negative MAE")
	}

	pr, err := AblationPruning(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pr.MaxDivergence > 1e-6 {
		t.Errorf("pruning changed fm results by %v; must be exact", pr.MaxDivergence)
	}
	if pr.DynDeps <= uint64(pr.StaticEdges) {
		t.Error("dynamic deps should outnumber static edges")
	}

	fp, err := AblationFixpoint(cfg, []int{1, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 2 {
		t.Fatal("want 2 points")
	}
	if fp[0].MeanSDC > fp[1].MeanSDC+1e-9 {
		t.Error("more sweeps must not reduce the (monotone) prediction")
	}

	kn, err := AblationKnapsack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kn.MeanSDCKnapsack < 0 || kn.MeanSDCTopK < 0 {
		t.Error("negative SDC")
	}
}

func TestGoldenCheck(t *testing.T) {
	pd, err := Load("pathfinder", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := goldenCheck(pd); err != nil {
		t.Error(err)
	}
}

func TestInputSensitivityQuick(t *testing.T) {
	cfg := quickCfg
	cfg.Programs = []string{"pathfinder", "nw"}
	rows, err := InputSensitivity(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Points) != 2 {
			t.Fatalf("%s: %d points", r.Name, len(r.Points))
		}
		for _, pt := range r.Points {
			if pt.FI < 0 || pt.FI > 1 || pt.Trident < 0 || pt.Trident > 1 {
				t.Errorf("%s v%d out of range: %+v", r.Name, pt.Variant, pt)
			}
		}
		if r.SpreadFI < 0 || r.SpreadModel < 0 {
			t.Errorf("%s: negative spread", r.Name)
		}
	}
	var sb strings.Builder
	RenderInputs(&sb, rows)
	if !strings.Contains(sb.String(), "Input sensitivity") {
		t.Error("render incomplete")
	}
}

func TestAdaptiveQuick(t *testing.T) {
	cfg := quickCfg
	cfg.Programs = []string{"rgb2gray"}
	rows, err := Adaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Executed <= 0 || r.Executed > r.Slots {
		t.Errorf("executed %d of %d slots", r.Executed, r.Slots)
	}
	if r.PilotExecuted <= 0 || r.PilotExecuted > r.Executed {
		t.Errorf("pilot executed %d of %d executed trials", r.PilotExecuted, r.Executed)
	}
	if r.PilotFraction <= 0 || r.PilotFraction > 1 {
		t.Errorf("pilot fraction %v out of (0, 1]", r.PilotFraction)
	}
	if r.WeightedSDC < 0 || r.WeightedSDC > 1 {
		t.Errorf("weighted SDC %v out of [0, 1]", r.WeightedSDC)
	}
	if r.AdaptShrink <= 0 || r.StaticShrink <= 0 {
		t.Errorf("shrink ratios adapt=%v static=%v, want both positive", r.AdaptShrink, r.StaticShrink)
	}
	if r.Plan == "" || len(r.Strata) == 0 {
		t.Errorf("row is missing the derived plan (%q) or strata breakdown (%d)", r.Plan, len(r.Strata))
	}
}

func TestMarkdownRenderers(t *testing.T) {
	cfg := quickCfg
	cfg.Programs = []string{"pathfinder"}

	var sb strings.Builder
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownTable1(&sb, rows)

	fig5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownFig5(&sb, fig5)

	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownTable2(&sb, t2)

	a, err := Fig6a(cfg, []int{30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6b(cfg, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	MarkdownFig6(&sb, a, b)

	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownFig7(&sb, f7)

	f9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownFig9(&sb, f9)

	inputs, err := InputSensitivity(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownInputs(&sb, inputs)

	srows, err := Stratify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownStratify(&sb, srows)

	arows, err := Adaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	MarkdownAdaptive(&sb, arows)

	out := sb.String()
	for _, want := range []string{
		"### Table I", "### Figure 5", "### Table II", "### Figure 6a",
		"### Figure 7", "### Figure 9", "### Input sensitivity",
		"### Stratified live-bit sampling (ANALYSIS.md)",
		"### Adaptive (Neyman) allocation (ANALYSIS.md)", "| pathfinder |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q", want)
		}
	}
	// Markdown tables must have balanced header/separator columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|---") && !strings.HasSuffix(line, "|") {
			t.Errorf("unterminated separator row: %q", line)
		}
	}
}
