package experiments

import (
	"time"
)

// Fig7Row is one benchmark's cost to derive all per-instruction SDC
// probabilities, with the memory-graph pruning statistics the paper
// correlates with it (§V-C2: PureMD prunes 0.08%, Pathfinder 99.83%,
// average 61.87% of dynamic dependencies removed).
type Fig7Row struct {
	Name string
	// ModelSeconds is the wall-clock time for TRIDENT to predict every
	// executed instruction (profiling excluded, as in Fig. 7's caption).
	ModelSeconds float64
	// FISeconds100 is the projected cost of FI-100 over the same targets.
	FISeconds100 float64
	// Instrs is the number of targets.
	Instrs int
	// PruningRatio is the fraction of dynamic memory dependencies removed
	// by static aggregation.
	PruningRatio float64
	// DynDeps and StaticEdges quantify the graph reduction.
	DynDeps     uint64
	StaticEdges int
}

// Fig7 regenerates Figure 7: per-benchmark per-instruction analysis cost,
// plus the pruning statistics quoted alongside it.
func Fig7(cfg Config) ([]Fig7Row, error) {
	cfg = cfg.withDefaults()
	data, err := loadAll(cfg)
	if err != nil {
		return nil, err
	}
	perTrial, err := meanTrialSeconds(cfg, data, 30)
	if err != nil {
		return nil, err
	}

	rows := make([]Fig7Row, 0, len(data))
	for _, pd := range data {
		targets := pd.Injector.Targets()
		model := freshModel(pd)
		start := time.Now()
		for _, in := range targets {
			model.InstrSDC(in)
		}
		elapsed := time.Since(start).Seconds()
		rows = append(rows, Fig7Row{
			Name:         pd.Program.Name,
			ModelSeconds: elapsed,
			FISeconds100: perTrial * float64(len(targets)) * 100,
			Instrs:       len(targets),
			PruningRatio: pd.Profile.PruningRatio(),
			DynDeps:      pd.Profile.DynMemDeps,
			StaticEdges:  pd.Profile.NumStaticMemEdges(),
		})
	}
	return rows, nil
}
