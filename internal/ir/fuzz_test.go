package ir

import (
	"strings"
	"testing"
)

// FuzzParse drives the parser with arbitrary text: it must never panic,
// and whenever it accepts an input, printing and re-parsing must be a
// fixed point (the round-trip invariant).
//
// Run with: go test -fuzz=FuzzParse ./internal/ir
// Without -fuzz it executes the seed corpus as regular tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleSource,
		"module \"m\"\nfunc @main() void {\nentry:\n  ret\n}\n",
		"module \"m\"\nglobal @g i32 x 4 = [1, 2]\nfunc @main() void {\nentry:\n  %v = load i32, @g\n  print %v\n  ret\n}\n",
		"",
		"module",
		"module \"m\"\nfunc @main() void {\nentry:\n  %x = add i32 1\n  ret\n}\n",
		"module \"m\"\nfunc @main() void {\nentry:\n  %x = phi i32 [i32 1, entry]\n  ret\n}\n",
		strings.Repeat("module \"m\"\n", 3),
		"module \"m\"\nfunc @f(%a i64) i64 {\nentry:\n  ret %a\n}\nfunc @main() void {\nentry:\n  %x = call @f(i64 1)\n  print %x\n  ret\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		text1 := Print(m)
		m2, err := Parse(text1)
		if err != nil {
			t.Fatalf("accepted module does not re-parse: %v\n%s", err, text1)
		}
		if text2 := Print(m2); text1 != text2 {
			t.Fatalf("print/parse not a fixed point:\n%s\nvs\n%s", text1, text2)
		}
	})
}
