package ir

import (
	"strings"
	"testing"
)

const sampleSource = `
module "sample"

global @data i32 x 8 = [3, 1, 4, 1, 5]
global @coef f64 x 2 = [0.5, -1.25]

func @scale(%x i32) i32 {
entry:
  %d = mul %x, i32 2
  ret %d
}

func @main() void {
entry:
  %buf = alloca i32 x 8
  br loop
loop:
  %i = phi i32 [i32 0, entry], [%inc, body]
  %c = icmp slt %i, i32 8
  condbr %c, body, done
body:
  %src = gep i32, @data, %i
  %v = load i32, %src
  %sv = call @scale(%v)
  %dst = gep i32, %buf, %i
  store %sv, %dst
  %inc = add %i, i32 1
  br loop
done:
  %p0 = gep i32, %buf, i32 0
  %first = load i32, %p0
  %f = sitofp %first to f64
  %cp = gep f64, @coef, i32 1
  %cv = load f64, %cp
  %scaled = fmul %f, %cv
  %root = intrinsic fabs(%scaled)
  print %root
  print g2 %scaled
  ret
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleSource)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "sample" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.Globals) != 2 || len(m.Funcs) != 2 {
		t.Fatalf("got %d globals, %d funcs", len(m.Globals), len(m.Funcs))
	}
	data := m.Global("data")
	if data.Count != 8 || len(data.Init) != 5 || data.Init[2] != 4 {
		t.Errorf("global data parsed wrong: %+v", data)
	}
	coef := m.Global("coef")
	if FloatFromBits(F64, coef.Init[1]) != -1.25 {
		t.Errorf("coef[1] = %v", FloatFromBits(F64, coef.Init[1]))
	}

	main := m.Func("main")
	loop := main.Block("loop")
	phi := loop.Instrs[0]
	if phi.Op != OpPhi || len(phi.Operands) != 2 {
		t.Fatalf("phi parsed wrong: %v", phi)
	}
	if phi.PhiBlocks[0].Name != "entry" || phi.PhiBlocks[1].Name != "body" {
		t.Errorf("phi blocks = %s, %s", phi.PhiBlocks[0].Name, phi.PhiBlocks[1].Name)
	}
	// %inc is a forward reference resolved to the add in body.
	inc, ok := phi.Operands[1].(*Instr)
	if !ok || inc.Op != OpAdd {
		t.Errorf("phi forward reference not resolved: %v", phi.Operands[1])
	}

	done := main.Block("done")
	var prints []*Instr
	for _, in := range done.Instrs {
		if in.Op == OpPrint {
			prints = append(prints, in)
		}
	}
	if len(prints) != 2 {
		t.Fatalf("got %d prints", len(prints))
	}
	if prints[0].Format != FormatDefault || prints[1].Format != FormatG2 {
		t.Error("print formats parsed wrong")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m1, err := Parse(sampleSource)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text1 := Print(m1)
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("Parse of printed module: %v\n%s", err, text1)
	}
	text2 := Print(m2)
	if text1 != text2 {
		t.Errorf("print/parse/print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
			text1, text2)
	}
}

func TestBuiltThenPrintedParses(t *testing.T) {
	m := buildCountdown(t)
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Print(built)): %v\n%s", err, text)
	}
	if m2.Func("main").NumInstrs() != m.Func("main").NumInstrs() {
		t.Error("instruction count changed across round trip")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no module", "func @main() void {\nentry:\n  ret\n}\n", "expected module"},
		{"bad opcode", "module \"m\"\nfunc @main() void {\nentry:\n  %x = frobnicate i32 1, i32 2\n  ret\n}\n", "unknown opcode"},
		{"unknown register", "module \"m\"\nfunc @main() void {\nentry:\n  %x = add %nope, i32 1\n  ret\n}\n", "unknown register"},
		{"unknown global", "module \"m\"\nfunc @main() void {\nentry:\n  %x = load i32, @nope\n  ret\n}\n", "unknown global"},
		{"unknown block", "module \"m\"\nfunc @main() void {\nentry:\n  br nowhere\n}\n", "unknown block"},
		{"redefined register", "module \"m\"\nfunc @main() void {\nentry:\n  %x = add i32 1, i32 1\n  %x = add i32 2, i32 2\n  ret\n}\n", "redefined"},
		{"type error caught by verify", "module \"m\"\nfunc @main() void {\nentry:\n  %x = add i32 1, i64 2\n  ret\n}\n", "verification"},
		{"bad predicate", "module \"m\"\nfunc @main() void {\nentry:\n  %x = icmp wat i32 1, i32 2\n  ret\n}\n", "unknown predicate"},
		{"unterminated func", "module \"m\"\nfunc @main() void {\nentry:\n  ret\n", "unexpected EOF"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %v, want substring %q", err, tt.want)
			}
		})
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := `
; leading comment
module "c"   ; trailing comment

func @main() void {
entry:
  ; a comment on its own

  %x = add i32 1, i32 2 ; inline
  print %x
  ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Func("main").NumInstrs() != 3 {
		t.Errorf("NumInstrs = %d, want 3", m.Func("main").NumInstrs())
	}
}

func TestFormatInstrSpellings(t *testing.T) {
	m, err := Parse(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(m)
	for _, want := range []string{
		"%c = icmp slt %i, i32 8",
		"condbr %c, body, done",
		"%i = phi i32 [i32 0, entry], [%inc, body]",
		"%sv = call @scale(%v)",
		"store %sv, %dst",
		"%root = intrinsic fabs(%scaled)",
		"print g2 %scaled",
		"global @coef f64 x 2 = [0.5, -1.25]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q\n%s", want, text)
		}
	}
}

func TestParseCheckInstruction(t *testing.T) {
	m, err := Parse(`
module "chk"
func @main() void {
entry:
  %a = add i64 1, i64 2
  %b = add i64 1, i64 2
  check %a, %b
  print %a
  ret
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var chk *Instr
	m.Instrs(func(in *Instr) {
		if in.Op == OpCheck {
			chk = in
		}
	})
	if chk == nil {
		t.Fatal("no check instruction")
	}
	if !strings.Contains(Print(m), "check %a, %b") {
		t.Error("check not printed")
	}
	// Mismatched check operand types are rejected.
	if _, err := Parse(`
module "bad"
func @main() void {
entry:
  %a = add i64 1, i64 2
  %b = add i32 1, i32 2
  check %a, %b
  ret
}
`); err == nil {
		t.Error("mismatched check types should fail verification")
	}
}

func TestParseIntrinsicArityErrors(t *testing.T) {
	for _, src := range []string{
		"module \"m\"\nfunc @main() void {\nentry:\n  %x = intrinsic fabs()\n  ret\n}\n",
		"module \"m\"\nfunc @main() void {\nentry:\n  %x = intrinsic pow(f64 1.0)\n  ret\n}\n",
		"module \"m\"\nfunc @main() void {\nentry:\n  %x = intrinsic sqrt(f64 1.0, f64 2.0)\n  ret\n}\n",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("arity-violating intrinsic accepted: %s", src)
		}
	}
}

// Hex literals wider than their declared type must truncate exactly like
// decimal ones; an un-truncated constant makes a hand-written module
// diverge semantically from its printed-and-reparsed form (found by the
// crosscheck parser round-trip fuzzing).
func TestParseHexLiteralTruncates(t *testing.T) {
	m, err := Parse(`
module "hex"
global @g i8 x 2 = [0xfff, 0x1]
func @main() void {
entry:
  %a = add i8 0xfff, i8 0
  print %a
  ret
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := m.Global("g").Init[0]; got != 0xff {
		t.Errorf("global hex init bits = %#x, want 0xff", got)
	}
	var c *Const
	m.Instrs(func(in *Instr) {
		if in.Op == OpAdd {
			c = in.Operands[0].(*Const)
		}
	})
	if c == nil || c.Bits != 0xff {
		t.Errorf("operand hex literal bits = %+v, want 0xff", c)
	}
	// The printed form must parse back to the same semantics.
	text1 := Print(m)
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if text2 := Print(m2); text1 != text2 {
		t.Errorf("hex module not a print/parse fixed point:\n%s\n---\n%s", text1, text2)
	}
}
