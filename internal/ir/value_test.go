package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeBitsAndBytes(t *testing.T) {
	tests := []struct {
		t     Type
		bits  int
		bytes int
	}{
		{Void, 0, 0},
		{I1, 1, 1},
		{I8, 8, 1},
		{I16, 16, 2},
		{I32, 32, 4},
		{I64, 64, 8},
		{F32, 32, 4},
		{F64, 64, 8},
		{Ptr, 64, 8},
	}
	for _, tt := range tests {
		if got := tt.t.Bits(); got != tt.bits {
			t.Errorf("%s.Bits() = %d, want %d", tt.t, got, tt.bits)
		}
		if got := tt.t.Bytes(); got != tt.bytes {
			t.Errorf("%s.Bytes() = %d, want %d", tt.t, got, tt.bytes)
		}
	}
}

func TestTypeClassification(t *testing.T) {
	for _, ty := range []Type{I1, I8, I16, I32, I64} {
		if !ty.IsInt() || ty.IsFloat() {
			t.Errorf("%s misclassified", ty)
		}
	}
	for _, ty := range []Type{F32, F64} {
		if ty.IsInt() || !ty.IsFloat() {
			t.Errorf("%s misclassified", ty)
		}
	}
	if Ptr.IsInt() || Ptr.IsFloat() {
		t.Error("Ptr misclassified")
	}
}

func TestTypeByNameRoundTrip(t *testing.T) {
	for _, ty := range []Type{Void, I1, I8, I16, I32, I64, F32, F64, Ptr} {
		got, ok := TypeByName(ty.String())
		if !ok || got != ty {
			t.Errorf("TypeByName(%q) = %v, %v", ty.String(), got, ok)
		}
	}
	if _, ok := TypeByName("i128"); ok {
		t.Error("TypeByName accepted unknown type")
	}
}

func TestConstInt(t *testing.T) {
	tests := []struct {
		t    Type
		v    int64
		want int64
	}{
		{I32, 42, 42},
		{I32, -1, -1},
		{I8, 200, -56},       // wraps in 8 bits
		{I16, -40000, 25536}, // wraps in 16 bits
		{I64, math.MinInt64, math.MinInt64},
		{I1, 1, -1}, // single bit set is -1 in two's complement of width 1
	}
	for _, tt := range tests {
		c := ConstInt(tt.t, tt.v)
		if got := c.Int(); got != tt.want {
			t.Errorf("ConstInt(%s, %d).Int() = %d, want %d", tt.t, tt.v, got, tt.want)
		}
	}
}

func TestConstFloat(t *testing.T) {
	c := ConstFloat(F64, 3.25)
	if c.Float() != 3.25 {
		t.Errorf("F64 const = %v, want 3.25", c.Float())
	}
	c32 := ConstFloat(F32, 3.25)
	if c32.Float() != 3.25 {
		t.Errorf("F32 const = %v, want 3.25", c32.Float())
	}
	// F32 rounds to float32 precision.
	c32b := ConstFloat(F32, 0.1)
	if c32b.Float() != float64(float32(0.1)) {
		t.Errorf("F32 const not rounded to float32: %v", c32b.Float())
	}
}

func TestConstBool(t *testing.T) {
	if ConstBool(true).Bits != 1 || ConstBool(false).Bits != 0 {
		t.Error("ConstBool bit patterns wrong")
	}
	if ConstBool(true).Type != I1 {
		t.Error("ConstBool type wrong")
	}
}

func TestSignExtendProperties(t *testing.T) {
	// Property: sign-extending then truncating is the identity on the low
	// bits, for every width.
	f := func(bits uint64) bool {
		for _, w := range []int{1, 8, 16, 32, 64} {
			tr := TruncateToWidth(bits, w)
			se := SignExtend(tr, w)
			if TruncateToWidth(uint64(se), w) != tr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignExtendKnown(t *testing.T) {
	tests := []struct {
		bits  uint64
		width int
		want  int64
	}{
		{0xFF, 8, -1},
		{0x7F, 8, 127},
		{0x80, 8, -128},
		{0xFFFF, 16, -1},
		{0x8000, 16, -32768},
		{0xFFFFFFFF, 32, -1},
		{1, 1, -1},
		{0, 1, 0},
	}
	for _, tt := range tests {
		if got := SignExtend(tt.bits, tt.width); got != tt.want {
			t.Errorf("SignExtend(%#x, %d) = %d, want %d", tt.bits, tt.width, got, tt.want)
		}
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true // NaN payloads may not round-trip via float32
		}
		if FloatFromBits(F64, FloatToBits(F64, v)) != v {
			return false
		}
		v32 := float64(float32(v))
		return math.IsInf(v32, 0) || FloatFromBits(F32, FloatToBits(F32, v32)) == v32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatValue(t *testing.T) {
	tests := []struct {
		t      Type
		bits   uint64
		format OutputFormat
		want   string
	}{
		{I32, ConstInt(I32, -7).Bits, FormatDefault, "-7"},
		{I64, 123, FormatDefault, "123"},
		{F64, FloatToBits(F64, 1.5), FormatDefault, "1.5"},
		{F64, FloatToBits(F64, 1.23456789), FormatG2, "1.2"},
		{F32, FloatToBits(F32, 2.0), FormatDefault, "2"},
		{Ptr, 0x1000, FormatDefault, "0x1000"},
	}
	for _, tt := range tests {
		if got := FormatValue(tt.t, tt.bits, tt.format); got != tt.want {
			t.Errorf("FormatValue(%s, %#x, %v) = %q, want %q",
				tt.t, tt.bits, tt.format, got, tt.want)
		}
	}
}

func TestGlobalValue(t *testing.T) {
	g := &Global{Name: "arr", Elem: I32, Count: 10}
	if g.ValueType() != Ptr {
		t.Error("global address should be ptr-typed")
	}
	if g.SizeBytes() != 40 {
		t.Errorf("SizeBytes = %d, want 40", g.SizeBytes())
	}
	if g.ValueString() != "@arr" {
		t.Errorf("ValueString = %q", g.ValueString())
	}
}

func TestOpcodePropertyHelpers(t *testing.T) {
	if !OpAdd.IsBinary() || !OpFDiv.IsBinary() || OpICmp.IsBinary() {
		t.Error("IsBinary wrong")
	}
	if !OpTrunc.IsCast() || !OpBitcast.IsCast() || OpSelect.IsCast() {
		t.Error("IsCast wrong")
	}
	if !OpICmp.IsCmp() || !OpFCmp.IsCmp() || OpAdd.IsCmp() {
		t.Error("IsCmp wrong")
	}
	for _, op := range []Opcode{OpBr, OpCondBr, OpRet} {
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	for _, op := range []Opcode{OpStore, OpPrint, OpBr, OpCondBr, OpRet} {
		if op.HasResult() {
			t.Errorf("%s should not have a result", op)
		}
	}
}

func TestIntrinsicArity(t *testing.T) {
	if IntrinsicSqrt.NumArgs() != 1 || IntrinsicPow.NumArgs() != 2 ||
		IntrinsicFmin.NumArgs() != 2 {
		t.Error("intrinsic arity wrong")
	}
}
