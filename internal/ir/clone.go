package ir

// CloneModule deep-copies a module and returns the clone together with
// the mapping from original instructions to their clones, so analyses
// performed on the original (e.g. model-selected protection sets) can be
// carried over. The original is not modified.
func CloneModule(m *Module) (*Module, map[*Instr]*Instr) {
	clone := NewModule(m.Name)

	globals := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := clone.AddGlobal(g.Name, g.Elem, g.Count, append([]uint64(nil), g.Init...))
		globals[g] = ng
	}

	// First pass: create functions, params, blocks and instruction shells
	// so cross-references (calls, branch targets, operands) can resolve in
	// the second pass.
	funcs := make(map[*Func]*Func, len(m.Funcs))
	params := make(map[*Param]*Param)
	blocks := make(map[*Block]*Block)
	instrs := make(map[*Instr]*Instr)
	for _, f := range m.Funcs {
		nparams := make([]*Param, len(f.Params))
		for i, p := range f.Params {
			nparams[i] = NewParam(p.Name, p.Type)
			params[p] = nparams[i]
		}
		nf := clone.NewFunc(f.Name, f.RetType, nparams...)
		funcs[f] = nf
		for _, b := range f.Blocks {
			nb := nf.NewBlock(b.Name)
			blocks[b] = nb
			for _, in := range b.Instrs {
				ni := &Instr{
					ID:     in.ID,
					Name:   in.Name,
					Op:     in.Op,
					Type:   in.Type,
					Pred:   in.Pred,
					Elem:   in.Elem,
					Count:  in.Count,
					Intr:   in.Intr,
					Format: in.Format,
					Block:  nb,
				}
				instrs[in] = ni
				nb.Instrs = append(nb.Instrs, ni)
			}
		}
	}

	cloneValue := func(v Value) Value {
		switch x := v.(type) {
		case *Const:
			return &Const{Type: x.Type, Bits: x.Bits}
		case *Instr:
			return instrs[x]
		case *Param:
			return params[x]
		case *Global:
			return globals[x]
		default:
			return nil
		}
	}

	// Second pass: wire operands, targets, phi blocks and callees.
	for old, ni := range instrs {
		if len(old.Operands) > 0 {
			ni.Operands = make([]Value, len(old.Operands))
			for i, op := range old.Operands {
				ni.Operands[i] = cloneValue(op)
			}
		}
		if len(old.Targets) > 0 {
			ni.Targets = make([]*Block, len(old.Targets))
			for i, t := range old.Targets {
				ni.Targets[i] = blocks[t]
			}
		}
		if len(old.PhiBlocks) > 0 {
			ni.PhiBlocks = make([]*Block, len(old.PhiBlocks))
			for i, pb := range old.PhiBlocks {
				ni.PhiBlocks[i] = blocks[pb]
			}
		}
		if old.Callee != nil {
			ni.Callee = funcs[old.Callee]
		}
	}

	for _, f := range clone.Funcs {
		f.Renumber()
	}
	return clone, instrs
}
