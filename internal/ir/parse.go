package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax or resolution error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// Parse reads a module in the textual format produced by Print. Parsing is
// two-phase per function so that phis and branches may reference registers
// and blocks defined later.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	for _, f := range m.Funcs {
		f.Renumber()
	}
	if err := Verify(m); err != nil {
		return nil, fmt.Errorf("parsed module fails verification: %w", err)
	}
	return m, nil
}

type parser struct {
	lines []string
	pos   int // current line index
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &ParseError{Line: line + 1, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty, non-comment line, trimmed, or "" at EOF.
func (p *parser) next() (string, int, bool) {
	for p.pos < len(p.lines) {
		ln := p.pos
		line := p.lines[ln]
		p.pos++
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, ln, true
		}
	}
	return "", p.pos, false
}

func (p *parser) parseModule() (*Module, error) {
	line, ln, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, p.errf(ln, "expected module header, got %q", line)
	}
	name, err := strconv.Unquote(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
	if err != nil {
		return nil, p.errf(ln, "bad module name: %v", err)
	}
	m := NewModule(name)

	// Pre-scan function signatures so calls can resolve forward.
	if err := p.prescanFuncs(m); err != nil {
		return nil, err
	}

	for {
		line, ln, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "global "):
			if err := p.parseGlobal(m, line, ln); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "func "):
			if err := p.parseFunc(m, line, ln); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(ln, "unexpected top-level line %q", line)
		}
	}
	return m, nil
}

// prescanFuncs registers every function's name and signature without
// parsing bodies, then rewinds.
func (p *parser) prescanFuncs(m *Module) error {
	saved := p.pos
	for {
		line, ln, ok := p.next()
		if !ok {
			break
		}
		if !strings.HasPrefix(line, "func ") {
			continue
		}
		name, params, ret, err := p.parseFuncHeader(line, ln)
		if err != nil {
			return err
		}
		m.NewFunc(name, ret, params...)
	}
	p.pos = saved
	return nil
}

func (p *parser) parseFuncHeader(line string, ln int) (string, []*Param, Type, error) {
	// func @name(%a i32, %b f64) void {
	rest := strings.TrimPrefix(line, "func ")
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open || !strings.HasPrefix(rest, "@") {
		return "", nil, Void, p.errf(ln, "malformed func header %q", line)
	}
	name := rest[1:open]
	var params []*Param
	paramsText := strings.TrimSpace(rest[open+1 : closeIdx])
	if paramsText != "" {
		for _, part := range strings.Split(paramsText, ",") {
			fields := strings.Fields(strings.TrimSpace(part))
			if len(fields) != 2 || !strings.HasPrefix(fields[0], "%") {
				return "", nil, Void, p.errf(ln, "malformed parameter %q", part)
			}
			t, ok := TypeByName(fields[1])
			if !ok {
				return "", nil, Void, p.errf(ln, "unknown type %q", fields[1])
			}
			params = append(params, NewParam(fields[0][1:], t))
		}
	}
	tail := strings.Fields(strings.TrimSpace(rest[closeIdx+1:]))
	if len(tail) != 2 || tail[1] != "{" {
		return "", nil, Void, p.errf(ln, "malformed func header tail %q", line)
	}
	ret, ok := TypeByName(tail[0])
	if !ok {
		return "", nil, Void, p.errf(ln, "unknown return type %q", tail[0])
	}
	return name, params, ret, nil
}

func (p *parser) parseGlobal(m *Module, line string, ln int) error {
	// global @name i32 x 100 [= [1, 2]]
	rest := strings.TrimPrefix(line, "global ")
	var initText string
	if i := strings.IndexByte(rest, '='); i >= 0 {
		initText = strings.TrimSpace(rest[i+1:])
		rest = strings.TrimSpace(rest[:i])
	}
	fields := strings.Fields(rest)
	if len(fields) != 4 || !strings.HasPrefix(fields[0], "@") || fields[2] != "x" {
		return p.errf(ln, "malformed global %q", line)
	}
	elem, ok := TypeByName(fields[1])
	if !ok {
		return p.errf(ln, "unknown type %q", fields[1])
	}
	count, err := strconv.Atoi(fields[3])
	if err != nil {
		return p.errf(ln, "bad element count %q", fields[3])
	}
	var init []uint64
	if initText != "" {
		if !strings.HasPrefix(initText, "[") || !strings.HasSuffix(initText, "]") {
			return p.errf(ln, "malformed initializer %q", initText)
		}
		inner := strings.TrimSpace(initText[1 : len(initText)-1])
		if inner != "" {
			for _, lit := range strings.Split(inner, ",") {
				bits, err := parseLiteral(elem, strings.TrimSpace(lit))
				if err != nil {
					return p.errf(ln, "bad initializer element %q: %v", lit, err)
				}
				init = append(init, bits)
			}
		}
	}
	m.AddGlobal(fields[0][1:], elem, count, init)
	return nil
}

func parseLiteral(t Type, lit string) (uint64, error) {
	if t.IsFloat() {
		v, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return 0, err
		}
		return FloatToBits(t, v), nil
	}
	if strings.HasPrefix(lit, "0x") {
		v, err := strconv.ParseUint(lit[2:], 16, 64)
		if err != nil {
			return 0, err
		}
		// Hex literals must honor the declared width like decimal ones:
		// an un-truncated "i8 0xfff" would store bits the type cannot
		// hold, making a parsed module diverge from its printed form.
		return TruncateToWidth(v, t.Bits()), nil
	}
	v, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return 0, err
	}
	return TruncateToWidth(uint64(v), t.Bits()), nil
}

// pending is an unresolved operand reference recorded during the first
// pass over a function body.
type pending struct {
	instr *Instr
	index int    // operand slot
	name  string // register, param, or global name (with sigil stripped)
	isReg bool   // %name (register/param) vs @name (global)
	line  int
}

type pendingTarget struct {
	instr *Instr
	index int
	name  string
	line  int
}

type pendingPhi struct {
	instr *Instr
	index int
	name  string
	line  int
}

type funcParser struct {
	p          *parser
	m          *Module
	f          *Func
	blocks     map[string]*Block
	regs       map[string]Value // %name -> Param or Instr
	pends      []pending
	targets    []pendingTarget
	phis       []pendingPhi
	typeFixups []typeFixup
}

func (p *parser) parseFunc(m *Module, header string, ln int) error {
	name, _, _, err := p.parseFuncHeader(header, ln)
	if err != nil {
		return err
	}
	f := m.Func(name)
	fp := &funcParser{
		p: p, m: m, f: f,
		blocks: make(map[string]*Block),
		regs:   make(map[string]Value),
	}
	for _, prm := range f.Params {
		fp.regs[prm.Name] = prm
	}

	// First pass: collect body lines and pre-create blocks.
	var body []struct {
		text string
		ln   int
	}
	for {
		line, bln, ok := p.next()
		if !ok {
			return p.errf(bln, "unexpected EOF in function %s", name)
		}
		if line == "}" {
			break
		}
		body = append(body, struct {
			text string
			ln   int
		}{line, bln})
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			bn := strings.TrimSuffix(line, ":")
			if _, dup := fp.blocks[bn]; dup {
				return p.errf(bln, "duplicate block %q", bn)
			}
			fp.blocks[bn] = f.NewBlock(bn)
		}
	}

	// Second pass: parse instructions into blocks.
	var cur *Block
	for _, bl := range body {
		if strings.HasSuffix(bl.text, ":") && !strings.Contains(bl.text, " ") {
			cur = fp.blocks[strings.TrimSuffix(bl.text, ":")]
			continue
		}
		if cur == nil {
			return p.errf(bl.ln, "instruction before first block label")
		}
		if err := fp.parseInstr(cur, bl.text, bl.ln); err != nil {
			return err
		}
	}

	// Resolution pass.
	for _, pd := range fp.pends {
		v, err := fp.resolve(pd.name, pd.isReg, pd.line)
		if err != nil {
			return err
		}
		pd.instr.Operands[pd.index] = v
	}
	for _, pt := range fp.targets {
		b, ok := fp.blocks[pt.name]
		if !ok {
			return p.errf(pt.line, "unknown block %q", pt.name)
		}
		pt.instr.Targets[pt.index] = b
	}
	for _, ph := range fp.phis {
		b, ok := fp.blocks[ph.name]
		if !ok {
			return p.errf(ph.line, "unknown phi block %q", ph.name)
		}
		ph.instr.PhiBlocks[ph.index] = b
	}
	for _, tf := range fp.typeFixups {
		v := tf.instr.Operands[tf.index]
		if v == nil {
			continue // a resolution error was already reported
		}
		if tf.elem {
			tf.instr.Elem = v.ValueType()
		} else {
			tf.instr.Type = v.ValueType()
		}
	}
	return nil
}

func (fp *funcParser) resolve(name string, isReg bool, line int) (Value, error) {
	if isReg {
		v, ok := fp.regs[name]
		if !ok {
			return nil, fp.p.errf(line, "unknown register %%%s", name)
		}
		return v, nil
	}
	g := fp.m.Global(name)
	if g == nil {
		return nil, fp.p.errf(line, "unknown global @%s", name)
	}
	return g, nil
}

// addOperand parses one operand token sequence and either resolves it (for
// constants) or records a pending reference. tok is e.g. "%x", "@g",
// "i32 5", "f64 -1.5".
func (fp *funcParser) addOperand(in *Instr, tok string, line int) error {
	idx := len(in.Operands)
	tok = strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(tok, "%"):
		in.Operands = append(in.Operands, nil)
		fp.pends = append(fp.pends, pending{in, idx, tok[1:], true, line})
	case strings.HasPrefix(tok, "@"):
		in.Operands = append(in.Operands, nil)
		fp.pends = append(fp.pends, pending{in, idx, tok[1:], false, line})
	default:
		fields := strings.Fields(tok)
		if len(fields) != 2 {
			return fp.p.errf(line, "malformed operand %q", tok)
		}
		t, ok := TypeByName(fields[0])
		if !ok {
			return fp.p.errf(line, "unknown operand type %q", fields[0])
		}
		bits, err := parseLiteral(t, fields[1])
		if err != nil {
			return fp.p.errf(line, "bad constant %q: %v", tok, err)
		}
		in.Operands = append(in.Operands, &Const{Type: t, Bits: bits})
	}
	return nil
}

// splitArgs splits a comma-separated operand list at the top level.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (fp *funcParser) parseInstr(bb *Block, line string, ln int) error {
	var name string
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return fp.p.errf(ln, "register without assignment in %q", line)
		}
		name = strings.TrimSpace(line[1:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return fp.p.errf(ln, "empty instruction")
	}
	mnemonic := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, mnemonic))

	op, known := opcodeByName[mnemonic]
	if !known {
		return fp.p.errf(ln, "unknown opcode %q", mnemonic)
	}
	in := &Instr{Op: op, Name: name}
	defer func() { bb.appendInstr(in) }()

	switch {
	case op.IsBinary(), op.IsCmp():
		args := rest
		if op.IsCmp() {
			predFields := strings.Fields(rest)
			if len(predFields) < 2 {
				return fp.p.errf(ln, "malformed comparison %q", line)
			}
			pred, ok := predicateByName[predFields[0]]
			if !ok {
				return fp.p.errf(ln, "unknown predicate %q", predFields[0])
			}
			in.Pred = pred
			in.Type = I1
			args = strings.TrimSpace(strings.TrimPrefix(rest, predFields[0]))
		}
		parts := splitArgs(args)
		if len(parts) != 2 {
			return fp.p.errf(ln, "%s expects 2 operands", mnemonic)
		}
		for _, part := range parts {
			if err := fp.addOperand(in, part, ln); err != nil {
				return err
			}
		}
		if op.IsBinary() {
			fp.deferResultType(in, 0, ln)
		}
	case op.IsCast():
		toIdx := strings.LastIndex(rest, " to ")
		if toIdx < 0 {
			return fp.p.errf(ln, "cast without 'to' in %q", line)
		}
		t, ok := TypeByName(strings.TrimSpace(rest[toIdx+4:]))
		if !ok {
			return fp.p.errf(ln, "unknown cast target type")
		}
		in.Type = t
		if err := fp.addOperand(in, rest[:toIdx], ln); err != nil {
			return err
		}
	case op == OpSelect:
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return fp.p.errf(ln, "select expects 3 operands")
		}
		for _, part := range parts {
			if err := fp.addOperand(in, part, ln); err != nil {
				return err
			}
		}
		fp.deferResultType(in, 1, ln)
	case op == OpPhi:
		// phi i32 [%a, entry], [i32 0, bb1]
		fieldsPhi := strings.Fields(rest)
		if len(fieldsPhi) < 1 {
			return fp.p.errf(ln, "malformed phi")
		}
		t, ok := TypeByName(fieldsPhi[0])
		if !ok {
			return fp.p.errf(ln, "unknown phi type %q", fieldsPhi[0])
		}
		in.Type = t
		body := strings.TrimSpace(strings.TrimPrefix(rest, fieldsPhi[0]))
		for body != "" {
			if !strings.HasPrefix(body, "[") {
				return fp.p.errf(ln, "malformed phi arm at %q", body)
			}
			end := strings.IndexByte(body, ']')
			if end < 0 {
				return fp.p.errf(ln, "unclosed phi arm")
			}
			arm := body[1:end]
			body = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(body[end+1:]), ","))
			comma := strings.LastIndexByte(arm, ',')
			if comma < 0 {
				return fp.p.errf(ln, "phi arm without block")
			}
			if err := fp.addOperand(in, arm[:comma], ln); err != nil {
				return err
			}
			in.PhiBlocks = append(in.PhiBlocks, nil)
			fp.phis = append(fp.phis, pendingPhi{in, len(in.PhiBlocks) - 1,
				strings.TrimSpace(arm[comma+1:]), ln})
		}
	case op == OpCall:
		open := strings.IndexByte(rest, '(')
		closeIdx := strings.LastIndexByte(rest, ')')
		if open < 0 || closeIdx < open || !strings.HasPrefix(rest, "@") {
			return fp.p.errf(ln, "malformed call %q", line)
		}
		callee := fp.m.Func(rest[1:open])
		if callee == nil {
			return fp.p.errf(ln, "unknown function %q", rest[1:open])
		}
		in.Callee = callee
		in.Type = callee.RetType
		for _, part := range splitArgs(rest[open+1 : closeIdx]) {
			if err := fp.addOperand(in, part, ln); err != nil {
				return err
			}
		}
	case op == OpIntrinsic:
		open := strings.IndexByte(rest, '(')
		closeIdx := strings.LastIndexByte(rest, ')')
		if open < 0 || closeIdx < open {
			return fp.p.errf(ln, "malformed intrinsic %q", line)
		}
		kind, ok := intrinsicByName[strings.TrimSpace(rest[:open])]
		if !ok {
			return fp.p.errf(ln, "unknown intrinsic %q", rest[:open])
		}
		in.Intr = kind
		args := splitArgs(rest[open+1 : closeIdx])
		if len(args) != kind.NumArgs() {
			return fp.p.errf(ln, "intrinsic %s expects %d arguments, has %d",
				kind, kind.NumArgs(), len(args))
		}
		for _, part := range args {
			if err := fp.addOperand(in, part, ln); err != nil {
				return err
			}
		}
		fp.deferResultType(in, 0, ln)
	case op == OpAlloca:
		f := strings.Fields(rest)
		if len(f) != 3 || f[1] != "x" {
			return fp.p.errf(ln, "malformed alloca %q", line)
		}
		elem, ok := TypeByName(f[0])
		if !ok {
			return fp.p.errf(ln, "unknown alloca type %q", f[0])
		}
		count, err := strconv.Atoi(f[2])
		if err != nil {
			return fp.p.errf(ln, "bad alloca count %q", f[2])
		}
		in.Elem, in.Count, in.Type = elem, count, Ptr
	case op == OpLoad:
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return fp.p.errf(ln, "malformed load %q", line)
		}
		elem, ok := TypeByName(parts[0])
		if !ok {
			return fp.p.errf(ln, "unknown load type %q", parts[0])
		}
		in.Elem, in.Type = elem, elem
		if err := fp.addOperand(in, parts[1], ln); err != nil {
			return err
		}
	case op == OpStore, op == OpCheck:
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return fp.p.errf(ln, "malformed %s %q", mnemonic, line)
		}
		for _, part := range parts {
			if err := fp.addOperand(in, part, ln); err != nil {
				return err
			}
		}
		if op == OpStore {
			fp.deferElemType(in, 0, ln)
		}
	case op == OpGep:
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return fp.p.errf(ln, "malformed gep %q", line)
		}
		elem, ok := TypeByName(parts[0])
		if !ok {
			return fp.p.errf(ln, "unknown gep type %q", parts[0])
		}
		in.Elem, in.Type = elem, Ptr
		for _, part := range parts[1:] {
			if err := fp.addOperand(in, part, ln); err != nil {
				return err
			}
		}
	case op == OpBr:
		in.Targets = []*Block{nil}
		fp.targets = append(fp.targets, pendingTarget{in, 0, strings.TrimSpace(rest), ln})
	case op == OpCondBr:
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return fp.p.errf(ln, "malformed condbr %q", line)
		}
		if err := fp.addOperand(in, parts[0], ln); err != nil {
			return err
		}
		in.Targets = []*Block{nil, nil}
		fp.targets = append(fp.targets,
			pendingTarget{in, 0, parts[1], ln}, pendingTarget{in, 1, parts[2], ln})
	case op == OpRet:
		if rest != "" {
			if err := fp.addOperand(in, rest, ln); err != nil {
				return err
			}
		}
	case op == OpPrint:
		if strings.HasPrefix(rest, "g2 ") {
			in.Format = FormatG2
			rest = strings.TrimSpace(rest[3:])
		}
		if err := fp.addOperand(in, rest, ln); err != nil {
			return err
		}
	default:
		return fp.p.errf(ln, "unhandled opcode %q", mnemonic)
	}

	if in.HasResult() {
		if name == "" {
			return fp.p.errf(ln, "%s requires a result register", mnemonic)
		}
		if _, dup := fp.regs[name]; dup {
			return fp.p.errf(ln, "register %%%s redefined", name)
		}
		fp.regs[name] = in
	} else if name != "" {
		return fp.p.errf(ln, "%s does not produce a result", mnemonic)
	}
	return nil
}

// deferResultType sets the instruction's result type from operand idx,
// now if it is a constant, or after resolution otherwise.
func (fp *funcParser) deferResultType(in *Instr, idx, line int) {
	if v := in.Operands[idx]; v != nil {
		in.Type = v.ValueType()
		return
	}
	fp.typeFixups = append(fp.typeFixups, typeFixup{in, idx, false})
}

// deferElemType sets in.Elem from operand idx after resolution.
func (fp *funcParser) deferElemType(in *Instr, idx, line int) {
	if v := in.Operands[idx]; v != nil {
		in.Elem = v.ValueType()
		return
	}
	fp.typeFixups = append(fp.typeFixups, typeFixup{in, idx, true})
}

type typeFixup struct {
	instr *Instr
	index int
	elem  bool // fix Elem instead of Type
}
