package ir

import "fmt"

// Builder constructs IR instruction-by-instruction at an insertion point,
// in the style of llvm::IRBuilder. Builder methods panic on structurally
// impossible requests (e.g. emitting into no block); this is construction-
// time programmer error, not runtime input, so panicking is appropriate —
// the verifier catches the subtler mistakes and returns errors.
type Builder struct {
	fn  *Func
	bb  *Block
	seq int // counter for generated block names
}

// NewBuilder returns a builder positioned at the end of fn's entry block
// (if any).
func NewBuilder(fn *Func) *Builder {
	b := &Builder{fn: fn}
	if len(fn.Blocks) > 0 {
		b.bb = fn.Blocks[len(fn.Blocks)-1]
	}
	return b
}

// Func returns the function being built.
func (b *Builder) Func() *Func { return b.fn }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.bb }

// SetBlock moves the insertion point to the end of bb.
func (b *Builder) SetBlock(bb *Block) { b.bb = bb }

// NewBlock creates a block with the given name (a unique name is generated
// when empty) and returns it without moving the insertion point.
func (b *Builder) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("bb%d", b.seq)
		b.seq++
	}
	return b.fn.NewBlock(name)
}

func (b *Builder) emit(in *Instr) *Instr {
	if b.bb == nil {
		panic("ir: builder has no insertion block")
	}
	return b.bb.appendInstr(in)
}

// Named assigns a register name to the most recently emitted instruction
// and returns it, for readable printed IR.
func (b *Builder) Named(name string, in *Instr) *Instr {
	in.Name = name
	return in
}

// Binary emits a two-operand instruction of the given opcode. The result
// type is the type of lhs.
func (b *Builder) Binary(op Opcode, lhs, rhs Value) *Instr {
	return b.emit(&Instr{Op: op, Type: lhs.ValueType(), Operands: []Value{lhs, rhs}})
}

// Add emits an integer addition.
func (b *Builder) Add(lhs, rhs Value) *Instr { return b.Binary(OpAdd, lhs, rhs) }

// Sub emits an integer subtraction.
func (b *Builder) Sub(lhs, rhs Value) *Instr { return b.Binary(OpSub, lhs, rhs) }

// Mul emits an integer multiplication.
func (b *Builder) Mul(lhs, rhs Value) *Instr { return b.Binary(OpMul, lhs, rhs) }

// SDiv emits a signed integer division.
func (b *Builder) SDiv(lhs, rhs Value) *Instr { return b.Binary(OpSDiv, lhs, rhs) }

// SRem emits a signed integer remainder.
func (b *Builder) SRem(lhs, rhs Value) *Instr { return b.Binary(OpSRem, lhs, rhs) }

// And emits a bitwise and.
func (b *Builder) And(lhs, rhs Value) *Instr { return b.Binary(OpAnd, lhs, rhs) }

// Or emits a bitwise or.
func (b *Builder) Or(lhs, rhs Value) *Instr { return b.Binary(OpOr, lhs, rhs) }

// Xor emits a bitwise xor.
func (b *Builder) Xor(lhs, rhs Value) *Instr { return b.Binary(OpXor, lhs, rhs) }

// Shl emits a left shift.
func (b *Builder) Shl(lhs, rhs Value) *Instr { return b.Binary(OpShl, lhs, rhs) }

// LShr emits a logical right shift.
func (b *Builder) LShr(lhs, rhs Value) *Instr { return b.Binary(OpLShr, lhs, rhs) }

// AShr emits an arithmetic right shift.
func (b *Builder) AShr(lhs, rhs Value) *Instr { return b.Binary(OpAShr, lhs, rhs) }

// FAdd emits a floating-point addition.
func (b *Builder) FAdd(lhs, rhs Value) *Instr { return b.Binary(OpFAdd, lhs, rhs) }

// FSub emits a floating-point subtraction.
func (b *Builder) FSub(lhs, rhs Value) *Instr { return b.Binary(OpFSub, lhs, rhs) }

// FMul emits a floating-point multiplication.
func (b *Builder) FMul(lhs, rhs Value) *Instr { return b.Binary(OpFMul, lhs, rhs) }

// FDiv emits a floating-point division.
func (b *Builder) FDiv(lhs, rhs Value) *Instr { return b.Binary(OpFDiv, lhs, rhs) }

// ICmp emits an integer comparison producing an I1.
func (b *Builder) ICmp(pred Predicate, lhs, rhs Value) *Instr {
	return b.emit(&Instr{Op: OpICmp, Type: I1, Pred: pred, Operands: []Value{lhs, rhs}})
}

// FCmp emits a floating-point comparison producing an I1.
func (b *Builder) FCmp(pred Predicate, lhs, rhs Value) *Instr {
	return b.emit(&Instr{Op: OpFCmp, Type: I1, Pred: pred, Operands: []Value{lhs, rhs}})
}

// Cast emits a conversion of src to type to.
func (b *Builder) Cast(op Opcode, src Value, to Type) *Instr {
	return b.emit(&Instr{Op: op, Type: to, Operands: []Value{src}})
}

// Trunc emits an integer truncation.
func (b *Builder) Trunc(src Value, to Type) *Instr { return b.Cast(OpTrunc, src, to) }

// ZExt emits an unsigned integer extension.
func (b *Builder) ZExt(src Value, to Type) *Instr { return b.Cast(OpZExt, src, to) }

// SExt emits a signed integer extension.
func (b *Builder) SExt(src Value, to Type) *Instr { return b.Cast(OpSExt, src, to) }

// FPToSI emits a float-to-signed-integer conversion.
func (b *Builder) FPToSI(src Value, to Type) *Instr { return b.Cast(OpFPToSI, src, to) }

// SIToFP emits a signed-integer-to-float conversion.
func (b *Builder) SIToFP(src Value, to Type) *Instr { return b.Cast(OpSIToFP, src, to) }

// FPTrunc emits a float narrowing conversion.
func (b *Builder) FPTrunc(src Value, to Type) *Instr { return b.Cast(OpFPTrunc, src, to) }

// FPExt emits a float widening conversion.
func (b *Builder) FPExt(src Value, to Type) *Instr { return b.Cast(OpFPExt, src, to) }

// Select emits a conditional select.
func (b *Builder) Select(cond, ifTrue, ifFalse Value) *Instr {
	return b.emit(&Instr{Op: OpSelect, Type: ifTrue.ValueType(),
		Operands: []Value{cond, ifTrue, ifFalse}})
}

// Phi emits an empty phi of the given type; fill it with AddIncoming. Phis
// must precede all non-phi instructions in their block.
func (b *Builder) Phi(t Type) *Instr {
	return b.emit(&Instr{Op: OpPhi, Type: t})
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func (b *Builder) AddIncoming(phi *Instr, v Value, from *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Operands = append(phi.Operands, v)
	phi.PhiBlocks = append(phi.PhiBlocks, from)
}

// Call emits a call to callee with the given arguments.
func (b *Builder) Call(callee *Func, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Type: callee.RetType, Callee: callee, Operands: args})
}

// Intrinsic emits a built-in math operation; the result type is the type
// of the first argument.
func (b *Builder) Intrinsic(in Intrinsic, args ...Value) *Instr {
	if len(args) == 0 {
		panic("ir: intrinsic with no arguments")
	}
	return b.emit(&Instr{Op: OpIntrinsic, Type: args[0].ValueType(), Intr: in, Operands: args})
}

// Alloca emits a stack allocation of count elements of type elem, yielding
// a Ptr.
func (b *Builder) Alloca(elem Type, count int) *Instr {
	return b.emit(&Instr{Op: OpAlloca, Type: Ptr, Elem: elem, Count: count})
}

// Load emits a load of an elem-typed value from addr.
func (b *Builder) Load(elem Type, addr Value) *Instr {
	return b.emit(&Instr{Op: OpLoad, Type: elem, Elem: elem, Operands: []Value{addr}})
}

// Store emits a store of v to addr.
func (b *Builder) Store(v, addr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Type: Void, Elem: v.ValueType(),
		Operands: []Value{v, addr}})
}

// Gep emits address arithmetic: base + index*elem.Bytes(), yielding a Ptr.
func (b *Builder) Gep(elem Type, base, index Value) *Instr {
	return b.emit(&Instr{Op: OpGep, Type: Ptr, Elem: elem, Operands: []Value{base, index}})
}

// Br emits an unconditional branch to target.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Type: Void, Targets: []*Block{target}})
}

// CondBr emits a conditional branch on cond to ifTrue/ifFalse.
func (b *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Type: Void, Operands: []Value{cond},
		Targets: []*Block{ifTrue, ifFalse}})
}

// Ret emits a return; v may be nil for void functions.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Type: Void}
	if v != nil {
		in.Operands = []Value{v}
	}
	return b.emit(in)
}

// Print emits a program-output instruction with the default format.
func (b *Builder) Print(v Value) *Instr {
	return b.emit(&Instr{Op: OpPrint, Type: Void, Operands: []Value{v}})
}

// Printf emits a program-output instruction with an explicit format.
func (b *Builder) PrintFmt(v Value, format OutputFormat) *Instr {
	return b.emit(&Instr{Op: OpPrint, Type: Void, Operands: []Value{v}, Format: format})
}

// Check emits a duplication-detector check of original against shadow.
func (b *Builder) Check(original, shadow Value) *Instr {
	return b.emit(&Instr{Op: OpCheck, Type: Void, Operands: []Value{original, shadow}})
}
