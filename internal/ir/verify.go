package ir

import (
	"errors"
	"fmt"
)

// VerifyError describes a structural or type error found by Verify.
type VerifyError struct {
	Where string // "func:block:#id" or coarser location
	Msg   string
}

// Error implements error.
func (e *VerifyError) Error() string { return e.Where + ": " + e.Msg }

// Verify checks the module for structural well-formedness: every block ends
// in exactly one terminator, operand and result types agree, phis match
// their predecessors, branch targets belong to the same function, and main
// exists. It returns all problems found, joined.
func Verify(m *Module) error {
	var errs []error
	report := func(where, format string, args ...any) {
		errs = append(errs, &VerifyError{Where: where, Msg: fmt.Sprintf(format, args...)})
	}

	if m.Func("main") == nil {
		report(m.Name, "module has no main function")
	}
	seenGlobals := make(map[string]bool, len(m.Globals))
	for i, g := range m.Globals {
		if seenGlobals[g.Name] {
			report("@"+g.Name, "duplicate global name")
		}
		seenGlobals[g.Name] = true
		if g.Slot != i {
			report("@"+g.Name, "global slot %d does not match position %d (build globals with Module.AddGlobal)", g.Slot, i)
		}
		if g.Count <= 0 {
			report("@"+g.Name, "global has non-positive element count %d", g.Count)
		}
		if len(g.Init) > g.Count {
			report("@"+g.Name, "initializer longer than global (%d > %d)", len(g.Init), g.Count)
		}
	}

	seenFuncs := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		if seenFuncs[f.Name] {
			report("@"+f.Name, "duplicate function name")
		}
		seenFuncs[f.Name] = true
		verifyFunc(f, report)
	}
	return errors.Join(errs...)
}

func verifyFunc(f *Func, report func(where, format string, args ...any)) {
	if len(f.Blocks) == 0 {
		report(f.Name, "function has no blocks")
		return
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	blockNames := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
		if blockNames[b.Name] {
			report(f.Name+":"+b.Name, "duplicate block name")
		}
		blockNames[b.Name] = true
	}

	for _, b := range f.Blocks {
		where := f.Name + ":" + b.Name
		if len(b.Instrs) == 0 {
			report(where, "empty block")
			continue
		}
		term := b.Instrs[len(b.Instrs)-1]
		if !term.IsTerminator() {
			report(where, "block does not end in a terminator (ends in %s)", term.Op)
		}
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				report(in.Pos(), "terminator %s in the middle of a block", in.Op)
			}
			if in.Op == OpPhi && i > 0 && b.Instrs[i-1].Op != OpPhi {
				report(in.Pos(), "phi after non-phi instruction")
			}
			verifyInstr(in, blockSet, report)
		}
	}

	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != OpPhi {
				continue
			}
			if len(in.Operands) != len(in.PhiBlocks) {
				report(in.Pos(), "phi has %d values but %d blocks", len(in.Operands), len(in.PhiBlocks))
				continue
			}
			want := preds[b]
			if len(in.PhiBlocks) != len(want) {
				report(in.Pos(), "phi covers %d incoming edges, block has %d predecessors",
					len(in.PhiBlocks), len(want))
			}
			for _, pb := range in.PhiBlocks {
				found := false
				for _, w := range want {
					if w == pb {
						found = true
						break
					}
				}
				if !found {
					report(in.Pos(), "phi incoming block %s is not a predecessor", pb.Name)
				}
			}
		}
	}

	if term := f.Entry(); term != nil {
		for _, in := range f.Entry().Instrs {
			if in.Op == OpPhi {
				report(in.Pos(), "phi in entry block")
			}
		}
	}
}

func verifyInstr(in *Instr, blocks map[*Block]bool, report func(where, format string, args ...any)) {
	where := in.Pos()
	wantOperands := func(n int) bool {
		if len(in.Operands) != n {
			report(where, "%s expects %d operands, has %d", in.Op, n, len(in.Operands))
			return false
		}
		return true
	}
	for i, v := range in.Operands {
		if v == nil {
			report(where, "operand %d is nil", i)
			return
		}
	}

	switch {
	case in.Op.IsBinary():
		if !wantOperands(2) {
			return
		}
		lt, rt := in.Operands[0].ValueType(), in.Operands[1].ValueType()
		if lt != rt {
			report(where, "%s operand types differ: %s vs %s", in.Op, lt, rt)
		}
		if in.Type != lt {
			report(where, "%s result type %s differs from operand type %s", in.Op, in.Type, lt)
		}
		isFloatOp := in.Op >= OpFAdd && in.Op <= OpFDiv
		if isFloatOp && !lt.IsFloat() {
			report(where, "%s on non-float type %s", in.Op, lt)
		}
		if !isFloatOp && !lt.IsInt() && lt != Ptr {
			report(where, "%s on non-integer type %s", in.Op, lt)
		}
	case in.Op.IsCmp():
		if !wantOperands(2) {
			return
		}
		lt, rt := in.Operands[0].ValueType(), in.Operands[1].ValueType()
		if lt != rt {
			report(where, "%s operand types differ: %s vs %s", in.Op, lt, rt)
		}
		if in.Type != I1 {
			report(where, "%s result type is %s, want i1", in.Op, in.Type)
		}
		if in.Pred == PredInvalid {
			report(where, "%s without predicate", in.Op)
		}
		if in.Op == OpFCmp && !lt.IsFloat() {
			report(where, "fcmp on non-float type %s", lt)
		}
		if in.Op == OpICmp && !(lt.IsInt() || lt == Ptr) {
			report(where, "icmp on non-integer type %s", lt)
		}
	case in.Op.IsCast():
		if !wantOperands(1) {
			return
		}
		st, dt := in.Operands[0].ValueType(), in.Type
		switch in.Op {
		case OpTrunc:
			if !st.IsInt() || !dt.IsInt() || dt.Bits() >= st.Bits() {
				report(where, "trunc %s -> %s is not a narrowing int cast", st, dt)
			}
		case OpZExt, OpSExt:
			if !st.IsInt() || !dt.IsInt() || dt.Bits() <= st.Bits() {
				report(where, "%s %s -> %s is not a widening int cast", in.Op, st, dt)
			}
		case OpFPTrunc:
			if st != F64 || dt != F32 {
				report(where, "fptrunc must be f64 -> f32, got %s -> %s", st, dt)
			}
		case OpFPExt:
			if st != F32 || dt != F64 {
				report(where, "fpext must be f32 -> f64, got %s -> %s", st, dt)
			}
		case OpFPToSI:
			if !st.IsFloat() || !dt.IsInt() {
				report(where, "fptosi %s -> %s", st, dt)
			}
		case OpSIToFP:
			if !st.IsInt() || !dt.IsFloat() {
				report(where, "sitofp %s -> %s", st, dt)
			}
		case OpBitcast:
			if st.Bits() != dt.Bits() {
				report(where, "bitcast between widths %d and %d", st.Bits(), dt.Bits())
			}
		}
	case in.Op == OpSelect:
		if !wantOperands(3) {
			return
		}
		if in.Operands[0].ValueType() != I1 {
			report(where, "select condition is %s, want i1", in.Operands[0].ValueType())
		}
		if in.Operands[1].ValueType() != in.Operands[2].ValueType() {
			report(where, "select arms have different types")
		}
		if in.Type != in.Operands[1].ValueType() {
			report(where, "select result type mismatch")
		}
	case in.Op == OpPhi:
		for i, v := range in.Operands {
			if v.ValueType() != in.Type {
				report(where, "phi incoming %d has type %s, want %s", i, v.ValueType(), in.Type)
			}
		}
	case in.Op == OpCall:
		if in.Callee == nil {
			report(where, "call without callee")
			return
		}
		if len(in.Operands) != len(in.Callee.Params) {
			report(where, "call to %s with %d args, want %d",
				in.Callee.Name, len(in.Operands), len(in.Callee.Params))
			return
		}
		for i, a := range in.Operands {
			if a.ValueType() != in.Callee.Params[i].Type {
				report(where, "call arg %d has type %s, want %s",
					i, a.ValueType(), in.Callee.Params[i].Type)
			}
		}
		if in.Type != in.Callee.RetType {
			report(where, "call result type %s, callee returns %s", in.Type, in.Callee.RetType)
		}
	case in.Op == OpIntrinsic:
		if in.Intr == IntrinsicInvalid {
			report(where, "intrinsic without kind")
			return
		}
		if !wantOperands(in.Intr.NumArgs()) {
			return
		}
		for i, a := range in.Operands {
			if !a.ValueType().IsFloat() {
				report(where, "intrinsic %s arg %d is %s, want float", in.Intr, i, a.ValueType())
			}
		}
	case in.Op == OpAlloca:
		if in.Count <= 0 {
			report(where, "alloca with non-positive count %d", in.Count)
		}
		if in.Elem == Void || in.Type != Ptr {
			report(where, "malformed alloca")
		}
	case in.Op == OpLoad:
		if !wantOperands(1) {
			return
		}
		if in.Operands[0].ValueType() != Ptr {
			report(where, "load address is %s, want ptr", in.Operands[0].ValueType())
		}
		if in.Type != in.Elem || in.Elem == Void {
			report(where, "load element/result type mismatch")
		}
	case in.Op == OpStore:
		if !wantOperands(2) {
			return
		}
		if in.Operands[1].ValueType() != Ptr {
			report(where, "store address is %s, want ptr", in.Operands[1].ValueType())
		}
		if in.Operands[0].ValueType() != in.Elem {
			report(where, "store value type %s differs from element type %s",
				in.Operands[0].ValueType(), in.Elem)
		}
	case in.Op == OpGep:
		if !wantOperands(2) {
			return
		}
		if in.Operands[0].ValueType() != Ptr {
			report(where, "gep base is %s, want ptr", in.Operands[0].ValueType())
		}
		if !in.Operands[1].ValueType().IsInt() {
			report(where, "gep index is %s, want int", in.Operands[1].ValueType())
		}
		if in.Elem == Void || in.Type != Ptr {
			report(where, "malformed gep")
		}
	case in.Op == OpBr:
		if len(in.Targets) != 1 {
			report(where, "br with %d targets", len(in.Targets))
			return
		}
		if !blocks[in.Targets[0]] {
			report(where, "br target not in function")
		}
	case in.Op == OpCondBr:
		if !wantOperands(1) {
			return
		}
		if in.Operands[0].ValueType() != I1 {
			report(where, "condbr condition is %s, want i1", in.Operands[0].ValueType())
		}
		if len(in.Targets) != 2 {
			report(where, "condbr with %d targets", len(in.Targets))
			return
		}
		for _, t := range in.Targets {
			if !blocks[t] {
				report(where, "condbr target not in function")
			}
		}
	case in.Op == OpRet:
		fn := in.Block.Fn
		if fn.RetType == Void {
			if len(in.Operands) != 0 {
				report(where, "ret with value in void function")
			}
		} else {
			if len(in.Operands) != 1 {
				report(where, "ret without value in non-void function")
			} else if in.Operands[0].ValueType() != fn.RetType {
				report(where, "ret type %s, function returns %s",
					in.Operands[0].ValueType(), fn.RetType)
			}
		}
	case in.Op == OpPrint:
		if !wantOperands(1) {
			return
		}
		if in.Operands[0].ValueType() == Void {
			report(where, "print of void value")
		}
	case in.Op == OpCheck:
		if !wantOperands(2) {
			return
		}
		if in.Operands[0].ValueType() != in.Operands[1].ValueType() {
			report(where, "check operand types differ: %s vs %s",
				in.Operands[0].ValueType(), in.Operands[1].ValueType())
		}
	default:
		report(where, "unknown opcode %d", in.Op)
	}
}
