package ir

// UseMap records, for every register-defining instruction of a function,
// the instructions that consume its result. The TRIDENT fs sub-model walks
// these def-use edges to trace static data-dependent instruction
// sequences.
type UseMap struct {
	users map[*Instr][]*Instr
}

// BuildUseMap scans fn and returns its def-use map.
func BuildUseMap(fn *Func) *UseMap {
	um := &UseMap{users: make(map[*Instr][]*Instr, fn.NumInstrs())}
	fn.Instrs(func(in *Instr) {
		for _, op := range in.Operands {
			def, ok := op.(*Instr)
			if !ok {
				continue
			}
			um.users[def] = append(um.users[def], in)
		}
	})
	return um
}

// Users returns the instructions that consume the result of def. The
// returned slice is owned by the map; callers must not mutate it.
func (um *UseMap) Users(def *Instr) []*Instr { return um.users[def] }

// NumUses returns the number of consumers of def's result.
func (um *UseMap) NumUses(def *Instr) int { return len(um.users[def]) }
