package ir

import "fmt"

// Instr is a single IR instruction. One struct type represents every
// opcode, LLVM-style; op-specific data lives in the optional fields below
// and is validated by the verifier.
type Instr struct {
	// ID is the function-local static index of the instruction, assigned
	// by Func.Renumber. It is stable across printing and parsing and is
	// the key used by the profiler and the models.
	ID int
	// Name is the register name (without the % sigil); empty for
	// instructions without a result.
	Name string
	// Op is the opcode.
	Op Opcode
	// Type is the result type (Void for instructions with no result).
	Type Type
	// Operands are the data inputs, in opcode-specific order:
	//   binary/cmp:  [lhs, rhs]
	//   cast:        [src]
	//   select:      [cond, ifTrue, ifFalse]
	//   phi:         incoming values, parallel to PhiBlocks
	//   call:        arguments
	//   intrinsic:   arguments
	//   alloca:      [] (Count elements of Elem)
	//   load:        [addr]
	//   store:       [value, addr]
	//   gep:         [base, index]  (addr = base + index*Elem.Bytes())
	//   condbr:      [cond]
	//   ret:         [value] or []
	//   print:       [value]
	Operands []Value
	// Block is the containing basic block.
	Block *Block

	// Pred is the comparison predicate (ICmp/FCmp only).
	Pred Predicate
	// Elem is the element type for Alloca/Load/Store/Gep.
	Elem Type
	// Count is the element count for Alloca.
	Count int
	// Callee is the called function (Call only).
	Callee *Func
	// Intr is the intrinsic kind (Intrinsic only).
	Intr Intrinsic
	// Targets are successor blocks: Br has one, CondBr has two in
	// [true, false] order.
	Targets []*Block
	// PhiBlocks are the incoming blocks of a Phi, parallel to Operands.
	PhiBlocks []*Block
	// Format is the output format (Print only).
	Format OutputFormat
}

var _ Value = (*Instr)(nil)

// ValueType implements Value: using an instruction as an operand refers to
// the register it defines.
func (in *Instr) ValueType() Type { return in.Type }

// ValueString implements Value.
func (in *Instr) ValueString() string { return "%" + in.Name }

// HasResult reports whether the instruction defines a register.
func (in *Instr) HasResult() bool {
	if in.Op == OpCall {
		return in.Type != Void
	}
	return in.Op.HasResult()
}

// IsTerminator reports whether the instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// IsMemAccess reports whether the instruction reads or writes memory.
func (in *Instr) IsMemAccess() bool { return in.Op == OpLoad || in.Op == OpStore }

// AddrOperand returns the address operand of a Load or Store, or nil.
func (in *Instr) AddrOperand() Value {
	switch in.Op {
	case OpLoad:
		return in.Operands[0]
	case OpStore:
		return in.Operands[1]
	default:
		return nil
	}
}

// StoredValue returns the value operand of a Store, or nil.
func (in *Instr) StoredValue() Value {
	if in.Op == OpStore {
		return in.Operands[0]
	}
	return nil
}

// String returns a short human-readable description, mainly for error
// messages; the full textual form comes from the printer.
func (in *Instr) String() string {
	if in.HasResult() {
		return fmt.Sprintf("%%%s = %s", in.Name, in.Op)
	}
	return in.Op.String()
}

// Pos returns "func:block:id" for diagnostics.
func (in *Instr) Pos() string {
	fn := "?"
	bb := "?"
	if in.Block != nil {
		bb = in.Block.Name
		if in.Block.Fn != nil {
			fn = in.Block.Fn.Name
		}
	}
	return fmt.Sprintf("%s:%s:#%d", fn, bb, in.ID)
}
