// Package ir defines a typed, register-based intermediate representation
// modeled on a subset of LLVM IR — the subset the TRIDENT error-propagation
// model reasons about: static data-dependence chains through virtual
// registers, an explicit control-flow graph of basic blocks, loads and
// stores against a flat memory, comparisons feeding conditional branches,
// and designated program-output instructions.
//
// The package provides the in-memory IR (Module/Func/Block/Instr), a
// Builder for programmatic construction, a verifier, a textual printer and
// a parser for the printed form. DESIGN.md §2 places the IR in the
// system inventory; the printer's parse/print fixed point is what makes
// every content hash in DESIGN.md §5h well-defined.
package ir

import "fmt"

// Type is the scalar type of an IR value. The IR is deliberately
// first-order: aggregates are expressed as typed memory regions accessed
// via Gep/Load/Store, which is all the error-propagation model needs.
type Type uint8

// Scalar types. Void is only valid as a function return type.
const (
	Void Type = iota
	I1
	I8
	I16
	I32
	I64
	F32
	F64
	Ptr
)

// Bits returns the width of the type in bits as represented in a machine
// register. Pointers are 64-bit. Void has width 0.
func (t Type) Bits() int {
	switch t {
	case I1:
		return 1
	case I8:
		return 8
	case I16:
		return 16
	case I32:
		return 32
	case I64, Ptr:
		return 64
	case F32:
		return 32
	case F64:
		return 64
	default:
		return 0
	}
}

// Bytes returns the storage footprint of the type in memory, in bytes.
func (t Type) Bytes() int {
	switch t {
	case I1, I8:
		return 1
	case I16:
		return 2
	case I32, F32:
		return 4
	case I64, F64, Ptr:
		return 8
	default:
		return 0
	}
}

// IsInt reports whether t is an integer type (including I1).
func (t Type) IsInt() bool { return t >= I1 && t <= I64 }

// IsFloat reports whether t is a floating-point type.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

// String returns the textual spelling of the type used by the printer and
// parser.
func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I8:
		return "i8"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// typeByName maps textual spellings back to types for the parser.
var typeByName = map[string]Type{
	"void": Void, "i1": I1, "i8": I8, "i16": I16, "i32": I32,
	"i64": I64, "f32": F32, "f64": F64, "ptr": Ptr,
}

// TypeByName returns the type with the given textual spelling.
func TypeByName(name string) (Type, bool) {
	t, ok := typeByName[name]
	return t, ok
}

// Opcode identifies the operation an instruction performs.
type Opcode uint8

// Instruction opcodes. The set mirrors the LLVM instructions that appear in
// the -O2 output of the paper's benchmarks and that the TRIDENT sub-models
// distinguish.
const (
	OpInvalid Opcode = iota

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons (yield I1).
	OpICmp
	OpFCmp

	// Conversions.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpFPToSI
	OpSIToFP
	OpBitcast

	// Other value-producing instructions.
	OpSelect
	OpPhi
	OpCall
	OpIntrinsic

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGep

	// Control flow (terminators).
	OpBr
	OpCondBr
	OpRet

	// Program output. The operand is written to the program's observable
	// output; TRIDENT treats reaching a Print as reaching the output.
	OpPrint

	// Detector check inserted by the selective-duplication pass: if the two
	// operands (original and shadow computation) differ, execution stops
	// with a detection, which is not an SDC.
	OpCheck
)

var opcodeNames = map[Opcode]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv",
	OpUDiv: "udiv", OpSRem: "srem", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext",
	OpFPTrunc: "fptrunc", OpFPExt: "fpext",
	OpFPToSI: "fptosi", OpSIToFP: "sitofp", OpBitcast: "bitcast",
	OpSelect: "select", OpPhi: "phi", OpCall: "call",
	OpIntrinsic: "intrinsic",
	OpAlloca:    "alloca", OpLoad: "load", OpStore: "store", OpGep: "gep",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
	OpPrint: "print", OpCheck: "check",
}

// String returns the textual mnemonic of the opcode.
func (op Opcode) String() string {
	if s, ok := opcodeNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// opcodeByName maps mnemonics back to opcodes for the parser.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opcodeNames))
	for op, s := range opcodeNames {
		m[s] = op
	}
	return m
}()

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool {
	return op == OpBr || op == OpCondBr || op == OpRet
}

// IsBinary reports whether the opcode is a two-operand arithmetic, bitwise
// or floating-point operation.
func (op Opcode) IsBinary() bool { return op >= OpAdd && op <= OpFDiv }

// IsCast reports whether the opcode is a conversion.
func (op Opcode) IsCast() bool { return op >= OpTrunc && op <= OpBitcast }

// IsCmp reports whether the opcode is a comparison.
func (op Opcode) IsCmp() bool { return op == OpICmp || op == OpFCmp }

// HasResult reports whether instructions with this opcode define a register.
func (op Opcode) HasResult() bool {
	switch op {
	case OpStore, OpBr, OpCondBr, OpRet, OpPrint, OpCheck:
		return false
	case OpCall:
		// Calls to void functions have no result; the instruction decides.
		return true
	default:
		return op != OpInvalid
	}
}

// Predicate is the condition code of a comparison instruction.
type Predicate uint8

// Comparison predicates. Integer predicates are signed (S*) or unsigned
// (U*); float predicates are ordered (O*).
const (
	PredInvalid Predicate = iota
	PredEQ
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE
	PredOEQ
	PredONE
	PredOLT
	PredOLE
	PredOGT
	PredOGE
)

var predicateNames = map[Predicate]string{
	PredEQ: "eq", PredNE: "ne",
	PredSLT: "slt", PredSLE: "sle", PredSGT: "sgt", PredSGE: "sge",
	PredULT: "ult", PredULE: "ule", PredUGT: "ugt", PredUGE: "uge",
	PredOEQ: "oeq", PredONE: "one",
	PredOLT: "olt", PredOLE: "ole", PredOGT: "ogt", PredOGE: "oge",
}

// String returns the textual spelling of the predicate.
func (p Predicate) String() string {
	if s, ok := predicateNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

var predicateByName = func() map[string]Predicate {
	m := make(map[string]Predicate, len(predicateNames))
	for p, s := range predicateNames {
		m[s] = p
	}
	return m
}()

// Intrinsic identifies a built-in math routine evaluated natively by the
// interpreter. They model libm calls in the original benchmarks; the fs
// sub-model treats them as fully propagating, like other arithmetic.
type Intrinsic uint8

// Intrinsic kinds.
const (
	IntrinsicInvalid Intrinsic = iota
	IntrinsicSqrt
	IntrinsicExp
	IntrinsicLog
	IntrinsicSin
	IntrinsicCos
	IntrinsicPow
	IntrinsicFabs
	IntrinsicFloor
	IntrinsicFmin
	IntrinsicFmax
)

var intrinsicNames = map[Intrinsic]string{
	IntrinsicSqrt: "sqrt", IntrinsicExp: "exp", IntrinsicLog: "log",
	IntrinsicSin: "sin", IntrinsicCos: "cos", IntrinsicPow: "pow",
	IntrinsicFabs: "fabs", IntrinsicFloor: "floor",
	IntrinsicFmin: "fmin", IntrinsicFmax: "fmax",
}

// String returns the textual name of the intrinsic.
func (in Intrinsic) String() string {
	if s, ok := intrinsicNames[in]; ok {
		return s
	}
	return fmt.Sprintf("intrinsic(%d)", uint8(in))
}

var intrinsicByName = func() map[string]Intrinsic {
	m := make(map[string]Intrinsic, len(intrinsicNames))
	for in, s := range intrinsicNames {
		m[s] = in
	}
	return m
}()

// NumIntrinsicArgs returns the number of arguments the intrinsic takes.
func (in Intrinsic) NumArgs() int {
	switch in {
	case IntrinsicPow, IntrinsicFmin, IntrinsicFmax:
		return 2
	default:
		return 1
	}
}

// OutputFormat describes how a Print instruction renders its operand, which
// matters to the model: reduced-precision float output masks low mantissa
// bits (paper §IV-E "Floating Point").
type OutputFormat uint8

// Output formats.
const (
	// FormatDefault renders the full value (all bits significant).
	FormatDefault OutputFormat = iota
	// FormatG2 renders a float with 2 significant digits ("%g" with
	// precision 2), the reduced-precision case the paper analyzes.
	FormatG2
)

// String returns the textual spelling of the format.
func (f OutputFormat) String() string {
	if f == FormatG2 {
		return "g2"
	}
	return "default"
}
