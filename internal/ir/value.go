package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: a constant,
// a function parameter, a global's address, or the register defined by an
// instruction.
type Value interface {
	// ValueType returns the scalar type of the value.
	ValueType() Type
	// ValueString returns the operand spelling used by the printer.
	ValueString() string
}

// Const is a typed immediate. Bits holds the raw bit pattern: integers are
// stored sign-extended into the low Bits() bits, F32 as math.Float32bits in
// the low 32 bits, F64 as math.Float64bits.
type Const struct {
	Type Type
	Bits uint64
}

var _ Value = (*Const)(nil)

// ConstInt returns an integer constant of type t holding v truncated to the
// width of t.
func ConstInt(t Type, v int64) *Const {
	return &Const{Type: t, Bits: TruncateToWidth(uint64(v), t.Bits())}
}

// ConstBool returns an I1 constant.
func ConstBool(v bool) *Const {
	if v {
		return &Const{Type: I1, Bits: 1}
	}
	return &Const{Type: I1, Bits: 0}
}

// ConstFloat returns a floating-point constant of type t (F32 or F64).
func ConstFloat(t Type, v float64) *Const {
	switch t {
	case F32:
		return &Const{Type: F32, Bits: uint64(math.Float32bits(float32(v)))}
	default:
		return &Const{Type: F64, Bits: math.Float64bits(v)}
	}
}

// ValueType implements Value.
func (c *Const) ValueType() Type { return c.Type }

// Int returns the constant interpreted as a signed integer.
func (c *Const) Int() int64 { return SignExtend(c.Bits, c.Type.Bits()) }

// Float returns the constant interpreted as a float.
func (c *Const) Float() float64 {
	if c.Type == F32 {
		return float64(math.Float32frombits(uint32(c.Bits)))
	}
	return math.Float64frombits(c.Bits)
}

// ValueString implements Value.
func (c *Const) ValueString() string {
	switch {
	case c.Type.IsFloat():
		return strconv.FormatFloat(c.Float(), 'g', -1, 64)
	case c.Type == Ptr:
		return "0x" + strconv.FormatUint(c.Bits, 16)
	default:
		return strconv.FormatInt(c.Int(), 10)
	}
}

// Param is a formal parameter of a function.
type Param struct {
	Name  string
	Type  Type
	Index int
	Fn    *Func
}

var _ Value = (*Param)(nil)

// ValueType implements Value.
func (p *Param) ValueType() Type { return p.Type }

// ValueString implements Value.
func (p *Param) ValueString() string { return "%" + p.Name }

// Global is a module-level typed array in memory. Its Value use denotes the
// address of its first element (type Ptr).
type Global struct {
	Name string
	// Elem is the element type of the array.
	Elem Type
	// Count is the number of elements.
	Count int
	// Init holds initial bit patterns for the first len(Init) elements;
	// remaining elements are zero.
	Init []uint64
	// Slot is the global's dense index within its module (its position in
	// Module.Globals), assigned by Module.AddGlobal. Execution engines use
	// it to resolve a global operand to its base address with a slice
	// index instead of a map lookup.
	Slot int
}

var _ Value = (*Global)(nil)

// ValueType implements Value; a global used as an operand is its address.
func (g *Global) ValueType() Type { return Ptr }

// ValueString implements Value.
func (g *Global) ValueString() string { return "@" + g.Name }

// SizeBytes returns the storage footprint of the global.
func (g *Global) SizeBytes() int { return g.Count * g.Elem.Bytes() }

// TruncateToWidth masks bits to the low width bits. A width of 64 or more
// returns bits unchanged.
func TruncateToWidth(bits uint64, width int) uint64 {
	if width >= 64 {
		return bits
	}
	return bits & ((1 << uint(width)) - 1)
}

// SignExtend interprets the low width bits of bits as a two's-complement
// integer and returns it sign-extended to 64 bits.
func SignExtend(bits uint64, width int) int64 {
	if width >= 64 {
		return int64(bits)
	}
	bits = TruncateToWidth(bits, width)
	sign := uint64(1) << uint(width-1)
	if bits&sign != 0 {
		bits |= ^uint64(0) << uint(width)
	}
	return int64(bits)
}

// FloatFromBits decodes a bit pattern of type t (F32 or F64) into a
// float64.
func FloatFromBits(t Type, bits uint64) float64 {
	if t == F32 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

// FloatToBits encodes v as a bit pattern of type t (F32 or F64).
func FloatToBits(t Type, v float64) uint64 {
	if t == F32 {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// FormatValue renders a runtime bit pattern of type t the way the
// interpreter's Print instruction does, honoring the output format.
func FormatValue(t Type, bits uint64, format OutputFormat) string {
	switch {
	case t.IsFloat():
		v := FloatFromBits(t, bits)
		if format == FormatG2 {
			return strconv.FormatFloat(v, 'g', 2, 64)
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	case t == Ptr:
		return fmt.Sprintf("0x%x", bits)
	default:
		return strconv.FormatInt(SignExtend(bits, t.Bits()), 10)
	}
}
