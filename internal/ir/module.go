package ir

import "fmt"

// Module is a compilation unit: a set of globals and functions. Execution
// starts at the function named "main".
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddGlobal appends a global to the module and returns it. The global's
// Slot is its index in Globals; engines rely on slots being dense and in
// declaration order.
func (m *Module) AddGlobal(name string, elem Type, count int, init []uint64) *Global {
	g := &Global{Name: name, Elem: elem, Count: count, Init: init, Slot: len(m.Globals)}
	m.Globals = append(m.Globals, g)
	return g
}

// NumInstrs returns the number of static instructions across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Instrs calls visit for every instruction in the module, in function and
// block order.
func (m *Module) Instrs(visit func(*Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				visit(in)
			}
		}
	}
}

// Func is a function: an ordered list of basic blocks, the first of which
// is the entry block.
type Func struct {
	Name    string
	Params  []*Param
	RetType Type
	Blocks  []*Block
	Module  *Module

	nextID int // next instruction ID, maintained by Renumber/appendInstr
}

// NewFunc creates a function, registers it with the module and returns it.
func (m *Module) NewFunc(name string, ret Type, params ...*Param) *Func {
	f := &Func{Name: name, RetType: ret, Module: m}
	for i, p := range params {
		p.Index = i
		p.Fn = f
	}
	f.Params = params
	m.Funcs = append(m.Funcs, f)
	return f
}

// NewParam returns a formal parameter for use with NewFunc.
func NewParam(name string, t Type) *Param {
	return &Param{Name: name, Type: t}
}

// Entry returns the entry block, or nil if the function has no blocks.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Block returns the block with the given name, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NewBlock appends a new empty block with the given name.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Index: len(f.Blocks), Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumInstrs returns the number of static instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Instrs calls visit for every instruction in block order.
func (f *Func) Instrs(visit func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}

// Renumber assigns sequential IDs (and default register names to unnamed
// results) to all instructions in block order, and reindexes blocks. It
// must be called after structural mutation and before profiling or
// analysis.
func (f *Func) Renumber() {
	id := 0
	for bi, b := range f.Blocks {
		b.Index = bi
		for _, in := range b.Instrs {
			in.ID = id
			if in.HasResult() && in.Name == "" {
				in.Name = fmt.Sprintf("t%d", id)
			}
			id++
		}
	}
	f.nextID = id
}

// InstrByID returns the instruction with the given function-local ID, or
// nil. IDs are assigned by Renumber.
func (f *Func) InstrByID(id int) *Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID == id {
				return in
			}
		}
	}
	return nil
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Name   string
	Index  int
	Instrs []*Instr
	Fn     *Func
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks in CFG order (CondBr: [true, false]).
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Preds returns the predecessor blocks, in function block order.
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, other := range b.Fn.Blocks {
		for _, s := range other.Succs() {
			if s == b {
				preds = append(preds, other)
				break
			}
		}
	}
	return preds
}

// appendInstr attaches an instruction to the block, assigning its ID.
func (b *Block) appendInstr(in *Instr) *Instr {
	in.Block = b
	in.ID = b.Fn.nextID
	b.Fn.nextID++
	if in.HasResult() && in.Name == "" {
		in.Name = fmt.Sprintf("t%d", in.ID)
	}
	b.Instrs = append(b.Instrs, in)
	return in
}
