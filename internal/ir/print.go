package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR format accepted by Parse.
// The format is LLVM-flavored:
//
//	module "name"
//
//	global @arr i32 x 100 = [1, 2, 3]
//
//	func @main() void {
//	entry:
//	  %p = alloca i32 x 10
//	  %v = load i32, %p
//	  %c = icmp sgt %v, i32 0
//	  condbr %c, then, else
//	...
//	}
//
// Constants are spelled with an explicit type ("i32 5", "f64 0.5");
// registers, params and globals carry their type from their definition.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %q\n", m.Name)
	for _, g := range m.Globals {
		sb.WriteByte('\n')
		printGlobal(&sb, g)
	}
	for _, f := range m.Funcs {
		sb.WriteByte('\n')
		printFunc(&sb, f)
	}
	return sb.String()
}

func printGlobal(sb *strings.Builder, g *Global) {
	fmt.Fprintf(sb, "global @%s %s x %d", g.Name, g.Elem, g.Count)
	if len(g.Init) == 0 {
		sb.WriteByte('\n')
		return
	}
	sb.WriteString(" = [")
	for i, bits := range g.Init {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(constLiteral(g.Elem, bits))
	}
	sb.WriteString("]\n")
}

func constLiteral(t Type, bits uint64) string {
	c := Const{Type: t, Bits: bits}
	return c.ValueString()
}

// PrintFunc renders one function in the textual IR format — the
// canonical form (a print→parse fixed point, like Print) that content
// hashes of individual functions are defined over.
func PrintFunc(f *Func) string {
	var sb strings.Builder
	printFunc(&sb, f)
	return sb.String()
}

func printFunc(sb *strings.Builder, f *Func) {
	fmt.Fprintf(sb, "func @%s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%%%s %s", p.Name, p.Type)
	}
	fmt.Fprintf(sb, ") %s {\n", f.RetType)
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(FormatInstr(in))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
}

// FormatInstr renders one instruction in the textual format.
func FormatInstr(in *Instr) string {
	var sb strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&sb, "%%%s = ", in.Name)
	}
	operand := func(i int) string { return operandString(in.Operands[i]) }

	switch {
	case in.Op.IsBinary():
		fmt.Fprintf(&sb, "%s %s, %s", in.Op, operand(0), operand(1))
	case in.Op.IsCmp():
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Pred, operand(0), operand(1))
	case in.Op.IsCast():
		fmt.Fprintf(&sb, "%s %s to %s", in.Op, operand(0), in.Type)
	case in.Op == OpSelect:
		fmt.Fprintf(&sb, "select %s, %s, %s", operand(0), operand(1), operand(2))
	case in.Op == OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Type)
		for i := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %s]", operand(i), in.PhiBlocks[i].Name)
		}
	case in.Op == OpCall:
		fmt.Fprintf(&sb, "call @%s(", in.Callee.Name)
		for i := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(operand(i))
		}
		sb.WriteString(")")
	case in.Op == OpIntrinsic:
		fmt.Fprintf(&sb, "intrinsic %s(", in.Intr)
		for i := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(operand(i))
		}
		sb.WriteString(")")
	case in.Op == OpAlloca:
		fmt.Fprintf(&sb, "alloca %s x %d", in.Elem, in.Count)
	case in.Op == OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Elem, operand(0))
	case in.Op == OpStore:
		fmt.Fprintf(&sb, "store %s, %s", operand(0), operand(1))
	case in.Op == OpGep:
		fmt.Fprintf(&sb, "gep %s, %s, %s", in.Elem, operand(0), operand(1))
	case in.Op == OpBr:
		fmt.Fprintf(&sb, "br %s", in.Targets[0].Name)
	case in.Op == OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, %s, %s", operand(0), in.Targets[0].Name, in.Targets[1].Name)
	case in.Op == OpRet:
		if len(in.Operands) == 0 {
			sb.WriteString("ret")
		} else {
			fmt.Fprintf(&sb, "ret %s", operand(0))
		}
	case in.Op == OpPrint:
		if in.Format == FormatG2 {
			fmt.Fprintf(&sb, "print g2 %s", operand(0))
		} else {
			fmt.Fprintf(&sb, "print %s", operand(0))
		}
	case in.Op == OpCheck:
		fmt.Fprintf(&sb, "check %s, %s", operand(0), operand(1))
	default:
		fmt.Fprintf(&sb, "<invalid op %d>", in.Op)
	}
	return sb.String()
}

func operandString(v Value) string {
	if c, ok := v.(*Const); ok {
		return c.Type.String() + " " + c.ValueString()
	}
	return v.ValueString()
}
