package ir

import (
	"strings"
	"testing"
)

// buildCountdown builds:
//
//	func main() {
//	  n = 10
//	loop:
//	  i = phi [n, entry], [dec, loop]
//	  dec = sub i, 1
//	  c = icmp sgt dec, 0
//	  condbr c, loop, exit
//	exit:
//	  print dec
//	  ret
//	}
func buildCountdown(t testing.TB) *Module {
	t.Helper()
	m := NewModule("countdown")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	b.Br(loop)

	b.SetBlock(loop)
	i := b.Named("i", b.Phi(I32))
	dec := b.Named("dec", b.Sub(i, ConstInt(I32, 1)))
	c := b.Named("c", b.ICmp(PredSGT, dec, ConstInt(I32, 0)))
	b.CondBr(c, loop, exit)
	b.AddIncoming(i, ConstInt(I32, 10), entry)
	b.AddIncoming(i, dec, loop)

	b.SetBlock(exit)
	b.Print(dec)
	b.Ret(nil)

	f.Renumber()
	if err := Verify(m); err != nil {
		t.Fatalf("countdown module invalid: %v", err)
	}
	return m
}

func TestBuilderProducesValidModule(t *testing.T) {
	m := buildCountdown(t)
	f := m.Func("main")
	if f == nil {
		t.Fatal("main not found")
	}
	if got := f.NumInstrs(); got != 7 {
		t.Errorf("NumInstrs = %d, want 7", got)
	}
	if f.Entry().Name != "entry" {
		t.Errorf("entry block = %q", f.Entry().Name)
	}
}

func TestRenumberAssignsSequentialIDs(t *testing.T) {
	m := buildCountdown(t)
	f := m.Func("main")
	want := 0
	f.Instrs(func(in *Instr) {
		if in.ID != want {
			t.Errorf("instruction %s has ID %d, want %d", in, in.ID, want)
		}
		want++
	})
	for id := 0; id < f.NumInstrs(); id++ {
		if got := f.InstrByID(id); got == nil || got.ID != id {
			t.Errorf("InstrByID(%d) wrong", id)
		}
	}
	if f.InstrByID(999) != nil {
		t.Error("InstrByID(999) should be nil")
	}
}

func TestSuccsAndPreds(t *testing.T) {
	m := buildCountdown(t)
	f := m.Func("main")
	entry, loop, exit := f.Block("entry"), f.Block("loop"), f.Block("exit")

	if s := entry.Succs(); len(s) != 1 || s[0] != loop {
		t.Errorf("entry succs = %v", names(s))
	}
	if s := loop.Succs(); len(s) != 2 || s[0] != loop || s[1] != exit {
		t.Errorf("loop succs = %v", names(s))
	}
	if p := loop.Preds(); len(p) != 2 {
		t.Errorf("loop preds = %v", names(p))
	}
	if p := exit.Preds(); len(p) != 1 || p[0] != loop {
		t.Errorf("exit preds = %v", names(p))
	}
	if p := entry.Preds(); len(p) != 0 {
		t.Errorf("entry preds = %v", names(p))
	}
}

func names(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Name)
	}
	return out
}

func TestModuleLookups(t *testing.T) {
	m := buildCountdown(t)
	m.AddGlobal("data", I64, 4, []uint64{1, 2})
	if m.Global("data") == nil || m.Global("nope") != nil {
		t.Error("Global lookup wrong")
	}
	if m.Func("main") == nil || m.Func("nope") != nil {
		t.Error("Func lookup wrong")
	}
	if m.NumInstrs() != 7 {
		t.Errorf("module NumInstrs = %d", m.NumInstrs())
	}
	n := 0
	m.Instrs(func(*Instr) { n++ })
	if n != 7 {
		t.Errorf("Instrs visited %d", n)
	}
}

func TestUseMap(t *testing.T) {
	m := buildCountdown(t)
	f := m.Func("main")
	um := BuildUseMap(f)

	loop := f.Block("loop")
	phi := loop.Instrs[0]
	dec := loop.Instrs[1]
	cmp := loop.Instrs[2]

	// dec is used by cmp, by the phi, and by print.
	if um.NumUses(dec) != 3 {
		t.Errorf("dec has %d uses, want 3", um.NumUses(dec))
	}
	if um.NumUses(phi) != 1 {
		t.Errorf("phi has %d uses, want 1", um.NumUses(phi))
	}
	// cmp is used by the condbr.
	users := um.Users(cmp)
	if len(users) != 1 || users[0].Op != OpCondBr {
		t.Errorf("cmp users = %v", users)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	bb := b.NewBlock("entry")
	b.SetBlock(bb)
	b.Add(ConstInt(I32, 1), ConstInt(I32, 2))
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("Verify = %v, want terminator error", err)
	}
}

func TestVerifyCatchesTypeMismatch(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	b.Add(ConstInt(I32, 1), ConstInt(I64, 2))
	b.Ret(nil)
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "differ") {
		t.Errorf("Verify = %v, want operand type error", err)
	}
}

func TestVerifyCatchesBadPhi(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	entry := b.NewBlock("entry")
	next := b.NewBlock("next")
	b.SetBlock(entry)
	b.Br(next)
	b.SetBlock(next)
	phi := b.Phi(I32)
	// Only one incoming edge covered; block has one pred so add a bogus one.
	b.AddIncoming(phi, ConstInt(I32, 1), next) // next is not a pred of next
	b.Ret(nil)
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "predecessor") {
		t.Errorf("Verify = %v, want phi predecessor error", err)
	}
}

func TestVerifyCatchesVoidIssues(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", I32) // non-void return
	b := NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	b.Ret(nil) // missing value
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "ret without value") {
		t.Errorf("Verify = %v, want ret error", err)
	}
}

func TestVerifyCatchesMissingMain(t *testing.T) {
	m := NewModule("nomain")
	f := m.NewFunc("helper", Void)
	b := NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	b.Ret(nil)
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Errorf("Verify = %v, want missing-main error", err)
	}
}

func TestVerifyCatchesCallArgMismatch(t *testing.T) {
	m := NewModule("bad")
	callee := m.NewFunc("f", I32, NewParam("x", I32))
	cb := NewBuilder(callee)
	cb.SetBlock(cb.NewBlock("entry"))
	cb.Ret(ConstInt(I32, 0))
	callee.Renumber()

	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	b.Call(callee, ConstInt(I64, 1)) // wrong arg type
	b.Ret(nil)
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "arg 0") {
		t.Errorf("Verify = %v, want call arg error", err)
	}
}

func TestVerifyCatchesDuplicates(t *testing.T) {
	m := NewModule("dups")
	for i := 0; i < 2; i++ {
		f := m.NewFunc("main", Void)
		b := NewBuilder(f)
		b.SetBlock(b.NewBlock("entry"))
		b.Ret(nil)
		f.Renumber()
	}
	m.AddGlobal("g", I32, 1, nil)
	m.AddGlobal("g", I32, 1, nil)
	err := Verify(m)
	if err == nil {
		t.Fatal("Verify passed with duplicates")
	}
	msg := err.Error()
	if !strings.Contains(msg, "duplicate function") || !strings.Contains(msg, "duplicate global") {
		t.Errorf("Verify = %v, want duplicate errors", err)
	}
}

func TestBlockTerminatorHelpers(t *testing.T) {
	m := buildCountdown(t)
	f := m.Func("main")
	loop := f.Block("loop")
	term := loop.Terminator()
	if term == nil || term.Op != OpCondBr {
		t.Fatalf("loop terminator = %v", term)
	}
	if term.AddrOperand() != nil || term.StoredValue() != nil {
		t.Error("branch should have no memory operands")
	}
}

func TestInstrMemHelpers(t *testing.T) {
	m := NewModule("mem")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	p := b.Alloca(I32, 4)
	v := b.Load(I32, p)
	st := b.Store(v, p)
	b.Ret(nil)
	f.Renumber()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if !v.IsMemAccess() || !st.IsMemAccess() || p.IsMemAccess() {
		t.Error("IsMemAccess wrong")
	}
	if v.AddrOperand() != p || st.AddrOperand() != p {
		t.Error("AddrOperand wrong")
	}
	if st.StoredValue() != v {
		t.Error("StoredValue wrong")
	}
}

func TestCloneModulePreservesBehaviourShape(t *testing.T) {
	m := buildCountdown(t)
	m.AddGlobal("data", I64, 4, []uint64{1, 2})
	clone, mapping := CloneModule(m)
	if err := Verify(clone); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}
	if Print(clone) != Print(m) {
		t.Errorf("clone prints differently:\n%s\nvs\n%s", Print(clone), Print(m))
	}
	// The mapping covers every instruction and points into the clone.
	n := 0
	m.Instrs(func(in *Instr) {
		n++
		ci, ok := mapping[in]
		if !ok {
			t.Fatalf("no mapping for %s", in.Pos())
		}
		if ci.Block.Fn.Module != clone {
			t.Fatal("mapped instruction not in clone")
		}
		if ci.Op != in.Op || ci.Name != in.Name {
			t.Fatalf("mapping mismatched: %s vs %s", ci, in)
		}
	})
	if n != clone.NumInstrs() {
		t.Errorf("clone has %d instrs, original %d", clone.NumInstrs(), n)
	}
	// Mutating the clone leaves the original untouched.
	before := Print(m)
	clone.Funcs[0].Blocks[0].Instrs = nil
	if Print(m) != before {
		t.Error("mutating clone affected original")
	}
}

func TestCloneModuleIndependentGlobals(t *testing.T) {
	m := buildCountdown(t)
	g := m.AddGlobal("buf", I64, 2, []uint64{7})
	clone, _ := CloneModule(m)
	cg := clone.Global("buf")
	cg.Init[0] = 99
	if g.Init[0] != 7 {
		t.Error("clone shares initializer storage with original")
	}
}
