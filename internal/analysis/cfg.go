// Package analysis provides control-flow analyses over IR functions:
// dominator and post-dominator trees, natural-loop detection, control
// dependence, and branch-probability mass propagation. The TRIDENT fc
// sub-model is built on these. ANALYSIS.md §1 surveys the analyses and
// their consumers; DESIGN.md §3 describes the fc sub-model they feed.
package analysis

import (
	"trident/internal/ir"
)

// CFG holds the control-flow analyses for one function. Construct with
// Analyze; the function must be verified and must not be mutated afterward.
type CFG struct {
	Fn *ir.Func

	// RPO is the reverse-postorder of reachable blocks, starting at entry.
	RPO []*ir.Block

	rpoIndex map[*ir.Block]int
	preds    map[*ir.Block][]*ir.Block
	idom     map[*ir.Block]*ir.Block
	ipdom    map[*ir.Block]*ir.Block
	loops    []*Loop
	loopOf   map[*ir.Block]*Loop // innermost containing loop
}

// Analyze computes all control-flow analyses for f.
func Analyze(f *ir.Func) *CFG {
	c := &CFG{
		Fn:       f,
		rpoIndex: make(map[*ir.Block]int),
		preds:    make(map[*ir.Block][]*ir.Block),
		idom:     make(map[*ir.Block]*ir.Block),
		ipdom:    make(map[*ir.Block]*ir.Block),
		loopOf:   make(map[*ir.Block]*Loop),
	}
	c.computeRPO()
	for _, b := range c.RPO {
		for _, s := range b.Succs() {
			c.preds[s] = append(c.preds[s], b)
		}
	}
	c.computeDominators()
	c.computePostDominators()
	c.computeLoops()
	return c
}

// computeRPO performs a DFS from entry and records reverse postorder.
func (c *CFG) computeRPO() {
	entry := c.Fn.Entry()
	if entry == nil {
		return
	}
	seen := make(map[*ir.Block]bool, len(c.Fn.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	c.RPO = make([]*ir.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		c.RPO = append(c.RPO, post[i])
	}
	for i, b := range c.RPO {
		c.rpoIndex[b] = i
	}
}

// Reachable reports whether b is reachable from the entry block.
func (c *CFG) Reachable(b *ir.Block) bool {
	_, ok := c.rpoIndex[b]
	return ok
}

// Preds returns the reachable predecessors of b.
func (c *CFG) Preds(b *ir.Block) []*ir.Block { return c.preds[b] }

// computeDominators implements the Cooper-Harvey-Kennedy iterative
// algorithm on the RPO.
func (c *CFG) computeDominators() {
	if len(c.RPO) == 0 {
		return
	}
	entry := c.RPO[0]
	c.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO[1:] {
			var newIdom *ir.Block
			for _, p := range c.preds[b] {
				if c.idom[p] == nil {
					continue // not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = c.intersect(p, newIdom, c.idom, c.rpoIndex)
				}
			}
			if newIdom != nil && c.idom[b] != newIdom {
				c.idom[b] = newIdom
				changed = true
			}
		}
	}
}

// intersect walks two nodes up a dominator tree to their common ancestor.
func (c *CFG) intersect(a, b *ir.Block, idom map[*ir.Block]*ir.Block, index map[*ir.Block]int) *ir.Block {
	for a != b {
		for index[a] > index[b] {
			a = idom[a]
		}
		for index[b] > index[a] {
			b = idom[b]
		}
	}
	return a
}

// ImmDom returns the immediate dominator of b (entry's is itself), or nil
// for unreachable blocks.
func (c *CFG) ImmDom(b *ir.Block) *ir.Block { return c.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (c *CFG) Dominates(a, b *ir.Block) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	entry := c.RPO[0]
	for {
		if b == a {
			return true
		}
		if b == entry {
			return false
		}
		b = c.idom[b]
	}
}

// computePostDominators runs the same iterative scheme on the reversed
// CFG. Blocks ending in Ret are the exits; a virtual exit joins them, and
// ipdom of a block whose only "parent" is the virtual exit is nil.
func (c *CFG) computePostDominators() {
	if len(c.RPO) == 0 {
		return
	}
	// Reverse postorder of the reversed graph = postorder-ish; compute a
	// DFS order from the exits on reversed edges.
	var exits []*ir.Block
	for _, b := range c.RPO {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			exits = append(exits, b)
		}
	}
	if len(exits) == 0 {
		return // e.g. infinite loop; no post-dominance information
	}

	seen := make(map[*ir.Block]bool, len(c.RPO))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, p := range c.preds[b] {
			if !seen[p] {
				dfs(p)
			}
		}
		post = append(post, b)
	}
	for _, e := range exits {
		if !seen[e] {
			dfs(e)
		}
	}
	order := make([]*ir.Block, 0, len(post)) // RPO of reversed graph
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	index := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}

	// Virtual-exit handling: every exit's ipdom is itself (acts as root).
	ipdom := c.ipdom
	for _, e := range exits {
		ipdom[e] = e
	}
	isExit := make(map[*ir.Block]bool, len(exits))
	for _, e := range exits {
		isExit[e] = true
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if isExit[b] {
				continue
			}
			var newIpdom *ir.Block
			for _, s := range b.Succs() {
				if ipdom[s] == nil {
					continue
				}
				if newIpdom == nil {
					newIpdom = s
				} else {
					newIpdom = c.intersectPost(s, newIpdom, index, isExit)
				}
			}
			if newIpdom != nil && ipdom[b] != newIpdom {
				ipdom[b] = newIpdom
				changed = true
			}
		}
	}
}

// intersectPost intersects in the post-dominator tree, treating all exit
// blocks as a common root (the virtual exit).
func (c *CFG) intersectPost(a, b *ir.Block, index map[*ir.Block]int, isExit map[*ir.Block]bool) *ir.Block {
	for a != b {
		// If both are exits, they only meet at the virtual exit; return
		// either one — callers treat any exit as "post-dominated by end".
		if isExit[a] && isExit[b] {
			return a
		}
		for index[a] > index[b] {
			if isExit[a] {
				return a
			}
			a = c.ipdom[a]
		}
		for index[b] > index[a] {
			if isExit[b] {
				return b
			}
			b = c.ipdom[b]
		}
	}
	return a
}

// ImmPostDom returns the immediate post-dominator of b (an exit block's is
// itself), or nil when b cannot reach an exit.
func (c *CFG) ImmPostDom(b *ir.Block) *ir.Block { return c.ipdom[b] }

// PostDominates reports whether a post-dominates b (reflexively).
func (c *CFG) PostDominates(a, b *ir.Block) bool {
	if c.ipdom[a] == nil || c.ipdom[b] == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := c.ipdom[b]
		if next == b {
			return false // reached an exit root
		}
		b = next
	}
}

// ControlDependentOn reports whether block x is control-dependent on the
// branch edge from block b to its successor s: x post-dominates s but does
// not post-dominate b.
func (c *CFG) ControlDependentOn(x, b, s *ir.Block) bool {
	return c.PostDominates(x, s) && !c.PostDominates(x, b)
}
