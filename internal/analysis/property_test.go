package analysis

import (
	"testing"

	"trident/internal/irgen"
)

// TestDominanceInvariantsOnRandomPrograms checks structural invariants of
// the analyses over generated CFGs: the entry dominates every reachable
// block, dominance is reflexive, every back edge closes a detected natural
// loop, and reach probabilities from the entry cover the entry with mass 1.
func TestDominanceInvariantsOnRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		m := irgen.Generate(irgen.Config{Seed: seed})
		for _, f := range m.Funcs {
			c := Analyze(f)
			entry := f.Entry()
			for _, b := range c.RPO {
				if !c.Dominates(entry, b) {
					t.Fatalf("seed %d: entry does not dominate %s", seed, b.Name)
				}
				if !c.Dominates(b, b) {
					t.Fatalf("seed %d: dominance not reflexive at %s", seed, b.Name)
				}
				if b != entry && c.ImmDom(b) == nil {
					t.Fatalf("seed %d: reachable block %s without idom", seed, b.Name)
				}
			}
			// Every back edge must belong to a loop whose header is its
			// target.
			for _, b := range c.RPO {
				for _, s := range b.Succs() {
					if !c.IsBackEdge(b, s) {
						continue
					}
					l := c.LoopOf(b)
					found := false
					for ; l != nil; l = l.Parent {
						if l.Header == s {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("seed %d: back edge %s->%s not in a loop", seed, b.Name, s.Name)
					}
				}
			}
			probs := ReachProbabilities(c, entry, UniformEdgeProb)
			if probs[entry] != 1 {
				t.Fatalf("seed %d: entry mass %v", seed, probs[entry])
			}
			for b, p := range probs {
				if p < 0 || p > 1+1e-9 {
					t.Fatalf("seed %d: block %s mass %v", seed, b.Name, p)
				}
			}
		}
	}
}

// TestLoopBodiesAreDominatedByHeaders: natural-loop property on random
// programs.
func TestLoopBodiesAreDominatedByHeaders(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		m := irgen.Generate(irgen.Config{Seed: seed})
		for _, f := range m.Funcs {
			c := Analyze(f)
			for _, l := range c.Loops() {
				for b := range l.Body {
					if !c.Dominates(l.Header, b) {
						t.Fatalf("seed %d: loop header %s does not dominate body block %s",
							seed, l.Header.Name, b.Name)
					}
				}
				if len(l.Latches) == 0 {
					t.Fatalf("seed %d: loop at %s has no latches", seed, l.Header.Name)
				}
			}
		}
	}
}
