package analysis

import (
	"trident/internal/ir"
)

// Loop is a natural loop identified by its back edges: a header block and
// the set of blocks that can reach a back-edge source without leaving the
// header's dominance region.
type Loop struct {
	// Header is the single entry block of the loop.
	Header *ir.Block
	// Latches are the sources of back edges into Header.
	Latches []*ir.Block
	// Body is the set of blocks in the loop, including Header.
	Body map[*ir.Block]bool
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool { return l.Body[b] }

// Depth returns the nesting depth (outermost loop = 1).
func (l *Loop) Depth() int {
	d := 0
	for cur := l; cur != nil; cur = cur.Parent {
		d++
	}
	return d
}

// computeLoops finds back edges (a→h where h dominates a), builds natural
// loop bodies, merges loops sharing a header, and nests them.
func (c *CFG) computeLoops() {
	byHeader := make(map[*ir.Block]*Loop)
	for _, b := range c.RPO {
		for _, s := range b.Succs() {
			if !c.Dominates(s, b) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Body: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
				c.loops = append(c.loops, l)
			}
			l.Latches = append(l.Latches, b)
			// Natural loop body: backward walk from the latch.
			var stack []*ir.Block
			if !l.Body[b] {
				l.Body[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range c.preds[n] {
					if !l.Body[p] {
						l.Body[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Nest loops: the innermost loop containing a block is the smallest
	// body containing it; parents are the next-smallest.
	for _, b := range c.RPO {
		var innermost *Loop
		for _, l := range c.loops {
			if !l.Contains(b) {
				continue
			}
			if innermost == nil || len(l.Body) < len(innermost.Body) {
				innermost = l
			}
		}
		if innermost != nil {
			c.loopOf[b] = innermost
		}
	}
	for _, l := range c.loops {
		var parent *Loop
		for _, outer := range c.loops {
			if outer == l || !outer.Contains(l.Header) {
				continue
			}
			if parent == nil || len(outer.Body) < len(parent.Body) {
				parent = outer
			}
		}
		l.Parent = parent
	}
}

// Loops returns all natural loops in the function.
func (c *CFG) Loops() []*Loop { return c.loops }

// LoopOf returns the innermost loop containing b, or nil.
func (c *CFG) LoopOf(b *ir.Block) *Loop { return c.loopOf[b] }

// IsBackEdge reports whether the CFG edge from a to b is a loop back edge.
func (c *CFG) IsBackEdge(a, b *ir.Block) bool {
	return c.Reachable(a) && c.Reachable(b) && c.Dominates(b, a) && isSucc(a, b)
}

func isSucc(a, b *ir.Block) bool {
	for _, s := range a.Succs() {
		if s == b {
			return true
		}
	}
	return false
}

// IsLoopTerminating reports whether the conditional branch terminating
// block b controls loop termination: one successor edge stays in (or
// re-enters) a loop containing b while the other leaves it, or one of the
// edges is a back edge. This is the paper's LT/NLT classification
// (§IV-D). The second result is the index (0 or 1) of the successor that
// continues the loop; it is only meaningful when the first result is true.
func (c *CFG) IsLoopTerminating(b *ir.Block) (bool, int) {
	t := b.Terminator()
	if t == nil || t.Op != ir.OpCondBr {
		return false, 0
	}
	l := c.LoopOf(b)
	if l == nil {
		return false, 0
	}
	in0 := l.Contains(t.Targets[0])
	in1 := l.Contains(t.Targets[1])
	switch {
	case in0 && !in1:
		return true, 0
	case in1 && !in0:
		return true, 1
	default:
		// Both stay or both leave: the branch does not decide termination
		// of this loop.
		return false, 0
	}
}
