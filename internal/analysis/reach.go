package analysis

import (
	"trident/internal/ir"
)

// EdgeProbFunc returns the probability that control leaving block b takes
// the edge to its i-th successor. Implementations typically come from a
// branch profile; probabilities over a block's successors should sum to 1.
type EdgeProbFunc func(b *ir.Block, succIdx int) float64

// ReachProbabilities propagates one unit of probability mass from block
// `from` forward through the CFG with back edges removed (the acyclic
// skeleton), splitting mass at conditional branches according to edgeProb.
// The result maps each block to the probability that a single traversal
// starting at `from` reaches it within the current loop iteration — the
// quantity Pe in the paper's Equations 1 and 2.
func ReachProbabilities(c *CFG, from *ir.Block, edgeProb EdgeProbFunc) map[*ir.Block]float64 {
	mass := make(map[*ir.Block]float64, len(c.RPO))
	if !c.Reachable(from) {
		return mass
	}
	mass[from] = 1
	start := c.rpoIndex[from]
	for _, b := range c.RPO[start:] {
		m := mass[b]
		if m == 0 {
			continue
		}
		succs := b.Succs()
		for i, s := range succs {
			if c.IsBackEdge(b, s) {
				continue // acyclic skeleton
			}
			p := 1.0
			if len(succs) > 1 {
				p = edgeProb(b, i)
			}
			// RPO guarantees s comes after b except for back edges, which
			// are skipped, so mass[s] is not yet finalized.
			mass[s] += m * p
		}
	}
	return mass
}

// UniformEdgeProb is an EdgeProbFunc that splits mass evenly across
// successors; useful as a fallback when no profile is available.
func UniformEdgeProb(b *ir.Block, _ int) float64 {
	n := len(b.Succs())
	if n == 0 {
		return 0
	}
	return 1 / float64(n)
}
