package analysis

import (
	"math"
	"testing"

	"trident/internal/ir"
)

// buildDiamond builds:
//
//	entry -> (then | else) -> join -> exit(ret)
func buildDiamond(t testing.TB) (*ir.Module, *CFG) {
	t.Helper()
	m := ir.NewModule("diamond")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	entry := b.NewBlock("entry")
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	join := b.NewBlock("join")

	b.SetBlock(entry)
	c := b.ICmp(ir.PredSGT, ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 0))
	b.CondBr(c, then, els)
	b.SetBlock(then)
	b.Br(join)
	b.SetBlock(els)
	b.Br(join)
	b.SetBlock(join)
	b.Ret(nil)

	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, Analyze(f)
}

// buildLoopNest builds a two-level loop nest:
//
//	entry -> outer.head -> inner.head -> inner.body -> inner.head (back)
//	inner.head -> outer.latch -> outer.head (back)
//	outer.head -> exit(ret)
func buildLoopNest(t testing.TB) (*ir.Func, *CFG) {
	t.Helper()
	m := ir.NewModule("nest")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	entry := b.NewBlock("entry")
	outerHead := b.NewBlock("outer.head")
	innerHead := b.NewBlock("inner.head")
	innerBody := b.NewBlock("inner.body")
	outerLatch := b.NewBlock("outer.latch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	b.Br(outerHead)

	b.SetBlock(outerHead)
	oc := b.ICmp(ir.PredSLT, ir.ConstInt(ir.I32, 0), ir.ConstInt(ir.I32, 3))
	b.CondBr(oc, innerHead, exit)

	b.SetBlock(innerHead)
	ic := b.ICmp(ir.PredSLT, ir.ConstInt(ir.I32, 0), ir.ConstInt(ir.I32, 5))
	b.CondBr(ic, innerBody, outerLatch)

	b.SetBlock(innerBody)
	b.Br(innerHead)

	b.SetBlock(outerLatch)
	b.Br(outerHead)

	b.SetBlock(exit)
	b.Ret(nil)

	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return f, Analyze(f)
}

func TestRPOStartsAtEntryAndCoversAll(t *testing.T) {
	_, c := buildDiamond(t)
	if len(c.RPO) != 4 {
		t.Fatalf("RPO has %d blocks, want 4", len(c.RPO))
	}
	if c.RPO[0].Name != "entry" {
		t.Errorf("RPO[0] = %s", c.RPO[0].Name)
	}
	if c.RPO[len(c.RPO)-1].Name != "join" {
		t.Errorf("RPO last = %s, want join", c.RPO[len(c.RPO)-1].Name)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	m, c := buildDiamond(t)
	f := m.Func("main")
	entry, then, els, join := f.Block("entry"), f.Block("then"), f.Block("else"), f.Block("join")

	if !c.Dominates(entry, join) || !c.Dominates(entry, then) || !c.Dominates(entry, els) {
		t.Error("entry should dominate all blocks")
	}
	if c.Dominates(then, join) || c.Dominates(els, join) {
		t.Error("branch arms must not dominate the join")
	}
	if c.ImmDom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", c.ImmDom(join).Name)
	}
	if !c.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	m, c := buildDiamond(t)
	f := m.Func("main")
	entry, then, els, join := f.Block("entry"), f.Block("then"), f.Block("else"), f.Block("join")

	if !c.PostDominates(join, entry) || !c.PostDominates(join, then) || !c.PostDominates(join, els) {
		t.Error("join should post-dominate all blocks")
	}
	if c.PostDominates(then, entry) || c.PostDominates(els, entry) {
		t.Error("branch arms must not post-dominate entry")
	}
	if c.ImmPostDom(entry) != join {
		t.Errorf("ipdom(entry) = %v, want join", c.ImmPostDom(entry))
	}
}

func TestControlDependence(t *testing.T) {
	m, c := buildDiamond(t)
	f := m.Func("main")
	entry, then, els, join := f.Block("entry"), f.Block("then"), f.Block("else"), f.Block("join")

	if !c.ControlDependentOn(then, entry, then) {
		t.Error("then should be control-dependent on the entry->then edge")
	}
	if !c.ControlDependentOn(els, entry, els) {
		t.Error("else should be control-dependent on the entry->else edge")
	}
	if c.ControlDependentOn(join, entry, then) {
		t.Error("join must not be control-dependent on either edge")
	}
}

func TestLoopDetectionNest(t *testing.T) {
	f, c := buildLoopNest(t)
	if len(c.Loops()) != 2 {
		t.Fatalf("found %d loops, want 2", len(c.Loops()))
	}
	outerHead := f.Block("outer.head")
	innerHead := f.Block("inner.head")
	innerBody := f.Block("inner.body")
	outerLatch := f.Block("outer.latch")

	inner := c.LoopOf(innerBody)
	if inner == nil || inner.Header != innerHead {
		t.Fatalf("inner loop not found: %+v", inner)
	}
	outer := c.LoopOf(outerLatch)
	if outer == nil || outer.Header != outerHead {
		t.Fatalf("outer loop not found: %+v", outer)
	}
	if inner.Parent != outer {
		t.Error("inner loop should nest in outer loop")
	}
	if outer.Parent != nil {
		t.Error("outer loop should have no parent")
	}
	if inner.Depth() != 2 || outer.Depth() != 1 {
		t.Errorf("depths = %d, %d", inner.Depth(), outer.Depth())
	}
	if !outer.Contains(innerBody) {
		t.Error("outer loop body should include inner blocks")
	}
	// The innermost loop of the inner header is the inner loop.
	if c.LoopOf(innerHead) != inner {
		t.Error("LoopOf(inner.head) should be inner loop")
	}
}

func TestBackEdges(t *testing.T) {
	f, c := buildLoopNest(t)
	innerHead := f.Block("inner.head")
	innerBody := f.Block("inner.body")
	outerHead := f.Block("outer.head")
	outerLatch := f.Block("outer.latch")
	entry := f.Block("entry")

	if !c.IsBackEdge(innerBody, innerHead) {
		t.Error("inner.body -> inner.head should be a back edge")
	}
	if !c.IsBackEdge(outerLatch, outerHead) {
		t.Error("outer.latch -> outer.head should be a back edge")
	}
	if c.IsBackEdge(entry, outerHead) {
		t.Error("entry -> outer.head must not be a back edge")
	}
	if c.IsBackEdge(innerHead, innerBody) {
		t.Error("forward edge misclassified as back edge")
	}
}

func TestIsLoopTerminating(t *testing.T) {
	f, c := buildLoopNest(t)
	outerHead := f.Block("outer.head")
	innerHead := f.Block("inner.head")

	lt, cont := c.IsLoopTerminating(outerHead)
	if !lt {
		t.Fatal("outer.head branch should be loop-terminating")
	}
	if outerHead.Succs()[cont].Name != "inner.head" {
		t.Errorf("continuing edge = %s", outerHead.Succs()[cont].Name)
	}
	lt, cont = c.IsLoopTerminating(innerHead)
	if !lt {
		t.Fatal("inner.head branch should be loop-terminating")
	}
	if innerHead.Succs()[cont].Name != "inner.body" {
		t.Errorf("continuing edge = %s", innerHead.Succs()[cont].Name)
	}

	m, dc := buildDiamond(t)
	entry := m.Func("main").Block("entry")
	if lt, _ := dc.IsLoopTerminating(entry); lt {
		t.Error("diamond branch misclassified as loop-terminating")
	}
}

func TestReachProbabilitiesDiamond(t *testing.T) {
	m, c := buildDiamond(t)
	f := m.Func("main")
	entry, then, els, join := f.Block("entry"), f.Block("then"), f.Block("else"), f.Block("join")

	// 30% true edge, 70% false edge.
	probs := ReachProbabilities(c, entry, func(b *ir.Block, i int) float64 {
		if i == 0 {
			return 0.3
		}
		return 0.7
	})
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(probs[entry], 1) || !approx(probs[then], 0.3) ||
		!approx(probs[els], 0.7) || !approx(probs[join], 1) {
		t.Errorf("probs = entry %.3f then %.3f else %.3f join %.3f",
			probs[entry], probs[then], probs[els], probs[join])
	}
}

func TestReachProbabilitiesSkipsBackEdges(t *testing.T) {
	f, c := buildLoopNest(t)
	innerHead := f.Block("inner.head")
	probs := ReachProbabilities(c, innerHead, UniformEdgeProb)
	// Within one traversal, mass from inner.head reaches inner.body with
	// 0.5 and does not wrap around the back edge (inner.head stays 1).
	if probs[innerHead] != 1 {
		t.Errorf("inner.head mass = %v, want 1 (no back-edge wrap)", probs[innerHead])
	}
	if probs[f.Block("inner.body")] != 0.5 {
		t.Errorf("inner.body mass = %v, want 0.5", probs[f.Block("inner.body")])
	}
	// Through outer.latch the mass re-reaches outer.head only via the back
	// edge, which is skipped.
	if probs[f.Block("outer.head")] != 0 {
		t.Errorf("outer.head mass = %v, want 0", probs[f.Block("outer.head")])
	}
}

func TestReachProbabilitiesFromMidBlock(t *testing.T) {
	m, c := buildDiamond(t)
	f := m.Func("main")
	then, join := f.Block("then"), f.Block("join")
	probs := ReachProbabilities(c, then, UniformEdgeProb)
	if probs[join] != 1 || probs[f.Block("else")] != 0 {
		t.Errorf("probs from then: join=%v else=%v", probs[join], probs[f.Block("else")])
	}
}

func TestUnreachableBlockHandling(t *testing.T) {
	m := ir.NewModule("unreach")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	entry := b.NewBlock("entry")
	dead := b.NewBlock("dead")
	b.SetBlock(entry)
	b.Ret(nil)
	b.SetBlock(dead)
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	c := Analyze(f)
	if c.Reachable(dead) {
		t.Error("dead block should be unreachable")
	}
	if c.Dominates(dead, entry) || c.Dominates(entry, dead) {
		t.Error("dominance with unreachable block should be false")
	}
	if len(c.RPO) != 1 {
		t.Errorf("RPO = %d blocks, want 1", len(c.RPO))
	}
}
