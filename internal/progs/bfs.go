package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "bfs-parboil",
		Suite:      "Parboil",
		Area:       "Graph traversal",
		Input:      "synthetic 64-node CSR graph, out-degree 3, source 0",
		BuildInput: buildBFSParboil,
	})
	register(Program{
		Name:       "bfs-rodinia",
		Suite:      "Rodinia",
		Area:       "Graph traversal",
		Input:      "synthetic 64-node CSR graph, out-degree 4, mask-array sweeps",
		BuildInput: buildBFSRodinia,
	})
}

// csrGraph synthesizes a deterministic CSR graph: every node gets exactly
// `degree` out-edges drawn from the LCG stream.
func csrGraph(nodes, degree int, seed uint64) (rowPtr, edges []uint64) {
	g := newLCG(seed)
	rowPtr = make([]uint64, nodes+1)
	edges = make([]uint64, nodes*degree)
	for v := 0; v < nodes; v++ {
		rowPtr[v] = uint64(v * degree)
		for e := 0; e < degree; e++ {
			// Bias edges forward so BFS discovers several levels.
			tgt := (uint64(v) + 1 + g.next()%uint64(nodes/2)) % uint64(nodes)
			edges[v*degree+e] = tgt
		}
	}
	rowPtr[nodes] = uint64(nodes * degree)
	return rowPtr, edges
}

// buildBFSParboil is the Parboil BFS: a frontier-queue traversal that
// assigns each node its breadth level. The queue is an explicit array with
// head/tail cursors carried through an outer while-style loop.
func buildBFSParboil(variant int) *ir.Module {
	const (
		nodes  = 64
		degree = 3
	)
	rowPtr, edges := csrGraph(nodes, degree, inputSeed(0xBF5, variant))

	m := ir.NewModule("bfs-parboil")
	gRow := m.AddGlobal("rowptr", ir.I64, nodes+1, rowPtr)
	gEdge := m.AddGlobal("edges", ir.I64, nodes*degree, edges)
	gLevel := m.AddGlobal("level", ir.I64, nodes, nil)
	gQueue := m.AddGlobal("queue", ir.I64, nodes*2, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	// level[v] = -1 for all, then level[0] = 0, queue[0] = 0.
	countedLoop(b, "init", iconst(nodes), nil,
		func(b *ir.Builder, v *ir.Instr, _ []*ir.Instr) []ir.Value {
			b.Store(iconst(-1), b.Gep(ir.I64, gLevel, v))
			return nil
		})
	b.Store(iconst(0), b.Gep(ir.I64, gLevel, iconst(0)))
	b.Store(iconst(0), b.Gep(ir.I64, gQueue, iconst(0)))

	// Process the queue: a bounded scan where head chases tail.
	// Accumulator 0: tail (next free slot), starts at 1.
	drain := countedLoop(b, "head", iconst(nodes), []ir.Value{iconst(1)},
		func(b *ir.Builder, head *ir.Instr, accs []*ir.Instr) []ir.Value {
			tail := accs[0]
			// Stop expanding when head has passed tail: emit nothing.
			active := b.ICmp(ir.PredSLT, head, tail)
			newTail := ifThenElse(b, "visit", active,
				func(b *ir.Builder) ir.Value {
					v := b.Load(ir.I64, b.Gep(ir.I64, gQueue, head))
					lv := b.Load(ir.I64, b.Gep(ir.I64, gLevel, v))
					start := b.Load(ir.I64, b.Gep(ir.I64, gRow, v))
					end := b.Load(ir.I64, b.Gep(ir.I64, gRow, b.Add(v, iconst(1))))
					span := b.Sub(end, start)
					inner := countedLoop(b, "edge", span, []ir.Value{tail},
						func(b *ir.Builder, e *ir.Instr, iaccs []*ir.Instr) []ir.Value {
							idx := b.Add(start, e)
							nb := b.Load(ir.I64, b.Gep(ir.I64, gEdge, idx))
							nbLevel := b.Load(ir.I64, b.Gep(ir.I64, gLevel, nb))
							fresh := b.ICmp(ir.PredSLT, nbLevel, iconst(0))
							t2 := ifThenElse(b, "push", fresh,
								func(b *ir.Builder) ir.Value {
									b.Store(b.Add(lv, iconst(1)), b.Gep(ir.I64, gLevel, nb))
									b.Store(nb, b.Gep(ir.I64, gQueue, iaccs[0]))
									return b.Add(iaccs[0], iconst(1))
								},
								func(*ir.Builder) ir.Value { return iaccs[0] })
							return []ir.Value{t2}
						})
					return inner.Accs[0]
				},
				func(*ir.Builder) ir.Value { return tail })
			return []ir.Value{newTail}
		})

	// Output: visited count and the level histogram-ish dump.
	b.Print(drain.Accs[0])
	sum := countedLoop(b, "out", iconst(nodes), []ir.Value{iconst(0)},
		func(b *ir.Builder, v *ir.Instr, accs []*ir.Instr) []ir.Value {
			lv := b.Load(ir.I64, b.Gep(ir.I64, gLevel, v))
			rem := b.SRem(v, iconst(8))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) { b.Print(lv) })
			return []ir.Value{b.Add(accs[0], lv)}
		})
	b.Print(sum.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// buildBFSRodinia is the Rodinia-style BFS: no queue, but repeated sweeps
// over mask arrays (frontier mask, updating mask, visited flags) until no
// node changes — the GPU-friendly formulation, which produces very
// different branch and memory-dependence profiles from the queue version.
func buildBFSRodinia(variant int) *ir.Module {
	const (
		nodes  = 64
		degree = 4
		sweeps = 12 // upper bound on BFS depth
	)
	rowPtr, edges := csrGraph(nodes, degree, inputSeed(0xB0D1, variant))

	m := ir.NewModule("bfs-rodinia")
	gRow := m.AddGlobal("rowptr", ir.I64, nodes+1, rowPtr)
	gEdge := m.AddGlobal("edges", ir.I64, nodes*degree, edges)
	gCost := m.AddGlobal("cost", ir.I64, nodes, nil)
	gMask := m.AddGlobal("mask", ir.I64, nodes, nil)
	gNew := m.AddGlobal("newmask", ir.I64, nodes, nil)
	gVisited := m.AddGlobal("visited", ir.I64, nodes, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	countedLoop(b, "init", iconst(nodes), nil,
		func(b *ir.Builder, v *ir.Instr, _ []*ir.Instr) []ir.Value {
			b.Store(iconst(-1), b.Gep(ir.I64, gCost, v))
			b.Store(iconst(0), b.Gep(ir.I64, gMask, v))
			b.Store(iconst(0), b.Gep(ir.I64, gVisited, v))
			return nil
		})
	b.Store(iconst(0), b.Gep(ir.I64, gCost, iconst(0)))
	b.Store(iconst(1), b.Gep(ir.I64, gMask, iconst(0)))
	b.Store(iconst(1), b.Gep(ir.I64, gVisited, iconst(0)))

	countedLoop(b, "sweep", iconst(sweeps), nil,
		func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
			// Kernel 1: expand the frontier into the updating mask.
			countedLoop(b, "expand", iconst(nodes), nil,
				func(b *ir.Builder, v *ir.Instr, _ []*ir.Instr) []ir.Value {
					mk := b.Load(ir.I64, b.Gep(ir.I64, gMask, v))
					inFrontier := b.ICmp(ir.PredSGT, mk, iconst(0))
					ifThen(b, "front", inFrontier, func(b *ir.Builder) {
						b.Store(iconst(0), b.Gep(ir.I64, gMask, v))
						cost := b.Load(ir.I64, b.Gep(ir.I64, gCost, v))
						start := b.Load(ir.I64, b.Gep(ir.I64, gRow, v))
						end := b.Load(ir.I64, b.Gep(ir.I64, gRow, b.Add(v, iconst(1))))
						span := b.Sub(end, start)
						countedLoop(b, "nbr", span, nil,
							func(b *ir.Builder, e *ir.Instr, _ []*ir.Instr) []ir.Value {
								nb := b.Load(ir.I64, b.Gep(ir.I64, gEdge, b.Add(start, e)))
								seen := b.Load(ir.I64, b.Gep(ir.I64, gVisited, nb))
								fresh := b.ICmp(ir.PredEQ, seen, iconst(0))
								ifThen(b, "mark", fresh, func(b *ir.Builder) {
									b.Store(b.Add(cost, iconst(1)), b.Gep(ir.I64, gCost, nb))
									b.Store(iconst(1), b.Gep(ir.I64, gNew, nb))
								})
								return nil
							})
					})
					return nil
				})
			// Kernel 2: fold the updating mask into the frontier.
			countedLoop(b, "fold", iconst(nodes), nil,
				func(b *ir.Builder, v *ir.Instr, _ []*ir.Instr) []ir.Value {
					nm := b.Load(ir.I64, b.Gep(ir.I64, gNew, v))
					pending := b.ICmp(ir.PredSGT, nm, iconst(0))
					ifThen(b, "commit", pending, func(b *ir.Builder) {
						b.Store(iconst(1), b.Gep(ir.I64, gMask, v))
						b.Store(iconst(1), b.Gep(ir.I64, gVisited, v))
						b.Store(iconst(0), b.Gep(ir.I64, gNew, v))
					})
					return nil
				})
			return nil
		})

	// Output: total cost and sampled per-node costs.
	total := countedLoop(b, "out", iconst(nodes), []ir.Value{iconst(0)},
		func(b *ir.Builder, v *ir.Instr, accs []*ir.Instr) []ir.Value {
			cv := b.Load(ir.I64, b.Gep(ir.I64, gCost, v))
			rem := b.SRem(v, iconst(16))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) { b.Print(cv) })
			return []ir.Value{b.Add(accs[0], cv)}
		})
	b.Print(total.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}
