package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "sad",
		Suite:      "Parboil",
		Area:       "Video encoding",
		Input:      "synthetic 16x16 reference and current frames, 4x4 blocks",
		BuildInput: buildSAD,
	})
}

// buildSAD is the Parboil sum-of-absolute-differences kernel from video
// encoding: for each 4x4 block of the current frame it searches a window
// of the reference frame for the displacement with minimal SAD, writing
// per-block best scores to memory and reporting them. Heavy absolute-
// value branching and a quadruply nested loop structure.
func buildSAD(variant int) *ir.Module {
	const (
		w      = 16
		h      = 16
		blk    = 4
		blocks = (w / blk) * (h / blk)
		window = 3 // displacements 0..window-1 in each axis
	)
	m := ir.NewModule("sad")
	ref := m.AddGlobal("ref", ir.I32, w*h, intData(ir.I32, w*h, inputSeed(0x5AD0, variant), 256))
	cur := m.AddGlobal("cur", ir.I32, w*h, intData(ir.I32, w*h, inputSeed(0x5AD1, variant), 256))
	best := m.AddGlobal("best", ir.I32, blocks, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	// For every block...
	countedLoop(b, "by", iconst(h/blk), nil,
		func(b *ir.Builder, by *ir.Instr, _ []*ir.Instr) []ir.Value {
			countedLoop(b, "bx", iconst(w/blk), nil,
				func(b *ir.Builder, bx *ir.Instr, _ []*ir.Instr) []ir.Value {
					// ...search the displacement window.
					search := countedLoop(b, "dy", iconst(window),
						[]ir.Value{i32const(1 << 29)},
						func(b *ir.Builder, dy *ir.Instr, oaccs []*ir.Instr) []ir.Value {
							inner := countedLoop(b, "dx", iconst(window),
								[]ir.Value{oaccs[0]},
								func(b *ir.Builder, dx *ir.Instr, iaccs []*ir.Instr) []ir.Value {
									sad := blockSAD(b, cur, ref, bx, by, dx, dy, w, blk)
									return []ir.Value{minI64(b, sad, iaccs[0])}
								})
							return []ir.Value{inner.Accs[0]}
						})

					// best[by*(w/blk) + bx] = min SAD.
					idx := b.Add(b.Mul(by, iconst(w/blk)), bx)
					b.Store(search.Accs[0], b.Gep(ir.I32, best, idx))
					return nil
				})
			return nil
		})

	// Report every block's best SAD and their total.
	total := countedLoop(b, "out", iconst(blocks), []ir.Value{i32const(0)},
		func(b *ir.Builder, k *ir.Instr, accs []*ir.Instr) []ir.Value {
			v := b.Load(ir.I32, b.Gep(ir.I32, best, k))
			b.Print(v)
			return []ir.Value{b.Add(accs[0], v)}
		})
	b.Print(total.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// blockSAD emits the 4x4 SAD between the current block at (bx,by) and the
// reference block displaced by (dx,dy), clamped inside the frame.
func blockSAD(b *ir.Builder, cur, ref ir.Value, bx, by, dx, dy *ir.Instr, w, blk int64) ir.Value {
	res := countedLoop(b, "py", iconst(blk), []ir.Value{i32const(0)},
		func(b *ir.Builder, py *ir.Instr, oaccs []*ir.Instr) []ir.Value {
			inner := countedLoop(b, "px", iconst(blk), []ir.Value{oaccs[0]},
				func(b *ir.Builder, px *ir.Instr, iaccs []*ir.Instr) []ir.Value {
					// Current pixel (by*blk+py, bx*blk+px).
					cy := b.Add(b.Mul(by, iconst(blk)), py)
					cx := b.Add(b.Mul(bx, iconst(blk)), px)
					cIdx := b.Add(b.Mul(cy, iconst(w)), cx)
					cv := b.Load(ir.I32, b.Gep(ir.I32, cur, cIdx))

					// Reference pixel displaced and wrapped into frame.
					ry := b.SRem(b.Add(cy, dy), iconst(w))
					rx := b.SRem(b.Add(cx, dx), iconst(w))
					rIdx := b.Add(b.Mul(ry, iconst(w)), rx)
					rv := b.Load(ir.I32, b.Gep(ir.I32, ref, rIdx))

					diff := b.Sub(cv, rv)
					neg := b.ICmp(ir.PredSLT, diff, i32const(0))
					flipped := b.Sub(i32const(0), diff)
					ad := b.Select(neg, flipped, diff)
					return []ir.Value{b.Add(iaccs[0], ad)}
				})
			return []ir.Value{inner.Accs[0]}
		})
	return res.Accs[0]
}
