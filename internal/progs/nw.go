package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "nw",
		Suite:      "Rodinia",
		Area:       "DNA sequence optimization",
		Input:      "two synthetic sequences of length 32, penalty 2",
		BuildInput: buildNW,
	})
}

// buildNW is Needleman-Wunsch global sequence alignment: the classic
// quadratic dynamic program over a score matrix with a gap penalty. The
// whole matrix lives in memory and every cell depends on three earlier
// cells, producing long store→load chains across iterations.
func buildNW(variant int) *ir.Module {
	const (
		n       = 32 // sequence length
		dim     = n + 1
		penalty = 2
	)
	m := ir.NewModule("nw")
	seqA := m.AddGlobal("seqA", ir.I32, n, intData(ir.I32, n, inputSeed(0xA11CE, variant), 4))
	seqB := m.AddGlobal("seqB", ir.I32, n, intData(ir.I32, n, inputSeed(0xB0B, variant), 4))
	score := m.AddGlobal("score", ir.I32, dim*dim, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	// Boundary rows: score[0][j] = -penalty*j, score[i][0] = -penalty*i.
	countedLoop(b, "btop", iconst(dim), nil,
		func(b *ir.Builder, j *ir.Instr, _ []*ir.Instr) []ir.Value {
			v := b.Mul(j, iconst(-penalty))
			v32 := b.Trunc(v, ir.I32)
			b.Store(v32, b.Gep(ir.I32, score, j))
			return nil
		})
	countedLoop(b, "bleft", iconst(dim), nil,
		func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
			v := b.Mul(i, iconst(-penalty))
			v32 := b.Trunc(v, ir.I32)
			idx := b.Mul(i, iconst(dim))
			b.Store(v32, b.Gep(ir.I32, score, idx))
			return nil
		})

	// Fill: score[i][j] = max(diag + match, up - p, left - p).
	countedLoop(b, "rows", iconst(n), nil,
		func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
			countedLoop(b, "cols", iconst(n), nil,
				func(b *ir.Builder, j *ir.Instr, _ []*ir.Instr) []ir.Value {
					ai := b.Load(ir.I32, b.Gep(ir.I32, seqA, i))
					bj := b.Load(ir.I32, b.Gep(ir.I32, seqB, j))
					same := b.ICmp(ir.PredEQ, ai, bj)
					// Match bonus +3, mismatch -1.
					bonus := b.Select(same, i32const(3), i32const(-1))

					i1 := b.Add(i, iconst(1))
					j1 := b.Add(j, iconst(1))
					rowUp := b.Mul(i, iconst(dim))
					rowCur := b.Mul(i1, iconst(dim))

					diag := b.Load(ir.I32, b.Gep(ir.I32, score, b.Add(rowUp, j)))
					up := b.Load(ir.I32, b.Gep(ir.I32, score, b.Add(rowUp, j1)))
					left := b.Load(ir.I32, b.Gep(ir.I32, score, b.Add(rowCur, j)))

					dv := b.Add(diag, bonus)
					uv := b.Sub(up, i32const(penalty))
					lv := b.Sub(left, i32const(penalty))
					best := maxI64(b, dv, maxI64(b, uv, lv))
					b.Store(best, b.Gep(ir.I32, score, b.Add(rowCur, j1)))
					return nil
				})
			return nil
		})

	// Output: the alignment score plus the last row, like the Rodinia
	// result dump.
	final := b.Load(ir.I32, b.Gep(ir.I32, score, iconst(dim*dim-1)))
	b.Print(final)
	countedLoop(b, "dump", iconst(8), nil,
		func(b *ir.Builder, k *ir.Instr, _ []*ir.Instr) []ir.Value {
			idx := b.Add(iconst(n*dim), b.Mul(k, iconst(4)))
			b.Print(b.Load(ir.I32, b.Gep(ir.I32, score, idx)))
			return nil
		})
	b.Ret(nil)
	return mustBuild(m)
}
