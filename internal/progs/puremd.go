package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "puremd",
		Suite:      "Purdue University",
		Area:       "Reactive molecular dynamics simulation",
		Input:      "20 particles on a line, cutoff pair interactions, 6 steps",
		BuildInput: buildPuReMD,
	})
}

// buildPuReMD reproduces the propagation structure of the PuReMD reactive
// molecular dynamics code at kernel scale: an O(N²) neighbor sweep with a
// distance cutoff (the reactive "bond" criterion), a pairwise
// Lennard-Jones-like force with charge coupling, and velocity-Verlet
// integration. The cutoff branch makes force computation control-flow
// heavy, which is what distinguishes MD codes in the paper's benchmark
// set.
func buildPuReMD(variant int) *ir.Module {
	const (
		n     = 20
		steps = 6
	)
	m := ir.NewModule("puremd")
	posG := m.AddGlobal("pos", ir.F64, n, floatData(ir.F64, n, inputSeed(0x4D0, variant), 0, 10))
	velG := m.AddGlobal("vel", ir.F64, n, floatData(ir.F64, n, inputSeed(0x4D1, variant), -0.05, 0.05))
	chg := m.AddGlobal("charge", ir.F64, n, floatData(ir.F64, n, inputSeed(0x4D2, variant), -1, 1))
	forceG := m.AddGlobal("force", ir.F64, n, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	dt := fconst(0.01)
	cutoff := fconst(2.5)

	countedLoop(b, "time", iconst(steps), nil,
		func(b *ir.Builder, t *ir.Instr, _ []*ir.Instr) []ir.Value {
			// Zero forces.
			countedLoop(b, "zero", iconst(n), nil,
				func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
					b.Store(fconst(0), b.Gep(ir.F64, forceG, i))
					return nil
				})

			// Pairwise forces under cutoff.
			countedLoop(b, "fi", iconst(n), nil,
				func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
					xi := b.Load(ir.F64, b.Gep(ir.F64, posG, i))
					qi := b.Load(ir.F64, b.Gep(ir.F64, chg, i))
					countedLoop(b, "fj", iconst(n), nil,
						func(b *ir.Builder, j *ir.Instr, _ []*ir.Instr) []ir.Value {
							same := b.ICmp(ir.PredEQ, i, j)
							ifThen(b, "pair", b.Xor(same, ir.ConstBool(true)), func(b *ir.Builder) {
								xj := b.Load(ir.F64, b.Gep(ir.F64, posG, j))
								dxRaw := b.FSub(xi, xj)
								dx := b.Intrinsic(ir.IntrinsicFabs, dxRaw)
								within := b.FCmp(ir.PredOLT, dx, cutoff)
								ifThen(b, "bond", within, func(b *ir.Builder) {
									// r2 with a softening floor.
									r2 := b.FAdd(b.FMul(dxRaw, dxRaw), fconst(0.05))
									inv2 := b.FDiv(fconst(1), r2)
									inv6 := b.FMul(b.FMul(inv2, inv2), inv2)
									// LJ-ish repulsion/attraction + charge term.
									qj := b.Load(ir.F64, b.Gep(ir.F64, chg, j))
									coul := b.FMul(b.FMul(qi, qj), inv2)
									lj := b.FMul(inv6, b.FSub(inv6, fconst(1)))
									mag := b.FAdd(b.FMul(fconst(0.01), lj), b.FMul(fconst(0.05), coul))
									// Direction from the sign of dxRaw.
									posDir := b.FCmp(ir.PredOGT, dxRaw, fconst(0))
									signed := b.Select(posDir, mag, b.FSub(fconst(0), mag))
									f0 := b.Load(ir.F64, b.Gep(ir.F64, forceG, i))
									b.Store(b.FAdd(f0, signed), b.Gep(ir.F64, forceG, i))
								})
							})
							return nil
						})
					return nil
				})

			// Velocity-Verlet style kick and drift with clamped velocity.
			countedLoop(b, "move", iconst(n), nil,
				func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
					fv := b.Load(ir.F64, b.Gep(ir.F64, forceG, i))
					v0 := b.Load(ir.F64, b.Gep(ir.F64, velG, i))
					v1 := b.FAdd(v0, b.FMul(fv, dt))
					vmax := fconst(0.5)
					vmin := fconst(-0.5)
					v1 = b.Intrinsic(ir.IntrinsicFmin, v1, vmax)
					v1 = b.Intrinsic(ir.IntrinsicFmax, v1, vmin)
					b.Store(v1, b.Gep(ir.F64, velG, i))
					x := b.Load(ir.F64, b.Gep(ir.F64, posG, i))
					b.Store(b.FAdd(x, b.FMul(v1, dt)), b.Gep(ir.F64, posG, i))
					return nil
				})
			return nil
		})

	// Output: kinetic energy and sampled positions.
	ke := countedLoop(b, "out", iconst(n), []ir.Value{fconst(0)},
		func(b *ir.Builder, i *ir.Instr, accs []*ir.Instr) []ir.Value {
			rem := b.SRem(i, iconst(4))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) {
				b.Print(b.Load(ir.F64, b.Gep(ir.F64, posG, i)))
			})
			v := b.Load(ir.F64, b.Gep(ir.F64, velG, i))
			return []ir.Value{b.FAdd(accs[0], b.FMul(v, v))}
		})
	b.Print(ke.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}
