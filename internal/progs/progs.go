// Package progs provides the 11 benchmark programs of the paper's
// evaluation (Table I), reimplemented as IR kernels. Each preserves the
// algorithmic core — and therefore the error-propagation structure — of
// its namesake: the loop nesting, the data-dependent branches, the
// store/load dependence between phases, and the output types. Inputs are
// deterministic synthetic equivalents of the paper's inputs, sized so a
// full fault-injection campaign completes in seconds. DESIGN.md §2
// records each substitution; Extended() adds the narrow-output kernels
// the bit-liveness pruning pass targets (DESIGN.md §5i, ANALYSIS.md).
package progs

import (
	"fmt"
	"sort"

	"trident/internal/ir"
)

// Program is one benchmark: metadata matching Table I plus a builder.
type Program struct {
	// Name is the benchmark name (lowercase, unique).
	Name string
	// Suite is the originating suite or author, per Table I.
	Suite string
	// Area is the application domain, per Table I.
	Area string
	// Input describes the synthetic input standing in for the paper's.
	Input string
	// Build constructs a fresh verified module with the default input.
	Build func() *ir.Module
	// BuildInput constructs the module with an alternative synthetic
	// input (variant 0 equals Build) — the paper's stated future work is
	// input-dependent error propagation, and programs here regenerate
	// their input data from a variant-mixed seed.
	BuildInput func(variant int) *ir.Module
}

// registry holds all programs by name.
var registry = map[string]Program{}

func register(p Program) {
	if _, dup := registry[p.Name]; dup {
		panic("progs: duplicate program " + p.Name)
	}
	if p.Build == nil && p.BuildInput != nil {
		build := p.BuildInput
		p.Build = func() *ir.Module { return build(0) }
	}
	registry[p.Name] = p
}

// inputSeed mixes an input variant into a base data seed.
func inputSeed(base uint64, variant int) uint64 {
	return base + uint64(variant)*0x9E3779B97F4A7C15
}

// All returns every benchmark in stable (paper Table I) order.
func All() []Program {
	order := []string{
		"libquantum", "blackscholes", "sad", "bfs-parboil", "hercules",
		"lulesh", "puremd", "nw", "pathfinder", "hotspot", "bfs-rodinia",
	}
	out := make([]Program, 0, len(order))
	for _, name := range order {
		p, ok := registry[name]
		if !ok {
			panic("progs: missing program " + name)
		}
		out = append(out, p)
	}
	return out
}

// Extended returns every benchmark: the Table I set in paper order
// followed by the narrow-output integer micro-kernels (narrow.go) added
// for the bit-liveness pruning work. Campaign tooling that wants the
// full workload space (pruning tables, fibench) iterates this; paper
// reproduction figures stick to All().
func Extended() []Program {
	out := All()
	for _, name := range []string{"rgb2gray", "nibblepack", "boxblur"} {
		p, ok := registry[name]
		if !ok {
			panic("progs: missing program " + name)
		}
		out = append(out, p)
	}
	return out
}

// Names returns the registered program names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the program with the given name.
func ByName(name string) (Program, error) {
	p, ok := registry[name]
	if !ok {
		return Program{}, fmt.Errorf("progs: unknown program %q (have %v)", name, Names())
	}
	return p, nil
}

// mustBuild verifies and renumbers a finished module; builders call it
// last. Construction errors are programming bugs, so it panics.
func mustBuild(m *ir.Module) *ir.Module {
	for _, f := range m.Funcs {
		f.Renumber()
	}
	if err := ir.Verify(m); err != nil {
		panic(fmt.Sprintf("progs: %s: %v", m.Name, err))
	}
	return m
}
