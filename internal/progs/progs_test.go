package progs

import (
	"context"
	"strings"
	"testing"

	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/profile"
)

func TestRegistryComplete(t *testing.T) {
	if n := len(All()); n != 11 {
		t.Fatalf("got %d programs, want 11 (paper Table I)", n)
	}
	ext := Extended()
	if len(ext) != 14 {
		t.Fatalf("got %d extended programs, want 11 + 3 narrow-output kernels", len(ext))
	}
	seen := make(map[string]bool)
	for _, p := range ext {
		if p.Name == "" || p.Suite == "" || p.Area == "" || p.Input == "" {
			t.Errorf("%q has incomplete metadata: %+v", p.Name, p)
		}
		if p.Build == nil {
			t.Errorf("%q has no builder", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("pathfinder"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
	if len(Names()) != 14 {
		t.Errorf("Names() = %d entries", len(Names()))
	}
}

func TestAllProgramsBuildVerifyAndRun(t *testing.T) {
	for _, p := range Extended() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			if err := ir.Verify(m); err != nil {
				t.Fatalf("verify: %v", err)
			}
			res, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Outcome != interp.OutcomeOK {
				t.Fatalf("outcome %s (%v)", res.Outcome, res.Trap)
			}
			if res.OutputLines == 0 {
				t.Error("program produced no output; SDCs would be undetectable")
			}
			if res.DynInstrs < 1000 {
				t.Errorf("only %d dynamic instructions; too small to be meaningful", res.DynInstrs)
			}
			if res.DynInstrs > 5_000_000 {
				t.Errorf("%d dynamic instructions; too slow for FI campaigns", res.DynInstrs)
			}
			t.Logf("%s: %d static, %d dynamic instrs, %d output lines",
				p.Name, m.NumInstrs(), res.DynInstrs, res.OutputLines)
		})
	}
}

func TestProgramsAreDeterministic(t *testing.T) {
	for _, p := range Extended() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			r1, err := interp.Run(p.Build(), interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(p.Build(), interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Output != r2.Output || r1.DynInstrs != r2.DynInstrs {
				t.Error("two builds produced different executions")
			}
		})
	}
}

func TestProgramsRoundTripThroughTextFormat(t *testing.T) {
	for _, p := range Extended() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			text := ir.Print(m)
			m2, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			r1, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(m2, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Output != r2.Output {
				t.Error("round-tripped module behaves differently")
			}
		})
	}
}

func TestProgramsAreProfilable(t *testing.T) {
	for _, p := range Extended() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			prof, err := profile.Collect(m, profile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if prof.NumStaticMemEdges() == 0 {
				t.Error("no memory-dependence edges; fm would be vacuous")
			}
			if len(prof.BranchTaken) == 0 {
				t.Error("no conditional branches profiled; fc would be vacuous")
			}
		})
	}
}

func TestProgramsAreInjectable(t *testing.T) {
	for _, p := range Extended() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			inj, err := fault.New(m, fault.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			res, err := inj.CampaignRandom(context.Background(), 30)
			if err != nil {
				t.Fatal(err)
			}
			if res.N() != 30 {
				t.Fatalf("campaign ran %d trials", res.N())
			}
		})
	}
}

func TestHotspotUsesReducedPrecisionOutput(t *testing.T) {
	p, err := ByName("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(p.Build())
	if !strings.Contains(text, "print g2 ") {
		t.Error("hotspot must print with reduced precision (paper §IV-E)")
	}
}

func TestTableOneDiversity(t *testing.T) {
	// The benchmark set must mix integer-dominant and float-dominant
	// programs, as Table I's domains imply.
	floatProgs := 0
	for _, p := range All() {
		m := p.Build()
		hasFloat := false
		m.Instrs(func(in *ir.Instr) {
			if in.Type.IsFloat() {
				hasFloat = true
			}
		})
		if hasFloat {
			floatProgs++
		}
	}
	if floatProgs < 4 || floatProgs > 9 {
		t.Errorf("%d of 11 programs use floats; want a mix", floatProgs)
	}
}
