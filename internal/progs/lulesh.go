package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "lulesh",
		Suite:      "Lawrence Livermore National Laboratory",
		Area:       "Hydrodynamics modeling",
		Input:      "1D Lagrangian shock tube, 24 elements, 10 timesteps",
		BuildInput: buildLulesh,
	})
}

// buildLulesh reproduces the structure of the LULESH hydrodynamics proxy
// app at kernel scale: a Lagrangian mesh of elements carrying energy and
// pressure between nodes carrying position and velocity, advanced by an
// explicit time integrator — force gather, node kick, node drift, element
// volume/energy update, equation-of-state closure. A hot left boundary
// drives a shock into the tube.
func buildLulesh(variant int) *ir.Module {
	const (
		elems = 24
		nodes = elems + 1
		steps = 10
	)
	m := ir.NewModule("lulesh")
	pos := m.AddGlobal("pos", ir.F64, nodes, nodePositions(nodes))
	velG := m.AddGlobal("vel", ir.F64, nodes, nil)
	energy := m.AddGlobal("energy", ir.F64, elems, initialEnergy(elems, variant))
	press := m.AddGlobal("press", ir.F64, elems, nil)
	volRef := m.AddGlobal("volref", ir.F64, elems, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	dt := fconst(0.01)
	gamma := fconst(1.4)

	// Reference volumes from initial node spacing.
	countedLoop(b, "refvol", iconst(elems), nil,
		func(b *ir.Builder, e *ir.Instr, _ []*ir.Instr) []ir.Value {
			x0 := b.Load(ir.F64, b.Gep(ir.F64, pos, e))
			x1 := b.Load(ir.F64, b.Gep(ir.F64, pos, b.Add(e, iconst(1))))
			b.Store(b.FSub(x1, x0), b.Gep(ir.F64, volRef, e))
			return nil
		})

	countedLoop(b, "time", iconst(steps), nil,
		func(b *ir.Builder, t *ir.Instr, _ []*ir.Instr) []ir.Value {
			// EOS closure p = (gamma-1)·e/v plus the artificial viscosity q
			// that real LULESH adds on compression to keep shocks stable:
			// q = c_q·du² when the element is compressing (du < 0).
			countedLoop(b, "eos", iconst(elems), nil,
				func(b *ir.Builder, e *ir.Instr, _ []*ir.Instr) []ir.Value {
					x0 := b.Load(ir.F64, b.Gep(ir.F64, pos, e))
					x1 := b.Load(ir.F64, b.Gep(ir.F64, pos, b.Add(e, iconst(1))))
					vol := b.FSub(x1, x0)
					en := b.Load(ir.F64, b.Gep(ir.F64, energy, e))
					p := b.FDiv(b.FMul(b.FSub(gamma, fconst(1)), en), vol)
					// Pressure floor: shocks must not pull nodes apart.
					floor := b.FCmp(ir.PredOLT, p, fconst(0))
					clamped := b.Select(floor, fconst(0), p)

					v0 := b.Load(ir.F64, b.Gep(ir.F64, velG, e))
					v1 := b.Load(ir.F64, b.Gep(ir.F64, velG, b.Add(e, iconst(1))))
					du := b.FSub(v1, v0)
					compressing := b.FCmp(ir.PredOLT, du, fconst(0))
					q := ifThenElse(b, "visc", compressing,
						func(b *ir.Builder) ir.Value {
							return b.FMul(fconst(2.0), b.FMul(du, du))
						},
						func(*ir.Builder) ir.Value { return fconst(0) })
					b.Store(b.FAdd(clamped, q), b.Gep(ir.F64, press, e))
					return nil
				})

			// Node kick from the pressure gradient (interior nodes only).
			countedLoop(b, "kick", iconst(nodes-2), nil,
				func(b *ir.Builder, k *ir.Instr, _ []*ir.Instr) []ir.Value {
					nIdx := b.Add(k, iconst(1))
					pl := b.Load(ir.F64, b.Gep(ir.F64, press, k))
					pr := b.Load(ir.F64, b.Gep(ir.F64, press, nIdx))
					force := b.FSub(pl, pr)
					v0 := b.Load(ir.F64, b.Gep(ir.F64, velG, nIdx))
					b.Store(b.FAdd(v0, b.FMul(force, dt)), b.Gep(ir.F64, velG, nIdx))
					return nil
				})

			// Node drift.
			countedLoop(b, "drift", iconst(nodes), nil,
				func(b *ir.Builder, nd *ir.Instr, _ []*ir.Instr) []ir.Value {
					v := b.Load(ir.F64, b.Gep(ir.F64, velG, nd))
					x := b.Load(ir.F64, b.Gep(ir.F64, pos, nd))
					b.Store(b.FAdd(x, b.FMul(v, dt)), b.Gep(ir.F64, pos, nd))
					return nil
				})

			// Element energy update: de = -p * dv.
			countedLoop(b, "work", iconst(elems), nil,
				func(b *ir.Builder, e *ir.Instr, _ []*ir.Instr) []ir.Value {
					x0 := b.Load(ir.F64, b.Gep(ir.F64, pos, e))
					x1 := b.Load(ir.F64, b.Gep(ir.F64, pos, b.Add(e, iconst(1))))
					vol := b.FSub(x1, x0)
					ref := b.Load(ir.F64, b.Gep(ir.F64, volRef, e))
					dv := b.FSub(vol, ref)
					b.Store(vol, b.Gep(ir.F64, volRef, e))
					p := b.Load(ir.F64, b.Gep(ir.F64, press, e))
					en := b.Load(ir.F64, b.Gep(ir.F64, energy, e))
					newE := b.FSub(en, b.FMul(p, dv))
					b.Store(newE, b.Gep(ir.F64, energy, e))
					return nil
				})
			return nil
		})

	// Output: total energy, origin energy (LULESH's headline check), and
	// sampled element energies.
	total := countedLoop(b, "out", iconst(elems), []ir.Value{fconst(0)},
		func(b *ir.Builder, e *ir.Instr, accs []*ir.Instr) []ir.Value {
			en := b.Load(ir.F64, b.Gep(ir.F64, energy, e))
			rem := b.SRem(e, iconst(6))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) { b.Print(en) })
			return []ir.Value{b.FAdd(accs[0], en)}
		})
	b.Print(total.Accs[0])
	origin := b.Load(ir.F64, b.Gep(ir.F64, energy, iconst(0)))
	b.Print(origin)
	b.Ret(nil)
	return mustBuild(m)
}

// nodePositions lays the mesh nodes out uniformly on [0, 1].
func nodePositions(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = ir.FloatToBits(ir.F64, float64(i)/float64(n-1))
	}
	return out
}

// initialEnergy deposits the shock energy in the leftmost element, like
// LULESH's Sedov initialization deposits energy at the origin; the input
// variant scales the deposited energy.
func initialEnergy(elems, variant int) []uint64 {
	out := make([]uint64, elems)
	out[0] = ir.FloatToBits(ir.F64, 3.0+0.5*float64(variant))
	for i := 1; i < elems; i++ {
		out[i] = ir.FloatToBits(ir.F64, 0.01)
	}
	return out
}
