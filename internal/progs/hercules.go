package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "hercules",
		Suite:      "Carnegie Mellon University",
		Area:       "Earthquake simulation",
		Input:      "1D ground column of 48 elements, 16 timesteps, point source",
		BuildInput: buildHercules,
	})
}

// buildHercules models the core of the Hercules octree earthquake
// simulator: explicit time integration of the seismic wave equation over
// a discretized medium. The reproduction is a 1D column with
// heterogeneous material stiffness, a Ricker-like source injected at one
// node, and leapfrog displacement/velocity updates — the same
// stencil-over-timesteps propagation structure at small scale.
func buildHercules(variant int) *ir.Module {
	const (
		n     = 48
		steps = 16
	)
	m := ir.NewModule("hercules")
	disp := m.AddGlobal("disp", ir.F64, n, nil)
	vel := m.AddGlobal("vel", ir.F64, n, nil)
	stiff := m.AddGlobal("stiff", ir.F64, n, floatData(ir.F64, n, inputSeed(0xE9, variant), 0.4, 1.2))
	src := m.AddGlobal("source", ir.F64, steps, rickerPulse(steps))

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	dt := fconst(0.05)

	countedLoop(b, "time", iconst(steps), nil,
		func(b *ir.Builder, t *ir.Instr, _ []*ir.Instr) []ir.Value {
			// Inject the source at the column's center.
			sv := b.Load(ir.F64, b.Gep(ir.F64, src, t))
			center := iconst(n / 2)
			old := b.Load(ir.F64, b.Gep(ir.F64, vel, center))
			b.Store(b.FAdd(old, sv), b.Gep(ir.F64, vel, center))

			// Velocity update from the displacement Laplacian, scaled by
			// local stiffness.
			countedLoop(b, "vel", iconst(n), nil,
				func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
					im := maxI64(b, b.Sub(i, iconst(1)), iconst(0))
					ip := minI64(b, b.Add(i, iconst(1)), iconst(n-1))
					um := b.Load(ir.F64, b.Gep(ir.F64, disp, im))
					uc := b.Load(ir.F64, b.Gep(ir.F64, disp, i))
					up := b.Load(ir.F64, b.Gep(ir.F64, disp, ip))
					lap := b.FSub(b.FAdd(um, up), b.FMul(fconst(2), uc))
					k := b.Load(ir.F64, b.Gep(ir.F64, stiff, i))
					dv := b.FMul(b.FMul(k, lap), dt)
					v0 := b.Load(ir.F64, b.Gep(ir.F64, vel, i))
					// Light damping keeps the synthetic medium stable.
					damped := b.FMul(b.FAdd(v0, dv), fconst(0.995))
					b.Store(damped, b.Gep(ir.F64, vel, i))
					return nil
				})

			// Displacement update.
			countedLoop(b, "disp", iconst(n), nil,
				func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
					v := b.Load(ir.F64, b.Gep(ir.F64, vel, i))
					u := b.Load(ir.F64, b.Gep(ir.F64, disp, i))
					b.Store(b.FAdd(u, b.FMul(v, dt)), b.Gep(ir.F64, disp, i))
					return nil
				})
			return nil
		})

	// Output: sampled seismogram (displacements along the column) and the
	// total kinetic energy.
	energy := countedLoop(b, "out", iconst(n), []ir.Value{fconst(0)},
		func(b *ir.Builder, i *ir.Instr, accs []*ir.Instr) []ir.Value {
			u := b.Load(ir.F64, b.Gep(ir.F64, disp, i))
			rem := b.SRem(i, iconst(8))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) { b.Print(u) })
			v := b.Load(ir.F64, b.Gep(ir.F64, vel, i))
			return []ir.Value{b.FAdd(accs[0], b.FMul(v, v))}
		})
	b.Print(energy.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// rickerPulse synthesizes a short Ricker-like source wavelet.
func rickerPulse(n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		t := float64(i-4) / 2
		v := (1 - t*t) * expApprox(-t*t/2)
		out[i] = ir.FloatToBits(ir.F64, v)
	}
	return out
}

// expApprox is a small deterministic exp used only for input synthesis.
func expApprox(x float64) float64 {
	// exp(x) via 16 squarings of (1 + x/65536).
	v := 1 + x/65536
	for i := 0; i < 16; i++ {
		v *= v
	}
	return v
}
