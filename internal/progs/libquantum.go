package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "libquantum",
		Suite:      "SPEC",
		Area:       "Quantum computing",
		Input:      "5-qubit register, Hadamard sweep + controlled phase + measure",
		BuildInput: buildLibquantum,
	})
}

// buildLibquantum reproduces the libquantum simulation core: a quantum
// register as an amplitude vector over 2^q basis states, butterfly-style
// Hadamard gate application (the structure of quantum_hadamard), a
// controlled phase rotation (sigma-z flavored, kept real-valued), and a
// measurement pass accumulating probabilities — integer bit manipulation
// for basis-state indexing plus float amplitude arithmetic, libquantum's
// signature mix.
func buildLibquantum(variant int) *ir.Module {
	const (
		qubits = 5
		states = 1 << qubits
	)
	m := ir.NewModule("libquantum")
	amp := m.AddGlobal("amp", ir.F64, states, initialAmplitude(states, variant))
	scratch := m.AddGlobal("scratch", ir.F64, states, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	invSqrt2 := fconst(0.7071067811865476)

	// Hadamard sweep: for every target qubit, butterfly the amplitude
	// pairs that differ in that bit.
	countedLoop(b, "gate", iconst(qubits), nil,
		func(b *ir.Builder, q *ir.Instr, _ []*ir.Instr) []ir.Value {
			mask := b.Shl(iconst(1), q)
			countedLoop(b, "bfly", iconst(states), nil,
				func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
					bit := b.And(s, mask)
					isLow := b.ICmp(ir.PredEQ, bit, iconst(0))
					ifThen(b, "pair", isLow, func(b *ir.Builder) {
						hi := b.Or(s, mask)
						a0 := b.Load(ir.F64, b.Gep(ir.F64, amp, s))
						a1 := b.Load(ir.F64, b.Gep(ir.F64, amp, hi))
						sumA := b.FMul(invSqrt2, b.FAdd(a0, a1))
						difA := b.FMul(invSqrt2, b.FSub(a0, a1))
						b.Store(sumA, b.Gep(ir.F64, scratch, s))
						b.Store(difA, b.Gep(ir.F64, scratch, hi))
					})
					return nil
				})
			countedLoop(b, "commit", iconst(states), nil,
				func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
					v := b.Load(ir.F64, b.Gep(ir.F64, scratch, s))
					b.Store(v, b.Gep(ir.F64, amp, s))
					return nil
				})
			return nil
		})

	// Controlled phase: flip the sign of amplitudes whose top two qubits
	// are both set (real-valued stand-in for the controlled rotation in
	// Shor's modular exponentiation).
	countedLoop(b, "phase", iconst(states), nil,
		func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
			top := b.And(s, iconst(0b11000))
			both := b.ICmp(ir.PredEQ, top, iconst(0b11000))
			ifThen(b, "flip", both, func(b *ir.Builder) {
				a := b.Load(ir.F64, b.Gep(ir.F64, amp, s))
				b.Store(b.FSub(fconst(0), a), b.Gep(ir.F64, amp, s))
			})
			return nil
		})

	// Measurement: per-qubit probability of reading 1, plus total norm.
	countedLoop(b, "measure", iconst(qubits), nil,
		func(b *ir.Builder, q *ir.Instr, _ []*ir.Instr) []ir.Value {
			mask := b.Shl(iconst(1), q)
			prob := countedLoop(b, "acc", iconst(states), []ir.Value{fconst(0)},
				func(b *ir.Builder, s *ir.Instr, accs []*ir.Instr) []ir.Value {
					bit := b.And(s, mask)
					set := b.ICmp(ir.PredNE, bit, iconst(0))
					a := b.Load(ir.F64, b.Gep(ir.F64, amp, s))
					sq := b.FMul(a, a)
					contrib := b.Select(set, sq, fconst(0))
					return []ir.Value{b.FAdd(accs[0], contrib)}
				})
			b.Print(prob.Accs[0])
			return nil
		})

	norm := countedLoop(b, "norm", iconst(states), []ir.Value{fconst(0)},
		func(b *ir.Builder, s *ir.Instr, accs []*ir.Instr) []ir.Value {
			a := b.Load(ir.F64, b.Gep(ir.F64, amp, s))
			return []ir.Value{b.FAdd(accs[0], b.FMul(a, a))}
		})
	b.Print(norm.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// initialAmplitude prepares a localized two-state superposition; the
// input variant moves the occupied basis states.
func initialAmplitude(states, variant int) []uint64 {
	out := make([]uint64, states)
	out[(1+3*variant)%states] = ir.FloatToBits(ir.F64, 0.8)
	out[(6+5*variant)%states] = ir.FloatToBits(ir.F64, 0.6)
	return out
}
