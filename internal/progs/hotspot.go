package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "hotspot",
		Suite:      "Rodinia",
		Area:       "Temperature and power simulation",
		Input:      "8x8 synthetic temperature/power grids, 6 iterations",
		BuildInput: buildHotspot,
	})
}

// buildHotspot is the Rodinia thermal simulation: an iterative 2D stencil
// updating a temperature grid from neighbor temperatures and a static
// power map. The paper singles this benchmark out for its Float data
// printed through "%g" with reduced precision (§IV-E), so the temperature
// state is f32 and the dump uses the reduced-precision output format.
func buildHotspot(variant int) *ir.Module {
	const (
		dim   = 8
		steps = 6
	)
	m := ir.NewModule("hotspot")
	// The input variant shifts the temperature range far enough to show
	// through the two-significant-digit output.
	baseTemp := 320 + 30*float64(variant)
	temp := m.AddGlobal("temp", ir.F32, dim*dim,
		floatData(ir.F32, dim*dim, inputSeed(0x407, variant), baseTemp, baseTemp+20))
	power := m.AddGlobal("power", ir.F32, dim*dim, floatData(ir.F32, dim*dim, inputSeed(0x70E, variant), 0, 0.5))
	next := m.AddGlobal("next", ir.F32, dim*dim, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	// Anisotropic conductances, as in the real kernel's Rx/Ry distinction.
	cX := ir.ConstFloat(ir.F32, 0.12) // horizontal coupling
	cY := ir.ConstFloat(ir.F32, 0.08) // vertical coupling
	cP := ir.ConstFloat(ir.F32, 0.8)  // power coupling
	cA := ir.ConstFloat(ir.F32, 80.0) // ambient sink
	amb := ir.ConstFloat(ir.F32, 0.0015)

	countedLoop(b, "step", iconst(steps), nil,
		func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
			countedLoop(b, "row", iconst(dim), nil,
				func(b *ir.Builder, y *ir.Instr, _ []*ir.Instr) []ir.Value {
					countedLoop(b, "col", iconst(dim), nil,
						func(b *ir.Builder, x *ir.Instr, _ []*ir.Instr) []ir.Value {
							idx := b.Add(b.Mul(y, iconst(dim)), x)
							tc := b.Load(ir.F32, b.Gep(ir.F32, temp, idx))

							// Clamped neighbors.
							load := func(ny, nx ir.Value) ir.Value {
								nidx := b.Add(b.Mul(ny, iconst(dim)), nx)
								return b.Load(ir.F32, b.Gep(ir.F32, temp, nidx))
							}
							ym := maxI64(b, b.Sub(y, iconst(1)), iconst(0))
							yp := minI64(b, b.Add(y, iconst(1)), iconst(dim-1))
							xm := maxI64(b, b.Sub(x, iconst(1)), iconst(0))
							xp := minI64(b, b.Add(x, iconst(1)), iconst(dim-1))
							up := load(ym, x)
							down := load(yp, x)
							left := load(y, xm)
							right := load(y, xp)

							// dT = cY*(up+down-2tc) + cX*(left+right-2tc)
							//    + cP*power - amb*(tc - cA)
							two := ir.ConstFloat(ir.F32, 2)
							lapY := b.FSub(b.FAdd(up, down), b.FMul(two, tc))
							lapX := b.FSub(b.FAdd(left, right), b.FMul(two, tc))
							pw := b.Load(ir.F32, b.Gep(ir.F32, power, idx))
							diffuse := b.FAdd(b.FMul(cY, lapY), b.FMul(cX, lapX))
							dT := b.FAdd(diffuse, b.FMul(cP, pw))
							sink := b.FMul(amb, b.FSub(tc, cA))
							newT := b.FAdd(tc, b.FSub(dT, sink))
							b.Store(newT, b.Gep(ir.F32, next, idx))
							return nil
						})
					return nil
				})
			// Commit the step.
			countedLoop(b, "commit", iconst(dim*dim), nil,
				func(b *ir.Builder, k *ir.Instr, _ []*ir.Instr) []ir.Value {
					v := b.Load(ir.F32, b.Gep(ir.F32, next, k))
					b.Store(v, b.Gep(ir.F32, temp, k))
					return nil
				})
			return nil
		})

	// Reduced-precision dump ("%g"-style), plus the peak temperature.
	peak := countedLoop(b, "out", iconst(dim*dim), []ir.Value{ir.ConstFloat(ir.F32, 0)},
		func(b *ir.Builder, k *ir.Instr, accs []*ir.Instr) []ir.Value {
			v := b.Load(ir.F32, b.Gep(ir.F32, temp, k))
			rem := b.SRem(k, iconst(9))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) {
				b.PrintFmt(v, ir.FormatG2)
			})
			hotter := b.FCmp(ir.PredOGT, v, accs[0])
			return []ir.Value{b.Select(hotter, v, accs[0])}
		})
	b.PrintFmt(peak.Accs[0], ir.FormatG2)
	b.Ret(nil)
	return mustBuild(m)
}
