package progs

import (
	"trident/internal/ir"
)

// This file adds three post-paper integer micro-kernels with *narrow
// outputs*: every hot arithmetic chain funnels into an i8/i16 store, so
// the high bits of the 64-bit registers that compute it are provably
// dead. They are the workload class BEC (Ko & Burgstaller, PAPERS.md)
// targets with static bit-liveness pruning — image pixels, packed
// nibbles, filtered samples — and they complement the paper's 11
// float-heavy Table I kernels, whose bits are almost entirely live.
// progs.Extended() returns Table I plus these; campaigns, the pruning
// benchmark columns in cmd/fibench, and the EXPERIMENTS.md pruning
// table draw from that extended list.

func init() {
	register(Program{
		Name:       "rgb2gray",
		Suite:      "micro",
		Area:       "Image processing",
		Input:      "synthetic 96-pixel RGB triples, 8-bit channels",
		BuildInput: buildRGB2Gray,
	})
	register(Program{
		Name:       "nibblepack",
		Suite:      "micro",
		Area:       "Data compression",
		Input:      "synthetic 128-byte stream packed two nibbles per byte",
		BuildInput: buildNibblePack,
	})
	register(Program{
		Name:       "boxblur",
		Suite:      "micro",
		Area:       "Signal processing",
		Input:      "synthetic 96-sample 14-bit signal, 4-tap box filter",
		BuildInput: buildBoxBlur,
	})
}

// buildRGB2Gray is the BT.601-style luma conversion: for each pixel,
// gray = (77*R + 150*G + 29*B + 128) >> 8 truncated to 8 bits and
// stored to an i8 plane. The weighted sum is computed in 64-bit
// registers but only bits 0..15 can ever reach the i8 store through the
// shift, so the top 48 bits of every multiply/add in the hot loop are
// statically dead.
func buildRGB2Gray(variant int) *ir.Module {
	const n = 96
	m := ir.NewModule("rgb2gray")
	r := m.AddGlobal("r", ir.I64, n, intData(ir.I64, n, inputSeed(0x26B0, variant), 256))
	g := m.AddGlobal("g", ir.I64, n, intData(ir.I64, n, inputSeed(0x26B1, variant), 256))
	bl := m.AddGlobal("b", ir.I64, n, intData(ir.I64, n, inputSeed(0x26B2, variant), 256))
	gray := m.AddGlobal("gray", ir.I8, n, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	// gray[i] = (77*r[i] + 150*g[i] + 29*b[i] + 128) >> 8.
	countedLoop(b, "i", iconst(n), nil,
		func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
			rv := b.Load(ir.I64, b.Gep(ir.I64, r, i))
			gv := b.Load(ir.I64, b.Gep(ir.I64, g, i))
			bv := b.Load(ir.I64, b.Gep(ir.I64, bl, i))
			sum := b.Add(b.Add(b.Mul(rv, iconst(77)), b.Mul(gv, iconst(150))),
				b.Mul(bv, iconst(29)))
			y := b.LShr(b.Add(sum, iconst(128)), iconst(8))
			b.Store(b.Trunc(y, ir.I8), b.Gep(ir.I8, gray, i))
			return nil
		})

	// Report a sample of the plane plus a checksum over all of it, so
	// every store is observable at the output.
	countedLoop(b, "s", iconst(6), nil,
		func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
			v := b.Load(ir.I8, b.Gep(ir.I8, gray, b.Mul(s, iconst(16))))
			b.Print(v)
			return nil
		})
	sum := countedLoop(b, "c", iconst(n), []ir.Value{iconst(0)},
		func(b *ir.Builder, c *ir.Instr, accs []*ir.Instr) []ir.Value {
			v := b.ZExt(b.Load(ir.I8, b.Gep(ir.I8, gray, c)), ir.I64)
			return []ir.Value{b.Add(accs[0], v)}
		})
	b.Print(sum.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// buildNibblePack packs two 4-bit samples per output byte:
// out[i] = (src[2i] & 0xF) | ((src[2i+1] & 0xF) << 4). The explicit
// AND masks tell the liveness pass that only 4 of the 64 loaded bits
// matter, making this the densest pruning target in the suite.
func buildNibblePack(variant int) *ir.Module {
	const n = 128
	m := ir.NewModule("nibblepack")
	src := m.AddGlobal("src", ir.I64, n, intData(ir.I64, n, inputSeed(0x41B0, variant), 256))
	out := m.AddGlobal("out", ir.I8, n/2, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	countedLoop(b, "i", iconst(n/2), nil,
		func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
			i2 := b.Shl(i, iconst(1))
			v0 := b.Load(ir.I64, b.Gep(ir.I64, src, i2))
			v1 := b.Load(ir.I64, b.Gep(ir.I64, src, b.Add(i2, iconst(1))))
			lo := b.And(v0, iconst(0xF))
			hi := b.Shl(b.And(v1, iconst(0xF)), iconst(4))
			b.Store(b.Trunc(b.Or(lo, hi), ir.I8), b.Gep(ir.I8, out, i))
			return nil
		})

	// Sample four packed bytes, then checksum the whole buffer.
	countedLoop(b, "s", iconst(4), nil,
		func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
			v := b.Load(ir.I8, b.Gep(ir.I8, out, b.Mul(s, iconst(16))))
			b.Print(v)
			return nil
		})
	sum := countedLoop(b, "c", iconst(n/2), []ir.Value{iconst(0)},
		func(b *ir.Builder, c *ir.Instr, accs []*ir.Instr) []ir.Value {
			v := b.ZExt(b.Load(ir.I8, b.Gep(ir.I8, out, c)), ir.I64)
			return []ir.Value{b.Xor(accs[0], b.Add(v, accs[0]))}
		})
	b.Print(sum.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// buildBoxBlur is a 4-tap moving-average filter over a 14-bit signal:
// out[i] = (x[i] + x[i+1] + x[i+2] + x[i+3] + 2) >> 2 stored as i16.
// The i16 store bounds the live range of the 64-bit adder chain at 18
// bits (16 output bits plus the two shifted-out rounding bits).
func buildBoxBlur(variant int) *ir.Module {
	const (
		n    = 96
		taps = 4
	)
	m := ir.NewModule("boxblur")
	x := m.AddGlobal("x", ir.I64, n, intData(ir.I64, n, inputSeed(0xB0F0, variant), 1<<14))
	out := m.AddGlobal("out", ir.I16, n-taps+1, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	countedLoop(b, "i", iconst(n-taps+1), nil,
		func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
			sum := ir.Value(iconst(2))
			for t := int64(0); t < taps; t++ {
				idx := ir.Value(i)
				if t > 0 {
					idx = b.Add(i, iconst(t))
				}
				sum = b.Add(sum, b.Load(ir.I64, b.Gep(ir.I64, x, idx)))
			}
			avg := b.LShr(sum, iconst(2))
			b.Store(b.Trunc(avg, ir.I16), b.Gep(ir.I16, out, i))
			return nil
		})

	countedLoop(b, "s", iconst(5), nil,
		func(b *ir.Builder, s *ir.Instr, _ []*ir.Instr) []ir.Value {
			v := b.Load(ir.I16, b.Gep(ir.I16, out, b.Mul(s, iconst(18))))
			b.Print(v)
			return nil
		})
	sum := countedLoop(b, "c", iconst(n-taps+1), []ir.Value{iconst(0)},
		func(b *ir.Builder, c *ir.Instr, accs []*ir.Instr) []ir.Value {
			v := b.ZExt(b.Load(ir.I16, b.Gep(ir.I16, out, c)), ir.I64)
			return []ir.Value{b.Add(accs[0], v)}
		})
	b.Print(sum.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}
