package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "blackscholes",
		Suite:      "Parsec",
		Area:       "Finance",
		Input:      "32 synthetic option contracts (spot, strike, time, type)",
		BuildInput: buildBlackscholes,
	})
}

// buildBlackscholes is the PARSEC option-pricing benchmark: for each
// contract it evaluates the Black-Scholes closed form, calling the
// polynomial approximation of the cumulative normal distribution that the
// original code ships (here a separate IR function, exercising the
// model's interprocedural propagation). Pure data-flow per option with
// one data-dependent branch (put vs. call), and a price table written
// then re-read for the summary — matching the original's propagation
// structure.
func buildBlackscholes(variant int) *ir.Module {
	const n = 32
	m := ir.NewModule("blackscholes")
	spot := m.AddGlobal("spot", ir.F64, n, floatData(ir.F64, n, inputSeed(0xB5C0, variant), 80, 120))
	strike := m.AddGlobal("strike", ir.F64, n, floatData(ir.F64, n, inputSeed(0xB5C1, variant), 80, 120))
	tte := m.AddGlobal("time", ir.F64, n, floatData(ir.F64, n, inputSeed(0xB5C2, variant), 0.25, 2))
	kind := m.AddGlobal("otype", ir.I64, n, intData(ir.I64, n, inputSeed(0xB5C3, variant), 2))
	prices := m.AddGlobal("prices", ir.F64, n, nil)

	cndfFn := buildCNDF(m)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	rate := fconst(0.02)
	vol := fconst(0.30)

	countedLoop(b, "price", iconst(n), nil,
		func(b *ir.Builder, i *ir.Instr, _ []*ir.Instr) []ir.Value {
			s := b.Load(ir.F64, b.Gep(ir.F64, spot, i))
			k := b.Load(ir.F64, b.Gep(ir.F64, strike, i))
			t := b.Load(ir.F64, b.Gep(ir.F64, tte, i))

			sqrtT := b.Intrinsic(ir.IntrinsicSqrt, t)
			volSqrtT := b.FMul(vol, sqrtT)
			logSK := b.Intrinsic(ir.IntrinsicLog, b.FDiv(s, k))
			halfVol2 := b.FMul(fconst(0.5), b.FMul(vol, vol))
			drift := b.FMul(b.FAdd(rate, halfVol2), t)
			d1 := b.FDiv(b.FAdd(logSK, drift), volSqrtT)
			d2 := b.FSub(d1, volSqrtT)

			nd1 := b.Call(cndfFn, d1)
			nd2 := b.Call(cndfFn, d2)
			disc := b.Intrinsic(ir.IntrinsicExp, b.FMul(b.FSub(fconst(0), rate), t))
			callPrice := b.FSub(b.FMul(s, nd1), b.FMul(b.FMul(k, disc), nd2))

			// Put via parity: P = C - S + K·e^{-rT}.
			ot := b.Load(ir.I64, b.Gep(ir.I64, kind, i))
			isPut := b.ICmp(ir.PredEQ, ot, iconst(1))
			price := ifThenElse(b, "kind", isPut,
				func(b *ir.Builder) ir.Value {
					return b.FAdd(b.FSub(callPrice, s), b.FMul(k, disc))
				},
				func(*ir.Builder) ir.Value { return callPrice })
			b.Store(price, b.Gep(ir.F64, prices, i))
			return nil
		})

	// Summary pass over the price table.
	sum := countedLoop(b, "out", iconst(n), []ir.Value{fconst(0)},
		func(b *ir.Builder, i *ir.Instr, accs []*ir.Instr) []ir.Value {
			p := b.Load(ir.F64, b.Gep(ir.F64, prices, i))
			rem := b.SRem(i, iconst(8))
			isSample := b.ICmp(ir.PredEQ, rem, iconst(0))
			ifThen(b, "dump", isSample, func(b *ir.Builder) { b.Print(p) })
			return []ir.Value{b.FAdd(accs[0], p)}
		})
	b.Print(sum.Accs[0])
	b.Ret(nil)
	return mustBuild(m)
}

// buildCNDF emits the PARSEC polynomial approximation of the cumulative
// normal distribution as an IR function:
// N(x) = 1 - n(x)·(a1·k + a2·k² + ... + a5·k⁵) with k = 1/(1+0.2316419·x),
// mirrored for negative x (N(-x) = 1 - N(x)).
func buildCNDF(m *ir.Module) *ir.Func {
	f := m.NewFunc("cndf", ir.F64, ir.NewParam("x", ir.F64))
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	x := f.Params[0]

	neg := b.FCmp(ir.PredOLT, x, fconst(0))
	ax := b.Intrinsic(ir.IntrinsicFabs, x)

	k := b.FDiv(fconst(1), b.FAdd(fconst(1), b.FMul(fconst(0.2316419), ax)))
	// Horner evaluation of the five-term polynomial.
	var poly ir.Value = fconst(1.330274429)
	coeffs := []float64{-1.821255978, 1.781477937, -0.356563782, 0.319381530}
	for _, c := range coeffs {
		poly = b.FAdd(b.FMul(poly, k), fconst(c))
	}
	poly = b.FMul(poly, k)

	x2 := b.FMul(ax, ax)
	pdf := b.FMul(fconst(0.3989422804014327),
		b.Intrinsic(ir.IntrinsicExp, b.FMul(fconst(-0.5), x2)))
	upper := b.FSub(fconst(1), b.FMul(pdf, poly))

	lower := b.FSub(fconst(1), upper)
	b.Ret(b.Select(neg, lower, upper))
	return f
}
