package progs

import (
	"trident/internal/ir"
)

func init() {
	register(Program{
		Name:       "pathfinder",
		Suite:      "Rodinia",
		Area:       "Dynamic programming",
		Input:      "48x10 synthetic wall, weights in [0,10)",
		BuildInput: buildPathfinder,
	})
}

// buildPathfinder is the paper's running-example benchmark (§III): a
// grid-path dynamic program. Row by row, each cell takes the cheapest of
// its three upper neighbors plus its own weight; the result is the
// cheapest path cost. The kernel alternates a write loop (dst) and a copy
// loop (src), giving exactly the symmetric store/load loop pairs the
// memory sub-model prunes.
func buildPathfinder(variant int) *ir.Module {
	const (
		cols = 48
		rows = 10
	)
	m := ir.NewModule("pathfinder")
	wall := m.AddGlobal("wall", ir.I32, cols*rows, intData(ir.I32, cols*rows, inputSeed(0x9A7F, variant), 10))
	src := m.AddGlobal("src", ir.I32, cols, nil)
	dst := m.AddGlobal("dst", ir.I32, cols, nil)

	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))

	// src = wall[0][*].
	countedLoop(b, "init", iconst(cols), nil,
		func(b *ir.Builder, j *ir.Instr, _ []*ir.Instr) []ir.Value {
			v := b.Load(ir.I32, b.Gep(ir.I32, wall, j))
			b.Store(v, b.Gep(ir.I32, src, j))
			return nil
		})

	// Remaining rows.
	countedLoop(b, "row", iconst(rows-1), nil,
		func(b *ir.Builder, t *ir.Instr, _ []*ir.Instr) []ir.Value {
			countedLoop(b, "col", iconst(cols), nil,
				func(b *ir.Builder, j *ir.Instr, _ []*ir.Instr) []ir.Value {
					best := b.Load(ir.I32, b.Gep(ir.I32, src, j))

					// Left neighbor when j > 0.
					hasLeft := b.ICmp(ir.PredSGT, j, iconst(0))
					left := ifThenElse(b, "left", hasLeft,
						func(b *ir.Builder) ir.Value {
							jm := b.Sub(j, iconst(1))
							lv := b.Load(ir.I32, b.Gep(ir.I32, src, jm))
							return minI64(b, lv, best)
						},
						func(*ir.Builder) ir.Value { return best })

					// Right neighbor when j < cols-1.
					hasRight := b.ICmp(ir.PredSLT, j, iconst(cols-1))
					merged := ifThenElse(b, "right", hasRight,
						func(b *ir.Builder) ir.Value {
							jp := b.Add(j, iconst(1))
							rv := b.Load(ir.I32, b.Gep(ir.I32, src, jp))
							return minI64(b, rv, left)
						},
						func(*ir.Builder) ir.Value { return left })

					// dst[j] = wall[(t+1)*cols + j] + merged.
					rowBase := b.Mul(b.Add(t, iconst(1)), iconst(cols))
					idx := b.Add(rowBase, j)
					w := b.Load(ir.I32, b.Gep(ir.I32, wall, idx))
					b.Store(b.Add(w, merged), b.Gep(ir.I32, dst, j))
					return nil
				})

			// src = dst for the next row.
			countedLoop(b, "copy", iconst(cols), nil,
				func(b *ir.Builder, j *ir.Instr, _ []*ir.Instr) []ir.Value {
					v := b.Load(ir.I32, b.Gep(ir.I32, dst, j))
					b.Store(v, b.Gep(ir.I32, src, j))
					return nil
				})
			return nil
		})

	// The answer is the cheapest cell of the final row.
	res := countedLoop(b, "min", iconst(cols), []ir.Value{i32const(1 << 29)},
		func(b *ir.Builder, j *ir.Instr, accs []*ir.Instr) []ir.Value {
			v := b.Load(ir.I32, b.Gep(ir.I32, src, j))
			return []ir.Value{minI64(b, v, accs[0])}
		})
	b.Print(res.Accs[0])

	// Emit a few representative cells, like the benchmark's result dump.
	countedLoop(b, "dump", iconst(cols/8), nil,
		func(b *ir.Builder, k *ir.Instr, _ []*ir.Instr) []ir.Value {
			idx := b.Mul(k, iconst(8))
			b.Print(b.Load(ir.I32, b.Gep(ir.I32, src, idx)))
			return nil
		})

	b.Ret(nil)
	return mustBuild(m)
}
