package progs

import (
	"trident/internal/ir"
)

// lcg is a deterministic 64-bit generator for synthetic input data.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*6364136223846793005 + 1442695040888963407} }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s >> 11
}

// intData returns n values in [0, mod) as bit patterns of type t.
func intData(t ir.Type, n int, seed, mod uint64) []uint64 {
	g := newLCG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = ir.TruncateToWidth(g.next()%mod, t.Bits())
	}
	return out
}

// floatData returns n values in [lo, hi) as bit patterns of type t.
func floatData(t ir.Type, n int, seed uint64, lo, hi float64) []uint64 {
	g := newLCG(seed)
	out := make([]uint64, n)
	for i := range out {
		f := lo + (hi-lo)*float64(g.next()%1_000_000)/1_000_000
		out[i] = ir.FloatToBits(t, f)
	}
	return out
}

// loopResult is what a counted loop leaves behind.
type loopResult struct {
	// I is the induction phi; after the loop it holds the bound.
	I *ir.Instr
	// Accs are the loop-carried accumulator phis, parallel to the inits
	// passed to countedLoop; after the loop they hold the final values.
	Accs []*ir.Instr
}

// countedLoop emits the canonical counted loop
//
//	for i := 0; i < n; i++ { body }
//
// with loop-carried accumulators. body receives the induction phi and the
// accumulator phis and returns the next-iteration accumulator values; it
// may create inner blocks but must leave the builder positioned in the
// block that falls through to the next iteration. After countedLoop
// returns, the builder is positioned in the exit block.
func countedLoop(b *ir.Builder, prefix string, n ir.Value, inits []ir.Value,
	body func(b *ir.Builder, i *ir.Instr, accs []*ir.Instr) []ir.Value) loopResult {

	pre := b.Block()
	header := b.NewBlock(prefix + ".head")
	bodyBlk := b.NewBlock(prefix + ".body")
	exit := b.NewBlock(prefix + ".exit")

	b.Br(header)

	b.SetBlock(header)
	it := n.ValueType()
	i := b.Named(prefix+".i", b.Phi(it))
	accs := make([]*ir.Instr, len(inits))
	for k := range inits {
		accs[k] = b.Phi(inits[k].ValueType())
	}
	cond := b.ICmp(ir.PredSLT, i, n)
	b.CondBr(cond, bodyBlk, exit)

	b.SetBlock(bodyBlk)
	nextAccs := body(b, i, accs)
	if len(nextAccs) != len(inits) {
		panic("progs: countedLoop body returned wrong accumulator count")
	}
	latch := b.Block()
	inc := b.Add(i, ir.ConstInt(it, 1))
	b.Br(header)

	b.AddIncoming(i, ir.ConstInt(it, 0), pre)
	b.AddIncoming(i, inc, latch)
	for k := range inits {
		b.AddIncoming(accs[k], inits[k], pre)
		b.AddIncoming(accs[k], nextAccs[k], latch)
	}

	b.SetBlock(exit)
	return loopResult{I: i, Accs: accs}
}

// ifThen emits
//
//	if cond { then }
//
// then must leave the builder in a block that falls through to the join;
// afterwards the builder is positioned in the join block.
func ifThen(b *ir.Builder, prefix string, cond ir.Value, then func(b *ir.Builder)) {
	thenBlk := b.NewBlock(prefix + ".then")
	join := b.NewBlock(prefix + ".join")
	b.CondBr(cond, thenBlk, join)
	b.SetBlock(thenBlk)
	then(b)
	b.Br(join)
	b.SetBlock(join)
}

// ifThenElse emits a diamond returning a joined value: both arms compute a
// value of the same type and the join phi selects it.
func ifThenElse(b *ir.Builder, prefix string, cond ir.Value,
	then func(b *ir.Builder) ir.Value, els func(b *ir.Builder) ir.Value) *ir.Instr {

	thenBlk := b.NewBlock(prefix + ".then")
	elseBlk := b.NewBlock(prefix + ".else")
	join := b.NewBlock(prefix + ".join")
	b.CondBr(cond, thenBlk, elseBlk)

	b.SetBlock(thenBlk)
	tv := then(b)
	thenEnd := b.Block()
	b.Br(join)

	b.SetBlock(elseBlk)
	ev := els(b)
	elseEnd := b.Block()
	b.Br(join)

	b.SetBlock(join)
	phi := b.Phi(tv.ValueType())
	b.AddIncoming(phi, tv, thenEnd)
	b.AddIncoming(phi, ev, elseEnd)
	return phi
}

// iconst abbreviates 64-bit integer constants.
func iconst(v int64) *ir.Const { return ir.ConstInt(ir.I64, v) }

// i32const abbreviates 32-bit integer constants.
func i32const(v int64) *ir.Const { return ir.ConstInt(ir.I32, v) }

// fconst abbreviates f64 constants.
func fconst(v float64) *ir.Const { return ir.ConstFloat(ir.F64, v) }

// minI64 emits min(a, b) via select.
func minI64(b *ir.Builder, x, y ir.Value) *ir.Instr {
	c := b.ICmp(ir.PredSLT, x, y)
	return b.Select(c, x, y)
}

// maxI64 emits max(a, b) via select.
func maxI64(b *ir.Builder, x, y ir.Value) *ir.Instr {
	c := b.ICmp(ir.PredSGT, x, y)
	return b.Select(c, x, y)
}
