// Package baseline reimplements the two prior models the paper compares
// against in §VII-C:
//
//   - PVF (Sridharan & Kaeli): the architecturally-correct-execution (ACE)
//     fraction. PVF does not distinguish crashes or benign outcomes from
//     SDCs, so any fault whose corruption reaches any architectural sink
//     counts. The paper measures PVF's average prediction at 90.62%
//     against a 13.59% FI ground truth.
//
//   - ePVF (Fang et al.): PVF with crash-causing faults removed. ePVF
//     still cannot separate benign faults from SDCs (it does not model
//     control-flow divergence or memory-level masking), predicting
//     52.55% on the paper's benchmarks.
//
// Both are built on the same profile and def-use machinery as TRIDENT, so
// the comparison isolates the modeling differences rather than
// implementation differences. DESIGN.md §4 indexes the Fig. 9
// experiment these baselines feed.
package baseline

import (
	"trident/internal/core"
	"trident/internal/ir"
	"trident/internal/profile"
)

// Predictor is the interface shared by TRIDENT and the baselines: a
// per-instruction SDC probability.
type Predictor interface {
	InstrSDC(in *ir.Instr) float64
}

// PVF predicts the SDC probability of an instruction as its ACE fraction:
// the probability that the corruption reaches any architectural sink
// (output, memory, control flow, or a trap). Crashes and benign reaching
// faults are not separated from SDCs — the model's defining weakness.
type PVF struct {
	model *core.Model
}

// NewPVF builds the PVF baseline over a profile.
func NewPVF(prof *profile.Profile) *PVF {
	return &PVF{model: core.New(prof, core.TridentConfig())}
}

var _ Predictor = (*PVF)(nil)

// InstrSDC implements Predictor.
func (p *PVF) InstrSDC(in *ir.Instr) float64 {
	tm := p.model.TerminalMass(in)
	v := tm.Output + tm.Stores + tm.Branches + tm.Crash
	if v > 1 {
		v = 1
	}
	return v
}

// OverallSDC returns the execution-weighted mean prediction.
func (p *PVF) OverallSDC() float64 {
	return overall(p.model.Profile(), p)
}

// EPVF refines PVF by removing crash-causing faults from the prediction.
// The crash estimate comes from a CrashOracle when provided (the paper
// gave ePVF FI-measured crash rates, conservatively overestimating its
// accuracy); otherwise the model's own crash estimate is used.
type EPVF struct {
	model *core.Model
	pvf   *PVF
	// CrashOracle overrides the modeled per-instruction crash
	// probability; nil uses the model estimate.
	CrashOracle func(in *ir.Instr) float64
}

// NewEPVF builds the ePVF baseline over a profile.
func NewEPVF(prof *profile.Profile) *EPVF {
	m := core.New(prof, core.TridentConfig())
	return &EPVF{model: m, pvf: &PVF{model: m}}
}

var _ Predictor = (*EPVF)(nil)

// InstrSDC implements Predictor.
func (e *EPVF) InstrSDC(in *ir.Instr) float64 {
	crash := e.model.InstrCrash(in)
	if e.CrashOracle != nil {
		crash = e.CrashOracle(in)
	}
	v := e.pvf.InstrSDC(in) - crash
	if v < 0 {
		v = 0
	}
	return v
}

// OverallSDC returns the execution-weighted mean prediction.
func (e *EPVF) OverallSDC() float64 {
	return overall(e.model.Profile(), e)
}

// overall computes the execution-count-weighted expectation of a
// predictor over the fault-activation space.
func overall(prof *profile.Profile, pred Predictor) float64 {
	var total uint64
	sum := 0.0
	prof.Module.Instrs(func(in *ir.Instr) {
		if !in.HasResult() {
			return
		}
		c := prof.ExecCount[in]
		if c == 0 {
			return
		}
		total += c
		sum += float64(c) * pred.InstrSDC(in)
	})
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}
