package baseline

import (
	"context"
	"testing"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/profile"
)

const program = `
module "base"
global @buf i64 x 16
func @main() void {
entry:
  br fill
fill:
  %i = phi i64 [i64 0, entry], [%inc, fill]
  %v = mul %i, i64 7
  %p = gep i64, @buf, %i
  store %v, %p
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 16
  condbr %c, fill, read
read:
  %x = load i64, @buf
  %masked = and %x, i64 1
  print %masked
  ret
}
`

func setup(t testing.TB) (*profile.Profile, *ir.Module) {
	t.Helper()
	m, err := ir.Parse(program)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prof, m
}

func TestPVFOverestimatesSDC(t *testing.T) {
	prof, m := setup(t)
	pvf := NewPVF(prof).OverallSDC()
	epvf := NewEPVF(prof).OverallSDC()
	trident := core.New(prof, core.TridentConfig()).OverallSDC(0, 0).SDC

	inj, err := fault.New(m, fault.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := inj.CampaignRandom(context.Background(), 800)
	if err != nil {
		t.Fatal(err)
	}
	measured := fi.SDCProb()

	// Paper ordering (§VII-C): PVF >> ePVF >= TRIDENT ≈ FI.
	if pvf < epvf {
		t.Errorf("PVF (%v) should be >= ePVF (%v)", pvf, epvf)
	}
	if epvf+1e-9 < trident {
		t.Errorf("ePVF (%v) should be >= TRIDENT (%v)", epvf, trident)
	}
	if pvf <= measured {
		t.Errorf("PVF (%v) should overestimate FI (%v)", pvf, measured)
	}
	// Most of this program's faults crash (address chains) or are masked
	// (the and with 1); PVF must be far off while TRIDENT stays close.
	pvfErr := abs(pvf - measured)
	tridentErr := abs(trident - measured)
	if tridentErr >= pvfErr {
		t.Errorf("TRIDENT error (%v) should be below PVF error (%v)", tridentErr, pvfErr)
	}
}

func TestPVFInstrBounds(t *testing.T) {
	prof, _ := setup(t)
	pvf := NewPVF(prof)
	epvf := NewEPVF(prof)
	prof.Module.Instrs(func(in *ir.Instr) {
		p := pvf.InstrSDC(in)
		e := epvf.InstrSDC(in)
		if p < 0 || p > 1 || e < 0 || e > 1 {
			t.Errorf("out of range at %s: pvf=%v epvf=%v", in.Pos(), p, e)
		}
		if e > p+1e-9 {
			t.Errorf("ePVF (%v) exceeds PVF (%v) at %s", e, p, in.Pos())
		}
	})
}

func TestEPVFWithCrashOracle(t *testing.T) {
	prof, m := setup(t)
	inj, err := fault.New(m, fault.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Measure crash rates per instruction with a small campaign and feed
	// them to ePVF as the oracle, as the paper's evaluation did.
	crashRate := make(map[*ir.Instr]float64)
	for _, target := range inj.Targets() {
		res, err := inj.CampaignPerInstr(context.Background(), target, 40)
		if err != nil {
			t.Fatal(err)
		}
		crashRate[target] = res.Rate(fault.Crash)
	}
	epvf := NewEPVF(prof)
	epvf.CrashOracle = func(in *ir.Instr) float64 { return crashRate[in] }
	withOracle := epvf.OverallSDC()

	plain := NewEPVF(prof).OverallSDC()
	if withOracle < 0 || withOracle > 1 {
		t.Fatalf("oracle ePVF = %v out of range", withOracle)
	}
	// The oracle changes the estimate but both stay below PVF.
	pvf := NewPVF(prof).OverallSDC()
	if withOracle > pvf+1e-9 || plain > pvf+1e-9 {
		t.Error("ePVF must not exceed PVF")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
