// Package protect implements the paper's use case (§VI): selective
// instruction duplication to mitigate SDCs under a performance-overhead
// bound. Instruction selection is a 0-1 knapsack over model-predicted SDC
// probabilities; the duplication pass clones the selected computations
// into shadow registers and inserts detector checks where protected values
// escape the protected region. DESIGN.md §4 indexes the Fig. 8
// evaluation this pass feeds.
package protect

import (
	"math"
	"sort"

	"trident/internal/ir"
	"trident/internal/profile"
)

// Candidate is one instruction eligible for duplication.
type Candidate struct {
	Instr *ir.Instr
	// SDC is the model-predicted SDC probability of the instruction.
	SDC float64
	// DynCount is the profiled dynamic execution count — the paper's
	// proxy for the performance cost of duplicating the instruction.
	DynCount uint64
}

// Plan is a protection selection under a budget.
type Plan struct {
	// Selected are the instructions to duplicate.
	Selected []*ir.Instr
	// Cost is the summed dynamic count of the selection.
	Cost uint64
	// Budget is the dynamic-count budget the selection was made under.
	Budget uint64
	// Value is the summed expected SDC coverage (Σ sdc·count).
	Value float64
}

// Candidates returns the duplicable instructions of a profiled module:
// executed, register-writing, and safe to clone (allocas would change
// addresses and calls would repeat side effects, so both are excluded;
// their operands and results are still protectable through their
// producers and consumers).
func Candidates(prof *profile.Profile, sdc map[*ir.Instr]float64) []Candidate {
	var out []Candidate
	prof.Module.Instrs(func(in *ir.Instr) {
		if !in.HasResult() || in.Op == ir.OpAlloca || in.Op == ir.OpCall {
			return
		}
		count := prof.ExecCount[in]
		if count == 0 {
			return
		}
		out = append(out, Candidate{Instr: in, SDC: sdc[in], DynCount: count})
	})
	return out
}

// FullCost returns the total dynamic count of all candidates — the cost of
// full duplication, the paper's 100% baseline.
func FullCost(cands []Candidate) uint64 {
	var total uint64
	for _, c := range cands {
		total += c.DynCount
	}
	return total
}

// knapsackScale bounds the DP table size; costs are quantized onto this
// many units.
const knapsackScale = 20000

// SelectKnapsack solves the 0-1 knapsack of §VI: choose instructions
// maximizing Σ sdc·count subject to Σ count ≤ budget. Costs are quantized
// to at most knapsackScale units (classic DP, as in the paper's use of the
// dynamic-programming algorithm); ties and rounding slack are filled
// greedily by value density.
func SelectKnapsack(cands []Candidate, budget uint64) *Plan {
	plan := &Plan{Budget: budget}
	if budget == 0 || len(cands) == 0 {
		return plan
	}

	// Quantize: unit = ceil(budget / knapsackScale); items costing 0 units
	// round up to 1 so nothing is free.
	unit := (budget + knapsackScale - 1) / knapsackScale
	capUnits := int(budget / unit)
	costs := make([]int, len(cands))
	for i, c := range cands {
		q := int((c.DynCount + unit - 1) / unit)
		if q == 0 {
			q = 1
		}
		costs[i] = q
	}

	// DP over capacity: best[w] = max value using first i items at cost w.
	best := make([]float64, capUnits+1)
	take := make([][]bool, len(cands))
	for i, c := range cands {
		take[i] = make([]bool, capUnits+1)
		v := c.SDC * float64(c.DynCount)
		w := costs[i]
		for j := capUnits; j >= w; j-- {
			if cand := best[j-w] + v; cand > best[j] {
				best[j] = cand
				take[i][j] = true
			}
		}
	}

	// Reconstruct.
	selected := make(map[*ir.Instr]bool)
	j := capUnits
	for i := len(cands) - 1; i >= 0; i-- {
		if j >= 0 && take[i][j] {
			selected[cands[i].Instr] = true
			plan.Cost += cands[i].DynCount
			plan.Value += cands[i].SDC * float64(cands[i].DynCount)
			j -= costs[i]
		}
	}

	// Greedy top-up: quantization can leave real budget unused.
	order := make([]int, 0, len(cands))
	for i := range cands {
		if !selected[cands[i].Instr] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da := density(cands[order[a]])
		db := density(cands[order[b]])
		if da != db {
			return da > db
		}
		return cands[order[a]].Instr.ID < cands[order[b]].Instr.ID
	})
	for _, i := range order {
		c := cands[i]
		if plan.Cost+c.DynCount <= budget {
			selected[c.Instr] = true
			plan.Cost += c.DynCount
			plan.Value += c.SDC * float64(c.DynCount)
		}
	}

	for _, c := range cands {
		if selected[c.Instr] {
			plan.Selected = append(plan.Selected, c.Instr)
		}
	}
	return plan
}

func density(c Candidate) float64 {
	if c.DynCount == 0 {
		return math.Inf(1)
	}
	return c.SDC
}

// SelectTopK is the naive alternative selection used by the knapsack
// ablation: take instructions by descending SDC probability until the
// budget is exhausted, ignoring cost/value trade-offs.
func SelectTopK(cands []Candidate, budget uint64) *Plan {
	plan := &Plan{Budget: budget}
	order := make([]Candidate, len(cands))
	copy(order, cands)
	sort.Slice(order, func(a, b int) bool {
		if order[a].SDC != order[b].SDC {
			return order[a].SDC > order[b].SDC
		}
		return order[a].Instr.ID < order[b].Instr.ID
	})
	for _, c := range order {
		if plan.Cost+c.DynCount <= budget {
			plan.Selected = append(plan.Selected, c.Instr)
			plan.Cost += c.DynCount
			plan.Value += c.SDC * float64(c.DynCount)
		}
	}
	return plan
}
