package protect

import (
	"context"
	"strings"
	"testing"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/profile"
)

const workload = `
module "work"
global @buf i64 x 24
func @main() void {
entry:
  br fill
fill:
  %i = phi i64 [i64 0, entry], [%inc, fill]
  %sq = mul %i, %i
  %p = gep i64, @buf, %i
  store %sq, %p
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 24
  condbr %c, fill, rentry
rentry:
  br read
read:
  %j = phi i64 [i64 0, rentry], [%jinc, read]
  %acc = phi i64 [i64 0, rentry], [%nacc, read]
  %q = gep i64, @buf, %j
  %v = load i64, %q
  %nacc = add %acc, %v
  %jinc = add %j, i64 1
  %rc = icmp slt %jinc, i64 24
  condbr %rc, read, done
done:
  print %nacc
  ret
}
`

func setup(t testing.TB) (*ir.Module, *profile.Profile, map[*ir.Instr]float64) {
	t.Helper()
	m, err := ir.Parse(workload)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(prof, core.TridentConfig())
	sdc := make(map[*ir.Instr]float64)
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			sdc[in] = model.InstrSDC(in)
		}
	})
	return m, prof, sdc
}

func TestCandidatesExcludeUnsafe(t *testing.T) {
	m, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.Instr.Op == ir.OpAlloca || c.Instr.Op == ir.OpCall {
			t.Errorf("unsafe candidate %s", c.Instr.Pos())
		}
		if c.DynCount == 0 {
			t.Errorf("unexecuted candidate %s", c.Instr.Pos())
		}
	}
	_ = m
}

func TestKnapsackRespectsBudget(t *testing.T) {
	_, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	full := FullCost(cands)

	for _, frac := range []float64{0, 0.1, 1.0 / 3, 2.0 / 3, 1} {
		budget := uint64(frac * float64(full))
		plan := SelectKnapsack(cands, budget)
		if plan.Cost > budget {
			t.Errorf("budget %v: cost %d exceeds budget %d", frac, plan.Cost, budget)
		}
		if frac == 1 && len(plan.Selected) != len(cands) {
			t.Errorf("full budget should select everything: %d of %d",
				len(plan.Selected), len(cands))
		}
		if frac == 0 && len(plan.Selected) != 0 {
			t.Error("zero budget should select nothing")
		}
	}
}

func TestKnapsackBeatsOrMatchesTopK(t *testing.T) {
	_, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	budget := FullCost(cands) / 3
	ks := SelectKnapsack(cands, budget)
	tk := SelectTopK(cands, budget)
	if ks.Value+1e-9 < tk.Value {
		t.Errorf("knapsack value %v below top-k value %v", ks.Value, tk.Value)
	}
}

func TestApplyPreservesSemantics(t *testing.T) {
	m, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	plan := SelectKnapsack(cands, FullCost(cands)) // everything
	protected, err := Apply(m, plan.Selected)
	if err != nil {
		t.Fatal(err)
	}
	overhead, err := MeasureOverhead(m, protected)
	if err != nil {
		t.Fatal(err)
	}
	if overhead <= 0 {
		t.Errorf("full duplication overhead = %v, want positive", overhead)
	}
	if overhead > 1.5 {
		t.Errorf("full duplication overhead = %v, implausibly high", overhead)
	}
}

func TestApplyInsertsShadowsAndChecks(t *testing.T) {
	m, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	plan := SelectKnapsack(cands, FullCost(cands))
	protected, err := Apply(m, plan.Selected)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(protected)
	if !strings.Contains(text, ".shadow") {
		t.Error("no shadow registers in protected module")
	}
	if !strings.Contains(text, "check ") {
		t.Error("no checks in protected module")
	}
	// Chain-internal values must not each get a check: there are fewer
	// checks than shadows.
	shadows := strings.Count(text, ".shadow =")
	checks := strings.Count(text, "check ")
	if checks >= shadows {
		t.Errorf("%d checks for %d shadows; expected chain-end placement", checks, shadows)
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	m, prof, sdc := setup(t)
	before := ir.Print(m)
	cands := Candidates(prof, sdc)
	if _, err := Apply(m, SelectKnapsack(cands, FullCost(cands)).Selected); err != nil {
		t.Fatal(err)
	}
	if ir.Print(m) != before {
		t.Error("Apply mutated the original module")
	}
}

func TestApplyRejectsBadSelection(t *testing.T) {
	m, _, _ := setup(t)
	var store *ir.Instr
	m.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			store = in
		}
	})
	if _, err := Apply(m, []*ir.Instr{store}); err == nil {
		t.Error("selecting a store should fail (no destination register)")
	}
}

// TestProtectionReducesSDC is the end-to-end §VI check: FI on the
// protected program must show fewer SDCs and some detections.
func TestProtectionReducesSDC(t *testing.T) {
	m, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	plan := SelectKnapsack(cands, FullCost(cands)*2/3)
	protected, err := Apply(m, plan.Selected)
	if err != nil {
		t.Fatal(err)
	}

	injOrig, err := fault.New(m, fault.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	base, err := injOrig.CampaignRandom(context.Background(), 600)
	if err != nil {
		t.Fatal(err)
	}

	injProt, err := fault.New(protected, fault.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := injProt.CampaignRandom(context.Background(), 600)
	if err != nil {
		t.Fatal(err)
	}

	if prot.Counts[fault.Detected] == 0 {
		t.Error("protected program detected no faults")
	}
	if prot.SDCProb() >= base.SDCProb() {
		t.Errorf("protection did not reduce SDC: %v -> %v", base.SDCProb(), prot.SDCProb())
	}
}

func TestProtectedModuleStillValidIR(t *testing.T) {
	m, prof, sdc := setup(t)
	cands := Candidates(prof, sdc)
	for _, frac := range []uint64{3, 2, 1} {
		plan := SelectKnapsack(cands, FullCost(cands)/frac)
		protected, err := Apply(m, plan.Selected)
		if err != nil {
			t.Fatalf("budget 1/%d: %v", frac, err)
		}
		res, err := interp.Run(protected, interp.Options{})
		if err != nil {
			t.Fatalf("budget 1/%d: %v", frac, err)
		}
		if res.Outcome != interp.OutcomeOK {
			t.Fatalf("budget 1/%d: protected run %s", frac, res.Outcome)
		}
	}
}
