package protect

import (
	"fmt"

	"trident/internal/interp"
	"trident/internal/ir"
)

// Apply returns a new module with the selected instructions duplicated
// SWIFT-style: each selected instruction gets a shadow clone computing the
// same operation; shadow operands read from shadow registers where the
// producer is also selected (so whole chains are independently
// recomputed) and from the original registers otherwise. A detector
// `check` comparing original and shadow is inserted where a protected
// value escapes the protected region — consumed by an unprotected
// instruction, a terminator, a store, or program output — matching the
// paper's one-comparison-per-chain placement (§VI).
//
// The input module is not modified; selections are carried over to the
// clone by function name and instruction ID.
func Apply(m *ir.Module, selected []*ir.Instr) (*ir.Module, error) {
	clone, mapping := ir.CloneModule(m)

	want := make(map[*ir.Func]map[int]bool)
	for _, in := range selected {
		if !in.HasResult() {
			return nil, fmt.Errorf("protect: %s has no destination register", in.Pos())
		}
		if in.Op == ir.OpAlloca || in.Op == ir.OpCall {
			return nil, fmt.Errorf("protect: %s cannot be duplicated", in.Pos())
		}
		ci, ok := mapping[in]
		if !ok {
			return nil, fmt.Errorf("protect: %s is not part of the module", in.Pos())
		}
		fn := ci.Block.Fn
		if want[fn] == nil {
			want[fn] = make(map[int]bool)
		}
		want[fn][ci.ID] = true
	}

	for _, fn := range clone.Funcs {
		ids := want[fn]
		if len(ids) == 0 {
			continue
		}
		if err := duplicateInFunc(fn, ids); err != nil {
			return nil, err
		}
	}

	for _, fn := range clone.Funcs {
		fn.Renumber()
	}
	if err := ir.Verify(clone); err != nil {
		return nil, fmt.Errorf("protect: duplicated module fails verification: %w", err)
	}
	return clone, nil
}

func duplicateInFunc(fn *ir.Func, ids map[int]bool) error {
	// Collect the selected originals in block order.
	var originals []*ir.Instr
	fn.Instrs(func(in *ir.Instr) {
		if ids[in.ID] {
			originals = append(originals, in)
		}
	})
	if len(originals) != len(ids) {
		return fmt.Errorf("protect: %d of %d selected instructions not found in %s",
			len(ids)-len(originals), len(ids), fn.Name)
	}

	// Create shadow clones (operands still pointing at originals).
	shadow := make(map[*ir.Instr]*ir.Instr, len(originals))
	for _, in := range originals {
		s := &ir.Instr{
			Name:      in.Name + ".shadow",
			Op:        in.Op,
			Type:      in.Type,
			Operands:  append([]ir.Value(nil), in.Operands...),
			Pred:      in.Pred,
			Elem:      in.Elem,
			Count:     in.Count,
			Callee:    in.Callee,
			Intr:      in.Intr,
			PhiBlocks: append([]*ir.Block(nil), in.PhiBlocks...),
			Format:    in.Format,
		}
		shadow[in] = s
	}

	// Remap shadow operands to shadow producers where available.
	for _, s := range shadow {
		for i, op := range s.Operands {
			if def, ok := op.(*ir.Instr); ok {
				if sh, ok := shadow[def]; ok {
					s.Operands[i] = sh
				}
			}
		}
	}

	// An original needs a check iff its value escapes the protected
	// region: it is consumed by an unprotected instruction or it has no
	// users at all that are protected.
	um := ir.BuildUseMap(fn)
	needsCheck := func(in *ir.Instr) bool {
		users := um.Users(in)
		if len(users) == 0 {
			return true
		}
		for _, u := range users {
			if shadow[u] == nil {
				return true
			}
		}
		return false
	}

	// Rebuild each block with shadows (and checks) inserted. Shadow phis
	// must stay within the leading phi cluster; other shadows follow
	// their original immediately. Checks follow the phi cluster or the
	// shadow.
	for _, b := range fn.Blocks {
		var (
			rebuilt    []*ir.Instr
			phiChecks  []*ir.Instr
			sawNonPhi  bool
			checkAdded = func(orig *ir.Instr) *ir.Instr {
				c := &ir.Instr{
					Op:       ir.OpCheck,
					Type:     ir.Void,
					Operands: []ir.Value{orig, shadow[orig]},
				}
				c.Block = b
				return c
			}
		)
		for _, in := range b.Instrs {
			s := shadow[in]
			if in.Op == ir.OpPhi {
				rebuilt = append(rebuilt, in)
				if s != nil {
					s.Block = b
					rebuilt = append(rebuilt, s)
					if needsCheck(in) {
						phiChecks = append(phiChecks, checkAdded(in))
					}
				}
				continue
			}
			if !sawNonPhi {
				sawNonPhi = true
				rebuilt = append(rebuilt, phiChecks...)
			}
			rebuilt = append(rebuilt, in)
			if s != nil {
				s.Block = b
				rebuilt = append(rebuilt, s)
				if needsCheck(in) {
					rebuilt = append(rebuilt, checkAdded(in))
				}
			}
		}
		b.Instrs = rebuilt
	}
	return nil
}

// MeasureOverhead runs both modules and returns the relative dynamic
// instruction overhead of the protected one — the deterministic equivalent
// of the paper's wall-clock measurements.
func MeasureOverhead(original, protected *ir.Module) (float64, error) {
	a, err := interp.Run(original, interp.Options{})
	if err != nil {
		return 0, fmt.Errorf("protect: run original: %w", err)
	}
	b, err := interp.Run(protected, interp.Options{})
	if err != nil {
		return 0, fmt.Errorf("protect: run protected: %w", err)
	}
	if a.Outcome != interp.OutcomeOK || b.Outcome != interp.OutcomeOK {
		return 0, fmt.Errorf("protect: runs ended in %s / %s", a.Outcome, b.Outcome)
	}
	if b.Output != a.Output {
		return 0, fmt.Errorf("protect: duplication changed program output")
	}
	return float64(b.DynInstrs)/float64(a.DynInstrs) - 1, nil
}
