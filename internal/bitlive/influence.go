package bitlive

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"trident/internal/hashutil"
	"trident/internal/ir"
)

// This file classifies every injectable (instruction, bit) pair into an
// influence stratum — the static half of stratified fault-injection
// sampling (ANALYSIS.md, "Stratified sampling over live bits"). Where
// the liveness pass (bitlive.go) answers "can this bit matter at all?",
// the classifier ranks the bits that *can* matter by how they matter:
// address bits trap or corrupt memory, compare-boundary bits steer
// control flow, sign bits flip magnitudes, and the rest is low-influence
// "noise". Campaigns sample each stratum at its own rate and reweight by
// inverse inclusion probability (internal/fault, Options.Stratify), so
// the classification only shapes variance, never correctness.

// InfluenceVersion names the classifier revision. It is folded into
// every influence hash, so cache keys and checkpoint headers stop
// matching when the classification rules change.
const InfluenceVersion = "bitinfluence/v1"

// Stratum identifies one influence class of a result bit. The numeric
// order is the priority order used when a bit qualifies for several
// classes: the highest-valued stratum wins (a sign bit that feeds a
// comparison is Boundary, not Sign; a provably-masked bit is always
// Masked regardless of its uses).
type Stratum uint8

const (
	// StratumNoise is the default for live bits with no recognized
	// high-influence use: mid-mantissa bits, intermediate arithmetic.
	StratumNoise Stratum = iota
	// StratumSign marks the top bit of a result register — flipping it
	// negates two's-complement values and IEEE floats.
	StratumSign
	// StratumBoundary marks bits that steer control flow: operands of
	// comparisons (restricted to the boundary-crossing bits when the
	// comparison is against a constant, via the same icmp analysis the
	// liveness pass uses), branch conditions, and select conditions.
	StratumBoundary
	// StratumAddress marks bits that form memory addresses: pointer-
	// typed results, load/store address operands, gep bases and the
	// live bits of gep indices.
	StratumAddress
	// StratumMasked covers the provably-masked bits from the liveness
	// Report: injection is guaranteed Benign, so sampling them is pure
	// confirmation.
	StratumMasked

	// NumStrata is the number of strata.
	NumStrata = int(StratumMasked) + 1
)

// String returns the stratum's short name (used in plans, reports and
// hashes).
func (s Stratum) String() string {
	switch s {
	case StratumMasked:
		return "masked"
	case StratumNoise:
		return "noise"
	case StratumSign:
		return "sign"
	case StratumBoundary:
		return "boundary"
	case StratumAddress:
		return "address"
	default:
		return fmt.Sprintf("stratum(%d)", uint8(s))
	}
}

// Strata lists every stratum in priority order (lowest first).
func Strata() []Stratum {
	return []Stratum{StratumNoise, StratumSign, StratumBoundary, StratumAddress, StratumMasked}
}

// Influence holds the per-instruction stratum masks of one module. The
// masks of one instruction are disjoint and cover its full result
// width. Immutable after ClassifyInfluence and safe for concurrent
// readers.
type Influence struct {
	masks map[*ir.Instr][NumStrata]uint64
}

// ClassifyInfluence classifies every result bit of m into its influence
// stratum, using r (which must come from Analyze(m)) for the Masked
// stratum. The classification derives from direct uses only — it is a
// variance heuristic, not a soundness claim, and the stratified
// estimator stays unbiased under any classification.
func ClassifyInfluence(m *ir.Module, r *Report) *Influence {
	addr := make(map[*ir.Instr]uint64)
	boundary := make(map[*ir.Instr]uint64)
	// mark accumulates use-derived demand on the defining instruction of
	// v, clipped to its width.
	mark := func(into map[*ir.Instr]uint64, v ir.Value, d uint64) {
		if in, ok := v.(*ir.Instr); ok && in.HasResult() {
			into[in] |= d & widthMask(in.Type.Bits())
		}
	}
	m.Instrs(func(u *ir.Instr) {
		switch u.Op {
		case ir.OpLoad:
			mark(addr, u.Operands[0], all64)
		case ir.OpStore:
			mark(addr, u.Operands[1], all64)
		case ir.OpGep:
			// addr = base + signext(index)*stride: the base is an address
			// and the index bits that survive the stride scaling (see the
			// liveness rule) are address bits too.
			mark(addr, u.Operands[0], all64)
			s := bits.TrailingZeros64(uint64(u.Elem.Bytes()))
			mark(addr, u.Operands[1], widthMask(64-s))
		case ir.OpCondBr:
			mark(boundary, u.Operands[0], 1)
		case ir.OpSelect:
			mark(boundary, u.Operands[0], 1)
		case ir.OpICmp:
			lhs, rhs := u.Operands[0], u.Operands[1]
			lc, lok := constBits(lhs)
			rc, rok := constBits(rhs)
			w := lhs.ValueType().Bits()
			switch {
			case lok == rok:
				// Two variables (or two constants — then mark is a no-op):
				// every bit of either side can decide the comparison.
				mark(boundary, lhs, all64)
				mark(boundary, rhs, all64)
			case rok:
				mark(boundary, lhs, icmpConstLive(u.Pred, rc, w))
			default:
				mark(boundary, rhs, icmpConstLive(swapPred(u.Pred), lc, w))
			}
		}
	})
	inf := &Influence{masks: make(map[*ir.Instr][NumStrata]uint64)}
	m.Instrs(func(in *ir.Instr) {
		if !in.HasResult() {
			return
		}
		w := in.Type.Bits()
		full := widthMask(w)
		var ms [NumStrata]uint64
		ms[StratumMasked] = r.Masked(in)
		ms[StratumAddress] = addr[in]
		if in.Type == ir.Ptr {
			// The value *is* an address.
			ms[StratumAddress] = full
		}
		ms[StratumBoundary] = boundary[in]
		if w > 1 {
			ms[StratumSign] = 1 << uint(w-1)
		}
		// Resolve overlaps by priority (highest stratum wins), then give
		// the remainder to Noise.
		claimed := uint64(0)
		for s := NumStrata - 1; s >= 0; s-- {
			ms[s] = ms[s] & full &^ claimed
			claimed |= ms[s]
		}
		ms[StratumNoise] = full &^ claimed
		inf.masks[in] = ms
	})
	return inf
}

// Stratum returns the influence stratum of one result bit. Instructions
// outside the classified module (or bits outside the result width)
// report StratumNoise.
func (inf *Influence) Stratum(in *ir.Instr, bit int) Stratum {
	ms, ok := inf.masks[in]
	if !ok {
		return StratumNoise
	}
	b := uint64(1) << uint(bit)
	for s := NumStrata - 1; s >= 0; s-- {
		if ms[s]&b != 0 {
			return Stratum(s)
		}
	}
	return StratumNoise
}

// Masks returns the disjoint per-stratum masks of in's result register.
func (inf *Influence) Masks(in *ir.Instr) [NumStrata]uint64 {
	return inf.masks[in]
}

// FuncHash content-addresses one function's stratum tables: the hash of
// InfluenceVersion plus every (instruction ID, per-stratum masks) tuple
// in ID order.
func (inf *Influence) FuncHash(fn *ir.Func) uint64 {
	var sb strings.Builder
	sb.WriteString(InfluenceVersion)
	sb.WriteByte('|')
	sb.WriteString(fn.Name)
	fn.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			ms := inf.masks[in]
			fmt.Fprintf(&sb, "|%d", in.ID)
			for s := 0; s < NumStrata; s++ {
				fmt.Fprintf(&sb, ":%x", ms[s])
			}
		}
	})
	return hashutil.String(sb.String())
}

// ModuleHash folds FuncHash over every function of m in definition
// order — the influence analogue of Report.ModuleHash.
func (inf *Influence) ModuleHash(m *ir.Module) uint64 {
	var sb strings.Builder
	for _, fn := range m.Funcs {
		fmt.Fprintf(&sb, "%x|", inf.FuncHash(fn))
	}
	return hashutil.String(sb.String())
}

// StratumStats counts the result bits of each stratum across a module.
type StratumStats struct {
	// Bits holds the per-stratum bit counts.
	Bits [NumStrata]int
	// Total is the total result-register bit count.
	Total int
}

// Fraction returns stratum s's share of all surveyed bits.
func (st StratumStats) Fraction(s Stratum) float64 {
	if st.Total == 0 {
		return 0
	}
	return float64(st.Bits[s]) / float64(st.Total)
}

// ModuleStats surveys every result-defining instruction of m.
func (inf *Influence) ModuleStats(m *ir.Module) StratumStats {
	var st StratumStats
	m.Instrs(func(in *ir.Instr) {
		if !in.HasResult() {
			return
		}
		ms := inf.masks[in]
		for s := 0; s < NumStrata; s++ {
			st.Bits[s] += bits.OnesCount64(ms[s])
		}
		st.Total += in.Type.Bits()
	})
	return st
}

// FuncStats surveys one function's result-defining instructions — the
// per-function analogue of ModuleStats, used by compositional adaptive
// campaigns to scope pilot evidence to the section being sampled.
func (inf *Influence) FuncStats(fn *ir.Func) StratumStats {
	var st StratumStats
	fn.Instrs(func(in *ir.Instr) {
		if !in.HasResult() {
			return
		}
		ms := inf.masks[in]
		for s := 0; s < NumStrata; s++ {
			st.Bits[s] += bits.OnesCount64(ms[s])
		}
		st.Total += in.Type.Bits()
	})
	return st
}

// Plan assigns each stratum its sampling rate: the probability that a
// drawn trial targeting a bit of that stratum is actually executed.
// Rates must lie in (0, 1] — a zero rate would make the inverse-
// probability weight undefined and the estimator biased.
type Plan struct {
	// Rates holds the per-stratum inclusion probabilities, indexed by
	// Stratum.
	Rates [NumStrata]float64
}

// DefaultMaskedRate is the masked-stratum inclusion rate of the standard
// static plan: one confirmation trial in twenty.
const DefaultMaskedRate = 0.05

// DefaultPlan is the standard stratification: run every live stratum at
// rate 1 and keep only a confirmation sliver of the provably-masked bits
// (DefaultMaskedRate, 1/20). Thinning a stratum whose SDC rate is nonzero
// trades executed trials for variance (each surviving hit carries weight
// 1/q and Horvitz-Thompson variance w(w−1)), and measurements across the
// workload set show the live "noise" bits carry enough SDC mass that
// thinning them widens the interval at equal executed trials. The masked
// stratum is the opposite: the liveness oracle guarantees those bits
// Benign, so their hits contribute zero thinning variance and the
// effective sample size stays at the full slot count — a pure CI win.
// The sliver that still executes (rather than rate 0, which Validate
// forbids anyway) keeps the estimator unbiased even if the oracle were
// wrong, and doubles as a live cross-check on it. Custom plans can thin
// noise (or sign/boundary/address) when prior knowledge says their SDC
// mass is low.
func DefaultPlan() Plan {
	return MaskedRatePlan(DefaultMaskedRate)
}

// MaskedRatePlan is DefaultPlan with the masked-stratum sliver set to
// rate: live strata run at 1, provably-masked bits at rate. The rate is
// folded into Plan.Hash like any other, so checkpoints and caches fence
// differently-thinned campaigns apart. Callers must Validate (rate must
// lie in (0, 1]); the CLIs reject out-of-range -stratify-masked-rate
// values before a campaign starts.
func MaskedRatePlan(rate float64) Plan {
	var p Plan
	p.Rates[StratumMasked] = rate
	p.Rates[StratumNoise] = 1
	p.Rates[StratumSign] = 1
	p.Rates[StratumBoundary] = 1
	p.Rates[StratumAddress] = 1
	return p
}

// UniformPlan runs every stratum at rate 1 — no thinning at all. It is
// the pilot phase of adaptive campaigns: every drawn slot executes, so
// per-stratum outcome tallies estimate each stratum's SDC rate without
// any reweighting.
func UniformPlan() Plan {
	var p Plan
	for s := 0; s < NumStrata; s++ {
		p.Rates[s] = 1
	}
	return p
}

// Validate checks every rate lies in (0, 1].
func (p Plan) Validate() error {
	for s := 0; s < NumStrata; s++ {
		r := p.Rates[s]
		if !(r > 0) || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("bitlive: stratum %s rate %v outside (0, 1]", Stratum(s), r)
		}
	}
	return nil
}

// Rate returns the inclusion probability of stratum s.
func (p Plan) Rate(s Stratum) float64 { return p.Rates[s] }

// Hash content-addresses the plan (InfluenceVersion plus the exact bit
// patterns of every rate).
func (p Plan) Hash() uint64 {
	var sb strings.Builder
	sb.WriteString(InfluenceVersion)
	for s := 0; s < NumStrata; s++ {
		fmt.Fprintf(&sb, "|%s:%x", Stratum(s), math.Float64bits(p.Rates[s]))
	}
	return hashutil.String(sb.String())
}

// String renders the plan compactly (for CLI summaries and logs).
func (p Plan) String() string {
	var sb strings.Builder
	for i, s := range Strata() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%g", s, p.Rates[s])
	}
	return sb.String()
}
