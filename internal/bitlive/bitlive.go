// Package bitlive implements a static bit-level liveness analysis over
// internal/ir — the BEC-style pruning pass (Ko & Burgstaller, PAPERS.md;
// DESIGN.md §5i, ANALYSIS.md): it walks each function backward from the
// observable sinks (stores, prints, branches, returns, detector checks)
// and classifies every (instruction, bit) pair of a result register as
// possibly-live or provably-masked. A bit is provably masked when no
// dataflow path can carry its corruption to program output, a trap, a
// hang, or a detector — so flipping it is guaranteed Benign, and
// fault-injection campaigns (internal/fault, Options.PruneBits) can skip
// executing such trials while recording their deterministic outcome.
//
// The mask sources are exactly the ones the instruction semantics in
// internal/interp justify: truncation (Trunc, register writes, narrow
// store elements), zero/sign-extension, comparisons against constants
// (only the bits that can move the result across the constant matter —
// a signed `v < 0` keeps just the sign bit alive), shift and bitwise
// mask constants (And/Or/Shl/LShr/AShr with immediate operands map
// demanded bits exactly; variable shift amounts reduce modulo the
// register width, so only the low log2(width) amount bits are live),
// and dead high ranges (Gep indices scaled by a power-of-two element
// stride lose their top bits to the 2^64 wraparound; srem/urem by a
// power of two depend only on the low bits and the sign).
//
// Everything the analysis cannot prove is conservatively live: float
// arithmetic, intrinsics and FP casts propagate full-width demand (a
// 1-ulp flip can cross a decimal rounding boundary, so even reduced-
// precision Print output is not soundly prunable), addresses are fully
// live (an out-of-bounds trap is observable), and division by a
// non-constant keeps the divisor fully live (the zero check traps).
// Soundness — every bit classified masked really yields Benign under
// injection — is enforced by the exhaustive-injection oracle in
// internal/crosscheck (PruneSound) over all paper kernels and by the
// FuzzBitliveSound target over random irgen programs.
package bitlive

import (
	"fmt"
	"math/bits"
	"strings"

	"trident/internal/hashutil"
	"trident/internal/ir"
)

// Version names the analysis and its revision. It is folded into every
// per-function mask-table hash (FuncHash), so campaign-cache entries
// keyed on pruned campaigns stop matching whenever the transfer
// functions change — the same contract fault.ModelVersion gives the
// injection semantics.
const Version = "bitlive/v1"

// Report holds the analysis result for one module: a live-bit mask per
// result-defining instruction. Bits outside the mask are provably
// masked. A Report is immutable after Analyze and safe for concurrent
// readers.
type Report struct {
	live map[*ir.Instr]uint64
}

// Analyze runs the backward bit-liveness fixpoint over every function
// of m and returns the per-instruction live masks. The analysis is a
// whole-module pass: liveness flows interprocedurally through call
// arguments (formal-parameter demand) and return values (the union of
// every call site's result demand; the entry function's own return
// value is discarded by the interpreter and contributes nothing).
func Analyze(m *ir.Module) *Report {
	a := &analyzer{
		live:      make(map[*ir.Instr]uint64),
		paramLive: make(map[*ir.Param]uint64),
		retLive:   make(map[*ir.Func]uint64),
	}
	// Iterate to a fixpoint. Masks only grow and every transfer function
	// is monotone, so the sweep count is bounded by the longest demand
	// chain; reverse program order makes the common case converge in two
	// or three sweeps.
	for {
		a.changed = false
		for _, fn := range m.Funcs {
			for bi := len(fn.Blocks) - 1; bi >= 0; bi-- {
				blk := fn.Blocks[bi]
				for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
					a.visit(blk.Instrs[ii])
				}
			}
		}
		if !a.changed {
			break
		}
	}
	return &Report{live: a.live}
}

// Live returns the live-bit mask of in's result register, restricted to
// the result type's width. Instructions without a result return 0.
func (r *Report) Live(in *ir.Instr) uint64 {
	if !in.HasResult() {
		return 0
	}
	return r.live[in] & widthMask(in.Type.Bits())
}

// Masked returns the provably-masked bits of in's result register: the
// complement of Live within the result width.
func (r *Report) Masked(in *ir.Instr) uint64 {
	if !in.HasResult() {
		return 0
	}
	return widthMask(in.Type.Bits()) &^ r.live[in]
}

// MaskedBit reports whether flipping the given bit of in's result is
// provably masked (guaranteed Benign).
func (r *Report) MaskedBit(in *ir.Instr, bit int) bool {
	return r.Masked(in)&(1<<uint(bit)) != 0
}

// InstrMask pairs one instruction with its classified masks, for
// reporting and the worked examples in ANALYSIS.md.
type InstrMask struct {
	Instr  *ir.Instr
	Live   uint64
	Masked uint64
}

// Masks returns the mask table of one function in instruction-ID order,
// covering every result-defining instruction.
func (r *Report) Masks(fn *ir.Func) []InstrMask {
	var out []InstrMask
	fn.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			out = append(out, InstrMask{Instr: in, Live: r.Live(in), Masked: r.Masked(in)})
		}
	})
	return out
}

// FuncHash returns the content address of one function's mask table:
// the hash of Version plus every (instruction ID, live mask) pair in ID
// order. Campaign caches key pruned sections on it so a change to the
// analysis (or to the function body, which reassigns masks) can never
// replay a profile computed under different pruning decisions.
func (r *Report) FuncHash(fn *ir.Func) uint64 {
	var sb strings.Builder
	sb.WriteString(Version)
	sb.WriteByte('|')
	sb.WriteString(fn.Name)
	fn.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			fmt.Fprintf(&sb, "|%d:%x", in.ID, r.Live(in))
		}
	})
	return hashutil.String(sb.String())
}

// ModuleHash folds FuncHash over every function of m in definition
// order — the whole-module analogue the server's job-result cache keys
// pruned campaigns on.
func (r *Report) ModuleHash(m *ir.Module) uint64 {
	var sb strings.Builder
	for _, fn := range m.Funcs {
		fmt.Fprintf(&sb, "%x|", r.FuncHash(fn))
	}
	return hashutil.String(sb.String())
}

// Stats summarizes the static pruning surface of a set of instructions:
// how many result bits exist and how many are provably masked.
type Stats struct {
	// Instrs is the number of result-defining instructions surveyed.
	Instrs int
	// Bits is the total result-register bit count across them.
	Bits int
	// MaskedBits is how many of those bits are provably masked.
	MaskedBits int
}

// Fraction returns the masked share of the surveyed bits.
func (s Stats) Fraction() float64 {
	if s.Bits == 0 {
		return 0
	}
	return float64(s.MaskedBits) / float64(s.Bits)
}

// ModuleStats surveys every result-defining instruction of m.
func (r *Report) ModuleStats(m *ir.Module) Stats {
	var s Stats
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			s.Instrs++
			s.Bits += in.Type.Bits()
			s.MaskedBits += bits.OnesCount64(r.Masked(in))
		}
	})
	return s
}

// analyzer carries the fixpoint state: live masks per instruction
// result, per formal parameter, and per function return value.
type analyzer struct {
	live      map[*ir.Instr]uint64
	paramLive map[*ir.Param]uint64
	retLive   map[*ir.Func]uint64
	changed   bool
}

const all64 = ^uint64(0)

// widthMask returns the mask covering the low w bits.
func widthMask(w int) uint64 {
	if w >= 64 {
		return all64
	}
	return (1 << uint(w)) - 1
}

// down returns the downward closure of L: bit j is set iff L has any
// bit at or above j. It is the demand an addition's carry chain (or any
// low-to-high propagation) imposes on its operands.
func down(L uint64) uint64 {
	if L == 0 {
		return 0
	}
	n := bits.Len64(L)
	if n >= 64 {
		return all64
	}
	return (1 << uint(n)) - 1
}

// upFrom returns the upward closure of L within width w: bit j is set
// iff L has any bit at or below j — the demand of a variable
// right-shift, where an operand bit can only move down.
func upFrom(L uint64, w int) uint64 {
	if L == 0 {
		return 0
	}
	return widthMask(w) &^ ((1 << uint(bits.TrailingZeros64(L))) - 1)
}

// sel gates a demand on the result being live at all: a dead result of
// a non-trapping instruction demands nothing.
func sel(L, d uint64) uint64 {
	if L == 0 {
		return 0
	}
	return d
}

// demand accumulates demanded bits into the defining value's live mask.
// Constants and globals absorb demand (they are not injection targets);
// instruction results and formal parameters record it, truncated to the
// value's register width.
func (a *analyzer) demand(v ir.Value, d uint64) {
	if d == 0 {
		return
	}
	switch x := v.(type) {
	case *ir.Instr:
		d &= widthMask(x.Type.Bits())
		if old := a.live[x]; old|d != old {
			a.live[x] = old | d
			a.changed = true
		}
	case *ir.Param:
		d &= widthMask(x.Type.Bits())
		if old := a.paramLive[x]; old|d != old {
			a.paramLive[x] = old | d
			a.changed = true
		}
	}
}

// constBits extracts a constant operand's truncated bit pattern.
func constBits(v ir.Value) (uint64, bool) {
	if c, ok := v.(*ir.Const); ok {
		return ir.TruncateToWidth(c.Bits, c.Type.Bits()), true
	}
	return 0, false
}

// visit applies one instruction's backward transfer function: from the
// liveness of its own result (or its sink semantics) it derives the
// demand on each operand. Every rule is justified by the corresponding
// evaluation in internal/interp — see DESIGN.md §5i for the
// per-channel soundness argument.
func (a *analyzer) visit(u *ir.Instr) {
	switch u.Op {
	case ir.OpStore:
		// The stored value escapes to memory at the element width; the
		// address is fully live (an out-of-bounds address traps).
		a.demand(u.Operands[0], widthMask(u.Elem.Bits()))
		a.demand(u.Operands[1], all64)
		return
	case ir.OpLoad:
		// Loaded bits come from memory, which pruned corruption can never
		// reach (store values are demanded at full element width); only
		// the address flows backward.
		a.demand(u.Operands[0], all64)
		return
	case ir.OpPrint:
		// Output renders the operand at full width. FormatG2 rounding is
		// deliberately NOT modeled: a 1-ulp mantissa flip can cross a
		// decimal rounding boundary, so reduced-precision output still
		// demands every bit.
		a.demand(u.Operands[0], widthMask(u.Operands[0].ValueType().Bits()))
		return
	case ir.OpCheck:
		// The detector compares raw registers; any differing bit trips it
		// (Detected, observable).
		a.demand(u.Operands[0], widthMask(u.Operands[0].ValueType().Bits()))
		a.demand(u.Operands[1], widthMask(u.Operands[1].ValueType().Bits()))
		return
	case ir.OpCondBr:
		// The interpreter branches on cond&1.
		a.demand(u.Operands[0], 1)
		return
	case ir.OpBr:
		return
	case ir.OpRet:
		// A return value is only as live as the call sites that consume
		// it. The entry function's return value is discarded by the
		// interpreter, so with no call sites the demand stays zero.
		if len(u.Operands) == 1 {
			a.demand(u.Operands[0], a.retLive[u.Block.Fn])
		}
		return
	case ir.OpCall:
		// The call's own result liveness feeds the callee's return value;
		// each argument carries the callee's accumulated formal-parameter
		// demand. An unknown callee would be conservatively full, but the
		// verifier guarantees Callee is resolved.
		if u.Callee != nil {
			if u.HasResult() {
				if L := a.live[u]; L != 0 {
					if old := a.retLive[u.Callee]; old|L != old {
						a.retLive[u.Callee] = old | L
						a.changed = true
					}
				}
			}
			for i, arg := range u.Operands {
				if i < len(u.Callee.Params) {
					a.demand(arg, a.paramLive[u.Callee.Params[i]])
				} else {
					a.demand(arg, all64)
				}
			}
		} else {
			for _, arg := range u.Operands {
				a.demand(arg, all64)
			}
		}
		return
	case ir.OpAlloca:
		return
	}

	// Everything below defines a register and traps at most through an
	// operand the rules keep fully live.
	L := a.live[u] & widthMask(u.Type.Bits())
	switch u.Op {
	case ir.OpPhi:
		for _, v := range u.Operands {
			a.demand(v, L)
		}
	case ir.OpSelect:
		// The interpreter selects on cond&1; the picked value passes
		// through unchanged.
		a.demand(u.Operands[0], sel(L, 1))
		a.demand(u.Operands[1], L)
		a.demand(u.Operands[2], L)
	case ir.OpGep:
		// addr = base + signext(index)*ElemBytes (mod 2^64). With a
		// power-of-two stride 2^s, index bits at or above 64-s multiply
		// off the top of the address and are dead; the sign extension of
		// a narrower index only ever reproduces bits that are themselves
		// in that dead range. The base is an address: fully live.
		if L != 0 {
			a.demand(u.Operands[0], all64)
			s := bits.TrailingZeros64(uint64(u.Elem.Bytes()))
			a.demand(u.Operands[1], widthMask(64-s))
		}
	case ir.OpICmp:
		a.visitICmp(u, L)
	case ir.OpFCmp:
		a.demand(u.Operands[0], sel(L, all64))
		a.demand(u.Operands[1], sel(L, all64))
	case ir.OpTrunc, ir.OpBitcast:
		// Trunc keeps the low result-width bits (high source bits dead);
		// Bitcast maps bits identically.
		a.demand(u.Operands[0], L)
	case ir.OpZExt:
		a.demand(u.Operands[0], L&widthMask(u.Operands[0].ValueType().Bits()))
	case ir.OpSExt:
		srcW := u.Operands[0].ValueType().Bits()
		d := L & widthMask(srcW-1)
		if L>>uint(srcW-1) != 0 {
			// Any demanded bit at or above the source sign position is a
			// copy of the sign bit.
			d |= 1 << uint(srcW-1)
		}
		a.demand(u.Operands[0], d)
	case ir.OpFPTrunc, ir.OpFPExt, ir.OpFPToSI, ir.OpSIToFP:
		// Float conversions are conservatively all-or-nothing; none of
		// them traps (FPToSI clamps), so a dead result kills the demand.
		a.demand(u.Operands[0], sel(L, all64))
	case ir.OpIntrinsic:
		// libm intrinsics never trap; conservative full demand when live.
		for _, arg := range u.Operands {
			a.demand(arg, sel(L, all64))
		}
	default:
		if u.Op.IsBinary() {
			a.visitBinary(u, L)
		} else {
			// Unknown opcode: conservatively demand everything.
			for _, v := range u.Operands {
				a.demand(v, all64)
			}
		}
	}
}

// visitBinary applies the two-operand transfer functions. The exact
// rules for constant operands are where most pruning comes from; a
// variable divisor stays fully live because the zero check traps.
func (a *analyzer) visitBinary(u *ir.Instr, L uint64) {
	w := u.Type.Bits()
	full := widthMask(w)
	lhs, rhs := u.Operands[0], u.Operands[1]
	lc, lok := constBits(lhs)
	rc, rok := constBits(rhs)
	var dl, dr uint64
	switch u.Op {
	case ir.OpAdd, ir.OpSub:
		// Carries (borrows) propagate strictly upward: operand bit j can
		// only disturb result bits >= j.
		dl, dr = down(L), down(L)
	case ir.OpMul:
		// v * 2^t*odd: operand bit j first disturbs result bit j+t.
		d := down(L)
		dl, dr = d, d
		if rok {
			dl = mulConstDemand(d, rc)
		} else if lok {
			dr = mulConstDemand(d, lc)
		}
	case ir.OpUDiv:
		dl, dr = sel(L, full), full
		if rok {
			switch {
			case rc == 0:
				// Divide-by-constant-zero traps unconditionally; a golden
				// run that completed never executed it. Conservative full.
				dl = full
			case rc&(rc-1) == 0:
				// Power of two: exactly a logical right shift.
				dl = (L << uint(bits.TrailingZeros64(rc))) & full
			}
		}
	case ir.OpURem:
		dl, dr = sel(L, full), full
		if rok {
			switch {
			case rc == 0:
				dl = full
			case rc&(rc-1) == 0:
				// v % 2^s == v & (2^s - 1).
				dl = L & (rc - 1)
			}
		}
	case ir.OpSDiv:
		// Signed division rounds toward zero; no simple bit rule even for
		// power-of-two divisors. Constant nonzero divisors cannot trap.
		dl, dr = sel(L, full), full
	case ir.OpSRem:
		dl, dr = sel(L, full), full
		if rok {
			d0 := ir.SignExtend(rc, w)
			abs := uint64(d0)
			if d0 < 0 {
				abs = uint64(-d0)
			}
			switch {
			case d0 == 0:
				dl = full
			case abs == 1:
				// v % ±1 is always 0.
				dl = 0
			case abs&(abs-1) == 0:
				// v % ±2^s (Go truncated semantics) depends only on the low
				// s bits and the sign of v.
				s := bits.TrailingZeros64(abs)
				dl = sel(L, widthMask(s)|1<<uint(w-1))
			}
		}
	case ir.OpAnd:
		dl, dr = L, L
		if rok {
			dl = L & rc
		}
		if lok {
			dr = L & lc
		}
	case ir.OpOr:
		dl, dr = L, L
		if rok {
			dl = L &^ rc
		}
		if lok {
			dr = L &^ lc
		}
	case ir.OpXor:
		dl, dr = L, L
	case ir.OpShl:
		if rok {
			// The interpreter reduces shift amounts modulo the width, so a
			// constant amount of exactly w is the identity shift.
			dl, dr = L>>(uint(rc)%uint(w)), 0
		} else {
			dl, dr = down(L), sel(L, shiftAmountMask(w))
		}
	case ir.OpLShr:
		if rok {
			dl, dr = (L<<(uint(rc)%uint(w)))&full, 0
		} else {
			dl, dr = upFrom(L, w), sel(L, shiftAmountMask(w))
		}
	case ir.OpAShr:
		if rok {
			s := uint(rc) % uint(w)
			dl = (L << s) & full
			if L>>uint(uint(w-1)-s) != 0 {
				// Result bits at or above w-1-s replicate the sign bit.
				dl |= 1 << uint(w-1)
			}
			dr = 0
		} else {
			dl, dr = sel(L, full), sel(L, shiftAmountMask(w))
		}
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		// IEEE arithmetic never traps (±Inf/NaN instead); conservative
		// full demand when the result is live.
		dl, dr = sel(L, full), sel(L, full)
	default:
		dl, dr = all64, all64
	}
	a.demand(lhs, dl)
	a.demand(rhs, dr)
}

// mulConstDemand is the lhs demand of v*c given the result demand d
// (already down-closed): the factor's trailing zeros shift the operand's
// influence up, and multiplying by zero kills it entirely.
func mulConstDemand(d, c uint64) uint64 {
	if c == 0 {
		return 0
	}
	return d >> uint(bits.TrailingZeros64(c))
}

// shiftAmountMask is the live mask of a variable shift-amount operand:
// amounts reduce modulo the width, so only the low log2(w) bits matter
// (none at all for width 1).
func shiftAmountMask(w int) uint64 {
	return widthMask(bits.Len(uint(w)) - 1)
}

// visitICmp handles integer comparisons. Two variable operands are
// fully live; against a constant, only the bits that can carry the
// value across the constant's boundary matter. All the predicate rules
// reduce to one primitive — live bits of `v <u c` are the bits at or
// above ctz(c) — via the complement (uge/ugt), the successor
// (ule ≡ ult c+1), and the sign-bit XOR that maps signed order onto
// unsigned order. Equality keeps every bit (any flip can create or
// destroy a match).
func (a *analyzer) visitICmp(u *ir.Instr, L uint64) {
	lhs, rhs := u.Operands[0], u.Operands[1]
	lc, lok := constBits(lhs)
	rc, rok := constBits(rhs)
	w := lhs.ValueType().Bits()
	if lok == rok {
		// Both constant (nothing to demand) or both variable (full).
		a.demand(lhs, sel(L, all64))
		a.demand(rhs, sel(L, all64))
		return
	}
	pred, c, varSide := u.Pred, rc, lhs
	if lok {
		// c PRED v  ≡  v PRED' c with the order reversed.
		pred, c, varSide = swapPred(u.Pred), lc, rhs
	}
	a.demand(varSide, sel(L, icmpConstLive(pred, c, w)))
}

// swapPred maps PRED to PRED' such that a PRED b ≡ b PRED' a.
func swapPred(p ir.Predicate) ir.Predicate {
	switch p {
	case ir.PredSLT:
		return ir.PredSGT
	case ir.PredSGT:
		return ir.PredSLT
	case ir.PredSLE:
		return ir.PredSGE
	case ir.PredSGE:
		return ir.PredSLE
	case ir.PredULT:
		return ir.PredUGT
	case ir.PredUGT:
		return ir.PredULT
	case ir.PredULE:
		return ir.PredUGE
	case ir.PredUGE:
		return ir.PredULE
	default:
		return p
	}
}

// icmpConstLive returns the live bits of the variable v in `v pred c`
// at width w. The primitive: v <u c compares the values of the bits at
// or above ctz(c) only — flipping a lower bit moves v by less than the
// alignment of c and cannot cross it (bit j of v is dead iff 2^(j+1)
// divides c). Signed predicates reduce to unsigned ones by XORing the
// sign bit into both sides, which is order-preserving.
func icmpConstLive(pred ir.Predicate, c uint64, w int) uint64 {
	full := widthMask(w)
	sign := uint64(1) << uint(w-1)
	ult := func(t uint64) uint64 {
		if t == 0 {
			return 0 // v <u 0 is constantly false
		}
		return full &^ widthMask(bits.TrailingZeros64(t))
	}
	switch pred {
	case ir.PredEQ, ir.PredNE:
		return full
	case ir.PredULT, ir.PredUGE:
		return ult(c)
	case ir.PredULE, ir.PredUGT:
		if c == full {
			return 0 // v <=u max is constantly true
		}
		return ult(c + 1)
	case ir.PredSLT, ir.PredSGE:
		return ult((c ^ sign) & full)
	case ir.PredSLE, ir.PredSGT:
		if c == full>>1 {
			return 0 // v <=s INT_MAX is constantly true
		}
		return ult(((c + 1) ^ sign) & full)
	default:
		return full
	}
}
