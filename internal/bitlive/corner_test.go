package bitlive_test

import (
	"testing"

	"trident/internal/bitlive"
	"trident/internal/ir"
)

// harness builds a one-function module around the instruction chain
// emitted by mk, analyzes it, and returns the report. mk receives a
// builder positioned in the entry block plus a non-constant i64 source
// value (a load, so the analysis cannot fold it) and must emit its own
// sinks; the harness terminates the block.
func harness(t *testing.T, mk func(b *ir.Builder, x *ir.Instr)) *bitlive.Report {
	t.Helper()
	m := ir.NewModule("corner")
	g := m.AddGlobal("g", ir.I64, 1, []uint64{0x5A})
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	x := b.Load(ir.I64, b.Gep(ir.I64, g, ir.ConstInt(ir.I64, 0)))
	mk(b, x)
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return bitlive.Analyze(m)
}

func checkLive(t *testing.T, rep *bitlive.Report, in *ir.Instr, want uint64, what string) {
	t.Helper()
	if got := rep.Live(in); got != want {
		t.Errorf("%s: live %#x, want %#x (masked %#x)", what, got, want, rep.Masked(in))
	}
}

// TestShiftByWidthCorners pins the modulo-width reduction of shift
// amounts: a constant amount of exactly the register width is the
// identity shift (not zero, not undefined), amounts above the width
// wrap, and variable amounts keep only their low log2(width) bits live.
func TestShiftByWidthCorners(t *testing.T) {
	harnessCheck := func(name string, mk func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64)) {
		t.Run(name, func(t *testing.T) {
			var in *ir.Instr
			var want uint64
			rep := harness(t, func(b *ir.Builder, x *ir.Instr) {
				in, want = mk(b, x)
			})
			checkLive(t, rep, in, want, name)
		})
	}
	harnessCheck("shl-by-64-is-identity", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
		b.Print(b.Shl(x, ir.ConstInt(ir.I64, 64)))
		return x, ^uint64(0)
	})
	harnessCheck("lshr-by-64-is-identity", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
		b.Print(b.LShr(x, ir.ConstInt(ir.I64, 64)))
		return x, ^uint64(0)
	})
	harnessCheck("shl-by-68-wraps-to-4", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
		b.Print(b.Shl(x, ir.ConstInt(ir.I64, 68)))
		return x, ^uint64(0) >> 4 // top 4 bits shift off the end
	})
	harnessCheck("ashr-by-width-keeps-sign-demand", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
		b.Print(b.AShr(x, ir.ConstInt(ir.I64, 64)))
		return x, ^uint64(0)
	})
	harnessCheck("variable-amount-low-6-bits", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
		amt := b.And(x, ir.ConstInt(ir.I64, 0xFF)) // non-const amount
		b.Print(b.Shl(ir.ConstInt(ir.I64, 1), amt))
		// Of the amount register, only bits 0..5 reach the modulo-64
		// reduction; the And above would allow 8, the shift keeps 6.
		return amt, 0x3F
	})
}

// TestICmpConstPartialOverlap pins the constant-comparison rule: in
// `v <u c`, flipping bit j of v moves it by 2^j, which cannot cross a
// boundary c that 2^(j+1) divides — so exactly the low ctz(c) bits are
// masked, and predicates reduce to that primitive through complements,
// successors, operand swaps, and the signed-to-unsigned sign-bit XOR.
func TestICmpConstPartialOverlap(t *testing.T) {
	cases := []struct {
		name string
		pred ir.Predicate
		c    int64
		swap bool // constant on the left-hand side
		want uint64
	}{
		{"ult-8-masks-low-3", ir.PredULT, 8, false, ^uint64(0x7)},
		{"ult-12-masks-low-2", ir.PredULT, 12, false, ^uint64(0x3)},
		{"ult-1-keeps-all", ir.PredULT, 1, false, ^uint64(0)},
		{"ule-7-is-ult-8", ir.PredULE, 7, false, ^uint64(0x7)},
		{"uge-16-masks-low-4", ir.PredUGE, 16, false, ^uint64(0xF)},
		{"ugt-on-left-swaps", ir.PredUGT, 8, true, ^uint64(0x7)}, // 8 >u v ≡ v <u 8
		{"eq-keeps-all", ir.PredEQ, 8, false, ^uint64(0)},
		{"slt-0-keeps-sign-only", ir.PredSLT, 0, false, 1 << 63},
		{"sge-0-keeps-sign-only", ir.PredSGE, 0, false, 1 << 63},
		{"sle-intmax-constant-true", ir.PredSLE, 0x7FFFFFFFFFFFFFFF, false, 0},
		{"slt-min-constant-false", ir.PredSLT, -0x8000000000000000, false, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var x *ir.Instr
			rep := harness(t, func(b *ir.Builder, src *ir.Instr) {
				x = src
				c := ir.ConstInt(ir.I64, tc.c)
				if tc.swap {
					b.Print(b.ICmp(tc.pred, c, x))
				} else {
					b.Print(b.ICmp(tc.pred, x, c))
				}
			})
			checkLive(t, rep, x, tc.want, tc.name)
		})
	}
}

// TestSExtAndNegativeConstCorners pins sign-extension demand and the
// signed-remainder rule for negative constants, whose IR encoding is a
// sign-extended two's-complement pattern.
func TestSExtAndNegativeConstCorners(t *testing.T) {
	t.Run("srem-by-minus-16", func(t *testing.T) {
		var x *ir.Instr
		rep := harness(t, func(b *ir.Builder, src *ir.Instr) {
			x = src
			// v % -16 (truncated semantics) depends on v's low 4 bits and
			// its sign, exactly like v % 16.
			b.Print(b.SRem(x, ir.ConstInt(ir.I64, -16)))
		})
		checkLive(t, rep, x, 0x800000000000000F, "srem-by-minus-16")
	})
	t.Run("srem-by-minus-1-is-constant-zero", func(t *testing.T) {
		var x *ir.Instr
		rep := harness(t, func(b *ir.Builder, src *ir.Instr) {
			x = src
			b.Print(b.SRem(x, ir.ConstInt(ir.I64, -1)))
		})
		checkLive(t, rep, x, 0, "srem-by-minus-1")
	})
	t.Run("sext-high-demand-folds-to-sign-bit", func(t *testing.T) {
		var narrow *ir.Instr
		rep := harness(t, func(b *ir.Builder, src *ir.Instr) {
			narrow = b.Trunc(src, ir.I8)
			s := b.SExt(narrow, ir.I64)
			// Demand only bit 40 of the extension: for a negative i8 value
			// that bit is a copy of the sign, so exactly bit 7 of the
			// source must stay live.
			b.Print(b.And(s, ir.ConstInt(ir.I64, 1<<40)))
		})
		checkLive(t, rep, narrow, 0x80, "sext-high-demand")
	})
	t.Run("sext-low-demand-passes-through", func(t *testing.T) {
		var narrow *ir.Instr
		rep := harness(t, func(b *ir.Builder, src *ir.Instr) {
			narrow = b.Trunc(src, ir.I8)
			s := b.SExt(narrow, ir.I64)
			b.Print(b.And(s, ir.ConstInt(ir.I64, 0x3F)))
		})
		checkLive(t, rep, narrow, 0x3F, "sext-low-demand")
	})
	t.Run("mul-by-negative-const-has-no-trailing-zeros", func(t *testing.T) {
		var x *ir.Instr
		rep := harness(t, func(b *ir.Builder, src *ir.Instr) {
			x = src
			// -penalty-style scaling (nw.go): -4 = ...11100, ctz 2: the
			// operand's influence starts 2 bits up even for negatives.
			y := b.Mul(x, ir.ConstInt(ir.I64, -4))
			b.Print(b.Trunc(y, ir.I8))
		})
		checkLive(t, rep, x, 0x3F, "mul-by-minus-4")
	})
}
