package bitlive

import (
	"fmt"
	"math"
	"sort"
)

// This file derives adaptive stratification plans from pilot-phase
// evidence — the Neyman-allocation half of adaptive campaigns
// (ANALYSIS.md, "Adaptive (Neyman) allocation"). A pilot runs the
// static default shape (live strata uniformly, the provably-masked
// stratum at the floor), tallies per-stratum SDC outcomes, and
// NeymanPlan turns those tallies into inclusion rates for the main
// phase: strata whose SDC mass is provably light are thinned hard,
// strata that carry the variance keep executing. The derivation is pure
// deterministic float math over the tallies, so the same pilot always
// yields the same plan (and the same Plan.Hash) on every shard, resume
// and replay.

// DefaultRateFloor is the lowest inclusion rate NeymanPlan will assign:
// even a stratum whose pilot saw zero SDCs keeps executing one trial in
// twenty. The floor bounds the Horvitz-Thompson weight (1/floor = 20)
// and with it the variance penalty each hit the pilot missed can carry,
// and it doubles as a live cross-check on the pilot's verdict — exactly
// the role DefaultMaskedRate plays in the static plan.
const DefaultRateFloor = 0.05

// StratumPilot is one stratum's pilot-phase evidence.
type StratumPilot struct {
	// Bits is the stratum's classified result-bit count across the
	// module (ModuleStats); a stratum with zero bits is never drawn.
	Bits int
	// Slots is how many drawn pilot slots landed in the stratum —
	// counted before pilot thinning, so Slots/ΣSlots estimates the
	// stratum's share of the slot stream. Zero everywhere means the
	// caller predates pilot thinning; shares then fall back to Trials.
	Slots int
	// Trials is the number of executed, classified pilot trials that
	// landed in the stratum.
	Trials int
	// SDC is how many of those trials classified as SDC.
	SDC int
}

// NeymanPlan derives the main-phase inclusion rates from per-stratum
// pilot tallies. The classical Neyman rule allocates samples in
// proportion to stratum size × within-stratum stddev; our campaigns
// implement allocation by Bernoulli thinning of a uniform slot stream
// (each slot already lands in stratum h with probability equal to h's
// population share π_h), so the stratum-size factor is supplied by the
// stream and only the rate q_h is free. The thinned Horvitz-Thompson
// design's variance-cost product at rates q_h = min(1, c·√p_h) is
//
//	f(c) = V(c)·E(c),  V = Σ_h π_h (p_h(1−p_h) + p_h(1−q_h)/q_h),
//	                   E = Σ_h π_h q_h,
//
// the estimator variance times the executed budget — the quantity the
// equal-executed-budget CI shrink measures. The shape q_h ∝ √p_h is
// Neyman's σ-proportional rule in the low-p regime, but the scale c is
// a real degree of freedom: as c → ∞ every live stratum caps at 1 and
// the plan degenerates to the static default shape, so choosing c by
// minimizing f makes "don't thin live strata at all" a candidate the
// derived plan can never lose to in-model. f is piecewise smooth in c
// (breakpoints where a stratum hits the floor or the ceiling) with at
// most one interior stationary point per piece, so the minimum is found
// exactly. ANALYSIS.md carries the full derivation.
//
// The per-stratum SDC rates p_h feeding the optimization are
// Laplace-smoothed pilot fractions (s+1)/(t+2), so a live stratum whose
// small pilot happened to see zero SDCs is not thinned to the floor on
// the strength of absent evidence. The provably-masked stratum keeps
// its raw fraction: the liveness oracle guarantees its hits cannot
// occur, which no finite pilot could establish. Evidence-free corners
// stay conservative:
//
//   - a stratum with zero classified bits is never drawn; its rate is 1
//     so the plan hash does not depend on unobservable strata;
//   - a live stratum with bits but zero executed pilot trials has no
//     evidence — it runs at rate 1 rather than being thinned blind. The
//     provably-masked stratum is the exception: its zero-SDC verdict is
//     the liveness oracle's, not the pilot's, so it keeps the floor
//     even when pilot thinning executed none of its slots;
//   - when no stratum saw any SDC the pilot carries no variance signal
//     at all, and the plan falls back to the static default shape:
//     live strata at 1, the provably-masked stratum at floor.
//
// The returned plan always Validates; the error reports a floor outside
// (0, 1].
func NeymanPlan(pilot [NumStrata]StratumPilot, floor float64) (Plan, error) {
	if floor == 0 {
		floor = DefaultRateFloor
	}
	if !(floor > 0) || floor > 1 || math.IsNaN(floor) {
		return Plan{}, fmt.Errorf("bitlive: rate floor %v outside (0, 1]", floor)
	}
	// Per-stratum model inputs: slot share π (drawn pilot slots where
	// recorded, executed trials otherwise — the pilot is drawn from the
	// same stream the main phase thins, so either share estimates the
	// stratum share), smoothed SDC rate p̃, and σ-shape m = √p̃. A
	// negative m marks an evidence-free stratum, resolved to rate 1.
	var pi, pr, m [NumStrata]float64
	totalSlots, totalTrials, sawSDC := 0, 0, false
	for s := 0; s < NumStrata; s++ {
		t := pilot[s]
		if t.Bits <= 0 {
			m[s] = -1
			continue
		}
		if Stratum(s) != StratumMasked && t.Trials <= 0 {
			// A live stratum without executed pilot trials has no
			// evidence; the provably-masked stratum needs none (the
			// liveness oracle guarantees its hits cannot occur, so a
			// thinned-away pilot leaves its verdict intact).
			m[s] = -1
			continue
		}
		totalSlots += t.Slots
		totalTrials += t.Trials
		sdc := t.SDC
		if sdc < 0 {
			sdc = 0
		} else if sdc > t.Trials {
			sdc = t.Trials
		}
		if sdc > 0 {
			sawSDC = true
		}
		if Stratum(s) == StratumMasked {
			pr[s] = 0
			if t.Trials > 0 {
				pr[s] = float64(sdc) / float64(t.Trials)
			}
		} else {
			pr[s] = float64(sdc+1) / float64(t.Trials+2)
		}
		m[s] = math.Sqrt(pr[s])
	}
	if !sawSDC {
		// No SDC anywhere in the pilot: no variance signal to allocate
		// by. Keep the static default shape — only the provably-masked
		// stratum (whose hits the liveness oracle guarantees cannot
		// occur) is thinned.
		return MaskedRatePlan(floor), nil
	}
	for s := 0; s < NumStrata; s++ {
		if m[s] < 0 {
			continue
		}
		if totalSlots > 0 {
			pi[s] = float64(pilot[s].Slots) / float64(totalSlots)
		} else if totalTrials > 0 {
			pi[s] = float64(pilot[s].Trials) / float64(totalTrials)
		}
	}
	c := bestScale(pi, pr, m, floor)
	var p Plan
	for s := 0; s < NumStrata; s++ {
		if m[s] < 0 {
			p.Rates[s] = 1
			continue
		}
		p.Rates[s] = clampRate(c*m[s], floor)
	}
	return p, nil
}

// clampRate clamps a raw rate into [floor, 1].
func clampRate(r, floor float64) float64 {
	if r < floor {
		return floor
	}
	if r > 1 {
		return 1
	}
	return r
}

// costAt evaluates the variance-cost product f(c) = V(c)·E(c) of the
// clamped rate family over the modeled strata.
func costAt(pi, pr, m [NumStrata]float64, floor, c float64) float64 {
	v, e := 0.0, 0.0
	for s := 0; s < NumStrata; s++ {
		if m[s] < 0 || pi[s] == 0 {
			continue
		}
		q := clampRate(c*m[s], floor)
		v += pi[s] * (pr[s]*(1-pr[s]) + pr[s]*(1-q)/q)
		e += pi[s] * q
	}
	return v * e
}

// bestScale minimizes f(c) = V(c)·E(c) exactly over the piecewise-smooth
// family q_h(c) = clamp(c·m_h, floor, 1). Candidates are the clamp
// breakpoints floor/m_h and 1/m_h plus each smooth piece's interior
// stationary point: with A the c-independent part of V, B = Σ_free π·m
// and D the clamped part of E, f = (A + B/c)(D + B·c) is stationary at
// c* = √(D/A) when A > 0. Evaluation order is fixed and ties keep the
// larger c (the less-thinned plan), so the result is deterministic.
func bestScale(pi, pr, m [NumStrata]float64, floor float64) float64 {
	var bps []float64
	for s := 0; s < NumStrata; s++ {
		if m[s] <= 0 || pi[s] == 0 {
			continue
		}
		bps = append(bps, floor/m[s], 1/m[s])
	}
	if len(bps) == 0 {
		return 1
	}
	sort.Float64s(bps)
	cands := append([]float64(nil), bps...)
	// Interior stationary point of each piece, pieces delimited by the
	// sorted breakpoints. The piece's free set is probed at its midpoint.
	for i := 0; i <= len(bps); i++ {
		lo, hi := 0.0, math.Inf(1)
		if i > 0 {
			lo = bps[i-1]
		}
		if i < len(bps) {
			hi = bps[i]
		}
		if !(hi > lo) {
			continue
		}
		mid := lo * 2
		if i < len(bps) {
			mid = (lo + hi) / 2
		}
		if mid <= 0 {
			continue
		}
		a, b, d := 0.0, 0.0, 0.0
		for s := 0; s < NumStrata; s++ {
			if m[s] < 0 || pi[s] == 0 {
				continue
			}
			if q := mid * m[s]; q > floor && q < 1 {
				// Free: p(1−q)/q = p/q − p, and p/q = p/(c·m) = m/c since
				// m = √p — so the stratum adds m/c to V and c·m to E.
				a += pi[s] * (pr[s]*(1-pr[s]) - pr[s])
				b += pi[s] * m[s]
			} else {
				qc := clampRate(q, floor)
				a += pi[s] * (pr[s]*(1-pr[s]) + pr[s]*(1-qc)/qc)
				d += pi[s] * qc
			}
		}
		if a > 0 && b > 0 {
			if c := math.Sqrt(d / a); c > lo && c < hi {
				cands = append(cands, c)
			}
		}
	}
	best, bestF := 0.0, math.Inf(1)
	for _, c := range cands {
		if !(c > 0) {
			continue
		}
		if f := costAt(pi, pr, m, floor, c); f < bestF || (f == bestF && c > best) {
			best, bestF = c, f
		}
	}
	if best == 0 {
		return 1
	}
	return best
}
