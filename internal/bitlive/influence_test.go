package bitlive_test

import (
	"testing"

	"trident/internal/bitlive"
	"trident/internal/ir"
)

// classify builds a one-function module around mk (same harness contract
// as corner_test.go), classifies it, and returns the influence table.
func classify(t *testing.T, mk func(b *ir.Builder, x *ir.Instr)) *bitlive.Influence {
	t.Helper()
	m := ir.NewModule("influence")
	g := m.AddGlobal("g", ir.I64, 4, []uint64{0x5A, 1, 2, 3})
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	x := b.Load(ir.I64, b.Gep(ir.I64, g, ir.ConstInt(ir.I64, 0)))
	mk(b, x)
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return bitlive.ClassifyInfluence(m, bitlive.Analyze(m))
}

func TestClassifyAddressBits(t *testing.T) {
	var addr *ir.Instr
	m := ir.NewModule("influence")
	g := m.AddGlobal("g", ir.I64, 4, []uint64{0x5A, 1, 2, 3})
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	x := b.Load(ir.I64, b.Gep(ir.I64, g, ir.ConstInt(ir.I64, 0)))
	// x feeds a gep index with an 8-byte stride: its low 61 bits are
	// address bits; the top 3 multiply off the address and are masked.
	addr = b.Gep(ir.I64, g, x)
	b.Print(b.Load(ir.I64, addr))
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	inf := bitlive.ClassifyInfluence(m, bitlive.Analyze(m))
	ms := inf.Masks(addr.Operands[1].(*ir.Instr))
	if ms[bitlive.StratumAddress] == 0 {
		t.Fatalf("gep index not classified address: %+v", ms)
	}
	idx := addr.Operands[1].(*ir.Instr)
	if got := inf.Stratum(idx, 0); got != bitlive.StratumAddress {
		t.Errorf("index bit 0 = %v, want address", got)
	}
	if got := inf.Stratum(idx, 63); got != bitlive.StratumMasked {
		t.Errorf("index bit 63 = %v, want masked (stride kills it)", got)
	}
	// The gep result is pointer-typed: every bit is an address bit.
	if got := inf.Stratum(addr, 17); got != bitlive.StratumAddress {
		t.Errorf("gep result bit = %v, want address", got)
	}
}

func TestClassifyBoundaryBits(t *testing.T) {
	var x0 *ir.Instr
	inf := classify(t, func(b *ir.Builder, x *ir.Instr) {
		x0 = x
		// x <s 0 depends only on the sign bit; the comparison claims it
		// as Boundary (priority above Sign).
		cmp := b.ICmp(ir.PredSLT, x, ir.ConstInt(ir.I64, 0))
		b.Print(b.Select(cmp, x, ir.ConstInt(ir.I64, 7)))
	})
	if got := inf.Stratum(x0, 63); got != bitlive.StratumBoundary {
		t.Errorf("sign-compared bit 63 = %v, want boundary", got)
	}
	if got := inf.Stratum(x0, 10); got != bitlive.StratumNoise {
		t.Errorf("mid bit 10 = %v, want noise", got)
	}
}

func TestClassifySignAndNoise(t *testing.T) {
	var sum *ir.Instr
	inf := classify(t, func(b *ir.Builder, x *ir.Instr) {
		sum = b.Add(x, ir.ConstInt(ir.I64, 3))
		b.Print(sum)
	})
	if got := inf.Stratum(sum, 63); got != bitlive.StratumSign {
		t.Errorf("top bit = %v, want sign", got)
	}
	if got := inf.Stratum(sum, 5); got != bitlive.StratumNoise {
		t.Errorf("bit 5 = %v, want noise", got)
	}
}

// TestMasksDisjointCover: the per-instruction stratum masks must
// partition the result width exactly — disjoint and covering.
func TestMasksDisjointCover(t *testing.T) {
	m := ir.NewModule("cover")
	g := m.AddGlobal("g", ir.I64, 4, []uint64{9, 8, 7, 6})
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	x := b.Load(ir.I64, b.Gep(ir.I64, g, ir.ConstInt(ir.I64, 1)))
	y := b.Mul(x, ir.ConstInt(ir.I64, 12))
	cmp := b.ICmp(ir.PredULT, y, ir.ConstInt(ir.I64, 256))
	n := b.Select(cmp, y, x)
	b.Store(n, b.Gep(ir.I64, g, b.And(x, ir.ConstInt(ir.I64, 3))))
	b.Print(b.Trunc(n, ir.I8))
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	inf := bitlive.ClassifyInfluence(m, bitlive.Analyze(m))
	m.Instrs(func(in *ir.Instr) {
		if !in.HasResult() {
			return
		}
		ms := inf.Masks(in)
		var union, sum uint64
		popcount := 0
		for s := 0; s < bitlive.NumStrata; s++ {
			union |= ms[s]
			sum ^= ms[s]
			for b := ms[s]; b != 0; b &= b - 1 {
				popcount++
			}
		}
		w := in.Type.Bits()
		full := uint64(1)<<uint(w) - 1
		if w == 64 {
			full = ^uint64(0)
		}
		if union != full || sum != full || popcount != w {
			t.Errorf("%v: strata not a partition (union %#x, xor %#x, bits %d/%d)", in, union, sum, popcount, w)
		}
	})
	st := inf.ModuleStats(m)
	total := 0
	for s := 0; s < bitlive.NumStrata; s++ {
		total += st.Bits[s]
	}
	if total != st.Total || st.Total == 0 {
		t.Errorf("ModuleStats inconsistent: %+v", st)
	}
}

func TestPlanValidateAndHash(t *testing.T) {
	p := bitlive.DefaultPlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("default plan invalid: %v", err)
	}
	bad := p
	bad.Rates[bitlive.StratumNoise] = 0
	if bad.Validate() == nil {
		t.Error("zero rate accepted")
	}
	bad.Rates[bitlive.StratumNoise] = 1.5
	if bad.Validate() == nil {
		t.Error("rate > 1 accepted")
	}
	q := p
	q.Rates[bitlive.StratumNoise] = 0.5
	if p.Hash() == q.Hash() {
		t.Error("distinct plans share a hash")
	}
	if p.Hash() != bitlive.DefaultPlan().Hash() {
		t.Error("plan hash not deterministic")
	}
}

func TestInfluenceHashTracksClassification(t *testing.T) {
	build := func(cmpConst int64) (*ir.Module, *bitlive.Influence) {
		m := ir.NewModule("hash")
		g := m.AddGlobal("g", ir.I64, 1, []uint64{0x5A})
		f := m.NewFunc("main", ir.Void)
		b := ir.NewBuilder(f)
		b.SetBlock(b.NewBlock("entry"))
		x := b.Load(ir.I64, b.Gep(ir.I64, g, ir.ConstInt(ir.I64, 0)))
		cmp := b.ICmp(ir.PredULT, x, ir.ConstInt(ir.I64, cmpConst))
		b.Print(b.Select(cmp, x, ir.ConstInt(ir.I64, 0)))
		b.Ret(nil)
		f.Renumber()
		if err := ir.Verify(m); err != nil {
			t.Fatalf("verify: %v", err)
		}
		return m, bitlive.ClassifyInfluence(m, bitlive.Analyze(m))
	}
	m1, i1 := build(16) // boundary bits: >= 4
	m2, i2 := build(64) // boundary bits: >= 6
	if i1.ModuleHash(m1) == i2.ModuleHash(m2) {
		t.Error("different boundary sets share a module hash")
	}
	m3, i3 := build(16)
	if i1.ModuleHash(m1) != i3.ModuleHash(m3) {
		t.Error("influence module hash not deterministic")
	}
}
