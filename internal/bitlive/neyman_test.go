package bitlive

import (
	"math"
	"testing"
)

func pilotAt(s Stratum, bits, trials, sdc int) (out [NumStrata]StratumPilot) {
	for i := range out {
		out[i] = StratumPilot{Bits: 64, Trials: 40}
	}
	out[s] = StratumPilot{Bits: bits, Trials: trials, SDC: sdc}
	return out
}

func TestNeymanPlanCeilingAndFloor(t *testing.T) {
	var pilot [NumStrata]StratumPilot
	for s := range pilot {
		pilot[s] = StratumPilot{Bits: 100, Trials: 50}
	}
	pilot[StratumNoise].SDC = 20   // p̂ = 0.4 — the variance carrier
	pilot[StratumSign].SDC = 5     // p̂ = 0.1
	pilot[StratumBoundary].SDC = 0 // no SDC: thinned, but smoothing keeps it off the raw floor
	pilot[StratumAddress].SDC = 0
	pilot[StratumMasked].SDC = 0
	p, err := NeymanPlan(pilot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("derived plan does not validate: %v", err)
	}
	// Rates must be ordered by pilot SDC evidence: the variance carrier
	// executes the most, the zero-SDC live strata the least among live,
	// and the provably-masked stratum sits on the floor.
	if p.Rate(StratumNoise) < p.Rate(StratumSign) || p.Rate(StratumSign) < p.Rate(StratumBoundary) {
		t.Errorf("rates not ordered by pilot evidence: %v", p)
	}
	if p.Rate(StratumBoundary) != p.Rate(StratumAddress) {
		t.Errorf("equal-evidence strata got different rates: %v", p)
	}
	if got := p.Rate(StratumMasked); got != DefaultRateFloor {
		t.Errorf("provably-masked stratum rate = %v, want floor %v", got, DefaultRateFloor)
	}
	// Zero-SDC live strata are thinned on smoothed evidence, never all
	// the way to the proof-backed floor.
	if got := p.Rate(StratumBoundary); got <= DefaultRateFloor || got >= 1 {
		t.Errorf("zero-SDC live stratum rate = %v, want strictly inside (floor, 1)", got)
	}
	for s := 0; s < NumStrata; s++ {
		if r := p.Rates[s]; r < DefaultRateFloor || r > 1 {
			t.Errorf("stratum %s rate %v outside [floor, 1]", Stratum(s), r)
		}
	}
}

// TestNeymanPlanBeatsStaticInModel: the scale optimization makes the
// static default shape (live strata at 1, masked at floor) a member of
// the candidate family, so the derived plan's modeled variance-cost
// product can never exceed the static plan's. This is the property the
// bench gate measures end to end; here it is checked directly against
// the model for a spread of pilot shapes.
func TestNeymanPlanBeatsStaticInModel(t *testing.T) {
	shapes := [][NumStrata]StratumPilot{
		{
			{Bits: 100, Trials: 60, SDC: 50},
			{Bits: 10, Trials: 4, SDC: 1},
			{Bits: 20, Trials: 9, SDC: 3},
			{Bits: 80, Trials: 40, SDC: 2},
			{Bits: 200, Trials: 87, SDC: 0},
		},
		{
			{Bits: 100, Trials: 30, SDC: 29},
			{Bits: 100, Trials: 30, SDC: 15},
			{Bits: 100, Trials: 30, SDC: 1},
			{Bits: 100, Trials: 30, SDC: 0},
			{Bits: 100, Trials: 30, SDC: 0},
		},
		{
			{Bits: 50, Trials: 25, SDC: 5},
			{Bits: 0, Trials: 0, SDC: 0},
			{Bits: 50, Trials: 25, SDC: 5},
			{Bits: 50, Trials: 25, SDC: 5},
			{Bits: 50, Trials: 25, SDC: 0},
		},
		{
			// Thinned-pilot evidence: drawn slot counts recorded, the
			// masked stratum executed at the floor so its trials are a
			// sliver of its slots.
			{Bits: 100, Slots: 50, Trials: 50, SDC: 10},
			{Bits: 100, Slots: 50, Trials: 50, SDC: 2},
			{Bits: 100, Slots: 50, Trials: 50, SDC: 0},
			{Bits: 100, Slots: 50, Trials: 50, SDC: 0},
			{Bits: 400, Slots: 200, Trials: 11, SDC: 0},
		},
	}
	for i, pilot := range shapes {
		p, err := NeymanPlan(pilot, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := modelCost(pilot, p)
		static := modelCost(pilot, MaskedRatePlan(DefaultRateFloor))
		if got > static+1e-12 {
			t.Errorf("shape %d: derived plan cost %v exceeds static plan cost %v (plan %v)",
				i, got, static, p)
		}
	}
}

// modelCost recomputes the variance-cost product V·E of a plan under the
// pilot's modeled stratum shares and smoothed SDC rates — independently
// of the production optimizer, as the test oracle.
func modelCost(pilot [NumStrata]StratumPilot, p Plan) float64 {
	modeled := func(s int) bool {
		t := pilot[s]
		return t.Bits > 0 && (Stratum(s) == StratumMasked || t.Trials > 0)
	}
	slots, trials := 0, 0
	for s := 0; s < NumStrata; s++ {
		if modeled(s) {
			slots += pilot[s].Slots
			trials += pilot[s].Trials
		}
	}
	v, e := 0.0, 0.0
	for s := 0; s < NumStrata; s++ {
		t := pilot[s]
		if !modeled(s) {
			continue
		}
		pr := float64(t.SDC+1) / float64(t.Trials+2)
		if Stratum(s) == StratumMasked {
			pr = 0
			if t.Trials > 0 {
				pr = float64(t.SDC) / float64(t.Trials)
			}
		}
		pi := 0.0
		if slots > 0 {
			pi = float64(t.Slots) / float64(slots)
		} else if trials > 0 {
			pi = float64(t.Trials) / float64(trials)
		}
		q := p.Rates[s]
		v += pi * (pr*(1-pr) + pr*(1-q)/q)
		e += pi * q
	}
	return v * e
}

func TestNeymanPlanEvidenceFreeStrataStayAtOne(t *testing.T) {
	pilot := pilotAt(StratumNoise, 100, 50, 10)
	pilot[StratumSign] = StratumPilot{Bits: 0, Trials: 0}     // no bits: never drawn
	pilot[StratumAddress] = StratumPilot{Bits: 32, Trials: 0} // bits, no pilot trials
	p, err := NeymanPlan(pilot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(StratumSign); got != 1 {
		t.Errorf("zero-bit stratum rate = %v, want 1", got)
	}
	if got := p.Rate(StratumAddress); got != 1 {
		t.Errorf("zero-trial stratum rate = %v, want 1", got)
	}
}

func TestNeymanPlanMaskedNeedsNoPilotTrials(t *testing.T) {
	// The pilot itself thins the provably-masked stratum at the floor,
	// so a small pilot can execute none of its slots. The oracle's
	// verdict does not depend on the pilot: the stratum stays on the
	// floor instead of falling back to rate 1.
	pilot := pilotAt(StratumNoise, 100, 50, 10)
	pilot[StratumMasked] = StratumPilot{Bits: 300, Slots: 120, Trials: 0}
	p, err := NeymanPlan(pilot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(StratumMasked); got != DefaultRateFloor {
		t.Errorf("masked stratum with zero pilot trials: rate = %v, want floor %v", got, DefaultRateFloor)
	}
}

func TestNeymanPlanNoSignalFallsBackToStatic(t *testing.T) {
	var pilot [NumStrata]StratumPilot
	for s := range pilot {
		pilot[s] = StratumPilot{Bits: 64, Trials: 30, SDC: 0}
	}
	p, err := NeymanPlan(pilot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := MaskedRatePlan(DefaultRateFloor); p != want {
		t.Errorf("no-signal plan = %v, want static fallback %v", p, want)
	}
}

func TestNeymanPlanDeterministicHash(t *testing.T) {
	var pilot [NumStrata]StratumPilot
	for s := range pilot {
		pilot[s] = StratumPilot{Bits: 64, Trials: 25, SDC: s}
	}
	a, err := NeymanPlan(pilot, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NeymanPlan(pilot, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Hash() != b.Hash() {
		t.Errorf("same pilot produced different plans: %v vs %v", a, b)
	}
	pilot[StratumNoise].SDC++
	c, err := NeymanPlan(pilot, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash() == a.Hash() {
		t.Error("different pilot tallies hashed to the same plan")
	}
}

func TestNeymanPlanRejectsBadFloor(t *testing.T) {
	var pilot [NumStrata]StratumPilot
	for _, floor := range []float64{-0.5, 1.5, math.NaN()} {
		if _, err := NeymanPlan(pilot, floor); err == nil {
			t.Errorf("floor %v accepted", floor)
		}
	}
}

func TestMaskedRatePlanHashFences(t *testing.T) {
	if DefaultPlan() != MaskedRatePlan(DefaultMaskedRate) {
		t.Error("DefaultPlan is not MaskedRatePlan(DefaultMaskedRate)")
	}
	a, b := MaskedRatePlan(0.05), MaskedRatePlan(0.25)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Error("plans with different masked rates share a hash; checkpoints would not fence")
	}
}

func TestUniformPlanExecutesEverything(t *testing.T) {
	p := UniformPlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < NumStrata; s++ {
		if p.Rates[s] != 1 {
			t.Errorf("stratum %s rate = %v, want 1", Stratum(s), p.Rates[s])
		}
	}
}
