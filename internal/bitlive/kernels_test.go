package bitlive_test

import (
	"math/bits"
	"testing"

	"trident/internal/bitlive"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/progs"
)

// TestKernelPruneFractions runs the analysis over every kernel (paper
// Table I plus the narrow-output micro-kernels) and logs the static and
// activation-weighted masked-bit shares — the numbers EXPERIMENTS.md
// and BENCH_fi.json report. It asserts sanity (analysis runs, masks
// stay within width, the narrow-output kernels prune a substantial
// share); the soundness of every masked bit is enforced by the
// exhaustive oracle in internal/crosscheck.
func TestKernelPruneFractions(t *testing.T) {
	fracs := map[string]float64{}
	for _, p := range progs.Extended() {
		m := p.Build()
		rep := bitlive.Analyze(m)

		execCount := make(map[*ir.Instr]uint64)
		res, err := interp.Run(m, interp.Options{Hooks: interp.Hooks{
			OnResult: func(_ *interp.Context, in *ir.Instr, b uint64) uint64 {
				execCount[in]++
				return b
			},
		}})
		if err != nil {
			t.Fatalf("%s: golden run: %v", p.Name, err)
		}
		if res.Outcome != interp.OutcomeOK {
			t.Fatalf("%s: golden run ended in %s", p.Name, res.Outcome)
		}

		st := rep.ModuleStats(m)
		var weighted, total float64
		m.Instrs(func(in *ir.Instr) {
			n := execCount[in]
			if n == 0 || !in.HasResult() {
				return
			}
			w := in.Type.Bits()
			if w < 64 {
				if masked := rep.Masked(in); masked>>uint(w) != 0 {
					t.Errorf("%s: masked %#x exceeds width %d", p.Name, masked, w)
				}
			}
			weighted += float64(n) * float64(bits.OnesCount64(rep.Masked(in))) / float64(w)
			total += float64(n)
		})
		frac := 0.0
		if total > 0 {
			frac = weighted / total
		}
		fracs[p.Name] = frac
		t.Logf("%-14s static %5.1f%% (%d/%d bits)  activation-weighted %5.1f%%",
			p.Name, 100*st.Fraction(), st.MaskedBits, st.Bits, 100*frac)
	}
	// The narrow-output kernels exist to exercise pruning; if their
	// masked share collapses, either the kernels or the analysis
	// regressed. 1/(1-0.167) = 1.2x is the BENCH_fi.json floor.
	for _, name := range []string{"rgb2gray", "nibblepack", "boxblur"} {
		if fracs[name] < 0.167 {
			t.Errorf("%s: activation-weighted masked share %.3f below the 16.7%% pruning floor",
				name, fracs[name])
		}
	}
}
