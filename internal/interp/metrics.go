// Interpreter telemetry. All instrumentation sits at run and snapshot
// boundaries — never on the per-instruction dispatch path — so enabling
// metrics costs a handful of atomic updates per execution, and a nil
// registry costs a single pointer check. The metric names recorded here
// are documented in OBSERVABILITY.md.

package interp

import (
	"context"
	"errors"
	"time"

	"trident/internal/telemetry"
)

// recordRun records one completed (or failed) execution into reg:
//
//	interp.runs                 counter: executions completed (Run or Resume)
//	interp.instrs               counter: dynamic instructions actually interpreted
//	                            (for resumed runs, the post-snapshot suffix only)
//	interp.run_us               histogram: wall-clock execution time
//	interp.outcome.<name>       counter: ok / crash / hang / detected
//	interp.cancelled            counter: runs stopped by context cancellation
//	interp.internal_errors      counter: runs failed by engine bugs (InternalError)
//	interp.errors               counter: runs failed by any other engine error
//
// startInstrs is the dynamic-instruction count the execution began at
// (a snapshot's position for Resume, 0 for Run), so interp.instrs
// counts work performed, not work replayed for free.
func recordRun(reg *telemetry.Registry, start time.Time, startInstrs uint64, ctx *Context, res *Result, err error) {
	if reg == nil {
		return
	}
	reg.Counter("interp.runs").Inc()
	reg.Counter("interp.instrs").Add(ctx.DynCount - startInstrs)
	reg.Histogram("interp.run_us").Since(start)
	switch {
	case res != nil:
		reg.Counter("interp.outcome." + res.Outcome.String()).Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		reg.Counter("interp.cancelled").Inc()
	default:
		var ie *InternalError
		if errors.As(err, &ie) {
			reg.Counter("interp.internal_errors").Inc()
		} else {
			reg.Counter("interp.errors").Inc()
		}
	}
}

// metricsStart returns the timing origin for recordRun: the zero time
// when metrics are disabled (time.Now is ~20ns, but the point is that a
// disabled registry costs exactly one branch).
func metricsStart(reg *telemetry.Registry) time.Time {
	if reg == nil {
		return time.Time{}
	}
	return time.Now()
}
