package interp

import (
	"fmt"
	"testing"

	"trident/internal/ir"
	"trident/internal/progs"
)

// snapProgram exercises every state dimension a snapshot must carry:
// nested calls mid-flight at the snapshot point, allocas in several
// frames, phi-carried loop state, global mutation through stores, and
// float output.
const snapProgram = `
module "snapstate"

global @data i64 x 16 = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]
global @out i64 x 1

func @inner(%x i64) i64 {
entry:
  %buf = alloca i64 x 4
  %p = gep i64, %buf, i64 0
  %sq = mul %x, %x
  store %sq, %p
  %v = load i64, %p
  %r = add %v, i64 7
  ret %r
}

func @step(%i i64, %acc i64) i64 {
entry:
  %p = gep i64, @data, %i
  %d = load i64, %p
  %mix = xor %d, %acc
  %f = call @inner(%mix)
  %r = add %f, %acc
  ret %r
}

func @main() void {
entry:
  %scratch = alloca i64 x 8
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %acc = phi i64 [i64 1, entry], [%next, loop]
  %next = call @step(%i, %acc)
  %sp = gep i64, %scratch, i64 0
  store %next, %sp
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 16
  condbr %c, loop, done
done:
  %op = gep i64, @out, i64 0
  store %next, %op
  %final = load i64, %op
  print %final
  %ff = sitofp %final to f64
  %root = intrinsic sqrt(%ff)
  print %root
  ret
}
`

// trapProgram crashes with an out-of-bounds store partway through its
// loop, well after the first snapshot.
const trapProgram = `
module "snaptrap"
global @a i64 x 4
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %p = gep i64, @a, %i
  store %i, %p
  print %i
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 4000
  condbr %c, loop, done
done:
  ret
}
`

// divzeroProgram traps with a division by zero once the loop counter
// wraps to the poisoned denominator.
const divzeroProgram = `
module "snapdiv"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 400, entry], [%dec, loop]
  %dec = sub %i, i64 1
  %q = sdiv i64 100000, %dec
  print %q
  %c = icmp sgt %dec, i64 -5
  condbr %c, loop, done
done:
  ret
}
`

// spinProgram never terminates; runs classify as hangs via MaxDynInstrs.
const spinProgram = `
module "snapspin"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %inc = add %i, i64 1
  print %inc
  br loop
}
`

// collectSnapshots runs m with periodic snapshotting and returns the full
// result plus every captured snapshot.
func collectSnapshots(t testing.TB, m *ir.Module, interval uint64, opts Options) (*Result, []*Snapshot) {
	t.Helper()
	var snaps []*Snapshot
	opts.SnapshotInterval = interval
	opts.OnSnapshot = func(s *Snapshot) { snaps = append(snaps, s) }
	res, err := Run(m, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, snaps
}

// assertSameResult fails unless got matches want in every observable
// field: outcome, trap identity, output bytes, counters, peak memory.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Outcome != want.Outcome {
		t.Errorf("%s: outcome = %v, want %v", label, got.Outcome, want.Outcome)
	}
	if (got.Trap == nil) != (want.Trap == nil) {
		t.Fatalf("%s: trap presence mismatch: got %v, want %v", label, got.Trap, want.Trap)
	}
	if got.Trap != nil && (got.Trap.Kind != want.Trap.Kind ||
		got.Trap.Instr != want.Trap.Instr || got.Trap.Addr != want.Trap.Addr) {
		t.Errorf("%s: trap = %+v, want %+v", label, got.Trap, want.Trap)
	}
	if got.Output != want.Output {
		t.Errorf("%s: output differs (%d vs %d bytes)", label, len(got.Output), len(want.Output))
	}
	if got.OutputLines != want.OutputLines {
		t.Errorf("%s: output lines = %d, want %d", label, got.OutputLines, want.OutputLines)
	}
	if got.DynInstrs != want.DynInstrs {
		t.Errorf("%s: dyn instrs = %d, want %d", label, got.DynInstrs, want.DynInstrs)
	}
	if got.DynResults != want.DynResults {
		t.Errorf("%s: dyn results = %d, want %d", label, got.DynResults, want.DynResults)
	}
	if got.PeakMemBytes != want.PeakMemBytes {
		t.Errorf("%s: peak mem = %d, want %d", label, got.PeakMemBytes, want.PeakMemBytes)
	}
}

// roundTrip verifies that resuming every snapshot of a run reproduces the
// uninterrupted result bit for bit.
func roundTrip(t *testing.T, m *ir.Module, interval uint64, opts Options) {
	t.Helper()
	want, err := Run(m, opts)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	_, snaps := collectSnapshots(t, m, interval, opts)
	if want.DynInstrs > interval && len(snaps) == 0 {
		t.Fatalf("no snapshots captured over %d instructions at interval %d",
			want.DynInstrs, interval)
	}
	for i, s := range snaps {
		got, err := Resume(s, opts)
		if err != nil {
			t.Fatalf("resume snapshot %d (@%d): %v", i, s.DynInstrs(), err)
		}
		assertSameResult(t, labelf("snapshot %d @%d", i, s.DynInstrs()), got, want)
	}
}

func labelf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// TestSnapshotRoundTripStateDimensions snapshots a program mid nested
// call with live allocas in three frames, then resumes each snapshot:
// the continuation must be bit-identical to the uninterrupted run.
func TestSnapshotRoundTripStateDimensions(t *testing.T) {
	m := mustParse(t, snapProgram)
	for _, interval := range []uint64{3, 17, 64, 500} {
		roundTrip(t, m, interval, Options{})
	}
}

// TestSnapshotRoundTripTrap covers crashing continuations: the resumed
// run must reach the same trap, at the same instruction and address,
// with the same partial output.
func TestSnapshotRoundTripTrap(t *testing.T) {
	roundTrip(t, mustParse(t, trapProgram), 7, Options{})
	roundTrip(t, mustParse(t, divzeroProgram), 13, Options{})
}

// TestSnapshotRoundTripHang covers budget exhaustion: the resumed run
// must hang at exactly the same dynamic instruction count.
func TestSnapshotRoundTripHang(t *testing.T) {
	m := mustParse(t, spinProgram)
	full, err := Run(m, Options{MaxDynInstrs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if full.Outcome != OutcomeHang {
		t.Fatalf("outcome = %v, want hang", full.Outcome)
	}
	roundTrip(t, m, 11, Options{MaxDynInstrs: 5000})
}

// TestSnapshotRoundTripBenchmarks proves the round-trip property on all
// real benchmark kernels with a handful of snapshots each.
func TestSnapshotRoundTripBenchmarks(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			full, err := Run(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// ~5 snapshots per program, spread across the run.
			roundTrip(t, m, full.DynInstrs/5+1, Options{})
		})
	}
}

// TestSnapshotRandomPoints is the property test at pseudo-random dynamic
// instructions: pick a random snapshot point, keep executing, resume,
// and require a bit-for-bit identical end state.
func TestSnapshotRandomPoints(t *testing.T) {
	m := mustParse(t, snapProgram)
	full, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(0x9E3779B97F4A7C15)
	for trial := 0; trial < 25; trial++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		point := 1 + rng%(full.DynInstrs-1)
		var first *Snapshot
		opts := Options{
			SnapshotInterval: point,
			OnSnapshot: func(s *Snapshot) {
				if first == nil {
					first = s
				}
			},
		}
		if _, err := Run(m, opts); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			t.Fatalf("no snapshot at point %d", point)
		}
		got, err := Resume(first, Options{})
		if err != nil {
			t.Fatalf("resume @%d: %v", first.DynInstrs(), err)
		}
		assertSameResult(t, labelf("random point %d", point), got, full)
	}
}

// TestSnapshotIsImmutable resumes the same snapshot twice; the first
// resume must not perturb the second (deep-copy isolation).
func TestSnapshotIsImmutable(t *testing.T) {
	m := mustParse(t, snapProgram)
	_, snaps := collectSnapshots(t, m, 40, Options{})
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	s := snaps[len(snaps)/2]
	a, err := Resume(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resume(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "second resume", b, a)
}

// FuzzSnapshotRoundTrip fuzzes the snapshot point and program choice:
// whatever boundary the snapshot lands on — mid-call, pre-trap, pre-hang
// — the resumed continuation must reproduce the uninterrupted run.
func FuzzSnapshotRoundTrip(f *testing.F) {
	sources := []string{snapProgram, trapProgram, divzeroProgram, spinProgram}
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(97), uint8(1))
	f.Add(uint64(1023), uint8(2))
	f.Add(uint64(4096), uint8(3))
	f.Fuzz(func(t *testing.T, interval uint64, progIdx uint8) {
		m, err := ir.Parse(sources[int(progIdx)%len(sources)])
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{MaxDynInstrs: 20000}
		want, err := Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		interval = 1 + interval%(want.DynInstrs+1)
		var snaps []*Snapshot
		ropts := opts
		ropts.SnapshotInterval = interval
		ropts.OnSnapshot = func(s *Snapshot) { snaps = append(snaps, s) }
		if _, err := Run(m, ropts); err != nil {
			t.Fatal(err)
		}
		for i, s := range snaps {
			got, err := Resume(s, opts)
			if err != nil {
				t.Fatalf("resume %d: %v", i, err)
			}
			assertSameResult(t, labelf("interval %d snapshot %d", interval, i), got, want)
		}
	})
}
