package interp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"trident/internal/ir"
)

// bogusValue implements ir.Value with a kind the machine does not know,
// standing in for an engine bug introduced by a future IR extension.
type bogusValue struct{}

func (bogusValue) ValueType() ir.Type  { return ir.I64 }
func (bogusValue) ValueString() string { return "<bogus>" }

func TestRunUnknownValueKindIsTypedError(t *testing.T) {
	m := mustParse(t, `
module "bogus"
func @main() void {
entry:
  %a = add i64 1, i64 2
  print %a
  ret
}
`)
	add := m.Func("main").Block("entry").Instrs[0]
	add.Operands[0] = bogusValue{}
	_, err := Run(m, Options{})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if !strings.Contains(ie.Msg, "unknown value kind") {
		t.Errorf("Msg = %q, want mention of unknown value kind", ie.Msg)
	}
	if ie.Stack == "" {
		t.Error("InternalError carries no stack trace")
	}
}

func TestRunRecoversHookPanic(t *testing.T) {
	m := mustParse(t, `
module "hookpanic"
func @main() void {
entry:
  %a = add i64 1, i64 2
  print %a
  ret
}
`)
	_, err := Run(m, Options{Hooks: Hooks{
		OnResult: func(_ *Context, _ *ir.Instr, bits uint64) uint64 {
			panic("hook exploded")
		},
	}})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Recovered != "hook exploded" {
		t.Errorf("Recovered = %v, want the panic value", ie.Recovered)
	}
	if ie.Stack == "" {
		t.Error("InternalError carries no stack trace")
	}
}

// countdown is a loop long enough to cross several cancellation
// checkpoints (every 1024 instructions).
const countdown = `
module "countdown"
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 5000
  condbr %c, loop, done
done:
  print %inc
  ret
}
`

func TestRunCancelledBeforeStart(t *testing.T) {
	m := mustParse(t, countdown)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(m, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCancelledMidRun(t *testing.T) {
	m := mustParse(t, countdown)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := 0
	_, err := Run(m, Options{
		Context: ctx,
		Hooks: Hooks{
			OnResult: func(_ *Context, _ *ir.Instr, bits uint64) uint64 {
				results++
				if results == 100 {
					cancel()
				}
				return bits
			},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The loop runs ~20000 dynamic instructions; cancellation at result
	// 100 must stop it at the next 1024-instruction checkpoint, far short
	// of completion.
	if results > 2000 {
		t.Errorf("executed %d results after cancellation, checkpointing is broken", results)
	}
}

func TestRunNilContextUnaffected(t *testing.T) {
	m := mustParse(t, countdown)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeOK || res.Output != "5000\n" {
		t.Errorf("outcome = %v output = %q", res.Outcome, res.Output)
	}
}
