package interp

import (
	"math"
	"testing"
	"testing/quick"

	"trident/internal/ir"
)

func TestEvalBinaryIntegerOps(t *testing.T) {
	tests := []struct {
		op       ir.Opcode
		t        ir.Type
		lhs, rhs int64
		want     int64
		ok       bool
	}{
		{ir.OpAdd, ir.I32, 7, 5, 12, true},
		{ir.OpSub, ir.I32, 7, 9, -2, true},
		{ir.OpMul, ir.I16, 300, 300, 90000 & 0xFFFF, true}, // wraps at 16 bits after truncation
		{ir.OpSDiv, ir.I64, -9, 2, -4, true},
		{ir.OpSRem, ir.I64, -9, 2, -1, true},
		{ir.OpUDiv, ir.I64, 9, 2, 4, true},
		{ir.OpURem, ir.I64, 9, 2, 1, true},
		{ir.OpSDiv, ir.I64, 1, 0, 0, false},
		{ir.OpURem, ir.I64, 1, 0, 0, false},
		{ir.OpAnd, ir.I64, 0b1100, 0b1010, 0b1000, true},
		{ir.OpOr, ir.I64, 0b1100, 0b1010, 0b1110, true},
		{ir.OpXor, ir.I64, 0b1100, 0b1010, 0b0110, true},
	}
	for _, tt := range tests {
		bits, ok := EvalBinary(tt.op, tt.t, ir.ConstInt(tt.t, tt.lhs).Bits, ir.ConstInt(tt.t, tt.rhs).Bits)
		if ok != tt.ok {
			t.Errorf("%s: ok = %v, want %v", tt.op, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if got := ir.SignExtend(ir.TruncateToWidth(bits, tt.t.Bits()), tt.t.Bits()); got != tt.want {
			t.Errorf("%s(%d, %d) = %d, want %d", tt.op, tt.lhs, tt.rhs, got, tt.want)
		}
	}
}

func TestEvalBinaryMinInt64Division(t *testing.T) {
	minBits := uint64(1) << 63
	negOne := ir.ConstInt(ir.I64, -1).Bits
	bits, ok := EvalBinary(ir.OpSDiv, ir.I64, minBits, negOne)
	if !ok || bits != minBits {
		t.Errorf("MinInt64 / -1 = %#x, %v; want wrap to MinInt64", bits, ok)
	}
	bits, ok = EvalBinary(ir.OpSRem, ir.I64, minBits, negOne)
	if !ok || bits != 0 {
		t.Errorf("MinInt64 %% -1 = %#x, %v; want 0", bits, ok)
	}
}

func TestEvalBinaryShiftsReduceModWidth(t *testing.T) {
	// Shift amounts wrap modulo the width so corrupted shift operands are
	// still defined.
	bits, _ := EvalBinary(ir.OpShl, ir.I32, 1, 33)
	if ir.TruncateToWidth(bits, 32) != 2 {
		t.Errorf("shl by 33 on i32 = %#x, want 2 (mod-width)", bits)
	}
	bits, _ = EvalBinary(ir.OpAShr, ir.I8, ir.ConstInt(ir.I8, -64).Bits, 2)
	if got := ir.SignExtend(ir.TruncateToWidth(bits, 8), 8); got != -16 {
		t.Errorf("ashr(-64, 2) on i8 = %d, want -16", got)
	}
}

func TestEvalBinaryFloatOps(t *testing.T) {
	f := func(op ir.Opcode, a, b float64) float64 {
		bits, ok := EvalBinary(op, ir.F64, ir.FloatToBits(ir.F64, a), ir.FloatToBits(ir.F64, b))
		if !ok {
			t.Fatalf("%s trapped", op)
		}
		return ir.FloatFromBits(ir.F64, bits)
	}
	if f(ir.OpFAdd, 1.5, 2.5) != 4 || f(ir.OpFSub, 1.5, 2.5) != -1 ||
		f(ir.OpFMul, 1.5, 2) != 3 || f(ir.OpFDiv, 3, 2) != 1.5 {
		t.Error("float arithmetic wrong")
	}
	// Float division by zero follows IEEE (no trap).
	if !math.IsInf(f(ir.OpFDiv, 1, 0), 1) {
		t.Error("fdiv by zero should be +Inf")
	}
}

func TestEvalCastMatrix(t *testing.T) {
	if got := EvalCast(ir.OpTrunc, ir.I64, ir.I8, 0x1FF); got != 0xFF {
		t.Errorf("trunc = %#x", got)
	}
	if got := EvalCast(ir.OpZExt, ir.I8, ir.I64, 0xFF); got != 0xFF {
		t.Errorf("zext = %#x", got)
	}
	if got := EvalCast(ir.OpSExt, ir.I8, ir.I64, 0xFF); int64(got) != -1 {
		t.Errorf("sext = %#x", got)
	}
	if v := ir.FloatFromBits(ir.F32, EvalCast(ir.OpFPTrunc, ir.F64, ir.F32, ir.FloatToBits(ir.F64, 1.5))); v != 1.5 {
		t.Errorf("fptrunc = %v", v)
	}
	if v := ir.FloatFromBits(ir.F64, EvalCast(ir.OpFPExt, ir.F32, ir.F64, ir.FloatToBits(ir.F32, 0.25))); v != 0.25 {
		t.Errorf("fpext = %v", v)
	}
	if got := int64(EvalCast(ir.OpFPToSI, ir.F64, ir.I64, ir.FloatToBits(ir.F64, -3.7))); got != -3 {
		t.Errorf("fptosi(-3.7) = %d", got)
	}
	// Saturation and NaN handling.
	if got := int64(EvalCast(ir.OpFPToSI, ir.F64, ir.I64, ir.FloatToBits(ir.F64, 1e300))); got != math.MaxInt64 {
		t.Errorf("fptosi(1e300) = %d", got)
	}
	if got := int64(EvalCast(ir.OpFPToSI, ir.F64, ir.I64, ir.FloatToBits(ir.F64, -1e300))); got != math.MinInt64 {
		t.Errorf("fptosi(-1e300) = %d", got)
	}
	if got := EvalCast(ir.OpFPToSI, ir.F64, ir.I64, ir.FloatToBits(ir.F64, math.NaN())); got != 0 {
		t.Errorf("fptosi(NaN) = %d", got)
	}
	if v := ir.FloatFromBits(ir.F64, EvalCast(ir.OpSIToFP, ir.I32, ir.F64, ir.ConstInt(ir.I32, -5).Bits)); v != -5 {
		t.Errorf("sitofp = %v", v)
	}
	if got := EvalCast(ir.OpBitcast, ir.I64, ir.F64, 0x3FF0000000000000); got != 0x3FF0000000000000 {
		t.Errorf("bitcast = %#x", got)
	}
}

func TestEvalIntrinsicMatrix(t *testing.T) {
	cases := []struct {
		kind ir.Intrinsic
		args []float64
		want float64
	}{
		{ir.IntrinsicSqrt, []float64{9}, 3},
		{ir.IntrinsicExp, []float64{0}, 1},
		{ir.IntrinsicLog, []float64{1}, 0},
		{ir.IntrinsicSin, []float64{0}, 0},
		{ir.IntrinsicCos, []float64{0}, 1},
		{ir.IntrinsicPow, []float64{2, 10}, 1024},
		{ir.IntrinsicFabs, []float64{-2.5}, 2.5},
		{ir.IntrinsicFloor, []float64{2.9}, 2},
		{ir.IntrinsicFmin, []float64{1, 2}, 1},
		{ir.IntrinsicFmax, []float64{1, 2}, 2},
	}
	for _, c := range cases {
		if got := EvalIntrinsic(c.kind, c.args); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.kind, c.args, got, c.want)
		}
	}
	if !math.IsNaN(EvalIntrinsic(ir.Intrinsic(200), []float64{1})) {
		t.Error("unknown intrinsic should be NaN")
	}
}

func TestEvalCmpAgainstGoSemantics(t *testing.T) {
	f := func(a, b int32) bool {
		lhs := ir.ConstInt(ir.I32, int64(a)).Bits
		rhs := ir.ConstInt(ir.I32, int64(b)).Bits
		checks := []struct {
			pred ir.Predicate
			want bool
		}{
			{ir.PredEQ, a == b},
			{ir.PredNE, a != b},
			{ir.PredSLT, a < b},
			{ir.PredSLE, a <= b},
			{ir.PredSGT, a > b},
			{ir.PredSGE, a >= b},
			{ir.PredULT, uint32(a) < uint32(b)},
			{ir.PredULE, uint32(a) <= uint32(b)},
			{ir.PredUGT, uint32(a) > uint32(b)},
			{ir.PredUGE, uint32(a) >= uint32(b)},
		}
		for _, c := range checks {
			got := EvalCmp(c.pred, ir.I32, lhs, rhs) == 1
			if got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalCmpFloatNaN(t *testing.T) {
	nan := ir.FloatToBits(ir.F64, math.NaN())
	one := ir.FloatToBits(ir.F64, 1)
	// Ordered predicates are false on NaN.
	for _, pred := range []ir.Predicate{ir.PredOEQ, ir.PredONE, ir.PredOLT, ir.PredOLE, ir.PredOGT, ir.PredOGE} {
		if EvalCmp(pred, ir.F64, nan, one) != 0 {
			t.Errorf("%v with NaN should be false", pred)
		}
	}
}
