// Cross-engine parity tests: the decoded engine must be observationally
// identical to the legacy engine — same results, same hook sequences
// with the same arguments, same trap positions, same hang boundaries,
// same snapshots — plus pooled-state hygiene (a recycled frame must be
// indistinguishable from a fresh one).

package interp

import (
	"fmt"
	"strings"
	"testing"

	"trident/internal/decoded"
	"trident/internal/ir"
	"trident/internal/progs"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineLegacy, true},
		{"legacy", EngineLegacy, true},
		{"decoded", EngineDecoded, true},
		{"turbo", "", false},
	}
	for _, c := range cases {
		got, err := ParseEngine(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseEngine(%q) succeeded, want error", c.in)
		}
	}
	if len(Engines()) != 2 {
		t.Errorf("Engines() = %v, want two engines", Engines())
	}
}

// hookTrace records every hook invocation as a comparable string,
// optionally flipping a bit in one dynamic result (the fault-injection
// usage pattern).
type hookTrace struct {
	events     []string
	flipAt     uint64 // 1-based DynResults index to corrupt, 0 = never
	flipMask   uint64
	numResults uint64
}

func (h *hookTrace) hooks() Hooks {
	return Hooks{
		OnResult: func(ctx *Context, in *ir.Instr, bits uint64) uint64 {
			h.numResults++
			if h.numResults == h.flipAt {
				bits ^= h.flipMask
			}
			h.events = append(h.events, fmt.Sprintf("result %s %#x d=%d r=%d", in.Pos(), bits, ctx.DynCount, ctx.DynResults))
			return bits
		},
		OnBranch: func(ctx *Context, in *ir.Instr, taken int) {
			h.events = append(h.events, fmt.Sprintf("branch %s %d d=%d", in.Pos(), taken, ctx.DynCount))
		},
		OnBinary: func(ctx *Context, in *ir.Instr, lhs, rhs uint64) {
			h.events = append(h.events, fmt.Sprintf("binary %s %#x %#x", in.Pos(), lhs, rhs))
		},
		OnLoad: func(ctx *Context, in *ir.Instr, addr, bits uint64) {
			h.events = append(h.events, fmt.Sprintf("load %s %#x %#x", in.Pos(), addr, bits))
		},
		OnStore: func(ctx *Context, in *ir.Instr, addr, bits uint64) {
			h.events = append(h.events, fmt.Sprintf("store %s %#x %#x", in.Pos(), addr, bits))
		},
		OnPrint: func(ctx *Context, in *ir.Instr, line string) {
			h.events = append(h.events, fmt.Sprintf("print %s %q", in.Pos(), line))
		},
	}
}

// runBoth executes m under both engines with identical options and
// fails the test on any observable difference. It returns the legacy
// result for further checks.
func runBoth(t *testing.T, m *ir.Module, opts Options, flipAt, flipMask uint64) (*Result, error) {
	t.Helper()
	traces := make([]*hookTrace, 2)
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for i, eng := range []Engine{EngineLegacy, EngineDecoded} {
		h := &hookTrace{flipAt: flipAt, flipMask: flipMask}
		o := opts
		o.Engine = eng
		o.Hooks = h.hooks()
		results[i], errs[i] = Run(m, o)
		traces[i] = h
	}
	if (errs[0] == nil) != (errs[1] == nil) {
		t.Fatalf("error divergence: legacy=%v decoded=%v", errs[0], errs[1])
	}
	if errs[0] != nil && errs[0].Error() != errs[1].Error() {
		t.Fatalf("error text divergence:\n  legacy:  %v\n  decoded: %v", errs[0], errs[1])
	}
	if errs[0] != nil {
		return nil, errs[0]
	}
	compareResultsT(t, results[0], results[1])
	if len(traces[0].events) != len(traces[1].events) {
		t.Fatalf("hook event count: legacy=%d decoded=%d", len(traces[0].events), len(traces[1].events))
	}
	for i := range traces[0].events {
		if traces[0].events[i] != traces[1].events[i] {
			t.Fatalf("hook event %d diverges:\n  legacy:  %s\n  decoded: %s",
				i, traces[0].events[i], traces[1].events[i])
		}
	}
	return results[0], nil
}

func compareResultsT(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Outcome != b.Outcome {
		t.Fatalf("outcome: legacy=%v decoded=%v", a.Outcome, b.Outcome)
	}
	if a.Output != b.Output {
		t.Fatalf("output diverges:\n  legacy:  %q\n  decoded: %q", a.Output, b.Output)
	}
	if a.OutputLines != b.OutputLines {
		t.Fatalf("output lines: legacy=%d decoded=%d", a.OutputLines, b.OutputLines)
	}
	if a.DynInstrs != b.DynInstrs {
		t.Fatalf("dyn instrs: legacy=%d decoded=%d", a.DynInstrs, b.DynInstrs)
	}
	if a.DynResults != b.DynResults {
		t.Fatalf("dyn results: legacy=%d decoded=%d", a.DynResults, b.DynResults)
	}
	if a.PeakMemBytes != b.PeakMemBytes {
		t.Fatalf("peak mem: legacy=%d decoded=%d", a.PeakMemBytes, b.PeakMemBytes)
	}
	if (a.Trap == nil) != (b.Trap == nil) {
		t.Fatalf("trap presence: legacy=%v decoded=%v", a.Trap, b.Trap)
	}
	if a.Trap != nil {
		if a.Trap.Kind != b.Trap.Kind || a.Trap.Instr != b.Trap.Instr || a.Trap.Addr != b.Trap.Addr {
			t.Fatalf("trap diverges: legacy=%v decoded=%v", a.Trap, b.Trap)
		}
	}
}

// TestEngineParityKernels runs every benchmark kernel under both
// engines with full hook observation and requires bit-identical
// behavior.
func TestEngineParityKernels(t *testing.T) {
	for _, p := range progs.All() {
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			if _, err := runBoth(t, m, Options{}, 0, 0); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
}

// TestEngineParityInjected corrupts one dynamic result mid-run (the
// fault-injection usage of OnResult) and requires both engines to
// propagate the corruption identically.
func TestEngineParityInjected(t *testing.T) {
	for _, p := range progs.All() {
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build()
			base, err := Run(m, Options{})
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			// A handful of injection points spread across the run, plus the
			// very first and last results.
			points := []uint64{1, base.DynResults / 3, base.DynResults / 2, base.DynResults}
			for _, at := range points {
				if at == 0 {
					continue
				}
				runBoth(t, m, Options{}, at, 1<<7)
			}
		})
	}
}

// TestEngineParityControl covers the control-flow corner cases the
// kernels may not hit: traps of every kind, phi-dense diamonds,
// recursion to stack overflow, and param/global traffic.
func TestEngineParityControl(t *testing.T) {
	srcs := map[string]string{
		"oob-load": `
module "oob"
func @main() void {
entry:
  %p = alloca i32 x 2
  %q = gep i32, %p, i64 5
  %v = load i32, %q
  print %v
  ret
}`,
		"oob-store": `
module "oob2"
func @main() void {
entry:
  %p = alloca i32 x 2
  %q = gep i32, %p, i64 99
  store i32 7, %q
  ret
}`,
		"div-zero": `
module "dz"
func @main() void {
entry:
  %a = add i32 10, i32 0
  %b = sub %a, i32 10
  %c = sdiv i32 5, %b
  print %c
  ret
}`,
		"detected": `
module "det"
func @main() void {
entry:
  %a = add i32 1, i32 2
  %b = add i32 1, i32 3
  check %a, %b
  ret
}`,
		"overflow": `
module "ovf"
func @rec(%n i32) i32 {
entry:
  %r = call @rec(%n)
  ret %r
}
func @main() void {
entry:
  %r = call @rec(i32 1)
  print %r
  ret
}`,
		"phi-diamond": `
module "phid"
func @main() void {
entry:
  %c = icmp sgt i32 3, i32 2
  condbr %c, a, b
a:
  %x = add i32 10, i32 1
  br join
b:
  %y = add i32 20, i32 2
  br join
join:
  %p = phi i32 [%x, a], [%y, b]
  %q = phi i32 [i32 100, a], [i32 200, b]
  %s = add %p, %q
  print %s
  ret
}`,
		"phi-swap": `
module "swap"
func @main() void {
entry:
  br loop
loop:
  %a = phi i32 [i32 1, entry], [%b, loop]
  %b = phi i32 [i32 2, entry], [%a, loop]
  %i = phi i32 [i32 0, entry], [%n, loop]
  %n = add %i, i32 1
  %c = icmp slt %n, i32 5
  condbr %c, loop, done
done:
  print %a
  print %b
  ret
}`,
		"globals": `
module "glob"
global @tab i64 x 4 = [1, 2, 3, 4]
global @acc i64 x 1
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%n, loop]
  %p = gep i64, @tab, %i
  %v = load i64, %p
  %q = load i64, @acc
  %s = add %q, %v
  store %s, @acc
  %n = add %i, i64 1
  %c = icmp slt %n, i64 4
  condbr %c, loop, done
done:
  %r = load i64, @acc
  print %r
  ret
}`,
		"calls": `
module "calls"
func @fib(%n i64) i64 {
entry:
  %c = icmp sle %n, i64 1
  condbr %c, base, rec
base:
  ret %n
rec:
  %a = sub %n, i64 1
  %b = sub %n, i64 2
  %fa = call @fib(%a)
  %fb = call @fib(%b)
  %s = add %fa, %fb
  ret %s
}
func @main() void {
entry:
  %r = call @fib(i64 12)
  print %r
  ret
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			m := mustParse(t, src)
			runBoth(t, m, Options{}, 0, 0)
		})
	}
}

// TestEngineParityHangBoundary sweeps the instruction budget through a
// phi prologue and requires both engines to report the same DynInstrs
// at every cutoff — the count-before-execute contract.
func TestEngineParityHangBoundary(t *testing.T) {
	m := mustParse(t, `
module "hb"
func @main() void {
entry:
  br loop
loop:
  %i = phi i32 [i32 0, entry], [%n, loop]
  %a = phi i32 [i32 0, entry], [%s, loop]
  %s = add %a, %i
  %n = add %i, i32 1
  %c = icmp slt %n, i32 1000
  condbr %c, loop, done
done:
  print %s
  ret
}`)
	for budget := uint64(1); budget <= 24; budget++ {
		opts := Options{MaxDynInstrs: budget}
		res, err := runBoth(t, m, opts, 0, 0)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res.Outcome != OutcomeHang {
			t.Fatalf("budget %d: outcome %v, want hang", budget, res.Outcome)
		}
	}
}

// TestEngineSnapshotCrossResume captures snapshots under each engine
// and resumes each snapshot under both engines; all four combinations
// must finish identically to the uninterrupted run.
func TestEngineSnapshotCrossResume(t *testing.T) {
	p, err := progs.ByName("pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	m := p.Build()
	golden, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	for _, capEng := range Engines() {
		var snaps []*Snapshot
		_, err := Run(m, Options{
			Engine:           capEng,
			SnapshotInterval: golden.DynInstrs / 4,
			OnSnapshot:       func(s *Snapshot) { snaps = append(snaps, s) },
		})
		if err != nil {
			t.Fatalf("capture under %s: %v", capEng, err)
		}
		if len(snaps) == 0 {
			t.Fatalf("capture under %s: no snapshots", capEng)
		}
		for _, resEng := range Engines() {
			for i, s := range snaps {
				res, err := Resume(s, Options{Engine: resEng})
				if err != nil {
					t.Fatalf("cap=%s res=%s snap %d: %v", capEng, resEng, i, err)
				}
				compareResultsT(t, golden, res)
			}
		}
	}
}

// TestEngineParityBrokenModules exercises the decoded lowering's
// runtime-error markers: constructs Verify rejects but execution must
// tolerate, where both engines must report the same error.
func TestEngineParityBrokenModules(t *testing.T) {
	// A phi in the entry block: reached via the entry pseudo-edge, it has
	// no incoming for "<entry>".
	m := &ir.Module{Name: "bad-entry-phi"}
	fn := m.NewFunc("main", ir.Void)
	entry := fn.NewBlock("entry")
	entry.Instrs = append(entry.Instrs,
		&ir.Instr{Op: ir.OpPhi, Type: ir.I32, Block: entry},
		&ir.Instr{Op: ir.OpRet, Block: entry})
	fn.Renumber()

	for _, eng := range Engines() {
		_, err := Run(m, Options{Engine: eng})
		if err == nil || !strings.Contains(err.Error(), "no incoming for block <entry>") {
			t.Errorf("%s: err = %v, want entry-phi error", eng, err)
		}
	}

	// A mid-block phi is "cannot execute" on both engines.
	m2 := &ir.Module{Name: "bad-mid-phi"}
	fn2 := m2.NewFunc("main", ir.Void)
	e2 := fn2.NewBlock("entry")
	e2.Instrs = append(e2.Instrs,
		&ir.Instr{Op: ir.OpAdd, Type: ir.I32, Block: e2,
			Operands: []ir.Value{ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2)}},
		&ir.Instr{Op: ir.OpPhi, Type: ir.I32, Block: e2},
		&ir.Instr{Op: ir.OpRet, Block: e2})
	fn2.Renumber()

	for _, eng := range Engines() {
		_, err := Run(m2, Options{Engine: eng})
		if err == nil || !strings.Contains(err.Error(), "cannot execute phi") {
			t.Errorf("%s: err = %v, want cannot-execute-phi error", eng, err)
		}
	}
}

// TestFramePoolHygiene dirties a pooled frame and requires prepare to
// restore it to a fresh-allocation state: stale registers, parameters
// or alloca references leaking into the next trial must fail here.
func TestFramePoolHygiene(t *testing.T) {
	m := mustParse(t, `
module "h"
func @f(%a i64, %b i64) i64 {
entry:
  %s = add %a, %b
  ret %s
}
func @main() void {
entry:
  %r = call @f(i64 1, i64 2)
  print %r
  ret
}`)
	prog := decoded.Compile(m)
	df := prog.ByFunc[m.Func("f")]

	fr := &dframe{
		regs:    []uint64{0xdead, 0xbeef, 0xcafe},
		params:  []uint64{7, 8, 9},
		scratch: []uint64{1},
		allocas: []*Segment{{Base: 1}},
		blk:     &decoded.Block{},
		prev:    &ir.Block{},
		dip:     42,
	}
	fr.prepare(df)

	if fr.fn != df {
		t.Errorf("fn not set")
	}
	if fr.blk != nil || fr.prev != nil || fr.dip != 0 {
		t.Errorf("position state not reset: blk=%v prev=%v dip=%d", fr.blk, fr.prev, fr.dip)
	}
	if len(fr.regs) != df.NumRegs {
		t.Fatalf("regs len = %d, want %d", len(fr.regs), df.NumRegs)
	}
	for i, r := range fr.regs {
		if r != 0 {
			t.Errorf("stale register %d = %#x after prepare", i, r)
		}
	}
	if len(fr.params) != df.NumParams {
		t.Fatalf("params len = %d, want %d", len(fr.params), df.NumParams)
	}
	for i, p := range fr.params {
		if p != 0 {
			t.Errorf("stale param %d = %#x after prepare", i, p)
		}
	}
	if len(fr.allocas) != 0 {
		t.Errorf("stale allocas survived prepare: %v", fr.allocas)
	}

	// releaseFrame must drop object references so the pool does not
	// retain programs or segments.
	fr.blk = &decoded.Block{}
	fr.allocas = append(fr.allocas, &Segment{})
	releaseFrame(fr)
	if fr.fn != nil || fr.blk != nil || fr.prev != nil {
		t.Errorf("releaseFrame retained references: fn=%v blk=%v prev=%v", fr.fn, fr.blk, fr.prev)
	}
	if !fr.reused {
		t.Errorf("releaseFrame did not mark frame as pooled")
	}
}

// TestFramePoolGrowth verifies prepare re-sizes a small recycled frame
// upward (and zeroes the grown arrays).
func TestFramePoolGrowth(t *testing.T) {
	m := mustParse(t, `
module "g"
func @big(%a i64, %b i64, %c i64) i64 {
entry:
  %x = add %a, %b
  %y = add %x, %c
  %z = mul %y, %y
  %w = add %z, %x
  ret %w
}
func @main() void {
entry:
  %r = call @big(i64 1, i64 2, i64 3)
  print %r
  ret
}`)
	prog := decoded.Compile(m)
	df := prog.ByFunc[m.Func("big")]
	fr := &dframe{regs: []uint64{0xff}, params: []uint64{0xee}}
	fr.prepare(df)
	if len(fr.regs) != df.NumRegs || len(fr.params) != df.NumParams {
		t.Fatalf("prepare did not grow: regs=%d params=%d", len(fr.regs), len(fr.params))
	}
	for i, r := range fr.regs {
		if r != 0 {
			t.Errorf("grown register %d = %#x, want 0", i, r)
		}
	}
}

// TestDecodedRepeatedRuns reuses one compiled program across many runs
// on the same and different goroutines — the campaign usage pattern —
// and checks the pool does not leak state between them.
func TestDecodedRepeatedRuns(t *testing.T) {
	p, err := progs.ByName("nw")
	if err != nil {
		t.Fatal(err)
	}
	m := p.Build()
	prog := decoded.Compile(m)
	golden, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	for i := 0; i < 8; i++ {
		res, err := Run(m, Options{Engine: EngineDecoded, Decoded: prog})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		compareResultsT(t, golden, res)
	}
	t.Run("parallel", func(t *testing.T) {
		for i := 0; i < 4; i++ {
			t.Run(fmt.Sprintf("worker%d", i), func(t *testing.T) {
				t.Parallel()
				for j := 0; j < 4; j++ {
					res, err := Run(m, Options{Engine: EngineDecoded, Decoded: prog})
					if err != nil {
						t.Fatalf("run %d: %v", j, err)
					}
					compareResultsT(t, golden, res)
				}
			})
		}
	})
}
