package interp

import (
	"math"

	"trident/internal/ir"
)

// evalBinary computes a two-operand operation on bit patterns of type t.
// The ok result is false for integer division/remainder by zero, which
// traps.
func evalBinary(op ir.Opcode, t ir.Type, lhs, rhs uint64) (bits uint64, ok bool) {
	w := t.Bits()
	switch op {
	case ir.OpAdd:
		return lhs + rhs, true
	case ir.OpSub:
		return lhs - rhs, true
	case ir.OpMul:
		return lhs * rhs, true
	case ir.OpSDiv, ir.OpSRem:
		d := ir.SignExtend(rhs, w)
		if d == 0 {
			return 0, false
		}
		n := ir.SignExtend(lhs, w)
		if n == math.MinInt64 && d == -1 {
			// Wrap instead of the Go runtime panic; LLVM leaves this
			// undefined, and wrapping keeps faulty runs deterministic.
			if op == ir.OpSDiv {
				return uint64(n), true
			}
			return 0, true
		}
		if op == ir.OpSDiv {
			return uint64(n / d), true
		}
		return uint64(n % d), true
	case ir.OpUDiv, ir.OpURem:
		if rhs == 0 {
			return 0, false
		}
		if op == ir.OpUDiv {
			return lhs / rhs, true
		}
		return lhs % rhs, true
	case ir.OpAnd:
		return lhs & rhs, true
	case ir.OpOr:
		return lhs | rhs, true
	case ir.OpXor:
		return lhs ^ rhs, true
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		// Shift amounts reduce modulo the width so corrupted shift
		// operands still produce a defined result.
		sh := uint(rhs) % uint(w)
		switch op {
		case ir.OpShl:
			return lhs << sh, true
		case ir.OpLShr:
			return ir.TruncateToWidth(lhs, w) >> sh, true
		default: // AShr
			return uint64(ir.SignExtend(lhs, w) >> sh), true
		}
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a := ir.FloatFromBits(t, lhs)
		b := ir.FloatFromBits(t, rhs)
		var r float64
		switch op {
		case ir.OpFAdd:
			r = a + b
		case ir.OpFSub:
			r = a - b
		case ir.OpFMul:
			r = a * b
		default:
			r = a / b // IEEE: ±Inf/NaN, no trap
		}
		return ir.FloatToBits(t, r), true
	default:
		return 0, true
	}
}

// evalCmp computes a comparison on bit patterns of type t, yielding 0 or 1.
func evalCmp(pred ir.Predicate, t ir.Type, lhs, rhs uint64) uint64 {
	var r bool
	switch pred {
	case ir.PredEQ:
		r = ir.TruncateToWidth(lhs, t.Bits()) == ir.TruncateToWidth(rhs, t.Bits())
	case ir.PredNE:
		r = ir.TruncateToWidth(lhs, t.Bits()) != ir.TruncateToWidth(rhs, t.Bits())
	case ir.PredSLT, ir.PredSLE, ir.PredSGT, ir.PredSGE:
		a := ir.SignExtend(lhs, t.Bits())
		b := ir.SignExtend(rhs, t.Bits())
		switch pred {
		case ir.PredSLT:
			r = a < b
		case ir.PredSLE:
			r = a <= b
		case ir.PredSGT:
			r = a > b
		default:
			r = a >= b
		}
	case ir.PredULT, ir.PredULE, ir.PredUGT, ir.PredUGE:
		a := ir.TruncateToWidth(lhs, t.Bits())
		b := ir.TruncateToWidth(rhs, t.Bits())
		switch pred {
		case ir.PredULT:
			r = a < b
		case ir.PredULE:
			r = a <= b
		case ir.PredUGT:
			r = a > b
		default:
			r = a >= b
		}
	case ir.PredOEQ, ir.PredONE, ir.PredOLT, ir.PredOLE, ir.PredOGT, ir.PredOGE:
		a := ir.FloatFromBits(t, lhs)
		b := ir.FloatFromBits(t, rhs)
		switch pred {
		case ir.PredOEQ:
			r = a == b
		case ir.PredONE:
			r = a != b && !math.IsNaN(a) && !math.IsNaN(b)
		case ir.PredOLT:
			r = a < b
		case ir.PredOLE:
			r = a <= b
		case ir.PredOGT:
			r = a > b
		default:
			r = a >= b
		}
	}
	if r {
		return 1
	}
	return 0
}

// evalCast converts a bit pattern from type st to type dt.
func evalCast(op ir.Opcode, st, dt ir.Type, src uint64) uint64 {
	switch op {
	case ir.OpTrunc:
		return ir.TruncateToWidth(src, dt.Bits())
	case ir.OpZExt:
		return ir.TruncateToWidth(src, st.Bits())
	case ir.OpSExt:
		return uint64(ir.SignExtend(src, st.Bits()))
	case ir.OpFPTrunc:
		return ir.FloatToBits(ir.F32, ir.FloatFromBits(ir.F64, src))
	case ir.OpFPExt:
		return ir.FloatToBits(ir.F64, ir.FloatFromBits(ir.F32, src))
	case ir.OpFPToSI:
		f := ir.FloatFromBits(st, src)
		switch {
		case math.IsNaN(f):
			return 0
		case f >= math.MaxInt64:
			var max int64 = math.MaxInt64
			return uint64(max)
		case f <= math.MinInt64:
			var min int64 = math.MinInt64
			return uint64(min)
		default:
			return uint64(int64(f))
		}
	case ir.OpSIToFP:
		return ir.FloatToBits(dt, float64(ir.SignExtend(src, st.Bits())))
	case ir.OpBitcast:
		return src
	default:
		return src
	}
}

// evalIntrinsic evaluates a built-in math routine.
func evalIntrinsic(kind ir.Intrinsic, args []float64) float64 {
	switch kind {
	case ir.IntrinsicSqrt:
		return math.Sqrt(args[0])
	case ir.IntrinsicExp:
		return math.Exp(args[0])
	case ir.IntrinsicLog:
		return math.Log(args[0])
	case ir.IntrinsicSin:
		return math.Sin(args[0])
	case ir.IntrinsicCos:
		return math.Cos(args[0])
	case ir.IntrinsicPow:
		return math.Pow(args[0], args[1])
	case ir.IntrinsicFabs:
		return math.Abs(args[0])
	case ir.IntrinsicFloor:
		return math.Floor(args[0])
	case ir.IntrinsicFmin:
		return math.Min(args[0], args[1])
	case ir.IntrinsicFmax:
		return math.Max(args[0], args[1])
	default:
		return math.NaN()
	}
}
