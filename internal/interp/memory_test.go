package interp

import (
	"testing"
	"testing/quick"

	"trident/internal/ir"
)

func TestMemoryAllocateAndAccess(t *testing.T) {
	m := NewMemory()
	s := m.Allocate("a", 16)
	if s.Base == 0 {
		t.Fatal("segment base should not be 0")
	}
	if !m.Store(ir.I32, s.Base+4, 0xDEADBEEF) {
		t.Fatal("in-bounds store failed")
	}
	got, ok := m.Load(ir.I32, s.Base+4)
	if !ok || got != 0xDEADBEEF {
		t.Fatalf("load = %#x, %v", got, ok)
	}
}

func TestMemoryLittleEndianOverlap(t *testing.T) {
	m := NewMemory()
	s := m.Allocate("a", 8)
	m.Store(ir.I64, s.Base, 0x0807060504030201)
	b, ok := m.Load(ir.I8, s.Base+2)
	if !ok || b != 0x03 {
		t.Fatalf("byte 2 = %#x", b)
	}
	h, ok := m.Load(ir.I16, s.Base+4)
	if !ok || h != 0x0605 {
		t.Fatalf("half at 4 = %#x", h)
	}
}

func TestMemoryOutOfBounds(t *testing.T) {
	m := NewMemory()
	s := m.Allocate("a", 8)
	cases := []struct {
		name string
		addr uint64
		t    ir.Type
	}{
		{"below", s.Base - 1, ir.I8},
		{"straddle end", s.End() - 2, ir.I32},
		{"far away", 0x123456789A, ir.I8},
		{"null", 0, ir.I8},
		{"wrap", ^uint64(0) - 1, ir.I64},
	}
	for _, c := range cases {
		if _, ok := m.Load(c.t, c.addr); ok {
			t.Errorf("%s: load should trap", c.name)
		}
		if m.Store(c.t, c.addr, 1) {
			t.Errorf("%s: store should trap", c.name)
		}
	}
}

func TestMemoryGapBetweenSegments(t *testing.T) {
	m := NewMemory()
	a := m.Allocate("a", 8)
	b := m.Allocate("b", 8)
	if a.End() >= b.Base {
		t.Fatal("segments should not be adjacent")
	}
	if _, ok := m.Load(ir.I8, a.End()); ok {
		t.Error("gap access should trap")
	}
}

func TestMemoryRelease(t *testing.T) {
	m := NewMemory()
	a := m.Allocate("a", 8)
	b := m.Allocate("b", 8)
	m.Release(a)
	if _, ok := m.Load(ir.I8, a.Base); ok {
		t.Error("released segment should trap")
	}
	if _, ok := m.Load(ir.I8, b.Base); !ok {
		t.Error("live segment should still be accessible")
	}
	if m.CurrentBytes() != 8 {
		t.Errorf("CurrentBytes = %d, want 8", m.CurrentBytes())
	}
	if m.NumSegments() != 1 {
		t.Errorf("NumSegments = %d, want 1", m.NumSegments())
	}
}

func TestMemoryPeakTracksHighWater(t *testing.T) {
	m := NewMemory()
	a := m.Allocate("a", 100)
	m.Allocate("b", 50)
	m.Release(a)
	m.Allocate("c", 10)
	if m.PeakBytes() != 150 {
		t.Errorf("PeakBytes = %d, want 150", m.PeakBytes())
	}
}

func TestMemoryZeroSizeAllocation(t *testing.T) {
	m := NewMemory()
	a := m.Allocate("a", 0)
	b := m.Allocate("b", 0)
	if a.Base == b.Base {
		t.Error("zero-size allocations should get distinct addresses")
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory()
	s := m.Allocate("a", 64)
	f := func(off8 uint8, bits uint64) bool {
		off := uint64(off8 % 56)
		if !m.Store(ir.I64, s.Base+off, bits) {
			return false
		}
		got, ok := m.Load(ir.I64, s.Base+off)
		return ok && got == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryNarrowTypeTruncates(t *testing.T) {
	m := NewMemory()
	s := m.Allocate("a", 8)
	m.Store(ir.I64, s.Base, 0)
	m.Store(ir.I8, s.Base, 0x1FF) // only low byte lands
	got, _ := m.Load(ir.I64, s.Base)
	if got != 0xFF {
		t.Errorf("after i8 store, word = %#x, want 0xff", got)
	}
}
