// Snapshot/Resume: checkpointing of complete interpreter state.
//
// A Snapshot is a deep copy of the machine at a clean instruction boundary
// — registers of every live frame, the segmented memory, the program
// position, the dynamic-instruction counters, and the output buffer.
// Because the interpreter is deterministic, resuming a snapshot and
// running to completion is bit-identical to having let the original run
// continue. Fault-injection campaigns exploit this: the pre-fault prefix
// of every trial is identical to the golden run, so a trial can start
// from the nearest golden snapshot at or before its injection point
// instead of re-interpreting the whole prefix from instruction 0.
//
// Snapshots are immutable after capture and safe to resume concurrently:
// every Resume clones the snapshot's memory and frames into a fresh
// machine.

package interp

import (
	"fmt"
	"time"

	"trident/internal/ir"
	"trident/internal/telemetry"
)

// Snapshot is an immutable deep copy of interpreter state at an
// instruction boundary, captured by Options.SnapshotInterval/OnSnapshot
// during a run. It can be resumed any number of times, from any
// goroutine.
type Snapshot struct {
	dynCount   uint64
	dynResults uint64
	depth      int
	lines      int
	output     string
	mem        *Memory
	frames     []frameSnap
	// globals is shared, not copied: the dense slot-indexed base table
	// is immutable after module initialization.
	globals []uint64
}

// frameSnap is one suspended activation. Its alloca segments point into
// the snapshot's private memory copy and are remapped on every Resume.
type frameSnap struct {
	fn      *ir.Func
	block   *ir.Block
	prev    *ir.Block
	ip      int
	regs    []uint64
	params  []uint64
	allocas []*Segment
}

// DynInstrs returns the number of instructions executed before the
// snapshot point — the resume position in dynamic-instruction time.
func (s *Snapshot) DynInstrs() uint64 { return s.dynCount }

// DynResults returns the number of register-writing instructions executed
// before the snapshot point.
func (s *Snapshot) DynResults() uint64 { return s.dynResults }

// Frames returns the call-stack depth at the snapshot point.
func (s *Snapshot) Frames() int { return len(s.frames) }

// MemBytes returns the live allocated bytes held by the snapshot's
// private memory copy — the per-snapshot storage cost.
func (s *Snapshot) MemBytes() uint64 { return s.mem.CurrentBytes() }

// takeSnapshot captures the current machine state and hands it to the
// OnSnapshot observer, then schedules the next capture one interval from
// the current position.
func (vm *machine) takeSnapshot() {
	reg := vm.ctx.opts.Metrics
	start := metricsStart(reg)
	s := vm.capture()
	recordCapture(reg, start, s)
	vm.nextSnap = vm.ctx.DynCount + vm.snapEvery
	vm.ctx.opts.OnSnapshot(s)
}

// recordCapture records one snapshot capture (from either engine).
func recordCapture(reg *telemetry.Registry, start time.Time, s *Snapshot) {
	if reg == nil {
		return
	}
	reg.Counter("interp.snapshot.captures").Inc()
	reg.Counter("interp.snapshot.bytes").Add(s.MemBytes())
	reg.Histogram("interp.snapshot.capture_us").Since(start)
}

// recordResume records one snapshot-state rebuild (memory clone + frame
// copies) — the fixed per-trial cost of snapshot replay, recorded
// separately from the execution itself.
func recordResume(reg *telemetry.Registry, start time.Time) {
	if reg == nil {
		return
	}
	reg.Counter("interp.snapshot.resumes").Inc()
	reg.Histogram("interp.snapshot.restore_us").Since(start)
}

// capture deep-copies the machine state. The memory clone returns a
// segment remapping so frame-held alloca pointers can follow their copies.
func (vm *machine) capture() *Snapshot {
	ctx := vm.ctx
	mem, remap := ctx.Mem.Clone()
	s := &Snapshot{
		dynCount:   ctx.DynCount,
		dynResults: ctx.DynResults,
		depth:      ctx.depth,
		lines:      ctx.lines,
		output:     ctx.output.String(),
		mem:        mem,
		globals:    vm.globals,
		frames:     make([]frameSnap, len(vm.frames)),
	}
	for i, fr := range vm.frames {
		fs := frameSnap{
			fn:     fr.fn,
			block:  fr.block,
			prev:   fr.prev,
			ip:     fr.ip,
			regs:   append([]uint64(nil), fr.regs...),
			params: append([]uint64(nil), fr.params...),
		}
		if len(fr.allocas) > 0 {
			fs.allocas = make([]*Segment, len(fr.allocas))
			for j, seg := range fr.allocas {
				fs.allocas[j] = remap[seg]
			}
		}
		s.frames[i] = fs
	}
	return s
}

// Resume restores s into a fresh machine and runs it to completion under
// opts, returning the Result exactly as Run would have for an
// uninterrupted execution reaching the same end state: the output,
// counters and peak-memory figures all include the pre-snapshot prefix.
//
// The snapshot is not consumed — it can be resumed again, concurrently.
// Hooks in opts observe only the post-snapshot suffix of the execution.
// MaxDynInstrs retains its whole-run meaning: the budget covers prefix
// plus suffix, so hang classification is identical to a full run's.
func Resume(s *Snapshot, opts Options) (*Result, error) {
	if len(s.frames) == 0 {
		return nil, fmt.Errorf("interp: resume of empty snapshot")
	}
	if opts.Engine == EngineDecoded {
		return resumeDecoded(s, opts)
	}
	applyDefaults(&opts)
	start := metricsStart(opts.Metrics)
	mem, remap := s.mem.Clone()
	ctx := &Context{
		Mem:        mem,
		DynCount:   s.dynCount,
		DynResults: s.dynResults,
		opts:       opts,
		lines:      s.lines,
		depth:      s.depth,
	}
	ctx.output.WriteString(s.output)
	vm := newMachine(ctx, s.globals)
	vm.frames = make([]*frame, len(s.frames))
	for i, fs := range s.frames {
		fr := &frame{
			fn:     fs.fn,
			block:  fs.block,
			prev:   fs.prev,
			ip:     fs.ip,
			regs:   append([]uint64(nil), fs.regs...),
			params: append([]uint64(nil), fs.params...),
		}
		if len(fs.allocas) > 0 {
			fr.allocas = make([]*Segment, len(fs.allocas))
			for j, seg := range fs.allocas {
				fr.allocas[j] = remap[seg]
			}
		}
		vm.frames[i] = fr
	}
	recordResume(opts.Metrics, start)
	_, err := vm.resumeSafe()
	res, err := finishRun(ctx, err)
	recordRun(opts.Metrics, start, s.dynCount, ctx, res, err)
	return res, err
}
