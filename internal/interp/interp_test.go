package interp

import (
	"strings"
	"testing"

	"trident/internal/ir"
)

// mustParse parses src and fails the test on error.
func mustParse(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// run executes the module with default options.
func run(t testing.TB, m *ir.Module) *Result {
	t.Helper()
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestRunStraightLine(t *testing.T) {
	m := mustParse(t, `
module "straight"
func @main() void {
entry:
  %a = add i32 2, i32 3
  %b = mul %a, i32 4
  %c = sub %b, i32 1
  print %c
  ret
}
`)
	res := run(t, m)
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Trap)
	}
	if res.Output != "19\n" {
		t.Errorf("output = %q, want 19", res.Output)
	}
	if res.DynInstrs != 5 {
		t.Errorf("DynInstrs = %d, want 5", res.DynInstrs)
	}
	if res.DynResults != 3 {
		t.Errorf("DynResults = %d, want 3", res.DynResults)
	}
}

func TestRunLoopWithPhi(t *testing.T) {
	// Sum 1..10 = 55.
	m := mustParse(t, `
module "sum"
func @main() void {
entry:
  br loop
loop:
  %i = phi i32 [i32 1, entry], [%inc, loop]
  %acc = phi i32 [i32 0, entry], [%sum, loop]
  %sum = add %acc, %i
  %inc = add %i, i32 1
  %c = icmp sle %inc, i32 10
  condbr %c, loop, done
done:
  print %sum
  ret
}
`)
	res := run(t, m)
	if res.Output != "55\n" {
		t.Errorf("output = %q, want 55", res.Output)
	}
}

func TestPhiSimultaneousEvaluation(t *testing.T) {
	// Fibonacci via parallel phi assignment: (a, b) = (b, a+b). If phis
	// evaluated sequentially, the second phi would see the updated a.
	m := mustParse(t, `
module "fib"
func @main() void {
entry:
  br loop
loop:
  %n = phi i32 [i32 0, entry], [%ninc, loop]
  %a = phi i64 [i64 0, entry], [%b, loop]
  %b = phi i64 [i64 1, entry], [%next, loop]
  %next = add %a, %b
  %ninc = add %n, i32 1
  %c = icmp slt %ninc, i32 10
  condbr %c, loop, done
done:
  print %a
  ret
}
`)
	res := run(t, m)
	// After 10 loop entries, %a holds fib(9) = 34. Sequential phi
	// evaluation would instead produce fib-like drift (a == b).
	if res.Output != "34\n" {
		t.Errorf("output = %q, want 34", res.Output)
	}
}

func TestMemoryProgram(t *testing.T) {
	m := mustParse(t, `
module "mem"
global @src i32 x 4 = [10, 20, 30, 40]
func @main() void {
entry:
  %buf = alloca i32 x 4
  br loop
loop:
  %i = phi i32 [i32 0, entry], [%inc, loop]
  %sp = gep i32, @src, %i
  %v = load i32, %sp
  %dv = mul %v, i32 2
  %dp = gep i32, %buf, %i
  store %dv, %dp
  %inc = add %i, i32 1
  %c = icmp slt %inc, i32 4
  condbr %c, loop, out
out:
  %lp = gep i32, %buf, i32 3
  %last = load i32, %lp
  print %last
  ret
}
`)
	res := run(t, m)
	if res.Output != "80\n" {
		t.Errorf("output = %q, want 80", res.Output)
	}
}

func TestFunctionCall(t *testing.T) {
	m := mustParse(t, `
module "call"
func @square(%x i32) i32 {
entry:
  %r = mul %x, %x
  ret %r
}
func @main() void {
entry:
  %a = call @square(i32 7)
  %b = call @square(%a)
  print %b
  ret
}
`)
	res := run(t, m)
	if res.Output != "2401\n" {
		t.Errorf("output = %q, want 2401", res.Output)
	}
}

func TestRecursionWithinLimit(t *testing.T) {
	m := mustParse(t, `
module "fact"
func @fact(%n i64) i64 {
entry:
  %c = icmp sle %n, i64 1
  condbr %c, base, rec
base:
  ret i64 1
rec:
  %n1 = sub %n, i64 1
  %sub = call @fact(%n1)
  %r = mul %n, %sub
  ret %r
}
func @main() void {
entry:
  %f = call @fact(i64 10)
  print %f
  ret
}
`)
	res := run(t, m)
	if res.Output != "3628800\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestStackOverflowTrap(t *testing.T) {
	m := mustParse(t, `
module "inf"
func @f() void {
entry:
  call @f()
  ret
}
func @main() void {
entry:
  call @f()
  ret
}
`)
	res := run(t, m)
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapStackOverflow {
		t.Errorf("outcome = %v, trap = %v", res.Outcome, res.Trap)
	}
}

func TestOOBLoadTrap(t *testing.T) {
	m := mustParse(t, `
module "oob"
global @a i32 x 2
func @main() void {
entry:
  %p = gep i32, @a, i32 100
  %v = load i32, %p
  print %v
  ret
}
`)
	res := run(t, m)
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapOOBLoad {
		t.Fatalf("outcome = %v, trap = %v", res.Outcome, res.Trap)
	}
	if res.Output != "" {
		t.Error("crashed program should produce no output after the trap")
	}
	if !strings.Contains(res.Trap.Error(), "out-of-bounds load") {
		t.Errorf("trap error = %q", res.Trap.Error())
	}
}

func TestOOBStoreTrap(t *testing.T) {
	m := mustParse(t, `
module "oob"
global @a i32 x 2
func @main() void {
entry:
  %p = gep i32, @a, i32 -5
  store i32 1, %p
  ret
}
`)
	res := run(t, m)
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapOOBStore {
		t.Errorf("outcome = %v, trap = %v", res.Outcome, res.Trap)
	}
}

func TestDivZeroTrap(t *testing.T) {
	m := mustParse(t, `
module "div"
func @main() void {
entry:
  %z = sub i32 5, i32 5
  %d = sdiv i32 1, %z
  print %d
  ret
}
`)
	res := run(t, m)
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapDivZero {
		t.Errorf("outcome = %v, trap = %v", res.Outcome, res.Trap)
	}
}

func TestHangDetection(t *testing.T) {
	m := mustParse(t, `
module "hang"
func @main() void {
entry:
  br loop
loop:
  br loop
}
`)
	res, err := Run(m, Options{MaxDynInstrs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHang {
		t.Errorf("outcome = %v, want hang", res.Outcome)
	}
	if res.DynInstrs < 1000 {
		t.Errorf("DynInstrs = %d", res.DynInstrs)
	}
}

func TestDanglingAllocaTraps(t *testing.T) {
	m := mustParse(t, `
module "dangle"
func @leak() ptr {
entry:
  %p = alloca i32 x 1
  store i32 42, %p
  ret %p
}
func @main() void {
entry:
  %p = call @leak()
  %v = load i32, %p
  print %v
  ret
}
`)
	res := run(t, m)
	if res.Outcome != OutcomeCrash || res.Trap.Kind != TrapOOBLoad {
		t.Errorf("dangling access: outcome = %v, trap = %v", res.Outcome, res.Trap)
	}
}

func TestFloatPipeline(t *testing.T) {
	m := mustParse(t, `
module "float"
func @main() void {
entry:
  %x = fadd f64 1.5, f64 2.25
  %y = fmul %x, f64 2.0
  %r = intrinsic sqrt(%y)
  %i = fptosi %r to i64
  print %i
  print %r
  print g2 %y
  ret
}
`)
	res := run(t, m)
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if len(lines) != 3 {
		t.Fatalf("output lines = %v", lines)
	}
	if lines[0] != "2" { // floor(sqrt(7.5)) = 2
		t.Errorf("int line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2.73") {
		t.Errorf("sqrt line = %q", lines[1])
	}
	if lines[2] != "7.5" {
		t.Errorf("g2 line = %q", lines[2])
	}
}

func TestFloat32Arithmetic(t *testing.T) {
	m := mustParse(t, `
module "f32"
func @main() void {
entry:
  %a = fadd f32 0.5, f32 0.25
  %w = fpext %a to f64
  print %w
  ret
}
`)
	res := run(t, m)
	if res.Output != "0.75\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestIntegerOpsViaProgram(t *testing.T) {
	m := mustParse(t, `
module "intops"
func @main() void {
entry:
  %a = and i32 12, i32 10
  print %a
  %o = or i32 12, i32 10
  print %o
  %x = xor i32 12, i32 10
  print %x
  %sl = shl i32 3, i32 4
  print %sl
  %lr = lshr i32 -16, i32 28
  print %lr
  %ar = ashr i32 -16, i32 2
  print %ar
  %sd = sdiv i32 -7, i32 2
  print %sd
  %sr = srem i32 -7, i32 2
  print %sr
  %ud = udiv i32 7, i32 2
  print %ud
  %ur = urem i32 7, i32 2
  print %ur
  %tr = trunc i32 257 to i8
  %trx = sext %tr to i32
  print %trx
  %ze = zext i8 -1 to i32
  print %ze
  %se = select i1 1, i32 111, i32 222
  print %se
  ret
}
`)
	res := run(t, m)
	want := "8\n14\n6\n48\n15\n-4\n-3\n-1\n3\n1\n1\n255\n111\n"
	if res.Output != want {
		t.Errorf("output:\n%s\nwant:\n%s", res.Output, want)
	}
}

func TestComparisonPredicates(t *testing.T) {
	m := mustParse(t, `
module "cmps"
func @main() void {
entry:
  %a = icmp slt i32 -1, i32 1
  print %a
  %b = icmp ult i32 -1, i32 1
  print %b
  %c = icmp eq i64 5, i64 5
  print %c
  %d = fcmp olt f64 1.0, f64 2.0
  print %d
  %e = fcmp oge f64 1.0, f64 2.0
  print %e
  ret
}
`)
	res := run(t, m)
	// I1 prints via sign extension of width 1: 1 -> -1.
	want := "-1\n0\n-1\n-1\n0\n"
	if res.Output != want {
		t.Errorf("output:\n%swant:\n%s", res.Output, want)
	}
}

func TestHookOnResultInjectsFault(t *testing.T) {
	m := mustParse(t, `
module "inj"
func @main() void {
entry:
  %a = add i32 0, i32 0
  print %a
  ret
}
`)
	var target uint64 = 1 // first dynamic result
	res, err := Run(m, Options{Hooks: Hooks{
		OnResult: func(ctx *Context, in *ir.Instr, bits uint64) uint64 {
			if ctx.DynResults == target {
				return bits ^ (1 << 3)
			}
			return bits
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "8\n" {
		t.Errorf("output = %q, want 8 (injected)", res.Output)
	}
}

func TestHookObservations(t *testing.T) {
	m := mustParse(t, `
module "obs"
global @g i32 x 1 = [5]
func @main() void {
entry:
  %v = load i32, @g
  %c = icmp sgt %v, i32 0
  condbr %c, yes, no
yes:
  store i32 1, @g
  br no
no:
  print %v
  ret
}
`)
	var loads, stores, branches, prints int
	var takenEdge int = -1
	_, err := Run(m, Options{Hooks: Hooks{
		OnLoad:   func(*Context, *ir.Instr, uint64, uint64) { loads++ },
		OnStore:  func(*Context, *ir.Instr, uint64, uint64) { stores++ },
		OnBranch: func(_ *Context, _ *ir.Instr, taken int) { branches++; takenEdge = taken },
		OnPrint:  func(*Context, *ir.Instr, string) { prints++ },
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Two branch events: the condbr and the unconditional br in yes.
	if loads != 1 || stores != 1 || branches != 2 || prints != 1 {
		t.Errorf("hooks fired loads=%d stores=%d branches=%d prints=%d",
			loads, stores, branches, prints)
	}
	if takenEdge != 0 {
		t.Errorf("taken edge = %d, want 0 (true)", takenEdge)
	}
}

func TestGlobalInitialization(t *testing.T) {
	m := mustParse(t, `
module "ginit"
global @mix f64 x 3 = [1.5, -2.5]
func @main() void {
entry:
  %p0 = gep f64, @mix, i32 0
  %v0 = load f64, %p0
  print %v0
  %p1 = gep f64, @mix, i32 1
  %v1 = load f64, %p1
  print %v1
  %p2 = gep f64, @mix, i32 2
  %v2 = load f64, %p2
  print %v2
  ret
}
`)
	res := run(t, m)
	if res.Output != "1.5\n-2.5\n0\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestDeterminism(t *testing.T) {
	m := mustParse(t, `
module "det"
global @a i64 x 16
func @main() void {
entry:
  br loop
loop:
  %i = phi i64 [i64 0, entry], [%inc, loop]
  %h = mul %i, i64 2654435761
  %x = xor %h, %i
  %m = urem %x, i64 16
  %p = gep i64, @a, %m
  store %h, %p
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 64
  condbr %c, loop, out
out:
  %p0 = gep i64, @a, i64 7
  %v = load i64, %p0
  print %v
  ret
}
`)
	first := run(t, m)
	for i := 0; i < 3; i++ {
		again := run(t, m)
		if again.Output != first.Output || again.DynInstrs != first.DynInstrs {
			t.Fatal("execution is not deterministic")
		}
	}
}

func TestRunErrors(t *testing.T) {
	m := ir.NewModule("empty")
	if _, err := Run(m, Options{}); err == nil {
		t.Error("Run should fail without main")
	}
	m2 := ir.NewModule("params")
	f := m2.NewFunc("main", ir.Void, ir.NewParam("x", ir.I32))
	b := ir.NewBuilder(f)
	b.SetBlock(b.NewBlock("entry"))
	b.Ret(nil)
	f.Renumber()
	if _, err := Run(m2, Options{}); err == nil {
		t.Error("Run should fail when main takes parameters")
	}
}

func TestTraceWriter(t *testing.T) {
	m := mustParse(t, `
module "traced"
func @main() void {
entry:
  %a = add i32 1, i32 2
  print %a
  ret
}
`)
	var sb strings.Builder
	if _, err := Run(m, Options{TraceWriter: &sb}); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	for _, want := range []string{"add", "print", "ret", "main:entry"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	if len(strings.Split(strings.TrimSpace(trace), "\n")) != 3 {
		t.Errorf("trace should have 3 lines:\n%s", trace)
	}
}
